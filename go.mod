module scalekv

go 1.24
