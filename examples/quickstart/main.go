// Quickstart: boot an in-process 4-node cluster, write a partitioned
// dataset, run point reads, range scans and the paper's count-by-type
// fan-out query with stage tracing.
package main

import (
	"fmt"
	"log"

	"scalekv"
)

func main() {
	cl, err := scalekv.StartCluster(4)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	c := cl.Client()

	// A wide-column layout: partition key = sensor, clustering key =
	// timestamp, value = [type, reading...]. Bulk ingest goes through a
	// Batcher: writes are grouped per destination node and shipped as
	// pipelined batch RPCs instead of one synchronous RPC per cell.
	fmt.Println("writing 50 partitions x 100 readings (batched)...")
	batcher := c.NewBatcher(scalekv.BatcherOptions{MaxEntries: 64})
	var pks []string
	for sensor := 0; sensor < 50; sensor++ {
		pk := fmt.Sprintf("sensor-%03d", sensor)
		pks = append(pks, pk)
		for t := 0; t < 100; t++ {
			ck := []byte(fmt.Sprintf("2026-06-10T%02d:%02d", t/60, t%60))
			value := []byte{byte(t % 3), byte(sensor), byte(t)}
			if err := batcher.Put(pk, ck, value); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := batcher.Close(); err != nil {
		log.Fatal(err)
	}
	if err := cl.FlushAll(); err != nil {
		log.Fatal(err)
	}

	// Point read.
	v, found, err := c.Get("sensor-007", []byte("2026-06-10T00:30"))
	if err != nil || !found {
		log.Fatalf("get: %v found=%v", err, found)
	}
	fmt.Printf("point read: sensor-007 @ 00:30 -> % x\n", v)

	// Delete is a first-class write: the cell is masked by a versioned
	// tombstone that survives flushes and compactions, so "deleted"
	// means deleted — even after the memtables are forced to disk.
	if err := c.Delete("sensor-007", []byte("2026-06-10T00:30")); err != nil {
		log.Fatal(err)
	}
	if _, found, err = c.Get("sensor-007", []byte("2026-06-10T00:30")); err != nil || found {
		log.Fatalf("deleted cell still visible: err=%v found=%v", err, found)
	}
	if err := cl.FlushAll(); err != nil { // tombstone reaches the SSTables
		log.Fatal(err)
	}
	if _, found, err = c.Get("sensor-007", []byte("2026-06-10T00:30")); err != nil || found {
		log.Fatalf("deleted cell resurrected by flush: err=%v found=%v", err, found)
	}
	fmt.Println("delete: sensor-007 @ 00:30 removed, still gone after flush")

	// Multi-get: many point reads in one round trip per involved node.
	keys := []scalekv.GetKey{
		{PK: "sensor-001", CK: []byte("2026-06-10T00:10")},
		{PK: "sensor-025", CK: []byte("2026-06-10T00:20")},
		{PK: "sensor-049", CK: []byte("2026-06-10T01:39")},
	}
	values, err := c.MultiGet(keys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multi-get: %d keys ->", len(keys))
	for _, mv := range values {
		fmt.Printf(" % x", mv.Value)
	}
	fmt.Println()

	// Clustering range scan: half an hour of one sensor.
	cells, err := c.Scan("sensor-007", []byte("2026-06-10T00:15"), []byte("2026-06-10T00:45"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range scan: %d readings between 00:15 and 00:45\n", len(cells))

	// The paper's query: count by type over every partition, issued by
	// a single master with per-request stage tracing.
	res, err := c.CountAll(pks, scalekv.MasterOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("count-by-type over %d partitions (%d elements) in %v:\n",
		len(pks), res.Elements, res.Duration.Round(1000))
	for ty := uint8(0); ty < 3; ty++ {
		fmt.Printf("  type %d: %d\n", ty, res.Counts[ty])
	}
	fmt.Println("requests per node (DHT placement):")
	for node := 0; node < 4; node++ {
		fmt.Printf("  node %d: %d\n", node, res.OpsPerNode[node])
	}
	fmt.Printf("master send phase: %v of %v total\n",
		res.SendDuration.Round(1000), res.Duration.Round(1000))
}
