// Phonebook reproduces the paper's Section II worked example: indexing
// every phone number in the world on ten servers, with three candidate
// data models — group by country, by city, or store each user alone —
// and shows how Formula 1 predicts the workload imbalance each choice
// buys, exactly as the paper computes it (34%, 0.5%, 0.015%, and the
// 21% -> 35% hot-cities case).
package main

import (
	"fmt"

	"scalekv"
)

func main() {
	const nodes = 10
	fmt.Printf("Storing the world's phone numbers on %d servers.\n", nodes)
	fmt.Println("The partition key choice fixes the key cardinality, and the")
	fmt.Println("cardinality fixes the imbalance (Formula 1: p = sqrt(ln(n)*n/m)).")
	fmt.Println()

	models := []struct {
		name string
		keys int
	}{
		{"by country (national prefix)", 200},
		{"by city", 1_000_000},
		{"by user", 1_000_000_000},
	}
	fmt.Printf("%-32s %14s %12s\n", "partition key", "keys", "imbalance")
	for _, m := range models {
		p := scalekv.ImbalanceRatio(m.keys, nodes)
		fmt.Printf("%-32s %14d %11.3f%%\n", m.name, m.keys, p*100)
	}
	fmt.Println()
	fmt.Println("paper: ~34% by country, ~0.5% by city, ~0.015% by user")
	fmt.Println()

	// The hot-keys caveat: half of all queries hit the 500 biggest
	// cities, so the effective cardinality for half the load is 500.
	fmt.Println("But half the population lives in the 500 largest cities, so for")
	fmt.Println("half of the queries the effective key cardinality is only 500:")
	for _, n := range []int{10, 20} {
		p := scalekv.ImbalanceRatio(500, n)
		fmt.Printf("  %2d servers: most loaded node gets %.0f%% more than average\n", n, p*100)
	}
	fmt.Println("paper: 21% on ten servers, rising to 35% when doubling to twenty —")
	fmt.Println("adding servers makes the imbalance worse, not better.")
	fmt.Println()

	// What the country model costs in time, per the full model.
	sys := scalekv.PaperSystem()
	fmt.Println("End-to-end prediction for a 1M-element aggregation (Formula 2):")
	fmt.Printf("%-32s %10s %12s  %s\n", "partition key", "keys", "time_ms", "bottleneck")
	for _, m := range []struct {
		name string
		keys int
	}{
		{"by country", 200},
		{"optimizer's choice", 0},
	} {
		keys := m.keys
		var pred scalekv.Prediction
		if keys == 0 {
			keys, pred = sys.OptimalKeys(1_000_000, nodes, 100, 100_000)
		} else {
			pred = sys.Predict(1_000_000, keys, nodes)
		}
		fmt.Printf("%-32s %10d %12.1f  %s\n", m.name, keys, pred.TotalMs, pred.Bottleneck)
	}
}
