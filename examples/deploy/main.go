// Deploy: self-organizing membership over real sockets. Instead of an
// operator handing every process the full member list (the static
// deployment the earlier examples use), each node here learns the ring
// the way a production deployment would: the first node bootstraps a
// one-member ring, every later node joins through any existing member
// (ownership diff, dual-write window, range streaming, epoch flip),
// every node persists the membership it learns, and peer liveness is
// probed continuously. The demo then kills a node to show health
// flipping and failover reads, and restarts it from its data directory
// alone — no seed, no member list, just the persisted topology file.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"scalekv/internal/cluster"
	"scalekv/internal/hashring"
	"scalekv/internal/transport"
)

func dial(addr string) (*transport.Client, error) {
	conn, err := transport.DialTCP(addr, 0)
	if err != nil {
		return nil, err
	}
	return transport.NewClient(conn), nil
}

func main() {
	baseDir, err := os.MkdirTemp("", "scalekv-deploy-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(baseDir)

	opts := func(dir string) cluster.NodeOptions {
		return cluster.NodeOptions{
			ID:             -1, // joiners ask the ring for the next free id
			Dir:            filepath.Join(baseDir, dir),
			Dialer:         dial,
			ProbeInterval:  50 * time.Millisecond,
			RepairInterval: time.Hour, // self-scheduled; kicked early on peer recovery
		}
	}
	listen := func() transport.Listener {
		l, err := transport.ListenTCP("127.0.0.1:0", 0)
		if err != nil {
			log.Fatal(err)
		}
		return l
	}

	// Node 0 bootstraps: a one-member ring at epoch 1, rf 2 (writes land
	// on two replicas once the ring has two).
	l0 := listen()
	o := opts("node-0")
	o.ID = 0
	o.Topology = hashring.FromNodes(1, []hashring.NodeID{0}, 64)
	o.Addrs = map[hashring.NodeID]string{0: l0.Addr()}
	o.AdvertiseAddr = l0.Addr()
	o.ReplicationFactor = 2
	node0, err := cluster.StartNode(l0, o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node 0 bootstrapped on %s (epoch %d, rf 2)\n", l0.Addr(), node0.Topology().Epoch())

	// Nodes 1 and 2 join through node 0 — no member list, one seed
	// address each, id and rf adopted from the ring.
	nodes := []*cluster.Node{node0}
	addrs := map[hashring.NodeID]string{0: l0.Addr()}
	for i := 1; i <= 2; i++ {
		l := listen()
		o := opts(fmt.Sprintf("node-%d", i))
		o.AdvertiseAddr = l.Addr()
		n, jr, err := cluster.JoinRing(l, o, l0.Addr())
		if err != nil {
			log.Fatal(err)
		}
		nodes = append(nodes, n)
		addrs[n.ID()] = l.Addr()
		fmt.Printf("node %d joined via %s: epoch %d, %d ranges moved, %d cells streamed\n",
			n.ID(), l0.Addr(), jr.Epoch, jr.Moves, jr.CellsStreamed)
	}

	// A client discovers the ring the same way: one seed, everything
	// else (members, epoch, rf) learned over the wire.
	cli, err := cluster.Connect([]string{addrs[1]}, cluster.ClientOptions{Dialer: dial})
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()
	fmt.Printf("client connected: %d members at epoch %d, rf %d\n",
		cli.Ring().Size(), cli.Ring().Epoch(), cli.ReplicationFactor())

	const K = 5000
	key := func(i int) string { return fmt.Sprintf("cell-%05d", i) }
	for i := 0; i < K; i++ {
		if err := cli.Put(key(i), []byte("ck"), []byte(key(i))); err != nil {
			log.Fatal(err)
		}
	}

	// A fourth node joins under live traffic; the join must be invisible
	// to the client (wrong-epoch retries absorb the flip).
	var failed, ops atomic.Int64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, found, err := cli.Get(key(i%K), []byte("ck")); err != nil || !found {
				failed.Add(1)
			}
			ops.Add(1)
		}
	}()
	l3 := listen()
	o3 := opts("node-3")
	o3.AdvertiseAddr = l3.Addr()
	node3, jr, err := cluster.JoinRing(l3, o3, addrs[0])
	if err != nil {
		log.Fatal(err)
	}
	nodes = append(nodes, node3)
	addrs[node3.ID()] = l3.Addr()
	close(stop)
	<-done
	fmt.Printf("node %d joined under load: epoch %d, %d cells streamed (%.1f%% of %d), %d reads alongside, %d failed\n",
		node3.ID(), jr.Epoch, jr.CellsStreamed, 100*float64(jr.CellsStreamed)/K, K, ops.Load(), failed.Load())
	if failed.Load() > 0 {
		log.Fatal("deploy demo saw failed operations during the join")
	}

	// Kill node 2 without ceremony: its peers' probes flip it to down
	// after the suspicion window, and reads keep succeeding off the
	// surviving replicas.
	fmt.Println("killing node 2 (no departure announcement)...")
	victimAddr := addrs[2]
	nodes[2].Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if ph, ok := node0.PeerHealth()[2]; ok && !ph.Up {
			fmt.Printf("node 0 marked node 2 down (suspicion %d)\n", ph.Suspicion)
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("node 0 never noticed node 2 going down")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i := 0; i < K; i++ {
		if _, found, err := cli.Get(key(i), []byte("ck")); err != nil || !found {
			log.Fatalf("read %s with node 2 down: found=%v err=%v", key(i), found, err)
		}
	}
	fmt.Printf("all %d cells readable with node 2 down (%d failover reads)\n", K, cli.Failovers.Load())

	// Restart node 2 from its data directory alone: the persisted
	// topology file restores membership at the flipped epoch, and its
	// peers re-probe it up (kicking catch-up repair).
	l2, err := transport.ListenTCP(victimAddr, 0)
	if err != nil {
		log.Fatal(err)
	}
	o2 := opts("node-2")
	o2.ID = 2
	o2.AdvertiseAddr = victimAddr
	restarted, err := cluster.StartNode(l2, o2)
	if err != nil {
		log.Fatal(err)
	}
	nodes[2] = restarted
	fmt.Printf("node 2 restarted from disk at epoch %d with %d members — no seed needed\n",
		restarted.Topology().Epoch(), restarted.Topology().Size())
	for {
		if ph, ok := node0.PeerHealth()[2]; ok && ph.Up {
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("node 0 never saw node 2 return")
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Println("node 0 sees node 2 up again")

	// Graceful exit: Shutdown announces the departure so peers flip
	// health immediately instead of waiting out the suspicion window.
	for _, n := range nodes {
		if err := n.Shutdown(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("deploy demo complete: wire-level joins, probed health, persisted-topology restart")
}
