// Elastic: grow a live cluster. A 3-node in-process cluster ingests a
// stream of cells with continuous point reads while a fourth node
// joins: the coordinator snapshots the ownership diff, dual-writes the
// moving ranges, streams them to the new member, flips the topology
// epoch, and retires the moved data at its old owners. The demo reports
// ingest throughput, the flip pause, the moved-cell fraction, and
// verifies zero failed operations and full readability at the new
// epoch — the paper's "almost linear scalability by adding nodes",
// exercised end to end.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"scalekv"
)

func main() {
	cl, err := scalekv.StartClusterWith(scalekv.ClusterOptions{
		Nodes: 3,
		Storage: scalekv.StorageOptions{
			DisableWAL:     true,
			FlushThreshold: 256 << 10,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	c := cl.Client()
	key := func(i int) string { return fmt.Sprintf("cell-%07d", i) }

	const preload = 20000
	fmt.Printf("preloading %d cells into %d nodes (epoch %d)...\n",
		preload, cl.Topology().Size(), cl.Topology().Epoch())
	b := c.NewBatcher(scalekv.BatcherOptions{MaxEntries: 128})
	for i := 0; i < preload; i++ {
		if err := b.Put(key(i), []byte("ck"), []byte(key(i))); err != nil {
			log.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		log.Fatal(err)
	}

	// Live traffic: one writer ingesting fresh cells (bounded, so the
	// stream is not chasing an ever-growing keyspace on a small box),
	// one reader verifying preloaded ones, both running across the join.
	const liveWrites = 10000
	var (
		stop    atomic.Bool
		written atomic.Int64
		reads   atomic.Int64
		failed  atomic.Int64
	)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := preload; i < preload+liveWrites && !stop.Load(); i++ {
			if err := c.Put(key(i), []byte("ck"), []byte(key(i))); err != nil {
				failed.Add(1)
				return
			}
			written.Add(1)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i = (i + 13) % preload {
			v, found, err := c.Get(key(i), []byte("ck"))
			if err != nil || !found || string(v) != key(i) {
				failed.Add(1)
				return
			}
			reads.Add(1)
		}
	}()

	ingestStart := time.Now()
	fmt.Println("adding node 3 under live traffic...")
	node, report, err := cl.AddNode()
	if err != nil {
		log.Fatal(err)
	}
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(ingestStart)

	total := preload + int(written.Load())
	fmt.Printf("join complete: epoch %d, %d members\n", report.Epoch, cl.Topology().Size())
	fmt.Printf("  moves:           %d ranges, %d pages\n", len(report.Moves), report.Pages)
	fmt.Printf("  cells streamed:  %d (%.1f%% of %d; ideal 1/N = %.1f%%)\n",
		report.CellsStreamed, 100*float64(report.CellsStreamed)/float64(total),
		total, 100.0/float64(cl.Topology().Size()))
	fmt.Printf("  cells retired:   %d at the old owners\n", report.CellsRetired)
	fmt.Printf("  stream time:     %v (traffic kept flowing)\n", report.StreamDuration.Round(time.Millisecond))
	fmt.Printf("  flip pause:      %v\n", report.FlipDuration.Round(time.Microsecond))
	fmt.Printf("  during the join: %d writes, %d reads, %d failures\n",
		written.Load(), reads.Load(), failed.Load())
	fmt.Printf("  ingest+read throughput alongside the join: %.0f ops/sec\n",
		float64(written.Load()+reads.Load())/elapsed.Seconds())
	if failed.Load() > 0 {
		log.Fatal("elastic demo saw failed operations")
	}

	// Every cell — preloaded and ingested mid-join — reads back at the
	// new epoch.
	for i := 0; i < total; i++ {
		v, found, err := c.Get(key(i), []byte("ck"))
		if err != nil || !found || string(v) != key(i) {
			log.Fatalf("cell %s unreadable at epoch %d: err=%v found=%v", key(i), report.Epoch, err, found)
		}
	}
	fmt.Printf("verified: all %d cells readable at epoch %d; new node serves %d partitions\n",
		total, report.Epoch, len(node.Engine().Partitions()))
}
