// Particles runs the paper's case study end to end: simulate an
// Alya-style inhalation (particles advected into a bronchial tree),
// index the records with the denormalized D8-tree over a cluster, and
// answer region queries at the granularity the performance model picks.
package main

import (
	"fmt"
	"log"
	"time"

	"scalekv"
	"scalekv/internal/alya"
)

func main() {
	// 1. Generate the dataset: particle states over an inhalation.
	fmt.Println("simulating inhalation (1500 particles x 25 steps)...")
	records := alya.Simulate(alya.Config{Particles: 1500, Steps: 25, Types: 4, Seed: 7})
	fmt.Printf("  %d records\n", len(records))
	deposition := alya.DepositionByType(records)
	for ty := uint8(0); ty < 4; ty++ {
		fmt.Printf("  type %d deposited: %.0f%%\n", ty, deposition[ty]*100)
	}

	// 2. Index into a 4-node cluster through the D8-tree: every record
	// is denormalized into cubes at levels 0..3.
	cl, err := scalekv.StartClusterWith(scalekv.ClusterOptions{
		Nodes:   4,
		Storage: scalekv.StorageOptions{DisableWAL: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	tree := scalekv.NewD8Tree(scalekv.ClientStore(cl.Client()), scalekv.D8TreeOptions{MaxLevel: 3})

	fmt.Println("indexing through the D8-tree (4 levels, 4x denormalization, batched)...")
	start := time.Now()
	points := make([]scalekv.Point, len(records))
	for i, r := range records {
		points[i] = scalekv.Point{
			ID:   uint64(i),
			X:    r.X,
			Y:    r.Y,
			Z:    r.Z,
			Type: r.Type,
		}
	}
	// InsertBatch ships every denormalized copy through the cluster's
	// batched write path: entries are grouped by destination node and
	// group-committed there, instead of MaxLevel+1 RPCs per point.
	const loadChunk = 4096
	for lo := 0; lo < len(points); lo += loadChunk {
		hi := min(lo+loadChunk, len(points))
		if err := tree.InsertBatch(points[lo:hi]); err != nil {
			log.Fatal(err)
		}
	}
	if err := cl.FlushAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  indexed %d points in %v\n", len(records), time.Since(start).Round(time.Millisecond))

	// 3. Query: which particle types reach the left lung's deeper
	// generations? (The airway tree descends from y=1 toward y=0.5, so
	// the deep-airway band is y in [0.5, 0.75]; the left lung is
	// x < 0.5.)
	region := scalekv.Box{
		MinX: 0.0, MaxX: 0.5,
		MinY: 0.5, MaxY: 0.75,
		MinZ: 0.0, MaxZ: 1.0,
	}

	// The D8-tree can answer at any level; the model chooses.
	sys := scalekv.PaperSystem()
	plan := tree.PlanQuery(region, sys, 4, len(records))
	fmt.Printf("model-chosen level for this region: %d (%d cubes, predicted %.1f ms on the paper's hardware)\n",
		plan.Level, plan.Keys, plan.Prediction.TotalMs)

	for level := 0; level <= 3; level++ {
		start := time.Now()
		res, err := tree.Query(region, level)
		if err != nil {
			log.Fatal(err)
		}
		marker := " "
		if level == plan.Level {
			marker = "*"
		}
		fmt.Printf("%s level %d: %4d cubes read, %6d cells scanned, %5d hits, %v\n",
			marker, level, res.CubesRead, res.CellsScanned, len(res.Points),
			time.Since(start).Round(time.Microsecond))
	}

	counts, err := tree.CountByType(region, plan.Level)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deposition census in the region (count by type):")
	for ty := uint8(0); ty < 4; ty++ {
		fmt.Printf("  type %d: %d\n", ty, counts[ty])
	}
}
