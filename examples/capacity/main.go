// Capacity is the Section VII workflow as a planning tool: given a
// workload and an SLA, use the analytical model to choose the partition
// count, size the cluster, and know in advance where the master-slave
// architecture stops scaling — before buying any hardware.
package main

import (
	"fmt"

	"scalekv"
	"scalekv/internal/core"
)

func main() {
	const elements = 1_000_000
	sys := scalekv.PaperSystem()

	fmt.Println("Workload: count-by-type over 1M indexed elements.")
	fmt.Println("Stack: the paper's calibration (Cassandra-like DB, 19us/msg master).")
	fmt.Println()

	// 1. How should the data be partitioned at each cluster size?
	fmt.Println("1) Optimizer sweep (Figure 9): partitions to use per cluster size")
	fmt.Printf("%8s %12s %12s %14s\n", "nodes", "partitions", "row_size", "predicted_ms")
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		k, p := sys.OptimalKeys(elements, n, 100, 100_000)
		fmt.Printf("%8d %12d %12.0f %14.1f\n", n, k, p.RowSize, p.TotalMs)
	}
	fmt.Println()

	// 2. What cluster size meets a 300ms SLA?
	const slaMs = 300
	fmt.Printf("2) SLA sizing: smallest cluster under %d ms\n", slaMs)
	sized := 0
	for n := 1; n <= 128; n++ {
		if _, p := sys.OptimalKeys(elements, n, 100, 100_000); p.TotalMs <= slaMs {
			sized = n
			break
		}
	}
	if sized == 0 {
		fmt.Println("   no master-slave cluster meets the SLA — the master saturates first")
	} else {
		fmt.Printf("   %d nodes\n", sized)
	}
	fmt.Println()

	// 3. Where does the single master stop scaling?
	fmt.Println("3) Architecture limits (Figure 11 / Section VII)")
	cross := sys.MasterLimit(elements, 100, 100_000, 256)
	fmt.Printf("   random distribution: master-bound beyond ~%d nodes (paper: ~70)\n", cross)
	fmt.Printf("   replica-selection:   master-bound beyond ~%d nodes (paper: ~32)\n",
		sys.ReplicaSelectionLimit(250, 16))
	slow := scalekv.PaperSlowSystem()
	fmt.Printf("   unoptimized master:  master-bound beyond ~%d nodes\n",
		slow.MasterLimit(elements, 100, 100_000, 256))
	fmt.Println()

	// 4. Future-work extension: the same workload on tiered memory.
	fmt.Println("4) Tiered storage (Section IX): 1M elements with a 300GB working set")
	tiered := sys.WithHierarchy(core.KNLTiers(), 300<<30)
	k, p := tiered.OptimalKeys(elements, 16, 100, 100_000)
	_, flat := sys.OptimalKeys(elements, 16, 100, 100_000)
	fmt.Printf("   flat model:   %.1f ms at 16 nodes\n", flat.TotalMs)
	fmt.Printf("   tiered model: %.1f ms at 16 nodes (optimal partitions %d)\n", p.TotalMs, k)
	fmt.Println("   spilling past DRAM shifts the optimum and the SLA answer —")
	fmt.Println("   the model exposes it before deployment.")
}
