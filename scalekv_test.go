package scalekv

import (
	"fmt"
	"math"
	"testing"
)

func TestQuickstartRoundTrip(t *testing.T) {
	cl, err := StartCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	c := cl.Client()
	for i := 0; i < 30; i++ {
		if err := c.Put("events", []byte(fmt.Sprintf("%04d", i)), []byte{byte(i % 2), 0xFF}); err != nil {
			t.Fatal(err)
		}
	}
	counts, total, err := c.Count("events")
	if err != nil {
		t.Fatal(err)
	}
	if total != 30 || counts[0] != 15 || counts[1] != 15 {
		t.Fatalf("counts %v total %d", counts, total)
	}
}

func TestFacadeBatcherRoundTrip(t *testing.T) {
	cl, err := StartClusterWith(ClusterOptions{
		Nodes: 3, ReplicationFactor: 2,
		Storage: StorageOptions{DisableWAL: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	c := cl.Client()

	b := c.NewBatcher(BatcherOptions{MaxEntries: 32})
	const n = 500
	for i := 0; i < n; i++ {
		pk := fmt.Sprintf("events-%02d", i%20)
		if err := b.Put(pk, []byte(fmt.Sprintf("%04d", i)), []byte{byte(i % 2), 0xFF}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	keys := make([]GetKey, 0, n)
	for i := 0; i < n; i++ {
		keys = append(keys, GetKey{PK: fmt.Sprintf("events-%02d", i%20), CK: []byte(fmt.Sprintf("%04d", i))})
	}
	values, err := c.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range values {
		if !v.Found || v.Value[0] != byte(i%2) {
			t.Fatalf("key %d: found=%v value=%v", i, v.Found, v.Value)
		}
	}
}

func TestD8TreeInsertBatchOverCluster(t *testing.T) {
	cl, err := StartCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	tree := NewD8Tree(ClientStore(cl.Client()), D8TreeOptions{MaxLevel: 2})
	// ClientStore must expose the batch path.
	if _, ok := ClientStore(cl.Client()).(BatchKVStore); !ok {
		t.Fatal("ClientStore does not implement BatchKVStore")
	}
	pts := make([]Point, 100)
	for i := range pts {
		pts[i] = Point{
			ID: uint64(i), X: float64(i%10) / 10, Y: float64(i/10) / 10, Z: 0.5,
			Type: uint8(i % 3),
		}
	}
	if err := tree.InsertBatch(pts); err != nil {
		t.Fatal(err)
	}
	counts, err := tree.CountByType(Box{MaxX: 1, MaxY: 1, MaxZ: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, n := range counts {
		sum += n
	}
	if sum != 100 {
		t.Fatalf("counted %d points want 100", sum)
	}
}

func TestFacadeModelMatchesCore(t *testing.T) {
	sys := PaperSystem()
	p := sys.Predict(1_000_000, 4000, 8)
	if p.TotalMs <= 0 {
		t.Fatal("prediction not positive")
	}
	if math.Abs(ImbalanceRatio(200, 10)-0.339) > 0.002 {
		t.Fatal("Formula 1 via facade wrong")
	}
	if math.Abs(MaxKeysPerNode(100, 16)-10.4) > 0.1 {
		t.Fatal("Formula 5 via facade wrong")
	}
}

func TestFacadeSimulate(t *testing.T) {
	res := Simulate(SimConfig{Nodes: 4, Keys: 100, RowSize: 100, Seed: 1,
		Calib: PaperCalibration(true)})
	if res.Total <= 0 {
		t.Fatal("simulation produced no time")
	}
}

func TestD8TreeOverCluster(t *testing.T) {
	cl, err := StartCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	tree := NewD8Tree(ClientStore(cl.Client()), D8TreeOptions{MaxLevel: 2})
	for i := 0; i < 100; i++ {
		p := Point{
			ID:   uint64(i),
			X:    float64(i%10) / 10,
			Y:    float64(i/10) / 10,
			Z:    0.5,
			Type: uint8(i % 3),
		}
		if err := tree.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	counts, err := tree.CountByType(Box{MaxX: 1, MaxY: 1, MaxZ: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, n := range counts {
		sum += n
	}
	if sum != 100 {
		t.Fatalf("counted %d points want 100", sum)
	}
}

func TestD8TreeOverEngine(t *testing.T) {
	e, err := OpenEngine(StorageOptions{Dir: t.TempDir(), DisableWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tree := NewD8Tree(EngineStore(e), D8TreeOptions{MaxLevel: 2})
	if err := tree.Insert(Point{ID: 1, X: 0.25, Y: 0.25, Z: 0.25, Type: 2}); err != nil {
		t.Fatal(err)
	}
	res, err := tree.Query(Box{MaxX: 0.5, MaxY: 0.5, MaxZ: 0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 || res.Points[0].Type != 2 {
		t.Fatalf("query returned %v", res.Points)
	}
}

// TestCaseStudyPipeline runs the paper's whole case study at small
// scale: Alya-style particles, indexed by the D8-tree into the cluster,
// queried by the master fan-out over the cube partitions a level
// defines — the exact experiment of Section V, end to end on the real
// stack.
func TestCaseStudyPipeline(t *testing.T) {
	cl, err := StartClusterWith(ClusterOptions{
		Nodes:   4,
		Storage: StorageOptions{DisableWAL: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tree := NewD8Tree(ClientStore(cl.Client()), D8TreeOptions{MaxLevel: 2})
	const n = 600
	for i := 0; i < n; i++ {
		p := Point{
			ID:   uint64(i),
			X:    float64(i%25)/25 + 0.01,
			Y:    float64((i/25)%24)/25 + 0.01,
			Z:    0.5,
			Type: uint8(i % 4),
		}
		if p.X >= 1 {
			p.X = 0.99
		}
		if err := tree.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// The master-style query over the level-2 cube partitions: this is
	// the "pre-computed list of keys" workload of Section V.
	var cubes []string
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			cubes = append(cubes, fmt.Sprintf("L2-%d-%d-2", x, y))
		}
	}
	res, err := cl.Client().CountAll(cubes, MasterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elements != n {
		t.Fatalf("fan-out counted %d elements want %d", res.Elements, n)
	}
	for ty := uint8(0); ty < 4; ty++ {
		if res.Counts[ty] != n/4 {
			t.Fatalf("type %d count %d want %d", ty, res.Counts[ty], n/4)
		}
	}
	// Stage trace covers every cube request.
	if res.Trace.Len() != 4*len(cubes) {
		t.Fatalf("trace %d spans want %d", res.Trace.Len(), 4*len(cubes))
	}
}

func TestSectionVIIWorkflow(t *testing.T) {
	// The model-driven design loop from the paper's Section VII: pick
	// partitions with the optimizer, check master limits before scaling.
	sys := PaperSystem()
	keys, pred := sys.OptimalKeys(1_000_000, 16, 100, 100_000)
	if keys <= 0 || pred.TotalMs <= 0 {
		t.Fatal("optimizer failed")
	}
	limit := sys.MasterLimit(1_000_000, 100, 100_000, 128)
	if limit < 16 {
		t.Fatalf("master limit %d implausibly low", limit)
	}
}
