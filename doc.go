// Package scalekv is a reproduction of "Exploiting key-value data
// stores scalability for HPC" (Cugnasco, Becerra, Torres, Ayguadé —
// ICPP 2017) as a reusable Go library.
//
// The paper's contribution is twofold: a benchmarking methodology that
// decomposes every distributed request into four stages
// (master-to-slaves, in-queue, in-cassandra, slaves-to-master), and an
// analytical model — total = max{master, slowest slave, result fetch} —
// that, fed with per-component regressions, predicts end-to-end query
// time, finds the optimal partition count for a workload, and locates
// the cluster size at which a single master stops scaling.
//
// This module implements the full stack the paper runs on:
//
//   - a Cassandra-like wide-column store (murmur3 token ring,
//     memtables, block-based SSTables with per-table bloom filters,
//     prefix-compressed ~4KB data blocks and a lazily-loaded block
//     index, so a cold point read costs the index plus one block):
//     internal/storage, internal/cluster. The storage engine is
//     lock-striped into shards (StorageOptions.Shards, default 8), each
//     with its own memtable, WAL segments and background flusher: a
//     write appends to the shard WAL and memtable and returns, the
//     frozen memtable is turned into an SSTable off the write path, and
//     leveled compaction (L0 flush zone, budgeted disjoint-range levels
//     below, per-shard crash-atomic manifest — see
//     docs/sstable-format.md) likewise runs per shard in the
//     background, so neither flush nor compaction ever stalls the
//     node's request loop and write amplification stays bounded as the
//     store grows. Reads
//     are lock- and allocation-free: each shard publishes an immutable
//     refcounted view of its memtables and tables through one atomic
//     pointer, and point reads search it via a stack-built key (see the
//     internal/storage package doc for the full concurrency model);
//   - the two serialization codecs of the Section V-B experiment
//     (reflective self-describing vs registered binary): internal/wire;
//   - a deterministic discrete-event simulator and the paper's
//     master-slave prototype on top of it, reproducing the Figure 1-5
//     scaling experiments on any machine: internal/sim,
//     internal/master;
//   - the analytical model itself (Formulas 1-8), the partition-count
//     optimizer, the loss decomposition and the master-limit analysis:
//     internal/core;
//   - the case study: a synthetic Alya-style particle advection dataset
//     and the denormalized D8-tree index over the store:
//     internal/alya, internal/d8tree;
//   - one driver per paper figure: internal/figures, exposed by
//     cmd/kvbench (paper figures only — system benchmarks live in the
//     workload lab, cmd/kvload);
//   - the standing workload lab: YCSB-style mixes, deterministic
//     Zipfian traffic, fixed-bucket latency histograms and the
//     BENCH_*.json perf-trajectory schema: internal/workload, exposed
//     by cmd/kvload.
//
// This package is the facade: it re-exports the model, the simulated
// prototype, the real cluster and the index so applications depend on a
// single import path.
//
// Quick start:
//
//	cl, err := scalekv.StartCluster(4)
//	if err != nil { ... }
//	defer cl.Close()
//	c := cl.Client()
//	c.Put("sensor-42", []byte("2026-06-10T12:00"), []byte{1, 0xCA})
//	counts, total, err := c.Count("sensor-42")
//
// Bulk ingest goes through a Batcher: writes are buffered per
// destination node (replica-aware), flushed as BatchPutRequest frames
// when a node's buffer crosses the entry or byte threshold, and up to
// MaxInFlight batches per node ride the pipelined transport
// concurrently. Each node group-commits a batch under one lock
// acquisition and one WAL write, so load throughput is bounded by the
// hardware rather than by per-cell round trips:
//
//	b := c.NewBatcher(scalekv.BatcherOptions{MaxEntries: 64})
//	for _, e := range dataset {
//		if err := b.Put(e.PK, e.CK, e.Value); err != nil { ... }
//	}
//	if err := b.Close(); err != nil { ... }
//
// Point reads batch the same way: Client.MultiGet answers many keys
// with one round trip per involved node.
//
// # Elastic topology
//
// The cluster grows and shrinks under live traffic — the capability the
// paper's "almost linear scalability" rests on. The token ring is an
// epoch-versioned, immutable Topology: every membership change produces
// a new topology (epoch+1) plus an ownership diff, the exact token
// ranges whose owner changed. Cluster.AddNode and Cluster.RemoveNode
// execute the change as a state machine:
//
//  1. snapshot the diff and pick a streaming source per range (the
//     least-loaded old owner, by engine stats);
//
//  2. open the dual-write window — source nodes forward in-range
//     writes to the new owner, so nothing lands behind the streamer;
//
//  3. stream each range, paged and token-ordered, out of the source
//     engine (ScanRange) into the target;
//
//  4. flip the epoch on every node. Requests carry the epoch they were
//     routed under; a node at a different epoch rejects them, and the
//     client refreshes its ring (RingStateRequest) and re-routes —
//     stale clients recover on their next operation;
//
//  5. retire the moved ranges at their old owners (DeleteRange).
//
// The whole sequence runs behind one call:
//
//	node, report, err := cl.AddNode() // under live traffic
//	fmt.Println(report.CellsStreamed, report.FlipDuration)
//
// Reads are failover-aware independently of rebalancing: Get, MultiGet,
// Scan and Count step to the next replica when a node is unreachable,
// so with ReplicationFactor > 1 a dead primary degrades reads instead
// of failing them.
//
// # Consistency: versioned cells, last-write-wins, real deletes
//
// Every cell carries a Version — a (Seq, Node) hybrid counter stamped
// by the engine that accepted the write — and conflicts are resolved by
// last-write-wins on that version wherever two copies of a cell meet: a
// memtable overwrite, a read merging memtables with SSTables, a
// compaction, or a replica receiving both a rebalance-streamed copy and
// a dual-write-forwarded overwrite of the same cell. Stream pages and
// forwards ship the original stamps verbatim, so every replica picks
// the same winner no matter which copy arrives last — the property that
// makes overwrites (and deletes) during an AddNode/RemoveNode converge.
//
// Client.Delete is a first-class distributed write: the accepting node
// stamps a tombstone that masks every older copy of the cell — in
// memtables, in SSTables, on replicas, across flushes, compactions and
// process restarts — until compaction collects it under the shard's GC
// watermark (the lowest version an unflushed memtable might still
// hold). While the node is the target of a range migration, or an
// anti-entropy pass is running, a fence suspends that collection for
// the in-flight ranges: a stale streamed copy arriving after its
// masking tombstone would otherwise have been collected still finds
// the delete in force. Deleted means deleted, not "until the next
// flush" — and not "until an unlucky rebalance" either. One
// Cassandra-shaped caveat remains: the watermark and fence are local,
// so a replica that was DOWN for the delete and stayed away until the
// surviving replicas collected the tombstone can reintroduce the old
// value through a later repair (the classic gc_grace discipline —
// repair must run between a delete and the tombstone's collection;
// Engine.FenceRange is also available to hold GC across planned
// maintenance).
//
// ClientOptions.ReadRepair (off by default) adds best-effort
// convergence on the read path: a Get that failed over to a later
// replica re-puts the cell it found — or the tombstone it hit, so
// deletes propagate too — at its original version, to the replicas it
// skipped. LWW makes the repair harmless (a replica holding something
// newer keeps it); it narrows divergence after an outage but repairs
// only what failover reads touch and never pre-versioning cells.
//
// # Anti-entropy: digest-tree replica repair
//
// Read-repair is opportunistic; Cluster.Repair is the convergence
// guarantee. One pass walks every replicated token range of the
// current topology and, for each range, compares Merkle-style digests
// (Engine.RangeDigest: per-bucket hashes of (pk, ck, version, flags)
// tuples, tombstones included) between the range's owners over the
// DigestRequest/DigestResponse exchange. Matching leaves are skipped;
// mismatched leaves are descended into with narrower digests while
// they stay large, then reconciled by streaming the leaf's cells from
// both owners (the epoch-0 range stream) and shipping each side's
// last-write-wins winners to the other at their original versions. A
// replica can only move forward: anything newer it already holds wins
// its local merge. After one pass every replica of a range is
// logically identical — same winners, same tombstones — no matter
// which dual-write forwards were dropped or which replica each
// concurrent writer reached; a pass over a converged cluster ships
// nothing and costs only digests.
//
//	report, err := cl.Repair(2) // rf; <=0 means the cluster's factor
//	fmt.Println(report.CellsShipped, report.LeafMismatches)
//
// Client.RepairRange / Client.RepairAll run the same pass from any
// client (cmd/kvstore exposes it as the `repair` subcommand, one-shot
// or periodic via -repair-every). Divergent cells written before
// versioning are left alone — their zero versions cannot be ordered —
// and are counted in the report.
//
// On disk, tables are SSTable format v3 (sorted data blocks with
// restart-point prefix compression, per-block CRCs, a block index and
// partition directory fetched on first use — docs/sstable-format.md is
// the full layout). Tables written by earlier revisions stay readable
// — v1 cells carry the zero version and lose to any stamped write —
// and compaction rewrites them to v3 as they participate in merges;
// the SHARDS manifest records the format generation.
//
// Durability is tunable per node via StorageOptions.Sync: SyncNever
// (default; fsync only at segment close), SyncOnSeal (fsync when a
// memtable freezes) or SyncAlways (fsync every write call; batches
// amortize it to one fsync per batch).
//
// # The workload lab
//
// Perf claims about this system are made with cmd/kvload, not ad-hoc
// timings: it drives a named YCSB-style mix — read-heavy (95/5),
// update-heavy (50/50), scan-heavy, hotspot (Zipfian-skewed keys,
// configurable theta) or delete-churn — against an in-process,
// loopback-TCP or deployed cluster, stepping through a client-count
// saturation sweep. Per-op latency lands in fixed-bucket histograms
// (no hot-path allocation; each worker owns its histogram and they
// merge afterwards), and the run is persisted as BENCH_<mix>.json:
// schema version, git revision, date, load-phase rate, and per-step
// throughput plus a p50/p95/p99/p99.9/max table in microseconds —
// latency percentiles, not just means, because saturation tails are
// where scaling regressions show first. Key choice is deterministic
// under a fixed seed (the Zipfian generator is Gray et al.'s
// incremental algorithm, as in YCSB), so two runs of the same rev are
// comparable draw for draw. CI runs the quick mode every push (`make
// bench-workload`), validates the schema and uploads the JSON; the
// committed BENCH_* files form the cross-PR performance trajectory.
// internal/workload is the library behind the binary; anything
// satisfying its Store interface — cluster.Client does — can be
// driven, so tests reuse the same mixes and histograms.
//
// Model-driven design, as in the paper's Section VII:
//
//	sys := scalekv.PaperSystem()
//	keys, pred := sys.OptimalKeys(1_000_000, 16, 100, 100_000)
//	fmt.Println(keys, pred.TotalMs, pred.Bottleneck)
package scalekv
