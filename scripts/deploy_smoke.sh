#!/usr/bin/env bash
# Multi-process deployment smoke: three real kvstore processes form a
# ring over loopback TCP (one bootstrap + two wire-level joins), kvload
# drives a mixed workload at them, a fourth process joins mid-load, and
# the run must finish with zero failed operations and a 4-member ring.
# This is the one gate that exercises the deployment story across
# process boundaries — everything else in CI runs in a single process.
set -euo pipefail

cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "deploy-smoke: building binaries..."
go build -o "$WORK/kvstore" ./cmd/kvstore
go build -o "$WORK/kvload" ./cmd/kvload

PORT0=${DEPLOY_SMOKE_PORT:-7411}
ADDR0="127.0.0.1:$PORT0"
ADDR1="127.0.0.1:$((PORT0 + 1))"
ADDR2="127.0.0.1:$((PORT0 + 2))"
ADDR3="127.0.0.1:$((PORT0 + 3))"

# wait_members <count> blocks until `kvstore status` reports the ring
# at the expected size (joins are serialized server-side, so each join
# must complete before the next starts).
wait_members() {
    want=$1
    for _ in $(seq 1 100); do
        # Capture instead of piping into grep -q: an early grep exit
        # would SIGPIPE the status command, and pipefail would read the
        # successful match as a failure.
        out=$("$WORK/kvstore" status -nodes "$ADDR0" 2>/dev/null) || out=""
        case "$out" in
        *"$want members"*) return 0 ;;
        esac
        sleep 0.2
    done
    echo "deploy-smoke: ring never reached $want members" >&2
    "$WORK/kvstore" status -nodes "$ADDR0" >&2 || true
    return 1
}

echo "deploy-smoke: bootstrapping node 0 on $ADDR0 (rf 2)..."
"$WORK/kvstore" serve -addr "$ADDR0" -dir "$WORK/d0" -rf 2 \
    -probe-interval 250ms -repair-interval 30s &
PIDS+=($!)
wait_members 1

echo "deploy-smoke: joining nodes 1 and 2..."
"$WORK/kvstore" serve -addr "$ADDR1" -dir "$WORK/d1" -join "$ADDR0" \
    -probe-interval 250ms -repair-interval 30s &
PIDS+=($!)
wait_members 2
"$WORK/kvstore" serve -addr "$ADDR2" -dir "$WORK/d2" -join "$ADDR0" \
    -probe-interval 250ms -repair-interval 30s &
PIDS+=($!)
wait_members 3

echo "deploy-smoke: starting kvload against the 3-node ring..."
"$WORK/kvload" -mix update-heavy -addr "$ADDR0" \
    -keys 2000 -cells 2 -value 64 -clients 2 -duration 8s \
    -out "$WORK" >"$WORK/kvload.out" 2>&1 &
LOAD_PID=$!
PIDS+=("$LOAD_PID")

# Give the load time to finish preloading and enter the measured step,
# then join the fourth node mid-traffic.
sleep 3
echo "deploy-smoke: joining node 3 under live load..."
"$WORK/kvstore" serve -addr "$ADDR3" -dir "$WORK/d3" -join "$ADDR0" \
    -probe-interval 250ms -repair-interval 30s &
PIDS+=($!)
wait_members 4

if ! wait "$LOAD_PID"; then
    echo "deploy-smoke: kvload failed" >&2
    cat "$WORK/kvload.out" >&2
    exit 1
fi
cat "$WORK/kvload.out"

# Zero failed operations across the join: every measured step must
# report "0 errors".
if ! grep -q 'ops/sec' "$WORK/kvload.out"; then
    echo "deploy-smoke: kvload produced no measured steps" >&2
    exit 1
fi
if grep 'ops/sec' "$WORK/kvload.out" | grep -vq ' 0 errors'; then
    echo "deploy-smoke: kvload saw failed operations during the join" >&2
    exit 1
fi

echo "deploy-smoke: final cluster state:"
"$WORK/kvstore" status -nodes "$ADDR0"

# Data written through one member reads back through another.
"$WORK/kvstore" -nodes "$ADDR1" put smoke-pk ck smoke-value >/dev/null
GOT=$("$WORK/kvstore" -nodes "$ADDR3" get smoke-pk ck)
if [ "$GOT" != "smoke-value" ]; then
    echo "deploy-smoke: cross-member read returned '$GOT'" >&2
    exit 1
fi

echo "deploy-smoke: OK — 4-member ring, zero failed ops under a live join"
