# Targets mirror the CI jobs (.github/workflows/ci.yml); `make build
# test` is the tier-1 verify.

.PHONY: build test bench lint

build:
	go build ./...

test:
	go test -race ./...

bench:
	go test -run=NONE -bench=. -benchtime=1x ./...

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	go vet ./...
