# Targets mirror the CI jobs (.github/workflows/ci.yml); `make build
# test` is the tier-1 verify.

.PHONY: build test bench bench-engine bench-rebalance bench-delete bench-repair lint

build:
	go build ./...

test:
	go test -race -shuffle=on ./...

bench:
	go test -run=NONE -bench=. -benchtime=1x ./...

# The mixed read/write benches (parallel Get+Put on the sharded engine,
# and against a RF=2 cluster) are the lock-contention canary: run them
# on any change to internal/storage's hot path.
bench-engine:
	go test -run=NONE -bench=EngineMixedParallel -benchtime=0.5s ./internal/storage/
	go test -run=NONE -bench=ClusterMixedRW -benchtime=0.5s .

# Elasticity canary: ingest + read throughput while a node joins, the
# epoch-flip pause and the moved-cell count. Run on any change to the
# hashring diff, the coordinator state machine, or the client's
# epoch-retry/failover paths.
bench-rebalance:
	go test -run=NONE -bench=Rebalance -benchtime=3x .

# Delete-path canary: mixed Put/Get/Delete throughput on the engine
# (tombstone writes + versioned merge), plus the delete-under-rebalance
# convergence smoke (overwrites and deletes racing a live join must end
# identical on every replica). Run on any change to cell versioning,
# tombstones, or the LWW merge.
bench-delete:
	go test -run=NONE -bench=EngineMixedDelete -benchtime=0.5s ./internal/storage/
	go test -run 'TestOverwriteAndDeleteDuringRebalanceConverge' -count=1 ./internal/cluster/

# Anti-entropy canary: repair a seeded-divergence rf=2 cluster (cells
# reconciled/sec) and digest a converged one (must ship zero cells),
# plus the repair-convergence test. Run on any change to the digest
# tree, the repair walk, tombstone GC or the migration fence.
bench-repair:
	go test -run=NONE -bench=Repair -benchtime=3x .
	go test -run 'TestRepairConverges' -count=1 ./internal/cluster/

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	go vet ./...
