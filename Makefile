# Targets mirror the CI jobs (.github/workflows/ci.yml); `make build
# test` is the tier-1 verify.

.PHONY: build test bench bench-engine bench-rebalance bench-delete bench-repair bench-workload bench-compare bench-sstable fuzz-smoke deploy-smoke lint

build:
	go build ./...

test:
	go test -race -shuffle=on ./...

bench:
	go test -run=NONE -bench=. -benchtime=1x ./...

# The mixed read/write benches (parallel Get+Put on the sharded engine,
# and against a RF=2 cluster) are the lock-contention canary: run them
# on any change to internal/storage's hot path.
bench-engine:
	go test -run=NONE -bench=EngineMixedParallel -benchtime=0.5s ./internal/storage/
	go test -run=NONE -bench=ClusterMixedRW -benchtime=0.5s .

# Elasticity canary: ingest + read throughput while a node joins, the
# epoch-flip pause and the moved-cell count. Run on any change to the
# hashring diff, the coordinator state machine, or the client's
# epoch-retry/failover paths.
bench-rebalance:
	go test -run=NONE -bench=Rebalance -benchtime=3x .

# Delete-path canary: mixed Put/Get/Delete throughput on the engine
# (tombstone writes + versioned merge), plus the delete-under-rebalance
# convergence smoke (overwrites and deletes racing a live join must end
# identical on every replica). Run on any change to cell versioning,
# tombstones, or the LWW merge.
bench-delete:
	go test -run=NONE -bench=EngineMixedDelete -benchtime=0.5s ./internal/storage/
	go test -run 'TestOverwriteAndDeleteDuringRebalanceConverge' -count=1 ./internal/cluster/

# Anti-entropy canary: repair a seeded-divergence rf=2 cluster (cells
# reconciled/sec) and digest a converged one (must ship zero cells),
# plus the repair-convergence test. Run on any change to the digest
# tree, the repair walk, tombstone GC or the migration fence.
bench-repair:
	go test -run=NONE -bench=Repair -benchtime=3x .
	go test -run 'TestRepairConverges' -count=1 ./internal/cluster/

# Workload lab, quick mode (≤60s): the read-heavy and hotspot mixes of
# cmd/kvload against a 4-node in-process cluster, each persisted as
# BENCH_<mix>.json and schema-validated — the perf-trajectory record
# every PR's latency/throughput claim is judged against. CI uploads
# the JSON as a build artifact. Full-length local runs: drop -quick
# (the files are gitignored; commit intentionally to extend the
# committed trajectory).
GITREV := $(shell git rev-parse --short HEAD 2>/dev/null || echo unknown)
bench-workload:
	go run ./cmd/kvload -mix read-heavy -quick -gitrev $(GITREV)
	go run ./cmd/kvload -mix hotspot -quick -gitrev $(GITREV)
	go run ./cmd/kvload -validate BENCH_read-heavy.json BENCH_hotspot.json

# Regression gate against the committed trajectory: re-run the quick
# mixes into a scratch directory and diff each against its committed
# BENCH_<mix>.json (exit 3 on a throughput loss or p99 growth beyond
# TOLERANCE at any matched client count; default 10%). CI runs this as
# a non-blocking report — shared runners are too noisy for a hard gate
# — but locally it is the before/after check for any hot-path change:
# `make bench-compare TOLERANCE=0.05` tightens the gate for cache-level
# wins that a 10% band would hide.
TOLERANCE ?= 0.10
bench-compare:
	@mkdir -p .bench-fresh
	@status=0; \
	go run ./cmd/kvload -mix read-heavy -quick -gitrev $(GITREV) -out .bench-fresh && \
	go run ./cmd/kvload -mix hotspot -quick -gitrev $(GITREV) -out .bench-fresh && \
	go run ./cmd/kvload -compare -tolerance $(TOLERANCE) BENCH_read-heavy.json .bench-fresh/BENCH_read-heavy.json && \
	go run ./cmd/kvload -compare -tolerance $(TOLERANCE) BENCH_hotspot.json .bench-fresh/BENCH_hotspot.json || status=$$?; \
	rm -rf .bench-fresh; \
	exit $$status

# SSTable canaries: cold point-read cost (must stay index + one block),
# full-scan throughput through the block iterator, the read-path memory
# hierarchy on a larger-than-cache working set (hit path, miss path,
# scan-through-compressed), and the delete-churn write-amp / table-count
# bound the leveled compactor enforces. Run on any change to
# internal/sstable, the block cache or the compaction policy.
bench-sstable:
	go test -run=NONE -bench='V3ColdPointRead|V3FullScan' -benchtime=0.5s ./internal/sstable/
	go test -run=NONE -bench='CacheHitPointRead|CacheMissPointRead|ScanThroughCompressed' -benchtime=0.5s ./internal/sstable/
	go test -run=NONE -bench='DeleteChurn|GrowingIngest' -benchtime=100000x ./internal/storage/

# Multi-process deployment smoke: three kvstore processes form a ring
# over TCP (bootstrap + two wire-level joins), kvload drives a mixed
# workload, a fourth process joins mid-load — zero failed operations
# required. The only gate that crosses process boundaries; run on any
# change to membership, the join state machine, topology persistence
# or the CLI.
deploy-smoke:
	./scripts/deploy_smoke.sh

# Short fuzz pass over the v3 block codec: decode must never panic on
# arbitrary bytes and encode→decode must round-trip. CI runs this as a
# smoke; local soak: raise -fuzztime.
fuzz-smoke:
	go test -run=NONE -fuzz=FuzzBlockCodec -fuzztime=10s ./internal/sstable/

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	go vet ./...
