package cluster

// Membership acceptance tests: wire-level joins under live traffic,
// whole-cluster restart from persisted topology files, peer health
// flips with failover reads, and graceful-departure announcements —
// all over real TCP sockets, so the full network path (framing,
// redialing, self-dialed flips) is exercised, not the in-process
// fabric shortcut.

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"scalekv/internal/hashring"
	"scalekv/internal/transport"
)

func tcpDial(addr string) (*transport.Client, error) {
	conn, err := transport.DialTCP(addr, 0)
	if err != nil {
		return nil, err
	}
	return transport.NewClient(conn), nil
}

// bootTCPRing hand-assembles an n-node epoch-1 ring on loopback TCP —
// the moral equivalent of n `kvstore serve` processes whose operator
// wrote the same member list into each config.
func bootTCPRing(t *testing.T, baseDir string, n, rf, vnodes int) ([]*Node, map[hashring.NodeID]string) {
	t.Helper()
	listeners := make([]transport.Listener, n)
	addrs := make(map[hashring.NodeID]string, n)
	for i := 0; i < n; i++ {
		l, err := transport.ListenTCP("127.0.0.1:0", 0)
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		addrs[hashring.NodeID(i)] = l.Addr()
	}
	ring := hashring.New(n, vnodes)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		id := hashring.NodeID(i)
		node, err := StartNode(listeners[i], NodeOptions{
			ID:                id,
			Dir:               filepath.Join(baseDir, fmt.Sprintf("node-%d", i)),
			Topology:          ring,
			Addrs:             addrs,
			ReplicationFactor: rf,
			Dialer:            tcpDial,
			AdvertiseAddr:     addrs[id],
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	return nodes, addrs
}

// restartTCPNode reopens a stopped member on its previous address,
// with no topology supplied: everything must come from the persisted
// topology file.
func restartTCPNode(t *testing.T, dir, addr string, id hashring.NodeID, opts NodeOptions) *Node {
	t.Helper()
	l, err := transport.ListenTCP(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	opts.ID = id
	opts.Dir = dir
	opts.Dialer = tcpDial
	opts.AdvertiseAddr = addr
	node, err := StartNode(l, opts)
	if err != nil {
		t.Fatal(err)
	}
	return node
}

// TestWireJoinUnderLiveTraffic: a 3-node TCP ring accepts a 4th member
// through JoinRing while a client hammers it — zero failed operations,
// every key readable afterwards, and the data moved is bounded by
// ~K/N (the consistent-hashing minimal-movement claim, with 2x slack).
func TestWireJoinUnderLiveTraffic(t *testing.T) {
	baseDir := t.TempDir()
	nodes, addrs := bootTCPRing(t, baseDir, 3, 1, 16)
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()

	cli, err := Connect([]string{addrs[0]}, ClientOptions{Dialer: tcpDial})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const K = 3000
	key := func(i int) string { return fmt.Sprintf("pk-%05d", i) }
	for i := 0; i < K; i++ {
		if err := cli.Put(key(i), []byte("ck"), []byte(fmt.Sprintf("v0-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// Live traffic: overwrite and read the key space until told to stop.
	// Every failure counts — the join must be invisible to clients.
	var failed, ops atomic.Int64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := key(i % K)
			if err := cli.Put(k, []byte("ck"), []byte(fmt.Sprintf("v1-%d", i))); err != nil {
				failed.Add(1)
			}
			if _, found, err := cli.Get(k, []byte("ck")); err != nil || !found {
				failed.Add(1)
			}
			ops.Add(2)
		}
	}()

	l, err := transport.ListenTCP("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	joined, jr, err := JoinRing(l, NodeOptions{
		ID:            -1, // auto: next free ID from the seed's membership
		Dir:           filepath.Join(baseDir, "node-3"),
		Dialer:        tcpDial,
		AdvertiseAddr: l.Addr(),
	}, addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	nodes = append(nodes, joined)

	close(stop)
	<-done
	if f := failed.Load(); f != 0 {
		t.Fatalf("%d of %d live operations failed during the join", f, ops.Load())
	}
	if joined.ID() != 3 {
		t.Fatalf("auto-ID picked %d, want 3", joined.ID())
	}
	if jr.Epoch != 2 {
		t.Fatalf("post-join epoch %d, want 2", jr.Epoch)
	}
	// Minimal movement: the joiner takes ~1/4 of the keyspace.
	if jr.CellsStreamed > 2*K/4 {
		t.Fatalf("join streamed %d cells, want <= %d (2K/N)", jr.CellsStreamed, 2*K/4)
	}
	if jr.CellsStreamed == 0 {
		t.Fatal("join streamed nothing; the diff did not move data")
	}

	// Every key still readable through the grown ring.
	for i := 0; i < K; i++ {
		if _, found, err := cli.Get(key(i), []byte("ck")); err != nil || !found {
			t.Fatalf("key %s lost after join: found=%v err=%v", key(i), found, err)
		}
	}
	// The joiner holds data and flipped epochs along with everyone else.
	if got := joined.Topology().Epoch(); got != 2 {
		t.Fatalf("joiner at epoch %d, want 2", got)
	}
	for _, n := range nodes {
		if got := n.Topology().Epoch(); got != 2 {
			t.Fatalf("node %d at epoch %d, want 2", n.ID(), got)
		}
	}
}

// TestRestartFromPersistedTopology: a 4-node rf=2 TCP cluster (grown
// to epoch 2 by a wire join) is torn down mid-traffic and restarted
// from its data directories alone — no seed, no supplied topology.
// The restarted ring serves every key at the persisted epoch, and
// once each member has run one repair pass, a second pass ships zero
// cells: the cluster reassembled converged.
func TestRestartFromPersistedTopology(t *testing.T) {
	baseDir := t.TempDir()
	nodes, addrs := bootTCPRing(t, baseDir, 3, 2, 16)
	closed := false
	defer func() {
		if !closed {
			for _, n := range nodes {
				n.Close()
			}
		}
	}()

	cli, err := Connect([]string{addrs[1]}, ClientOptions{Dialer: tcpDial})
	if err != nil {
		t.Fatal(err)
	}
	if cli.rf != 2 {
		t.Fatalf("Connect inherited rf %d, want 2 from the ring", cli.rf)
	}

	const K = 2000
	key := func(i int) string { return fmt.Sprintf("pk-%05d", i) }
	for i := 0; i < K; i++ {
		if err := cli.Put(key(i), []byte("ck"), []byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// Grow to 4 members over the wire so the persisted epoch is not
	// the trivial boot epoch.
	l, err := transport.ListenTCP("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	joined, jr, err := JoinRing(l, NodeOptions{
		ID:            -1,
		Dir:           filepath.Join(baseDir, "node-3"),
		Dialer:        tcpDial,
		AdvertiseAddr: l.Addr(),
	}, addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	nodes = append(nodes, joined)
	addrs[3] = l.Addr()
	if jr.Epoch != 2 {
		t.Fatalf("post-join epoch %d, want 2", jr.Epoch)
	}

	// Kill the whole cluster while traffic is in flight. Failures in
	// this window are expected (the cluster is going away); what must
	// hold is what the restart serves afterwards.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			cli.Put(key(i%K), []byte("ck"), []byte(fmt.Sprintf("v2-%d", i)))
		}
	}()
	time.Sleep(20 * time.Millisecond)
	for _, n := range nodes {
		n.Close()
	}
	closed = true
	close(stop)
	<-done
	cli.Close()

	// Restart every member from disk on its old address, topology
	// unsupplied: the persisted file is the only membership source.
	restarted := make([]*Node, 4)
	for i := 0; i < 4; i++ {
		id := hashring.NodeID(i)
		restarted[i] = restartTCPNode(t, filepath.Join(baseDir, fmt.Sprintf("node-%d", i)), addrs[id], id, NodeOptions{})
	}
	defer func() {
		for _, n := range restarted {
			n.Close()
		}
	}()
	for _, n := range restarted {
		rs := n.ring.Load()
		if rs == nil {
			t.Fatalf("node %d restarted without a topology", n.ID())
		}
		if rs.topo.Epoch() != 2 || rs.topo.Size() != 4 || rs.rf != 2 {
			t.Fatalf("node %d restarted at epoch %d size %d rf %d, want 2/4/2",
				n.ID(), rs.topo.Epoch(), rs.topo.Size(), rs.rf)
		}
	}

	cli2, err := Connect([]string{addrs[2]}, ClientOptions{Dialer: tcpDial})
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	if got := cli2.Ring().Epoch(); got != 2 {
		t.Fatalf("restarted ring at epoch %d, want 2", got)
	}
	for i := 0; i < K; i++ {
		if _, found, err := cli2.Get(key(i), []byte("ck")); err != nil || !found {
			t.Fatalf("key %s unreadable after restart: found=%v err=%v", key(i), found, err)
		}
	}

	// One repair pass per member reconciles whatever the mid-traffic
	// kill left half-replicated; a second pass over the converged
	// cluster must ship nothing.
	for _, n := range restarted {
		if _, err := n.RepairNow(); err != nil {
			t.Fatalf("node %d repair: %v", n.ID(), err)
		}
	}
	for _, n := range restarted {
		rep, err := n.RepairNow()
		if err != nil {
			t.Fatalf("node %d second repair: %v", n.ID(), err)
		}
		if rep.CellsShipped != 0 {
			t.Fatalf("node %d second repair shipped %d cells, want 0", n.ID(), rep.CellsShipped)
		}
	}
}

// TestPeerHealthFlipAndFailoverReads: killing one member of an rf=2
// ring flips its health to down on every peer (after the suspicion
// window), while client reads keep succeeding via replica failover;
// restarting the member flips it back up and kicks a repair pass on
// the peers that saw it return.
func TestPeerHealthFlipAndFailoverReads(t *testing.T) {
	baseDir := t.TempDir()
	listeners := make([]transport.Listener, 3)
	addrs := make(map[hashring.NodeID]string, 3)
	for i := 0; i < 3; i++ {
		l, err := transport.ListenTCP("127.0.0.1:0", 0)
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		addrs[hashring.NodeID(i)] = l.Addr()
	}
	ring := hashring.New(3, 16)
	nodes := make([]*Node, 3)
	for i := 0; i < 3; i++ {
		id := hashring.NodeID(i)
		node, err := StartNode(listeners[i], NodeOptions{
			ID:                id,
			Dir:               filepath.Join(baseDir, fmt.Sprintf("node-%d", i)),
			Topology:          ring,
			Addrs:             addrs,
			ReplicationFactor: 2,
			Dialer:            tcpDial,
			AdvertiseAddr:     addrs[id],
			ProbeInterval:     40 * time.Millisecond,
			RepairInterval:    time.Hour, // only kicked passes fire in-test
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	}()

	cli, err := Connect([]string{addrs[0]}, ClientOptions{Dialer: tcpDial})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	const K = 300
	key := func(i int) string { return fmt.Sprintf("pk-%03d", i) }
	for i := 0; i < K; i++ {
		if err := cli.Put(key(i), []byte("ck"), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	// Kill node 2 without an announcement: peers must notice via
	// missed probes alone.
	victim := nodes[2]
	nodes[2] = nil
	victim.Close()

	waitHealth := func(observer *Node, id hashring.NodeID, wantUp bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			if ph, ok := observer.PeerHealth()[id]; ok && ph.Up == wantUp {
				if !wantUp && ph.Suspicion < observer.suspicionThreshold {
					t.Fatalf("node %d sees %d down with suspicion %d < threshold", observer.ID(), id, ph.Suspicion)
				}
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d never saw peer %d up=%v (health: %+v)",
					observer.ID(), id, wantUp, observer.PeerHealth())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitHealth(nodes[0], 2, false)
	waitHealth(nodes[1], 2, false)

	// Reads survive the outage: every partition has a live replica.
	for i := 0; i < K; i++ {
		if _, found, err := cli.Get(key(i), []byte("ck")); err != nil || !found {
			t.Fatalf("read %s with node 2 down: found=%v err=%v", key(i), found, err)
		}
	}
	if cli.Failovers.Load() == 0 {
		t.Fatal("no failovers recorded; node 2 was not primary for anything?")
	}

	// The returnee is re-probed up, and its return kicks catch-up
	// repair on the observers.
	passes0 := nodes[0].RepairPasses.Load()
	nodes[2] = restartTCPNode(t, filepath.Join(baseDir, "node-2"), addrs[2], 2, NodeOptions{
		ProbeInterval:  40 * time.Millisecond,
		RepairInterval: time.Hour,
	})
	waitHealth(nodes[0], 2, true)
	waitHealth(nodes[1], 2, true)
	deadline := time.Now().Add(10 * time.Second)
	for nodes[0].RepairPasses.Load() == passes0 {
		if time.Now().After(deadline) {
			t.Fatal("peer recovery never kicked a repair pass")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGracefulShutdownAnnouncesDeparture: Shutdown sends LeaveRequest
// to every peer, flipping this node's health to down immediately —
// no suspicion window, no probe traffic needed (probing is off here).
func TestGracefulShutdownAnnouncesDeparture(t *testing.T) {
	baseDir := t.TempDir()
	nodes, _ := bootTCPRing(t, baseDir, 3, 1, 16)
	defer func() {
		for i, n := range nodes {
			if i != 1 {
				n.Close()
			}
		}
	}()

	if err := nodes[1].Shutdown(); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 2} {
		ph, ok := nodes[i].PeerHealth()[1]
		if !ok || ph.Up {
			t.Fatalf("node %d did not record node 1's departure: %+v", i, nodes[i].PeerHealth())
		}
	}
}

// TestTopologyFilePersistence: the snapshot round-trips exactly, a
// missing file reads as absent, and a corrupted file fails the boot
// loudly instead of seeding guessed membership.
func TestTopologyFilePersistence(t *testing.T) {
	dir := t.TempDir()
	topo, _, _, err := loadTopologyFile(dir)
	if err != nil || topo != nil {
		t.Fatalf("missing file: topo=%v err=%v, want nil/nil", topo, err)
	}

	want := hashring.FromNodes(7, []hashring.NodeID{0, 2, 5}, 32)
	addrs := map[hashring.NodeID]string{0: "127.0.0.1:9000", 2: "127.0.0.1:9002", 5: "127.0.0.1:9005"}
	if err := saveTopologyFile(dir, want, addrs, 3); err != nil {
		t.Fatal(err)
	}
	got, gaddrs, rf, err := loadTopologyFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch() != 7 || got.Vnodes() != 32 || got.Size() != 3 || rf != 3 {
		t.Fatalf("round trip: epoch=%d vnodes=%d size=%d rf=%d", got.Epoch(), got.Vnodes(), got.Size(), rf)
	}
	for id, a := range addrs {
		if gaddrs[id] != a {
			t.Fatalf("addr %d: %q, want %q", id, gaddrs[id], a)
		}
	}
	// Same placement, not just same parameters.
	for _, tok := range []int64{math.MinInt64, -1, 0, 1, math.MaxInt64} {
		if want.PrimaryForToken(tok) != got.PrimaryForToken(tok) {
			t.Fatalf("placement diverged at token %d", tok)
		}
	}

	if err := os.WriteFile(filepath.Join(dir, topologyFileName), []byte("scalekv-topology v1\ngarbage here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := loadTopologyFile(dir); err == nil {
		t.Fatal("corrupted topology file loaded without error")
	}
}
