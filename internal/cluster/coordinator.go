package cluster

import (
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"time"

	"scalekv/internal/hashring"
	"scalekv/internal/transport"
	"scalekv/internal/wire"
)

// This file is the elastic-topology control plane: a coordinator that
// executes node joins and leaves as a state machine while the cluster
// serves traffic. The paper's scalability argument rests on exactly
// this capability — "just add nodes" — and the state machine is what
// makes adding nodes safe under load:
//
//  1. snapshot — diff the old topology against the new one into token
//     RangeMoves (hashring.AddNode/RemoveNode), and pick a streaming
//     source for each move (the least-loaded old owner, by NodeStats).
//  2. dual-write window — every source node starts forwarding accepted
//     writes that fall in a moving range to the range's new owner, so
//     writes landing behind the streamer's cursor are not lost.
//  3. stream — page each range out of its source (StreamRangeRequest)
//     and into its target (BatchPutRequest at epoch 0) until drained.
//  4. flip — install the new topology on every node and the cluster
//     client. From here, requests routed with the old epoch are
//     rejected and clients re-route after a ring refresh.
//  5. retire — close the dual-write window and DeleteRange the moved
//     ranges on their old owners (or, for a leave, stop the node).
//
// Every step is a wire RPC addressed by the member address book —
// BeginMigrationRequest, StreamRangeRequest, SetRingStateRequest,
// EndMigrationRequest, DeleteRangeRequest — so the same state machine
// runs whether the coordinator shares a process with the nodes (the
// in-process Cluster of tests and examples) or is a seed member
// serving a JoinRequest from a process that just booted across the
// network (Node.handleJoin). The in-process Cluster is a thin client
// of the protocol, not a privileged caller.
//
// Correctness under the stream/forward race: every cell carries the
// version its accepting engine stamped, stream pages and dual-write
// forwards ship those versions verbatim, and the target's merge is
// last-write-wins on version — so a cell overwritten (or deleted)
// during the stream converges to the overwrite on every replica no
// matter which copy arrives last. Tombstones ride the stream like any
// cell, so deletes survive the handoff too.

// streamPageCells is the page size the coordinator streams ranges with.
const streamPageCells = 4096

// RebalanceReport summarizes one topology change.
type RebalanceReport struct {
	// Node is the joining or leaving member.
	Node hashring.NodeID
	// Epoch is the topology version after the flip.
	Epoch uint64
	// Moves is the ownership diff that was streamed.
	Moves []hashring.RangeMove
	// CellsStreamed counts cells copied to new owners.
	CellsStreamed int64
	// CellsRetired counts cells purged from old owners after the flip.
	CellsRetired int64
	// RetireErr records a retirement failure, if any. Retirement is
	// garbage collection: once the epoch has flipped the change is
	// committed and correct (nothing routes to the old owners' copies),
	// so a failed DeleteRange leaves dead data on disk, not a broken
	// cluster — it is reported here instead of failing the join.
	RetireErr string
	// Pages counts stream round trips.
	Pages int
	// StreamDuration is the data-movement wall time (traffic keeps
	// flowing throughout).
	StreamDuration time.Duration
	// FlipDuration is the epoch-flip wall time — the only window in
	// which clients see wrong-epoch rejections and must refresh.
	FlipDuration time.Duration
}

// coordinator drives one topology change over the wire; it owns a
// scratch set of connections (stats, streaming, control, retirement)
// that it closes when done, leaving any data-path connections alone.
// It holds no reference to a Cluster or a Node — everything it needs
// is an address.
type coordinator struct {
	codec wire.Codec
	dial  Dialer
	conns map[string]*transport.Client // by address
}

func newCoordinator(codec wire.Codec, dial Dialer) *coordinator {
	return &coordinator{codec: codec, dial: dial, conns: make(map[string]*transport.Client)}
}

func (co *coordinator) close() {
	for _, conn := range co.conns {
		conn.Close()
	}
}

// conn dials (and caches) a scratch connection to an address.
func (co *coordinator) conn(addr string) (*transport.Client, error) {
	if conn, ok := co.conns[addr]; ok {
		return conn, nil
	}
	conn, err := co.dial(addr)
	if err != nil {
		return nil, err
	}
	co.conns[addr] = conn
	return conn, nil
}

// call runs one synchronous RPC over a scratch connection.
func (co *coordinator) call(addr string, msg wire.Message) (wire.Message, error) {
	conn, err := co.conn(addr)
	if err != nil {
		return nil, err
	}
	payload, err := co.codec.Marshal(msg)
	if err != nil {
		return nil, err
	}
	raw, err := conn.Call(payload)
	if err != nil {
		return nil, err
	}
	return co.codec.Unmarshal(raw)
}

// rebalanceParams is one topology change, fully resolved: the diff is
// computed, the next address book is known, and every participant is
// reachable by address.
type rebalanceParams struct {
	rf        int
	old, next *hashring.Topology
	moves     []hashring.RangeMove
	// addrs is the member address book at the old epoch (stream
	// sources live here); addrsNext already reflects the new
	// membership (stream targets and flip recipients).
	addrs, addrsNext map[hashring.NodeID]string
	subject          hashring.NodeID
	// streamHook, when set (tests only), is consulted before each range
	// is streamed — an injected failure or panic simulates a
	// coordinator dying mid-join.
	streamHook func(hashring.RangeMove) error
}

// runRebalance executes the join/leave state machine after the
// membership diff is known: source selection, dual-write, streaming,
// flip, retirement — all over the wire.
func runRebalance(co *coordinator, p rebalanceParams) (*RebalanceReport, error) {
	report := &RebalanceReport{Node: p.subject, Epoch: p.next.Epoch()}

	// 1. Source selection: at rf > 1 a range has several old owners;
	// stream from the one with the smallest write backlog so a node
	// busy flushing is not also the one serving the handoff.
	moves := co.pickSources(p.old, p.moves, p.rf, p.addrs)
	report.Moves = moves

	// 2. Migration window. Each source node forwards in-range writes to
	// their new owners from here on; combined with streaming from a
	// snapshot-consistent engine, nothing written during the move is
	// lost. Each target node fences its engine's tombstone GC over the
	// inbound ranges, so a delete it accepts during the window keeps
	// masking any sub-watermark stale copy a stream page delivers later.
	// The request carries the full move list and the next address book;
	// each participant filters its own roles and dials its own forward
	// targets.
	participants := make(map[hashring.NodeID]bool)
	for _, m := range moves {
		participants[m.From] = true
		participants[m.To] = true
	}
	beginReq := &wire.BeginMigrationRequest{Moves: wireMoves(moves)}
	for id, addr := range p.addrsNext {
		beginReq.Nodes = append(beginReq.Nodes, wire.NodeAddr{ID: uint32(id), Addr: addr})
	}
	addrOf := func(id hashring.NodeID) string {
		if a, ok := p.addrsNext[id]; ok {
			return a
		}
		return p.addrs[id]
	}
	var migrating []string
	defer func() {
		// Close the window on every node that opened it — on the error
		// path AND when a test hook panics to simulate a dying
		// coordinator. Best effort: an unreachable participant keeps
		// forwarding until its conns break, which is harmless
		// (forwards are LWW-idempotent).
		for _, addr := range migrating {
			co.call(addr, &wire.EndMigrationRequest{})
		}
	}()
	for id := range participants {
		resp, err := co.call(addrOf(id), beginReq)
		if err != nil {
			return nil, fmt.Errorf("cluster: begin migration at node %d: %w", id, err)
		}
		bm, ok := resp.(*wire.BeginMigrationResponse)
		if !ok {
			return nil, fmt.Errorf("cluster: unexpected begin-migration response %T", resp)
		}
		if bm.ErrMsg != "" {
			return nil, fmt.Errorf("cluster: begin migration at node %d: %s", id, bm.ErrMsg)
		}
		migrating = append(migrating, addrOf(id))
	}

	// 3. Stream every move, paged, source -> target, at epoch 0.
	streamStart := time.Now()
	for _, m := range moves {
		if hook := p.streamHook; hook != nil {
			if err := hook(m); err != nil {
				return nil, fmt.Errorf("cluster: stream %v: %w", m, err)
			}
		}
		streamed, pages, err := co.streamRange(m, p.addrs[m.From], p.addrsNext[m.To])
		if err != nil {
			return nil, fmt.Errorf("cluster: stream %v: %w", m, err)
		}
		report.CellsStreamed += streamed
		report.Pages += pages
	}
	report.StreamDuration = time.Since(streamStart)

	// 4. Flip. Every member of the new topology — plus the subject of a
	// leave, which must reject old-epoch traffic while it drains —
	// validates against the new epoch from here. Each recipient also
	// persists the snapshot to its topology file, so the flip survives
	// a restart of any member. Remote clients learn via wrong-epoch
	// rejections and RingStateRequest.
	flipReq := &wire.SetRingStateRequest{
		Epoch:  p.next.Epoch(),
		Vnodes: uint32(p.next.Vnodes()),
		RF:     uint32(p.rf),
		Nodes:  beginReq.Nodes,
	}
	flipStart := time.Now()
	flipTargets := make(map[hashring.NodeID]string, len(p.addrsNext)+1)
	for id, addr := range p.addrsNext {
		flipTargets[id] = addr
	}
	if _, ok := flipTargets[p.subject]; !ok {
		if a, ok := p.addrs[p.subject]; ok {
			flipTargets[p.subject] = a
		}
	}
	for id, addr := range flipTargets {
		resp, err := co.call(addr, flipReq)
		if err != nil {
			return nil, fmt.Errorf("cluster: flip node %d: %w", id, err)
		}
		sr, ok := resp.(*wire.SetRingStateResponse)
		if !ok {
			return nil, fmt.Errorf("cluster: unexpected flip response %T", resp)
		}
		if sr.ErrMsg != "" {
			return nil, fmt.Errorf("cluster: flip node %d: %s", id, sr.ErrMsg)
		}
	}
	report.FlipDuration = time.Since(flipStart)

	// 5. Close the dual-write window (writes now route to the new
	// owners directly) and retire moved data at its old owners. The
	// flip committed the change, so retirement failures degrade to
	// unreclaimed disk space (reported, not fatal) — failing here would
	// tear down a node the whole cluster now routes to.
	for _, addr := range migrating {
		if resp, err := co.call(addr, &wire.EndMigrationRequest{}); err == nil {
			if em, ok := resp.(*wire.EndMigrationResponse); ok && em.ErrMsg != "" {
				recordRetireErr(report, errors.New(em.ErrMsg))
			}
		} else {
			recordRetireErr(report, err)
		}
	}
	migrating = nil
	for _, r := range hashring.Retirements(p.old, p.next, p.rf) {
		if !p.next.Contains(r.Node) {
			continue
		}
		resp, err := co.call(p.addrsNext[r.Node], &wire.DeleteRangeRequest{Lo: r.Lo, Hi: r.Hi})
		if err != nil {
			recordRetireErr(report, fmt.Errorf("retire [%d,%d] at node %d: %w", r.Lo, r.Hi, r.Node, err))
			continue
		}
		dr, ok := resp.(*wire.DeleteRangeResponse)
		if !ok {
			recordRetireErr(report, fmt.Errorf("unexpected retire response %T", resp))
			continue
		}
		if dr.ErrMsg != "" {
			recordRetireErr(report, fmt.Errorf("retire [%d,%d] at node %d: %s", r.Lo, r.Hi, r.Node, dr.ErrMsg))
			continue
		}
		report.CellsRetired += int64(dr.Removed)
	}
	return report, nil
}

func recordRetireErr(report *RebalanceReport, err error) {
	if report.RetireErr == "" {
		report.RetireErr = err.Error()
	}
}

// wireMoves converts an ownership diff to its wire form.
func wireMoves(moves []hashring.RangeMove) []wire.Move {
	out := make([]wire.Move, len(moves))
	for i, m := range moves {
		out[i] = wire.Move{Lo: m.Lo, Hi: m.Hi, From: uint32(m.From), To: uint32(m.To)}
	}
	return out
}

// movesFromWire converts a wire move list back to the hashring form.
func movesFromWire(moves []wire.Move) []hashring.RangeMove {
	out := make([]hashring.RangeMove, len(moves))
	for i, m := range moves {
		out[i] = hashring.RangeMove{Lo: m.Lo, Hi: m.Hi, From: hashring.NodeID(m.From), To: hashring.NodeID(m.To)}
	}
	return out
}

// AddNode grows the cluster by one member under live traffic: it boots
// a fresh node, streams the token ranges the new member owns from their
// current owners, flips every node and the client to the new epoch, and
// retires the moved ranges at their old owners. In-flight client
// operations never fail: writes during the stream are dual-written,
// and requests routed with the old epoch after the flip are rejected
// with a wrong-epoch error that makes the client refresh and re-route.
func (c *Cluster) AddNode() (*Node, *RebalanceReport, error) {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()

	old := c.client.topo()
	var id hashring.NodeID
	for _, n := range old.Nodes() {
		if n >= id {
			id = n + 1
		}
	}

	next, moves, err := old.AddNode(id, c.opts.ReplicationFactor)
	if err != nil {
		return nil, nil, err
	}

	// Boot the new member at the old epoch; clients do not route to it
	// until the flip, and the streamer writes at epoch 0.
	l, addr, err := c.listen(id)
	if err != nil {
		return nil, nil, err
	}
	node, err := StartNode(l, NodeOptions{
		ID:                id,
		Dir:               filepath.Join(c.baseDir, fmt.Sprintf("node-%d", id)),
		DBParallelism:     c.opts.DBParallelism,
		Storage:           c.opts.Storage,
		Codec:             c.opts.Codec,
		Topology:          old,
		Addrs:             c.addrs,
		ReplicationFactor: c.opts.ReplicationFactor,
		Dialer:            c.dial,
		AdvertiseAddr:     addr,
	})
	if err != nil {
		l.Close()
		return nil, nil, err
	}

	addrsNext := copyAddrs(c.addrs)
	addrsNext[id] = addr

	// The joining node takes part in the flip (it must validate the new
	// epoch once clients route to it), so it joins the node list before
	// the state machine runs. The teardown is a defer, not an error
	// branch: an abort must never strand a booted-but-unrouted node —
	// not on a returned error, and not when the coordinator dies mid-
	// join (a panic unwinding through here). Either way the victim's
	// listener and engine close, its directory stays on disk, and a
	// retried AddNode re-picks the same ID and reopens it idempotently.
	c.Nodes = append(c.Nodes, node)
	committed := false
	defer func() {
		if !committed {
			c.Nodes = c.Nodes[:len(c.Nodes)-1]
			node.Close()
		}
	}()
	report, err := c.rebalance(old, next, moves, addrsNext, id)
	if err != nil {
		return nil, nil, err
	}
	committed = true
	c.addrs = addrsNext
	return node, report, nil
}

// RemoveNode drains a member and shrinks the cluster: the leaving
// node's ranges are streamed to their new owners (with the dual-write
// window covering concurrent writes), the topology flips, and the node
// is shut down. Its storage directory is left on disk.
func (c *Cluster) RemoveNode(id hashring.NodeID) (*RebalanceReport, error) {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()

	old := c.client.topo()
	next, moves, err := old.RemoveNode(id, c.opts.ReplicationFactor)
	if err != nil {
		return nil, err
	}
	var victim *Node
	for _, n := range c.Nodes {
		if n.ID() == id {
			victim = n
		}
	}
	if victim == nil {
		return nil, fmt.Errorf("cluster: node %d not running here", id)
	}

	addrsNext := copyAddrs(c.addrs)
	delete(addrsNext, id)

	report, err := c.rebalance(old, next, moves, addrsNext, id)
	if err != nil {
		return nil, err
	}

	// The member is drained and unrouted; stop it. The flip already
	// committed the leave, so the bookkeeping happens regardless of how
	// the shutdown goes — keeping a closed node listed would poison
	// FlushAll, Close and the next topology change. A Close error (e.g.
	// a latched background-flush failure surfacing in the final drain)
	// is reported after the fact.
	survivors := make([]*Node, 0, len(c.Nodes)-1)
	for _, n := range c.Nodes {
		if n.ID() != id {
			survivors = append(survivors, n)
		}
	}
	closeErr := victim.Close()
	c.Nodes = survivors
	c.addrs = addrsNext
	return report, closeErr
}

// rebalance runs the shared state machine over the wire and adopts the
// result into the in-process bookkeeping. addrsNext must already
// reflect the new membership.
func (c *Cluster) rebalance(old, next *hashring.Topology, moves []hashring.RangeMove, addrsNext map[hashring.NodeID]string, subject hashring.NodeID) (*RebalanceReport, error) {
	co := newCoordinator(c.opts.Codec, c.dial)
	defer co.close()
	report, err := runRebalance(co, rebalanceParams{
		rf:         c.opts.ReplicationFactor,
		old:        old,
		next:       next,
		moves:      moves,
		addrs:      c.addrs,
		addrsNext:  addrsNext,
		subject:    subject,
		streamHook: c.testStreamErr,
	})
	if err != nil {
		return nil, err
	}
	c.client.adopt(next, addrsNext)
	c.Ring = next
	return report, nil
}

// pickSources re-points each move's source at the least write-loaded
// old owner of its range (NodeStatsRequest over the wire), when
// replication offers a choice.
func (co *coordinator) pickSources(old *hashring.Topology, moves []hashring.RangeMove, rf int, addrs map[hashring.NodeID]string) []hashring.RangeMove {
	if rf <= 1 {
		return moves
	}
	backlog := make(map[hashring.NodeID]int64)
	load := func(id hashring.NodeID) int64 {
		if v, ok := backlog[id]; ok {
			return v
		}
		var total int64 = math.MaxInt64
		if resp, err := co.call(addrs[id], &wire.NodeStatsRequest{}); err == nil {
			if ns, ok := resp.(*wire.NodeStatsResponse); ok && ns.ErrMsg == "" {
				total = 0
				for _, sh := range ns.Shards {
					total += int64(sh.MemtableBytes)
				}
			}
		}
		backlog[id] = total
		return total
	}
	out := make([]hashring.RangeMove, len(moves))
	for i, m := range moves {
		best := m.From
		for _, cand := range old.OwnersAt(m.Hi, rf) {
			if cand == m.To {
				continue
			}
			if load(cand) < load(best) {
				best = cand
			}
		}
		m.From = best
		out[i] = m
	}
	return out
}

// streamRange pages one token range from source to target at epoch 0.
func (co *coordinator) streamRange(m hashring.RangeMove, srcAddr, dstAddr string) (cells int64, pages int, err error) {
	afterTok, afterPK := int64(math.MinInt64), ""
	for {
		resp, err := co.call(srcAddr, &wire.StreamRangeRequest{
			Lo: m.Lo, Hi: m.Hi,
			AfterToken: afterTok, AfterPK: afterPK,
			MaxCells: streamPageCells,
		})
		if err != nil {
			return cells, pages, err
		}
		page, ok := resp.(*wire.StreamRangeResponse)
		if !ok {
			return cells, pages, fmt.Errorf("cluster: unexpected stream response %T", resp)
		}
		if page.ErrMsg != "" {
			return cells, pages, errors.New(page.ErrMsg)
		}
		pages++
		if len(page.Entries) > 0 {
			wresp, err := co.call(dstAddr, &wire.BatchPutRequest{Entries: page.Entries}) // epoch 0
			if err != nil {
				return cells, pages, err
			}
			bp, ok := wresp.(*wire.BatchPutResponse)
			if !ok {
				return cells, pages, fmt.Errorf("cluster: unexpected stream-write response %T", wresp)
			}
			if bp.ErrMsg != "" {
				return cells, pages, errors.New(bp.ErrMsg)
			}
			cells += int64(len(page.Entries))
		}
		if !page.More {
			return cells, pages, nil
		}
		afterTok, afterPK = page.NextToken, page.NextPK
	}
}
