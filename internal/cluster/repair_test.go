package cluster

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"scalekv/internal/hashring"
	"scalekv/internal/row"
	"scalekv/internal/storage"
)

// repairBaseSeq stamps manufactured divergence far above anything the
// engines assigned on their own, so the intended winner is unambiguous.
const repairBaseSeq = uint64(1) << 30

// engineOf returns a cluster node's engine by ring ID.
func engineOf(t *testing.T, c *Cluster, id hashring.NodeID) *storage.Engine {
	t.Helper()
	for _, n := range c.Nodes {
		if n.ID() == id {
			return n.Engine()
		}
	}
	t.Fatalf("node %d not running", id)
	return nil
}

// divergeAt plants a pre-stamped entry directly on one replica's engine
// — the same state a dropped dual-write forward leaves behind: one
// replica saw the write, the others never did.
func divergeAt(t *testing.T, c *Cluster, id hashring.NodeID, e row.Entry) {
	t.Helper()
	if err := engineOf(t, c, id).PutBatch([]row.Entry{e}); err != nil {
		t.Fatal(err)
	}
}

// assertRangeDigestsConverged compares owner digests over every
// replicated range: after a repair pass they must be identical,
// tombstones included.
func assertRangeDigestsConverged(t *testing.T, c *Cluster, rf int) {
	t.Helper()
	for _, or := range c.Topology().OwnedRanges(rf) {
		if len(or.Owners) < 2 {
			continue
		}
		ref, err := engineOf(t, c, or.Owners[0]).RangeDigest(or.Lo, or.Hi, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, other := range or.Owners[1:] {
			got, err := engineOf(t, c, other).RangeDigest(or.Lo, or.Hi, 4)
			if err != nil {
				t.Fatal(err)
			}
			for i := range ref {
				if ref[i] != got[i] {
					t.Fatalf("range [%d,%d] leaf %d: node %d and %d still diverge after repair",
						or.Lo, or.Hi, i, or.Owners[0], other)
				}
			}
		}
	}
}

// TestRepairConvergesDivergedReplicas manufactures every divergence
// shape a dropped dual-write forward can leave — data vs data, data vs
// tombstone (both orders), a cell missing entirely on one replica — and
// asserts a single Cluster.Repair pass converges every replica engine
// to the last-write-wins winner, after which a second pass moves
// nothing.
func TestRepairConvergesDivergedReplicas(t *testing.T) {
	const rf = 2
	c := startTest(t, LocalOptions{Nodes: 4, ReplicationFactor: rf})
	cli := c.Client()

	const n = 200
	key := func(i int) string { return fmt.Sprintf("cell-%04d", i) }
	ck := []byte("ck")
	for i := 0; i < n; i++ {
		if err := cli.Put(key(i), ck, []byte("v0")); err != nil {
			t.Fatal(err)
		}
	}
	topo := c.Topology()
	reps := func(pk string) []hashring.NodeID { return topo.Replicas(pk, rf) }

	// data vs data: both replicas saw a different "latest" write.
	r0 := reps(key(0))
	divergeAt(t, c, r0[0], row.Entry{PK: key(0), CK: ck, Value: []byte("loser"), Ver: row.Version{Seq: repairBaseSeq + 1, Node: 1}})
	divergeAt(t, c, r0[1], row.Entry{PK: key(0), CK: ck, Value: []byte("winner"), Ver: row.Version{Seq: repairBaseSeq + 2, Node: 2}})

	// data vs tombstone, tombstone newer: the delete must win everywhere.
	r1 := reps(key(1))
	divergeAt(t, c, r1[0], row.Entry{PK: key(1), CK: ck, Tombstone: true, Ver: row.Version{Seq: repairBaseSeq + 4, Node: 1}})
	divergeAt(t, c, r1[1], row.Entry{PK: key(1), CK: ck, Value: []byte("stale"), Ver: row.Version{Seq: repairBaseSeq + 3, Node: 2}})

	// tombstone vs data, data newer: the re-write must win everywhere.
	r2 := reps(key(2))
	divergeAt(t, c, r2[0], row.Entry{PK: key(2), CK: ck, Tombstone: true, Ver: row.Version{Seq: repairBaseSeq + 5, Node: 1}})
	divergeAt(t, c, r2[1], row.Entry{PK: key(2), CK: ck, Value: []byte("rewritten"), Ver: row.Version{Seq: repairBaseSeq + 6, Node: 2}})

	// missing cell: one replica never saw the write at all.
	onlyAt := reps("orphan")[0]
	divergeAt(t, c, onlyAt, row.Entry{PK: "orphan", CK: ck, Value: []byte("lonely"), Ver: row.Version{Seq: repairBaseSeq + 7, Node: 3}})

	// Flush half the cluster so repair reads SSTables and memtables.
	if err := c.Nodes[0].Engine().Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.Nodes[1].Engine().Flush(); err != nil {
		t.Fatal(err)
	}

	rep, err := c.Repair(rf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CellsShipped == 0 {
		t.Fatal("repair shipped nothing over a diverged cluster")
	}
	if rep.LeafMismatches == 0 || rep.DigestRPCs == 0 {
		t.Fatalf("repair ran without digesting: %+v", rep)
	}

	// Every replica engine holds the LWW winner — value, version and
	// tombstone flag alike.
	expectCell := func(pk string, wantVal string, wantVer row.Version, wantTomb bool) {
		t.Helper()
		for _, id := range reps(pk) {
			cell, ok, err := engineOf(t, c, id).GetVersioned(pk, ck)
			if err != nil || !ok {
				t.Fatalf("%s at node %d: ok=%v err=%v", pk, id, ok, err)
			}
			if cell.Ver != wantVer || cell.Tombstone != wantTomb || (!wantTomb && string(cell.Value) != wantVal) {
				t.Fatalf("%s at node %d: got (%q, %v, tomb=%v) want (%q, %v, tomb=%v)",
					pk, id, cell.Value, cell.Ver, cell.Tombstone, wantVal, wantVer, wantTomb)
			}
		}
	}
	expectCell(key(0), "winner", row.Version{Seq: repairBaseSeq + 2, Node: 2}, false)
	expectCell(key(1), "", row.Version{Seq: repairBaseSeq + 4, Node: 1}, true)
	expectCell(key(2), "rewritten", row.Version{Seq: repairBaseSeq + 6, Node: 2}, false)
	expectCell("orphan", "lonely", row.Version{Seq: repairBaseSeq + 7, Node: 3}, false)

	// The deleted cell reads as gone via the client too.
	if _, found, err := cli.Get(key(1), ck); err != nil || found {
		t.Fatalf("deleted key after repair: found=%v err=%v", found, err)
	}

	assertRangeDigestsConverged(t, c, rf)

	// A converged cluster digests clean: the second pass moves no cells.
	rep2, err := c.Repair(rf)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.CellsShipped != 0 {
		t.Fatalf("second repair pass shipped %d cells over a converged cluster", rep2.CellsShipped)
	}
	if rep2.SkippedLegacy != 0 {
		t.Fatalf("second repair pass skipped %d legacy cells out of nowhere", rep2.SkippedLegacy)
	}
}

// TestRepairConvergesAtRF3 exercises the second sweep: with three
// owners per range, the replica synced first must still end up with
// what the replica synced last contributed.
func TestRepairConvergesAtRF3(t *testing.T) {
	const rf = 3
	c := startTest(t, LocalOptions{Nodes: 5, ReplicationFactor: rf})
	cli := c.Client()
	key := func(i int) string { return fmt.Sprintf("cell-%04d", i) }
	ck := []byte("ck")
	for i := 0; i < 60; i++ {
		if err := cli.Put(key(i), ck, []byte("v0")); err != nil {
			t.Fatal(err)
		}
	}
	topo := c.Topology()
	// The winner lives only on the LAST replica: sweep 1 pulls it into
	// the primary on its final pair, sweep 2 must push it back out to
	// the earlier replicas.
	reps := topo.Replicas(key(9), rf)
	winner := row.Version{Seq: repairBaseSeq + 1, Node: 4}
	divergeAt(t, c, reps[len(reps)-1], row.Entry{PK: key(9), CK: ck, Value: []byte("late"), Ver: winner})

	if _, err := c.Repair(rf); err != nil {
		t.Fatal(err)
	}
	for _, id := range reps {
		cell, ok, err := engineOf(t, c, id).GetVersioned(key(9), ck)
		if err != nil || !ok || cell.Ver != winner || string(cell.Value) != "late" {
			t.Fatalf("node %d after rf=3 repair: ok=%v err=%v cell=%+v", id, ok, err, cell)
		}
	}
	assertRangeDigestsConverged(t, c, rf)

	rep2, err := c.Repair(rf)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.CellsShipped != 0 {
		t.Fatalf("second rf=3 pass shipped %d cells", rep2.CellsShipped)
	}
}

// TestRepairSticksAcrossFlushAndCompaction: the repaired state is
// durable engine state, not a read-path illusion.
func TestRepairSticksAcrossFlushAndCompaction(t *testing.T) {
	const rf = 2
	c := startTest(t, LocalOptions{Nodes: 3, ReplicationFactor: rf})
	cli := c.Client()
	ck := []byte("ck")
	if err := cli.Put("k", ck, []byte("v0")); err != nil {
		t.Fatal(err)
	}
	reps := c.Topology().Replicas("k", rf)
	divergeAt(t, c, reps[0], row.Entry{PK: "k", CK: ck, Tombstone: true, Ver: row.Version{Seq: repairBaseSeq, Node: 9}})

	if _, err := c.Repair(rf); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes {
		if err := n.Engine().Flush(); err != nil {
			t.Fatal(err)
		}
		if err := n.Engine().Compact(); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range reps {
		if _, ok, _ := engineOf(t, c, id).Get("k", ck); ok {
			t.Fatalf("repaired delete resurfaced at node %d after flush+compact", id)
		}
	}
}

// TestBeginMigrationFencesTargetEngine: the migration window drives the
// engine fence on targets — while open, the target's compactions keep
// tombstones in the inbound range; after EndMigration, GC resumes.
func TestBeginMigrationFencesTargetEngine(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 1})
	n := c.Nodes[0]
	e := n.Engine()
	moves := []hashring.RangeMove{{Lo: math.MinInt64, Hi: math.MaxInt64, From: 99, To: n.ID()}}
	n.BeginMigration(moves, nil)

	if err := e.Put("k", []byte("ck"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete("k", []byte("ck")); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if gced := e.Metrics.TombstonesGCed.Load(); gced != 0 {
		t.Fatalf("target compaction collected %d tombstones inside the migration window", gced)
	}
	// The stale streamed copy lands after that compaction: the delete
	// must stick, because the fence kept the tombstone.
	if err := e.PutBatch([]row.Entry{{
		PK: "k", CK: []byte("ck"), Value: []byte("v1"), Ver: row.Version{Seq: 1, Node: 0},
	}}); err != nil {
		t.Fatal(err)
	}
	if v, found, _ := e.Get("k", []byte("ck")); found {
		t.Fatalf("stale streamed copy %q resurrected inside the migration window", v)
	}

	n.EndMigration()
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if gced := e.Metrics.TombstonesGCed.Load(); gced == 0 {
		t.Fatal("GC never resumed after EndMigration")
	}
	if _, found, _ := e.Get("k", []byte("ck")); found {
		t.Fatal("delete lost after the window closed")
	}
}

// TestReadRepairForwardsTombstone: a failover read that lands on a
// deleted cell forwards the tombstone to the replica it skipped — the
// "read-repair never deletes" hole. Before the fix the lagging primary
// kept serving the old value forever.
func TestReadRepairForwardsTombstone(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 2, ReplicationFactor: 2, ReadRepair: true})
	cli := c.Client()

	if err := cli.Put("k", []byte("ck"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	replicas := c.Topology().Replicas("k", 2)
	primary, secondary := replicas[0], replicas[1]

	// The secondary holds a newer tombstone the primary missed (as if
	// the primary had been down for the delete).
	newer := row.Version{Seq: repairBaseSeq, Node: uint16(secondary)}
	divergeAt(t, c, secondary, row.Entry{PK: "k", CK: []byte("ck"), Tombstone: true, Ver: newer})

	// Break the established connection to the primary (node stays up),
	// so the read fails over to the secondary and the repair goroutine
	// can re-dial the primary.
	cli.mu.Lock()
	conn := cli.conns[primary]
	cli.mu.Unlock()
	if conn == nil {
		t.Fatal("no connection to primary")
	}
	conn.Close()

	if _, found, err := cli.Get("k", []byte("ck")); err != nil || found {
		t.Fatalf("failover read of deleted cell: found=%v err=%v", found, err)
	}

	primaryEngine := engineOf(t, c, primary)
	deadline := time.Now().Add(5 * time.Second)
	for {
		cell, ok, err := primaryEngine.GetVersioned("k", []byte("ck"))
		if err != nil {
			t.Fatal(err)
		}
		if ok && cell.Tombstone && cell.Ver == newer {
			if cli.RepairedReads.Load() == 0 {
				t.Fatal("tombstone repaired but not counted")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("primary never received the tombstone: ok=%v cell=%+v", ok, cell)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAddNodeAbortTearsDownVictim: a join that dies mid-stream —
// whether the coordinator returns an error or panics outright — must
// not strand a booted-but-unrouted node: the victim's listener and
// engine close, the old epoch stays authoritative, and a retried
// AddNode re-picks the same ID and reopens its directory idempotently.
func TestAddNodeAbortTearsDownVictim(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 3, ReplicationFactor: 2})
	cli := c.Client()
	key := func(i int) string { return fmt.Sprintf("cell-%04d", i) }
	for i := 0; i < 200; i++ {
		if err := cli.Put(key(i), []byte("ck"), []byte("v0")); err != nil {
			t.Fatal(err)
		}
	}
	epoch0 := c.Topology().Epoch()
	assertAborted := func(stage string) {
		t.Helper()
		if len(c.Nodes) != 3 {
			t.Fatalf("%s: %d nodes listed, want 3", stage, len(c.Nodes))
		}
		if got := c.Topology().Epoch(); got != epoch0 {
			t.Fatalf("%s: epoch moved to %d on an aborted join", stage, got)
		}
		if _, err := c.network.Dial("node-3"); err == nil {
			t.Fatalf("%s: orphan listener still accepting on node-3", stage)
		}
		if err := cli.Put("probe-"+stage, []byte("ck"), []byte("v")); err != nil {
			t.Fatalf("%s: cluster unusable after abort: %v", stage, err)
		}
	}

	// Abort via error: the stream step fails.
	boom := errors.New("injected stream failure")
	c.testStreamErr = func(hashring.RangeMove) error { return boom }
	if _, _, err := c.AddNode(); !errors.Is(err, boom) {
		t.Fatalf("AddNode error = %v, want the injected failure", err)
	}
	assertAborted("error")

	// Abort via crash: the coordinator panics mid-join. The teardown is
	// a defer, so the victim still comes down before the panic escapes.
	c.testStreamErr = func(hashring.RangeMove) error { panic("simulated coordinator crash") }
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected the simulated crash to propagate")
			}
		}()
		c.AddNode()
	}()
	assertAborted("crash")

	// Retry: same ID, same directory, clean join.
	c.testStreamErr = nil
	node, report, err := c.AddNode()
	if err != nil {
		t.Fatal(err)
	}
	if node.ID() != 3 {
		t.Fatalf("retried join picked node %d, want 3", node.ID())
	}
	if report.CellsStreamed == 0 {
		t.Fatal("retried join streamed nothing")
	}
	for i := 0; i < 200; i++ {
		if v, found, err := cli.Get(key(i), []byte("ck")); err != nil || !found || string(v) != "v0" {
			t.Fatalf("%s after retried join: found=%v err=%v v=%q", key(i), found, err, v)
		}
	}
}
