package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scalekv/internal/hashring"
	"scalekv/internal/row"
	"scalekv/internal/storage"
	"scalekv/internal/wire"
)

// TestClientDeleteEndToEnd: Client.Delete is a first-class distributed
// write — the deleted cell is gone from reads immediately, stays gone
// after every node flushes (tombstones survive flush), and at rf=2 it
// stays gone even when the key's primary dies and the read fails over.
func TestClientDeleteEndToEnd(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 3, ReplicationFactor: 2})
	cli := c.Client()

	const n = 40
	pk := func(i int) string { return fmt.Sprintf("part-%d", i) }
	for i := 0; i < n; i++ {
		if err := cli.Put(pk(i), []byte("ck"), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 2 {
		if err := cli.Delete(pk(i), []byte("ck")); err != nil {
			t.Fatal(err)
		}
	}
	verify := func(stage string) {
		t.Helper()
		for i := 0; i < n; i++ {
			_, found, err := cli.Get(pk(i), []byte("ck"))
			if err != nil {
				t.Fatalf("%s: get %s: %v", stage, pk(i), err)
			}
			if want := i%2 == 1; found != want {
				t.Fatalf("%s: %s found=%v want %v", stage, pk(i), found, want)
			}
		}
	}
	verify("before flush")
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	verify("after flush")

	// Kill a node; at rf=2 failover reads must agree that deleted cells
	// are deleted (the tombstone replicated like any write).
	c.Nodes[1].Close()
	verify("after primary death")
}

// TestStreamedCopyLosesToForwardedWrite pins the PR 3 rebalance race at
// the wire level: during a migration the target can receive the same
// cell twice — once via the dual-write forward of a fresh overwrite,
// once via a range-stream page read from an older snapshot. Whichever
// order they arrive in, the overwrite must win, because both copies
// carry the versions their accepting engine stamped (and the wire
// preserves them). Before versioned cells, last arrival won and the
// streamed stale copy could clobber the overwrite.
func TestStreamedCopyLosesToForwardedWrite(t *testing.T) {
	for name, reversed := range map[string]bool{"forward-then-stream": false, "stream-then-forward": true} {
		t.Run(name, func(t *testing.T) {
			c := startTest(t, LocalOptions{Nodes: 1})
			target := c.Nodes[0]
			codec := wire.FastCodec{}

			// The "source" stamped these: the stream page snapshotted the
			// cell before the overwrite, so its version is older.
			streamed := &wire.BatchPutRequest{Entries: []row.Entry{
				{PK: "hot", CK: []byte("ck"), Value: []byte("stale"), Ver: row.Version{Seq: 100, Node: 7}},
				{PK: "hot", CK: []byte("gone"), Value: []byte("resurrected"), Ver: row.Version{Seq: 90, Node: 7}},
			}}
			forwarded := &wire.BatchPutRequest{Entries: []row.Entry{
				{PK: "hot", CK: []byte("ck"), Value: []byte("overwrite"), Ver: row.Version{Seq: 200, Node: 7}},
				{PK: "hot", CK: []byte("gone"), Ver: row.Version{Seq: 150, Node: 7}, Tombstone: true},
			}}
			msgs := []*wire.BatchPutRequest{forwarded, streamed}
			if reversed {
				msgs = []*wire.BatchPutRequest{streamed, forwarded}
			}
			for _, m := range msgs {
				payload, err := codec.Marshal(m)
				if err != nil {
					t.Fatal(err)
				}
				resp := target.handle(payload)
				ack, err := codec.Unmarshal(resp)
				if err != nil {
					t.Fatal(err)
				}
				if bp := ack.(*wire.BatchPutResponse); bp.ErrMsg != "" {
					t.Fatal(bp.ErrMsg)
				}
			}
			if v, ok, _ := target.Engine().Get("hot", []byte("ck")); !ok || string(v) != "overwrite" {
				t.Fatalf("target serves %q,%v want the overwrite", v, ok)
			}
			if v, ok, _ := target.Engine().Get("hot", []byte("gone")); ok {
				t.Fatalf("stale streamed copy resurrected a deleted cell: %q", v)
			}
		})
	}
}

// TestOverwriteAndDeleteDuringRebalanceConverge is the end-to-end
// version of the race: while a node joins under live traffic, a writer
// keeps overwriting a fixed key set and a deleter keeps deleting
// another. After the join, every replica of every touched key —
// including the brand-new node, which received its data via stream
// pages racing dual-write forwards — must hold exactly the final acked
// state.
func TestOverwriteAndDeleteDuringRebalanceConverge(t *testing.T) {
	const (
		preCells  = 1500
		hotKeys   = 120 // continuously overwritten during the join
		delKeys   = 120 // deleted during the join
		rf        = 2
		nodeCount = 3
	)
	c := startTest(t, LocalOptions{
		Nodes:             nodeCount,
		ReplicationFactor: rf,
		Storage:           storage.Options{DisableWAL: true, FlushThreshold: 64 << 10},
	})
	cli := c.Client()

	key := func(i int) string { return fmt.Sprintf("cell-%06d", i) }
	for i := 0; i < preCells; i++ {
		if err := cli.Put(key(i), []byte("ck"), []byte("v0")); err != nil {
			t.Fatal(err)
		}
	}

	var (
		stop      atomic.Bool
		lastAcked [hotKeys]atomic.Int64 // round acked per hot key
		deleted   atomic.Int64
		opErr     atomic.Pointer[error]
	)
	fail := func(err error) { opErr.CompareAndSwap(nil, &err) }
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // overwriter: rounds of writes to the same keys
		defer wg.Done()
		for round := int64(1); !stop.Load(); round++ {
			for k := 0; k < hotKeys; k++ {
				if err := cli.Put(key(k), []byte("ck"), []byte(fmt.Sprintf("round-%d", round))); err != nil {
					fail(err)
					return
				}
				lastAcked[k].Store(round)
			}
		}
	}()
	go func() { // deleter: removes a disjoint key set once
		defer wg.Done()
		for k := hotKeys; k < hotKeys+delKeys; k++ {
			if err := cli.Delete(key(k), []byte("ck")); err != nil {
				fail(err)
				return
			}
			deleted.Add(1)
			if stop.Load() {
				return
			}
		}
	}()

	node, report, err := c.AddNode()
	stop.Store(true)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if errp := opErr.Load(); errp != nil {
		t.Fatalf("operation failed during join: %v", *errp)
	}
	if report.CellsStreamed == 0 {
		t.Fatal("join streamed nothing")
	}
	_ = node

	// Every replica engine of every hot key holds the final acked round
	// (or later — the overwriter may have had one more write in flight).
	topo := c.Topology()
	engines := make(map[hashring.NodeID]*storage.Engine)
	for _, n := range c.Nodes {
		engines[n.ID()] = n.Engine()
	}
	moved := 0
	for k := 0; k < hotKeys; k++ {
		pk := key(k)
		tok := hashring.Token(pk)
		for _, m := range report.Moves {
			if m.Contains(tok) {
				moved++
				break
			}
		}
		minRound := lastAcked[k].Load()
		for _, replica := range topo.Replicas(pk, rf) {
			e := engines[replica]
			if e == nil {
				t.Fatalf("replica %d of %s not running", replica, pk)
			}
			v, ok, err := e.Get(pk, []byte("ck"))
			if err != nil || !ok {
				t.Fatalf("replica %d of %s: err=%v found=%v", replica, pk, err, ok)
			}
			var round int64
			if _, err := fmt.Sscanf(string(v), "round-%d", &round); err != nil || round < minRound {
				t.Fatalf("replica %d of %s serves %q, below acked round %d — a streamed stale copy won",
					replica, pk, v, minRound)
			}
		}
	}
	if moved == 0 {
		t.Fatal("no hot key fell in a moved range; the race was not exercised")
	}

	// Every acked delete is gone on every replica of its key.
	delDone := int(deleted.Load())
	if delDone == 0 {
		t.Fatal("deleter made no progress during the join")
	}
	for k := hotKeys; k < hotKeys+delDone; k++ {
		pk := key(k)
		for _, replica := range topo.Replicas(pk, rf) {
			if _, ok, _ := engines[replica].Get(pk, []byte("ck")); ok {
				t.Fatalf("deleted key %s visible at replica %d after join", pk, replica)
			}
		}
		if _, found, err := cli.Get(pk, []byte("ck")); err != nil || found {
			t.Fatalf("deleted key %s: err=%v found=%v via client", pk, err, found)
		}
	}

	// Untouched cells all survived the join.
	for i := hotKeys + delKeys; i < preCells; i++ {
		if v, found, err := cli.Get(key(i), []byte("ck")); err != nil || !found || string(v) != "v0" {
			t.Fatalf("cold cell %s after join: err=%v found=%v v=%q", key(i), err, found, v)
		}
	}
}

// TestReadRepairPropagatesNewerCell: with ReadRepair on, a Get that
// fails over (broken connection, live node) re-propagates the cell it
// read — at its original version — to the replica it skipped, healing
// the divergence without waiting for anti-entropy.
func TestReadRepairPropagatesNewerCell(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 2, ReplicationFactor: 2, ReadRepair: true})
	cli := c.Client()

	if err := cli.Put("k", []byte("ck"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	topo := c.Topology()
	replicas := topo.Replicas("k", 2)
	primary, secondary := replicas[0], replicas[1]
	var primaryNode, secondaryNode *Node
	for _, n := range c.Nodes {
		switch n.ID() {
		case primary:
			primaryNode = n
		case secondary:
			secondaryNode = n
		}
	}

	// The secondary holds a newer version the primary missed (as if the
	// primary had been down for that write).
	newer := row.Version{Seq: 1 << 30, Node: uint16(secondary)}
	if err := secondaryNode.Engine().PutBatch([]row.Entry{
		{PK: "k", CK: []byte("ck"), Value: []byte("v2"), Ver: newer},
	}); err != nil {
		t.Fatal(err)
	}

	// Break the client's established connection to the primary while the
	// node itself stays up — the realistic repairable failure. The read
	// finds the broken conn, fails over to the secondary, and the repair
	// goroutine re-dials the primary successfully.
	cli.mu.Lock()
	conn := cli.conns[primary]
	cli.mu.Unlock()
	if conn == nil {
		t.Fatal("no connection to primary")
	}
	conn.Close()

	v, found, err := cli.Get("k", []byte("ck"))
	if err != nil || !found || string(v) != "v2" {
		t.Fatalf("failover read: %q,%v,%v want v2", v, found, err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		cell, ok, err := primaryNode.Engine().GetVersioned("k", []byte("ck"))
		if err != nil {
			t.Fatal(err)
		}
		if ok && string(cell.Value) == "v2" && cell.Ver == newer {
			if cli.RepairedReads.Load() == 0 {
				t.Fatal("repair happened but was not counted")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("primary never repaired: %q ok=%v", cell.Value, ok)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
