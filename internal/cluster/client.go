package cluster

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"time"

	"scalekv/internal/hashring"
	"scalekv/internal/row"
	"scalekv/internal/stages"
	"scalekv/internal/transport"
	"scalekv/internal/wire"
)

// Client routes operations to nodes by token ring and runs fan-out
// queries. Safe for concurrent use.
type Client struct {
	ring    *hashring.Ring
	conns   map[hashring.NodeID]*transport.Client
	codec   wire.Codec
	rf      int
	queryID uint64
	mu      sync.Mutex
}

// ClientOptions configures a cluster client.
type ClientOptions struct {
	// Codec must match the nodes'. Defaults to FastCodec.
	Codec wire.Codec
	// ReplicationFactor is how many replicas each write lands on.
	// 0 means 1.
	ReplicationFactor int
}

// NewClient wraps per-node RPC clients with ring routing. The conns map
// must contain one connection per ring node.
func NewClient(ring *hashring.Ring, conns map[hashring.NodeID]*transport.Client, opts ClientOptions) *Client {
	if opts.Codec == nil {
		opts.Codec = wire.FastCodec{}
	}
	if opts.ReplicationFactor <= 0 {
		opts.ReplicationFactor = 1
	}
	return &Client{ring: ring, conns: conns, codec: opts.Codec, rf: opts.ReplicationFactor}
}

// Ring exposes the routing ring (read-only use).
func (c *Client) Ring() *hashring.Ring { return c.ring }

func (c *Client) call(node hashring.NodeID, msg wire.Message) (wire.Message, error) {
	conn, ok := c.conns[node]
	if !ok {
		return nil, fmt.Errorf("cluster: no connection to node %d", node)
	}
	payload, err := c.codec.Marshal(msg)
	if err != nil {
		return nil, err
	}
	resp, err := conn.Call(payload)
	if err != nil {
		return nil, err
	}
	return c.codec.Unmarshal(resp)
}

// Put writes one cell to every replica of its partition. The replica
// RPCs are issued concurrently over the pipelined transport, so a
// replication factor above one costs one network round trip, not rf.
func (c *Client) Put(pk string, ck, value []byte) error {
	payload, err := c.codec.Marshal(&wire.PutRequest{PK: pk, CK: ck, Value: value})
	if err != nil {
		return err
	}
	var firstErr error
	record := func(err error) {
		if firstErr == nil && err != nil {
			firstErr = err
		}
	}
	chans := make([]<-chan []byte, 0, c.rf)
	for _, node := range c.ring.Replicas(pk, c.rf) {
		conn, ok := c.conns[node]
		if !ok {
			record(fmt.Errorf("cluster: no connection to node %d", node))
			continue
		}
		ch, err := conn.Go(payload)
		if err != nil {
			record(err)
			continue
		}
		chans = append(chans, ch)
	}
	for _, ch := range chans {
		record(c.reapPut(ch))
	}
	return firstErr
}

// reapPut waits for one in-flight put (single or batch) and converts its
// response into an error.
func (c *Client) reapPut(ch <-chan []byte) error {
	raw, ok := <-ch
	if !ok {
		return fmt.Errorf("cluster: put failed: %w", transport.ErrClosed)
	}
	resp, err := c.codec.Unmarshal(raw)
	if err != nil {
		return err
	}
	switch pr := resp.(type) {
	case *wire.PutResponse:
		if pr.ErrMsg != "" {
			return errors.New(pr.ErrMsg)
		}
	case *wire.BatchPutResponse:
		if pr.ErrMsg != "" {
			return errors.New(pr.ErrMsg)
		}
	default:
		return fmt.Errorf("cluster: unexpected response %T", resp)
	}
	return nil
}

// PutBatch writes many cells in replica-aware batches: entries are
// grouped by destination node across all replicas, each node receives
// one BatchPutRequest, and all node RPCs fly concurrently. Equivalent to
// a Put per entry, minus the per-cell round trips.
func (c *Client) PutBatch(entries []row.Entry) error {
	if len(entries) == 0 {
		return nil
	}
	perNode := make(map[hashring.NodeID][]row.Entry)
	for _, e := range entries {
		for _, node := range c.ring.Replicas(e.PK, c.rf) {
			perNode[node] = append(perNode[node], e)
		}
	}
	var firstErr error
	chans := make([]<-chan []byte, 0, len(perNode))
	for node, batch := range perNode {
		ch, err := c.goBatch(node, batch)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		chans = append(chans, ch)
	}
	for _, ch := range chans {
		if err := c.reapPut(ch); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// goBatch launches one asynchronous BatchPutRequest at a node.
func (c *Client) goBatch(node hashring.NodeID, batch []row.Entry) (<-chan []byte, error) {
	conn, ok := c.conns[node]
	if !ok {
		return nil, fmt.Errorf("cluster: no connection to node %d", node)
	}
	payload, err := c.codec.Marshal(&wire.BatchPutRequest{Entries: batch})
	if err != nil {
		return nil, err
	}
	return conn.Go(payload)
}

// MultiGet reads many cells, one MultiGetRequest per involved primary,
// all in flight at once. Results are positional: out[i] answers keys[i].
func (c *Client) MultiGet(keys []wire.GetKey) ([]wire.MultiGetValue, error) {
	out := make([]wire.MultiGetValue, len(keys))
	perNode := make(map[hashring.NodeID][]int) // original index of each routed key
	for i, k := range keys {
		node := c.ring.Primary(k.PK)
		perNode[node] = append(perNode[node], i)
	}
	type pendingGet struct {
		idx []int
		ch  <-chan []byte
	}
	pending := make([]pendingGet, 0, len(perNode))
	for node, idx := range perNode {
		conn, ok := c.conns[node]
		if !ok {
			return nil, fmt.Errorf("cluster: no connection to node %d", node)
		}
		sub := make([]wire.GetKey, len(idx))
		for j, i := range idx {
			sub[j] = keys[i]
		}
		payload, err := c.codec.Marshal(&wire.MultiGetRequest{Keys: sub})
		if err != nil {
			return nil, err
		}
		ch, err := conn.Go(payload)
		if err != nil {
			return nil, err
		}
		pending = append(pending, pendingGet{idx: idx, ch: ch})
	}
	for _, p := range pending {
		raw, ok := <-p.ch
		if !ok {
			return nil, fmt.Errorf("cluster: multi-get failed: %w", transport.ErrClosed)
		}
		resp, err := c.codec.Unmarshal(raw)
		if err != nil {
			return nil, err
		}
		mr, ok := resp.(*wire.MultiGetResponse)
		if !ok {
			return nil, fmt.Errorf("cluster: unexpected response %T", resp)
		}
		if mr.ErrMsg != "" {
			return nil, errors.New(mr.ErrMsg)
		}
		if len(mr.Values) != len(p.idx) {
			return nil, fmt.Errorf("cluster: multi-get returned %d values for %d keys", len(mr.Values), len(p.idx))
		}
		for j, i := range p.idx {
			out[i] = mr.Values[j]
		}
	}
	return out, nil
}

// Get reads one cell from the partition's primary replica.
func (c *Client) Get(pk string, ck []byte) ([]byte, bool, error) {
	resp, err := c.call(c.ring.Primary(pk), &wire.GetRequest{PK: pk, CK: ck})
	if err != nil {
		return nil, false, err
	}
	gr, ok := resp.(*wire.GetResponse)
	if !ok {
		return nil, false, fmt.Errorf("cluster: unexpected response %T", resp)
	}
	if gr.ErrMsg != "" {
		return nil, false, errors.New(gr.ErrMsg)
	}
	return gr.Value, gr.Found, nil
}

// Scan reads a clustering range of a partition from its primary.
func (c *Client) Scan(pk string, from, to []byte) ([]row.Cell, error) {
	resp, err := c.call(c.ring.Primary(pk), &wire.ScanRequest{PK: pk, From: from, To: to})
	if err != nil {
		return nil, err
	}
	sr, ok := resp.(*wire.ScanResponse)
	if !ok {
		return nil, fmt.Errorf("cluster: unexpected response %T", resp)
	}
	if sr.ErrMsg != "" {
		return nil, errors.New(sr.ErrMsg)
	}
	return sr.Cells, nil
}

// Count aggregates one partition (count by type) on its primary.
func (c *Client) Count(pk string) (map[uint8]uint64, uint64, error) {
	resp, err := c.call(c.ring.Primary(pk), &wire.CountRequest{PK: pk})
	if err != nil {
		return nil, 0, err
	}
	cr, ok := resp.(*wire.CountResponse)
	if !ok {
		return nil, 0, fmt.Errorf("cluster: unexpected response %T", resp)
	}
	if cr.ErrMsg != "" {
		return nil, 0, errors.New(cr.ErrMsg)
	}
	return cr.Counts, cr.Elements, nil
}

// MasterOptions tunes the fan-out aggregation — the knobs the paper's
// Section V experiment turns.
type MasterOptions struct {
	// Verbose reproduces the unoptimized master: per-message logging
	// and integrity checks on top of serialization (the costs the paper
	// profiled and removed).
	Verbose bool
	// LogSink receives the verbose log lines; nil means io.Discard.
	LogSink io.Writer
	// SelectReplica enables the Section VII replica-selection
	// algorithm: each request goes to the least-loaded replica of its
	// partition (by requests issued so far) instead of always the
	// primary. It only balances load when data was written with a
	// replication factor above one, and it costs the master extra
	// bookkeeping per message — the trade-off the paper quantifies.
	SelectReplica bool
}

// MasterResult is the outcome of a fan-out query.
type MasterResult struct {
	Counts   map[uint8]uint64
	Elements uint64
	// Duration is the wall time from first send to last response
	// processed.
	Duration time.Duration
	// SendDuration is the master-side time to issue every request —
	// Formula 3's term, observed.
	SendDuration time.Duration
	// OpsPerNode counts requests served by each node.
	OpsPerNode map[int]int
	// Trace carries the per-request stage spans (Figure 2/4 input).
	Trace *stages.Trace
	// BytesSent totals the request payloads, the paper's 7.5MB-vs-900KB
	// measurement.
	BytesSent int64
	Errors    int
}

// CountAll runs the paper's prototype query: the master knows every key
// up front, issues one CountRequest per key to the key's primary node,
// and aggregates the responses. Stage timings land in the result trace.
func (c *Client) CountAll(pks []string, opts MasterOptions) (*MasterResult, error) {
	logSink := opts.LogSink
	if logSink == nil {
		logSink = io.Discard
	}
	c.mu.Lock()
	c.queryID++
	qid := c.queryID
	c.mu.Unlock()

	res := &MasterResult{
		Counts:     make(map[uint8]uint64),
		OpsPerNode: make(map[int]int),
		Trace:      stages.NewTrace(),
	}
	type pendingResp struct {
		seq     uint32
		node    hashring.NodeID
		sentAbs time.Time
		ch      <-chan []byte
	}
	start := time.Now()
	pending := make([]pendingResp, 0, len(pks))

	// Send phase: strictly sequential, like the paper's master loop.
	issued := make(map[hashring.NodeID]int)
	for i, pk := range pks {
		node := c.ring.Primary(pk)
		if opts.SelectReplica {
			// Least-issued replica: the master-side balancing the
			// paper's Section VII analyses (and whose per-message cost
			// bounds the cluster size the master can feed).
			for _, cand := range c.ring.Replicas(pk, c.rf) {
				if issued[cand] < issued[node] {
					node = cand
				}
			}
		}
		issued[node]++
		req := &wire.CountRequest{
			QueryID: qid,
			Seq:     uint32(i),
			PK:      pk,
		}
		sendAbs := time.Now()
		req.TraceSendNanos = sendAbs.UnixNano()
		payload, err := c.codec.Marshal(req)
		if err != nil {
			return nil, err
		}
		if opts.Verbose {
			// The unoptimized master's per-message extras: a formatted
			// log line and an integrity checksum of the frame.
			fmt.Fprintf(logSink, "query=%d seq=%d pk=%s node=%d bytes=%d crc=%08x\n",
				qid, i, pk, node, len(payload), crc32.ChecksumIEEE(payload))
			if rt, err := c.codec.Unmarshal(payload); err != nil {
				return nil, fmt.Errorf("cluster: integrity check: %w", err)
			} else if rt.(*wire.CountRequest).PK != pk {
				return nil, errors.New("cluster: integrity check mismatch")
			}
		}
		conn, ok := c.conns[node]
		if !ok {
			return nil, fmt.Errorf("cluster: no connection to node %d", node)
		}
		ch, err := conn.Go(payload)
		if err != nil {
			return nil, err
		}
		res.BytesSent += int64(len(payload))
		pending = append(pending, pendingResp{seq: uint32(i), node: node, sentAbs: sendAbs, ch: ch})
	}
	res.SendDuration = time.Since(start)

	// Collect phase.
	for _, p := range pending {
		raw, ok := <-p.ch
		if !ok {
			res.Errors++
			continue
		}
		recvAbs := time.Now()
		msg, err := c.codec.Unmarshal(raw)
		if err != nil {
			res.Errors++
			continue
		}
		cr, ok := msg.(*wire.CountResponse)
		if !ok || cr.ErrMsg != "" {
			res.Errors++
			continue
		}
		res.Elements += cr.Elements
		for ty, n := range cr.Counts {
			res.Counts[ty] += n
		}
		res.OpsPerNode[int(p.node)]++

		// Reconstruct the four stages relative to query start.
		nodeRecv := time.Unix(0, cr.RecvNanos)
		reqID := uint64(p.seq)
		node := int(p.node)
		res.Trace.Record(reqID, node, stages.MasterToSlave,
			p.sentAbs.Sub(start), nodeRecv.Sub(start))
		queueEnd := nodeRecv.Add(time.Duration(cr.QueueNanos))
		res.Trace.Record(reqID, node, stages.InQueue,
			nodeRecv.Sub(start), queueEnd.Sub(start))
		dbEnd := queueEnd.Add(time.Duration(cr.DBNanos))
		res.Trace.Record(reqID, node, stages.InDB,
			queueEnd.Sub(start), dbEnd.Sub(start))
		res.Trace.Record(reqID, node, stages.SlaveToMaster,
			dbEnd.Sub(start), recvAbs.Sub(start))
	}
	res.Duration = time.Since(start)
	return res, nil
}

// Close closes every node connection.
func (c *Client) Close() {
	for _, conn := range c.conns {
		conn.Close()
	}
}
