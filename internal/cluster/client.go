package cluster

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"scalekv/internal/hashring"
	"scalekv/internal/row"
	"scalekv/internal/stages"
	"scalekv/internal/transport"
	"scalekv/internal/wire"
)

// maxRouteAttempts bounds how many times an operation re-routes after a
// ring refresh (wrong-epoch rejection or unreachable replicas). Each
// attempt already tries every replica, so this is a topology-churn
// bound, not a per-node retry count.
const maxRouteAttempts = 4

// retryableError marks a failure the client may recover from by
// refreshing its ring and re-routing: a wrong-epoch rejection or a
// transport-level error (as opposed to a storage error the server
// reported while healthy).
type retryableError struct{ error }

func (e retryableError) Unwrap() error { return e.error }

func retryable(err error) error {
	if err == nil {
		return nil
	}
	return retryableError{err}
}

func isRetryable(err error) bool {
	var r retryableError
	return errors.As(err, &r)
}

// Dialer opens a pipelined RPC connection to a node address; the client
// uses it to reach members it learns about from ring refreshes.
type Dialer func(addr string) (*transport.Client, error)

// Client routes operations to nodes by an epoch-versioned token ring
// and runs fan-out queries. Safe for concurrent use.
//
// The ring is mutable: every routed request carries the topology epoch
// it was routed under, and a node that has moved to a different epoch
// rejects it, making the client refresh its ring (RingStateRequest to
// any reachable member) and re-route. New members are dialed lazily via
// the Dialer; connections to departed members are closed on adoption.
// Point reads (Get, MultiGet, Scan, Count) fail over to the next
// replica when a node is unreachable, so a dead primary degrades
// instead of failing every read — provided data was written with a
// replication factor above one.
type Client struct {
	codec      wire.Codec
	rf         int
	dialer     Dialer
	readRepair bool
	repairConc int // anti-entropy worker-pool width (see RepairRange)

	mu      sync.Mutex
	ring    *hashring.Topology
	conns   map[hashring.NodeID]*transport.Client
	addrs   map[hashring.NodeID]string
	queryID uint64

	// RepairedReads counts best-effort read-repair writes issued after
	// failover reads (observability; see ClientOptions.ReadRepair).
	RepairedReads atomic.Int64
	// Failovers counts routed reads (Get, Scan, Count) a non-primary
	// replica served because an earlier replica was unreachable. The
	// workload lab (cmd/kvload) records the per-step delta into
	// BENCH_*.json: a non-zero count means the sweep ran against a
	// degraded cluster and its numbers are not trajectory-comparable.
	Failovers atomic.Int64
	// repairsInFlight bounds concurrent repair goroutines (see
	// repairAsync).
	repairsInFlight atomic.Int64
}

// maxRepairsInFlight caps concurrent read-repair goroutines. Failover
// reads against a dead primary can fire at full read throughput; the
// repair is best-effort, so past the cap new repairs are simply
// skipped instead of accumulating goroutines that all block dialing
// the same unreachable node.
const maxRepairsInFlight = 8

// ClientOptions configures a cluster client.
type ClientOptions struct {
	// Codec must match the nodes'. Defaults to FastCodec.
	Codec wire.Codec
	// ReplicationFactor is how many replicas each write lands on — and
	// how many replicas a read may fail over across. 0 means 1.
	ReplicationFactor int
	// Dialer lets the client open connections to nodes it discovers
	// through ring refreshes (and re-dial nodes whose connection died).
	// Nil restricts the client to the initial conns map.
	Dialer Dialer
	// Addrs seeds the member address book used with Dialer.
	Addrs map[hashring.NodeID]string
	// ReadRepair makes a Get that failed over past one or more replicas
	// (rf > 1) asynchronously re-put the cell it read — with its
	// original version, so last-write-wins keeps the propagation
	// harmless — to the partition's other replicas. Deletes repair too:
	// a failover read that lands on a tombstone forwards the tombstone,
	// so the skipped replica stops serving the old value. Best-effort:
	// errors are dropped and cells written before versioning are not
	// repaired (their zero version cannot be re-stamped safely); it
	// narrows replica divergence after a node outage but touches only
	// what failover reads hit — Cluster.Repair is the convergence
	// guarantee.
	ReadRepair bool
	// RepairConcurrency is how many token ranges an anti-entropy pass
	// (RepairRange, RepairAll, Cluster.Repair) digests and reconciles
	// concurrently. 0 means 4; 1 restores the sequential pass.
	RepairConcurrency int
}

// defaultRepairConcurrency is the anti-entropy pool width when
// ClientOptions.RepairConcurrency is zero: wide enough to overlap
// digest round trips across ranges, narrow enough that repair traffic
// cannot crowd out foreground reads on the replicas.
const defaultRepairConcurrency = 4

// NewClient wraps per-node RPC clients with ring routing. The conns map
// seeds the connection set; with a Dialer and address book the client
// dials further members lazily.
func NewClient(ring *hashring.Topology, conns map[hashring.NodeID]*transport.Client, opts ClientOptions) *Client {
	if opts.Codec == nil {
		opts.Codec = wire.FastCodec{}
	}
	if opts.ReplicationFactor <= 0 {
		opts.ReplicationFactor = 1
	}
	if opts.RepairConcurrency <= 0 {
		opts.RepairConcurrency = defaultRepairConcurrency
	}
	c := &Client{
		codec:      opts.Codec,
		rf:         opts.ReplicationFactor,
		dialer:     opts.Dialer,
		readRepair: opts.ReadRepair,
		repairConc: opts.RepairConcurrency,
		ring:       ring,
		conns:      make(map[hashring.NodeID]*transport.Client, len(conns)),
		addrs:      make(map[hashring.NodeID]string, len(opts.Addrs)),
	}
	for id, conn := range conns {
		c.conns[id] = conn
	}
	for id, a := range opts.Addrs {
		c.addrs[id] = a
	}
	return c
}

// Ring exposes the current routing topology (read-only use).
func (c *Client) Ring() *hashring.Topology { return c.topo() }

// ReplicationFactor reports the client's effective replication factor —
// either the one configured or, for Connect with none set, the one
// adopted from the ring.
func (c *Client) ReplicationFactor() int { return c.rf }

func (c *Client) topo() *hashring.Topology {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring
}

// conn returns the pipelined connection to a node, dialing lazily when
// the client knows the node's address.
func (c *Client) conn(node hashring.NodeID) (*transport.Client, error) {
	c.mu.Lock()
	if conn, ok := c.conns[node]; ok {
		c.mu.Unlock()
		return conn, nil
	}
	addr, haveAddr := c.addrs[node]
	dialer := c.dialer
	c.mu.Unlock()
	if !haveAddr || dialer == nil {
		return nil, fmt.Errorf("cluster: no connection to node %d", node)
	}
	conn, err := dialer(addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial node %d: %w", node, err)
	}
	c.mu.Lock()
	if existing, ok := c.conns[node]; ok {
		// Lost the dial race; keep the established winner.
		c.mu.Unlock()
		conn.Close()
		return existing, nil
	}
	c.conns[node] = conn
	c.mu.Unlock()
	return conn, nil
}

// dropConn forgets a connection observed failing, so the next use
// re-dials (the node may have restarted, or is gone from the ring).
func (c *Client) dropConn(node hashring.NodeID, conn *transport.Client) {
	c.mu.Lock()
	if c.conns[node] == conn {
		delete(c.conns, node)
	}
	c.mu.Unlock()
	conn.Close()
}

// callRaw sends one framed request to a node and waits for the reply.
// Every returned error is transport-class.
func (c *Client) callRaw(node hashring.NodeID, payload []byte) ([]byte, error) {
	conn, err := c.conn(node)
	if err != nil {
		return nil, err
	}
	raw, err := conn.Call(payload)
	if err != nil {
		c.dropConn(node, conn)
		return nil, err
	}
	return raw, nil
}

func (c *Client) call(node hashring.NodeID, msg wire.Message) (wire.Message, error) {
	payload, err := c.codec.Marshal(msg)
	if err != nil {
		return nil, err
	}
	raw, err := c.callRaw(node, payload)
	if err != nil {
		return nil, err
	}
	return c.codec.Unmarshal(raw)
}

// --- Ring refresh -----------------------------------------------------------

// refreshRing asks every reachable member for its ring state and
// adopts the highest epoch seen. Polling all members matters during an
// epoch flip, which installs the new topology node by node: the member
// that just rejected a request already has the new state, while another
// may still answer with the old one — taking the maximum makes one
// refresh suffice.
func (c *Client) refreshRing() error {
	payload, err := c.codec.Marshal(&wire.RingStateRequest{})
	if err != nil {
		return err
	}
	c.mu.Lock()
	conns := make(map[hashring.NodeID]*transport.Client, len(c.conns))
	for id, conn := range c.conns {
		conns[id] = conn
	}
	c.mu.Unlock()
	lastErr := errors.New("cluster: no members reachable for ring refresh")
	var best *wire.RingStateResponse
	for id, conn := range conns {
		raw, err := conn.Call(payload)
		if err != nil {
			c.dropConn(id, conn)
			lastErr = err
			continue
		}
		resp, err := c.codec.Unmarshal(raw)
		if err != nil {
			lastErr = err
			continue
		}
		rs, ok := resp.(*wire.RingStateResponse)
		if !ok {
			lastErr = fmt.Errorf("cluster: unexpected ring-state response %T", resp)
			continue
		}
		if rs.ErrMsg != "" {
			lastErr = errors.New(rs.ErrMsg)
			continue
		}
		if best == nil || rs.Epoch > best.Epoch {
			best = rs
		}
	}
	if best == nil {
		return lastErr
	}
	c.adoptRingState(best)
	return nil
}

// adoptRingState rebuilds a topology from its wire form and installs it.
func (c *Client) adoptRingState(rs *wire.RingStateResponse) {
	ids := make([]hashring.NodeID, 0, len(rs.Nodes))
	addrs := make(map[hashring.NodeID]string, len(rs.Nodes))
	for _, n := range rs.Nodes {
		id := hashring.NodeID(n.ID)
		ids = append(ids, id)
		if n.Addr != "" {
			addrs[id] = n.Addr
		}
	}
	c.adopt(hashring.FromNodes(rs.Epoch, ids, int(rs.Vnodes)), addrs)
}

// adopt installs a topology (unless it is older than the current one),
// merges the address book, and closes connections to departed members.
func (c *Client) adopt(topo *hashring.Topology, addrs map[hashring.NodeID]string) {
	var closeConns []*transport.Client
	c.mu.Lock()
	if c.ring != nil && topo.Epoch() < c.ring.Epoch() {
		c.mu.Unlock()
		return
	}
	c.ring = topo
	for id, a := range addrs {
		c.addrs[id] = a
	}
	for id, conn := range c.conns {
		if !topo.Contains(id) {
			closeConns = append(closeConns, conn)
			delete(c.conns, id)
			delete(c.addrs, id)
		}
	}
	c.mu.Unlock()
	for _, conn := range closeConns {
		conn.Close()
	}
}

// --- Writes -----------------------------------------------------------------

// Put writes one cell to every replica of its partition. The replica
// RPCs are issued concurrently over the pipelined transport, so a
// replication factor above one costs one network round trip, not rf.
// On a wrong-epoch rejection or an unreachable replica the client
// refreshes its ring and retries the whole write (idempotent: last
// write wins).
func (c *Client) Put(pk string, ck, value []byte) error {
	var lastErr error
	for attempt := 0; attempt < maxRouteAttempts; attempt++ {
		t := c.topo()
		payload, err := c.codec.Marshal(&wire.PutRequest{PK: pk, CK: ck, Value: value, Epoch: t.Epoch()})
		if err != nil {
			return err
		}
		err = c.fanOutWrite(t.Replicas(pk, c.rf), payload)
		if err == nil {
			return nil
		}
		if !isRetryable(err) {
			return err
		}
		lastErr = err
		if rerr := c.refreshRing(); rerr != nil {
			break
		}
	}
	return lastErr
}

// fanOutWrite sends one pre-marshalled write to every listed node
// concurrently and reaps all acknowledgements, returning the first
// error (retryable errors win over nothing, but any ack error is
// reported).
func (c *Client) fanOutWrite(nodes []hashring.NodeID, payload []byte) error {
	var firstErr error
	record := func(err error) {
		if firstErr == nil && err != nil {
			firstErr = err
		}
	}
	chans := make([]<-chan []byte, 0, len(nodes))
	for _, node := range nodes {
		conn, err := c.conn(node)
		if err != nil {
			record(retryable(err))
			continue
		}
		ch, err := conn.Go(payload)
		if err != nil {
			c.dropConn(node, conn)
			record(retryable(err))
			continue
		}
		chans = append(chans, ch)
	}
	for _, ch := range chans {
		record(c.reapPut(ch))
	}
	return firstErr
}

// reapPut waits for one in-flight write (single put, batch or delete)
// and converts its response into an error. Wrong-epoch rejections and
// transport failures come back retryable.
func (c *Client) reapPut(ch <-chan []byte) error {
	raw, ok := <-ch
	if !ok {
		return retryable(fmt.Errorf("cluster: write failed: %w", transport.ErrClosed))
	}
	resp, err := c.codec.Unmarshal(raw)
	if err != nil {
		return err
	}
	var errMsg string
	switch pr := resp.(type) {
	case *wire.PutResponse:
		errMsg = pr.ErrMsg
	case *wire.BatchPutResponse:
		errMsg = pr.ErrMsg
	case *wire.DeleteResponse:
		errMsg = pr.ErrMsg
	default:
		return fmt.Errorf("cluster: unexpected response %T", resp)
	}
	if errMsg == "" {
		return nil
	}
	if wire.IsWrongEpoch(errMsg) {
		return retryable(errors.New(errMsg))
	}
	return errors.New(errMsg)
}

// Delete removes one cell on every replica of its partition — the
// distributed half of the engine's tombstone write. Routing, replica
// fan-out, wrong-epoch refresh/re-route and idempotent retries all
// match Put: the accepting node stamps the tombstone's version and
// dual-write-forwards it during a migration, so the delete converges to
// the same winner on every replica even while the range is moving.
func (c *Client) Delete(pk string, ck []byte) error {
	var lastErr error
	for attempt := 0; attempt < maxRouteAttempts; attempt++ {
		t := c.topo()
		payload, err := c.codec.Marshal(&wire.DeleteRequest{PK: pk, CK: ck, Epoch: t.Epoch()})
		if err != nil {
			return err
		}
		err = c.fanOutWrite(t.Replicas(pk, c.rf), payload)
		if err == nil {
			return nil
		}
		if !isRetryable(err) {
			return err
		}
		lastErr = err
		if rerr := c.refreshRing(); rerr != nil {
			break
		}
	}
	return lastErr
}

// PutBatch writes many cells in replica-aware batches: entries are
// grouped by destination node across all replicas, each node receives
// one BatchPutRequest, and all node RPCs fly concurrently. Equivalent to
// a Put per entry, minus the per-cell round trips. Retryable failures
// (epoch change, unreachable node) refresh the ring and resend the
// whole batch — idempotent, same as Put.
func (c *Client) PutBatch(entries []row.Entry) error {
	if len(entries) == 0 {
		return nil
	}
	var lastErr error
	for attempt := 0; attempt < maxRouteAttempts; attempt++ {
		t := c.topo()
		err := c.putBatchOnce(t, entries)
		if err == nil {
			return nil
		}
		if !isRetryable(err) {
			return err
		}
		lastErr = err
		if rerr := c.refreshRing(); rerr != nil {
			break
		}
	}
	return lastErr
}

func (c *Client) putBatchOnce(t *hashring.Topology, entries []row.Entry) error {
	perNode := make(map[hashring.NodeID][]row.Entry)
	for _, e := range entries {
		for _, node := range t.Replicas(e.PK, c.rf) {
			perNode[node] = append(perNode[node], e)
		}
	}
	var firstErr error
	record := func(err error) {
		if firstErr == nil && err != nil {
			firstErr = err
		}
	}
	chans := make([]<-chan []byte, 0, len(perNode))
	for node, batch := range perNode {
		ch, err := c.goBatch(node, batch, t.Epoch())
		if err != nil {
			record(err)
			continue
		}
		chans = append(chans, ch)
	}
	for _, ch := range chans {
		record(c.reapPut(ch))
	}
	return firstErr
}

// goBatch launches one asynchronous BatchPutRequest at a node. Errors
// are transport-class and marked retryable.
func (c *Client) goBatch(node hashring.NodeID, batch []row.Entry, epoch uint64) (<-chan []byte, error) {
	conn, err := c.conn(node)
	if err != nil {
		return nil, retryable(err)
	}
	payload, err := c.codec.Marshal(&wire.BatchPutRequest{Entries: batch, Epoch: epoch})
	if err != nil {
		return nil, err
	}
	ch, err := conn.Go(payload)
	if err != nil {
		c.dropConn(node, conn)
		return nil, retryable(err)
	}
	return ch, nil
}

// --- Reads ------------------------------------------------------------------

// readServed reports which replica answered a routedRead: the serving
// node, its index in the replica list, and the list itself. A non-zero
// index means the read failed over past earlier replicas — the signal
// read-repair keys on.
type readServed struct {
	node     hashring.NodeID
	idx      int
	replicas []hashring.NodeID
}

// routedRead is the shared failover/refresh loop behind Get, Scan and
// Count: marshal the request for the current epoch, walk the
// partition's replicas on transport errors (a dead primary degrades a
// read instead of killing it — requires rf > 1 to have somewhere to
// go), and on a wrong-epoch rejection refresh the ring and re-route.
// build must stamp the given epoch into the request; errMsgOf extracts
// the typed response's error message. Sharing the loop keeps the three
// read paths from diverging on retry or epoch policy.
func routedRead[R wire.Message](c *Client, pk string, build func(epoch uint64) wire.Message, errMsgOf func(R) string) (R, readServed, error) {
	var zero R
	var lastErr error
	for attempt := 0; attempt < maxRouteAttempts; attempt++ {
		t := c.topo()
		payload, err := c.codec.Marshal(build(t.Epoch()))
		if err != nil {
			return zero, readServed{}, err
		}
		replicas := t.Replicas(pk, c.rf)
		for i, node := range replicas {
			raw, err := c.callRaw(node, payload)
			if err != nil {
				lastErr = retryable(err)
				continue // unreachable replica: try the next one
			}
			resp, err := c.codec.Unmarshal(raw)
			if err != nil {
				return zero, readServed{}, err
			}
			tr, ok := resp.(R)
			if !ok {
				return zero, readServed{}, fmt.Errorf("cluster: unexpected response %T", resp)
			}
			if msg := errMsgOf(tr); msg != "" {
				if wire.IsWrongEpoch(msg) {
					lastErr = retryable(errors.New(msg))
					break // stale ring: refresh, then re-route
				}
				return zero, readServed{}, errors.New(msg)
			}
			if i > 0 {
				c.Failovers.Add(1)
			}
			return tr, readServed{node: node, idx: i, replicas: replicas}, nil
		}
		if err := c.refreshRing(); err != nil {
			break
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: read %q: no replicas", pk)
	}
	return zero, readServed{}, lastErr
}

// Get reads one cell, starting at the partition's primary replica and
// failing over across replicas; wrong-epoch rejections refresh the
// ring and re-route (see routedRead). With ClientOptions.ReadRepair, a
// read that failed over re-propagates the cell it found to the other
// replicas in the background.
func (c *Client) Get(pk string, ck []byte) ([]byte, bool, error) {
	resp, served, err := routedRead(c, pk,
		func(epoch uint64) wire.Message { return &wire.GetRequest{PK: pk, CK: ck, Epoch: epoch} },
		func(r *wire.GetResponse) string { return r.ErrMsg })
	if err != nil {
		return nil, false, err
	}
	// Repair values AND tombstones: a failover read of a deleted cell
	// must propagate the delete, or the lagging replica keeps serving
	// the old value forever once it is primary again.
	if c.readRepair && served.idx > 0 && resp.VerSeq > 0 && (resp.Found || resp.Tombstone) {
		c.repairAsync(served, row.Entry{
			PK: pk, CK: ck, Value: resp.Value, Tombstone: resp.Tombstone,
			Ver: row.Version{Seq: resp.VerSeq, Node: resp.VerNode},
		})
	}
	return resp.Value, resp.Found, nil
}

// repairAsync best-effort re-puts a cell (or a tombstone — deletes ride
// the same path) — with its original version, so a replica that already
// holds something newer keeps it (the last-write-wins merge makes the
// repair harmless) — to every replica other than the one that served
// the read. Errors are dropped: the lagging replica was likely the
// unreachable node the read failed over past, and the repair simply
// misses until it returns.
func (c *Client) repairAsync(served readServed, ent row.Entry) {
	targets := make([]hashring.NodeID, 0, len(served.replicas)-1)
	for _, node := range served.replicas {
		if node != served.node {
			targets = append(targets, node)
		}
	}
	if len(targets) == 0 {
		return
	}
	if c.repairsInFlight.Add(1) > maxRepairsInFlight {
		// Another burst of failover reads is already repairing; drop
		// this one rather than pile goroutines onto an unreachable node.
		c.repairsInFlight.Add(-1)
		return
	}
	// Epoch 0: the repair is admin-class traffic, valid at any epoch —
	// a topology flip mid-repair must not turn a best-effort write into
	// a retry loop.
	payload, err := c.codec.Marshal(&wire.BatchPutRequest{Entries: []row.Entry{ent}})
	if err != nil {
		c.repairsInFlight.Add(-1)
		return
	}
	c.RepairedReads.Add(1)
	go func() {
		defer c.repairsInFlight.Add(-1)
		for _, node := range targets {
			conn, err := c.conn(node)
			if err != nil {
				continue
			}
			if _, err := conn.Call(payload); err != nil {
				c.dropConn(node, conn)
			}
		}
	}()
}

// MultiGet reads many cells, one MultiGetRequest per involved node, all
// in flight at once. Results are positional: out[i] answers keys[i].
// Keys on an unreachable node are retried against their next replica;
// a wrong-epoch rejection refreshes the ring and re-routes the
// remaining keys.
func (c *Client) MultiGet(keys []wire.GetKey) ([]wire.MultiGetValue, error) {
	out := make([]wire.MultiGetValue, len(keys))
	if len(keys) == 0 {
		return out, nil
	}
	resolved := make([]bool, len(keys))
	replicaTry := make([]int, len(keys)) // per-key failover offset
	remaining := len(keys)
	var lastErr error

	for attempt := 0; attempt < maxRouteAttempts && remaining > 0; attempt++ {
		t := c.topo()
		perNode := make(map[hashring.NodeID][]int)
		for i, k := range keys {
			if resolved[i] {
				continue
			}
			replicas := t.Replicas(k.PK, c.rf)
			if len(replicas) == 0 {
				return nil, fmt.Errorf("cluster: multi-get %q: empty ring", k.PK)
			}
			node := replicas[replicaTry[i]%len(replicas)]
			perNode[node] = append(perNode[node], i)
		}

		type pendingGet struct {
			node hashring.NodeID
			idx  []int
			ch   <-chan []byte
			err  error
		}
		pending := make([]pendingGet, 0, len(perNode))
		for node, idx := range perNode {
			p := pendingGet{node: node, idx: idx}
			sub := make([]wire.GetKey, len(idx))
			for j, i := range idx {
				sub[j] = keys[i]
			}
			conn, err := c.conn(node)
			if err != nil {
				p.err = err
			} else {
				payload, merr := c.codec.Marshal(&wire.MultiGetRequest{Keys: sub, Epoch: t.Epoch()})
				if merr != nil {
					return nil, merr
				}
				p.ch, err = conn.Go(payload)
				if err != nil {
					c.dropConn(node, conn)
					p.err = err
				}
			}
			pending = append(pending, p)
		}

		needRefresh := false
		for _, p := range pending {
			failNode := func(err error) {
				lastErr = retryable(err)
				for _, i := range p.idx {
					replicaTry[i]++ // fail over to the next replica
				}
			}
			if p.err != nil {
				failNode(p.err)
				continue
			}
			raw, ok := <-p.ch
			if !ok {
				failNode(fmt.Errorf("cluster: multi-get failed: %w", transport.ErrClosed))
				continue
			}
			resp, err := c.codec.Unmarshal(raw)
			if err != nil {
				return nil, err
			}
			mr, ok := resp.(*wire.MultiGetResponse)
			if !ok {
				return nil, fmt.Errorf("cluster: unexpected response %T", resp)
			}
			if mr.ErrMsg != "" {
				if wire.IsWrongEpoch(mr.ErrMsg) {
					lastErr = retryable(errors.New(mr.ErrMsg))
					needRefresh = true
					continue // keys stay unresolved; re-routed next attempt
				}
				return nil, errors.New(mr.ErrMsg)
			}
			if len(mr.Values) != len(p.idx) {
				return nil, fmt.Errorf("cluster: multi-get returned %d values for %d keys", len(mr.Values), len(p.idx))
			}
			for j, i := range p.idx {
				out[i] = mr.Values[j]
				if !resolved[i] {
					resolved[i] = true
					remaining--
				}
			}
		}
		if remaining == 0 {
			return out, nil
		}
		if needRefresh || lastErr != nil {
			if err := c.refreshRing(); err != nil && needRefresh {
				return nil, lastErr
			}
		}
	}
	if remaining == 0 {
		return out, nil
	}
	if lastErr == nil {
		lastErr = errors.New("cluster: multi-get incomplete")
	}
	return nil, lastErr
}

// Scan reads a clustering range of a partition, failing over across
// replicas like Get.
func (c *Client) Scan(pk string, from, to []byte) ([]row.Cell, error) {
	resp, _, err := routedRead(c, pk,
		func(epoch uint64) wire.Message { return &wire.ScanRequest{PK: pk, From: from, To: to, Epoch: epoch} },
		func(r *wire.ScanResponse) string { return r.ErrMsg })
	if err != nil {
		return nil, err
	}
	return resp.Cells, nil
}

// Count aggregates one partition (count by type), with the same
// replica failover and epoch protection as Get — without the epoch a
// stale client would silently count zero at a node that retired the
// partition after a rebalance. (CountAll's fan-out stays unversioned
// and accounts failures per request instead.)
func (c *Client) Count(pk string) (map[uint8]uint64, uint64, error) {
	resp, _, err := routedRead(c, pk,
		func(epoch uint64) wire.Message { return &wire.CountRequest{PK: pk, Epoch: epoch} },
		func(r *wire.CountResponse) string { return r.ErrMsg })
	if err != nil {
		return nil, 0, err
	}
	return resp.Counts, resp.Elements, nil
}

// NodeStats fetches one member's engine-load summary.
func (c *Client) NodeStats(node hashring.NodeID) (*wire.NodeStatsResponse, error) {
	resp, err := c.call(node, &wire.NodeStatsRequest{})
	if err != nil {
		return nil, err
	}
	ns, ok := resp.(*wire.NodeStatsResponse)
	if !ok {
		return nil, fmt.Errorf("cluster: unexpected response %T", resp)
	}
	if ns.ErrMsg != "" {
		return nil, errors.New(ns.ErrMsg)
	}
	return ns, nil
}

// MasterOptions tunes the fan-out aggregation — the knobs the paper's
// Section V experiment turns.
type MasterOptions struct {
	// Verbose reproduces the unoptimized master: per-message logging
	// and integrity checks on top of serialization (the costs the paper
	// profiled and removed).
	Verbose bool
	// LogSink receives the verbose log lines; nil means io.Discard.
	LogSink io.Writer
	// SelectReplica enables the Section VII replica-selection
	// algorithm: each request goes to the least-loaded replica of its
	// partition (by requests issued so far) instead of always the
	// primary. It only balances load when data was written with a
	// replication factor above one, and it costs the master extra
	// bookkeeping per message — the trade-off the paper quantifies.
	SelectReplica bool
}

// MasterResult is the outcome of a fan-out query.
type MasterResult struct {
	Counts   map[uint8]uint64
	Elements uint64
	// Duration is the wall time from first send to last response
	// processed.
	Duration time.Duration
	// SendDuration is the master-side time to issue every request —
	// Formula 3's term, observed.
	SendDuration time.Duration
	// OpsPerNode counts requests served by each node.
	OpsPerNode map[int]int
	// Trace carries the per-request stage spans (Figure 2/4 input).
	Trace *stages.Trace
	// BytesSent totals the request payloads, the paper's 7.5MB-vs-900KB
	// measurement.
	BytesSent int64
	Errors    int
}

// CountAll runs the paper's prototype query: the master knows every key
// up front, issues one CountRequest per key to the key's primary node,
// and aggregates the responses. Stage timings land in the result trace.
// The topology is snapshotted once at query start; requests are
// epoch-agnostic, so a concurrent rebalance shows up as per-request
// errors (counted), not a failed query.
func (c *Client) CountAll(pks []string, opts MasterOptions) (*MasterResult, error) {
	logSink := opts.LogSink
	if logSink == nil {
		logSink = io.Discard
	}
	topo := c.topo()
	c.mu.Lock()
	c.queryID++
	qid := c.queryID
	c.mu.Unlock()

	res := &MasterResult{
		Counts:     make(map[uint8]uint64),
		OpsPerNode: make(map[int]int),
		Trace:      stages.NewTrace(),
	}
	type pendingResp struct {
		seq     uint32
		node    hashring.NodeID
		sentAbs time.Time
		ch      <-chan []byte
	}
	start := time.Now()
	pending := make([]pendingResp, 0, len(pks))

	// Send phase: strictly sequential, like the paper's master loop.
	issued := make(map[hashring.NodeID]int)
	for i, pk := range pks {
		node := topo.Primary(pk)
		if opts.SelectReplica {
			// Least-issued replica: the master-side balancing the
			// paper's Section VII analyses (and whose per-message cost
			// bounds the cluster size the master can feed).
			for _, cand := range topo.Replicas(pk, c.rf) {
				if issued[cand] < issued[node] {
					node = cand
				}
			}
		}
		issued[node]++
		req := &wire.CountRequest{
			QueryID: qid,
			Seq:     uint32(i),
			PK:      pk,
		}
		sendAbs := time.Now()
		req.TraceSendNanos = sendAbs.UnixNano()
		payload, err := c.codec.Marshal(req)
		if err != nil {
			return nil, err
		}
		if opts.Verbose {
			// The unoptimized master's per-message extras: a formatted
			// log line and an integrity checksum of the frame.
			fmt.Fprintf(logSink, "query=%d seq=%d pk=%s node=%d bytes=%d crc=%08x\n",
				qid, i, pk, node, len(payload), crc32.ChecksumIEEE(payload))
			if rt, err := c.codec.Unmarshal(payload); err != nil {
				return nil, fmt.Errorf("cluster: integrity check: %w", err)
			} else if rt.(*wire.CountRequest).PK != pk {
				return nil, errors.New("cluster: integrity check mismatch")
			}
		}
		conn, err := c.conn(node)
		if err != nil {
			return nil, err
		}
		ch, err := conn.Go(payload)
		if err != nil {
			return nil, err
		}
		res.BytesSent += int64(len(payload))
		pending = append(pending, pendingResp{seq: uint32(i), node: node, sentAbs: sendAbs, ch: ch})
	}
	res.SendDuration = time.Since(start)

	// Collect phase.
	for _, p := range pending {
		raw, ok := <-p.ch
		if !ok {
			res.Errors++
			continue
		}
		recvAbs := time.Now()
		msg, err := c.codec.Unmarshal(raw)
		if err != nil {
			res.Errors++
			continue
		}
		cr, ok := msg.(*wire.CountResponse)
		if !ok || cr.ErrMsg != "" {
			res.Errors++
			continue
		}
		res.Elements += cr.Elements
		for ty, n := range cr.Counts {
			res.Counts[ty] += n
		}
		res.OpsPerNode[int(p.node)]++

		// Reconstruct the four stages relative to query start.
		nodeRecv := time.Unix(0, cr.RecvNanos)
		reqID := uint64(p.seq)
		node := int(p.node)
		res.Trace.Record(reqID, node, stages.MasterToSlave,
			p.sentAbs.Sub(start), nodeRecv.Sub(start))
		queueEnd := nodeRecv.Add(time.Duration(cr.QueueNanos))
		res.Trace.Record(reqID, node, stages.InQueue,
			nodeRecv.Sub(start), queueEnd.Sub(start))
		dbEnd := queueEnd.Add(time.Duration(cr.DBNanos))
		res.Trace.Record(reqID, node, stages.InDB,
			queueEnd.Sub(start), dbEnd.Sub(start))
		res.Trace.Record(reqID, node, stages.SlaveToMaster,
			dbEnd.Sub(start), recvAbs.Sub(start))
	}
	res.Duration = time.Since(start)
	return res, nil
}

// Close closes every node connection.
func (c *Client) Close() {
	c.mu.Lock()
	conns := make([]*transport.Client, 0, len(c.conns))
	for _, conn := range c.conns {
		conns = append(conns, conn)
	}
	c.conns = make(map[hashring.NodeID]*transport.Client)
	c.mu.Unlock()
	for _, conn := range conns {
		conn.Close()
	}
}
