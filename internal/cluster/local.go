package cluster

import (
	"fmt"
	"os"
	"path/filepath"

	"scalekv/internal/hashring"
	"scalekv/internal/storage"
	"scalekv/internal/transport"
	"scalekv/internal/wire"
)

// LocalOptions configures an in-process cluster.
type LocalOptions struct {
	// Nodes is the cluster size.
	Nodes int
	// Vnodes per node on the ring; 0 means 64.
	Vnodes int
	// BaseDir holds per-node storage directories; empty means a temp
	// directory that the caller removes via Cluster.Close.
	BaseDir string
	// DBParallelism per node (the paper's concurrent-request limit).
	DBParallelism int
	// ReplicationFactor for writes.
	ReplicationFactor int
	// Codec for the whole cluster; defaults to FastCodec.
	Codec wire.Codec
	// Storage tunes every node's engine.
	Storage storage.Options
}

// Cluster is a set of in-process nodes plus a connected client —
// everything the examples and integration tests need in one value.
type Cluster struct {
	Ring    *hashring.Ring
	Nodes   []*Node
	network *transport.Network
	client  *Client
	baseDir string
	ownsDir bool
}

// StartLocal boots an n-node cluster inside the current process,
// connected by the in-process transport.
func StartLocal(opts LocalOptions) (*Cluster, error) {
	if opts.Nodes < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 node, got %d", opts.Nodes)
	}
	if opts.Vnodes <= 0 {
		opts.Vnodes = 64
	}
	if opts.Codec == nil {
		opts.Codec = wire.FastCodec{}
	}
	ownsDir := false
	if opts.BaseDir == "" {
		dir, err := os.MkdirTemp("", "scalekv-cluster-")
		if err != nil {
			return nil, err
		}
		opts.BaseDir = dir
		ownsDir = true
	}

	c := &Cluster{
		Ring:    hashring.New(opts.Nodes, opts.Vnodes),
		network: transport.NewNetwork(),
		baseDir: opts.BaseDir,
		ownsDir: ownsDir,
	}
	conns := make(map[hashring.NodeID]*transport.Client, opts.Nodes)
	for i := 0; i < opts.Nodes; i++ {
		addr := fmt.Sprintf("node-%d", i)
		l, err := c.network.Listen(addr)
		if err != nil {
			c.Close()
			return nil, err
		}
		node, err := StartNode(l, NodeOptions{
			ID:            hashring.NodeID(i),
			Dir:           filepath.Join(opts.BaseDir, addr),
			DBParallelism: opts.DBParallelism,
			Storage:       opts.Storage,
			Codec:         opts.Codec,
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Nodes = append(c.Nodes, node)

		conn, err := c.network.Dial(addr)
		if err != nil {
			c.Close()
			return nil, err
		}
		conns[hashring.NodeID(i)] = transport.NewClient(conn)
	}
	c.client = NewClient(c.Ring, conns, ClientOptions{
		Codec:             opts.Codec,
		ReplicationFactor: opts.ReplicationFactor,
	})
	return c, nil
}

// Client returns the cluster's connected client.
func (c *Cluster) Client() *Client { return c.client }

// FlushAll flushes every node's memtable to disk, so subsequent reads
// exercise the SSTable path.
func (c *Cluster) FlushAll() error {
	for _, n := range c.Nodes {
		if err := n.Engine().Flush(); err != nil {
			return err
		}
	}
	return nil
}

// StartTCP boots an n-node cluster on loopback TCP — the same topology
// StartLocal builds in-process, but with real sockets, so integration
// tests and demos exercise the full network path.
func StartTCP(opts LocalOptions) (*Cluster, error) {
	if opts.Nodes < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 node, got %d", opts.Nodes)
	}
	if opts.Vnodes <= 0 {
		opts.Vnodes = 64
	}
	if opts.Codec == nil {
		opts.Codec = wire.FastCodec{}
	}
	ownsDir := false
	if opts.BaseDir == "" {
		dir, err := os.MkdirTemp("", "scalekv-tcp-")
		if err != nil {
			return nil, err
		}
		opts.BaseDir = dir
		ownsDir = true
	}
	c := &Cluster{
		Ring:    hashring.New(opts.Nodes, opts.Vnodes),
		baseDir: opts.BaseDir,
		ownsDir: ownsDir,
	}
	conns := make(map[hashring.NodeID]*transport.Client, opts.Nodes)
	for i := 0; i < opts.Nodes; i++ {
		l, err := transport.ListenTCP("127.0.0.1:0", 0)
		if err != nil {
			c.Close()
			return nil, err
		}
		node, err := StartNode(l, NodeOptions{
			ID:            hashring.NodeID(i),
			Dir:           filepath.Join(opts.BaseDir, fmt.Sprintf("node-%d", i)),
			DBParallelism: opts.DBParallelism,
			Storage:       opts.Storage,
			Codec:         opts.Codec,
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Nodes = append(c.Nodes, node)
		conn, err := transport.DialTCP(l.Addr(), 0)
		if err != nil {
			c.Close()
			return nil, err
		}
		conns[hashring.NodeID(i)] = transport.NewClient(conn)
	}
	c.client = NewClient(c.Ring, conns, ClientOptions{
		Codec:             opts.Codec,
		ReplicationFactor: opts.ReplicationFactor,
	})
	return c, nil
}

// Close stops the client, every node, and removes owned directories.
func (c *Cluster) Close() error {
	if c.client != nil {
		c.client.Close()
	}
	var firstErr error
	for _, n := range c.Nodes {
		if err := n.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if c.ownsDir {
		os.RemoveAll(c.baseDir)
	}
	return firstErr
}
