package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"scalekv/internal/hashring"
	"scalekv/internal/storage"
	"scalekv/internal/transport"
	"scalekv/internal/wire"
)

// LocalOptions configures an in-process cluster.
type LocalOptions struct {
	// Nodes is the cluster size.
	Nodes int
	// Vnodes per node on the ring; 0 means 64.
	Vnodes int
	// BaseDir holds per-node storage directories; empty means a temp
	// directory that the caller removes via Cluster.Close.
	BaseDir string
	// DBParallelism per node (the paper's concurrent-request limit).
	DBParallelism int
	// ReplicationFactor for writes.
	ReplicationFactor int
	// Codec for the whole cluster; defaults to FastCodec.
	Codec wire.Codec
	// Storage tunes every node's engine.
	Storage storage.Options
	// ReadRepair enables the client's failover read-repair (see
	// ClientOptions.ReadRepair).
	ReadRepair bool
	// RepairConcurrency is the anti-entropy worker-pool width (see
	// ClientOptions.RepairConcurrency). 0 means the default.
	RepairConcurrency int
	// ProbeInterval enables per-node peer liveness probing (see
	// NodeOptions.ProbeInterval). 0 keeps it off — in-process tests
	// rarely want background ping traffic.
	ProbeInterval time.Duration
	// RepairInterval enables per-node self-scheduled anti-entropy (see
	// NodeOptions.RepairInterval). 0 keeps it off.
	RepairInterval time.Duration
}

// Cluster is a set of in-process nodes plus a connected client —
// everything the examples and integration tests need in one value. It
// is also the topology authority: AddNode and RemoveNode grow and
// shrink the ring while the cluster serves traffic.
//
// Ring is the topology the cluster was started with; it is updated at
// each epoch flip. Concurrent readers should use Topology() instead of
// the field.
type Cluster struct {
	Ring    *hashring.Topology
	Nodes   []*Node
	network *transport.Network
	client  *Client
	baseDir string
	ownsDir bool
	opts    LocalOptions

	// listen opens a server endpoint for a node, returning the listener
	// and its dialable address; dial opens a client connection. Both are
	// set per transport flavour (in-process fabric or TCP loopback).
	listen func(id hashring.NodeID) (transport.Listener, string, error)
	dial   Dialer
	// addrs is the member address book at the current epoch.
	addrs map[hashring.NodeID]string

	// topoMu serializes topology changes (one join/leave at a time) and
	// repair passes (which must not race a migration's epoch-0 traffic).
	topoMu sync.Mutex

	// testStreamErr, when set (tests only), is consulted before each
	// range is streamed during a rebalance — an injected failure or
	// panic simulates a coordinator dying mid-join.
	testStreamErr func(hashring.RangeMove) error
}

// StartLocal boots an n-node cluster inside the current process,
// connected by the in-process transport.
func StartLocal(opts LocalOptions) (*Cluster, error) {
	if opts.Nodes < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 node, got %d", opts.Nodes)
	}
	network := transport.NewNetwork()
	return start(opts, func(id hashring.NodeID) (transport.Listener, string, error) {
		addr := fmt.Sprintf("node-%d", id)
		l, err := network.Listen(addr)
		return l, addr, err
	}, func(addr string) (*transport.Client, error) {
		conn, err := network.Dial(addr)
		if err != nil {
			return nil, err
		}
		return transport.NewClient(conn), nil
	}, network)
}

// StartTCP boots an n-node cluster on loopback TCP — the same topology
// StartLocal builds in-process, but with real sockets, so integration
// tests and demos exercise the full network path.
func StartTCP(opts LocalOptions) (*Cluster, error) {
	if opts.Nodes < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 node, got %d", opts.Nodes)
	}
	return start(opts, func(id hashring.NodeID) (transport.Listener, string, error) {
		l, err := transport.ListenTCP("127.0.0.1:0", 0)
		if err != nil {
			return nil, "", err
		}
		return l, l.Addr(), nil
	}, func(addr string) (*transport.Client, error) {
		conn, err := transport.DialTCP(addr, 0)
		if err != nil {
			return nil, err
		}
		return transport.NewClient(conn), nil
	}, nil)
}

// start is the shared bring-up: topology, per-node listeners and
// engines, and a ring-routed client with lazy dialing.
func start(opts LocalOptions, listen func(hashring.NodeID) (transport.Listener, string, error), dial Dialer, network *transport.Network) (*Cluster, error) {
	if opts.Vnodes <= 0 {
		opts.Vnodes = 64
	}
	if opts.Codec == nil {
		opts.Codec = wire.FastCodec{}
	}
	ownsDir := false
	if opts.BaseDir == "" {
		dir, err := os.MkdirTemp("", "scalekv-cluster-")
		if err != nil {
			return nil, err
		}
		opts.BaseDir = dir
		ownsDir = true
	}

	c := &Cluster{
		Ring:    hashring.New(opts.Nodes, opts.Vnodes),
		network: network,
		baseDir: opts.BaseDir,
		ownsDir: ownsDir,
		opts:    opts,
		listen:  listen,
		dial:    dial,
	}

	// Open every listener first so the address book is complete before
	// any node starts serving RingStateRequests.
	listeners := make([]transport.Listener, opts.Nodes)
	addrs := make(map[hashring.NodeID]string, opts.Nodes)
	for i := 0; i < opts.Nodes; i++ {
		l, addr, err := listen(hashring.NodeID(i))
		if err != nil {
			c.Close()
			return nil, err
		}
		listeners[i] = l
		addrs[hashring.NodeID(i)] = addr
	}

	conns := make(map[hashring.NodeID]*transport.Client, opts.Nodes)
	for i := 0; i < opts.Nodes; i++ {
		id := hashring.NodeID(i)
		node, err := StartNode(listeners[i], NodeOptions{
			ID:                id,
			Dir:               filepath.Join(opts.BaseDir, fmt.Sprintf("node-%d", i)),
			DBParallelism:     opts.DBParallelism,
			Storage:           opts.Storage,
			Codec:             opts.Codec,
			Topology:          c.Ring,
			Addrs:             addrs,
			ReplicationFactor: opts.ReplicationFactor,
			Dialer:            dial,
			AdvertiseAddr:     addrs[id],
			ProbeInterval:     opts.ProbeInterval,
			RepairInterval:    opts.RepairInterval,
		})
		if err != nil {
			listeners[i].Close()
			c.Close()
			return nil, err
		}
		c.Nodes = append(c.Nodes, node)

		conn, err := dial(addrs[id])
		if err != nil {
			c.Close()
			return nil, err
		}
		conns[id] = conn
	}
	c.addrs = addrs
	c.client = NewClient(c.Ring, conns, ClientOptions{
		Codec:             opts.Codec,
		ReplicationFactor: opts.ReplicationFactor,
		Dialer:            dial,
		Addrs:             addrs,
		ReadRepair:        opts.ReadRepair,
		RepairConcurrency: opts.RepairConcurrency,
	})
	return c, nil
}

// Client returns the cluster's connected client.
func (c *Cluster) Client() *Client { return c.client }

// Topology returns the current epoch-stamped ring.
func (c *Cluster) Topology() *hashring.Topology { return c.client.topo() }

// FlushAll flushes every node's memtable to disk, so subsequent reads
// exercise the SSTable path.
func (c *Cluster) FlushAll() error {
	for _, n := range c.Nodes {
		if err := n.Engine().Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Close stops the client, every node, and removes owned directories.
func (c *Cluster) Close() error {
	if c.client != nil {
		c.client.Close()
	}
	var firstErr error
	for _, n := range c.Nodes {
		if err := n.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if c.ownsDir {
		os.RemoveAll(c.baseDir)
	}
	return firstErr
}
