package cluster

// This file is the anti-entropy repair pass: the background convergence
// guarantee the per-cell versions were built for. Failover read-repair
// only narrows divergence on keys a failover read happens to touch;
// this pass walks every replicated token range, compares Merkle-style
// digests between the range's owners, descends only into mismatched
// subtrees, and reconciles leaf differences by shipping cells BOTH
// directions with last-write-wins on version — so after one pass every
// replica of a range holds the same winners, tombstones included,
// regardless of which dual-write forwards were dropped, which replica a
// concurrent writer reached first, or which side saw a delete.
//
// The exchange rides the epoch-0 admin path end to end: DigestRequest
// probes, StreamRangeRequest pulls the cells of a mismatched leaf from
// both owners, and BatchPutRequest ships each side's winners to the
// other with their original versions, so the receiving engine's LWW
// merge keeps anything newer it already has — repair can never move a
// replica backwards.

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"scalekv/internal/hashring"
	"scalekv/internal/row"
	"scalekv/internal/storage"
	"scalekv/internal/wire"
)

const (
	// repairDigestDepth is the tree fan-out per digest round: 2^4 = 16
	// leaf buckets per request. A mismatched leaf with more cells than
	// repairLeafMaxCells is probed again at this depth over the leaf's
	// own sub-range — the "descend into mismatched subtrees" walk —
	// instead of streamed wholesale.
	repairDigestDepth  = 4
	repairLeafMaxCells = 512
	// repairMaxDescent bounds the descent; 12 rounds of depth 4 resolve
	// token ranges down to 2^16 wide before falling back to streaming.
	repairMaxDescent = 12
)

// RepairReport summarizes one anti-entropy pass.
type RepairReport struct {
	// Ranges is how many replicated token ranges were walked; Pairs how
	// many (reference, replica) digest comparisons ran.
	Ranges int
	Pairs  int
	// DigestRPCs counts digest probes; LeafMismatches how many digest
	// leaves differed (each is either descended into or streamed).
	DigestRPCs     int
	LeafMismatches int
	// CellsShipped counts cells sent to lagging replicas, both
	// directions. Zero on a converged cluster — the pass then cost only
	// digests.
	CellsShipped int64
	// SkippedLegacy counts divergent pre-versioning (zero-version) cells
	// left alone: their versions cannot be compared, and re-stamping
	// them would manufacture a fresh write out of stale data.
	SkippedLegacy int64
}

// merge folds another report's counters in; each repair worker
// accumulates into its own report and merges under the pool's mutex.
func (r *RepairReport) merge(o *RepairReport) {
	r.Ranges += o.Ranges
	r.Pairs += o.Pairs
	r.DigestRPCs += o.DigestRPCs
	r.LeafMismatches += o.LeafMismatches
	r.CellsShipped += o.CellsShipped
	r.SkippedLegacy += o.SkippedLegacy
}

// Repair runs one anti-entropy pass over the cluster at replication
// factor rf (<= 0 means the cluster's configured factor): every
// replicated range converges to the per-cell last-write-wins winner on
// all its owners. It serializes with AddNode/RemoveNode — repair and
// migration both move epoch-0 traffic — and fences every engine's
// tombstone GC for the duration, so a tombstone observed by a digest
// cannot be collected before the pass finishes propagating it.
func (c *Cluster) Repair(rf int) (*RepairReport, error) {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	if rf <= 0 {
		rf = c.opts.ReplicationFactor
	}
	// Fence per range, not globally: each worker of the parallel pass
	// fences only the token span it is digesting, for only as long as it
	// repairs it, so tombstone GC elsewhere proceeds and a failed range
	// cannot leave the whole keyspace fenced.
	engines := make([]*storage.Engine, 0, len(c.Nodes))
	for _, n := range c.Nodes {
		engines = append(engines, n.Engine())
	}
	fence := func(lo, hi int64) func() {
		releases := make([]func(), 0, len(engines))
		for _, e := range engines {
			releases = append(releases, e.FenceRange(lo, hi))
		}
		return func() {
			for _, rel := range releases {
				rel()
			}
		}
	}
	return c.client.repairRanges(math.MinInt64, math.MaxInt64, rf, fence, nil)
}

// RepairAll repairs every replicated range of the client's current
// topology — the admin entry point for remote clusters (cmd/kvstore).
// It refreshes the ring first (best effort — standalone nodes carry no
// topology), because repair traffic is all epoch-0 and would otherwise
// never trip the wrong-epoch refresh: a periodic repair daemon must
// not walk its boot-time ring forever while the cluster grows. Unlike
// Cluster.Repair it cannot fence remote engines' tombstone GC, so run
// it often enough that deletes repair before their tombstones are
// collected.
func (c *Client) RepairAll(rf int) (*RepairReport, error) {
	_ = c.refreshRing()
	return c.RepairRange(math.MinInt64, math.MaxInt64, rf)
}

// RepairRange anti-entropy-repairs the intersection of [lo, hi] with
// every replicated range of the current topology at replication factor
// rf (<= 0 means the client's configured factor). For each range it
// syncs the primary bidirectionally with every other owner — after
// which the primary holds the range's global LWW state — and then
// re-syncs the earlier owners so all of them end on that state; a
// second call over converged replicas ships nothing. Independent
// ranges are repaired concurrently through a bounded worker pool
// (ClientOptions.RepairConcurrency wide), so a converged pass's wall
// clock is dominated by the slowest range, not the sum of all digests.
func (c *Client) RepairRange(lo, hi int64, rf int) (*RepairReport, error) {
	return c.repairRanges(lo, hi, rf, nil, nil)
}

// repairJob is one owner-constant token range queued for a repair
// worker.
type repairJob struct {
	lo, hi int64
	owners []hashring.NodeID
}

// repairRanges is the pool behind RepairRange and Cluster.Repair. The
// ranges of OwnedRanges are disjoint, so workers never race on a cell:
// each job's pair syncs touch only its own token span. fence, when
// non-nil, is invoked per range before its first digest and released
// after its last ship — Cluster.Repair uses it to fence tombstone GC
// exactly where and while repair is looking. only, when non-nil,
// restricts the pass to ranges that node owns — Node.RepairNow uses it
// so each member repairs its own slice of the keyspace instead of
// every node walking the whole ring every period. On error the first
// failure is reported and no further ranges are started; in-flight
// ranges finish (their shipped cells are valid repairs on their own).
func (c *Client) repairRanges(lo, hi int64, rf int, fence func(lo, hi int64) func(), only *hashring.NodeID) (*RepairReport, error) {
	if rf <= 0 {
		rf = c.rf
	}
	t := c.topo()
	var jobs []repairJob
	for _, or := range t.OwnedRanges(rf) {
		rlo, rhi := or.Lo, or.Hi
		if rlo < lo {
			rlo = lo
		}
		if rhi > hi {
			rhi = hi
		}
		if rlo > rhi || len(or.Owners) < 2 {
			continue
		}
		if only != nil {
			owns := false
			for _, o := range or.Owners {
				if o == *only {
					owns = true
					break
				}
			}
			if !owns {
				continue
			}
		}
		jobs = append(jobs, repairJob{lo: rlo, hi: rhi, owners: or.Owners})
	}
	conc := c.repairConc
	if conc > len(jobs) {
		conc = len(jobs)
	}
	if conc < 1 {
		conc = 1
	}

	rep := &RepairReport{}
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	jobCh := make(chan repairJob)
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobCh {
				local := &RepairReport{}
				err := c.repairOneRange(job, fence, local)
				mu.Lock()
				rep.merge(local)
				if err != nil && firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}()
	}
	for _, job := range jobs {
		mu.Lock()
		stop := firstErr != nil
		mu.Unlock()
		if stop {
			break
		}
		jobCh <- job
	}
	close(jobCh)
	wg.Wait()
	return rep, firstErr
}

// repairOneRange converges all owners of one token range.
func (c *Client) repairOneRange(job repairJob, fence func(lo, hi int64) func(), rep *RepairReport) error {
	if fence != nil {
		release := fence(job.lo, job.hi)
		defer release()
	}
	rep.Ranges++
	ref := job.owners[0]
	others := job.owners[1:]
	// Sweep 1: pull everything into the reference (bidirectionally, so
	// each partner also receives what the reference has gathered so
	// far). After the last pair, ref and the last partner hold the
	// range's global LWW state. Pairs of one range stay sequential —
	// the accumulate-into-reference logic depends on their order.
	for _, other := range others {
		rep.Pairs++
		if err := c.syncPair(ref, other, job.lo, job.hi, repairMaxDescent, rep); err != nil {
			return err
		}
	}
	// Sweep 2 (rf > 2 only): earlier partners have not seen what later
	// ones contributed; one more sync against the now-complete
	// reference finishes them. Converged pairs cost one digest round
	// trip each.
	for i := 0; i+1 < len(others); i++ {
		rep.Pairs++
		if err := c.syncPair(ref, others[i], job.lo, job.hi, repairMaxDescent, rep); err != nil {
			return err
		}
	}
	return nil
}

// syncPair converges nodes a and b on [lo, hi]: digest both sides,
// descend into mismatched leaves while they are large and splittable,
// and reconcile the rest cell by cell.
func (c *Client) syncPair(a, b hashring.NodeID, lo, hi int64, budget int, rep *RepairReport) error {
	la, err := c.digest(a, lo, hi, rep)
	if err != nil {
		return err
	}
	lb, err := c.digest(b, lo, hi, rep)
	if err != nil {
		return err
	}
	ranges := storage.DigestRanges(lo, hi, repairDigestDepth)
	if len(la) != len(ranges) || len(lb) != len(ranges) {
		return fmt.Errorf("cluster: digest shape mismatch over [%d,%d]: %d vs %d vs %d leaves",
			lo, hi, len(la), len(lb), len(ranges))
	}
	for i, r := range ranges {
		if la[i] == lb[i] {
			continue
		}
		rep.LeafMismatches++
		blo, bhi := r[0], r[1]
		big := la[i].Cells > repairLeafMaxCells || lb[i].Cells > repairLeafMaxCells
		if big && budget > 0 && blo < bhi {
			if err := c.syncPair(a, b, blo, bhi, budget-1, rep); err != nil {
				return err
			}
			continue
		}
		if err := c.reconcileLeaf(a, b, blo, bhi, rep); err != nil {
			return err
		}
	}
	return nil
}

// digest fetches one node's digest leaves for [lo, hi].
func (c *Client) digest(node hashring.NodeID, lo, hi int64, rep *RepairReport) ([]wire.DigestLeaf, error) {
	rep.DigestRPCs++
	resp, err := c.call(node, &wire.DigestRequest{Lo: lo, Hi: hi, Depth: repairDigestDepth})
	if err != nil {
		return nil, fmt.Errorf("cluster: digest node %d: %w", node, err)
	}
	dr, ok := resp.(*wire.DigestResponse)
	if !ok {
		return nil, fmt.Errorf("cluster: unexpected digest response %T", resp)
	}
	if dr.ErrMsg != "" {
		return nil, fmt.Errorf("cluster: digest node %d: %s", node, dr.ErrMsg)
	}
	return dr.Leaves, nil
}

// cellAddr keys one cell address during leaf reconciliation.
type cellAddr struct {
	pk string
	ck string
}

// reconcileLeaf pulls the cells of [lo, hi] from both nodes and ships
// each side's winners to the other. Shipped entries keep their original
// versions, so the receiving engine's merge resolves exactly like any
// forwarded copy; equal versions name the same write and move nothing.
func (c *Client) reconcileLeaf(a, b hashring.NodeID, lo, hi int64, rep *RepairReport) error {
	ea, err := c.streamAll(a, lo, hi)
	if err != nil {
		return err
	}
	eb, err := c.streamAll(b, lo, hi)
	if err != nil {
		return err
	}
	index := func(entries []row.Entry) map[cellAddr]row.Entry {
		m := make(map[cellAddr]row.Entry, len(entries))
		for _, e := range entries {
			m[cellAddr{pk: e.PK, ck: string(e.CK)}] = e
		}
		return m
	}
	ma, mb := index(ea), index(eb)
	var toA, toB []row.Entry
	pick := func(have row.Entry, other map[cellAddr]row.Entry, out *[]row.Entry, addr cellAddr) {
		theirs, ok := other[addr]
		if ok && !theirs.Ver.Less(have.Ver) {
			return // theirs is newer or the same write; nothing to ship
		}
		if have.Ver.IsZero() {
			// A pre-versioning cell cannot claim to win, and re-stamping
			// it would fabricate a fresh write from possibly-stale data.
			rep.SkippedLegacy++
			return
		}
		*out = append(*out, have)
	}
	for addr, e := range ma {
		pick(e, mb, &toB, addr)
	}
	for addr, e := range mb {
		pick(e, ma, &toA, addr)
	}
	if err := c.shipRepair(b, toB); err != nil {
		return err
	}
	if err := c.shipRepair(a, toA); err != nil {
		return err
	}
	rep.CellsShipped += int64(len(toA) + len(toB))
	return nil
}

// streamAll drains a node's cells — tombstones included — over an
// inclusive token range via the paged epoch-0 stream.
func (c *Client) streamAll(node hashring.NodeID, lo, hi int64) ([]row.Entry, error) {
	var out []row.Entry
	afterTok, afterPK := int64(math.MinInt64), ""
	for {
		resp, err := c.call(node, &wire.StreamRangeRequest{
			Lo: lo, Hi: hi, AfterToken: afterTok, AfterPK: afterPK,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: repair stream node %d: %w", node, err)
		}
		page, ok := resp.(*wire.StreamRangeResponse)
		if !ok {
			return nil, fmt.Errorf("cluster: unexpected repair stream response %T", resp)
		}
		if page.ErrMsg != "" {
			return nil, errors.New(page.ErrMsg)
		}
		out = append(out, page.Entries...)
		if !page.More {
			return out, nil
		}
		afterTok, afterPK = page.NextToken, page.NextPK
	}
}

// shipRepair writes repair entries to a node at epoch 0, chunked.
func (c *Client) shipRepair(node hashring.NodeID, entries []row.Entry) error {
	const chunk = streamPageCells
	for len(entries) > 0 {
		n := len(entries)
		if n > chunk {
			n = chunk
		}
		resp, err := c.call(node, &wire.BatchPutRequest{Entries: entries[:n]}) // epoch 0
		if err != nil {
			return fmt.Errorf("cluster: repair ship to node %d: %w", node, err)
		}
		bp, ok := resp.(*wire.BatchPutResponse)
		if !ok {
			return fmt.Errorf("cluster: unexpected repair ship response %T", resp)
		}
		if bp.ErrMsg != "" {
			return fmt.Errorf("cluster: repair ship to node %d: %s", node, bp.ErrMsg)
		}
		entries = entries[n:]
	}
	return nil
}
