package cluster

// This file is the anti-entropy repair pass: the background convergence
// guarantee the per-cell versions were built for. Failover read-repair
// only narrows divergence on keys a failover read happens to touch;
// this pass walks every replicated token range, compares Merkle-style
// digests between the range's owners, descends only into mismatched
// subtrees, and reconciles leaf differences by shipping cells BOTH
// directions with last-write-wins on version — so after one pass every
// replica of a range holds the same winners, tombstones included,
// regardless of which dual-write forwards were dropped, which replica a
// concurrent writer reached first, or which side saw a delete.
//
// The exchange rides the epoch-0 admin path end to end: DigestRequest
// probes, StreamRangeRequest pulls the cells of a mismatched leaf from
// both owners, and BatchPutRequest ships each side's winners to the
// other with their original versions, so the receiving engine's LWW
// merge keeps anything newer it already has — repair can never move a
// replica backwards.

import (
	"errors"
	"fmt"
	"math"

	"scalekv/internal/hashring"
	"scalekv/internal/row"
	"scalekv/internal/storage"
	"scalekv/internal/wire"
)

const (
	// repairDigestDepth is the tree fan-out per digest round: 2^4 = 16
	// leaf buckets per request. A mismatched leaf with more cells than
	// repairLeafMaxCells is probed again at this depth over the leaf's
	// own sub-range — the "descend into mismatched subtrees" walk —
	// instead of streamed wholesale.
	repairDigestDepth  = 4
	repairLeafMaxCells = 512
	// repairMaxDescent bounds the descent; 12 rounds of depth 4 resolve
	// token ranges down to 2^16 wide before falling back to streaming.
	repairMaxDescent = 12
)

// RepairReport summarizes one anti-entropy pass.
type RepairReport struct {
	// Ranges is how many replicated token ranges were walked; Pairs how
	// many (reference, replica) digest comparisons ran.
	Ranges int
	Pairs  int
	// DigestRPCs counts digest probes; LeafMismatches how many digest
	// leaves differed (each is either descended into or streamed).
	DigestRPCs     int
	LeafMismatches int
	// CellsShipped counts cells sent to lagging replicas, both
	// directions. Zero on a converged cluster — the pass then cost only
	// digests.
	CellsShipped int64
	// SkippedLegacy counts divergent pre-versioning (zero-version) cells
	// left alone: their versions cannot be compared, and re-stamping
	// them would manufacture a fresh write out of stale data.
	SkippedLegacy int64
}

// Repair runs one anti-entropy pass over the cluster at replication
// factor rf (<= 0 means the cluster's configured factor): every
// replicated range converges to the per-cell last-write-wins winner on
// all its owners. It serializes with AddNode/RemoveNode — repair and
// migration both move epoch-0 traffic — and fences every engine's
// tombstone GC for the duration, so a tombstone observed by a digest
// cannot be collected before the pass finishes propagating it.
func (c *Cluster) Repair(rf int) (*RepairReport, error) {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	if rf <= 0 {
		rf = c.opts.ReplicationFactor
	}
	for _, n := range c.Nodes {
		release := n.Engine().FenceRange(math.MinInt64, math.MaxInt64)
		defer release()
	}
	return c.client.RepairRange(math.MinInt64, math.MaxInt64, rf)
}

// RepairAll repairs every replicated range of the client's current
// topology — the admin entry point for remote clusters (cmd/kvstore).
// It refreshes the ring first (best effort — standalone nodes carry no
// topology), because repair traffic is all epoch-0 and would otherwise
// never trip the wrong-epoch refresh: a periodic repair daemon must
// not walk its boot-time ring forever while the cluster grows. Unlike
// Cluster.Repair it cannot fence remote engines' tombstone GC, so run
// it often enough that deletes repair before their tombstones are
// collected.
func (c *Client) RepairAll(rf int) (*RepairReport, error) {
	_ = c.refreshRing()
	return c.RepairRange(math.MinInt64, math.MaxInt64, rf)
}

// RepairRange anti-entropy-repairs the intersection of [lo, hi] with
// every replicated range of the current topology at replication factor
// rf (<= 0 means the client's configured factor). For each range it
// syncs the primary bidirectionally with every other owner — after
// which the primary holds the range's global LWW state — and then
// re-syncs the earlier owners so all of them end on that state; a
// second call over converged replicas ships nothing.
func (c *Client) RepairRange(lo, hi int64, rf int) (*RepairReport, error) {
	if rf <= 0 {
		rf = c.rf
	}
	rep := &RepairReport{}
	t := c.topo()
	for _, or := range t.OwnedRanges(rf) {
		rlo, rhi := or.Lo, or.Hi
		if rlo < lo {
			rlo = lo
		}
		if rhi > hi {
			rhi = hi
		}
		if rlo > rhi || len(or.Owners) < 2 {
			continue
		}
		rep.Ranges++
		ref := or.Owners[0]
		others := or.Owners[1:]
		// Sweep 1: pull everything into the reference (bidirectionally,
		// so each partner also receives what the reference has gathered
		// so far). After the last pair, ref and the last partner hold
		// the range's global LWW state.
		for _, other := range others {
			rep.Pairs++
			if err := c.syncPair(ref, other, rlo, rhi, repairMaxDescent, rep); err != nil {
				return rep, err
			}
		}
		// Sweep 2 (rf > 2 only): earlier partners have not seen what
		// later ones contributed; one more sync against the now-complete
		// reference finishes them. Converged pairs cost one digest
		// round trip each.
		for i := 0; i+1 < len(others); i++ {
			rep.Pairs++
			if err := c.syncPair(ref, others[i], rlo, rhi, repairMaxDescent, rep); err != nil {
				return rep, err
			}
		}
	}
	return rep, nil
}

// syncPair converges nodes a and b on [lo, hi]: digest both sides,
// descend into mismatched leaves while they are large and splittable,
// and reconcile the rest cell by cell.
func (c *Client) syncPair(a, b hashring.NodeID, lo, hi int64, budget int, rep *RepairReport) error {
	la, err := c.digest(a, lo, hi, rep)
	if err != nil {
		return err
	}
	lb, err := c.digest(b, lo, hi, rep)
	if err != nil {
		return err
	}
	ranges := storage.DigestRanges(lo, hi, repairDigestDepth)
	if len(la) != len(ranges) || len(lb) != len(ranges) {
		return fmt.Errorf("cluster: digest shape mismatch over [%d,%d]: %d vs %d vs %d leaves",
			lo, hi, len(la), len(lb), len(ranges))
	}
	for i, r := range ranges {
		if la[i] == lb[i] {
			continue
		}
		rep.LeafMismatches++
		blo, bhi := r[0], r[1]
		big := la[i].Cells > repairLeafMaxCells || lb[i].Cells > repairLeafMaxCells
		if big && budget > 0 && blo < bhi {
			if err := c.syncPair(a, b, blo, bhi, budget-1, rep); err != nil {
				return err
			}
			continue
		}
		if err := c.reconcileLeaf(a, b, blo, bhi, rep); err != nil {
			return err
		}
	}
	return nil
}

// digest fetches one node's digest leaves for [lo, hi].
func (c *Client) digest(node hashring.NodeID, lo, hi int64, rep *RepairReport) ([]wire.DigestLeaf, error) {
	rep.DigestRPCs++
	resp, err := c.call(node, &wire.DigestRequest{Lo: lo, Hi: hi, Depth: repairDigestDepth})
	if err != nil {
		return nil, fmt.Errorf("cluster: digest node %d: %w", node, err)
	}
	dr, ok := resp.(*wire.DigestResponse)
	if !ok {
		return nil, fmt.Errorf("cluster: unexpected digest response %T", resp)
	}
	if dr.ErrMsg != "" {
		return nil, fmt.Errorf("cluster: digest node %d: %s", node, dr.ErrMsg)
	}
	return dr.Leaves, nil
}

// cellAddr keys one cell address during leaf reconciliation.
type cellAddr struct {
	pk string
	ck string
}

// reconcileLeaf pulls the cells of [lo, hi] from both nodes and ships
// each side's winners to the other. Shipped entries keep their original
// versions, so the receiving engine's merge resolves exactly like any
// forwarded copy; equal versions name the same write and move nothing.
func (c *Client) reconcileLeaf(a, b hashring.NodeID, lo, hi int64, rep *RepairReport) error {
	ea, err := c.streamAll(a, lo, hi)
	if err != nil {
		return err
	}
	eb, err := c.streamAll(b, lo, hi)
	if err != nil {
		return err
	}
	index := func(entries []row.Entry) map[cellAddr]row.Entry {
		m := make(map[cellAddr]row.Entry, len(entries))
		for _, e := range entries {
			m[cellAddr{pk: e.PK, ck: string(e.CK)}] = e
		}
		return m
	}
	ma, mb := index(ea), index(eb)
	var toA, toB []row.Entry
	pick := func(have row.Entry, other map[cellAddr]row.Entry, out *[]row.Entry, addr cellAddr) {
		theirs, ok := other[addr]
		if ok && !theirs.Ver.Less(have.Ver) {
			return // theirs is newer or the same write; nothing to ship
		}
		if have.Ver.IsZero() {
			// A pre-versioning cell cannot claim to win, and re-stamping
			// it would fabricate a fresh write from possibly-stale data.
			rep.SkippedLegacy++
			return
		}
		*out = append(*out, have)
	}
	for addr, e := range ma {
		pick(e, mb, &toB, addr)
	}
	for addr, e := range mb {
		pick(e, ma, &toA, addr)
	}
	if err := c.shipRepair(b, toB); err != nil {
		return err
	}
	if err := c.shipRepair(a, toA); err != nil {
		return err
	}
	rep.CellsShipped += int64(len(toA) + len(toB))
	return nil
}

// streamAll drains a node's cells — tombstones included — over an
// inclusive token range via the paged epoch-0 stream.
func (c *Client) streamAll(node hashring.NodeID, lo, hi int64) ([]row.Entry, error) {
	var out []row.Entry
	afterTok, afterPK := int64(math.MinInt64), ""
	for {
		resp, err := c.call(node, &wire.StreamRangeRequest{
			Lo: lo, Hi: hi, AfterToken: afterTok, AfterPK: afterPK,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: repair stream node %d: %w", node, err)
		}
		page, ok := resp.(*wire.StreamRangeResponse)
		if !ok {
			return nil, fmt.Errorf("cluster: unexpected repair stream response %T", resp)
		}
		if page.ErrMsg != "" {
			return nil, errors.New(page.ErrMsg)
		}
		out = append(out, page.Entries...)
		if !page.More {
			return out, nil
		}
		afterTok, afterPK = page.NextToken, page.NextPK
	}
}

// shipRepair writes repair entries to a node at epoch 0, chunked.
func (c *Client) shipRepair(node hashring.NodeID, entries []row.Entry) error {
	const chunk = streamPageCells
	for len(entries) > 0 {
		n := len(entries)
		if n > chunk {
			n = chunk
		}
		resp, err := c.call(node, &wire.BatchPutRequest{Entries: entries[:n]}) // epoch 0
		if err != nil {
			return fmt.Errorf("cluster: repair ship to node %d: %w", node, err)
		}
		bp, ok := resp.(*wire.BatchPutResponse)
		if !ok {
			return fmt.Errorf("cluster: unexpected repair ship response %T", resp)
		}
		if bp.ErrMsg != "" {
			return fmt.Errorf("cluster: repair ship to node %d: %s", node, bp.ErrMsg)
		}
		entries = entries[n:]
	}
	return nil
}
