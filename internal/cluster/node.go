// Package cluster assembles the real (non-simulated) distributed store:
// nodes that wrap a local storage engine behind the wire protocol, and a
// client that routes by token ring, replicates writes, and runs the
// paper's master-style fan-out queries with Aeneas stage tracing.
//
// Everything runs on the transport package, so a cluster can live inside
// one process (tests, examples) or span TCP endpoints (cmd/kvstore).
package cluster

import (
	"fmt"
	"sync/atomic"
	"time"

	"scalekv/internal/hashring"
	"scalekv/internal/storage"
	"scalekv/internal/transport"
	"scalekv/internal/wire"
)

// NodeOptions configures one store node.
type NodeOptions struct {
	// ID is the node's ring identity.
	ID hashring.NodeID
	// Dir is the storage directory.
	Dir string
	// DBParallelism bounds concurrent database requests; excess requests
	// wait in-queue, exactly the paper's in-queue stage. 0 means 16.
	DBParallelism int
	// Storage tunes the underlying engine (Dir is overridden).
	Storage storage.Options
	// Codec decodes requests and encodes responses. Defaults to
	// FastCodec.
	Codec wire.Codec
}

// Node is one running store server.
type Node struct {
	id      hashring.NodeID
	engine  *storage.Engine
	server  *transport.Server
	codec   wire.Codec
	dbSlots chan struct{}
	// Served counts database requests processed, for Figure 2's
	// ops-per-node chart.
	Served atomic.Int64
}

// StartNode opens the node's engine and serves the wire protocol on the
// listener.
func StartNode(l transport.Listener, opts NodeOptions) (*Node, error) {
	if opts.Codec == nil {
		opts.Codec = wire.FastCodec{}
	}
	if opts.DBParallelism <= 0 {
		opts.DBParallelism = 16
	}
	st := opts.Storage
	st.Dir = opts.Dir
	engine, err := storage.Open(st)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %d: %w", opts.ID, err)
	}
	n := &Node{
		id:      opts.ID,
		engine:  engine,
		codec:   opts.Codec,
		dbSlots: make(chan struct{}, opts.DBParallelism),
	}
	n.server = transport.Serve(l, n.handle)
	return n, nil
}

// Engine exposes the node's local storage for test assertions and bulk
// loading.
func (n *Node) Engine() *storage.Engine { return n.engine }

// ID returns the node's ring identity.
func (n *Node) ID() hashring.NodeID { return n.id }

// Close stops serving, then closes the engine. Ordering matters: the
// server quiesces first so no new writes race the shutdown, and
// engine.Close then freezes every shard's active memtable and drains
// the background flushers before releasing resources — a clean
// shutdown never abandons a frozen memtable (only its WAL segments
// would cover it after a crash).
func (n *Node) Close() error {
	n.server.Close()
	return n.engine.Close()
}

func (n *Node) handle(payload []byte) []byte {
	recv := time.Now()
	msg, err := n.codec.Unmarshal(payload)
	if err != nil {
		return n.encode(&wire.CountResponse{ErrMsg: "bad frame: " + err.Error()})
	}
	switch req := msg.(type) {
	case *wire.PutRequest:
		if err := n.engine.Put(req.PK, req.CK, req.Value); err != nil {
			return n.encode(&wire.PutResponse{ErrMsg: err.Error()})
		}
		return n.encode(&wire.PutResponse{})
	case *wire.BatchPutRequest:
		// Group commit: the whole batch lands in one engine call — one
		// lock acquisition, one WAL write — instead of len(Entries) RPCs.
		if err := n.engine.PutBatch(req.Entries); err != nil {
			return n.encode(&wire.BatchPutResponse{ErrMsg: err.Error()})
		}
		return n.encode(&wire.BatchPutResponse{Applied: uint64(len(req.Entries))})
	case *wire.MultiGetRequest:
		resp := &wire.MultiGetResponse{Values: make([]wire.MultiGetValue, len(req.Keys))}
		for i, k := range req.Keys {
			v, found, err := n.engine.Get(k.PK, k.CK)
			if err != nil {
				resp.ErrMsg = err.Error()
				break
			}
			resp.Values[i] = wire.MultiGetValue{Value: v, Found: found}
		}
		return n.encode(resp)
	case *wire.GetRequest:
		v, found, err := n.engine.Get(req.PK, req.CK)
		resp := &wire.GetResponse{Value: v, Found: found}
		if err != nil {
			resp.ErrMsg = err.Error()
		}
		return n.encode(resp)
	case *wire.ScanRequest:
		cells, err := n.engine.ScanPartition(req.PK, req.From, req.To)
		resp := &wire.ScanResponse{Cells: cells}
		if err != nil {
			resp.ErrMsg = err.Error()
		}
		return n.encode(resp)
	case *wire.CountRequest:
		return n.encode(n.count(req, recv))
	default:
		return n.encode(&wire.CountResponse{ErrMsg: fmt.Sprintf("unexpected message %T", msg)})
	}
}

// count serves the paper's aggregation: count elements by type (the
// first byte of each cell value), bounded by the node's DB parallelism.
func (n *Node) count(req *wire.CountRequest, recv time.Time) *wire.CountResponse {
	resp := &wire.CountResponse{
		QueryID:   req.QueryID,
		Seq:       req.Seq,
		NodeID:    uint32(n.id),
		RecvNanos: recv.UnixNano(),
	}
	n.dbSlots <- struct{}{} // in-queue stage: wait for a database slot
	dbStart := time.Now()
	resp.QueueNanos = dbStart.Sub(recv).Nanoseconds()

	counts := make(map[uint8]uint64)
	var elements uint64
	err := n.engine.AggregatePartition(req.PK, func(_, value []byte) {
		elements++
		ty := uint8(0)
		if len(value) > 0 {
			ty = value[0]
		}
		counts[ty]++
	})
	resp.DBNanos = time.Since(dbStart).Nanoseconds()
	<-n.dbSlots
	n.Served.Add(1)

	if err != nil {
		resp.ErrMsg = err.Error()
		return resp
	}
	resp.Counts = counts
	resp.Elements = elements
	return resp
}

func (n *Node) encode(m wire.Message) []byte {
	data, err := n.codec.Marshal(m)
	if err != nil {
		// Marshal of our own response types cannot fail with a healthy
		// codec; make the failure loud instead of silent.
		panic(fmt.Sprintf("cluster: encode %T: %v", m, err))
	}
	return data
}
