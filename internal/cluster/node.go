// Package cluster assembles the real (non-simulated) distributed store:
// nodes that wrap a local storage engine behind the wire protocol, a
// client that routes by an epoch-versioned token ring (replicating
// writes, failing reads over to the next replica, refreshing its ring
// when a node reports a newer epoch), and a wire-level membership
// machine that grows and shrinks the cluster while it serves traffic.
//
// Membership is self-organizing: a new node joins through any existing
// member (JoinRing), which coordinates the rebalance — dual-write
// window, live range streaming, epoch flip, retirement — over the same
// messages the in-process Cluster coordinator uses. Every node
// persists the ring it installs (a crash-atomic `topology` file in its
// data directory), so a restart reassembles membership from disk with
// no seed; nodes probe peer liveness and self-schedule anti-entropy
// repair. See docs/membership.md for the design.
//
// Everything runs on the transport package, so a cluster can live inside
// one process (tests, examples) or span TCP endpoints (cmd/kvstore).
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"scalekv/internal/hashring"
	"scalekv/internal/row"
	"scalekv/internal/storage"
	"scalekv/internal/transport"
	"scalekv/internal/wire"
)

// NodeOptions configures one store node.
type NodeOptions struct {
	// ID is the node's ring identity.
	ID hashring.NodeID
	// Dir is the storage directory.
	Dir string
	// DBParallelism bounds concurrent database requests; excess requests
	// wait in-queue, exactly the paper's in-queue stage. 0 means 16.
	DBParallelism int
	// Storage tunes the underlying engine (Dir is overridden).
	Storage storage.Options
	// Codec decodes requests and encodes responses. Defaults to
	// FastCodec.
	Codec wire.Codec
	// Topology is the node's initial routing epoch state. Nil runs the
	// node unversioned: every request is accepted regardless of epoch
	// (standalone nodes, raw-wire tests) — unless the data directory
	// holds a persisted topology file, which a restarting member
	// resumes from. When both are present the higher epoch wins.
	Topology *hashring.Topology
	// Addrs maps ring members to dialable transport addresses, served
	// back to clients in RingStateResponse.
	Addrs map[hashring.NodeID]string
	// ReplicationFactor is the ring's write replication factor; it
	// rides epoch flips (SetRingStateRequest) and the topology file so
	// joiners and restarts inherit it. 0 means 1.
	ReplicationFactor int
	// Dialer lets the node open its own peer connections: dual-write
	// forwards during migrations, liveness probes, self-scheduled
	// repair, and coordinating a JoinRequest. Nil disables all of
	// those (the node can still serve as a migration source/target
	// driven by an external coordinator's streams).
	Dialer Dialer
	// AdvertiseAddr is this node's own dialable address, announced to
	// peers on join and persisted in the topology file.
	AdvertiseAddr string
	// ProbeInterval is the peer liveness probe period; 0 disables
	// probing. Each tick pings every peer (jittered ±25%); a peer
	// missing SuspicionThreshold consecutive probes is marked down,
	// and a down peer answering again is marked up — which also kicks
	// an immediate repair pass to catch the returnee up.
	ProbeInterval time.Duration
	// SuspicionThreshold is how many consecutive failed probes mark a
	// peer down. 0 means 3.
	SuspicionThreshold int
	// RepairInterval is the self-scheduled anti-entropy period; 0
	// disables it. Each pass (jittered ±25% so a cluster started in
	// lockstep doesn't synchronize its repair storms) converges the
	// ranges this node owns; a converged pass ships nothing and costs
	// only digest round trips.
	RepairInterval time.Duration
}

// ringState is the node's atomically-swapped view of the cluster:
// topology, member address book and replication factor (immutable
// once installed).
type ringState struct {
	topo  *hashring.Topology
	addrs map[hashring.NodeID]string
	rf    int
}

// migration is the node's migration-window state during a rebalance.
// On a source node it is the dual-write window: every accepted write
// whose token falls in one of the moves (sourced at this node) is
// synchronously forwarded to the new owner, so writes landing behind
// the range streamer's cursor are not lost. On a target node it holds
// the engine GC fences over the inbound ranges: until the window
// closes, compaction must not collect tombstones there, or a stale
// stream page arriving late could resurrect a deleted cell (the
// gc_grace hazard).
type migration struct {
	moves  []hashring.RangeMove
	conns  map[hashring.NodeID]transport.Caller
	fences []func()
}

func (m *migration) releaseFences() {
	for _, release := range m.fences {
		release()
	}
}

// Node is one running store server.
type Node struct {
	id       hashring.NodeID
	engine   *storage.Engine
	server   *transport.Server
	codec    wire.Codec
	dbSlots  chan struct{}
	dir      string
	dialer   Dialer
	selfAddr string

	ring atomic.Pointer[ringState]

	migMu sync.RWMutex
	mig   *migration

	// peers holds one self-healing connection per peer address, shared
	// by the prober, dual-write forwarding and join coordination.
	peers *peerPool

	// joinMu serializes membership changes this node coordinates: one
	// JoinRequest executes at a time, a second joiner is told to retry.
	joinMu sync.Mutex

	// healthMu guards health, the per-peer liveness view the prober
	// maintains (see PeerHealth).
	healthMu sync.Mutex
	health   map[hashring.NodeID]*peerState

	probeInterval      time.Duration
	suspicionThreshold int
	repairInterval     time.Duration
	repairKick         chan struct{}
	stop               chan struct{}
	stopOnce           sync.Once
	loopWg             sync.WaitGroup

	// Served counts database requests processed, for Figure 2's
	// ops-per-node chart.
	Served atomic.Int64
	// ForwardedWrites counts dual-write forwards issued during
	// migrations — observability for rebalance tests and demos.
	ForwardedWrites atomic.Int64
	// RepairPasses and RepairCellsShipped count the node's
	// self-scheduled anti-entropy activity (kicked passes included).
	RepairPasses       atomic.Int64
	RepairCellsShipped atomic.Int64
}

// StartNode opens the node's engine and serves the wire protocol on the
// listener. The routing topology comes from opts.Topology, from a
// topology file persisted in the data directory by a previous run's
// epoch flips (a restarting member resumes at the epoch it last
// flipped to), or — when neither exists — the node runs unversioned.
func StartNode(l transport.Listener, opts NodeOptions) (*Node, error) {
	if opts.Codec == nil {
		opts.Codec = wire.FastCodec{}
	}
	if opts.DBParallelism <= 0 {
		opts.DBParallelism = 16
	}
	if opts.SuspicionThreshold <= 0 {
		opts.SuspicionThreshold = defaultSuspicionThreshold
	}
	st := opts.Storage
	st.Dir = opts.Dir
	// The node's ring identity doubles as the engine's version-stamping
	// identity, so two replicas accepting concurrent writes can never
	// mint the same (Seq, Node) version for different cells.
	st.NodeID = uint16(opts.ID)
	engine, err := storage.Open(st)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %d: %w", opts.ID, err)
	}
	n := &Node{
		id:                 opts.ID,
		engine:             engine,
		codec:              opts.Codec,
		dbSlots:            make(chan struct{}, opts.DBParallelism),
		dir:                opts.Dir,
		dialer:             opts.Dialer,
		selfAddr:           opts.AdvertiseAddr,
		health:             make(map[hashring.NodeID]*peerState),
		probeInterval:      opts.ProbeInterval,
		suspicionThreshold: opts.SuspicionThreshold,
		repairInterval:     opts.RepairInterval,
		repairKick:         make(chan struct{}, 1),
		stop:               make(chan struct{}),
	}
	n.peers = newPeerPool(opts.Dialer)

	// Resolve the boot topology: persisted file vs. supplied options,
	// higher epoch wins. A node that was already through epoch flips
	// must not be rewound by a caller handing it a stale snapshot.
	ptopo, paddrs, prf, perr := loadTopologyFile(opts.Dir)
	if perr != nil {
		engine.Close()
		return nil, fmt.Errorf("cluster: node %d: %w", opts.ID, perr)
	}
	rf := opts.ReplicationFactor
	switch {
	case ptopo != nil && (opts.Topology == nil || ptopo.Epoch() > opts.Topology.Epoch()):
		n.installRing(ptopo, paddrs, prf, false)
	case opts.Topology != nil:
		n.installRing(opts.Topology, opts.Addrs, rf, true)
	}
	if rs := n.ring.Load(); rs != nil && n.selfAddr == "" {
		n.selfAddr = rs.addrs[n.id]
	}

	n.server = transport.Serve(l, n.handle)
	if n.dialer != nil && n.probeInterval > 0 {
		n.loopWg.Add(1)
		go n.probeLoop()
	}
	if n.dialer != nil && n.repairInterval > 0 {
		n.loopWg.Add(1)
		go n.repairLoop()
	}
	return n, nil
}

// installRing atomically swaps the node's membership view and, when
// persist is set and the node has a data directory, writes it to the
// topology file so a restart resumes at this epoch. Persist failures
// are swallowed: the in-memory flip must not fail (the cluster has
// already committed it); the node merely restarts at an older epoch
// and catches up via its first ring refresh.
func (n *Node) installRing(topo *hashring.Topology, addrs map[hashring.NodeID]string, rf int, persist bool) {
	if rf <= 0 {
		rf = 1
	}
	n.ring.Store(&ringState{topo: topo, addrs: copyAddrs(addrs), rf: rf})
	if persist && n.dir != "" {
		_ = saveTopologyFile(n.dir, topo, addrs, rf)
	}
}

func copyAddrs(in map[hashring.NodeID]string) map[hashring.NodeID]string {
	out := make(map[hashring.NodeID]string, len(in))
	for id, a := range in {
		out[id] = a
	}
	return out
}

// Engine exposes the node's local storage for test assertions and bulk
// loading.
func (n *Node) Engine() *storage.Engine { return n.engine }

// ID returns the node's ring identity.
func (n *Node) ID() hashring.NodeID { return n.id }

// Topology returns the node's current ring view (nil if unversioned).
func (n *Node) Topology() *hashring.Topology {
	if rs := n.ring.Load(); rs != nil {
		return rs.topo
	}
	return nil
}

// SetRingState installs a new topology and address book — the epoch
// flip of a join/leave. Requests decoded after the swap are validated
// against the new epoch. The replication factor carries over; the
// flip is persisted to the topology file.
func (n *Node) SetRingState(t *hashring.Topology, addrs map[hashring.NodeID]string) {
	rf := 1
	if rs := n.ring.Load(); rs != nil {
		rf = rs.rf
	}
	n.installRing(t, addrs, rf, true)
}

// BeginMigration opens the migration window for the moves this node
// takes part in. As a source (move.From == id): until EndMigration,
// every accepted write whose partition token falls in the move is also
// forwarded (synchronously, before the ack) to the move's target over
// the supplied connections — the caller owns the connections and must
// keep them alive until EndMigration returns. As a target (move.To ==
// id): the engine's tombstone GC is fenced over the inbound ranges, so
// a delete accepted here keeps masking sub-watermark stale copies the
// stream may still deliver.
func (n *Node) BeginMigration(moves []hashring.RangeMove, conns map[hashring.NodeID]transport.Caller) {
	relevant := make([]hashring.RangeMove, 0, len(moves))
	var fences []func()
	for _, m := range moves {
		if m.From == n.id {
			relevant = append(relevant, m)
		}
		if m.To == n.id {
			fences = append(fences, n.engine.FenceRange(m.Lo, m.Hi))
		}
	}
	n.migMu.Lock()
	prev := n.mig
	n.mig = &migration{moves: relevant, conns: conns, fences: fences}
	n.migMu.Unlock()
	if prev != nil {
		prev.releaseFences()
	}
}

// EndMigration closes the migration window: forwarding stops and the
// target-side GC fences lift.
func (n *Node) EndMigration() {
	n.migMu.Lock()
	prev := n.mig
	n.mig = nil
	n.migMu.Unlock()
	if prev != nil {
		prev.releaseFences()
	}
}

// Close stops serving, then closes the engine. Ordering matters: the
// background loops stop first (a probe or repair pass must not race
// resource teardown), then the server quiesces so no new writes race
// the shutdown, then the peer pool closes (in-flight handlers that
// forward through it have drained with the server), and engine.Close
// finally freezes every shard's active memtable and drains the
// background flushers before releasing resources — a clean shutdown
// never abandons a frozen memtable (only its WAL segments would cover
// it after a crash).
func (n *Node) Close() error {
	n.stopOnce.Do(func() { close(n.stop) })
	n.loopWg.Wait()
	n.server.Close()
	n.peers.close()
	return n.engine.Close()
}

// Shutdown is the graceful variant of Close: before tearing down, the
// node announces its departure (LeaveRequest) to every peer so they
// flip its health to down immediately instead of burning a suspicion
// window on probes that can never succeed. The announce is best
// effort — an unreachable peer finds out the usual way.
func (n *Node) Shutdown() error {
	n.announceLeave()
	return n.Close()
}

// epochCheck validates a request's routing epoch against the node's
// topology. Requests at epoch 0 (unversioned traffic: admin tooling,
// the rebalance streamer, raw-wire tests) always pass, as does every
// request when the node runs without a topology.
func (n *Node) epochCheck(reqEpoch uint64) (errMsg string) {
	if reqEpoch == 0 {
		return ""
	}
	rs := n.ring.Load()
	if rs == nil {
		return ""
	}
	if have := rs.topo.Epoch(); have != reqEpoch {
		return wire.WrongEpochMsg(have, reqEpoch)
	}
	return ""
}

// forwardEntries implements the dual-write window for a write that was
// just applied locally: entries whose token falls in a migrating range
// sourced here are batched per target and sent synchronously. An error
// fails the write (the client retries; puts are idempotent).
func (n *Node) forwardEntries(entries []row.Entry) error {
	n.migMu.RLock()
	mig := n.mig
	n.migMu.RUnlock()
	if mig == nil {
		return nil
	}
	var perTarget map[hashring.NodeID][]row.Entry
	for _, ent := range entries {
		tok := hashring.Token(ent.PK)
		for _, m := range mig.moves {
			if m.Contains(tok) {
				if perTarget == nil {
					perTarget = make(map[hashring.NodeID][]row.Entry)
				}
				perTarget[m.To] = append(perTarget[m.To], ent)
			}
		}
	}
	for target, batch := range perTarget {
		conn, ok := mig.conns[target]
		if !ok {
			return fmt.Errorf("cluster: node %d: no forward conn to %d", n.id, target)
		}
		payload, err := n.codec.Marshal(&wire.BatchPutRequest{Entries: batch}) // epoch 0: wildcard
		if err != nil {
			return err
		}
		raw, err := conn.Call(payload)
		if err != nil {
			return fmt.Errorf("cluster: node %d: forward to %d: %w", n.id, target, err)
		}
		resp, err := n.codec.Unmarshal(raw)
		if err != nil {
			return err
		}
		bp, ok := resp.(*wire.BatchPutResponse)
		if !ok {
			return fmt.Errorf("cluster: node %d: unexpected forward response %T", n.id, resp)
		}
		if bp.ErrMsg != "" {
			return fmt.Errorf("cluster: node %d: forward to %d: %s", n.id, target, bp.ErrMsg)
		}
		n.ForwardedWrites.Add(int64(len(batch)))
	}
	return nil
}

// handle dispatches one decoded request. Each message type gets its own
// method: the per-request goroutine's live stack while deep in the
// engine then holds only the taken branch's locals, not the union of
// every case — this path runs once per RPC, so its stack footprint is
// hot.
func (n *Node) handle(payload []byte) []byte {
	recv := time.Now()
	msg, err := n.codec.Unmarshal(payload)
	if err != nil {
		return n.encode(&wire.CountResponse{ErrMsg: "bad frame: " + err.Error()})
	}
	switch req := msg.(type) {
	case *wire.PutRequest:
		return n.encode(n.handlePut(req))
	case *wire.DeleteRequest:
		return n.encode(n.handleDelete(req))
	case *wire.BatchPutRequest:
		return n.encode(n.handleBatchPut(req))
	case *wire.MultiGetRequest:
		return n.encode(n.handleMultiGet(req))
	case *wire.GetRequest:
		return n.encode(n.handleGet(req))
	case *wire.ScanRequest:
		return n.encode(n.handleScan(req))
	case *wire.CountRequest:
		if msg := n.epochCheck(req.Epoch); msg != "" {
			return n.encode(&wire.CountResponse{QueryID: req.QueryID, Seq: req.Seq, ErrMsg: msg})
		}
		return n.encode(n.count(req, recv))
	case *wire.RingStateRequest:
		return n.encode(n.ringStateResponse())
	case *wire.StreamRangeRequest:
		return n.encode(n.streamRange(req))
	case *wire.DigestRequest:
		return n.encode(n.handleDigest(req))
	case *wire.DeleteRangeRequest:
		return n.encode(n.handleDeleteRange(req))
	case *wire.NodeStatsRequest:
		return n.encode(n.statsResponse())
	case *wire.JoinRequest:
		return n.encode(n.handleJoin(req))
	case *wire.BeginMigrationRequest:
		return n.encode(n.handleBeginMigration(req))
	case *wire.EndMigrationRequest:
		n.EndMigration()
		return n.encode(&wire.EndMigrationResponse{})
	case *wire.SetRingStateRequest:
		return n.encode(n.handleSetRingState(req))
	case *wire.PingRequest:
		return n.encode(n.handlePing(req))
	case *wire.LeaveRequest:
		return n.encode(n.handleLeave(req))
	default:
		return n.encode(&wire.CountResponse{ErrMsg: fmt.Sprintf("unexpected message %T", msg)})
	}
}

func (n *Node) handlePut(req *wire.PutRequest) *wire.PutResponse {
	if msg := n.epochCheck(req.Epoch); msg != "" {
		return &wire.PutResponse{ErrMsg: msg}
	}
	// Apply through the batch path so the engine's version stamp is
	// readable afterwards: the dual-write forward must carry it, or
	// the forwarded copy and a streamed copy of the same cell could
	// merge differently at the target.
	ents := []row.Entry{{PK: req.PK, CK: req.CK, Value: req.Value}}
	if err := n.engine.PutBatch(ents); err != nil {
		return &wire.PutResponse{ErrMsg: err.Error()}
	}
	if err := n.forwardEntries(ents); err != nil {
		return &wire.PutResponse{ErrMsg: err.Error()}
	}
	// Re-check after applying: if the epoch flipped while this write
	// was in flight, the dual-write window may already be closed and
	// the forward skipped — acking would lose the write for readers
	// at the new topology. Rejecting makes the client retry at the
	// new epoch; the local copy is at worst idempotent garbage.
	if msg := n.epochCheck(req.Epoch); msg != "" {
		return &wire.PutResponse{ErrMsg: msg}
	}
	return &wire.PutResponse{}
}

func (n *Node) handleDelete(req *wire.DeleteRequest) *wire.DeleteResponse {
	if msg := n.epochCheck(req.Epoch); msg != "" {
		return &wire.DeleteResponse{ErrMsg: msg}
	}
	// A delete is a tombstone write: same stamping, same dual-write
	// forwarding and same post-apply epoch re-check as a put, so a
	// delete issued during a rebalance lands on the range's new
	// owner with the version that makes every replica agree.
	ents := []row.Entry{{PK: req.PK, CK: req.CK, Tombstone: true}}
	if err := n.engine.PutBatch(ents); err != nil {
		return &wire.DeleteResponse{ErrMsg: err.Error()}
	}
	if err := n.forwardEntries(ents); err != nil {
		return &wire.DeleteResponse{ErrMsg: err.Error()}
	}
	if msg := n.epochCheck(req.Epoch); msg != "" {
		return &wire.DeleteResponse{ErrMsg: msg}
	}
	return &wire.DeleteResponse{}
}

func (n *Node) handleBatchPut(req *wire.BatchPutRequest) *wire.BatchPutResponse {
	if msg := n.epochCheck(req.Epoch); msg != "" {
		return &wire.BatchPutResponse{ErrMsg: msg}
	}
	// Group commit: the whole batch lands in one engine call — one
	// lock acquisition, one WAL write — instead of len(Entries) RPCs.
	if err := n.engine.PutBatch(req.Entries); err != nil {
		return &wire.BatchPutResponse{ErrMsg: err.Error()}
	}
	if err := n.forwardEntries(req.Entries); err != nil {
		return &wire.BatchPutResponse{ErrMsg: err.Error()}
	}
	// Same post-apply re-check as PutRequest: an epoch flip racing
	// this batch must surface as a retryable rejection, not an ack
	// that skipped the dual-write window.
	if msg := n.epochCheck(req.Epoch); msg != "" {
		return &wire.BatchPutResponse{ErrMsg: msg}
	}
	return &wire.BatchPutResponse{Applied: uint64(len(req.Entries))}
}

func (n *Node) handleMultiGet(req *wire.MultiGetRequest) *wire.MultiGetResponse {
	if msg := n.epochCheck(req.Epoch); msg != "" {
		return &wire.MultiGetResponse{ErrMsg: msg}
	}
	resp := &wire.MultiGetResponse{Values: make([]wire.MultiGetValue, len(req.Keys))}
	for i, k := range req.Keys {
		v, found, err := n.engine.Get(k.PK, k.CK)
		if err != nil {
			resp.ErrMsg = err.Error()
			break
		}
		resp.Values[i] = wire.MultiGetValue{Value: v, Found: found}
	}
	return resp
}

func (n *Node) handleGet(req *wire.GetRequest) *wire.GetResponse {
	if msg := n.epochCheck(req.Epoch); msg != "" {
		return &wire.GetResponse{ErrMsg: msg}
	}
	cell, found, err := n.engine.GetVersioned(req.PK, req.CK)
	resp := &wire.GetResponse{}
	if found {
		// A tombstone answers "not found" (no value, Found stays false)
		// but still reports its version and flag, so a failover read of
		// a deleted cell can repair the delete to lagging replicas.
		resp.VerSeq, resp.VerNode = cell.Ver.Seq, cell.Ver.Node
		if cell.Tombstone {
			resp.Tombstone = true
		} else {
			resp.Value, resp.Found = cell.Value, true
		}
	}
	if err != nil {
		resp.ErrMsg = err.Error()
	}
	return resp
}

func (n *Node) handleScan(req *wire.ScanRequest) *wire.ScanResponse {
	if msg := n.epochCheck(req.Epoch); msg != "" {
		return &wire.ScanResponse{ErrMsg: msg}
	}
	cells, err := n.engine.ScanPartition(req.PK, req.From, req.To)
	resp := &wire.ScanResponse{Cells: cells}
	if err != nil {
		resp.ErrMsg = err.Error()
	}
	return resp
}

func (n *Node) handleDeleteRange(req *wire.DeleteRangeRequest) *wire.DeleteRangeResponse {
	removed, err := n.engine.DeleteRange(req.Lo, req.Hi)
	resp := &wire.DeleteRangeResponse{Removed: uint64(removed)}
	if err != nil {
		resp.ErrMsg = err.Error()
	}
	return resp
}

// ringStateResponse serializes the node's current topology view.
func (n *Node) ringStateResponse() *wire.RingStateResponse {
	rs := n.ring.Load()
	if rs == nil {
		return &wire.RingStateResponse{ErrMsg: "node has no topology"}
	}
	resp := &wire.RingStateResponse{
		Epoch:  rs.topo.Epoch(),
		Vnodes: uint32(rs.topo.Vnodes()),
		RF:     uint32(rs.rf),
	}
	for _, id := range rs.topo.Nodes() {
		resp.Nodes = append(resp.Nodes, wire.NodeAddr{ID: uint32(id), Addr: rs.addrs[id]})
	}
	return resp
}

// streamRange serves one page of a range handoff out of the engine.
func (n *Node) streamRange(req *wire.StreamRangeRequest) *wire.StreamRangeResponse {
	maxCells := int(req.MaxCells)
	page, err := n.engine.ScanRange(req.Lo, req.Hi, req.AfterToken, req.AfterPK, maxCells)
	if err != nil {
		return &wire.StreamRangeResponse{ErrMsg: err.Error()}
	}
	return &wire.StreamRangeResponse{
		Entries:   page.Entries,
		NextToken: page.NextToken,
		NextPK:    page.NextPK,
		More:      page.More,
	}
}

// handleDigest serves a range digest out of the engine — admin-class
// traffic like streaming, valid at any epoch.
func (n *Node) handleDigest(req *wire.DigestRequest) *wire.DigestResponse {
	leaves, err := n.engine.RangeDigest(req.Lo, req.Hi, int(req.Depth))
	if err != nil {
		return &wire.DigestResponse{ErrMsg: err.Error()}
	}
	resp := &wire.DigestResponse{Leaves: make([]wire.DigestLeaf, len(leaves))}
	for i, l := range leaves {
		resp.Leaves[i] = wire.DigestLeaf{Hash: l.Hash, Cells: l.Cells}
	}
	return resp
}

// statsResponse summarizes the engine for the coordinator.
func (n *Node) statsResponse() *wire.NodeStatsResponse {
	st := n.engine.Stats()
	resp := &wire.NodeStatsResponse{
		FlushedBytes:       uint64(st.FlushedBytes),
		FlushCount:         uint64(st.Flushes),
		CompactionCount:    uint64(st.Compactions),
		CompactionBytesIn:  uint64(st.CompactionBytesIn),
		CompactionBytesOut: uint64(st.CompactionBytesOut),
		CacheHits:          uint64(st.BlockCacheHits),
		CacheMisses:        uint64(st.BlockCacheMisses),
		CacheEvictions:     uint64(st.BlockCacheEvictions),
		CacheBytes:         uint64(st.BlockCacheBytes),
		BlockBytesLogical:  uint64(st.BlockBytesLogical),
		BlockBytesStored:   uint64(st.BlockBytesStored),
	}
	for _, ls := range st.Levels {
		resp.LevelTables = append(resp.LevelTables, uint32(ls.Tables))
		resp.LevelBytes = append(resp.LevelBytes, uint64(ls.Bytes))
	}
	if rs := n.ring.Load(); rs != nil {
		resp.Epoch = rs.topo.Epoch()
	}
	for id, ps := range n.PeerHealth() {
		resp.Peers = append(resp.Peers, wire.PeerStat{
			ID:          uint32(id),
			Up:          ps.Up,
			Suspicion:   uint32(ps.Suspicion),
			SinceMillis: uint64(time.Since(ps.Since).Milliseconds()),
		})
	}
	resp.DialCount, resp.RedialCount = n.peers.stats()
	for _, sh := range st.Shards {
		resp.Shards = append(resp.Shards, wire.ShardStat{
			MemtableBytes:   uint64(sh.MemtableBytes + sh.FrozenBytes),
			FrozenMemtables: uint32(sh.FrozenMemtables),
			SSTables:        uint32(sh.SSTables),
		})
	}
	return resp
}

// count serves the paper's aggregation: count elements by type (the
// first byte of each cell value), bounded by the node's DB parallelism.
func (n *Node) count(req *wire.CountRequest, recv time.Time) *wire.CountResponse {
	resp := &wire.CountResponse{
		QueryID:   req.QueryID,
		Seq:       req.Seq,
		NodeID:    uint32(n.id),
		RecvNanos: recv.UnixNano(),
	}
	n.dbSlots <- struct{}{} // in-queue stage: wait for a database slot
	dbStart := time.Now()
	resp.QueueNanos = dbStart.Sub(recv).Nanoseconds()

	counts := make(map[uint8]uint64)
	var elements uint64
	err := n.engine.AggregatePartition(req.PK, func(_, value []byte) {
		elements++
		ty := uint8(0)
		if len(value) > 0 {
			ty = value[0]
		}
		counts[ty]++
	})
	resp.DBNanos = time.Since(dbStart).Nanoseconds()
	<-n.dbSlots
	n.Served.Add(1)

	if err != nil {
		resp.ErrMsg = err.Error()
		return resp
	}
	resp.Counts = counts
	resp.Elements = elements
	return resp
}

func (n *Node) encode(m wire.Message) []byte {
	data, err := n.codec.Marshal(m)
	if err != nil {
		// Marshal of our own response types cannot fail with a healthy
		// codec; make the failure loud instead of silent.
		panic(fmt.Sprintf("cluster: encode %T: %v", m, err))
	}
	return data
}
