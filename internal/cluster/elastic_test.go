package cluster

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"scalekv/internal/hashring"
	"scalekv/internal/storage"
	"scalekv/internal/wire"
)

// TestReadFailoverOnDeadPrimary is the latent single-point-of-read-
// failure regression test: with rf=2, killing a key's primary must not
// kill reads — Get and MultiGet fail over to the surviving replica.
func TestReadFailoverOnDeadPrimary(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 3, ReplicationFactor: 2})
	cli := c.Client()
	const n = 60
	for i := 0; i < n; i++ {
		if err := cli.Put(fmt.Sprintf("part-%d", i), []byte("ck"), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	victim := c.Nodes[1]
	victim.Close()

	var failedOver int
	for i := 0; i < n; i++ {
		pk := fmt.Sprintf("part-%d", i)
		if c.Topology().Primary(pk) == victim.ID() {
			failedOver++
		}
		v, found, err := cli.Get(pk, []byte("ck"))
		if err != nil || !found || v[0] != byte(i) {
			t.Fatalf("get %s with dead primary: err=%v found=%v v=%v", pk, err, found, v)
		}
	}
	if failedOver == 0 {
		t.Fatal("victim owned no keys; test exercised nothing")
	}

	keys := make([]wire.GetKey, n)
	for i := range keys {
		keys[i] = wire.GetKey{PK: fmt.Sprintf("part-%d", i), CK: []byte("ck")}
	}
	values, err := cli.MultiGet(keys)
	if err != nil {
		t.Fatalf("multi-get with dead primary: %v", err)
	}
	for i, v := range values {
		if !v.Found || v.Value[0] != byte(i) {
			t.Fatalf("multi-get key %d: found=%v v=%v", i, v.Found, v.Value)
		}
	}

	// Scan fails over too.
	for i := 0; i < n; i++ {
		pk := fmt.Sprintf("part-%d", i)
		cells, err := cli.Scan(pk, nil, nil)
		if err != nil || len(cells) != 1 {
			t.Fatalf("scan %s with dead primary: %v cells=%d", pk, err, len(cells))
		}
	}
}

func TestReadFailoverRF1StillFails(t *testing.T) {
	// Sanity: without replicas there is nowhere to fail over; reads of
	// the dead node's keys must error, not hang or mis-answer.
	c := startTest(t, LocalOptions{Nodes: 2, ReplicationFactor: 1})
	cli := c.Client()
	for i := 0; i < 20; i++ {
		if err := cli.Put(fmt.Sprintf("part-%d", i), []byte("ck"), []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	victim := c.Nodes[0]
	victim.Close()
	sawError := false
	for i := 0; i < 20; i++ {
		pk := fmt.Sprintf("part-%d", i)
		_, _, err := cli.Get(pk, []byte("ck"))
		if c.Topology().Primary(pk) == victim.ID() {
			if err == nil {
				t.Fatalf("get %s succeeded though its only replica is dead", pk)
			}
			sawError = true
		} else if err != nil {
			t.Fatalf("get %s on the living node failed: %v", pk, err)
		}
	}
	if !sawError {
		t.Fatal("victim owned no keys; test exercised nothing")
	}
}

// TestAddNodeUnderLiveTraffic is the acceptance test for the elastic
// topology: ingest with continuous reads while a node joins, with zero
// failed operations, every cell readable at the new epoch, bounded key
// movement, and the moved ranges retired at their sources.
func TestAddNodeUnderLiveTraffic(t *testing.T) {
	const preCells = 3000 // ingested before the join
	const liveCells = 500 // ingested while the join runs
	c := startTest(t, LocalOptions{
		Nodes:   3,
		Storage: storage.Options{DisableWAL: true, FlushThreshold: 64 << 10},
	})
	cli := c.Client()

	key := func(i int) string { return fmt.Sprintf("cell-%06d", i) }
	for i := 0; i < preCells; i++ {
		if err := cli.Put(key(i), []byte("ck"), []byte(key(i))); err != nil {
			t.Fatal(err)
		}
	}
	oldTopo := c.Topology()

	// Continuous reads of acked cells + continuous writes while the
	// join runs. Any failed operation fails the test.
	var (
		stop     atomic.Bool
		reads    atomic.Int64
		written  atomic.Int64
		opErrs   []string
		opErrsMu sync.Mutex
	)
	fail := func(format string, args ...any) {
		opErrsMu.Lock()
		opErrs = append(opErrs, fmt.Sprintf(format, args...))
		opErrsMu.Unlock()
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // reader
		defer wg.Done()
		for i := 0; !stop.Load(); i = (i + 7) % preCells {
			v, found, err := cli.Get(key(i), []byte("ck"))
			if err != nil || !found || string(v) != key(i) {
				fail("read %s during join: err=%v found=%v v=%q", key(i), err, found, v)
				return
			}
			reads.Add(1)
		}
	}()
	go func() { // writer
		defer wg.Done()
		for i := preCells; i < preCells+liveCells; i++ {
			if err := cli.Put(key(i), []byte("ck"), []byte(key(i))); err != nil {
				fail("write %s during join: %v", key(i), err)
				return
			}
			written.Add(1)
			if stop.Load() {
				return
			}
		}
	}()

	node, report, err := c.AddNode()
	stop.Store(true)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	opErrsMu.Lock()
	defer opErrsMu.Unlock()
	if len(opErrs) > 0 {
		t.Fatalf("operations failed during the join:\n%s", opErrs[0])
	}
	if reads.Load() == 0 {
		t.Fatal("reader made no progress during the join")
	}

	// The topology advanced and everyone agrees.
	newTopo := c.Topology()
	if newTopo.Epoch() != oldTopo.Epoch()+1 {
		t.Fatalf("epoch %d want %d", newTopo.Epoch(), oldTopo.Epoch()+1)
	}
	if report.Epoch != newTopo.Epoch() || !newTopo.Contains(node.ID()) {
		t.Fatalf("report epoch %d, topology %v", report.Epoch, newTopo.Nodes())
	}
	for _, n := range c.Nodes {
		if got := n.Topology().Epoch(); got != newTopo.Epoch() {
			t.Fatalf("node %d at epoch %d want %d", n.ID(), got, newTopo.Epoch())
		}
	}

	// Every acked cell is readable at the new epoch.
	total := preCells + int(written.Load())
	for i := 0; i < total; i++ {
		v, found, err := cli.Get(key(i), []byte("ck"))
		if err != nil || !found || string(v) != key(i) {
			t.Fatalf("cell %s unreadable after join: err=%v found=%v v=%q", key(i), err, found, v)
		}
	}

	// Movement is bounded: the streamed share stays within 2x the ideal
	// K/N for one join.
	if report.CellsStreamed == 0 {
		t.Fatal("join streamed nothing")
	}
	bound := int64(2 * total / newTopo.Size())
	if report.CellsStreamed > bound {
		t.Fatalf("join streamed %d of %d cells, above 2K/N bound %d", report.CellsStreamed, total, bound)
	}

	// The new node actually owns and serves data.
	if parts := node.Engine().Partitions(); len(parts) == 0 {
		t.Fatal("joining node holds no partitions")
	}

	// Retired ranges are gone from their sources: engine-level ScanRange
	// over each move's range at the old owner must be empty, and the
	// purge shows in Stats.
	purges := int64(0)
	for _, n := range c.Nodes {
		purges += n.Engine().Stats().RangePurges
	}
	if purges == 0 {
		t.Fatal("no range purges recorded at the sources")
	}
	if report.RetireErr != "" {
		t.Fatalf("retirement failed: %s", report.RetireErr)
	}
	if report.CellsRetired < report.CellsStreamed {
		// Dual-written cells may push retired above streamed, never below.
		t.Fatalf("retired %d < streamed %d: sources kept moved data", report.CellsRetired, report.CellsStreamed)
	}
	for _, m := range report.Moves {
		var src *Node
		for _, n := range c.Nodes {
			if n.ID() == m.From {
				src = n
			}
		}
		if src == nil {
			t.Fatalf("move source %d not running", m.From)
		}
		page, err := src.Engine().ScanRange(m.Lo, m.Hi, math.MinInt64, "", 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if len(page.Entries) != 0 {
			t.Fatalf("source %d still holds %d cells of retired range [%d,%d]",
				m.From, len(page.Entries), m.Lo, m.Hi)
		}
	}
}

// TestAddNodeWithReplication exercises the join at rf=2: stats-driven
// source selection, replica-aware diffs, and post-join reads from
// every replica.
func TestAddNodeWithReplication(t *testing.T) {
	const cells = 1200
	c := startTest(t, LocalOptions{
		Nodes: 3, ReplicationFactor: 2,
		Storage: storage.Options{DisableWAL: true},
	})
	cli := c.Client()
	key := func(i int) string { return fmt.Sprintf("cell-%06d", i) }
	for i := 0; i < cells; i++ {
		if err := cli.Put(key(i), []byte("ck"), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	node, report, err := c.AddNode()
	if err != nil {
		t.Fatal(err)
	}
	if report.CellsStreamed == 0 {
		t.Fatal("rf=2 join streamed nothing")
	}
	for i := 0; i < cells; i++ {
		v, found, err := cli.Get(key(i), []byte("ck"))
		if err != nil || !found || v[0] != byte(i) {
			t.Fatalf("cell %d unreadable after rf=2 join: %v %v", i, err, found)
		}
	}
	// Every key's full new replica set serves it locally.
	topo := c.Topology()
	byID := map[hashring.NodeID]*Node{}
	for _, n := range c.Nodes {
		byID[n.ID()] = n
	}
	for i := 0; i < cells; i += 17 {
		pk := key(i)
		for _, rep := range topo.Replicas(pk, 2) {
			cellsAt, err := byID[rep].Engine().ScanPartition(pk, nil, nil)
			if err != nil || len(cellsAt) != 1 {
				t.Fatalf("replica %d of %s serves %d cells (%v)", rep, pk, len(cellsAt), err)
			}
		}
	}
	_ = node
}

// TestRemoveNodeDrainsAndRetires: a leave streams the departing node's
// ranges out, flips the epoch, and the cluster keeps serving everything.
func TestRemoveNodeDrainsAndRetires(t *testing.T) {
	const cells = 1500
	c := startTest(t, LocalOptions{
		Nodes:   4,
		Storage: storage.Options{DisableWAL: true},
	})
	cli := c.Client()
	key := func(i int) string { return fmt.Sprintf("cell-%06d", i) }
	for i := 0; i < cells; i++ {
		if err := cli.Put(key(i), []byte("ck"), []byte(key(i))); err != nil {
			t.Fatal(err)
		}
	}
	victim := c.Nodes[2].ID()
	oldEpoch := c.Topology().Epoch()
	report, err := c.RemoveNode(victim)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Topology(); got.Contains(victim) || got.Epoch() != oldEpoch+1 {
		t.Fatalf("topology after leave: members %v epoch %d", got.Nodes(), got.Epoch())
	}
	if len(c.Nodes) != 3 {
		t.Fatalf("%d nodes after leave want 3", len(c.Nodes))
	}
	if report.CellsStreamed == 0 {
		t.Fatal("leave streamed nothing")
	}
	for i := 0; i < cells; i++ {
		v, found, err := cli.Get(key(i), []byte("ck"))
		if err != nil || !found || string(v) != key(i) {
			t.Fatalf("cell %s lost by the leave: err=%v found=%v", key(i), err, found)
		}
	}
}

// TestJoinThenLeaveRoundTrip grows then shrinks back; nothing is lost
// and epochs advance monotonically.
func TestJoinThenLeaveRoundTrip(t *testing.T) {
	const cells = 800
	c := startTest(t, LocalOptions{Nodes: 2, Storage: storage.Options{DisableWAL: true}})
	cli := c.Client()
	key := func(i int) string { return fmt.Sprintf("cell-%06d", i) }
	for i := 0; i < cells; i++ {
		if err := cli.Put(key(i), []byte("ck"), []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
	}
	node, _, err := c.AddNode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RemoveNode(node.ID()); err != nil {
		t.Fatal(err)
	}
	if got := c.Topology().Epoch(); got != 3 {
		t.Fatalf("epoch after join+leave %d want 3", got)
	}
	for i := 0; i < cells; i++ {
		v, found, err := cli.Get(key(i), []byte("ck"))
		if err != nil || !found || v[0] != byte(i) {
			t.Fatalf("cell %d lost by join+leave: %v %v", i, err, found)
		}
	}
}

// TestStaleClientRecoversViaWrongEpoch: a second client that slept
// through a topology change must recover transparently on its next
// operation.
func TestStaleClientRecoversViaWrongEpoch(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 2, Storage: storage.Options{DisableWAL: true}})
	key := func(i int) string { return fmt.Sprintf("cell-%06d", i) }
	for i := 0; i < 400; i++ {
		if err := c.Client().Put(key(i), []byte("ck"), []byte(key(i))); err != nil {
			t.Fatal(err)
		}
	}

	// A second, independent client pinned at the pre-join topology.
	stale := NewClient(c.Topology(), nil, ClientOptions{
		Codec:             c.opts.Codec,
		ReplicationFactor: c.opts.ReplicationFactor,
		Dialer:            c.dial,
		Addrs:             c.addrs,
	})
	defer stale.Close()

	if _, _, err := c.AddNode(); err != nil {
		t.Fatal(err)
	}

	// Every key must still be readable and writable through the stale
	// client: wrong-epoch rejections trigger its ring refresh.
	for i := 0; i < 400; i += 13 {
		v, found, err := stale.Get(key(i), []byte("ck"))
		if err != nil || !found || string(v) != key(i) {
			t.Fatalf("stale client get %s: err=%v found=%v", key(i), err, found)
		}
	}
	if stale.topo().Epoch() != c.Topology().Epoch() {
		t.Fatalf("stale client still at epoch %d, cluster at %d", stale.topo().Epoch(), c.Topology().Epoch())
	}
	// Count is epoch-protected too: a second stale client whose first
	// operation is a Count must see the real cell count, not a silent
	// zero from a node that retired the partition.
	stale2 := NewClient(hashring.New(2, c.opts.Vnodes), nil, ClientOptions{
		Codec:             c.opts.Codec,
		ReplicationFactor: c.opts.ReplicationFactor,
		Dialer:            c.dial,
		Addrs:             c.addrs,
	})
	defer stale2.Close()
	for i := 0; i < 400; i += 29 {
		if _, elements, err := stale2.Count(key(i)); err != nil || elements != 1 {
			t.Fatalf("stale count %s = %d, %v want 1 cell", key(i), elements, err)
		}
	}
	if err := stale.Put("post-join", []byte("ck"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, found, err := c.Client().Get("post-join", []byte("ck")); err != nil || !found || string(v) != "v" {
		t.Fatalf("stale client's post-join write lost: %v %v", err, found)
	}
}

// TestBatcherBufferSurvivesEpochFlip: entries buffered before a join
// must land correctly even though the ring moved before they flushed.
// The batch is sent with the epoch it was ROUTED under, so the old
// owner rejects it and the resend path re-routes — stamping the
// flush-time epoch instead would silently land cells on non-owners.
func TestBatcherBufferSurvivesEpochFlip(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 2, Storage: storage.Options{DisableWAL: true}})
	key := func(i int) string { return fmt.Sprintf("cell-%06d", i) }

	// Buffer entries without crossing the flush threshold.
	bt := c.Client().NewBatcher(BatcherOptions{MaxEntries: 1 << 20})
	const cells = 300
	for i := 0; i < cells; i++ {
		if err := bt.Put(key(i), []byte("ck"), []byte(key(i))); err != nil {
			t.Fatal(err)
		}
	}
	if pending, _ := bt.Pending(); pending != cells {
		t.Fatalf("expected %d buffered entries, got %d", cells, pending)
	}

	// The ring moves while the batch sits in the buffer.
	if _, _, err := c.AddNode(); err != nil {
		t.Fatal(err)
	}
	if err := bt.Close(); err != nil {
		t.Fatal(err)
	}

	// Every cell is readable and lives on its CURRENT primary.
	topo := c.Topology()
	byID := map[hashring.NodeID]*Node{}
	for _, n := range c.Nodes {
		byID[n.ID()] = n
	}
	for i := 0; i < cells; i++ {
		pk := key(i)
		v, found, err := c.Client().Get(pk, []byte("ck"))
		if err != nil || !found || string(v) != pk {
			t.Fatalf("cell %s lost across the flip: err=%v found=%v", pk, err, found)
		}
		owner := byID[topo.Primary(pk)]
		if cellsAt, err := owner.Engine().ScanPartition(pk, nil, nil); err != nil || len(cellsAt) != 1 {
			t.Fatalf("current primary %d of %s holds %d cells (%v)", owner.ID(), pk, len(cellsAt), err)
		}
	}
}

// TestNodeStatsOverWire covers the coordinator's source-selection
// input: engine stats served through the wire protocol.
func TestNodeStatsOverWire(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 2, Storage: storage.Options{DisableWAL: true}})
	for i := 0; i < 500; i++ {
		if err := c.Client().Put(fmt.Sprintf("p-%d", i), []byte("ck"), make([]byte, 128)); err != nil {
			t.Fatal(err)
		}
	}
	var memBytes uint64
	for _, n := range c.Nodes {
		st, err := c.Client().NodeStats(n.ID())
		if err != nil {
			t.Fatal(err)
		}
		if st.Epoch != c.Topology().Epoch() {
			t.Fatalf("stats epoch %d want %d", st.Epoch, c.Topology().Epoch())
		}
		if len(st.Shards) == 0 {
			t.Fatal("stats carry no shards")
		}
		for _, sh := range st.Shards {
			memBytes += sh.MemtableBytes
		}
	}
	if memBytes == 0 {
		t.Fatal("no memtable bytes visible through node stats")
	}
}

// TestWrongEpochRejectedAtWireLevel pins the raw protocol behaviour:
// a request at a stale epoch gets the sentinel error, epoch 0 passes.
func TestWrongEpochRejectedAtWireLevel(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 1, Storage: storage.Options{DisableWAL: true}})
	codec := wire.FastCodec{}
	conn, err := c.dial(c.addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	call := func(m wire.Message) wire.Message {
		t.Helper()
		payload, err := codec.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := conn.Call(payload)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := codec.Unmarshal(raw)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	epoch := c.Topology().Epoch()
	if resp := call(&wire.PutRequest{PK: "p", CK: []byte("c"), Value: []byte("v"), Epoch: epoch + 5}).(*wire.PutResponse); !wire.IsWrongEpoch(resp.ErrMsg) {
		t.Fatalf("stale put not rejected: %q", resp.ErrMsg)
	}
	if resp := call(&wire.GetRequest{PK: "p", CK: []byte("c"), Epoch: epoch + 5}).(*wire.GetResponse); !wire.IsWrongEpoch(resp.ErrMsg) {
		t.Fatalf("stale get not rejected: %q", resp.ErrMsg)
	}
	if resp := call(&wire.PutRequest{PK: "p", CK: []byte("c"), Value: []byte("v")}).(*wire.PutResponse); resp.ErrMsg != "" {
		t.Fatalf("epoch-0 put rejected: %q", resp.ErrMsg)
	}
	if resp := call(&wire.GetRequest{PK: "p", CK: []byte("c"), Epoch: epoch}).(*wire.GetResponse); resp.ErrMsg != "" || !resp.Found {
		t.Fatalf("current-epoch get failed: %q found=%v", resp.ErrMsg, resp.Found)
	}
}

// TestAddNodeOverTCP runs a join on real sockets.
func TestAddNodeOverTCP(t *testing.T) {
	c, err := StartTCP(LocalOptions{Nodes: 2, Storage: storage.Options{DisableWAL: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cli := c.Client()
	key := func(i int) string { return fmt.Sprintf("cell-%06d", i) }
	const cells = 600
	for i := 0; i < cells; i++ {
		if err := cli.Put(key(i), []byte("ck"), []byte(key(i))); err != nil {
			t.Fatal(err)
		}
	}
	node, report, err := c.AddNode()
	if err != nil {
		t.Fatal(err)
	}
	if report.CellsStreamed == 0 {
		t.Fatal("TCP join streamed nothing")
	}
	for i := 0; i < cells; i++ {
		v, found, err := cli.Get(key(i), []byte("ck"))
		if err != nil || !found || string(v) != key(i) {
			t.Fatalf("cell %s unreadable after TCP join: %v %v", key(i), err, found)
		}
	}
	if len(node.Engine().Partitions()) == 0 {
		t.Fatal("TCP joining node holds no data")
	}
}
