package cluster

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"scalekv/internal/stages"
	"scalekv/internal/storage"
	"scalekv/internal/transport"
	"scalekv/internal/wire"
)

func startTest(t *testing.T, opts LocalOptions) *Cluster {
	t.Helper()
	if opts.Storage.FlushThreshold == 0 {
		opts.Storage = storage.Options{DisableWAL: true}
	}
	c, err := StartLocal(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestPutGetAcrossNodes(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 4})
	cli := c.Client()
	for i := 0; i < 50; i++ {
		pk := fmt.Sprintf("part-%d", i)
		if err := cli.Put(pk, []byte("ck"), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		pk := fmt.Sprintf("part-%d", i)
		v, found, err := cli.Get(pk, []byte("ck"))
		if err != nil || !found {
			t.Fatalf("get %s: %v found=%v", pk, err, found)
		}
		if string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get %s = %q", pk, v)
		}
	}
	// Keys must actually spread across nodes.
	nodesWithData := 0
	for _, n := range c.Nodes {
		if len(n.Engine().Partitions()) > 0 {
			nodesWithData++
		}
	}
	if nodesWithData < 3 {
		t.Fatalf("only %d/4 nodes hold data", nodesWithData)
	}
}

func TestGetAbsent(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 2})
	_, found, err := c.Client().Get("ghost", []byte("ck"))
	if err != nil || found {
		t.Fatalf("absent get: %v found=%v", err, found)
	}
}

func TestScan(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 3})
	cli := c.Client()
	for i := 0; i < 20; i++ {
		cli.Put("scanpart", []byte{byte(i)}, []byte{byte(i)})
	}
	cells, err := cli.Scan("scanpart", []byte{5}, []byte{10})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 5 {
		t.Fatalf("scan returned %d cells want 5", len(cells))
	}
	all, err := cli.Scan("scanpart", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 20 {
		t.Fatalf("unbounded scan returned %d want 20", len(all))
	}
}

func TestReplicationFactor(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 3, ReplicationFactor: 3})
	cli := c.Client()
	cli.Put("replicated", []byte("ck"), []byte("v"))
	c.FlushAll()
	// With rf = nodes every node must hold the partition.
	for _, n := range c.Nodes {
		cells, err := n.Engine().ScanPartition("replicated", nil, nil)
		if err != nil || len(cells) != 1 {
			t.Fatalf("node %d: cells=%d err=%v", n.ID(), len(cells), err)
		}
	}
}

func TestCountByType(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 2})
	cli := c.Client()
	for i := 0; i < 60; i++ {
		// First byte of the value is the element type.
		cli.Put("cube", []byte{byte(i)}, []byte{byte(i % 3), 0xAA})
	}
	counts, elements, err := cli.Count("cube")
	if err != nil {
		t.Fatal(err)
	}
	if elements != 60 {
		t.Fatalf("elements %d want 60", elements)
	}
	for ty := uint8(0); ty < 3; ty++ {
		if counts[ty] != 20 {
			t.Fatalf("type %d count %d want 20", ty, counts[ty])
		}
	}
}

func loadPartitions(t *testing.T, c *Cluster, nParts, elemsPer int) []string {
	t.Helper()
	cli := c.Client()
	pks := make([]string, nParts)
	for p := 0; p < nParts; p++ {
		pk := fmt.Sprintf("cube-%04d", p)
		pks[p] = pk
		for e := 0; e < elemsPer; e++ {
			ck := []byte(fmt.Sprintf("%06d", e))
			if err := cli.Put(pk, ck, []byte{byte(e % 4), 1, 2, 3}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	return pks
}

func TestCountAllAggregates(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 4})
	pks := loadPartitions(t, c, 40, 25) // 1000 elements total
	res, err := c.Client().CountAll(pks, MasterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elements != 1000 {
		t.Fatalf("elements %d want 1000", res.Elements)
	}
	var sum uint64
	for _, n := range res.Counts {
		sum += n
	}
	if sum != 1000 {
		t.Fatalf("counts sum %d want 1000", sum)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	if res.Duration <= 0 || res.SendDuration <= 0 {
		t.Fatal("durations not measured")
	}
}

func TestCountAllTraceIsComplete(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 2})
	pks := loadPartitions(t, c, 10, 10)
	res, err := c.Client().CountAll(pks, MasterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Four spans per request.
	if res.Trace.Len() != 4*len(pks) {
		t.Fatalf("trace has %d spans want %d", res.Trace.Len(), 4*len(pks))
	}
	// Each request appears once in the DB stage; ops match the trace.
	ops := res.Trace.OpsPerNode()
	totalOps := 0
	for _, n := range ops {
		totalOps += n
	}
	if totalOps != len(pks) {
		t.Fatalf("trace DB ops %d want %d", totalOps, len(pks))
	}
	for node, n := range res.OpsPerNode {
		if ops[node] != n {
			t.Fatalf("node %d: trace ops %d vs result ops %d", node, ops[node], n)
		}
	}
}

func TestCountAllOpsMatchNodeCounters(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 4})
	pks := loadPartitions(t, c, 32, 5)
	res, err := c.Client().CountAll(pks, MasterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes {
		if got := n.Served.Load(); got != int64(res.OpsPerNode[int(n.ID())]) {
			t.Fatalf("node %d served %d vs master saw %d", n.ID(), got, res.OpsPerNode[int(n.ID())])
		}
	}
}

func TestVerboseMasterSlower(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 2, Codec: wire.SlowCodec{}})
	pks := loadPartitions(t, c, 200, 2)
	var log bytes.Buffer
	verbose, err := c.Client().CountAll(pks, MasterOptions{Verbose: true, LogSink: &log})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(log.String(), "crc=") {
		t.Fatal("verbose mode produced no log lines")
	}
	plain, err := c.Client().CountAll(pks, MasterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if verbose.Elements != plain.Elements {
		t.Fatalf("verbose changed results: %d vs %d", verbose.Elements, plain.Elements)
	}
	// Verbose mode must cost more master send time. Wall-clock noise on
	// tiny runs is real, so only require it not be dramatically faster.
	if verbose.SendDuration < plain.SendDuration/2 {
		t.Fatalf("verbose send %v unexpectedly below plain %v", verbose.SendDuration, plain.SendDuration)
	}
}

func TestSlowCodecSendsMoreBytes(t *testing.T) {
	fast := startTest(t, LocalOptions{Nodes: 2})
	pksF := loadPartitions(t, fast, 50, 2)
	resFast, err := fast.Client().CountAll(pksF, MasterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	slow := startTest(t, LocalOptions{Nodes: 2, Codec: wire.SlowCodec{}})
	pksS := loadPartitions(t, slow, 50, 2)
	resSlow, err := slow.Client().CountAll(pksS, MasterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resSlow.BytesSent < 3*resFast.BytesSent {
		t.Fatalf("slow codec sent %dB vs fast %dB, want >= 3x", resSlow.BytesSent, resFast.BytesSent)
	}
}

func imbalanceOf(ops map[int]int, nodes int) float64 {
	total, max := 0, 0
	for _, n := range ops {
		total += n
		if n > max {
			max = n
		}
	}
	mean := float64(total) / float64(nodes)
	return (float64(max) - mean) / mean
}

func TestReplicaSelectionBalancesLoad(t *testing.T) {
	// With rf=3 over 4 nodes, least-issued replica selection must beat
	// primary-only routing on load balance.
	c := startTest(t, LocalOptions{Nodes: 4, ReplicationFactor: 3})
	pks := loadPartitions(t, c, 60, 5)

	primary, err := c.Client().CountAll(pks, MasterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	selected, err := c.Client().CountAll(pks, MasterOptions{SelectReplica: true})
	if err != nil {
		t.Fatal(err)
	}
	if selected.Elements != primary.Elements {
		t.Fatalf("replica selection changed results: %d vs %d", selected.Elements, primary.Elements)
	}
	pImb := imbalanceOf(primary.OpsPerNode, 4)
	sImb := imbalanceOf(selected.OpsPerNode, 4)
	if sImb >= pImb {
		t.Fatalf("replica selection imbalance %.2f not below primary %.2f", sImb, pImb)
	}
	// With 60 keys and 3-of-4 replicas, least-issued should be nearly
	// perfectly balanced.
	if sImb > 0.15 {
		t.Fatalf("replica-selected imbalance %.2f, want near zero", sImb)
	}
}

func TestReplicaSelectionWithoutReplicasIsSafe(t *testing.T) {
	// rf=1: selection has no choices; results must still be correct.
	c := startTest(t, LocalOptions{Nodes: 3})
	pks := loadPartitions(t, c, 20, 4)
	res, err := c.Client().CountAll(pks, MasterOptions{SelectReplica: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elements != 80 || res.Errors != 0 {
		t.Fatalf("elements %d errors %d", res.Elements, res.Errors)
	}
}

func TestCountAllNodeFailure(t *testing.T) {
	// Killing one node mid-cluster must surface as per-request errors,
	// not a hang or a wrong total.
	c := startTest(t, LocalOptions{Nodes: 3})
	pks := loadPartitions(t, c, 30, 2)
	victim := c.Nodes[1]
	victim.Close()
	res, err := c.Client().CountAll(pks, MasterOptions{})
	if err != nil {
		// The send itself may fail if the victim owned the first key;
		// that is an acceptable failure mode too.
		return
	}
	expectedLost := 0
	for _, pk := range pks {
		if c.Ring.Primary(pk) == victim.ID() {
			expectedLost++
		}
	}
	if res.Errors != expectedLost {
		t.Fatalf("errors %d want %d (keys owned by dead node)", res.Errors, expectedLost)
	}
	if res.Elements != uint64(2*(len(pks)-expectedLost)) {
		t.Fatalf("elements %d inconsistent with %d lost partitions", res.Elements, expectedLost)
	}
}

func TestStageSpansAreOrdered(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 2})
	pks := loadPartitions(t, c, 20, 10)
	res, err := c.Client().CountAll(pks, MasterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	byReq := map[uint64]map[stages.Stage]stages.Span{}
	for _, s := range res.Trace.Spans() {
		if byReq[s.RequestID] == nil {
			byReq[s.RequestID] = map[stages.Stage]stages.Span{}
		}
		byReq[s.RequestID][s.Stage] = s
	}
	for id, spans := range byReq {
		m2s, q, db, s2m := spans[stages.MasterToSlave], spans[stages.InQueue], spans[stages.InDB], spans[stages.SlaveToMaster]
		if !(m2s.End <= q.Start+1 && q.End <= db.Start+1 && db.End <= s2m.Start+1) {
			t.Fatalf("request %d: stages out of order: %v %v %v %v", id, m2s, q, db, s2m)
		}
	}
}

func TestTCPNode(t *testing.T) {
	l, err := transport.ListenTCP("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	node, err := StartNode(l, NodeOptions{ID: 0, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	conn, err := transport.DialTCP(l.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cli := transport.NewClient(conn)
	defer cli.Close()
	codec := wire.FastCodec{}
	payload, _ := codec.Marshal(&wire.PutRequest{PK: "tcp", CK: []byte("ck"), Value: []byte{7}})
	resp, err := cli.Call(payload)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := codec.Unmarshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	if pr := msg.(*wire.PutResponse); pr.ErrMsg != "" {
		t.Fatal(pr.ErrMsg)
	}
	v, found, _ := node.Engine().Get("tcp", []byte("ck"))
	if !found || v[0] != 7 {
		t.Fatalf("value not stored over TCP: %v %v", v, found)
	}
}

func TestStartLocalValidation(t *testing.T) {
	if _, err := StartLocal(LocalOptions{Nodes: 0}); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := StartTCP(LocalOptions{Nodes: 0}); err == nil {
		t.Fatal("zero TCP nodes accepted")
	}
}

func TestTCPClusterEndToEnd(t *testing.T) {
	c, err := StartTCP(LocalOptions{Nodes: 3, Storage: storage.Options{DisableWAL: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cli := c.Client()
	pks := make([]string, 24)
	for p := range pks {
		pk := fmt.Sprintf("tcp-%03d", p)
		pks[p] = pk
		for e := 0; e < 10; e++ {
			if err := cli.Put(pk, []byte{byte(e)}, []byte{byte(e % 2)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	res, err := cli.CountAll(pks, MasterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elements != 240 || res.Errors != 0 {
		t.Fatalf("elements %d errors %d over TCP", res.Elements, res.Errors)
	}
}

func BenchmarkCountAll100Keys4Nodes(b *testing.B) {
	c, err := StartLocal(LocalOptions{Nodes: 4, Storage: storage.Options{DisableWAL: true}})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	cli := c.Client()
	pks := make([]string, 100)
	for p := range pks {
		pk := fmt.Sprintf("cube-%04d", p)
		pks[p] = pk
		for e := 0; e < 100; e++ {
			cli.Put(pk, []byte(fmt.Sprintf("%06d", e)), []byte{byte(e % 4)})
		}
	}
	c.FlushAll()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.CountAll(pks, MasterOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
