package cluster

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"scalekv/internal/row"
	"scalekv/internal/stages"
	"scalekv/internal/storage"
	"scalekv/internal/transport"
	"scalekv/internal/wire"
)

func startTest(t *testing.T, opts LocalOptions) *Cluster {
	t.Helper()
	if opts.Storage.FlushThreshold == 0 {
		opts.Storage = storage.Options{DisableWAL: true}
	}
	c, err := StartLocal(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestPutGetAcrossNodes(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 4})
	cli := c.Client()
	for i := 0; i < 50; i++ {
		pk := fmt.Sprintf("part-%d", i)
		if err := cli.Put(pk, []byte("ck"), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		pk := fmt.Sprintf("part-%d", i)
		v, found, err := cli.Get(pk, []byte("ck"))
		if err != nil || !found {
			t.Fatalf("get %s: %v found=%v", pk, err, found)
		}
		if string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get %s = %q", pk, v)
		}
	}
	// Keys must actually spread across nodes.
	nodesWithData := 0
	for _, n := range c.Nodes {
		if len(n.Engine().Partitions()) > 0 {
			nodesWithData++
		}
	}
	if nodesWithData < 3 {
		t.Fatalf("only %d/4 nodes hold data", nodesWithData)
	}
}

func TestGetAbsent(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 2})
	_, found, err := c.Client().Get("ghost", []byte("ck"))
	if err != nil || found {
		t.Fatalf("absent get: %v found=%v", err, found)
	}
}

func TestScan(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 3})
	cli := c.Client()
	for i := 0; i < 20; i++ {
		cli.Put("scanpart", []byte{byte(i)}, []byte{byte(i)})
	}
	cells, err := cli.Scan("scanpart", []byte{5}, []byte{10})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 5 {
		t.Fatalf("scan returned %d cells want 5", len(cells))
	}
	all, err := cli.Scan("scanpart", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 20 {
		t.Fatalf("unbounded scan returned %d want 20", len(all))
	}
}

func TestReplicationFactor(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 3, ReplicationFactor: 3})
	cli := c.Client()
	cli.Put("replicated", []byte("ck"), []byte("v"))
	c.FlushAll()
	// With rf = nodes every node must hold the partition.
	for _, n := range c.Nodes {
		cells, err := n.Engine().ScanPartition("replicated", nil, nil)
		if err != nil || len(cells) != 1 {
			t.Fatalf("node %d: cells=%d err=%v", n.ID(), len(cells), err)
		}
	}
}

func TestCountByType(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 2})
	cli := c.Client()
	for i := 0; i < 60; i++ {
		// First byte of the value is the element type.
		cli.Put("cube", []byte{byte(i)}, []byte{byte(i % 3), 0xAA})
	}
	counts, elements, err := cli.Count("cube")
	if err != nil {
		t.Fatal(err)
	}
	if elements != 60 {
		t.Fatalf("elements %d want 60", elements)
	}
	for ty := uint8(0); ty < 3; ty++ {
		if counts[ty] != 20 {
			t.Fatalf("type %d count %d want 20", ty, counts[ty])
		}
	}
}

func loadPartitions(t *testing.T, c *Cluster, nParts, elemsPer int) []string {
	t.Helper()
	cli := c.Client()
	pks := make([]string, nParts)
	for p := 0; p < nParts; p++ {
		pk := fmt.Sprintf("cube-%04d", p)
		pks[p] = pk
		for e := 0; e < elemsPer; e++ {
			ck := []byte(fmt.Sprintf("%06d", e))
			if err := cli.Put(pk, ck, []byte{byte(e % 4), 1, 2, 3}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	return pks
}

func TestCountAllAggregates(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 4})
	pks := loadPartitions(t, c, 40, 25) // 1000 elements total
	res, err := c.Client().CountAll(pks, MasterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elements != 1000 {
		t.Fatalf("elements %d want 1000", res.Elements)
	}
	var sum uint64
	for _, n := range res.Counts {
		sum += n
	}
	if sum != 1000 {
		t.Fatalf("counts sum %d want 1000", sum)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	if res.Duration <= 0 || res.SendDuration <= 0 {
		t.Fatal("durations not measured")
	}
}

func TestCountAllTraceIsComplete(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 2})
	pks := loadPartitions(t, c, 10, 10)
	res, err := c.Client().CountAll(pks, MasterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Four spans per request.
	if res.Trace.Len() != 4*len(pks) {
		t.Fatalf("trace has %d spans want %d", res.Trace.Len(), 4*len(pks))
	}
	// Each request appears once in the DB stage; ops match the trace.
	ops := res.Trace.OpsPerNode()
	totalOps := 0
	for _, n := range ops {
		totalOps += n
	}
	if totalOps != len(pks) {
		t.Fatalf("trace DB ops %d want %d", totalOps, len(pks))
	}
	for node, n := range res.OpsPerNode {
		if ops[node] != n {
			t.Fatalf("node %d: trace ops %d vs result ops %d", node, ops[node], n)
		}
	}
}

func TestCountAllOpsMatchNodeCounters(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 4})
	pks := loadPartitions(t, c, 32, 5)
	res, err := c.Client().CountAll(pks, MasterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes {
		if got := n.Served.Load(); got != int64(res.OpsPerNode[int(n.ID())]) {
			t.Fatalf("node %d served %d vs master saw %d", n.ID(), got, res.OpsPerNode[int(n.ID())])
		}
	}
}

func TestVerboseMasterSlower(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 2, Codec: wire.SlowCodec{}})
	pks := loadPartitions(t, c, 200, 2)
	var log bytes.Buffer
	verbose, err := c.Client().CountAll(pks, MasterOptions{Verbose: true, LogSink: &log})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(log.String(), "crc=") {
		t.Fatal("verbose mode produced no log lines")
	}
	plain, err := c.Client().CountAll(pks, MasterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if verbose.Elements != plain.Elements {
		t.Fatalf("verbose changed results: %d vs %d", verbose.Elements, plain.Elements)
	}
	// Verbose mode must cost more master send time. Wall-clock noise on
	// tiny runs is real (especially under -race in CI), so only require
	// it not be dramatically faster, and retry before failing: a single
	// scheduler hiccup on the plain run must not red-flag the suite.
	for attempt := 0; verbose.SendDuration < plain.SendDuration/2; attempt++ {
		if attempt == 3 {
			t.Fatalf("verbose send %v consistently below plain %v", verbose.SendDuration, plain.SendDuration)
		}
		if verbose, err = c.Client().CountAll(pks, MasterOptions{Verbose: true, LogSink: &log}); err != nil {
			t.Fatal(err)
		}
		if plain, err = c.Client().CountAll(pks, MasterOptions{}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSlowCodecSendsMoreBytes(t *testing.T) {
	fast := startTest(t, LocalOptions{Nodes: 2})
	pksF := loadPartitions(t, fast, 50, 2)
	resFast, err := fast.Client().CountAll(pksF, MasterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	slow := startTest(t, LocalOptions{Nodes: 2, Codec: wire.SlowCodec{}})
	pksS := loadPartitions(t, slow, 50, 2)
	resSlow, err := slow.Client().CountAll(pksS, MasterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resSlow.BytesSent < 3*resFast.BytesSent {
		t.Fatalf("slow codec sent %dB vs fast %dB, want >= 3x", resSlow.BytesSent, resFast.BytesSent)
	}
}

func imbalanceOf(ops map[int]int, nodes int) float64 {
	total, max := 0, 0
	for _, n := range ops {
		total += n
		if n > max {
			max = n
		}
	}
	mean := float64(total) / float64(nodes)
	return (float64(max) - mean) / mean
}

func TestReplicaSelectionBalancesLoad(t *testing.T) {
	// With rf=3 over 4 nodes, least-issued replica selection must beat
	// primary-only routing on load balance.
	c := startTest(t, LocalOptions{Nodes: 4, ReplicationFactor: 3})
	pks := loadPartitions(t, c, 60, 5)

	primary, err := c.Client().CountAll(pks, MasterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	selected, err := c.Client().CountAll(pks, MasterOptions{SelectReplica: true})
	if err != nil {
		t.Fatal(err)
	}
	if selected.Elements != primary.Elements {
		t.Fatalf("replica selection changed results: %d vs %d", selected.Elements, primary.Elements)
	}
	pImb := imbalanceOf(primary.OpsPerNode, 4)
	sImb := imbalanceOf(selected.OpsPerNode, 4)
	if sImb >= pImb {
		t.Fatalf("replica selection imbalance %.2f not below primary %.2f", sImb, pImb)
	}
	// With 60 keys and 3-of-4 replicas, least-issued should be nearly
	// perfectly balanced.
	if sImb > 0.15 {
		t.Fatalf("replica-selected imbalance %.2f, want near zero", sImb)
	}
}

func TestReplicaSelectionWithoutReplicasIsSafe(t *testing.T) {
	// rf=1: selection has no choices; results must still be correct.
	c := startTest(t, LocalOptions{Nodes: 3})
	pks := loadPartitions(t, c, 20, 4)
	res, err := c.Client().CountAll(pks, MasterOptions{SelectReplica: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elements != 80 || res.Errors != 0 {
		t.Fatalf("elements %d errors %d", res.Elements, res.Errors)
	}
}

func TestCountAllNodeFailure(t *testing.T) {
	// Killing one node mid-cluster must surface as per-request errors,
	// not a hang or a wrong total.
	c := startTest(t, LocalOptions{Nodes: 3})
	pks := loadPartitions(t, c, 30, 2)
	victim := c.Nodes[1]
	victim.Close()
	res, err := c.Client().CountAll(pks, MasterOptions{})
	if err != nil {
		// The send itself may fail if the victim owned the first key;
		// that is an acceptable failure mode too.
		return
	}
	expectedLost := 0
	for _, pk := range pks {
		if c.Ring.Primary(pk) == victim.ID() {
			expectedLost++
		}
	}
	if res.Errors != expectedLost {
		t.Fatalf("errors %d want %d (keys owned by dead node)", res.Errors, expectedLost)
	}
	if res.Elements != uint64(2*(len(pks)-expectedLost)) {
		t.Fatalf("elements %d inconsistent with %d lost partitions", res.Elements, expectedLost)
	}
}

func TestStageSpansAreOrdered(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 2})
	pks := loadPartitions(t, c, 20, 10)
	res, err := c.Client().CountAll(pks, MasterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	byReq := map[uint64]map[stages.Stage]stages.Span{}
	for _, s := range res.Trace.Spans() {
		if byReq[s.RequestID] == nil {
			byReq[s.RequestID] = map[stages.Stage]stages.Span{}
		}
		byReq[s.RequestID][s.Stage] = s
	}
	for id, spans := range byReq {
		m2s, q, db, s2m := spans[stages.MasterToSlave], spans[stages.InQueue], spans[stages.InDB], spans[stages.SlaveToMaster]
		if !(m2s.End <= q.Start+1 && q.End <= db.Start+1 && db.End <= s2m.Start+1) {
			t.Fatalf("request %d: stages out of order: %v %v %v %v", id, m2s, q, db, s2m)
		}
	}
}

func TestTCPNode(t *testing.T) {
	l, err := transport.ListenTCP("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	node, err := StartNode(l, NodeOptions{ID: 0, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	conn, err := transport.DialTCP(l.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cli := transport.NewClient(conn)
	defer cli.Close()
	codec := wire.FastCodec{}
	payload, _ := codec.Marshal(&wire.PutRequest{PK: "tcp", CK: []byte("ck"), Value: []byte{7}})
	resp, err := cli.Call(payload)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := codec.Unmarshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	if pr := msg.(*wire.PutResponse); pr.ErrMsg != "" {
		t.Fatal(pr.ErrMsg)
	}
	v, found, _ := node.Engine().Get("tcp", []byte("ck"))
	if !found || v[0] != 7 {
		t.Fatalf("value not stored over TCP: %v %v", v, found)
	}
}

func TestStartLocalValidation(t *testing.T) {
	if _, err := StartLocal(LocalOptions{Nodes: 0}); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := StartTCP(LocalOptions{Nodes: 0}); err == nil {
		t.Fatal("zero TCP nodes accepted")
	}
}

func TestTCPClusterEndToEnd(t *testing.T) {
	c, err := StartTCP(LocalOptions{Nodes: 3, Storage: storage.Options{DisableWAL: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cli := c.Client()
	pks := make([]string, 24)
	for p := range pks {
		pk := fmt.Sprintf("tcp-%03d", p)
		pks[p] = pk
		for e := 0; e < 10; e++ {
			if err := cli.Put(pk, []byte{byte(e)}, []byte{byte(e % 2)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	res, err := cli.CountAll(pks, MasterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elements != 240 || res.Errors != 0 {
		t.Fatalf("elements %d errors %d over TCP", res.Elements, res.Errors)
	}
}

// batchTestEntries builds a deterministic multi-partition workload.
func batchTestEntries(nParts, elemsPer int) []row.Entry {
	entries := make([]row.Entry, 0, nParts*elemsPer)
	for p := 0; p < nParts; p++ {
		pk := fmt.Sprintf("cube-%04d", p)
		for e := 0; e < elemsPer; e++ {
			entries = append(entries, row.Entry{
				PK: pk, CK: []byte(fmt.Sprintf("%06d", e)),
				Value: []byte{byte(e % 4), byte(p), byte(e)},
			})
		}
	}
	return entries
}

// engineDump captures every node's on-disk state as node -> pk -> cells.
func engineDump(t *testing.T, c *Cluster) map[int]map[string][]row.Cell {
	t.Helper()
	out := make(map[int]map[string][]row.Cell)
	for _, n := range c.Nodes {
		parts := make(map[string][]row.Cell)
		for _, pk := range n.Engine().Partitions() {
			cells, err := n.Engine().ScanPartition(pk, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			// Normalize versions: two load paths stamp the same logical
			// writes in different per-node arrival orders, so equality is
			// over placement and content, not stamps.
			norm := make([]row.Cell, len(cells))
			for i, c := range cells {
				c.Ver = row.Version{}
				norm[i] = c
			}
			parts[pk] = norm
		}
		out[int(n.ID())] = parts
	}
	return out
}

func TestBatchedEqualsSinglePuts(t *testing.T) {
	// N single Puts and one batched flush must leave identical engine
	// state on every node — including replica placement under RF>1.
	for _, rf := range []int{1, 3} {
		t.Run(fmt.Sprintf("rf=%d", rf), func(t *testing.T) {
			entries := batchTestEntries(30, 10)

			single := startTest(t, LocalOptions{Nodes: 4, ReplicationFactor: rf})
			for _, e := range entries {
				if err := single.Client().Put(e.PK, e.CK, e.Value); err != nil {
					t.Fatal(err)
				}
			}

			batched := startTest(t, LocalOptions{Nodes: 4, ReplicationFactor: rf})
			bt := batched.Client().NewBatcher(BatcherOptions{MaxEntries: 16})
			for _, e := range entries {
				if err := bt.Put(e.PK, e.CK, e.Value); err != nil {
					t.Fatal(err)
				}
			}
			if err := bt.Close(); err != nil {
				t.Fatal(err)
			}

			if err := single.FlushAll(); err != nil {
				t.Fatal(err)
			}
			if err := batched.FlushAll(); err != nil {
				t.Fatal(err)
			}
			want, got := engineDump(t, single), engineDump(t, batched)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("batched state diverged from single-put state\nwant: %d nodes %v\ngot:  %d nodes %v",
					len(want), nodePartCounts(want), len(got), nodePartCounts(got))
			}
		})
	}
}

func nodePartCounts(dump map[int]map[string][]row.Cell) map[int]int {
	out := make(map[int]int)
	for node, parts := range dump {
		out[node] = len(parts)
	}
	return out
}

func TestClientPutBatch(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 3, ReplicationFactor: 2})
	entries := batchTestEntries(20, 5)
	if err := c.Client().PutBatch(entries); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		v, found, err := c.Client().Get(e.PK, e.CK)
		if err != nil || !found || !bytes.Equal(v, e.Value) {
			t.Fatalf("get %s/%s: %v found=%v v=%v", e.PK, e.CK, err, found, v)
		}
	}
	// Replica placement: every replica of each partition must hold it.
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 20; p++ {
		pk := fmt.Sprintf("cube-%04d", p)
		for _, node := range c.Ring.Replicas(pk, 2) {
			cells, err := c.Nodes[node].Engine().ScanPartition(pk, nil, nil)
			if err != nil || len(cells) != 5 {
				t.Fatalf("replica %d of %s holds %d cells: %v", node, pk, len(cells), err)
			}
		}
	}
	if err := c.Client().PutBatch(nil); err != nil {
		t.Fatal("empty batch errored:", err)
	}
}

func TestBatcherFlushesOnEntryThreshold(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 1})
	bt := c.Client().NewBatcher(BatcherOptions{MaxEntries: 8})
	// 7 entries: below threshold, nothing ships.
	for i := 0; i < 7; i++ {
		if err := bt.Put("part", []byte{byte(i)}, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if pending, inflight := bt.Pending(); pending != 7 || inflight != 0 {
		t.Fatalf("pending=%d inflight=%d want 7,0", pending, inflight)
	}
	if n := len(c.Nodes[0].Engine().Partitions()); n != 0 {
		t.Fatalf("engine saw data before threshold: %d partitions", n)
	}
	// The 8th entry crosses the threshold and ships the batch.
	if err := bt.Put("part", []byte{7}, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if pending, _ := bt.Pending(); pending != 0 {
		t.Fatalf("pending=%d after threshold flush", pending)
	}
	if err := bt.Close(); err != nil {
		t.Fatal(err)
	}
	cells, err := c.Nodes[0].Engine().ScanPartition("part", nil, nil)
	if err != nil || len(cells) != 8 {
		t.Fatalf("engine holds %d cells want 8: %v", len(cells), err)
	}
}

func TestBatcherFlushesOnByteThreshold(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 1})
	bt := c.Client().NewBatcher(BatcherOptions{MaxEntries: 1 << 20, MaxBytes: 1 << 10})
	big := make([]byte, 600)
	bt.Put("part", []byte{0}, big)
	if pending, _ := bt.Pending(); pending != 1 {
		t.Fatalf("pending=%d want 1", pending)
	}
	bt.Put("part", []byte{1}, big) // crosses 1KB
	if pending, _ := bt.Pending(); pending != 0 {
		t.Fatalf("pending=%d after byte-threshold flush", pending)
	}
	if err := bt.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBatcherBoundedWindow(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 1})
	bt := c.Client().NewBatcher(BatcherOptions{MaxEntries: 2, MaxInFlight: 2})
	// Many threshold flushes against a window of 2: Add must block on the
	// oldest ack rather than queueing unbounded in-flight batches.
	for i := 0; i < 100; i++ {
		if err := bt.Put("part", []byte{byte(i / 10), byte(i % 10)}, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if _, inflight := bt.Pending(); inflight > 2 {
			t.Fatalf("window exceeded: %d in flight", inflight)
		}
	}
	if err := bt.Close(); err != nil {
		t.Fatal(err)
	}
	cells, err := c.Nodes[0].Engine().ScanPartition("part", nil, nil)
	if err != nil || len(cells) != 100 {
		t.Fatalf("engine holds %d cells want 100: %v", len(cells), err)
	}
}

func TestBatcherErrorIsSticky(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 2})
	bt := c.Client().NewBatcher(BatcherOptions{MaxEntries: 4})
	c.Nodes[0].Close()
	c.Nodes[1].Close()
	var sawErr error
	for i := 0; i < 200 && sawErr == nil; i++ {
		sawErr = bt.Put(fmt.Sprintf("part-%d", i), []byte{0}, []byte("v"))
	}
	if sawErr == nil {
		sawErr = bt.Flush()
	}
	if sawErr == nil {
		t.Fatal("writes against dead nodes reported no error")
	}
	if err := bt.Close(); err == nil {
		t.Fatal("Close cleared the sticky error")
	}
}

func TestBulkLoadParallelWorkers(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 3, ReplicationFactor: 2})
	entries := batchTestEntries(40, 8)
	if err := c.Client().BulkLoad(entries, 4, BatcherOptions{MaxEntries: 16}); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		v, found, err := c.Client().Get(e.PK, e.CK)
		if err != nil || !found || !bytes.Equal(v, e.Value) {
			t.Fatalf("get %s/%s after bulk load: %v found=%v", e.PK, e.CK, err, found)
		}
	}
	// Single-worker path.
	c2 := startTest(t, LocalOptions{Nodes: 2})
	if err := c2.Client().BulkLoad(entries[:50], 1, BatcherOptions{}); err != nil {
		t.Fatal(err)
	}
	if v, found, _ := c2.Client().Get(entries[0].PK, entries[0].CK); !found || !bytes.Equal(v, entries[0].Value) {
		t.Fatal("single-worker bulk load lost data")
	}
}

func TestBatcherReusedScratchBuffersAreCopied(t *testing.T) {
	// Callers may reuse one scratch buffer across Puts; the batcher must
	// copy, or every buffered entry aliases the last iteration's bytes.
	c := startTest(t, LocalOptions{Nodes: 1})
	bt := c.Client().NewBatcher(BatcherOptions{MaxEntries: 64})
	ck := make([]byte, 1)
	val := make([]byte, 1)
	for i := 0; i < 32; i++ {
		ck[0] = byte(i)
		val[0] = byte(100 + i)
		if err := bt.Put("scratch", ck, val); err != nil {
			t.Fatal(err)
		}
	}
	if err := bt.Close(); err != nil {
		t.Fatal(err)
	}
	cells, err := c.Nodes[0].Engine().ScanPartition("scratch", nil, nil)
	if err != nil || len(cells) != 32 {
		t.Fatalf("engine holds %d cells want 32: %v", len(cells), err)
	}
	for i, cell := range cells {
		if cell.CK[0] != byte(i) || cell.Value[0] != byte(100+i) {
			t.Fatalf("cell %d corrupted by buffer reuse: ck=%v value=%v", i, cell.CK, cell.Value)
		}
	}
}

func TestBatcherPutAfterCloseErrors(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 1})
	bt := c.Client().NewBatcher(BatcherOptions{})
	if err := bt.Put("p", []byte{1}, []byte{2}); err != nil {
		t.Fatal(err)
	}
	if err := bt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := bt.Put("p", []byte{2}, []byte{3}); err == nil {
		t.Fatal("Put on a closed batcher succeeded")
	}
	if err := bt.Close(); err != nil {
		t.Fatalf("second Close errored: %v", err)
	}
}

func TestMultiGet(t *testing.T) {
	c := startTest(t, LocalOptions{Nodes: 4})
	entries := batchTestEntries(25, 4)
	if err := c.Client().PutBatch(entries); err != nil {
		t.Fatal(err)
	}
	keys := make([]wire.GetKey, 0, len(entries)+1)
	for _, e := range entries {
		keys = append(keys, wire.GetKey{PK: e.PK, CK: e.CK})
	}
	keys = append(keys, wire.GetKey{PK: "ghost", CK: []byte{0}})
	values, err := c.Client().MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != len(keys) {
		t.Fatalf("%d values for %d keys", len(values), len(keys))
	}
	for i, e := range entries {
		if !values[i].Found || !bytes.Equal(values[i].Value, e.Value) {
			t.Fatalf("key %d: found=%v value=%v want %v", i, values[i].Found, values[i].Value, e.Value)
		}
	}
	if values[len(keys)-1].Found {
		t.Fatal("absent key reported found")
	}
	empty, err := c.Client().MultiGet(nil)
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty multi-get: %v %v", empty, err)
	}
}

func TestConcurrentReplicaPutAllReplicasLand(t *testing.T) {
	// The concurrent fan-out must still write every replica.
	c := startTest(t, LocalOptions{Nodes: 4, ReplicationFactor: 3})
	for i := 0; i < 30; i++ {
		pk := fmt.Sprintf("part-%d", i)
		if err := c.Client().Put(pk, []byte("ck"), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		pk := fmt.Sprintf("part-%d", i)
		for _, node := range c.Ring.Replicas(pk, 3) {
			cells, err := c.Nodes[node].Engine().ScanPartition(pk, nil, nil)
			if err != nil || len(cells) != 1 {
				t.Fatalf("replica %d of %s: cells=%d err=%v", node, pk, len(cells), err)
			}
		}
	}
}

func TestBatchOverTCP(t *testing.T) {
	c, err := StartTCP(LocalOptions{Nodes: 2, ReplicationFactor: 2, Storage: storage.Options{DisableWAL: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bt := c.Client().NewBatcher(BatcherOptions{MaxEntries: 32})
	entries := batchTestEntries(10, 8)
	for _, e := range entries {
		if err := bt.Put(e.PK, e.CK, e.Value); err != nil {
			t.Fatal(err)
		}
	}
	if err := bt.Close(); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		v, found, err := c.Client().Get(e.PK, e.CK)
		if err != nil || !found || !bytes.Equal(v, e.Value) {
			t.Fatalf("get over TCP %s/%s: %v found=%v", e.PK, e.CK, err, found)
		}
	}
}

func BenchmarkCountAll100Keys4Nodes(b *testing.B) {
	c, err := StartLocal(LocalOptions{Nodes: 4, Storage: storage.Options{DisableWAL: true}})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	cli := c.Client()
	pks := make([]string, 100)
	for p := range pks {
		pk := fmt.Sprintf("cube-%04d", p)
		pks[p] = pk
		for e := 0; e < 100; e++ {
			cli.Put(pk, []byte(fmt.Sprintf("%06d", e)), []byte{byte(e % 4)})
		}
	}
	c.FlushAll()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.CountAll(pks, MasterOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
