package cluster

import (
	"errors"
	"sync"

	"scalekv/internal/hashring"
	"scalekv/internal/row"
)

// BatcherOptions tunes a Batcher.
type BatcherOptions struct {
	// MaxEntries flushes a node's buffer once it holds this many entries.
	// 0 means 64.
	MaxEntries int
	// MaxBytes flushes a node's buffer once its payload reaches this many
	// bytes, so huge values do not accumulate into huge frames. 0 means
	// 256KB.
	MaxBytes int
	// MaxInFlight bounds the window of unacknowledged batch RPCs per
	// node; an Add that would exceed it waits for the oldest batch to be
	// acknowledged. 0 means 4.
	MaxInFlight int
}

func (o BatcherOptions) withDefaults() BatcherOptions {
	if o.MaxEntries <= 0 {
		o.MaxEntries = 64
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = 256 << 10
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 4
	}
	return o
}

// Batcher accumulates writes and ships them as replica-aware batched
// RPCs — the aggregated-put path that amortizes the per-message
// serialization and round-trip costs the paper's Section V-B profiles.
// Entries are grouped by ring destination (every replica of their
// partition); a node's buffer flushes when it reaches MaxEntries or
// MaxBytes, and up to MaxInFlight flushed batches per node stay in
// flight asynchronously over the pipelined transport.
//
// A Batcher is not safe for concurrent use; create one per writer
// goroutine over the shared Client (which is).
//
// Errors are sticky: the first error from any acknowledgement is
// reported by the failing call and by every later Add/Flush, so a
// bulk-load loop can check errors only at Flush without losing the
// cause.
type Batcher struct {
	c    *Client
	opts BatcherOptions

	pending  map[hashring.NodeID]*nodeBuffer
	inflight int // total unacknowledged batches across nodes
	err      error
}

type nodeBuffer struct {
	entries []row.Entry
	bytes   int
	// epoch is the topology version the buffered entries were routed
	// under. Batches are SENT with this epoch, not the current one: if
	// the ring moved between buffering and flushing, the node's epoch
	// check rejects the stale routing and the resend path re-routes —
	// stamping the flush-time epoch instead would make a mis-routed
	// batch look current and silently land cells on non-owners.
	epoch    uint64
	inflight []inflightBatch // oldest first
}

// inflightBatch keeps the entries of an unacknowledged batch so a
// retryable failure (epoch flip mid-load, node handoff) can resend them
// through the client's re-routing write path instead of failing the
// load.
type inflightBatch struct {
	ch      <-chan []byte
	entries []row.Entry
}

// NewBatcher creates a batcher over the client's ring and connections.
func (c *Client) NewBatcher(opts BatcherOptions) *Batcher {
	return &Batcher{
		c:       c,
		opts:    opts.withDefaults(),
		pending: make(map[hashring.NodeID]*nodeBuffer),
	}
}

// Put buffers one cell for every replica of its partition, flushing any
// destination buffer that crosses a threshold. The ck and value bytes
// are copied, so callers may reuse scratch buffers between calls — the
// same contract as Client.Put, which marshals immediately.
func (b *Batcher) Put(pk string, ck, value []byte) error {
	if b.err != nil {
		return b.err
	}
	if b.pending == nil {
		return errors.New("cluster: batcher is closed")
	}
	e := row.Entry{
		PK:    pk,
		CK:    append([]byte(nil), ck...),
		Value: append([]byte(nil), value...),
	}
	t := b.c.topo()
	for _, node := range t.Replicas(pk, b.c.rf) {
		buf := b.pending[node]
		if buf == nil {
			buf = &nodeBuffer{}
			b.pending[node] = buf
		}
		if len(buf.entries) > 0 && buf.epoch != t.Epoch() {
			// The ring moved under the buffer; ship what was routed
			// under the old epoch before mixing routings.
			b.flushNode(node, buf)
		}
		if len(buf.entries) == 0 {
			buf.epoch = t.Epoch()
		}
		buf.entries = append(buf.entries, e)
		buf.bytes += e.Size()
		if len(buf.entries) >= b.opts.MaxEntries || buf.bytes >= b.opts.MaxBytes {
			b.flushNode(node, buf)
		}
	}
	return b.err
}

// flushNode ships a node's buffered entries as one async batch RPC,
// first reaping the oldest in-flight batch if the window is full.
func (b *Batcher) flushNode(node hashring.NodeID, buf *nodeBuffer) {
	if len(buf.entries) == 0 {
		return
	}
	for len(buf.inflight) >= b.opts.MaxInFlight {
		b.reapOldest(buf)
	}
	entries := buf.entries
	buf.entries = nil
	buf.bytes = 0
	ch, err := b.c.goBatch(node, entries, buf.epoch)
	if err != nil {
		if isRetryable(err) {
			// The node may be mid-handoff or gone; the client's batch
			// path refreshes the ring and re-routes.
			err = b.c.PutBatch(entries)
		}
		b.setErr(err)
		return
	}
	buf.inflight = append(buf.inflight, inflightBatch{ch: ch, entries: entries})
	b.inflight++
}

// reapOldest blocks on the node's oldest in-flight batch. A retryable
// failure — wrong epoch after a topology flip, or a connection that
// died during a handoff — resends the batch synchronously through
// Client.PutBatch, which refreshes the ring and re-routes; only a real
// storage error (or an exhausted resend) sticks.
func (b *Batcher) reapOldest(buf *nodeBuffer) {
	ib := buf.inflight[0]
	buf.inflight = buf.inflight[1:]
	b.inflight--
	err := b.c.reapPut(ib.ch)
	if err != nil && isRetryable(err) {
		err = b.c.PutBatch(ib.entries)
	}
	b.setErr(err)
}

func (b *Batcher) setErr(err error) {
	if b.err == nil && err != nil {
		b.err = err
	}
}

// Flush ships every buffered entry and waits until all in-flight
// batches are acknowledged. The batcher stays usable afterwards.
func (b *Batcher) Flush() error {
	for node, buf := range b.pending {
		b.flushNode(node, buf)
	}
	for _, buf := range b.pending {
		for len(buf.inflight) > 0 {
			b.reapOldest(buf)
		}
	}
	return b.err
}

// Pending returns how many buffered entries await a flush plus how many
// flushed batches are unacknowledged — observability for loaders. The
// entry count is per destination: one Put under replication factor rf
// buffers rf entries (one per replica node).
func (b *Batcher) Pending() (entries, inflightBatches int) {
	for _, buf := range b.pending {
		entries += len(buf.entries)
	}
	return entries, b.inflight
}

// Close flushes and releases the batcher. The underlying client stays
// open.
func (b *Batcher) Close() error {
	err := b.Flush()
	b.pending = nil
	return err
}

// BulkLoad writes entries through temporary batchers with the given
// parallelism — the convenience entry point for loaders that already
// hold the full data set. Entries are striped across workers; each
// worker batches independently, so destination grouping still applies.
func (c *Client) BulkLoad(entries []row.Entry, workers int, opts BatcherOptions) error {
	if workers <= 1 {
		b := c.NewBatcher(opts)
		for _, e := range entries {
			if err := b.Put(e.PK, e.CK, e.Value); err != nil {
				return err
			}
		}
		return b.Close()
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	chunk := (len(entries) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(entries) {
			break
		}
		hi := min(lo+chunk, len(entries))
		wg.Add(1)
		go func(w int, part []row.Entry) {
			defer wg.Done()
			b := c.NewBatcher(opts)
			for _, e := range part {
				if err := b.Put(e.PK, e.CK, e.Value); err != nil {
					break
				}
			}
			errs[w] = b.Close()
		}(w, entries[lo:hi])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
