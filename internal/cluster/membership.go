package cluster

// This file is the node-side membership machinery — what turns a set
// of kvstore processes into a self-organizing cluster with no external
// coordinator:
//
//   - peerPool: one self-healing (redialing) connection per peer,
//     shared by dual-write forwarding, liveness probes, departure
//     announcements and join coordination.
//   - the prober: periodic jittered pings with suspicion counts. A
//     peer missing enough consecutive probes is marked down; a down
//     peer answering again is marked up, which kicks an immediate
//     repair pass so the returnee catches up on writes it missed.
//   - the repair loop: self-scheduled anti-entropy over the ranges
//     this node owns. The digest exchange makes a converged pass cost
//     only digest round trips — the skip-if-converged check is built
//     into the protocol, not bolted on.
//   - handleJoin: any current member can coordinate a JoinRequest by
//     running the rebalance state machine (coordinator.go) over the
//     wire against the whole membership, itself included.
//   - JoinRing / Connect: process bootstrap. JoinRing boots a node at
//     a seed's current topology and sends one JoinRequest; Connect
//     builds a routing client from seed addresses alone.

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"scalekv/internal/hashring"
	"scalekv/internal/transport"
	"scalekv/internal/wire"
)

// defaultSuspicionThreshold is how many consecutive failed probes mark
// a peer down when NodeOptions.SuspicionThreshold is zero: one lost
// probe is noise, three in a row is an outage.
const defaultSuspicionThreshold = 3

// --- Peer connection pool ---------------------------------------------------

// peerPool holds one Redialer per peer address. Redialers heal broken
// connections with capped exponential backoff, so a bounced peer
// process is re-dialed instead of permanently failed; their dial and
// redial counts aggregate into NodeStatsResponse.
type peerPool struct {
	dial Dialer

	mu     sync.Mutex
	peers  map[string]*transport.Redialer
	closed bool
}

func newPeerPool(dial Dialer) *peerPool {
	return &peerPool{dial: dial, peers: make(map[string]*transport.Redialer)}
}

// get returns the pool's Redialer for addr, creating it on first use.
func (p *peerPool) get(addr string) (*transport.Redialer, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, transport.ErrClosed
	}
	if p.dial == nil {
		return nil, errors.New("cluster: node has no dialer")
	}
	if rd, ok := p.peers[addr]; ok {
		return rd, nil
	}
	rd := transport.NewRedialer(func() (*transport.Client, error) { return p.dial(addr) })
	p.peers[addr] = rd
	return rd, nil
}

// stats sums dial and redial counts across all peers.
func (p *peerPool) stats() (dials, redials uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, rd := range p.peers {
		d, r := rd.Stats()
		dials += d
		redials += r
	}
	return dials, redials
}

func (p *peerPool) close() {
	p.mu.Lock()
	peers := p.peers
	p.peers = nil
	p.closed = true
	p.mu.Unlock()
	for _, rd := range peers {
		rd.Close()
	}
}

// --- Peer health ------------------------------------------------------------

// peerState is the prober's view of one peer.
type peerState struct {
	up        bool
	suspicion int
	since     time.Time
}

// PeerHealth is one peer's liveness as this node sees it: Up with the
// current consecutive-miss count, and since when the state has held.
type PeerHealth struct {
	Up        bool
	Suspicion int
	Since     time.Time
}

// PeerHealth snapshots the node's liveness view of its peers. Peers
// appear after their first probe (or a Leave announcement); a node
// with probing disabled reports an empty map.
func (n *Node) PeerHealth() map[hashring.NodeID]PeerHealth {
	n.healthMu.Lock()
	defer n.healthMu.Unlock()
	out := make(map[hashring.NodeID]PeerHealth, len(n.health))
	for id, ps := range n.health {
		out[id] = PeerHealth{Up: ps.up, Suspicion: ps.suspicion, Since: ps.since}
	}
	return out
}

// notePeer folds one probe outcome into the health view. The
// down-to-up transition kicks an immediate repair pass: the returning
// peer has a gap to catch up on, and waiting for the next scheduled
// pass would stretch its divergence window for no reason.
func (n *Node) notePeer(id hashring.NodeID, ok bool) {
	recovered := false
	now := time.Now()
	n.healthMu.Lock()
	ps := n.health[id]
	if ps == nil {
		ps = &peerState{up: true, since: now}
		n.health[id] = ps
	}
	if ok {
		if !ps.up {
			ps.up = true
			ps.since = now
			recovered = true
		}
		ps.suspicion = 0
	} else {
		ps.suspicion++
		if ps.up && ps.suspicion >= n.suspicionThreshold {
			ps.up = false
			ps.since = now
		}
	}
	n.healthMu.Unlock()
	if recovered {
		n.kickRepair()
	}
}

// markPeerDown flips a peer down immediately — a graceful departure
// announcement needs no suspicion window.
func (n *Node) markPeerDown(id hashring.NodeID) {
	now := time.Now()
	n.healthMu.Lock()
	ps := n.health[id]
	if ps == nil {
		ps = &peerState{}
		n.health[id] = ps
	}
	if ps.up || ps.since.IsZero() {
		ps.since = now
	}
	ps.up = false
	ps.suspicion = n.suspicionThreshold
	n.healthMu.Unlock()
}

// pruneHealth drops health entries for members no longer on the ring.
func (n *Node) pruneHealth(topo *hashring.Topology) {
	n.healthMu.Lock()
	for id := range n.health {
		if !topo.Contains(id) {
			delete(n.health, id)
		}
	}
	n.healthMu.Unlock()
}

// --- The prober -------------------------------------------------------------

// jittered spreads a period ±25% so nodes started in lockstep don't
// probe (or repair) in lockstep forever.
func jittered(rnd *rand.Rand, d time.Duration) time.Duration {
	return time.Duration(float64(d) * (0.75 + 0.5*rnd.Float64()))
}

func (n *Node) probeLoop() {
	defer n.loopWg.Done()
	rnd := rand.New(rand.NewSource(time.Now().UnixNano() ^ (int64(n.id) << 32)))
	for {
		select {
		case <-n.stop:
			return
		case <-time.After(jittered(rnd, n.probeInterval)):
		}
		n.probeOnce()
	}
}

// probeOnce pings every ring peer through its pooled redialer. The
// per-probe timeout is bounded so a hung peer costs one window, not a
// wedged loop; the redialer discards the hung connection, so the next
// probe re-dials instead of queueing behind a dead stream.
func (n *Node) probeOnce() {
	rs := n.ring.Load()
	if rs == nil {
		return
	}
	timeout := n.probeInterval
	if timeout < 100*time.Millisecond {
		timeout = 100 * time.Millisecond
	}
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	payload, err := n.codec.Marshal(&wire.PingRequest{FromID: uint32(n.id), Epoch: rs.topo.Epoch()})
	if err != nil {
		return
	}
	for _, id := range rs.topo.Nodes() {
		if id == n.id {
			continue
		}
		addr := rs.addrs[id]
		if addr == "" {
			continue
		}
		rd, err := n.peers.get(addr)
		if err != nil {
			return // pool closed: the node is shutting down
		}
		ok := false
		if raw, err := rd.CallTimeout(payload, timeout); err == nil {
			if resp, derr := n.codec.Unmarshal(raw); derr == nil {
				if pr, isPing := resp.(*wire.PingResponse); isPing && pr.ErrMsg == "" {
					ok = true
				}
			}
		}
		n.notePeer(id, ok)
	}
	n.pruneHealth(rs.topo)
}

func (n *Node) handlePing(req *wire.PingRequest) *wire.PingResponse {
	resp := &wire.PingResponse{ID: uint32(n.id)}
	if rs := n.ring.Load(); rs != nil {
		resp.Epoch = rs.topo.Epoch()
	}
	return resp
}

func (n *Node) handleLeave(req *wire.LeaveRequest) *wire.LeaveResponse {
	// A departure announcement, not a membership change: the ring only
	// shrinks through the rebalance state machine (which drains data
	// first). The announcing peer just stops being probed optimistically.
	n.markPeerDown(hashring.NodeID(req.ID))
	return &wire.LeaveResponse{}
}

// announceLeave tells every peer this node is going away, best effort
// with a short per-peer timeout so shutdown cannot hang on a dead peer.
func (n *Node) announceLeave() {
	rs := n.ring.Load()
	if rs == nil || n.dialer == nil {
		return
	}
	payload, err := n.codec.Marshal(&wire.LeaveRequest{ID: uint32(n.id)})
	if err != nil {
		return
	}
	for _, id := range rs.topo.Nodes() {
		if id == n.id {
			continue
		}
		addr := rs.addrs[id]
		if addr == "" {
			continue
		}
		if rd, err := n.peers.get(addr); err == nil {
			rd.CallTimeout(payload, time.Second)
		}
	}
}

// --- Self-scheduled repair --------------------------------------------------

// kickRepair requests an immediate repair pass (coalesced: one pending
// kick at a time). No-op when the repair loop is disabled.
func (n *Node) kickRepair() {
	if n.repairInterval <= 0 {
		return
	}
	select {
	case n.repairKick <- struct{}{}:
	default:
	}
}

func (n *Node) repairLoop() {
	defer n.loopWg.Done()
	rnd := rand.New(rand.NewSource(time.Now().UnixNano() ^ (int64(n.id) << 16)))
	for {
		select {
		case <-n.stop:
			return
		case <-time.After(jittered(rnd, n.repairInterval)):
		case <-n.repairKick:
		}
		n.RepairNow()
	}
}

// RepairNow runs one anti-entropy pass over the replicated ranges this
// node owns, converging them with their other owners (cells ship both
// directions, last-write-wins on version). It is the repair loop's
// body and an admin entry point. Only this node's engine can have its
// tombstone GC fenced for the pass; the other owners rely on their own
// passes running often enough within gc_grace (see docs/consistency.md).
// A pass on a converged cluster ships zero cells and costs only digest
// round trips. Returns nil, nil when the node has nothing to repair
// (no ring, rf < 2, single member, or no dialer).
func (n *Node) RepairNow() (*RepairReport, error) {
	rs := n.ring.Load()
	if rs == nil || rs.rf < 2 || rs.topo.Size() < 2 || n.dialer == nil {
		return nil, nil
	}
	cli := NewClient(rs.topo, nil, ClientOptions{
		Codec:             n.codec,
		ReplicationFactor: rs.rf,
		Dialer:            n.dialer,
		Addrs:             rs.addrs,
	})
	defer cli.Close()
	fence := func(lo, hi int64) func() { return n.engine.FenceRange(lo, hi) }
	owner := n.id
	rep, err := cli.repairRanges(math.MinInt64, math.MaxInt64, rs.rf, fence, &owner)
	if rep != nil {
		n.RepairPasses.Add(1)
		n.RepairCellsShipped.Add(rep.CellsShipped)
	}
	return rep, err
}

// --- Wire-driven migration handlers ----------------------------------------

func nodesFromWire(nodes []wire.NodeAddr) ([]hashring.NodeID, map[hashring.NodeID]string) {
	ids := make([]hashring.NodeID, 0, len(nodes))
	addrs := make(map[hashring.NodeID]string, len(nodes))
	for _, na := range nodes {
		id := hashring.NodeID(na.ID)
		ids = append(ids, id)
		if na.Addr != "" {
			addrs[id] = na.Addr
		}
	}
	return ids, addrs
}

// handleBeginMigration opens the migration window from the wire: the
// request carries the full move list and the next epoch's address
// book; this node filters its own roles and dials its forward targets
// through the peer pool (the pool outlives the window, so the
// coordinator doesn't manage this node's connections).
func (n *Node) handleBeginMigration(req *wire.BeginMigrationRequest) *wire.BeginMigrationResponse {
	moves := movesFromWire(req.Moves)
	_, addrs := nodesFromWire(req.Nodes)
	conns := make(map[hashring.NodeID]transport.Caller)
	for _, m := range moves {
		if m.From != n.id {
			continue
		}
		if _, ok := conns[m.To]; ok {
			continue
		}
		addr := addrs[m.To]
		if addr == "" {
			return &wire.BeginMigrationResponse{ErrMsg: fmt.Sprintf("no address for forward target %d", m.To)}
		}
		rd, err := n.peers.get(addr)
		if err != nil {
			return &wire.BeginMigrationResponse{ErrMsg: fmt.Sprintf("dial forward target %d: %v", m.To, err)}
		}
		conns[m.To] = rd
	}
	n.BeginMigration(moves, conns)
	return &wire.BeginMigrationResponse{}
}

// handleSetRingState is the epoch flip from the wire. Equal epochs are
// an idempotent re-flip (a coordinator retrying after a lost
// response); older epochs are rejected — a node that has moved on must
// not be rewound.
func (n *Node) handleSetRingState(req *wire.SetRingStateRequest) *wire.SetRingStateResponse {
	cur := n.ring.Load()
	if cur != nil {
		if req.Epoch < cur.topo.Epoch() {
			return &wire.SetRingStateResponse{ErrMsg: fmt.Sprintf(
				"stale epoch: node %d is at %d, refusing flip to %d", n.id, cur.topo.Epoch(), req.Epoch)}
		}
		if req.Epoch == cur.topo.Epoch() {
			return &wire.SetRingStateResponse{}
		}
	}
	ids, addrs := nodesFromWire(req.Nodes)
	topo := hashring.FromNodes(req.Epoch, ids, int(req.Vnodes))
	n.installRing(topo, addrs, int(req.RF), true)
	n.pruneHealth(topo)
	return &wire.SetRingStateResponse{}
}

// handleJoin admits a new member: this node becomes the coordinator
// for one run of the rebalance state machine, executed entirely over
// the wire against the current membership (itself included — its own
// flip arrives as a SetRingStateRequest over a self-dialed
// connection). Serialized: concurrent joiners are told to retry rather
// than queue behind a stream that may take a while.
func (n *Node) handleJoin(req *wire.JoinRequest) *wire.JoinResponse {
	if n.dialer == nil {
		return &wire.JoinResponse{ErrMsg: fmt.Sprintf("node %d cannot coordinate joins: no dialer", n.id)}
	}
	if !n.joinMu.TryLock() {
		return &wire.JoinResponse{ErrMsg: "a membership change is already in flight; retry"}
	}
	defer n.joinMu.Unlock()

	rs := n.ring.Load()
	if rs == nil {
		return &wire.JoinResponse{ErrMsg: "node has no topology"}
	}
	id := hashring.NodeID(req.ID)
	if rs.topo.Contains(id) {
		if rs.addrs[id] == req.Addr {
			// Idempotent: a joiner retrying after a lost response, or a
			// member rejoining after a restart. It is already routed to.
			return &wire.JoinResponse{Epoch: rs.topo.Epoch()}
		}
		return &wire.JoinResponse{ErrMsg: fmt.Sprintf("node id %d is already a member at %s", id, rs.addrs[id])}
	}
	next, moves, err := rs.topo.AddNode(id, rs.rf)
	if err != nil {
		return &wire.JoinResponse{ErrMsg: err.Error()}
	}
	addrsNext := copyAddrs(rs.addrs)
	addrsNext[id] = req.Addr

	co := newCoordinator(n.codec, n.dialer)
	defer co.close()
	report, err := runRebalance(co, rebalanceParams{
		rf:        rs.rf,
		old:       rs.topo,
		next:      next,
		moves:     moves,
		addrs:     rs.addrs,
		addrsNext: addrsNext,
		subject:   id,
	})
	if err != nil {
		return &wire.JoinResponse{ErrMsg: err.Error()}
	}
	return &wire.JoinResponse{
		Epoch:         report.Epoch,
		Moves:         uint32(len(report.Moves)),
		CellsStreamed: uint64(report.CellsStreamed),
		CellsRetired:  uint64(report.CellsRetired),
		Pages:         uint32(report.Pages),
		StreamNanos:   uint64(report.StreamDuration.Nanoseconds()),
		FlipNanos:     uint64(report.FlipDuration.Nanoseconds()),
		RetireErr:     report.RetireErr,
	}
}

// --- Process bootstrap ------------------------------------------------------

// ringStateRPC asks one connection for its ring state.
func ringStateRPC(conn transport.Caller, codec wire.Codec) (*wire.RingStateResponse, error) {
	payload, err := codec.Marshal(&wire.RingStateRequest{})
	if err != nil {
		return nil, err
	}
	raw, err := conn.Call(payload)
	if err != nil {
		return nil, err
	}
	resp, err := codec.Unmarshal(raw)
	if err != nil {
		return nil, err
	}
	rs, ok := resp.(*wire.RingStateResponse)
	if !ok {
		return nil, fmt.Errorf("cluster: unexpected ring-state response %T", resp)
	}
	if rs.ErrMsg != "" {
		return nil, errors.New(rs.ErrMsg)
	}
	return rs, nil
}

// JoinRing boots a node and brings it into a live ring through a seed
// member: learn the seed's current topology, start serving at it (the
// joiner must accept the coordinator's epoch-0 streams and take part
// in the flip), then send one JoinRequest and block until the seed has
// streamed this node's ranges over and flipped the cluster. On return
// the node is a routed member at the response's epoch.
//
// opts.ID < 0 picks the next free ID from the seed's membership.
// opts.Dialer and opts.AdvertiseAddr are required. A node restarting
// from a persisted topology that already includes it skips the
// JoinRequest (its ranges are on disk; anti-entropy covers the gap).
func JoinRing(l transport.Listener, opts NodeOptions, seedAddr string) (*Node, *wire.JoinResponse, error) {
	if opts.Dialer == nil {
		return nil, nil, errors.New("cluster: JoinRing needs a Dialer")
	}
	if opts.AdvertiseAddr == "" {
		return nil, nil, errors.New("cluster: JoinRing needs an AdvertiseAddr")
	}
	if opts.Codec == nil {
		opts.Codec = wire.FastCodec{}
	}

	seedConn, err := opts.Dialer(seedAddr)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: dial seed %s: %w", seedAddr, err)
	}
	rs, err := ringStateRPC(seedConn, opts.Codec)
	seedConn.Close()
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: seed %s: %w", seedAddr, err)
	}
	ids, addrs := nodesFromWire(rs.Nodes)
	if opts.ID < 0 {
		maxID := hashring.NodeID(-1)
		for _, id := range ids {
			if id > maxID {
				maxID = id
			}
		}
		opts.ID = maxID + 1
	}
	if opts.ReplicationFactor <= 0 {
		opts.ReplicationFactor = int(rs.RF)
	}
	opts.Topology = hashring.FromNodes(rs.Epoch, ids, int(rs.Vnodes))
	opts.Addrs = addrs

	node, err := StartNode(l, opts)
	if err != nil {
		return nil, nil, err
	}
	// A persisted topology (StartNode prefers the higher epoch) may
	// already include this node: a member restarting with -join set.
	// It is still routed to; re-joining would reshuffle data for
	// nothing.
	if cur := node.ring.Load(); cur != nil && cur.topo.Contains(node.id) {
		return node, &wire.JoinResponse{Epoch: cur.topo.Epoch()}, nil
	}

	joinConn, err := opts.Dialer(seedAddr)
	if err != nil {
		node.Close()
		return nil, nil, fmt.Errorf("cluster: dial seed %s: %w", seedAddr, err)
	}
	defer joinConn.Close()
	payload, err := opts.Codec.Marshal(&wire.JoinRequest{ID: uint32(node.id), Addr: opts.AdvertiseAddr})
	if err != nil {
		node.Close()
		return nil, nil, err
	}
	raw, err := joinConn.Call(payload)
	if err != nil {
		node.Close()
		return nil, nil, fmt.Errorf("cluster: join via %s: %w", seedAddr, err)
	}
	resp, err := opts.Codec.Unmarshal(raw)
	if err != nil {
		node.Close()
		return nil, nil, err
	}
	jr, ok := resp.(*wire.JoinResponse)
	if !ok {
		node.Close()
		return nil, nil, fmt.Errorf("cluster: unexpected join response %T", resp)
	}
	if jr.ErrMsg != "" {
		node.Close()
		return nil, nil, fmt.Errorf("cluster: join via %s: %s", seedAddr, jr.ErrMsg)
	}
	return node, jr, nil
}

// Connect bootstraps a routing client from seed addresses alone: every
// seed is asked for its ring state, the highest epoch wins, and the
// client inherits the ring's replication factor unless the options
// pin one. Further members are dialed lazily as routing needs them.
func Connect(seeds []string, opts ClientOptions) (*Client, error) {
	if opts.Dialer == nil {
		return nil, errors.New("cluster: Connect needs a Dialer")
	}
	if opts.Codec == nil {
		opts.Codec = wire.FastCodec{}
	}
	var best *wire.RingStateResponse
	lastErr := errors.New("cluster: no seed addresses")
	for _, addr := range seeds {
		conn, err := opts.Dialer(addr)
		if err != nil {
			lastErr = err
			continue
		}
		rs, err := ringStateRPC(conn, opts.Codec)
		conn.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if best == nil || rs.Epoch > best.Epoch {
			best = rs
		}
	}
	if best == nil {
		return nil, fmt.Errorf("cluster: connect: %w", lastErr)
	}
	ids, addrs := nodesFromWire(best.Nodes)
	if opts.ReplicationFactor <= 0 {
		opts.ReplicationFactor = int(best.RF)
	}
	merged := make(map[hashring.NodeID]string, len(addrs)+len(opts.Addrs))
	for id, a := range opts.Addrs {
		merged[id] = a
	}
	for id, a := range addrs {
		merged[id] = a
	}
	opts.Addrs = merged
	return NewClient(hashring.FromNodes(best.Epoch, ids, int(best.Vnodes)), nil, opts), nil
}
