package cluster

// The topology file is the node's persisted membership view: epoch,
// vnodes-per-node, replication factor and the member address book,
// written next to the engine's SHARDS manifest with the same
// tmp-fsync-rename discipline. A restarting node reads it back and
// resumes serving at the epoch it last flipped to — no external
// coordinator or seed required — so a whole-cluster restart
// reassembles the ring from disk alone.

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"scalekv/internal/hashring"
)

// topologyFileName is the membership snapshot inside a node's data dir.
const topologyFileName = "topology"

// topologyMagic heads the file; a mismatch means the file is not ours
// (or a future incompatible format) and the boot must not guess.
const topologyMagic = "scalekv-topology v1"

// saveTopologyFile atomically persists a membership snapshot in dir.
// Crash-safe: the temp file is fsynced before the rename, and the
// directory after, so a torn write can never replace a valid snapshot.
func saveTopologyFile(dir string, topo *hashring.Topology, addrs map[hashring.NodeID]string, rf int) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", topologyMagic)
	fmt.Fprintf(&b, "epoch %d\n", topo.Epoch())
	fmt.Fprintf(&b, "vnodes %d\n", topo.Vnodes())
	fmt.Fprintf(&b, "rf %d\n", rf)
	ids := topo.Nodes()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fmt.Fprintf(&b, "node %d %s\n", id, addrs[id])
	}

	tmp := filepath.Join(dir, topologyFileName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(b.String()); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, topologyFileName)); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// loadTopologyFile reads dir's membership snapshot. A missing file is
// not an error: it returns a nil topology (fresh node). A present but
// unreadable or malformed file is an error — booting with guessed
// membership would let a node accept traffic it no longer owns.
func loadTopologyFile(dir string) (*hashring.Topology, map[hashring.NodeID]string, int, error) {
	f, err := os.Open(filepath.Join(dir, topologyFileName))
	if os.IsNotExist(err) {
		return nil, nil, 0, nil
	}
	if err != nil {
		return nil, nil, 0, err
	}
	defer f.Close()

	bad := func(line string) error {
		return fmt.Errorf("cluster: malformed topology file in %s: %q", dir, line)
	}
	sc := bufio.NewScanner(f)
	if !sc.Scan() || sc.Text() != topologyMagic {
		return nil, nil, 0, fmt.Errorf("cluster: topology file in %s: bad header", dir)
	}
	var (
		epoch  uint64
		vnodes int
		rf     int
		ids    []hashring.NodeID
		addrs  = make(map[hashring.NodeID]string)
	)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "epoch "):
			if _, err := fmt.Sscanf(line, "epoch %d", &epoch); err != nil {
				return nil, nil, 0, bad(line)
			}
		case strings.HasPrefix(line, "vnodes "):
			if _, err := fmt.Sscanf(line, "vnodes %d", &vnodes); err != nil {
				return nil, nil, 0, bad(line)
			}
		case strings.HasPrefix(line, "rf "):
			if _, err := fmt.Sscanf(line, "rf %d", &rf); err != nil {
				return nil, nil, 0, bad(line)
			}
		case strings.HasPrefix(line, "node "):
			rest := strings.TrimPrefix(line, "node ")
			idStr, addr, ok := strings.Cut(rest, " ")
			var id int
			if _, err := fmt.Sscanf(idStr, "%d", &id); err != nil || !ok {
				return nil, nil, 0, bad(line)
			}
			ids = append(ids, hashring.NodeID(id))
			addrs[hashring.NodeID(id)] = addr
		default:
			return nil, nil, 0, bad(line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, 0, err
	}
	if epoch == 0 || vnodes <= 0 || len(ids) == 0 {
		return nil, nil, 0, fmt.Errorf("cluster: topology file in %s: incomplete snapshot", dir)
	}
	return hashring.FromNodes(epoch, ids, vnodes), addrs, rf, nil
}
