package cluster

import (
	"testing"

	"scalekv/internal/workload"
)

// The workload lab drives a cluster through these interfaces; a
// signature drift must fail compilation here, not in cmd/kvload.
var (
	_ workload.Store      = (*Client)(nil)
	_ workload.BatchStore = (*Client)(nil)
)

// TestWorkloadStepAgainstCluster runs a small hotspot step against a
// real in-process cluster: preload through the batched write path,
// then a fixed-op measured step that must complete error-free with a
// populated histogram — the same path `kvload -mix hotspot` takes.
func TestWorkloadStepAgainstCluster(t *testing.T) {
	cl, err := StartLocal(LocalOptions{Nodes: 2, ReplicationFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	mix, err := workload.MixByName("hotspot", 0.9)
	if err != nil {
		t.Fatal(err)
	}
	ks := workload.NewKeyspace(300, 2, 32, 1)
	cells, err := workload.LoadKeyspace(cl.Client(), ks, 64)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if cells != ks.Cells() {
		t.Fatalf("loaded %d cells, want %d", cells, ks.Cells())
	}

	res := workload.RunStep(cl.Client(), mix, ks, workload.StepConfig{
		Clients: 4, MaxOps: 2000, Seed: 42,
	})
	if res.Ops != 2000 {
		t.Fatalf("ran %d ops, want 2000", res.Ops)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors against a healthy cluster", res.Errors)
	}
	if res.Hist.Count() != res.Ops || res.Hist.Percentile(50) <= 0 {
		t.Fatalf("histogram: %d samples, p50 %v", res.Hist.Count(), res.Hist.Percentile(50))
	}
	if got := cl.Client().Failovers.Load(); got != 0 {
		t.Fatalf("%d failover reads against a healthy cluster", got)
	}

	step := res.ToStep(cl.Client().Failovers.Load())
	if step.OpsPerSec <= 0 || step.Latency.P50 <= 0 {
		t.Fatalf("step conversion lost the measurements: %+v", step)
	}
}
