package d8tree

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"scalekv/internal/core"
	"scalekv/internal/row"
)

// memStore is a minimal in-memory Store for tests.
type memStore struct {
	mu   sync.Mutex
	data map[string]map[string][]byte
	puts int
}

func newMemStore() *memStore {
	return &memStore{data: map[string]map[string][]byte{}}
}

func (m *memStore) Put(pk string, ck, value []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.data[pk] == nil {
		m.data[pk] = map[string][]byte{}
	}
	m.data[pk][string(ck)] = append([]byte(nil), value...)
	m.puts++
	return nil
}

func (m *memStore) Scan(pk string, from, to []byte) ([]row.Cell, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var cks []string
	for ck := range m.data[pk] {
		cks = append(cks, ck)
	}
	sort.Strings(cks)
	var out []row.Cell
	for _, ck := range cks {
		out = append(out, row.Cell{CK: []byte(ck), Value: m.data[pk][ck]})
	}
	return out, nil
}

// batchMemStore extends memStore with the batch path and counts batch
// calls so tests can assert which path ran.
type batchMemStore struct {
	memStore
	batches int
}

func (m *batchMemStore) PutBatch(entries []row.Entry) error {
	for _, e := range entries {
		if err := m.Put(e.PK, e.CK, e.Value); err != nil {
			return err
		}
	}
	m.mu.Lock()
	m.batches++
	m.mu.Unlock()
	return nil
}

func randomPoints(n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{
			ID:   uint64(i),
			X:    rng.Float64(),
			Y:    rng.Float64(),
			Z:    rng.Float64(),
			Type: uint8(rng.Intn(4)),
		}
	}
	return pts
}

func buildTree(t *testing.T, pts []Point, maxLevel int) (*Tree, *memStore) {
	t.Helper()
	st := newMemStore()
	tr := New(st, Options{MaxLevel: maxLevel})
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	return tr, st
}

func TestDenormalizationFactor(t *testing.T) {
	pts := randomPoints(50, 1)
	tr, st := buildTree(t, pts, 3)
	// Every point is written once per level 0..3.
	if st.puts != 50*4 {
		t.Fatalf("%d puts want %d", st.puts, 200)
	}
	if tr.Count() != 50 {
		t.Fatalf("count %d want 50", tr.Count())
	}
}

func TestInsertBatchMatchesInsert(t *testing.T) {
	pts := randomPoints(200, 11)

	single := newMemStore()
	ts := New(single, Options{MaxLevel: 3})
	for _, p := range pts {
		if err := ts.Insert(p); err != nil {
			t.Fatal(err)
		}
	}

	batched := &batchMemStore{memStore: *newMemStore()}
	tb := New(batched, Options{MaxLevel: 3})
	if err := tb.InsertBatch(pts); err != nil {
		t.Fatal(err)
	}
	if batched.batches == 0 {
		t.Fatal("batch-capable store was fed through the single-put path")
	}
	if tb.Count() != ts.Count() {
		t.Fatalf("counts diverged: %d vs %d", tb.Count(), ts.Count())
	}
	if len(batched.data) != len(single.data) {
		t.Fatalf("partition counts diverged: %d vs %d", len(batched.data), len(single.data))
	}
	for pk, cells := range single.data {
		if len(batched.data[pk]) != len(cells) {
			t.Fatalf("%s: %d vs %d cells", pk, len(batched.data[pk]), len(cells))
		}
	}
}

func TestInsertBatchFallsBackWithoutBatchStore(t *testing.T) {
	st := newMemStore()
	tr := New(st, Options{MaxLevel: 2})
	pts := randomPoints(20, 3)
	if err := tr.InsertBatch(pts); err != nil {
		t.Fatal(err)
	}
	if st.puts != 20*3 { // one put per point per level 0..2
		t.Fatalf("fallback issued %d puts want %d", st.puts, 60)
	}
	if tr.Count() != 20 {
		t.Fatalf("count %d want 20", tr.Count())
	}
}

func TestInsertBatchRejectsOutOfCubeBeforeWriting(t *testing.T) {
	st := &batchMemStore{memStore: *newMemStore()}
	tr := New(st, Options{MaxLevel: 2})
	pts := []Point{{ID: 1, X: 0.5, Y: 0.5, Z: 0.5}, {ID: 2, X: 1.5, Y: 0, Z: 0}}
	if err := tr.InsertBatch(pts); err == nil {
		t.Fatal("out-of-cube point accepted")
	}
	if len(st.data) != 0 || tr.Count() != 0 {
		t.Fatal("rejected batch still wrote data")
	}
}

func TestInsertRejectsOutOfCube(t *testing.T) {
	tr := New(newMemStore(), Options{})
	for _, p := range []Point{
		{X: -0.1, Y: 0.5, Z: 0.5},
		{X: 0.5, Y: 1.0, Z: 0.5},
		{X: 0.5, Y: 0.5, Z: 2},
	} {
		if err := tr.Insert(p); err == nil {
			t.Fatalf("accepted out-of-cube point %+v", p)
		}
	}
}

func TestCubeKeyBoundaries(t *testing.T) {
	// Level 1 splits each axis in two.
	if k := CubeKey(1, 0.49, 0.49, 0.49); k != "L1-0-0-0" {
		t.Fatalf("low half key %q", k)
	}
	if k := CubeKey(1, 0.51, 0.51, 0.51); k != "L1-1-1-1" {
		t.Fatalf("high half key %q", k)
	}
	// Level 0 is a single cube.
	if k := CubeKey(0, 0.9, 0.1, 0.5); k != "L0-0-0-0" {
		t.Fatalf("root key %q", k)
	}
}

func TestQueryMatchesBruteForce(t *testing.T) {
	pts := randomPoints(2000, 7)
	tr, _ := buildTree(t, pts, 3)
	box := Box{MinX: 0.2, MinY: 0.3, MinZ: 0.1, MaxX: 0.6, MaxY: 0.7, MaxZ: 0.5}

	var want []uint64
	for _, p := range pts {
		if box.Contains(p) {
			want = append(want, p.ID)
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

	for level := 0; level <= 3; level++ {
		res, err := tr.Query(box, level)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]uint64, len(res.Points))
		for i, p := range res.Points {
			got[i] = p.ID
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(want) {
			t.Fatalf("level %d: %d points want %d", level, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("level %d: result set differs at %d", level, i)
			}
		}
	}
}

func TestLevelTradeoff(t *testing.T) {
	pts := randomPoints(3000, 3)
	tr, _ := buildTree(t, pts, 3)
	small := Box{MinX: 0.4, MinY: 0.4, MinZ: 0.4, MaxX: 0.45, MaxY: 0.45, MaxZ: 0.45}
	coarse, err := tr.Query(small, 0)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := tr.Query(small, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Same answer, different cost profile: the coarse level reads one
	// huge cube (many cells scanned), the fine level touches more keys
	// but scans fewer cells.
	if coarse.CubesRead != 1 {
		t.Fatalf("level 0 read %d cubes", coarse.CubesRead)
	}
	if fine.CellsScanned >= coarse.CellsScanned {
		t.Fatalf("fine level scanned %d >= coarse %d", fine.CellsScanned, coarse.CellsScanned)
	}
	if len(fine.Points) != len(coarse.Points) {
		t.Fatalf("levels disagree: %d vs %d points", len(fine.Points), len(coarse.Points))
	}
}

func TestCubesForBoxCounts(t *testing.T) {
	full := Box{MaxX: 1, MaxY: 1, MaxZ: 1}
	for level := 0; level <= 3; level++ {
		want := 1 << (3 * level) // 8^level
		if got := len(CubesForBox(level, full)); got != want {
			t.Fatalf("level %d: %d cubes want %d", level, got, want)
		}
	}
	// An octant-aligned box at level 1 touches exactly one cube.
	octant := Box{MaxX: 0.5, MaxY: 0.5, MaxZ: 0.5}
	if got := len(CubesForBox(1, octant)); got != 1 {
		t.Fatalf("aligned octant: %d cubes want 1", got)
	}
}

func TestCountByType(t *testing.T) {
	var pts []Point
	for i := 0; i < 300; i++ {
		pts = append(pts, Point{
			ID: uint64(i), X: 0.5, Y: 0.5, Z: 0.5, Type: uint8(i % 3),
		})
	}
	tr, _ := buildTree(t, pts, 2)
	counts, err := tr.CountByType(Box{MaxX: 1, MaxY: 1, MaxZ: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for ty := uint8(0); ty < 3; ty++ {
		if counts[ty] != 100 {
			t.Fatalf("type %d: %d want 100", ty, counts[ty])
		}
	}
}

func TestPlanQueryPrefersFinerForSmallBoxes(t *testing.T) {
	st := newMemStore()
	tr := New(st, Options{MaxLevel: 4})
	sys := core.PaperSystem()
	const elements = 1_000_000

	tiny := Box{MinX: 0.4, MinY: 0.4, MinZ: 0.4, MaxX: 0.41, MaxY: 0.41, MaxZ: 0.41}
	huge := Box{MaxX: 1, MaxY: 1, MaxZ: 1}
	tinyPlan := tr.PlanQuery(tiny, sys, 8, elements)
	hugePlan := tr.PlanQuery(huge, sys, 8, elements)
	// A tiny box should be answered at a deep level (read one small
	// cube, not the 250k-element root).
	if tinyPlan.Level < hugePlan.Level {
		t.Fatalf("tiny box plans level %d, huge box level %d — planner inverted",
			tinyPlan.Level, hugePlan.Level)
	}
	if tinyPlan.Prediction.TotalMs <= 0 || hugePlan.Prediction.TotalMs <= 0 {
		t.Fatal("plans carry no prediction")
	}
}

// Property: for random boxes and every level, the query returns exactly
// the brute-force result set.
func TestQuickRandomBoxes(t *testing.T) {
	pts := randomPoints(1500, 13)
	tr, _ := buildTree(t, pts, 3)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		x0, x1 := rng.Float64(), rng.Float64()
		if x0 > x1 {
			x0, x1 = x1, x0
		}
		y0, y1 := rng.Float64(), rng.Float64()
		if y0 > y1 {
			y0, y1 = y1, y0
		}
		z0, z1 := rng.Float64(), rng.Float64()
		if z0 > z1 {
			z0, z1 = z1, z0
		}
		box := Box{MinX: x0, MaxX: x1, MinY: y0, MaxY: y1, MinZ: z0, MaxZ: z1}
		want := 0
		for _, p := range pts {
			if box.Contains(p) {
				want++
			}
		}
		level := rng.Intn(4)
		res, err := tr.Query(box, level)
		if err != nil {
			t.Fatalf("trial %d level %d: %v", trial, level, err)
		}
		if len(res.Points) != want {
			t.Fatalf("trial %d level %d: %d points want %d (box %+v)",
				trial, level, len(res.Points), want, box)
		}
	}
}

func TestQueryLevelValidation(t *testing.T) {
	tr := New(newMemStore(), Options{MaxLevel: 2})
	if _, err := tr.Query(Box{MaxX: 1, MaxY: 1, MaxZ: 1}, 3); err == nil {
		t.Fatal("level above max accepted")
	}
	if _, err := tr.Query(Box{MaxX: 1, MaxY: 1, MaxZ: 1}, -1); err == nil {
		t.Fatal("negative level accepted")
	}
}

func TestDecodeCorruptValue(t *testing.T) {
	if _, err := decodePoint(1, []byte{1, 2, 3}); err == nil {
		t.Fatal("short value accepted")
	}
}

func TestPointRoundTrip(t *testing.T) {
	p := Point{ID: 99, X: 0.125, Y: 0.625, Z: 0.999, Type: 7}
	got, err := decodePoint(99, encodePoint(p))
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("round trip %+v -> %+v", p, got)
	}
}

func TestBoxVolume(t *testing.T) {
	if v := (Box{MaxX: 1, MaxY: 1, MaxZ: 1}).Volume(); v != 1 {
		t.Fatalf("unit box volume %v", v)
	}
	if v := (Box{MaxX: 0.5, MaxY: 0.5, MaxZ: 0.5}).Volume(); v != 0.125 {
		t.Fatalf("octant volume %v", v)
	}
	if v := (Box{MinX: 0.9, MaxX: 0.1, MaxY: 1, MaxZ: 1}).Volume(); v != 0 {
		t.Fatalf("inverted box volume %v", v)
	}
}

func BenchmarkInsertLevel4(b *testing.B) {
	st := newMemStore()
	tr := New(st, Options{MaxLevel: 4})
	pts := randomPoints(b.N, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(pts[i])
	}
}

func BenchmarkQuery(b *testing.B) {
	st := newMemStore()
	tr := New(st, Options{MaxLevel: 3})
	for _, p := range randomPoints(5000, 1) {
		tr.Insert(p)
	}
	box := Box{MinX: 0.25, MinY: 0.25, MinZ: 0.25, MaxX: 0.75, MaxY: 0.75, MaxZ: 0.75}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Query(box, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleCubeKey() {
	fmt.Println(CubeKey(2, 0.3, 0.6, 0.9))
	// Output: L2-1-2-3
}
