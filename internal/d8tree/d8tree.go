// Package d8tree implements the case study's index: a denormalized
// octree over a key-value store, after the authors' D8-tree (ICDCN'16).
//
// Space ([0,1)³) is cut into 8^L cubes at every level L; each element is
// written into its enclosing cube at *every* level up to MaxLevel. That
// denormalization is the whole point: a query can be answered at any
// level, so the application can choose how many keys it touches — few
// large partitions or many small ones — which is exactly the
// coarse/medium/fine trade-off the paper's model optimizes.
package d8tree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"scalekv/internal/core"
	"scalekv/internal/row"
)

// Store is the key-value substrate the tree writes through: the local
// storage engine and the cluster client both satisfy it via thin
// adapters.
type Store interface {
	Put(pk string, ck, value []byte) error
	Scan(pk string, from, to []byte) ([]row.Cell, error)
}

// BatchStore is the batch-capable Store variant: substrates that can
// group-commit many cells at once (the storage engine's PutBatch, the
// cluster client's batched write path) implement it, and InsertBatch
// detects it to ship each point's denormalized copies in bulk instead
// of one Put per level.
type BatchStore interface {
	Store
	PutBatch(entries []row.Entry) error
}

// Point is an indexed element.
type Point struct {
	ID      uint64
	X, Y, Z float64
	Type    uint8
}

// Box is an axis-aligned query region; Min inclusive, Max exclusive.
type Box struct {
	MinX, MinY, MinZ float64
	MaxX, MaxY, MaxZ float64
}

// Contains reports whether the point lies inside the box.
func (b Box) Contains(p Point) bool {
	return p.X >= b.MinX && p.X < b.MaxX &&
		p.Y >= b.MinY && p.Y < b.MaxY &&
		p.Z >= b.MinZ && p.Z < b.MaxZ
}

// Volume returns the box volume clipped to the unit cube.
func (b Box) Volume() float64 {
	dx := math.Min(b.MaxX, 1) - math.Max(b.MinX, 0)
	dy := math.Min(b.MaxY, 1) - math.Max(b.MinY, 0)
	dz := math.Min(b.MaxZ, 1) - math.Max(b.MinZ, 0)
	if dx <= 0 || dy <= 0 || dz <= 0 {
		return 0
	}
	return dx * dy * dz
}

// Tree is a denormalized octree bound to a store.
type Tree struct {
	store    Store
	maxLevel int
	// Fanout of reads during queries.
	readParallelism int
	mu              sync.Mutex
	count           int64 // elements indexed
}

// Options configures a tree.
type Options struct {
	// MaxLevel is the deepest cube level; elements are replicated into
	// levels 0..MaxLevel (MaxLevel+1 copies). 0 means 4.
	MaxLevel int
	// ReadParallelism bounds concurrent cube reads in queries; 0 means
	// 16.
	ReadParallelism int
}

// New binds a tree to a store.
func New(store Store, opts Options) *Tree {
	if opts.MaxLevel <= 0 {
		opts.MaxLevel = 4
	}
	if opts.ReadParallelism <= 0 {
		opts.ReadParallelism = 16
	}
	return &Tree{store: store, maxLevel: opts.MaxLevel, readParallelism: opts.ReadParallelism}
}

// MaxLevel returns the deepest level.
func (t *Tree) MaxLevel() int { return t.maxLevel }

// Count returns how many elements were inserted through this handle.
func (t *Tree) Count() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// CubeKey names the cube containing (x,y,z) at the given level — the
// partition key the element lands on.
func CubeKey(level int, x, y, z float64) string {
	n := 1 << level
	ix, iy, iz := int(x*float64(n)), int(y*float64(n)), int(z*float64(n))
	if ix >= n {
		ix = n - 1
	}
	if iy >= n {
		iy = n - 1
	}
	if iz >= n {
		iz = n - 1
	}
	return fmt.Sprintf("L%d-%d-%d-%d", level, ix, iy, iz)
}

// encodePoint serializes a point value: type byte first (the count-by-
// type aggregation reads it without decoding the rest), then coords.
func encodePoint(p Point) []byte {
	out := make([]byte, 0, 1+8*3)
	out = append(out, p.Type)
	out = binary.BigEndian.AppendUint64(out, math.Float64bits(p.X))
	out = binary.BigEndian.AppendUint64(out, math.Float64bits(p.Y))
	out = binary.BigEndian.AppendUint64(out, math.Float64bits(p.Z))
	return out
}

// ErrCorruptValue reports a cube cell that does not decode as a point.
var ErrCorruptValue = errors.New("d8tree: corrupt point value")

func decodePoint(id uint64, value []byte) (Point, error) {
	if len(value) < 1+24 {
		return Point{}, ErrCorruptValue
	}
	return Point{
		ID:   id,
		Type: value[0],
		X:    math.Float64frombits(binary.BigEndian.Uint64(value[1:])),
		Y:    math.Float64frombits(binary.BigEndian.Uint64(value[9:])),
		Z:    math.Float64frombits(binary.BigEndian.Uint64(value[17:])),
	}, nil
}

func ckForID(id uint64) []byte {
	var ck [8]byte
	binary.BigEndian.PutUint64(ck[:], id)
	return ck[:]
}

// Insert writes the point into its cube at every level — the
// denormalization step. Points outside the unit cube are rejected.
func (t *Tree) Insert(p Point) error {
	if p.X < 0 || p.X >= 1 || p.Y < 0 || p.Y >= 1 || p.Z < 0 || p.Z >= 1 {
		return fmt.Errorf("d8tree: point (%v,%v,%v) outside unit cube", p.X, p.Y, p.Z)
	}
	value := encodePoint(p)
	ck := ckForID(p.ID)
	for level := 0; level <= t.maxLevel; level++ {
		if err := t.store.Put(CubeKey(level, p.X, p.Y, p.Z), ck, value); err != nil {
			return err
		}
	}
	t.mu.Lock()
	t.count++
	t.mu.Unlock()
	return nil
}

// InsertBatch indexes many points at once. Each point is still
// denormalized into every level, but the resulting entries go through
// the store's batch path when it offers one — for a cluster-backed
// store this turns MaxLevel+1 RPCs per point into a few batched frames
// per destination node. Stores without batch support fall back to the
// single-put path. Points outside the unit cube reject the whole batch
// before any write is issued.
func (t *Tree) InsertBatch(points []Point) error {
	for _, p := range points {
		if p.X < 0 || p.X >= 1 || p.Y < 0 || p.Y >= 1 || p.Z < 0 || p.Z >= 1 {
			return fmt.Errorf("d8tree: point (%v,%v,%v) outside unit cube", p.X, p.Y, p.Z)
		}
	}
	bs, ok := t.store.(BatchStore)
	if !ok {
		for _, p := range points {
			if err := t.Insert(p); err != nil {
				return err
			}
		}
		return nil
	}
	entries := make([]row.Entry, 0, len(points)*(t.maxLevel+1))
	for _, p := range points {
		value := encodePoint(p)
		ck := ckForID(p.ID)
		for level := 0; level <= t.maxLevel; level++ {
			entries = append(entries, row.Entry{
				PK: CubeKey(level, p.X, p.Y, p.Z), CK: ck, Value: value,
			})
		}
	}
	if err := bs.PutBatch(entries); err != nil {
		return err
	}
	t.mu.Lock()
	t.count += int64(len(points))
	t.mu.Unlock()
	return nil
}

// CubesForBox lists the cube keys at a level that intersect the box —
// the key set a query at that level must read.
func CubesForBox(level int, b Box) []string {
	n := 1 << level
	clampIdx := func(v float64) int {
		i := int(v * float64(n))
		if i < 0 {
			return 0
		}
		if i >= n {
			return n - 1
		}
		return i
	}
	// Max bounds are exclusive: back off an ulp so an aligned edge does
	// not drag in the next cube row.
	lox, hix := clampIdx(b.MinX), clampIdx(math.Nextafter(b.MaxX, b.MinX))
	loy, hiy := clampIdx(b.MinY), clampIdx(math.Nextafter(b.MaxY, b.MinY))
	loz, hiz := clampIdx(b.MinZ), clampIdx(math.Nextafter(b.MaxZ, b.MinZ))
	var out []string
	for x := lox; x <= hix; x++ {
		for y := loy; y <= hiy; y++ {
			for z := loz; z <= hiz; z++ {
				out = append(out, fmt.Sprintf("L%d-%d-%d-%d", level, x, y, z))
			}
		}
	}
	return out
}

// QueryResult carries a range query's outcome and its cost evidence.
type QueryResult struct {
	Points []Point
	// CubesRead is the number of partitions touched (the "keys" of the
	// paper's model).
	CubesRead int
	// CellsScanned counts elements read before box filtering —
	// coarser levels over-read, finer levels read more partitions.
	CellsScanned int
}

// Query reads every intersecting cube at the given level, filters by
// the box, and returns the matching points. Cube reads fan out across
// ReadParallelism goroutines.
func (t *Tree) Query(b Box, level int) (*QueryResult, error) {
	if level < 0 || level > t.maxLevel {
		return nil, fmt.Errorf("d8tree: level %d outside [0,%d]", level, t.maxLevel)
	}
	cubes := CubesForBox(level, b)
	res := &QueryResult{CubesRead: len(cubes)}

	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, t.readParallelism)
	var firstErr error
	for _, cube := range cubes {
		cube := cube
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			cells, err := t.store.Scan(cube, nil, nil)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			for _, c := range cells {
				res.CellsScanned++
				id := binary.BigEndian.Uint64(c.CK)
				p, err := decodePoint(id, c.Value)
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				if b.Contains(p) {
					res.Points = append(res.Points, p)
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}

// CountByType aggregates matching points per type — the paper's
// prototype query over the D8tree dataset.
func (t *Tree) CountByType(b Box, level int) (map[uint8]uint64, error) {
	res, err := t.Query(b, level)
	if err != nil {
		return nil, err
	}
	out := map[uint8]uint64{}
	for _, p := range res.Points {
		out[p.Type]++
	}
	return out, nil
}

// Plan chooses the query level the performance model predicts to be
// fastest: finer levels mean more keys (better balance, more messages),
// coarser levels mean fewer, larger reads — the exact trade-off of
// Section VI, decided per query.
type Plan struct {
	Level      int
	Keys       int
	RowSize    float64
	Prediction core.Prediction
}

// PlanQuery evaluates every level against the model for a cluster of
// the given size and returns the winner.
func (t *Tree) PlanQuery(b Box, sys core.System, nodes int, totalElements int) Plan {
	best := Plan{Level: 0}
	for level := 0; level <= t.maxLevel; level++ {
		cubes := CubesForBox(level, b)
		keys := len(cubes)
		// Elements a cube holds on average: total mass spread over 8^L
		// cubes. Over-read is inherent at coarse levels; the model sees
		// it as bigger rows.
		cubesAtLevel := math.Pow(8, float64(level))
		rowSize := float64(totalElements) / cubesAtLevel
		if rowSize < 1 {
			rowSize = 1
		}
		pred := sys.Predict(int(rowSize)*keys, keys, nodes)
		if best.Keys == 0 || pred.TotalMs < best.Prediction.TotalMs {
			best = Plan{Level: level, Keys: keys, RowSize: rowSize, Prediction: pred}
		}
	}
	return best
}
