package sim

import (
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestSleepAdvancesVirtualTime(t *testing.T) {
	s := New()
	var woke time.Duration
	s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(ms(100))
		woke = p.Now()
	})
	wall := time.Now()
	end := s.Run()
	if woke != ms(100) || end != ms(100) {
		t.Fatalf("woke at %v, end %v, want 100ms", woke, end)
	}
	if real := time.Since(wall); real > 50*time.Millisecond {
		t.Fatalf("virtual sleep took %v of wall time", real)
	}
}

func TestNegativeSleepClamps(t *testing.T) {
	s := New()
	s.Spawn("p", func(p *Proc) { p.Sleep(-5) })
	if end := s.Run(); end != 0 {
		t.Fatalf("end %v want 0", end)
	}
}

func TestInterleavingIsDeterministic(t *testing.T) {
	run := func() []string {
		s := New()
		var order []string
		for i := 0; i < 5; i++ {
			name := string(rune('a' + i))
			delay := ms((5 - i) * 10)
			s.Spawn(name, func(p *Proc) {
				p.Sleep(delay)
				order = append(order, p.Name())
			})
		}
		s.Run()
		return order
	}
	first := run()
	want := []string{"e", "d", "c", "b", "a"}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("order %v want %v", first, want)
		}
	}
	for trial := 0; trial < 10; trial++ {
		if got := run(); len(got) != len(first) {
			t.Fatal("nondeterministic length")
		} else {
			for i := range got {
				if got[i] != first[i] {
					t.Fatalf("trial %d: order %v differs from %v", trial, got, first)
				}
			}
		}
	}
}

func TestEqualTimeFiresInScheduleOrder(t *testing.T) {
	s := New()
	var order []string
	for _, name := range []string{"first", "second", "third"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			p.Sleep(ms(10)) // all wake at the same instant
			order = append(order, name)
		})
	}
	s.Run()
	if order[0] != "first" || order[1] != "second" || order[2] != "third" {
		t.Fatalf("tie-break order %v", order)
	}
}

func TestQueuePutGet(t *testing.T) {
	s := New()
	q := s.NewQueue("q")
	var got []int
	s.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, p.Get(q).(int))
		}
	})
	s.Spawn("producer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(ms(10))
			q.Put(i)
		}
	})
	end := s.Run()
	if end != ms(30) {
		t.Fatalf("end %v want 30ms", end)
	}
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestQueueFIFOAcrossWaiters(t *testing.T) {
	s := New()
	q := s.NewQueue("q")
	var order []string
	for _, name := range []string{"w1", "w2"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			v := p.Get(q)
			order = append(order, name+":"+v.(string))
		})
	}
	s.Spawn("producer", func(p *Proc) {
		p.Sleep(ms(1))
		q.Put("a")
		q.Put("b")
	})
	s.Run()
	if len(order) != 2 || order[0] != "w1:a" || order[1] != "w2:b" {
		t.Fatalf("order %v", order)
	}
}

func TestQueueMaxDepth(t *testing.T) {
	s := New()
	q := s.NewQueue("q")
	s.Spawn("producer", func(p *Proc) {
		for i := 0; i < 10; i++ {
			q.Put(i)
		}
	})
	s.Spawn("slowConsumer", func(p *Proc) {
		p.Sleep(ms(1))
		for i := 0; i < 10; i++ {
			p.Get(q)
		}
	})
	s.Run()
	if q.MaxDepth != 10 {
		t.Fatalf("max depth %d want 10", q.MaxDepth)
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d", q.Len())
	}
}

func TestTryGet(t *testing.T) {
	s := New()
	q := s.NewQueue("q")
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue")
	}
	q.Put(42)
	v, ok := q.TryGet()
	if !ok || v.(int) != 42 {
		t.Fatalf("TryGet got %v,%v", v, ok)
	}
}

func TestDaemonConsumerTerminated(t *testing.T) {
	s := New()
	q := s.NewQueue("q")
	s.Spawn("daemon", func(p *Proc) {
		for {
			p.Get(q) // waits forever after the producer stops
		}
	})
	s.Spawn("producer", func(p *Proc) {
		q.Put(1)
		p.Sleep(ms(5))
		q.Put(2)
	})
	end := s.Run() // must return despite the blocked daemon
	if end != ms(5) {
		t.Fatalf("end %v want 5ms", end)
	}
}

func TestResourceLimitsConcurrency(t *testing.T) {
	s := New()
	r := s.NewResource("db", 2)
	maxSeen := 0
	active := 0
	for i := 0; i < 6; i++ {
		s.Spawn("job", func(p *Proc) {
			p.Acquire(r)
			active++
			if active > maxSeen {
				maxSeen = active
			}
			p.Sleep(ms(10))
			active--
			p.Release(r)
		})
	}
	end := s.Run()
	if maxSeen != 2 {
		t.Fatalf("max concurrency %d want 2", maxSeen)
	}
	// 6 jobs, 2 at a time, 10ms each: 30ms.
	if end != ms(30) {
		t.Fatalf("end %v want 30ms", end)
	}
}

func TestResourceUtilization(t *testing.T) {
	s := New()
	r := s.NewResource("db", 2)
	s.Spawn("job", func(p *Proc) {
		p.Acquire(r)
		p.Sleep(ms(10))
		p.Release(r)
	})
	end := s.Run()
	// One of two slots busy for the whole horizon: 50%.
	if u := r.Utilization(end); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization %.2f want 0.5", u)
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	s := New()
	r := s.NewResource("db", 1)
	panicked := make(chan bool, 1)
	s.Spawn("bad", func(p *Proc) {
		defer func() {
			panicked <- recover() != nil
			// Re-yield so the scheduler does not hang on this process.
			panic(killSentinel{})
		}()
		p.Release(r)
	})
	go func() { s.Run() }()
	select {
	case ok := <-panicked:
		if !ok {
			t.Fatal("release of idle resource did not panic")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout")
	}
}

func TestSpawnFromProcess(t *testing.T) {
	s := New()
	var childRan bool
	s.Spawn("parent", func(p *Proc) {
		p.Sleep(ms(5))
		p.sim.Spawn("child", func(c *Proc) {
			c.Sleep(ms(5))
			childRan = true
		})
	})
	end := s.Run()
	if !childRan || end != ms(10) {
		t.Fatalf("childRan=%v end=%v", childRan, end)
	}
}

func TestResourceCapacityClamp(t *testing.T) {
	s := New()
	r := s.NewResource("x", 0)
	if r.capacity != 1 {
		t.Fatalf("capacity %d want clamp to 1", r.capacity)
	}
}

// A master-slave shaped smoke test: one producer fans requests to two
// servers through queues; each server has service capacity 1.
func TestMasterSlaveShape(t *testing.T) {
	s := New()
	queues := []*Queue{s.NewQueue("s0"), s.NewQueue("s1")}
	var served [2]int
	for i := 0; i < 2; i++ {
		i := i
		s.Spawn("slave", func(p *Proc) {
			for {
				p.Get(queues[i])
				p.Sleep(ms(10)) // service time
				served[i]++
			}
		})
	}
	s.Spawn("master", func(p *Proc) {
		for r := 0; r < 10; r++ {
			p.Sleep(ms(1)) // per-message send cost
			queues[r%2].Put(r)
		}
	})
	end := s.Run()
	if served[0]+served[1] != 10 {
		t.Fatalf("served %v want 10 total", served)
	}
	// 5 requests per slave at 10ms serial each, sends interleave:
	// the last request lands at 10ms and finishes 50ms after the
	// slave's pipeline started. End must be near 10+50.
	if end < ms(50) || end > ms(62) {
		t.Fatalf("end %v outside expected window", end)
	}
}

func TestAtCallback(t *testing.T) {
	s := New()
	q := s.NewQueue("q")
	var got any
	s.Spawn("consumer", func(p *Proc) {
		got = p.Get(q)
	})
	// Model a message in flight: delivered 7ms from now with no
	// dedicated goroutine.
	s.At(ms(7), func() { q.Put("delivered") })
	end := s.Run()
	if got != "delivered" || end != ms(7) {
		t.Fatalf("got %v at %v", got, end)
	}
}

func TestAtNegativeDelayClamps(t *testing.T) {
	s := New()
	ran := false
	s.At(-ms(5), func() { ran = true })
	if end := s.Run(); !ran || end != 0 {
		t.Fatalf("ran=%v end=%v", ran, end)
	}
}

func TestAtOrderingAmongCallbacks(t *testing.T) {
	s := New()
	var order []int
	s.At(ms(5), func() { order = append(order, 2) })
	s.At(ms(1), func() { order = append(order, 1) })
	s.At(ms(5), func() { order = append(order, 3) }) // same time: schedule order
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
}

func BenchmarkEventThroughput(b *testing.B) {
	s := New()
	s.Spawn("ticker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	s.Run()
}
