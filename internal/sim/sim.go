// Package sim is a deterministic discrete-event simulator with
// process-style semantics: simulation actors are goroutines that block
// on virtual time (Sleep), FIFO queues (Get/Put) and capacity-limited
// resources (Acquire/Release), while the scheduler runs exactly one
// process at a time and advances a virtual clock between events.
//
// It substitutes for the paper's 16-node physical cluster: the
// master-slave prototype of Section V runs unchanged on top of it, with
// per-component service times drawn from the calibrated model, so
// scaling sweeps to 128 nodes execute in milliseconds on a laptop while
// preserving queueing behaviour, workload imbalance and crossovers.
//
// Determinism: events at equal times fire in schedule order (a strict
// sequence number breaks ties), and only one goroutine is runnable at
// any instant, so a simulation with a fixed seed produces identical
// traces on every run.
package sim

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Sim owns the virtual clock and the event queue.
type Sim struct {
	now    time.Duration
	events eventHeap
	seq    uint64

	yield   chan struct{} // running process -> scheduler handshake
	killed  bool
	wg      sync.WaitGroup
	nprocs  int
	blocked int // processes parked on queues/resources (not timed)

	queues    []*Queue
	resources []*Resource
}

// New creates an empty simulation at time zero.
func New() *Sim {
	return &Sim{yield: make(chan struct{})}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

type event struct {
	at  time.Duration
	seq uint64
	p   *Proc
	fn  func() // callback event; runs inline in the scheduler, must not block
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

func (s *Sim) schedule(at time.Duration, p *Proc) {
	s.seq++
	heap.Push(&s.events, event{at: at, seq: s.seq, p: p})
}

// At schedules fn to run at the given delay from now. The callback runs
// inside the scheduler and must not block; it is the cheap way to model
// in-flight messages (delayed queue Puts) without a goroutine per
// message.
func (s *Sim) At(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	heap.Push(&s.events, event{at: s.now + delay, seq: s.seq, fn: fn})
}

// Proc is the handle a simulation process uses to interact with virtual
// time. All methods must be called from the process's own goroutine.
type Proc struct {
	sim    *Sim
	name   string
	resume chan struct{}
	dead   bool
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.sim.now }

type killSentinel struct{}

// Spawn registers a new process starting at the current virtual time.
// It may be called before Run or from inside a running process.
func (s *Sim) Spawn(name string, fn func(*Proc)) {
	p := &Proc{sim: s, name: name, resume: make(chan struct{}, 1)}
	s.nprocs++
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				if _, isKill := r.(killSentinel); !isKill {
					panic(r)
				}
				return // killed: exit silently, no yield
			}
		}()
		if _, ok := <-p.resume; !ok {
			panic(killSentinel{})
		}
		fn(p)
		p.dead = true
		s.nprocs--
		s.yield <- struct{}{}
	}()
	s.schedule(s.now, p)
}

// park gives control back to the scheduler and blocks until resumed.
func (p *Proc) park() {
	p.sim.yield <- struct{}{}
	if _, ok := <-p.resume; !ok {
		panic(killSentinel{})
	}
}

// Sleep advances the process by d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.sim.schedule(p.sim.now+d, p)
	p.park()
}

// Run executes events until none remain, then returns the final virtual
// time. Processes still parked on queues or resources when the event
// queue drains are considered daemons and are terminated.
func (s *Sim) Run() time.Duration {
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(event)
		if ev.fn != nil {
			s.now = ev.at
			ev.fn()
			continue
		}
		if ev.p.dead {
			continue
		}
		s.now = ev.at
		ev.p.resume <- struct{}{}
		<-s.yield
	}
	s.kill()
	return s.now
}

// kill terminates daemon processes still blocked after the run.
func (s *Sim) kill() {
	if s.killed {
		return
	}
	s.killed = true
	// Closing resume unblocks parked processes into the kill panic.
	// Processes blocked in queue waiters are parked on resume too.
	for _, q := range s.queues {
		for _, w := range q.waiters {
			close(w.resume)
		}
		q.waiters = nil
	}
	for _, r := range s.resources {
		for _, w := range r.waiters {
			close(w.resume)
		}
		r.waiters = nil
	}
	s.wg.Wait()
}

// Deadlocked reports whether processes remain blocked with no pending
// events — useful in tests to assert clean shutdown.
func (s *Sim) Deadlocked() bool {
	return s.events.Len() == 0 && s.blocked > 0
}

// --- Queues -------------------------------------------------------------

// Queue is an unbounded FIFO channel between processes. Put is
// instantaneous; Get blocks until an item is available.
type Queue struct {
	sim     *Sim
	name    string
	items   []any
	waiters []*Proc
	// MaxDepth tracks the high-water mark, a congestion metric the
	// Figure 4 analysis reads ("requests spend a considerable time
	// waiting in-queue").
	MaxDepth int
}

// NewQueue creates a queue registered with the simulation (registration
// lets Run terminate daemon consumers cleanly).
func (s *Sim) NewQueue(name string) *Queue {
	q := &Queue{sim: s, name: name}
	s.queues = append(s.queues, q)
	return q
}

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

// Put appends an item and wakes one waiting consumer.
func (q *Queue) Put(v any) {
	q.items = append(q.items, v)
	if len(q.items) > q.MaxDepth {
		q.MaxDepth = len(q.items)
	}
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.sim.blocked--
		q.sim.schedule(q.sim.now, w)
	}
}

// Get removes and returns the oldest item, blocking while the queue is
// empty.
func (p *Proc) Get(q *Queue) any {
	for len(q.items) == 0 {
		q.waiters = append(q.waiters, p)
		p.sim.blocked++
		p.park()
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

// TryGet removes the oldest item without blocking.
func (q *Queue) TryGet() (any, bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// --- Resources ----------------------------------------------------------

// Resource models a capacity-limited server (CPU slots, a database's
// concurrent-request limit). Acquire blocks while all slots are taken.
type Resource struct {
	sim      *Sim
	name     string
	capacity int
	inUse    int
	waiters  []*Proc
	// Busy accumulates slot-time for utilization accounting.
	Busy       time.Duration
	lastChange time.Duration
}

// NewResource creates a resource with the given slot count.
func (s *Sim) NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		capacity = 1
	}
	r := &Resource{sim: s, name: name, capacity: capacity}
	s.resources = append(s.resources, r)
	return r
}

// Acquire takes one slot, blocking until one frees.
func (p *Proc) Acquire(r *Resource) {
	for r.inUse >= r.capacity {
		r.waiters = append(r.waiters, p)
		p.sim.blocked++
		p.park()
	}
	r.accumulate()
	r.inUse++
}

// Release frees one slot and wakes one waiter.
func (p *Proc) Release(r *Resource) {
	if r.inUse == 0 {
		panic(fmt.Sprintf("sim: release of idle resource %q", r.name))
	}
	r.accumulate()
	r.inUse--
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		p.sim.blocked--
		p.sim.schedule(p.sim.now, w)
	}
}

func (r *Resource) accumulate() {
	r.Busy += time.Duration(r.inUse) * (r.sim.now - r.lastChange)
	r.lastChange = r.sim.now
}

// Utilization returns mean busy slots / capacity over [0, horizon].
func (r *Resource) Utilization(horizon time.Duration) float64 {
	if horizon <= 0 {
		return 0
	}
	busy := r.Busy + time.Duration(r.inUse)*(r.sim.now-r.lastChange)
	return float64(busy) / float64(horizon) / float64(r.capacity)
}

// InUse returns the currently held slot count.
func (r *Resource) InUse() int { return r.inUse }
