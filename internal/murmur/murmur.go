// Package murmur implements MurmurHash3 x64 128-bit, the hash family used
// by Cassandra's Murmur3Partitioner to map partition keys onto the token
// ring. Only the 128-bit x64 variant is provided because it is the one the
// paper's workload placement depends on.
//
// The implementation is allocation-free for the common case and processes
// the input in 16-byte blocks exactly as the reference C++ code does, so
// token values are stable across runs and platforms.
package murmur

import "math/bits"

const (
	c1 = 0x87c37b91114253d5
	c2 = 0x4cf5ad432745937f
)

// Sum128 returns the 128-bit MurmurHash3 (x64 variant) of data with seed 0.
func Sum128(data []byte) (uint64, uint64) {
	return Sum128Seed(data, 0)
}

// Sum128Seed returns the 128-bit MurmurHash3 (x64 variant) of data using
// the given seed. Cassandra uses seed 0; other seeds are exposed for the
// blocked bloom filter, which derives independent probe positions from
// distinct seeds.
func Sum128Seed(data []byte, seed uint32) (uint64, uint64) {
	h1 := uint64(seed)
	h2 := uint64(seed)
	n := len(data)

	// Body: 16-byte blocks.
	nblocks := n / 16
	for i := 0; i < nblocks; i++ {
		b := data[i*16 : i*16+16]
		k1 := le64(b[0:8])
		k2 := le64(b[8:16])

		k1 *= c1
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= c2
		h1 ^= k1

		h1 = bits.RotateLeft64(h1, 27)
		h1 += h2
		h1 = h1*5 + 0x52dce729

		k2 *= c2
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= c1
		h2 ^= k2

		h2 = bits.RotateLeft64(h2, 31)
		h2 += h1
		h2 = h2*5 + 0x38495ab5
	}

	// Tail: remaining 0..15 bytes.
	tail := data[nblocks*16:]
	var k1, k2 uint64
	switch len(tail) & 15 {
	case 15:
		k2 ^= uint64(tail[14]) << 48
		fallthrough
	case 14:
		k2 ^= uint64(tail[13]) << 40
		fallthrough
	case 13:
		k2 ^= uint64(tail[12]) << 32
		fallthrough
	case 12:
		k2 ^= uint64(tail[11]) << 24
		fallthrough
	case 11:
		k2 ^= uint64(tail[10]) << 16
		fallthrough
	case 10:
		k2 ^= uint64(tail[9]) << 8
		fallthrough
	case 9:
		k2 ^= uint64(tail[8])
		k2 *= c2
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= c1
		h2 ^= k2
		fallthrough
	case 8:
		k1 ^= uint64(tail[7]) << 56
		fallthrough
	case 7:
		k1 ^= uint64(tail[6]) << 48
		fallthrough
	case 6:
		k1 ^= uint64(tail[5]) << 40
		fallthrough
	case 5:
		k1 ^= uint64(tail[4]) << 32
		fallthrough
	case 4:
		k1 ^= uint64(tail[3]) << 24
		fallthrough
	case 3:
		k1 ^= uint64(tail[2]) << 16
		fallthrough
	case 2:
		k1 ^= uint64(tail[1]) << 8
		fallthrough
	case 1:
		k1 ^= uint64(tail[0])
		k1 *= c1
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= c2
		h1 ^= k1
	}

	// Finalization.
	h1 ^= uint64(n)
	h2 ^= uint64(n)
	h1 += h2
	h2 += h1
	h1 = fmix64(h1)
	h2 = fmix64(h2)
	h1 += h2
	h2 += h1
	return h1, h2
}

// Sum64 returns the first 64 bits of the 128-bit hash. Cassandra's
// Murmur3Partitioner token is this value interpreted as a signed int64.
func Sum64(data []byte) uint64 {
	h1, _ := Sum128(data)
	return h1
}

// StringSum64 hashes a string without forcing the caller to copy it into a
// byte slice at each call site.
func StringSum64(s string) uint64 {
	// The conversion allocates only if the compiler cannot prove the
	// slice does not escape; hashing does not retain it.
	return Sum64([]byte(s))
}

// Token maps data to a Cassandra-style token: the first 64 bits of the
// 128-bit hash as a signed integer, the value Murmur3Partitioner places on
// the ring.
func Token(data []byte) int64 {
	return int64(Sum64(data))
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func fmix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}
