package murmur

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

// Reference vectors for MurmurHash3_x64_128, seed 0, as produced by the
// canonical C++ implementation.
var refVectors = []struct {
	in     string
	h1, h2 uint64
}{
	{"", 0x0000000000000000, 0x0000000000000000},
	{"hello", 0xcbd8a7b341bd9b02, 0x5b1e906a48ae1d19},
	{"hello, world", 0x342fac623a5ebc8e, 0x4cdcbc079642414d},
	{"19 Jan 2038 at 3:14:07 AM", 0xb89e5988b737affc, 0x664fc2950231b2cb},
	{"The quick brown fox jumps over the lazy dog.", 0xcd99481f9ee902c9, 0x695da1a38987b6e7},
}

func TestSum128ReferenceVectors(t *testing.T) {
	for _, v := range refVectors {
		h1, h2 := Sum128([]byte(v.in))
		if h1 != v.h1 || h2 != v.h2 {
			t.Errorf("Sum128(%q) = %#x,%#x want %#x,%#x", v.in, h1, h2, v.h1, v.h2)
		}
	}
}

func TestSum128SeedDiffersFromSeedZero(t *testing.T) {
	in := []byte("partition-key-42")
	h1a, h2a := Sum128Seed(in, 0)
	h1b, h2b := Sum128Seed(in, 1)
	if h1a == h1b && h2a == h2b {
		t.Fatalf("seeds 0 and 1 collide on %q", in)
	}
}

func TestSum64MatchesSum128FirstWord(t *testing.T) {
	for _, v := range refVectors {
		if got := Sum64([]byte(v.in)); got != v.h1 {
			t.Errorf("Sum64(%q) = %#x want %#x", v.in, got, v.h1)
		}
	}
}

func TestStringSum64MatchesByteVersion(t *testing.T) {
	f := func(s string) bool {
		return StringSum64(s) == Sum64([]byte(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenIsSignedFirstWord(t *testing.T) {
	for _, v := range refVectors {
		if got := Token([]byte(v.in)); got != int64(v.h1) {
			t.Errorf("Token(%q) = %d want %d", v.in, got, int64(v.h1))
		}
	}
}

// The hash must read every byte: flipping any single bit must change the
// output (with overwhelming probability; equality would be a 2^-128 event,
// so treat it as failure).
func TestAvalancheSingleBitFlip(t *testing.T) {
	base := make([]byte, 64)
	for i := range base {
		base[i] = byte(i * 7)
	}
	h1, h2 := Sum128(base)
	for i := 0; i < len(base)*8; i++ {
		mut := make([]byte, len(base))
		copy(mut, base)
		mut[i/8] ^= 1 << (i % 8)
		m1, m2 := Sum128(mut)
		if m1 == h1 && m2 == h2 {
			t.Fatalf("bit flip at %d did not change hash", i)
		}
	}
}

// All tail lengths 0..15 must be exercised and produce distinct values for
// distinct inputs of the same length.
func TestTailLengths(t *testing.T) {
	for n := 0; n <= 48; n++ {
		a := make([]byte, n)
		b := make([]byte, n)
		for i := 0; i < n; i++ {
			a[i] = byte(i)
			b[i] = byte(i + 1)
		}
		ah1, ah2 := Sum128(a)
		bh1, bh2 := Sum128(b)
		if n > 0 && ah1 == bh1 && ah2 == bh2 {
			t.Errorf("len %d: distinct inputs hash equal", n)
		}
		// Determinism.
		ch1, ch2 := Sum128(a)
		if ch1 != ah1 || ch2 != ah2 {
			t.Errorf("len %d: hash not deterministic", n)
		}
	}
}

// Tokens of sequential integer keys should look uniform over the int64
// range: check that the fraction landing in the upper half is near 1/2.
func TestTokenUniformity(t *testing.T) {
	const n = 20000
	var upper int
	var buf [8]byte
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(buf[:], uint64(i))
		if Token(buf[:]) >= 0 {
			upper++
		}
	}
	frac := float64(upper) / n
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("non-negative token fraction %.4f, want ~0.5", frac)
	}
}

func TestQuickDeterminism(t *testing.T) {
	f := func(b []byte) bool {
		h1a, h2a := Sum128(b)
		h1b, h2b := Sum128(b)
		return h1a == h1b && h2a == h2b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkSum128_16B(b *testing.B) { benchSum(b, 16) }
func BenchmarkSum128_1K(b *testing.B)  { benchSum(b, 1024) }

func benchSum(b *testing.B, size int) {
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sum128(data)
	}
}
