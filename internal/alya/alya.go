// Package alya generates the case study's dataset: a synthetic stand-in
// for the output of the Alya multi-physics simulator on the problem the
// paper describes — "how the particles are dragged into the bronchi
// during an inhalation".
//
// Particles enter a binary branching airway tree at the trachea and are
// advected downward; at every bifurcation they pick a child branch, and
// they may deposit on the airway wall with a probability that grows with
// depth (narrower airways) and particle size. The result is a
// multidimensional point set — position, time step, particle type — with
// the spatial clustering and hotspot skew that makes the D8tree's
// choose-your-granularity indexing interesting.
//
// The substitution is documented in DESIGN.md: the experiments need a
// realistic ~1M-element multidimensional dataset, not the proprietary
// simulator itself.
package alya

import (
	"fmt"
	"math"
	"math/rand"
)

// Record is one observation: a particle's state at a time step. All
// coordinates live in [0,1).
type Record struct {
	ParticleID uint32
	Step       uint16
	Type       uint8 // particle species (size class)
	X, Y, Z    float64
	Velocity   float64
	Deposited  bool
}

// Config sizes a simulation.
type Config struct {
	// Particles inhaled at step 0.
	Particles int
	// Steps of advection.
	Steps int
	// Types of particle (size classes); type influences deposition.
	// 0 means 4.
	Types int
	// Depth of the bronchial tree. 0 means 8 generations.
	Depth int
	// Seed fixes the trajectory randomness.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Particles <= 0 {
		c.Particles = 1000
	}
	if c.Steps <= 0 {
		c.Steps = 100
	}
	if c.Types <= 0 {
		c.Types = 4
	}
	if c.Depth <= 0 {
		c.Depth = 8
	}
	return c
}

// branchCenter returns the 3D midpoint of branch `index` at `depth`.
// The tree is embedded deterministically: depth maps to Y (descending
// from 1 toward 0), the branch index spreads over X, and Z wobbles so
// cubes at fine levels separate.
func branchCenter(depth, index int) (x, y, z float64) {
	n := 1 << depth // branches at this depth
	x = (float64(index) + 0.5) / float64(n)
	y = 1 - (float64(depth)+0.5)/16 // depth 0..15 supported
	z = 0.5 + 0.35*math.Sin(float64(index)*2.399+float64(depth))
	return x, y, clamp01(z)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v >= 1 {
		return math.Nextafter(1, 0)
	}
	return v
}

// Simulate runs the advection and returns one Record per particle per
// step until each particle deposits (records stop after deposition).
// Output is deterministic for a given Config.
func Simulate(cfg Config) []Record {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	type pstate struct {
		depth     int
		branch    int
		progress  float64 // position along current branch, 0..1
		deposited bool
		ptype     uint8
		velocity  float64
	}
	parts := make([]pstate, cfg.Particles)
	for i := range parts {
		parts[i] = pstate{
			ptype:    uint8(rng.Intn(cfg.Types)),
			velocity: 0.5 + rng.Float64(), // relative airflow share
		}
	}

	var out []Record
	for step := 0; step < cfg.Steps; step++ {
		for i := range parts {
			p := &parts[i]
			if p.deposited {
				continue
			}
			// Advance along the branch; heavier types (higher value)
			// move slower and settle more.
			p.progress += p.velocity * (0.3 - 0.02*float64(p.ptype))
			if p.progress >= 1 {
				if p.depth+1 >= cfg.Depth {
					p.deposited = true // reached the alveoli
				} else {
					// Bifurcation: slight bias toward the right lung.
					child := 0
					if rng.Float64() < 0.55 {
						child = 1
					}
					p.depth++
					p.branch = p.branch*2 + child
					p.progress = 0
				}
			}
			// Wall deposition: likelier deeper (narrower airways) and
			// for heavier species.
			depositP := 0.004 * float64(p.depth) * (1 + 0.5*float64(p.ptype))
			if !p.deposited && rng.Float64() < depositP {
				p.deposited = true
			}

			cx, cy, cz := branchCenter(p.depth, p.branch)
			// Jitter within the airway lumen.
			jitter := 0.4 / float64(int(1)<<p.depth)
			rec := Record{
				ParticleID: uint32(i),
				Step:       uint16(step),
				Type:       p.ptype,
				X:          clamp01(cx + (rng.Float64()-0.5)*jitter),
				Y:          clamp01(cy + (rng.Float64()-0.5)*0.03),
				Z:          clamp01(cz + (rng.Float64()-0.5)*jitter),
				Velocity:   p.velocity,
				Deposited:  p.deposited,
			}
			out = append(out, rec)
		}
	}
	return out
}

// DepositionByType summarises what fraction of each particle type
// deposited by the end of the simulation — the physiological quantity
// the case study's queries aggregate.
func DepositionByType(records []Record) map[uint8]float64 {
	// Final state is each particle's last record (records are emitted in
	// step order).
	last := map[uint32]Record{}
	for _, r := range records {
		last[r.ParticleID] = r
	}
	deposited := map[uint8]int{}
	total := map[uint8]int{}
	for _, r := range last {
		total[r.Type]++
		if r.Deposited {
			deposited[r.Type]++
		}
	}
	out := map[uint8]float64{}
	for ty, n := range total {
		out[ty] = float64(deposited[ty]) / float64(n)
	}
	return out
}

// String renders a record compactly for logs and examples.
func (r Record) String() string {
	return fmt.Sprintf("p%d@%d type=%d (%.3f,%.3f,%.3f)", r.ParticleID, r.Step, r.Type, r.X, r.Y, r.Z)
}
