package alya

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	cfg := Config{Particles: 100, Steps: 50, Seed: 42}
	a := Simulate(cfg)
	b := Simulate(cfg)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := Simulate(Config{Particles: 100, Steps: 50, Seed: 43})
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical output")
		}
	}
}

func TestCoordinatesInUnitCube(t *testing.T) {
	for _, r := range Simulate(Config{Particles: 200, Steps: 100, Seed: 1}) {
		if r.X < 0 || r.X >= 1 || r.Y < 0 || r.Y >= 1 || r.Z < 0 || r.Z >= 1 {
			t.Fatalf("record out of unit cube: %v", r)
		}
	}
}

func TestRecordCountBounds(t *testing.T) {
	cfg := Config{Particles: 100, Steps: 50, Seed: 7}
	recs := Simulate(cfg)
	if len(recs) > cfg.Particles*cfg.Steps {
		t.Fatalf("%d records exceed particles*steps", len(recs))
	}
	if len(recs) < cfg.Particles {
		t.Fatalf("%d records, want at least one per particle", len(recs))
	}
}

func TestDepositionHappens(t *testing.T) {
	recs := Simulate(Config{Particles: 500, Steps: 200, Seed: 3})
	frac := DepositionByType(recs)
	anyDeposited := false
	for _, f := range frac {
		if f > 0 {
			anyDeposited = true
		}
		if f < 0 || f > 1 {
			t.Fatalf("deposition fraction %v out of range", f)
		}
	}
	if !anyDeposited {
		t.Fatal("no particle deposited over 200 steps")
	}
}

// Heavier particle types deposit more readily — the physical gradient
// the synthetic model encodes. Use a short horizon: over a long
// inhalation every particle eventually settles, flattening the contrast.
func TestHeavierTypesDepositMore(t *testing.T) {
	recs := Simulate(Config{Particles: 4000, Steps: 20, Types: 4, Seed: 5})
	frac := DepositionByType(recs)
	if frac[3] <= frac[0] {
		t.Fatalf("type 3 deposition %.3f not above type 0 %.3f", frac[3], frac[0])
	}
}

// Particles move downward through the tree: mean Y must decrease with
// step (depth maps to lower Y).
func TestAdvectionDescends(t *testing.T) {
	recs := Simulate(Config{Particles: 500, Steps: 100, Seed: 9})
	sumY := map[uint16]float64{}
	n := map[uint16]int{}
	for _, r := range recs {
		sumY[r.Step] += r.Y
		n[r.Step]++
	}
	early := sumY[2] / float64(n[2])
	late := sumY[80] / float64(n[80])
	if late >= early {
		t.Fatalf("mean Y did not descend: step2=%.3f step80=%.3f", early, late)
	}
}

// The data must be spatially clustered, not uniform: the paper's case
// needs hotspot skew. Compare occupancy variance of a coarse grid to a
// uniform distribution of the same mass.
func TestSpatialClustering(t *testing.T) {
	recs := Simulate(Config{Particles: 2000, Steps: 50, Seed: 11})
	const g = 8
	var grid [g][g][g]int
	for _, r := range recs {
		grid[int(r.X*g)][int(r.Y*g)][int(r.Z*g)]++
	}
	mean := float64(len(recs)) / (g * g * g)
	var ss float64
	for x := 0; x < g; x++ {
		for y := 0; y < g; y++ {
			for z := 0; z < g; z++ {
				d := float64(grid[x][y][z]) - mean
				ss += d * d
			}
		}
	}
	variance := ss / (g * g * g)
	// Uniform data would have variance ~mean (Poisson); clustered data
	// is far above.
	if variance < 5*mean {
		t.Fatalf("variance %.1f vs mean %.1f — data not clustered", variance, mean)
	}
}

func TestDefaults(t *testing.T) {
	recs := Simulate(Config{Seed: 1})
	if len(recs) == 0 {
		t.Fatal("default config produced nothing")
	}
	if s := recs[0].String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestBranchCenterBounds(t *testing.T) {
	for depth := 0; depth < 12; depth++ {
		for _, idx := range []int{0, (1 << depth) - 1} {
			x, y, z := branchCenter(depth, idx)
			if x < 0 || x >= 1 || y < 0 || y >= 1 || z < 0 || z >= 1 {
				t.Fatalf("branchCenter(%d,%d) = (%v,%v,%v) out of cube", depth, idx, x, y, z)
			}
		}
	}
}

func TestClamp01(t *testing.T) {
	if clamp01(-0.5) != 0 {
		t.Fatal("negative clamp")
	}
	if v := clamp01(1.5); v >= 1 || math.IsNaN(v) {
		t.Fatal("overflow clamp")
	}
	if clamp01(0.5) != 0.5 {
		t.Fatal("identity clamp")
	}
}

func BenchmarkSimulate10kParticles(b *testing.B) {
	cfg := Config{Particles: 10000, Steps: 100, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Simulate(cfg)
	}
}
