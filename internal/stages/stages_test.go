package stages

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestRecordAndSpans(t *testing.T) {
	tr := NewTrace()
	tr.Record(1, 0, MasterToSlave, ms(0), ms(1))
	tr.Record(1, 0, InQueue, ms(1), ms(3))
	tr.Record(1, 0, InDB, ms(3), ms(10))
	tr.Record(1, 0, SlaveToMaster, ms(10), ms(11))
	if tr.Len() != 4 {
		t.Fatalf("len %d want 4", tr.Len())
	}
	spans := tr.Spans()
	if spans[2].Duration() != ms(7) {
		t.Fatalf("InDB duration %v want 7ms", spans[2].Duration())
	}
}

func TestStageNames(t *testing.T) {
	want := map[Stage]string{
		MasterToSlave: "master-to-slaves",
		InQueue:       "in-queue",
		InDB:          "in-cassandra",
		SlaveToMaster: "slaves-to-master",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d.String() = %q want %q", s, s.String(), name)
		}
	}
	if Stage(99).String() == "" {
		t.Error("unknown stage must still render")
	}
	if len(Stages()) != 4 {
		t.Error("Stages() must list 4 stages")
	}
}

func TestOpsPerNode(t *testing.T) {
	tr := NewTrace()
	for i := 0; i < 10; i++ {
		tr.Record(uint64(i), i%3, InDB, ms(i), ms(i+1))
		tr.Record(uint64(i), i%3, InQueue, ms(i), ms(i)) // not counted
	}
	ops := tr.OpsPerNode()
	if ops[0] != 4 || ops[1] != 3 || ops[2] != 3 {
		t.Fatalf("ops %v want 4/3/3", ops)
	}
}

func TestStageDurationsAndTotal(t *testing.T) {
	tr := NewTrace()
	tr.Record(1, 0, InDB, ms(0), ms(5))
	tr.Record(2, 0, InDB, ms(5), ms(8))
	tr.Record(3, 1, InDB, ms(0), ms(2))
	per := tr.StageDurations(InDB)
	if len(per[0]) != 2 || len(per[1]) != 1 {
		t.Fatalf("per-node %v", per)
	}
	if tr.StageTotal(InDB) != ms(10) {
		t.Fatalf("total %v want 10ms", tr.StageTotal(InDB))
	}
	if tr.StageEnd(InDB) != ms(8) {
		t.Fatalf("end %v want 8ms", tr.StageEnd(InDB))
	}
}

func TestBusyWindowsMergesOverlaps(t *testing.T) {
	tr := NewTrace()
	tr.Record(1, 0, InDB, ms(0), ms(5))
	tr.Record(2, 0, InDB, ms(3), ms(7)) // overlaps previous
	tr.Record(3, 0, InDB, ms(10), ms(12))
	windows := tr.BusyWindows(0, InDB)
	if len(windows) != 2 {
		t.Fatalf("windows %v want 2", windows)
	}
	if windows[0].Start != ms(0) || windows[0].End != ms(7) {
		t.Fatalf("first window %+v", windows[0])
	}
}

func TestIdleTime(t *testing.T) {
	tr := NewTrace()
	tr.Record(1, 0, InDB, ms(0), ms(2))
	tr.Record(2, 0, InDB, ms(8), ms(10))
	// Busy 4ms over a 10ms horizon: 6ms idle — the "white spots".
	if idle := tr.IdleTime(0, InDB, ms(10)); idle != ms(6) {
		t.Fatalf("idle %v want 6ms", idle)
	}
	// Horizon before the second window.
	if idle := tr.IdleTime(0, InDB, ms(5)); idle != ms(3) {
		t.Fatalf("idle %v want 3ms", idle)
	}
}

func TestNodes(t *testing.T) {
	tr := NewTrace()
	tr.Record(1, 5, InDB, 0, 1)
	tr.Record(2, 1, InDB, 0, 1)
	tr.Record(3, 5, InQueue, 0, 1)
	nodes := tr.Nodes()
	if len(nodes) != 2 || nodes[0] != 1 || nodes[1] != 5 {
		t.Fatalf("nodes %v", nodes)
	}
}

func TestRenderProfile(t *testing.T) {
	tr := NewTrace()
	tr.Record(1, 0, MasterToSlave, ms(0), ms(1))
	tr.Record(1, 0, InDB, ms(1), ms(10))
	out := tr.RenderProfile(40)
	if !strings.Contains(out, "in-cassandra") {
		t.Fatal("profile missing stage name")
	}
	if !strings.Contains(out, "#") {
		t.Fatal("profile has no busy segments")
	}
	if empty := NewTrace().RenderProfile(40); !strings.Contains(empty, "empty") {
		t.Fatal("empty trace must say so")
	}
}

func TestWriteCSV(t *testing.T) {
	tr := NewTrace()
	tr.Record(1, 0, MasterToSlave, ms(0), ms(1))
	tr.Record(1, 0, InDB, ms(1), ms(10))
	var buf strings.Builder
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines want 3 (header + 2 spans)", len(lines))
	}
	if lines[0] != "request_id,node,stage,start_us,end_us" {
		t.Fatalf("bad header %q", lines[0])
	}
	if !strings.Contains(out, "1,0,in-cassandra,1000,10000") {
		t.Fatalf("missing span row in:\n%s", out)
	}
}

func TestConcurrentRecord(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Record(uint64(i), g, InDB, ms(i), ms(i+1))
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != 8000 {
		t.Fatalf("len %d want 8000", tr.Len())
	}
}
