// Package stages is the Aeneas-style high-resolution tracer of the
// paper's Section IV-B: instead of box metrics (page faults, IO), it
// records the time every request spends in each primary data-flow phase —
// master-to-slave, in-queue, in-cassandra, slave-to-master — which is the
// decomposition that made the paper's bottlenecks visible.
//
// Times are stored as offsets from the query start, so the tracer works
// identically under the wall clock and under the discrete-event
// simulator's virtual clock.
package stages

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Stage enumerates the paper's four request phases.
type Stage int

// The four stages of Section V-B, in pipeline order.
const (
	MasterToSlave Stage = iota
	InQueue
	InDB
	SlaveToMaster
	numStages
)

// String returns the paper's name for the stage.
func (s Stage) String() string {
	switch s {
	case MasterToSlave:
		return "master-to-slaves"
	case InQueue:
		return "in-queue"
	case InDB:
		return "in-cassandra"
	case SlaveToMaster:
		return "slaves-to-master"
	default:
		return fmt.Sprintf("stage(%d)", int(s))
	}
}

// Stages lists all stages in pipeline order.
func Stages() []Stage {
	return []Stage{MasterToSlave, InQueue, InDB, SlaveToMaster}
}

// Span is one request's residence in one stage on one node.
type Span struct {
	RequestID uint64
	Node      int
	Stage     Stage
	Start     time.Duration // offset from query start
	End       time.Duration
}

// Duration returns the span length.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// Trace collects spans concurrently and answers the aggregate questions
// the figures need.
type Trace struct {
	mu    sync.Mutex
	spans []Span
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Record appends one span. Safe for concurrent use.
func (t *Trace) Record(reqID uint64, node int, stage Stage, start, end time.Duration) {
	t.mu.Lock()
	t.spans = append(t.spans, Span{RequestID: reqID, Node: node, Stage: stage, Start: start, End: end})
	t.mu.Unlock()
}

// Spans returns a copy of every recorded span.
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Len returns the number of recorded spans.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// OpsPerNode counts requests that reached the database stage on each
// node — the top bar chart of Figure 2.
func (t *Trace) OpsPerNode() map[int]int {
	out := map[int]int{}
	for _, s := range t.Spans() {
		if s.Stage == InDB {
			out[s.Node]++
		}
	}
	return out
}

// StageDurations returns every span length of a stage grouped by node —
// the bottom chart of Figure 2 (for InDB) and the rows of Figure 4.
func (t *Trace) StageDurations(stage Stage) map[int][]time.Duration {
	out := map[int][]time.Duration{}
	for _, s := range t.Spans() {
		if s.Stage == stage {
			out[s.Node] = append(out[s.Node], s.Duration())
		}
	}
	return out
}

// StageTotal sums all span lengths of a stage across nodes.
func (t *Trace) StageTotal(stage Stage) time.Duration {
	var sum time.Duration
	for _, s := range t.Spans() {
		if s.Stage == stage {
			sum += s.Duration()
		}
	}
	return sum
}

// StageEnd returns the latest End across spans of a stage; for
// MasterToSlave this is the paper's "time the master finished sending".
func (t *Trace) StageEnd(stage Stage) time.Duration {
	var max time.Duration
	for _, s := range t.Spans() {
		if s.Stage == stage && s.End > max {
			max = s.End
		}
	}
	return max
}

// BusyWindows merges a node's spans of one stage into disjoint busy
// windows; gaps between windows are the idle "white spots" the paper
// reads off Figure 4 to conclude Cassandra was starved.
func (t *Trace) BusyWindows(node int, stage Stage) []Span {
	var spans []Span
	for _, s := range t.Spans() {
		if s.Node == node && s.Stage == stage {
			spans = append(spans, s)
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	var out []Span
	for _, s := range spans {
		if n := len(out); n > 0 && s.Start <= out[n-1].End {
			if s.End > out[n-1].End {
				out[n-1].End = s.End
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

// IdleTime sums the gaps between a node's busy windows of one stage over
// [0, horizon].
func (t *Trace) IdleTime(node int, stage Stage, horizon time.Duration) time.Duration {
	busy := t.BusyWindows(node, stage)
	var covered time.Duration
	for _, w := range busy {
		end := w.End
		if end > horizon {
			end = horizon
		}
		if w.Start >= horizon {
			break
		}
		covered += end - w.Start
	}
	if covered > horizon {
		return 0
	}
	return horizon - covered
}

// Nodes returns the sorted set of node IDs that appear in the trace.
func (t *Trace) Nodes() []int {
	seen := map[int]bool{}
	for _, s := range t.Spans() {
		seen[s.Node] = true
	}
	out := make([]int, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// WriteCSV streams the raw spans as CSV (request_id, node, stage,
// start_us, end_us), the Aeneas export format for offline analysis of a
// run's profile.
func (t *Trace) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "request_id,node,stage,start_us,end_us"); err != nil {
		return err
	}
	for _, s := range t.Spans() {
		_, err := fmt.Fprintf(w, "%d,%d,%s,%d,%d\n",
			s.RequestID, s.Node, s.Stage, s.Start.Microseconds(), s.End.Microseconds())
		if err != nil {
			return err
		}
	}
	return nil
}

// RenderProfile draws a Figure 4-style text profile: one row per
// (node, stage), each span as a '#' segment on a time axis of the given
// width. Short events nearly vanish, congestion shows as long bars —
// the same reading the paper applies.
func (t *Trace) RenderProfile(width int) string {
	if width < 20 {
		width = 20
	}
	var horizon time.Duration
	for _, s := range t.Spans() {
		if s.End > horizon {
			horizon = s.End
		}
	}
	if horizon == 0 {
		return "(empty trace)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "horizon: %v   (# >=85%% busy, + >=50%%, - >=15%%, . idle)\n", horizon)
	cellW := float64(horizon) / float64(width)
	for _, stage := range Stages() {
		fmt.Fprintf(&b, "%s\n", stage)
		for _, node := range t.Nodes() {
			// Accumulate exact busy time per character cell so that
			// many tiny events render as density, not as solid bars —
			// the paper's "short-lasting events are almost invisible".
			cover := make([]float64, width)
			for _, s := range t.Spans() {
				if s.Node != node || s.Stage != stage {
					continue
				}
				lo := float64(s.Start) / cellW
				hi := float64(s.End) / cellW
				for c := int(lo); c < width && float64(c) < hi; c++ {
					from := math.Max(lo, float64(c))
					to := math.Min(hi, float64(c+1))
					if to > from {
						cover[c] += to - from
					}
				}
			}
			line := make([]byte, width)
			for i, cv := range cover {
				switch {
				case cv >= 0.85:
					line[i] = '#'
				case cv >= 0.5:
					line[i] = '+'
				case cv >= 0.15:
					line[i] = '-'
				default:
					line[i] = '.'
				}
			}
			fmt.Fprintf(&b, "  node %-2d |%s|\n", node, line)
		}
	}
	return b.String()
}
