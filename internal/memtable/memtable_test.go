package memtable

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestPutGet(t *testing.T) {
	m := New(1)
	m.Put("p1", []byte("c1"), []byte("v1"))
	m.Put("p1", []byte("c2"), []byte("v2"))
	m.Put("p2", []byte("c1"), []byte("v3"))
	v, ok := m.Get("p1", []byte("c1"))
	if !ok || string(v) != "v1" {
		t.Fatalf("got %q,%v", v, ok)
	}
	if _, ok := m.Get("p3", []byte("c1")); ok {
		t.Fatal("found absent partition")
	}
	if m.Len() != 3 {
		t.Fatalf("len %d want 3", m.Len())
	}
}

func TestValueIsCopied(t *testing.T) {
	m := New(1)
	buf := []byte("original")
	m.Put("p", []byte("c"), buf)
	copy(buf, "CLOBBER!")
	v, _ := m.Get("p", []byte("c"))
	if string(v) != "original" {
		t.Fatalf("stored value aliased caller buffer: %q", v)
	}
}

func TestScanPartitionIsolation(t *testing.T) {
	m := New(1)
	// Partition keys chosen so one is a prefix of another.
	for i := 0; i < 5; i++ {
		m.Put("a", []byte{byte(i)}, []byte("va"))
		m.Put("ab", []byte{byte(i)}, []byte("vab"))
	}
	cells := m.ScanPartition("a", nil, nil)
	if len(cells) != 5 {
		t.Fatalf("partition a has %d cells want 5", len(cells))
	}
	for _, c := range cells {
		if string(c.Value) != "va" {
			t.Fatalf("cell from wrong partition: %q", c.Value)
		}
	}
}

func TestScanPartitionRange(t *testing.T) {
	m := New(1)
	for i := 0; i < 10; i++ {
		m.Put("p", []byte{byte(i)}, []byte{byte(i)})
	}
	cells := m.ScanPartition("p", []byte{3}, []byte{7})
	if len(cells) != 4 {
		t.Fatalf("got %d cells want 4", len(cells))
	}
	if cells[0].CK[0] != 3 || cells[3].CK[0] != 6 {
		t.Fatalf("range [%d,%d] want [3,6]", cells[0].CK[0], cells[3].CK[0])
	}
}

func TestScanOrdering(t *testing.T) {
	m := New(1)
	for i := 9; i >= 0; i-- { // insert in reverse
		m.Put("p", []byte{byte(i)}, nil)
	}
	cells := m.ScanPartition("p", nil, nil)
	for i, c := range cells {
		if c.CK[0] != byte(i) {
			t.Fatalf("position %d has ck %d", i, c.CK[0])
		}
	}
}

func TestDelete(t *testing.T) {
	m := New(1)
	m.Put("p", []byte("c"), []byte("v"))
	if !m.Delete("p", []byte("c")) {
		t.Fatal("delete failed")
	}
	if m.Delete("p", []byte("c")) {
		t.Fatal("double delete succeeded")
	}
	if m.Len() != 0 {
		t.Fatal("len not zero after delete")
	}
}

func TestFreezeMakesImmutable(t *testing.T) {
	m := New(1)
	m.Put("p", []byte("c"), []byte("v"))
	if m.Frozen() {
		t.Fatal("fresh memtable reports frozen")
	}
	m.Freeze()
	if !m.Frozen() {
		t.Fatal("Freeze did not mark the memtable")
	}
	// Reads keep working on a frozen memtable.
	if v, ok := m.Get("p", []byte("c")); !ok || string(v) != "v" {
		t.Fatalf("frozen read got %q,%v", v, ok)
	}
	if got := len(m.ScanPartition("p", nil, nil)); got != 1 {
		t.Fatalf("frozen scan got %d cells", got)
	}
	// Writes must panic: a write after the freeze would be silently
	// dropped when the frozen table is retired.
	mustPanic(t, func() { m.Put("p", []byte("c2"), []byte("v2")) })
	mustPanic(t, func() { m.Delete("p", []byte("c")) })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("write to frozen memtable did not panic")
		}
	}()
	fn()
}

func TestEachVisitsAllSorted(t *testing.T) {
	m := New(1)
	const n = 100
	for i := 0; i < n; i++ {
		m.Put(fmt.Sprintf("p%02d", i%10), []byte{byte(i / 10)}, []byte{1})
	}
	var count int
	lastPK := ""
	var lastCK []byte
	err := m.Each(func(e Entry) error {
		if e.PK < lastPK {
			t.Fatalf("partition order violated: %q after %q", e.PK, lastPK)
		}
		if e.PK == lastPK && bytes.Compare(e.CK, lastCK) <= 0 {
			t.Fatalf("ck order violated in %q", e.PK)
		}
		lastPK, lastCK = e.PK, e.CK
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("visited %d want %d", count, n)
	}
}

func TestEachStopsOnError(t *testing.T) {
	m := New(1)
	for i := 0; i < 10; i++ {
		m.Put("p", []byte{byte(i)}, nil)
	}
	calls := 0
	wantErr := fmt.Errorf("stop")
	err := m.Each(func(Entry) error {
		calls++
		if calls == 3 {
			return wantErr
		}
		return nil
	})
	if err != wantErr || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestPartitions(t *testing.T) {
	m := New(1)
	for _, pk := range []string{"z", "a", "m", "a", "z"} {
		m.Put(pk, []byte("c"), nil)
	}
	got := m.Partitions()
	want := []string{"a", "m", "z"}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestBytesTracksPayload(t *testing.T) {
	m := New(1)
	m.Put("p", []byte("ck"), []byte("value"))
	if m.Bytes() <= 0 {
		t.Fatal("bytes not tracked")
	}
}

func TestConcurrentReadersOneWriter(t *testing.T) {
	m := New(1)
	for i := 0; i < 1000; i++ {
		m.Put("warm", []byte(fmt.Sprintf("%04d", i)), []byte("v"))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					m.ScanPartition("warm", nil, nil)
					m.Get("warm", []byte("0500"))
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		m.Put("writes", []byte(fmt.Sprintf("%04d", i)), []byte("v"))
	}
	close(stop)
	wg.Wait()
	if got := len(m.ScanPartition("writes", nil, nil)); got != 2000 {
		t.Fatalf("writer landed %d cells want 2000", got)
	}
}

func BenchmarkPut(b *testing.B) {
	m := New(1)
	cks := make([][]byte, b.N)
	for i := range cks {
		cks[i] = []byte(fmt.Sprintf("%09d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Put("bench", cks[i], cks[i])
	}
}

func BenchmarkScanPartition1000(b *testing.B) {
	m := New(1)
	for i := 0; i < 1000; i++ {
		m.Put("bench", []byte(fmt.Sprintf("%09d", i)), make([]byte, 64))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := m.ScanPartition("bench", nil, nil); len(got) != 1000 {
			b.Fatal("bad scan")
		}
	}
}
