package memtable

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"scalekv/internal/row"
)

// put stores a live cell with an auto-incremented version, standing in
// for the engine's stamp.
var testSeq uint64

func put(m *Memtable, pk string, ck, value []byte) {
	testSeq++
	m.Put(pk, ck, value, row.Version{Seq: testSeq}, false)
}

func TestPutGet(t *testing.T) {
	m := New(1)
	put(m, "p1", []byte("c1"), []byte("v1"))
	put(m, "p1", []byte("c2"), []byte("v2"))
	put(m, "p2", []byte("c1"), []byte("v3"))
	v, _, _, ok := m.Get("p1", []byte("c1"))
	if !ok || string(v) != "v1" {
		t.Fatalf("got %q,%v", v, ok)
	}
	if _, _, _, ok := m.Get("p3", []byte("c1")); ok {
		t.Fatal("found absent partition")
	}
	if m.Len() != 3 {
		t.Fatalf("len %d want 3", m.Len())
	}
}

func TestLastWriteWinsByVersion(t *testing.T) {
	m := New(1)
	m.Put("p", []byte("c"), []byte("new"), row.Version{Seq: 10, Node: 2}, false)
	// A stale copy arriving later must not clobber the newer cell.
	m.Put("p", []byte("c"), []byte("old"), row.Version{Seq: 5, Node: 7}, false)
	v, ver, _, ok := m.Get("p", []byte("c"))
	if !ok || string(v) != "new" || ver.Seq != 10 {
		t.Fatalf("stale write won: %q ver=%+v", v, ver)
	}
	// A higher version replaces.
	m.Put("p", []byte("c"), []byte("newest"), row.Version{Seq: 11, Node: 1}, false)
	if v, _, _, _ := m.Get("p", []byte("c")); string(v) != "newest" {
		t.Fatalf("newer write lost: %q", v)
	}
	// Equal sequence: the higher node wins; same version: idempotent.
	m.Put("p", []byte("c"), []byte("tie"), row.Version{Seq: 11, Node: 3}, false)
	if v, ver, _, _ := m.Get("p", []byte("c")); string(v) != "tie" || ver.Node != 3 {
		t.Fatalf("node tie-break failed: %q ver=%+v", v, ver)
	}
	if m.Len() != 1 {
		t.Fatalf("len %d want 1", m.Len())
	}
}

func TestTombstoneStoredAndVersioned(t *testing.T) {
	m := New(1)
	m.Put("p", []byte("c"), []byte("v"), row.Version{Seq: 1}, false)
	m.Put("p", []byte("c"), nil, row.Version{Seq: 2}, true)
	_, ver, tomb, ok := m.Get("p", []byte("c"))
	if !ok || !tomb || ver.Seq != 2 {
		t.Fatalf("tombstone not stored: ok=%v tomb=%v ver=%+v", ok, tomb, ver)
	}
	// A stale put cannot resurrect the cell.
	m.Put("p", []byte("c"), []byte("zombie"), row.Version{Seq: 1}, false)
	if _, _, tomb, _ := m.Get("p", []byte("c")); !tomb {
		t.Fatal("stale put resurrected a deleted cell")
	}
	// Tombstones appear in scans (the engine merges and masks them).
	cells := m.ScanPartition("p", nil, nil)
	if len(cells) != 1 || !cells[0].Tombstone {
		t.Fatalf("scan hid the tombstone: %+v", cells)
	}
}

func TestMinMaxVersionTracked(t *testing.T) {
	m := New(1)
	if _, ok := m.MinVersion(); ok {
		t.Fatal("empty memtable reports a min version")
	}
	m.Put("p", []byte("a"), nil, row.Version{Seq: 7}, false)
	m.Put("p", []byte("b"), nil, row.Version{Seq: 3}, false)
	m.Put("p", []byte("c"), nil, row.Version{Seq: 9}, true)
	if min, ok := m.MinVersion(); !ok || min.Seq != 3 {
		t.Fatalf("min = %+v, %v", min, ok)
	}
	if max := m.MaxVersion(); max.Seq != 9 {
		t.Fatalf("max = %+v", max)
	}
}

func TestValueIsCopied(t *testing.T) {
	m := New(1)
	buf := []byte("original")
	put(m, "p", []byte("c"), buf)
	copy(buf, "CLOBBER!")
	v, _, _, _ := m.Get("p", []byte("c"))
	if string(v) != "original" {
		t.Fatalf("stored value aliased caller buffer: %q", v)
	}
}

func TestScanPartitionIsolation(t *testing.T) {
	m := New(1)
	// Partition keys chosen so one is a prefix of another.
	for i := 0; i < 5; i++ {
		put(m, "a", []byte{byte(i)}, []byte("va"))
		put(m, "ab", []byte{byte(i)}, []byte("vab"))
	}
	cells := m.ScanPartition("a", nil, nil)
	if len(cells) != 5 {
		t.Fatalf("partition a has %d cells want 5", len(cells))
	}
	for _, c := range cells {
		if string(c.Value) != "va" {
			t.Fatalf("cell from wrong partition: %q", c.Value)
		}
	}
}

func TestScanPartitionRange(t *testing.T) {
	m := New(1)
	for i := 0; i < 10; i++ {
		put(m, "p", []byte{byte(i)}, []byte{byte(i)})
	}
	cells := m.ScanPartition("p", []byte{3}, []byte{7})
	if len(cells) != 4 {
		t.Fatalf("got %d cells want 4", len(cells))
	}
	if cells[0].CK[0] != 3 || cells[3].CK[0] != 6 {
		t.Fatalf("range [%d,%d] want [3,6]", cells[0].CK[0], cells[3].CK[0])
	}
}

func TestScanOrdering(t *testing.T) {
	m := New(1)
	for i := 9; i >= 0; i-- { // insert in reverse
		put(m, "p", []byte{byte(i)}, nil)
	}
	cells := m.ScanPartition("p", nil, nil)
	for i, c := range cells {
		if c.CK[0] != byte(i) {
			t.Fatalf("position %d has ck %d", i, c.CK[0])
		}
	}
}

func TestFreezeMakesImmutable(t *testing.T) {
	m := New(1)
	put(m, "p", []byte("c"), []byte("v"))
	if m.Frozen() {
		t.Fatal("fresh memtable reports frozen")
	}
	m.Freeze()
	if !m.Frozen() {
		t.Fatal("Freeze did not mark the memtable")
	}
	// Reads keep working on a frozen memtable.
	if v, _, _, ok := m.Get("p", []byte("c")); !ok || string(v) != "v" {
		t.Fatalf("frozen read got %q,%v", v, ok)
	}
	if got := len(m.ScanPartition("p", nil, nil)); got != 1 {
		t.Fatalf("frozen scan got %d cells", got)
	}
	// Writes must panic: a write after the freeze would be silently
	// dropped when the frozen table is retired.
	mustPanic(t, func() { put(m, "p", []byte("c2"), []byte("v2")) })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("write to frozen memtable did not panic")
		}
	}()
	fn()
}

func TestEachVisitsAllSorted(t *testing.T) {
	m := New(1)
	const n = 100
	for i := 0; i < n; i++ {
		put(m, fmt.Sprintf("p%02d", i%10), []byte{byte(i / 10)}, []byte{1})
	}
	var count int
	lastPK := ""
	var lastCK []byte
	err := m.Each(func(e Entry) error {
		if e.PK < lastPK {
			t.Fatalf("partition order violated: %q after %q", e.PK, lastPK)
		}
		if e.PK == lastPK && bytes.Compare(e.CK, lastCK) <= 0 {
			t.Fatalf("ck order violated in %q", e.PK)
		}
		if e.Ver.IsZero() {
			t.Fatal("Each dropped the cell version")
		}
		lastPK, lastCK = e.PK, e.CK
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("visited %d want %d", count, n)
	}
}

func TestEachStopsOnError(t *testing.T) {
	m := New(1)
	for i := 0; i < 10; i++ {
		put(m, "p", []byte{byte(i)}, nil)
	}
	calls := 0
	wantErr := fmt.Errorf("stop")
	err := m.Each(func(Entry) error {
		calls++
		if calls == 3 {
			return wantErr
		}
		return nil
	})
	if err != wantErr || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestPartitions(t *testing.T) {
	m := New(1)
	for _, pk := range []string{"z", "a", "m", "a", "z"} {
		put(m, pk, []byte("c"), nil)
	}
	got := m.Partitions()
	want := []string{"a", "m", "z"}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestBytesTracksPayload(t *testing.T) {
	m := New(1)
	put(m, "p", []byte("ck"), []byte("value"))
	if m.Bytes() <= 0 {
		t.Fatal("bytes not tracked")
	}
}

func TestConcurrentReadersOneWriter(t *testing.T) {
	m := New(1)
	for i := 0; i < 1000; i++ {
		put(m, "warm", []byte(fmt.Sprintf("%04d", i)), []byte("v"))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					m.ScanPartition("warm", nil, nil)
					m.Get("warm", []byte("0500"))
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		put(m, "writes", []byte(fmt.Sprintf("%04d", i)), []byte("v"))
	}
	close(stop)
	wg.Wait()
	if got := len(m.ScanPartition("writes", nil, nil)); got != 2000 {
		t.Fatalf("writer landed %d cells want 2000", got)
	}
}

func BenchmarkPut(b *testing.B) {
	m := New(1)
	cks := make([][]byte, b.N)
	for i := range cks {
		cks[i] = []byte(fmt.Sprintf("%09d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Put("bench", cks[i], cks[i], row.Version{Seq: uint64(i + 1)}, false)
	}
}

func BenchmarkScanPartition1000(b *testing.B) {
	m := New(1)
	for i := 0; i < 1000; i++ {
		put(m, "bench", []byte(fmt.Sprintf("%09d", i)), make([]byte, 64))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := m.ScanPartition("bench", nil, nil); len(got) != 1000 {
			b.Fatal("bad scan")
		}
	}
}
