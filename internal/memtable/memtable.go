// Package memtable implements the in-memory, mutable head of the storage
// engine: a skip list of internal keys. Writes land here first; when the
// payload size crosses the engine's flush threshold the memtable is
// frozen (Freeze marks it immutable) and handed to a background flusher
// that writes it out as an SSTable while readers keep merging it.
//
// Concurrency follows the skip list's single-writer discipline: Put and
// Freeze must be externally serialized (the storage engine holds the
// shard write lock around them), but Get, ScanPartition, Each and
// Partitions are lock-free — they ride the skip list's atomically
// published links, so the engine's point-read fast path acquires no
// locks at all. MinVersion must be called under the same serialization
// as Put; MaxVersion is safe once the memtable is frozen and published
// (the engine reads it only on frozen memtables reached through an
// atomically published snapshot).
//
// Cells are versioned: Put resolves a clustering-key collision by
// last-write-wins on the cell version, not by arrival order, so a stale
// copy (a rebalance stream page landing after the dual-write forward of
// a newer overwrite, a read-repair of an old value) can never clobber a
// newer one. Tombstones are stored like any other cell — a delete is a
// versioned write that masks older copies in frozen memtables and
// SSTables until compaction collects it.
package memtable

import (
	"bytes"
	"encoding/binary"
	"sync"

	"scalekv/internal/enc"
	"scalekv/internal/row"
	"scalekv/internal/skiplist"
)

// Stored value layout: fixed-width header (8-byte seq | 2-byte node |
// flags), then the payload. The layout is private to this package and
// never persisted (WAL and SSTables have their own formats), so it is
// chosen purely for decode speed: the header is read back on every
// point-read hit and every overwrite, and two fixed loads beat two
// varint loops there for ~6 bytes per cell of memory.
const (
	flagTombstone = byte(1)
	headerLen     = 11
)

func encodeValue(ver row.Version, tombstone bool, value []byte) []byte {
	out := make([]byte, headerLen, headerLen+len(value))
	binary.LittleEndian.PutUint64(out, ver.Seq)
	binary.LittleEndian.PutUint16(out[8:], ver.Node)
	if tombstone {
		out[10] = flagTombstone
	}
	return append(out, value...)
}

// decodeValue splits a stored value. The encoding is written only by
// Put, so corruption is impossible; the length check guards programmer
// error loudly.
func decodeValue(stored []byte) (ver row.Version, tombstone bool, value []byte) {
	if len(stored) < headerLen {
		panic("memtable: corrupt stored value")
	}
	ver = row.Version{
		Seq:  binary.LittleEndian.Uint64(stored),
		Node: binary.LittleEndian.Uint16(stored[8:]),
	}
	return ver, stored[10]&flagTombstone != 0, stored[headerLen:]
}

// Memtable is a sorted map from (partition key, clustering key) to a
// versioned cell: single writer, lock-free readers.
type Memtable struct {
	list *skiplist.List

	// mu guards the writer-side bookkeeping below. Writers are already
	// externally serialized; the mutex exists for direct users of the
	// package (tests) and to keep Freeze/Frozen well-defined on their
	// own. It is never taken on the read path.
	mu     sync.Mutex
	frozen bool
	// minVer/maxVer bound the versions stored (over every Put accepted,
	// including ones later overwritten — a conservative envelope). The
	// engine uses maxVer to keep the point-read fast path (an active-
	// memtable hit newer than every flushed version needs no SSTable
	// merge) and minVer as the tombstone GC watermark input.
	minVer, maxVer row.Version
	hasVer         bool
}

// New creates an empty memtable; the seed drives skip-list tower heights
// so tests are reproducible.
func New(seed int64) *Memtable {
	return &Memtable{list: skiplist.New(seed)}
}

// Put stores a cell under (pk, ck) if its version is not older than the
// version already stored — last write wins, decided by version. Ties go
// to the incoming cell (a re-put of the same write is idempotent). The
// ck and value slices are copied. Put panics on a frozen memtable: a
// write landing after the freeze would be silently dropped when the
// frozen table is retired, so the invariant violation must be loud.
// It reports whether a new cell address was created (false for an
// overwrite or a rejected stale copy) — the engine's partition index
// invalidation rides on it.
func (m *Memtable) Put(pk string, ck, value []byte, ver row.Version, tombstone bool) bool {
	ik := enc.EncodeInternalKey(pk, ck)
	v := encodeValue(ver, tombstone, value)
	m.mu.Lock()
	if m.frozen {
		m.mu.Unlock()
		panic("memtable: Put on frozen memtable")
	}
	if !m.hasVer {
		m.minVer, m.maxVer, m.hasVer = ver, ver, true
	} else {
		if ver.Less(m.minVer) {
			m.minVer = ver
		}
		if m.maxVer.Less(ver) {
			m.maxVer = ver
		}
	}
	inserted := m.list.Update(ik, func(old []byte, exists bool) ([]byte, bool) {
		if exists {
			if oldVer, _, _ := decodeValue(old); ver.Less(oldVer) {
				return nil, false // stale copy: the stored cell is newer
			}
		}
		return v, true
	})
	m.mu.Unlock()
	return inserted
}

// Get returns the cell stored for (pk, ck) — value, version and
// tombstone flag. A tombstone is returned like any other cell (ok=true);
// masking it from reads is the engine's merge's job, which needs the
// version to decide whether the tombstone wins. Lock-free and
// allocation-free: the composite key is built once in a stack buffer
// (keys longer than it fall back to the heap) so every skiplist probe
// is one vectorized byte comparison.
func (m *Memtable) Get(pk string, ck []byte) (value []byte, ver row.Version, tombstone, ok bool) {
	var buf [128]byte
	ik := enc.AppendInternalKey(buf[:0], pk, ck)
	stored, ok := m.list.Get(ik)
	if !ok {
		return nil, row.Version{}, false, false
	}
	ver, tombstone, value = decodeValue(stored)
	return value, ver, tombstone, true
}

// Freeze marks the memtable immutable. The storage engine freezes a
// memtable when handing it to a background flusher: readers keep
// merging it until the SSTable is live, but any further write is a bug.
func (m *Memtable) Freeze() {
	m.mu.Lock()
	m.frozen = true
	m.mu.Unlock()
}

// Frozen reports whether Freeze has been called.
func (m *Memtable) Frozen() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.frozen
}

// MaxVersion returns the highest version any accepted Put carried (zero
// if none). Lock-free: call it either under the writer's serialization
// or on a frozen memtable reached through a published snapshot — the
// engine's read path does the latter.
func (m *Memtable) MaxVersion() row.Version {
	return m.maxVer
}

// MinVersion returns the lowest version any accepted Put carried and
// whether one exists — the shard's tombstone GC watermark reads it,
// under the same shard lock that serializes Put.
func (m *Memtable) MinVersion() (row.Version, bool) {
	return m.minVer, m.hasVer
}

// ScanPartition returns every cell of the partition with from <= CK < to,
// in clustering order — tombstones included (the engine's merge masks
// them against older sources before serving). Lock-free; a scan racing
// the writer sees each concurrently inserted cell either fully or not
// at all.
func (m *Memtable) ScanPartition(pk string, from, to []byte) []row.Cell {
	start := enc.PartitionPrefix(pk)
	if from != nil {
		start = enc.EncodeInternalKey(pk, from)
	}
	end := enc.PartitionEnd(pk)
	if to != nil {
		end = enc.EncodeInternalKey(pk, to)
	}
	var cells []row.Cell
	for it := m.list.Seek(start); it.Valid(); it.Next() {
		if bytes.Compare(it.Key(), end) >= 0 {
			break
		}
		_, ck, err := enc.DecodeInternalKey(it.Key())
		if err != nil {
			continue // unreachable for keys written by Put
		}
		ver, tomb, value := decodeValue(it.Value())
		cells = append(cells, row.Cell{CK: ck, Value: value, Ver: ver, Tombstone: tomb})
	}
	return cells
}

// Len returns the number of cells stored (tombstones included).
func (m *Memtable) Len() int {
	return m.list.Len()
}

// Bytes returns the approximate payload size.
func (m *Memtable) Bytes() int64 {
	return m.list.Bytes()
}

// Entry is one internal-key/value pair yielded by Each.
type Entry struct {
	PK        string
	CK        []byte
	Value     []byte
	Ver       row.Version
	Tombstone bool
}

// Each calls fn for every cell in internal-key order. It is used by the
// flush path, which owns the frozen memtable.
func (m *Memtable) Each(fn func(Entry) error) error {
	for it := m.list.First(); it.Valid(); it.Next() {
		pk, ck, err := enc.DecodeInternalKey(it.Key())
		if err != nil {
			continue
		}
		ver, tomb, value := decodeValue(it.Value())
		if err := fn(Entry{PK: pk, CK: ck, Value: value, Ver: ver, Tombstone: tomb}); err != nil {
			return err
		}
	}
	return nil
}

// Partitions returns the distinct partition keys present, in key order.
func (m *Memtable) Partitions() []string {
	var out []string
	last := ""
	first := true
	for it := m.list.First(); it.Valid(); it.Next() {
		pk, _, err := enc.DecodeInternalKey(it.Key())
		if err != nil {
			continue
		}
		if first || pk != last {
			out = append(out, pk)
			last, first = pk, false
		}
	}
	return out
}
