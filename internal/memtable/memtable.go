// Package memtable implements the in-memory, mutable head of the storage
// engine: a skip list of internal keys guarded by an RWMutex. Writes land
// here first; when the payload size crosses the engine's flush threshold
// the memtable is frozen (Freeze marks it immutable) and handed to a
// background flusher that writes it out as an SSTable while readers keep
// merging it.
package memtable

import (
	"bytes"
	"sync"

	"scalekv/internal/enc"
	"scalekv/internal/row"
	"scalekv/internal/skiplist"
)

// Memtable is a sorted, concurrent map from (partition key, clustering
// key) to value.
type Memtable struct {
	mu     sync.RWMutex
	list   *skiplist.List
	frozen bool
}

// New creates an empty memtable; the seed drives skip-list tower heights
// so tests are reproducible.
func New(seed int64) *Memtable {
	return &Memtable{list: skiplist.New(seed)}
}

// Put stores value under (pk, ck). The ck and value slices are copied.
// Put panics on a frozen memtable: a write landing after the freeze
// would be silently dropped when the frozen table is retired, so the
// invariant violation must be loud.
func (m *Memtable) Put(pk string, ck, value []byte) {
	ik := enc.EncodeInternalKey(pk, ck)
	v := append([]byte(nil), value...)
	m.mu.Lock()
	if m.frozen {
		m.mu.Unlock()
		panic("memtable: Put on frozen memtable")
	}
	m.list.Set(ik, v)
	m.mu.Unlock()
}

// Get returns the value for (pk, ck).
func (m *Memtable) Get(pk string, ck []byte) ([]byte, bool) {
	ik := enc.EncodeInternalKey(pk, ck)
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.list.Get(ik)
}

// Delete removes (pk, ck) and reports whether it was present. Like Put
// it panics on a frozen memtable.
func (m *Memtable) Delete(pk string, ck []byte) bool {
	ik := enc.EncodeInternalKey(pk, ck)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.frozen {
		panic("memtable: Delete on frozen memtable")
	}
	return m.list.Delete(ik)
}

// Freeze marks the memtable immutable. The storage engine freezes a
// memtable when handing it to a background flusher: readers keep
// merging it until the SSTable is live, but any further write is a bug.
func (m *Memtable) Freeze() {
	m.mu.Lock()
	m.frozen = true
	m.mu.Unlock()
}

// Frozen reports whether Freeze has been called.
func (m *Memtable) Frozen() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.frozen
}

// ScanPartition returns every cell of the partition with from <= CK < to,
// in clustering order. Nil bounds mean unbounded.
func (m *Memtable) ScanPartition(pk string, from, to []byte) []row.Cell {
	start := enc.PartitionPrefix(pk)
	if from != nil {
		start = enc.EncodeInternalKey(pk, from)
	}
	end := enc.PartitionEnd(pk)
	if to != nil {
		end = enc.EncodeInternalKey(pk, to)
	}
	var cells []row.Cell
	m.mu.RLock()
	defer m.mu.RUnlock()
	for it := m.list.Seek(start); it.Valid(); it.Next() {
		if bytes.Compare(it.Key(), end) >= 0 {
			break
		}
		_, ck, err := enc.DecodeInternalKey(it.Key())
		if err != nil {
			continue // unreachable for keys written by Put
		}
		cells = append(cells, row.Cell{CK: ck, Value: it.Value()})
	}
	return cells
}

// Len returns the number of cells stored.
func (m *Memtable) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.list.Len()
}

// Bytes returns the approximate payload size.
func (m *Memtable) Bytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.list.Bytes()
}

// Entry is one internal-key/value pair yielded by Each.
type Entry struct {
	PK    string
	CK    []byte
	Value []byte
}

// Each calls fn for every cell in internal-key order. It is used by the
// flush path, which owns the frozen memtable, so it holds only a read
// lock.
func (m *Memtable) Each(fn func(Entry) error) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for it := m.list.First(); it.Valid(); it.Next() {
		pk, ck, err := enc.DecodeInternalKey(it.Key())
		if err != nil {
			continue
		}
		if err := fn(Entry{PK: pk, CK: ck, Value: it.Value()}); err != nil {
			return err
		}
	}
	return nil
}

// Partitions returns the distinct partition keys present, in key order.
func (m *Memtable) Partitions() []string {
	var out []string
	last := ""
	first := true
	m.mu.RLock()
	defer m.mu.RUnlock()
	for it := m.list.First(); it.Valid(); it.Next() {
		pk, _, err := enc.DecodeInternalKey(it.Key())
		if err != nil {
			continue
		}
		if first || pk != last {
			out = append(out, pk)
			last, first = pk, false
		}
	}
	return out
}
