package figures

import (
	"strconv"
	"strings"
	"testing"
)

func cellFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(s, "+"), "%"), 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "X", Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddNote("hello %d", 7)
	out := tab.Render()
	for _, needle := range []string{"X", "demo", "a", "bb", "hello 7"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("render missing %q:\n%s", needle, out)
		}
	}
	tsv := tab.TSV()
	if !strings.HasPrefix(tsv, "a\tbb\n1\t2\n") {
		t.Fatalf("bad TSV: %q", tsv)
	}
}

func TestFig1ShapeAndCompleteness(t *testing.T) {
	tab := Fig1(3)
	if len(tab.Rows) != 3*len(ClusterSizes) {
		t.Fatalf("%d rows want %d", len(tab.Rows), 3*len(ClusterSizes))
	}
	// Extract the 16-node overhead per workload.
	overhead := map[string]float64{}
	for _, row := range tab.Rows {
		if row[1] == "16" {
			overhead[row[0]] = cellFloat(t, row[5])
		}
	}
	if !(overhead["medium-grained"] < overhead["coarse-grained"] &&
		overhead["coarse-grained"] < overhead["fine-grained"]) {
		t.Fatalf("16-node overhead ordering wrong: %v", overhead)
	}
}

func TestFig5FineGrainedWins(t *testing.T) {
	tab := Fig5(3)
	observed := map[string]float64{}
	for _, row := range tab.Rows {
		if row[1] == "16" {
			observed[row[0]] = cellFloat(t, row[2])
		}
	}
	if !(observed["fine-grained"] < observed["medium-grained"] &&
		observed["fine-grained"] < observed["coarse-grained"]) {
		t.Fatalf("fine-grained does not win at 16 nodes: %v", observed)
	}
}

func TestFig2PerNodeRows(t *testing.T) {
	tab := Fig2(5)
	if len(tab.Rows) != 16 {
		t.Fatalf("%d rows want 16", len(tab.Rows))
	}
	totalOps := 0
	for _, row := range tab.Rows {
		totalOps += int(cellFloat(t, row[1]))
	}
	if totalOps != 100 {
		t.Fatalf("ops sum %d want 100", totalOps)
	}
}

func TestFig3DensitySumsToOne(t *testing.T) {
	tab := Fig3(1, 20000)
	var sum float64
	for _, row := range tab.Rows {
		sum += cellFloat(t, row[1])
	}
	if sum < 0.98 || sum > 1.02 {
		t.Fatalf("density sums to %.3f", sum)
	}
	if len(tab.Notes) < 3 {
		t.Fatal("Fig3 must note observed, predicted and P[more unbalanced]")
	}
}

func TestFig4HasBothPatterns(t *testing.T) {
	tab := Fig4(11)
	// 4 stages x 2 workloads.
	if len(tab.Rows) != 8 {
		t.Fatalf("%d rows want 8", len(tab.Rows))
	}
	names := map[string]bool{}
	for _, row := range tab.Rows {
		names[row[0]] = true
	}
	if !names["medium-grained"] || !names["fine-grained"] {
		t.Fatalf("missing workloads: %v", names)
	}
}

func TestFig8RowsAndErrorBounded(t *testing.T) {
	tab := Fig8(3)
	if len(tab.Rows) != 3*len(ClusterSizes) {
		t.Fatalf("%d rows want %d", len(tab.Rows), 3*len(ClusterSizes))
	}
	for _, row := range tab.Rows {
		errPct := cellFloat(t, row[5])
		if errPct < -60 || errPct > 60 {
			t.Fatalf("model error %s%% for %s/%s nodes out of band", row[5], row[0], row[1])
		}
	}
}

func TestFig9OptimalKeysGrow(t *testing.T) {
	tab := Fig9()
	prev := 0.0
	for _, row := range tab.Rows {
		k := cellFloat(t, row[1])
		if k < prev {
			t.Fatalf("optimal keys shrank: %v", tab.Rows)
		}
		prev = k
	}
}

func TestFig10LossComponents(t *testing.T) {
	tab := Fig10()
	for _, row := range tab.Rows {
		total := cellFloat(t, row[1])
		imb := cellFloat(t, row[2])
		eff := cellFloat(t, row[3])
		if imb+eff > total*1.05+0.2 {
			t.Fatalf("components %v exceed total %v", imb+eff, total)
		}
	}
}

func TestFig11CrossoverNoted(t *testing.T) {
	tab := Fig11()
	found := false
	for _, n := range tab.Notes {
		if strings.Contains(n, "master send time first matches") {
			found = true
		}
	}
	if !found {
		t.Fatal("Fig11 missing crossover note")
	}
	// At 128 nodes the bottleneck column must say master.
	last := tab.Rows[len(tab.Rows)-1]
	if last[5] != "master" {
		t.Fatalf("at 128 nodes bottleneck is %q want master", last[5])
	}
	// At 1 node it must be the slave.
	if tab.Rows[0][5] != "slowest-slave" {
		t.Fatalf("at 1 node bottleneck is %q want slowest-slave", tab.Rows[0][5])
	}
}

func TestCodecsTable(t *testing.T) {
	tab := Codecs()
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows want 2", len(tab.Rows))
	}
	slowBytes := cellFloat(t, tab.Rows[0][3])
	fastBytes := cellFloat(t, tab.Rows[1][3])
	if slowBytes < 3*fastBytes {
		t.Fatalf("slow codec bytes %v not >= 3x fast %v", slowBytes, fastBytes)
	}
	slowUs := cellFloat(t, tab.Rows[0][2])
	fastUs := cellFloat(t, tab.Rows[1][2])
	if slowUs <= fastUs {
		t.Fatalf("slow codec %vus not slower than fast %vus", slowUs, fastUs)
	}
}

// Small-scale smoke runs of the real-engine figures; full-size runs live
// in cmd/kvbench and bench_test.go.
func TestFig6Small(t *testing.T) {
	tab, err := Fig6(Fig6Options{
		Dir: t.TempDir(), MaxRow: 3000, Strata: 6, PerStratum: 3, Reps: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Latency must grow with row size: compare first and last stratum.
	first := cellFloat(t, tab.Rows[0][2])
	last := cellFloat(t, tab.Rows[len(tab.Rows)-1][2])
	if last <= first {
		t.Fatalf("latency did not grow with row size: %v .. %v", first, last)
	}
}

func TestFig7Small(t *testing.T) {
	tab, err := Fig7(Fig7Options{
		Dir: t.TempDir(), MaxRow: 2000, Strata: 4, PerStratum: 4, TaskFactor: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows want 4", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if sp := cellFloat(t, row[1]); sp < 1 {
			t.Fatalf("speedup %v below 1", sp)
		}
	}
}
