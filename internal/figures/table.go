// Package figures contains one driver per figure of the paper's
// evaluation. Each driver runs the corresponding experiment — on the
// simulated cluster, the real storage engine, or the analytical model —
// and returns a Table whose rows are the series the paper plots.
// cmd/kvbench renders them; bench_test.go wraps each in a benchmark.
package figures

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: named columns, formatted rows,
// and free-form notes (the "reading" of the figure).
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a formatted note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render draws the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// TSV renders the table as tab-separated values for plotting tools.
func (t *Table) TSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, "\t"))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f4(v float64) string  { return fmt.Sprintf("%.4f", v) }
func pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }
func d(v int) string       { return fmt.Sprintf("%d", v) }
