package figures

import (
	"fmt"
	"time"

	"scalekv/internal/core"
	"scalekv/internal/wire"
)

// Fig9 runs the optimizer across cluster sizes: the optimal partition
// count and the predicted time at that optimum.
func Fig9() *Table {
	t := &Table{
		ID:      "Fig9",
		Title:   "Optimal number of rows and predicted time (1M elements)",
		Columns: []string{"nodes", "optimal_keys", "row_size", "predicted_ms", "bottleneck"},
	}
	sys := core.PaperSystem()
	for _, n := range []int{1, 2, 4, 8, 16} {
		k, p := sys.OptimalKeys(1_000_000, n, 100, 100_000)
		t.AddRow(d(n), d(k), f1(p.RowSize), f1(p.TotalMs), string(p.Bottleneck))
	}
	k1, _ := sys.OptimalKeys(1_000_000, 1, 100, 100_000)
	t.AddNote("single-node optimum %d keys; paper reports ~3300 — the time curve is flat within ~2%% between ~3000 and ~9000 keys, so both land in the same basin", k1)
	t.AddNote("paper reading: the optimizer sacrifices database efficiency for balance as nodes grow")
	return t
}

// Fig10 decomposes the loss versus ideal scalability at the optimal
// configuration into the imbalance share and the sacrificed database
// efficiency.
func Fig10() *Table {
	t := &Table{
		ID:      "Fig10",
		Title:   "Optimal settings versus ideal scalability (loss decomposition)",
		Columns: []string{"nodes", "total_loss", "imbalance_share", "efficiency_share"},
	}
	sys := core.PaperSystem()
	for _, n := range []int{2, 4, 8, 16} {
		loss := sys.LossAtOptimum(1_000_000, n, 100, 100_000)
		t.AddRow(d(n), fmt.Sprintf("%.1f%%", loss.TotalPct),
			fmt.Sprintf("%.1f%%", loss.ImbalancePct),
			fmt.Sprintf("%.1f%%", loss.EfficiencyPct))
	}
	t.AddNote("paper: with 16 nodes the query needs ~10%% more than ideal even at optimal settings")
	return t
}

// Fig11 sweeps cluster sizes under random request distribution and
// locates where the master's send time overtakes the database — the
// single-master scalability limit (~70 servers in the paper).
func Fig11() *Table {
	t := &Table{
		ID:      "Fig11",
		Title:   "Load distribution limits for a single master (random distribution)",
		Columns: []string{"nodes", "optimal_keys", "master_ms", "slave_ms", "total_ms", "bottleneck"},
	}
	sys := core.PaperSystem()
	for _, n := range []int{1, 2, 4, 8, 16, 32, 48, 64, 70, 80, 96, 128} {
		k, p := sys.OptimalKeys(1_000_000, n, 100, 100_000)
		t.AddRow(d(n), d(k), f1(p.MasterMs), f1(p.SlaveMs), f1(p.TotalMs), string(p.Bottleneck))
	}
	crossover := sys.MasterLimit(1_000_000, 100, 100_000, 128)
	t.AddNote("master send time first matches the database time at ~%d nodes (paper: ~70)", crossover)
	t.AddNote("past the crossover the optimizer shrinks the partition count (see optimal_keys turn around) to keep the master fed, trading database efficiency for master headroom")
	rsLimit := sys.ReplicaSelectionLimit(250, 16)
	t.AddNote("replica-selection variant saturates at ~%d nodes (paper estimates ~32)", rsLimit)
	return t
}

// Codecs reproduces the Section V-B text numbers: per-message cost and
// bytes for the slow (Java-like) versus fast (Kryo-like) codec, over the
// paper's ten thousand messages.
func Codecs() *Table {
	t := &Table{
		ID:      "CodecsVB",
		Title:   "Serialization cost: slow (Java-like) vs fast (Kryo-like), 10k messages",
		Columns: []string{"codec", "total_time", "per_msg_us", "total_bytes"},
	}
	const n = 10000
	for _, c := range []wire.Codec{wire.SlowCodec{}, wire.FastCodec{}} {
		var bytes int64
		start := time.Now()
		for i := 0; i < n; i++ {
			msg := &wire.CountRequest{QueryID: 42, Seq: uint32(i), PK: fmt.Sprintf("cube-%05d", i)}
			data, err := c.Marshal(msg)
			if err != nil {
				panic(err)
			}
			bytes += int64(len(data))
			if _, err := c.Unmarshal(data); err != nil {
				panic(err)
			}
		}
		elapsed := time.Since(start)
		t.AddRow(c.Name(), elapsed.Round(time.Millisecond).String(),
			f2(float64(elapsed.Microseconds())/n), fmt.Sprintf("%d", bytes))
	}
	t.AddNote("paper measured 1.5s -> 192ms for 10k sends (150 -> 19 us/msg) and 7.5MB -> 900KB")
	t.AddNote("Go absolute costs are lower than the JVM's; the ratio is the reproduced quantity")
	return t
}
