package figures

import (
	"fmt"
	"math/rand"
	"time"

	"scalekv/internal/balls"
	"scalekv/internal/core"
	"scalekv/internal/master"
	"scalekv/internal/stages"
)

// The paper's three data models: one million elements split three ways.
var workloads = []struct {
	Name    string
	Keys    int
	RowSize int
}{
	{"coarse-grained", 100, 10000},
	{"medium-grained", 1000, 1000},
	{"fine-grained", 10000, 100},
}

// ClusterSizes are the paper's sweep: 1, 2, 4, 8, 16 nodes.
var ClusterSizes = []int{1, 2, 4, 8, 16}

// scalingTable runs Figure 1/5: the three workloads across cluster
// sizes, reporting observed, ideal and balanced times.
func scalingTable(id, title string, fastMaster bool, seed int64) *Table {
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"workload", "nodes", "observed_ms", "ideal_ms", "balanced_ms", "vs_ideal"},
	}
	calib := master.PaperCalibration(fastMaster)
	for _, w := range workloads {
		var oneNode time.Duration
		for _, n := range ClusterSizes {
			res := master.Run(master.Config{
				Nodes: n, Keys: w.Keys, RowSize: w.RowSize,
				Calib: calib, Seed: seed + int64(n),
			})
			if n == 1 {
				oneNode = res.Total
			}
			ideal := oneNode / time.Duration(n)
			overhead := float64(res.Total-ideal) / float64(ideal)
			t.AddRow(w.Name, d(n),
				f1(ms(res.Total)), f1(ms(ideal)), f1(ms(res.BalancedEstimate())),
				fmt.Sprintf("+%.0f%%", overhead*100))
		}
	}
	return t
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Fig1 reproduces "Data model influence on scalability": the original
// (slow) master, where none of the models scale and fine-grained
// collapses.
func Fig1(seed int64) *Table {
	t := scalingTable("Fig1", "Data model influence on scalability (slow master)", false, seed)
	t.AddNote("paper at 16 nodes: medium +62%%, coarse +108%%, fine +180%% vs ideal")
	t.AddNote("expected ordering: medium < coarse < fine; fine is master-bound")
	return t
}

// Fig5 reproduces "Performance reducing bottlenecks": the same sweep
// after the serialization fix; fine-grained becomes the fastest beyond
// 4 nodes.
func Fig5(seed int64) *Table {
	t := scalingTable("Fig5", "Scalability after master optimization (fast master)", true, seed)
	t.AddNote("paper: fine-grained shows almost linear scalability and wins on 4+ nodes")
	return t
}

// Fig2 reproduces "Operations per node vs. sub-query time": the
// coarse-grained workload on 16 nodes, per-node request counts against
// per-request database times.
func Fig2(seed int64) *Table {
	res := master.Run(master.Config{
		Nodes: 16, Keys: 100, RowSize: 10000,
		Calib: master.PaperCalibration(true), Seed: seed,
	})
	t := &Table{
		ID:      "Fig2",
		Title:   "Operations per node vs. sub-query time (coarse, 16 nodes)",
		Columns: []string{"node", "ops", "db_min_ms", "db_mean_ms", "db_max_ms", "finish_ms"},
	}
	durs := res.Trace.StageDurations(stages.InDB)
	maxOpsNode, maxOps := -1, -1
	var lastFinish time.Duration
	lastNode := -1
	for n := 0; n < 16; n++ {
		ops := res.OpsPerNode[n]
		if ops > maxOps {
			maxOps, maxOpsNode = ops, n
		}
		if res.NodeFinish[n] > lastFinish {
			lastFinish, lastNode = res.NodeFinish[n], n
		}
		var min, max, sum time.Duration
		for i, dd := range durs[n] {
			if i == 0 || dd < min {
				min = dd
			}
			if dd > max {
				max = dd
			}
			sum += dd
		}
		mean := time.Duration(0)
		if len(durs[n]) > 0 {
			mean = sum / time.Duration(len(durs[n]))
		}
		t.AddRow(d(n), d(ops), f1(ms(min)), f1(ms(mean)), f1(ms(max)), f1(ms(res.NodeFinish[n])))
	}
	t.AddNote("most loaded node: %d with %d ops; last to finish: node %d at %s",
		maxOpsNode, maxOps, lastNode, lastFinish.Round(time.Millisecond))
	t.AddNote("paper: the slowest node dominates total time and is usually the one with most queries")
	t.AddNote("measured imbalance %.0f%%; Formula 1 predicts %.0f%%",
		res.Imbalance()*100, core.ImbalanceRatio(100, 16)*100)
	return t
}

// Fig3 reproduces the probability density of the most loaded node for
// 100 keys on 16 nodes, against Formula 1's prediction.
func Fig3(seed int64, trials int) *Table {
	if trials <= 0 {
		trials = 100000
	}
	rng := rand.New(rand.NewSource(seed))
	counts := map[int]int{}
	maxSeen := 0
	for i := 0; i < trials; i++ {
		m := balls.MaxLoad(100, 16, rng)
		counts[m]++
		if m > maxSeen {
			maxSeen = m
		}
	}
	t := &Table{
		ID:      "Fig3",
		Title:   "Probability density of max-loaded node (100 keys, 16 nodes)",
		Columns: []string{"max_keys_on_loaded_node", "probability"},
	}
	for m := 7; m <= maxSeen; m++ {
		if counts[m] == 0 {
			continue
		}
		t.AddRow(d(m), f4(float64(counts[m])/float64(trials)))
	}
	observed := balls.MaxLoad(100, 16, rand.New(rand.NewSource(seed+1)))
	predicted := core.MaxKeysPerNode(100, 16)
	moreThanPaper := 0
	for m, c := range counts {
		if m >= 11 { // strictly more unbalanced than the paper's observed 10
			moreThanPaper += c
		}
	}
	t.AddNote("one sampled placement observed max = %d (paper observed 10)", observed)
	t.AddNote("Formula 1/5 prediction = %.1f (paper: ~10.4)", predicted)
	t.AddNote("P[more unbalanced than the paper's observation of 10] = %.0f%% (paper: ~60%%)",
		float64(moreThanPaper)/float64(trials)*100)
	return t
}

// Fig4 reproduces the stage profile patterns: medium-grained (congested
// database, long in-queue) versus fine-grained (starved database, the
// master cannot send fast enough) under the slow master on 16 nodes.
func Fig4(seed int64) *Table {
	t := &Table{
		ID:      "Fig4",
		Title:   "Profile patterns: medium-grained vs fine-grained (slow master, 16 nodes)",
		Columns: []string{"workload", "stage", "requests", "total_ms", "mean_ms", "stage_ends_ms"},
	}
	calib := master.PaperCalibration(false)
	for _, w := range []struct {
		name          string
		keys, rowSize int
	}{
		{"medium-grained", 1000, 1000},
		{"fine-grained", 10000, 100},
	} {
		res := master.Run(master.Config{
			Nodes: 16, Keys: w.keys, RowSize: w.rowSize, Calib: calib, Seed: seed,
		})
		for _, st := range stages.Stages() {
			total := res.Trace.StageTotal(st)
			count := 0
			for _, ds := range res.Trace.StageDurations(st) {
				count += len(ds)
			}
			mean := time.Duration(0)
			if count > 0 {
				mean = total / time.Duration(count)
			}
			t.AddRow(w.name, st.String(), d(count), f1(ms(total)), f2(ms(mean)),
				f1(ms(res.Trace.StageEnd(st))))
		}
		var idle time.Duration
		for _, dd := range res.DBIdle {
			idle += dd
		}
		t.AddNote("%s: send phase ends at %s of %s total; max queue depth %d; DB idle %s across nodes",
			w.name, res.SendComplete.Round(time.Millisecond), res.Total.Round(time.Millisecond),
			res.MaxQueueDepth, idle.Round(time.Millisecond))
	}
	t.AddNote("paper reading: medium-grained queues at the database; fine-grained leaves the database idle (white spots) because the master is the bottleneck")
	return t
}

// Fig4Profiles renders the actual Figure 4 picture: per-node,
// per-stage busy segments on a shared time axis, for the two workloads
// under the slow master. Congestion shows as solid bars, starvation as
// white space — the reading the paper applies.
func Fig4Profiles(seed int64, width int) string {
	calib := PaperCalibration(false)
	out := ""
	for _, w := range []struct {
		name          string
		keys, rowSize int
	}{
		{"fine-grained (10000 keys x 100 elements)", 10000, 100},
		{"medium-grained (1000 keys x 1000 elements)", 1000, 1000},
	} {
		res := master.Run(master.Config{
			Nodes: 16, Keys: w.keys, RowSize: w.rowSize, Calib: calib, Seed: seed,
		})
		out += fmt.Sprintf("--- %s ---\n", w.name)
		out += res.Trace.RenderProfile(width)
		out += "\n"
	}
	return out
}

// PaperCalibration re-exports the simulator's calibration so the cmd
// layer does not import internal/master directly.
func PaperCalibration(fastMaster bool) master.Calibration {
	return master.PaperCalibration(fastMaster)
}

// Fig8 validates the model: simulated (observed) times versus the
// Formula 2 prediction, with the paper's GC-corrected variant for the
// coarse workload.
func Fig8(seed int64) *Table {
	t := &Table{
		ID:      "Fig8",
		Title:   "Observed versus predicted time (model validation, fast master)",
		Columns: []string{"workload", "nodes", "observed_ms", "model_ms", "model+gc_ms", "err"},
	}
	sys := core.PaperSystem()
	gcSys := sys
	gcSys.GCFraction = 0.12 // the paper's coarse-grained correction
	calib := master.PaperCalibration(true)
	for _, w := range workloads {
		for _, n := range ClusterSizes {
			res := master.Run(master.Config{
				Nodes: n, Keys: w.Keys, RowSize: w.RowSize, Calib: calib, Seed: seed + int64(n),
			})
			pred := sys.Predict(w.Keys*w.RowSize, w.Keys, n)
			predGC := gcSys.Predict(w.Keys*w.RowSize, w.Keys, n)
			errPct := (ms(res.Total) - pred.TotalMs) / pred.TotalMs
			t.AddRow(w.Name, d(n), f1(ms(res.Total)), f1(pred.TotalMs), f1(predGC.TotalMs),
				fmt.Sprintf("%+.0f%%", errPct*100))
		}
	}
	t.AddNote("paper: estimation precision is high given test variance; GC line improves coarse-grained accuracy")
	return t
}
