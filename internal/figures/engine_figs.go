package figures

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"runtime"

	"scalekv/internal/stats"
	"scalekv/internal/storage"
)

// Fig6Options sizes the response-time-versus-row-size measurement.
type Fig6Options struct {
	// Dir is the engine directory; empty means a temp dir (removed
	// afterwards).
	Dir string
	// MaxRow is the largest row size; 0 means 10000 (the paper's
	// range).
	MaxRow int
	// Strata is the number of row-size ranges; 0 means 20.
	Strata int
	// PerStratum is how many partitions to materialize per range;
	// 0 means 5.
	PerStratum int
	// Reps is how many times each partition is read; 0 means 3.
	Reps int
	// Seed fixes sampling.
	Seed int64
}

// cellValueSize makes one serialized cell ≈ 46 bytes so the 64KB column
// index threshold falls at ≈ 1425 rows, the paper's break point.
const cellValueSize = 38

// buildStratified materializes partitions whose row sizes cover
// [1, maxRow] in equal strata and returns (pk -> rowSize).
func buildStratified(e *storage.Engine, maxRow, strata, perStratum int, rng *rand.Rand) (map[string]int, error) {
	sizes := map[string]int{}
	plan := stats.StratifiedPlan(1, maxRow, strata, perStratum)
	val := make([]byte, cellValueSize)
	for si, s := range plan {
		for j := 0; j < s.Want; j++ {
			size := s.Lo + rng.Intn(s.Hi-s.Lo)
			pk := fmt.Sprintf("row-s%02d-p%02d", si, j)
			sizes[pk] = size
			for c := 0; c < size; c++ {
				ck := []byte(fmt.Sprintf("%06d", c))
				val[0] = byte(c % 4)
				if err := e.Put(pk, ck, val); err != nil {
					return nil, err
				}
			}
		}
	}
	return sizes, e.Flush()
}

func openFigEngine(dir string) (*storage.Engine, func(), error) {
	cleanup := func() {}
	if dir == "" {
		d, err := os.MkdirTemp("", "scalekv-fig-")
		if err != nil {
			return nil, nil, err
		}
		dir = d
		cleanup = func() { os.RemoveAll(d) }
	}
	e, err := storage.Open(storage.Options{
		Dir:            dir,
		DisableWAL:     true,
		FlushThreshold: 1 << 30, // flush once, by hand
	})
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	return e, func() { e.Close(); cleanup() }, nil
}

// Fig6 measures the real storage engine's response time against row
// size — the methodology step that produced the paper's Formula 6 — and
// refits the piecewise model on this stack's numbers.
func Fig6(opts Fig6Options) (*Table, error) {
	if opts.MaxRow <= 0 {
		opts.MaxRow = 10000
	}
	if opts.Strata <= 0 {
		opts.Strata = 20
	}
	if opts.PerStratum <= 0 {
		opts.PerStratum = 5
	}
	if opts.Reps <= 0 {
		opts.Reps = 3
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	e, done, err := openFigEngine(opts.Dir)
	if err != nil {
		return nil, err
	}
	defer done()
	sizes, err := buildStratified(e, opts.MaxRow, opts.Strata, opts.PerStratum, rng)
	if err != nil {
		return nil, err
	}

	// Warm the page cache once, then measure in random order.
	pks := make([]string, 0, len(sizes))
	for pk := range sizes {
		pks = append(pks, pk)
	}
	for _, pk := range pks {
		if _, err := e.ScanPartition(pk, nil, nil); err != nil {
			return nil, err
		}
	}
	// Per partition keep the minimum across repetitions: the noise
	// floor filters out scheduler and GC interference, which on a busy
	// host dwarfs the per-row cost being measured. Two read paths are
	// measured: the full-partition aggregation read (the paper's
	// Figure 6 measurement) and a fixed-width tail slice, where the
	// column index's cost asymmetry is directly visible on this stack —
	// unindexed partitions scan from the start, indexed ones seek.
	fullMs := make(map[string]float64, len(pks))
	tailMs := make(map[string]float64, len(pks))
	for rep := 0; rep < opts.Reps; rep++ {
		stats.Shuffle(pks, rng)
		for _, pk := range pks {
			start := time.Now()
			if _, err := e.ScanPartition(pk, nil, nil); err != nil {
				return nil, err
			}
			elapsed := float64(time.Since(start)) / float64(time.Millisecond)
			if cur, ok := fullMs[pk]; !ok || elapsed < cur {
				fullMs[pk] = elapsed
			}
			// Tail slice: the last up-to-100 rows of the partition.
			from := sizes[pk] - 100
			if from < 0 {
				from = 0
			}
			start = time.Now()
			if _, err := e.ScanPartition(pk, []byte(fmt.Sprintf("%06d", from)), nil); err != nil {
				return nil, err
			}
			elapsed = float64(time.Since(start)) / float64(time.Millisecond)
			if cur, ok := tailMs[pk]; !ok || elapsed < cur {
				tailMs[pk] = elapsed
			}
		}
	}
	var xs, ys, tys []float64
	perStratumFull := make(map[int][]float64)
	perStratumTail := make(map[int][]float64)
	for _, pk := range pks {
		xs = append(xs, float64(sizes[pk]))
		ys = append(ys, fullMs[pk])
		tys = append(tys, tailMs[pk])
		stratum := (sizes[pk] - 1) * opts.Strata / opts.MaxRow
		perStratumFull[stratum] = append(perStratumFull[stratum], fullMs[pk])
		perStratumTail[stratum] = append(perStratumTail[stratum], tailMs[pk])
	}

	t := &Table{
		ID:      "Fig6",
		Title:   "Response time versus row size (real engine, 64KB column index)",
		Columns: []string{"row_size_range", "samples", "full_read_ms", "tail_slice_ms"},
	}
	width := opts.MaxRow / opts.Strata
	for s := 0; s < opts.Strata; s++ {
		full := stats.Summarize(perStratumFull[s])
		if full.N == 0 {
			continue
		}
		tail := stats.Summarize(perStratumTail[s])
		t.AddRow(fmt.Sprintf("%d-%d", s*width+1, (s+1)*width), d(full.N), f4(full.Mean), f4(tail.Mean))
	}
	if fit, err := stats.FitPiecewise(xs, ys, 8); err == nil {
		t.AddNote("full-read fit: %s", fit)
	}
	if fit, err := stats.FitPiecewise(xs, tys, 8); err == nil {
		t.AddNote("tail-slice fit: %s — the slope collapses once the column index exists (~1425 rows)", fit)
	}
	t.AddNote("paper (Formula 6): break 1425; left 1.163+0.0387x; right 0.773+0.0439x [ms]")
	t.AddNote("this engine's per-row cost is ~100x below the paper's Cassandra, so the full-read jump at the break is within noise here; the tail-slice series exposes the same column-index mechanism directly (unindexed: scan from start; indexed: seek)")
	return t, nil
}

// Fig7Options sizes the parallel speed-up measurement.
type Fig7Options struct {
	Dir        string
	MaxRow     int // 0 = 10000
	Strata     int // 0 = 10
	PerStratum int // 0 = 8
	// TaskFactor multiplies partitions into read tasks per
	// measurement; 0 = 8.
	TaskFactor int
	Seed       int64
}

// Fig7 measures the throughput speed-up of issuing partition reads in
// parallel, per row-size stratum, and refits the paper's logarithmic
// parallelism model (Formula 7) on this stack.
func Fig7(opts Fig7Options) (*Table, error) {
	if opts.MaxRow <= 0 {
		opts.MaxRow = 10000
	}
	if opts.Strata <= 0 {
		opts.Strata = 10
	}
	if opts.PerStratum <= 0 {
		opts.PerStratum = 8
	}
	if opts.TaskFactor <= 0 {
		opts.TaskFactor = 8
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	e, done, err := openFigEngine(opts.Dir)
	if err != nil {
		return nil, err
	}
	defer done()
	sizes, err := buildStratified(e, opts.MaxRow, opts.Strata, opts.PerStratum, rng)
	if err != nil {
		return nil, err
	}

	byStratum := make(map[int][]string)
	for pk, size := range sizes {
		s := (size - 1) * opts.Strata / opts.MaxRow
		byStratum[s] = append(byStratum[s], pk)
	}

	t := &Table{
		ID:      "Fig7",
		Title:   "Speed-up of parallel queries versus row size (real engine)",
		Columns: []string{"row_size_range", "best_speedup", "best_parallelism", "serial_ms_per_req"},
	}
	parallelisms := []int{1, 2, 4, 8, 16, 32}
	var xs, ys []float64
	width := opts.MaxRow / opts.Strata
	for s := 0; s < opts.Strata; s++ {
		pks := byStratum[s]
		if len(pks) == 0 {
			continue
		}
		// Tasks: every partition read TaskFactor times.
		tasks := make([]string, 0, len(pks)*opts.TaskFactor)
		for i := 0; i < opts.TaskFactor; i++ {
			tasks = append(tasks, pks...)
		}
		// Warm.
		for _, pk := range pks {
			if _, err := e.ScanPartition(pk, nil, nil); err != nil {
				return nil, err
			}
		}
		serial := timeTasks(e, tasks, 1)
		bestSpeedup, bestP := 1.0, 1
		for _, p := range parallelisms[1:] {
			elapsed := timeTasks(e, tasks, p)
			if sp := float64(serial) / float64(elapsed); sp > bestSpeedup {
				bestSpeedup, bestP = sp, p
			}
		}
		mid := float64(s*width + width/2)
		xs = append(xs, mid)
		ys = append(ys, bestSpeedup)
		t.AddRow(fmt.Sprintf("%d-%d", s*width+1, (s+1)*width),
			f2(bestSpeedup), d(bestP),
			f4(float64(serial)/float64(time.Millisecond)/float64(len(tasks))))
	}
	if fit, err := stats.FitLog(xs, ys); err == nil {
		t.AddNote("fitted: %s", fit)
		t.AddNote("paper (Formula 7): 12.562 - 1.084*ln(rowSize) on a 16-thread Xeon")
		t.AddNote("this host has %d hardware threads, which caps the attainable speed-up; the declining-with-size shape is the reproduced quantity", maxProcs())
	} else {
		t.AddNote("log fit failed: %v", err)
	}
	return t, nil
}

func timeTasks(e *storage.Engine, tasks []string, parallelism int) time.Duration {
	start := time.Now()
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for _, pk := range tasks {
		pk := pk
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			e.ScanPartition(pk, nil, nil)
		}()
	}
	wg.Wait()
	return time.Since(start)
}

func maxProcs() int { return runtime.GOMAXPROCS(0) }
