package enc

import (
	"bytes"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestInternalKeyRoundTrip(t *testing.T) {
	cases := []struct {
		pk string
		ck []byte
	}{
		{"simple", []byte("ck")},
		{"", nil},
		{"has\x00zero", []byte("ck\x00too")},
		{"ends-with-zero\x00", []byte{}},
		{"\x00\x00\x00", []byte{0, 0xFF, 0}},
		{"pk", []byte{0xFF, 0x00, 0x01}}, // ck starting with the escape mark
	}
	for _, c := range cases {
		ik := EncodeInternalKey(c.pk, c.ck)
		pk, ck, err := DecodeInternalKey(ik)
		if err != nil {
			t.Fatalf("decode(%q,%q): %v", c.pk, c.ck, err)
		}
		if pk != c.pk || !bytes.Equal(ck, c.ck) {
			t.Fatalf("round trip (%q,%x) -> (%q,%x)", c.pk, c.ck, pk, ck)
		}
	}
}

func TestInternalKeyOrdering(t *testing.T) {
	// Keys must sort by (pk, ck) lexicographically even when pk contains
	// zero bytes or is a prefix of another pk.
	type kc struct {
		pk string
		ck []byte
	}
	items := []kc{
		{"a", []byte{9}},
		{"a", []byte{1}},
		{"ab", []byte{0}},
		{"a\x00b", []byte{0}},
		{"b", nil},
		{"", []byte{5}},
	}
	enc := make([][]byte, len(items))
	for i, it := range items {
		enc[i] = EncodeInternalKey(it.pk, it.ck)
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].pk != items[j].pk {
			return items[i].pk < items[j].pk
		}
		return bytes.Compare(items[i].ck, items[j].ck) < 0
	})
	sort.Slice(enc, func(i, j int) bool { return bytes.Compare(enc[i], enc[j]) < 0 })
	for i := range items {
		pk, ck, err := DecodeInternalKey(enc[i])
		if err != nil {
			t.Fatal(err)
		}
		if pk != items[i].pk || !bytes.Equal(ck, items[i].ck) {
			t.Fatalf("position %d: encoded order (%q,%x) vs logical order (%q,%x)",
				i, pk, ck, items[i].pk, items[i].ck)
		}
	}
}

func TestPartitionPrefixAndEndBracket(t *testing.T) {
	f := func(pkRaw []byte, ck []byte) bool {
		pk := string(pkRaw)
		ik := EncodeInternalKey(pk, ck)
		lo := PartitionPrefix(pk)
		hi := PartitionEnd(pk)
		return bytes.Compare(lo, ik) <= 0 && bytes.Compare(ik, hi) < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPartitionEndExcludesOtherPartitions(t *testing.T) {
	// Keys of partition "a" must be outside the range of partition "ab"
	// and vice versa, even though "a" is a prefix of "ab".
	ikA := EncodeInternalKey("a", []byte{0xFF, 0xFF})
	loAB, hiAB := PartitionPrefix("ab"), PartitionEnd("ab")
	if bytes.Compare(ikA, loAB) >= 0 && bytes.Compare(ikA, hiAB) < 0 {
		t.Fatal("partition a key leaked into ab range")
	}
	ikAB := EncodeInternalKey("ab", nil)
	loA, hiA := PartitionPrefix("a"), PartitionEnd("a")
	if bytes.Compare(ikAB, loA) >= 0 && bytes.Compare(ikAB, hiA) < 0 {
		t.Fatal("partition ab key leaked into a range")
	}
}

func TestDecodeMalformed(t *testing.T) {
	if _, _, err := DecodeInternalKey([]byte("no-separator")); err == nil {
		t.Fatal("want error for key without separator")
	}
}

func TestZeroBytePartitionDoesNotInterleave(t *testing.T) {
	// Keys of partition "a\x00x" must fall outside ["a" prefix, "a" end).
	ik := EncodeInternalKey("a\x00x", []byte{1})
	lo, hi := PartitionPrefix("a"), PartitionEnd("a")
	if bytes.Compare(ik, lo) >= 0 && bytes.Compare(ik, hi) < 0 {
		t.Fatal("partition a\\x00x key leaked into partition a range")
	}
}

func TestQuickInternalKeyRoundTrip(t *testing.T) {
	f := func(pkRaw, ck []byte) bool {
		pk := string(pkRaw)
		gotPK, gotCK, err := DecodeInternalKey(EncodeInternalKey(pk, ck))
		return err == nil && gotPK == pk && bytes.Equal(gotCK, ck)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestUint64Ordered(t *testing.T) {
	f := func(a, b uint64) bool {
		ea := AppendUint64Ordered(nil, a)
		eb := AppendUint64Ordered(nil, b)
		cmp := bytes.Compare(ea, eb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Uint64Ordered(AppendUint64Ordered(nil, 12345)) != 12345 {
		t.Fatal("round trip failed")
	}
}

func TestInt64Ordered(t *testing.T) {
	f := func(a, b int64) bool {
		ea := AppendInt64Ordered(nil, a)
		eb := AppendInt64Ordered(nil, b)
		cmp := bytes.Compare(ea, eb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	for _, v := range []int64{math.MinInt64, -1, 0, 1, math.MaxInt64} {
		if Int64Ordered(AppendInt64Ordered(nil, v)) != v {
			t.Fatalf("round trip failed for %d", v)
		}
	}
}

func TestFloat64Ordered(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -1, -math.SmallestNonzeroFloat64, 0,
		math.SmallestNonzeroFloat64, 1, 1e300, math.Inf(1)}
	var prev []byte
	for i, v := range vals {
		e := AppendFloat64Ordered(nil, v)
		if got := Float64Ordered(e); got != v {
			t.Fatalf("round trip %v -> %v", v, got)
		}
		if i > 0 && bytes.Compare(prev, e) >= 0 {
			t.Fatalf("ordering violated at %v", v)
		}
		prev = e
	}
	// -0 and +0 encode adjacently and both round trip by value.
	if Float64Ordered(AppendFloat64Ordered(nil, math.Copysign(0, -1))) != 0 {
		t.Fatal("-0 round trip changed magnitude")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(payload []byte) bool {
		e := AppendBytes(nil, payload)
		got, n := Bytes(e)
		return n == len(e) && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesCorrupt(t *testing.T) {
	e := AppendBytes(nil, []byte("hello"))
	if _, n := Bytes(e[:3]); n != 0 {
		t.Fatal("truncated payload must return n=0")
	}
	if _, n := Bytes(nil); n != 0 {
		t.Fatal("empty input must return n=0")
	}
}
