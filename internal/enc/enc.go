// Package enc provides order-preserving binary encodings and varint
// helpers shared by the memtable, SSTable format, and the D8tree's
// composite keys.
//
// The central type is the internal key: escape(partitionKey) 0x00 0x01
// clusteringKey. Zero bytes inside the partition key are escaped as
// 0x00 0xFF (the FoundationDB tuple scheme), so byte-wise comparison of
// internal keys sorts first by partition key and then by clustering key —
// the two-level ordering a wide-column store needs — and no partition's
// key range can interleave with another's.
package enc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
)

const (
	escByte  = 0x00
	escMark  = 0xFF // 0x00 inside a partition key encodes as 0x00 0xFF
	sepByte  = 0x00
	sepMark  = 0x01 // the pk/ck separator is 0x00 0x01
	sepAfter = 0x02 // bumping the separator yields the partition's end key
)

// EncodeInternalKey builds the byte-comparable composite of a partition
// key and a clustering key.
func EncodeInternalKey(pk string, ck []byte) []byte {
	return AppendInternalKey(make([]byte, 0, len(pk)+len(ck)+3), pk, ck)
}

// AppendInternalKey appends the EncodeInternalKey bytes to dst and
// returns the extended slice. The storage engine's point read passes a
// stack buffer, so building the search key costs no heap allocation —
// and the search itself then runs on plain byte comparisons, which the
// runtime vectorizes (a virtual per-byte comparator measured ~3x
// slower per skiplist probe).
func AppendInternalKey(dst []byte, pk string, ck []byte) []byte {
	dst = appendEscaped(dst, pk)
	dst = append(dst, sepByte, sepMark)
	return append(dst, ck...)
}

// PartitionPrefix returns the prefix shared by every internal key of the
// given partition. Seeking to it lands on the partition's first cell.
func PartitionPrefix(pk string) []byte {
	out := make([]byte, 0, len(pk)+2)
	out = appendEscaped(out, pk)
	return append(out, sepByte, sepMark)
}

// PartitionEnd returns the smallest key strictly greater than every
// internal key of the partition.
func PartitionEnd(pk string) []byte {
	out := PartitionPrefix(pk)
	out[len(out)-1] = sepAfter
	return out
}

// ErrMalformedKey reports an internal key that does not contain the
// partition separator.
var ErrMalformedKey = errors.New("enc: malformed internal key")

// DecodeInternalKey splits an internal key back into partition and
// clustering components.
func DecodeInternalKey(ik []byte) (pk string, ck []byte, err error) {
	for i := 0; i < len(ik)-1; i++ {
		if ik[i] != escByte {
			continue
		}
		switch ik[i+1] {
		case escMark:
			i++ // escaped zero inside the partition key
		case sepMark:
			return string(unescape(ik[:i])), ik[i+2:], nil
		default:
			return "", nil, ErrMalformedKey
		}
	}
	return "", nil, ErrMalformedKey
}

func appendEscaped(dst []byte, src string) []byte {
	for i := 0; i < len(src); i++ {
		if src[i] == escByte {
			dst = append(dst, escByte, escMark)
		} else {
			dst = append(dst, src[i])
		}
	}
	return dst
}

func unescape(src []byte) []byte {
	if !bytes.Contains(src, []byte{escByte, escMark}) {
		return src
	}
	out := make([]byte, 0, len(src))
	for i := 0; i < len(src); i++ {
		out = append(out, src[i])
		if src[i] == escByte && i+1 < len(src) && src[i+1] == escMark {
			i++
		}
	}
	return out
}

// AppendUint64Ordered appends x in big-endian so byte order equals
// numeric order.
func AppendUint64Ordered(dst []byte, x uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], x)
	return append(dst, b[:]...)
}

// Uint64Ordered decodes a value written by AppendUint64Ordered.
func Uint64Ordered(b []byte) uint64 { return binary.BigEndian.Uint64(b) }

// AppendInt64Ordered appends x with the sign bit flipped so negative
// values sort before positive ones.
func AppendInt64Ordered(dst []byte, x int64) []byte {
	return AppendUint64Ordered(dst, uint64(x)^(1<<63))
}

// Int64Ordered decodes a value written by AppendInt64Ordered.
func Int64Ordered(b []byte) int64 { return int64(Uint64Ordered(b) ^ (1 << 63)) }

// AppendFloat64Ordered appends x using the standard total-order trick:
// flip all bits of negative floats, flip only the sign bit of
// non-negative ones.
func AppendFloat64Ordered(dst []byte, x float64) []byte {
	bits := math.Float64bits(x)
	if bits>>63 == 1 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	return AppendUint64Ordered(dst, bits)
}

// Float64Ordered decodes a value written by AppendFloat64Ordered.
func Float64Ordered(b []byte) float64 {
	bits := Uint64Ordered(b)
	if bits>>63 == 1 {
		bits &^= 1 << 63
	} else {
		bits = ^bits
	}
	return math.Float64frombits(bits)
}

// AppendUvarint appends x in unsigned LEB128.
func AppendUvarint(dst []byte, x uint64) []byte {
	return binary.AppendUvarint(dst, x)
}

// Uvarint decodes a LEB128 value and returns it with the bytes consumed.
// n <= 0 signals corruption, as in encoding/binary.
func Uvarint(b []byte) (uint64, int) { return binary.Uvarint(b) }

// AppendBytes appends a length-prefixed byte string.
func AppendBytes(dst, src []byte) []byte {
	dst = AppendUvarint(dst, uint64(len(src)))
	return append(dst, src...)
}

// Bytes decodes a length-prefixed byte string, returning the payload and
// total bytes consumed, or n=0 on corruption.
func Bytes(b []byte) ([]byte, int) {
	ln, n := Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < ln {
		return nil, 0
	}
	return b[n : n+int(ln)], n + int(ln)
}
