package storage

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// This file is the per-shard level manifest: `manifest-sNN` records
// which SSTables the shard owns and at which compaction level, together
// with each table's partition-key bounds so reopening does not have to
// touch the tables' own indexes. The manifest is the unit of crash
// atomicity for every table-set change:
//
//	flush:      rename table into place → write manifest → delete WAL
//	compaction: rename outputs into place → write manifest → unlink inputs
//
// A crash between any two steps leaves either (a) a renamed table the
// manifest does not list — swept as an orphan on the next open, its data
// still covered by the WAL segments or the compaction inputs — or (b) a
// manifest listing survivors while doomed inputs linger on disk, again
// swept as orphans. A table the manifest lists but the directory lacks
// is unrecoverable loss and fails the open loudly.
//
// Format: one line per table,
//
//	<level> <filename> <quoted firstPK> <quoted lastPK>
//
// with Go-quoted bounds so arbitrary partition-key bytes survive the
// text encoding. A directory without a manifest was written before
// leveled compaction existed; its tables all load into L0 in filename
// (= age) order, exactly the order the flat engine merged them in, and
// the manifest is written on the first table-set change.

// manifestEntry is one table line of a shard manifest.
type manifestEntry struct {
	level int
	name  string // base filename within the data dir
	first string // smallest partition key in the table
	last  string // largest partition key in the table
}

func (s *shard) manifestPath() string {
	return filepath.Join(s.eng.opts.Dir, fmt.Sprintf("manifest-s%02d", s.id))
}

// readShardManifest parses manifest-sNN. ok=false means no manifest
// exists (a pre-leveling directory or a brand-new shard).
func readShardManifest(path string) (entries []manifestEntry, ok bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e manifestEntry
		rest := line
		if i := strings.IndexByte(rest, ' '); i > 0 {
			e.level, err = strconv.Atoi(rest[:i])
			rest = rest[i+1:]
		} else {
			err = fmt.Errorf("missing fields")
		}
		if err == nil {
			if i := strings.IndexByte(rest, ' '); i > 0 {
				e.name, rest = rest[:i], rest[i+1:]
			} else {
				err = fmt.Errorf("missing bounds")
			}
		}
		if err == nil {
			var tail string
			e.first, tail, err = unquotePrefix(rest)
			if err == nil {
				e.last, tail, err = unquotePrefix(strings.TrimPrefix(tail, " "))
			}
			if err == nil && strings.TrimSpace(tail) != "" {
				err = fmt.Errorf("trailing garbage")
			}
		}
		if err != nil || e.level < 0 || e.name == "" {
			return nil, false, fmt.Errorf("storage: corrupt shard manifest %s: line %q", path, line)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, false, err
	}
	return entries, true, nil
}

// unquotePrefix consumes one Go-quoted string from the front of s.
func unquotePrefix(s string) (val, rest string, err error) {
	q, err := strconv.QuotedPrefix(s)
	if err != nil {
		return "", "", err
	}
	val, err = strconv.Unquote(q)
	return val, s[len(q):], err
}

// writeManifestLocked persists the shard's current level layout with
// the usual tmp-then-rename discipline. Called under mu at every
// table-set change; the file is a handful of lines, so holding the lock
// through the write keeps the layout and the manifest trivially in
// sync. An I/O failure surfaces to the caller, which treats it like any
// background-write failure (the in-memory swap is rolled back or the
// job retried).
func (s *shard) writeManifestLocked() error {
	var b strings.Builder
	for level, tables := range s.levels {
		for _, t := range tables {
			fmt.Fprintf(&b, "%d %s %s %s\n", level, filepath.Base(t.Path()),
				strconv.Quote(t.first), strconv.Quote(t.last))
		}
	}
	path := s.manifestPath()
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(b.String()), 0o644); err != nil {
		return err
	}
	if f, err := os.Open(tmp); err == nil {
		f.Sync()
		f.Close()
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
