package storage

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"scalekv/internal/row"
	"scalekv/internal/sstable"
)

// --- Delete durability -------------------------------------------------------

// TestDeleteSurvivesFlushCompactReopen is the headline tombstone
// regression: a deleted cell stays deleted through every lifecycle
// transition the engine has — flush to SSTable, full compaction,
// process restart — while its neighbours survive untouched.
func TestDeleteSurvivesFlushCompactReopen(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 20; i++ {
		if err := e.Put("p", ck(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Flush v1 of everything, then overwrite and delete across the
	// table boundary so the tombstone must mask an SSTable-resident cell.
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Put("p", ck(3), []byte("v3-new")); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete("p", ck(3)); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete("p", ck(7)); err != nil {
		t.Fatal(err)
	}

	check := func(stage string, e *Engine) {
		t.Helper()
		for _, i := range []int{3, 7} {
			if v, ok, err := e.Get("p", ck(i)); ok || err != nil {
				t.Fatalf("%s: deleted ck(%d) visible: %q, err=%v", stage, i, v, err)
			}
		}
		if v, ok, _ := e.Get("p", ck(4)); !ok || string(v) != "v4" {
			t.Fatalf("%s: neighbour lost: %q,%v", stage, v, ok)
		}
		cells, err := e.ScanPartition("p", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(cells) != 18 {
			t.Fatalf("%s: scan sees %d cells want 18", stage, len(cells))
		}
		for _, c := range cells {
			if c.Tombstone {
				t.Fatalf("%s: scan leaked a tombstone", stage)
			}
			if bytes.Equal(c.CK, ck(3)) || bytes.Equal(c.CK, ck(7)) {
				t.Fatalf("%s: deleted cell in scan", stage)
			}
		}
	}

	check("live", e)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	check("after flush", e)
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	check("after compact", e)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	check("after reopen", e2)
}

// TestReopenRestoresVersionCounter: a write accepted after a restart
// must order after everything written before it — including tombstones.
// If the counter were not restored from the persisted max sequence, the
// post-restart put would stamp a low sequence and lose to the old
// tombstone.
func TestReopenRestoresVersionCounter(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Put("p", ck(1), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete("p", ck(1)); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil { // tombstone reaches an SSTable
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if err := e2.Put("p", ck(1), []byte("reborn")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := e2.Get("p", ck(1)); !ok || string(v) != "reborn" {
		t.Fatalf("post-restart put lost to a pre-restart tombstone: %q,%v", v, ok)
	}
}

// --- Last-write-wins merge ---------------------------------------------------

// TestLWWArrivalOrderIndependent pins the property the rebalance race
// fix rests on: pre-versioned copies of the same cells applied in
// opposite orders (forwarded-then-streamed vs streamed-then-forwarded)
// converge to the same winner.
func TestLWWArrivalOrderIndependent(t *testing.T) {
	older := row.Entry{PK: "p", CK: ck(1), Value: []byte("old"), Ver: row.Version{Seq: 10, Node: 1}}
	newer := row.Entry{PK: "p", CK: ck(1), Value: []byte("new"), Ver: row.Version{Seq: 20, Node: 1}}
	delOld := row.Entry{PK: "p", CK: ck(2), Ver: row.Version{Seq: 11, Node: 2}, Tombstone: true}
	putNew := row.Entry{PK: "p", CK: ck(2), Value: []byte("after-del"), Ver: row.Version{Seq: 12, Node: 1}}

	for name, order := range map[string][]row.Entry{
		"forward-first": {newer, older, putNew, delOld},
		"stream-first":  {older, newer, delOld, putNew},
	} {
		e := openTest(t, Options{Shards: 1})
		for _, ent := range order {
			if err := e.PutBatch([]row.Entry{ent}); err != nil {
				t.Fatal(err)
			}
		}
		if v, ok, _ := e.Get("p", ck(1)); !ok || string(v) != "new" {
			t.Fatalf("%s: ck1 = %q,%v want new", name, v, ok)
		}
		if v, ok, _ := e.Get("p", ck(2)); !ok || string(v) != "after-del" {
			t.Fatalf("%s: ck2 = %q,%v want after-del", name, v, ok)
		}
		// A flush between arrivals must not change the outcome either.
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		if v, _, _ := e.Get("p", ck(1)); string(v) != "new" {
			t.Fatalf("%s: flush changed the winner to %q", name, v)
		}
	}
}

// TestLWWAcrossFlushBoundary: the newer version is flushed to an
// SSTable, then an older copy lands in the active memtable (a late
// stream page). The memtable copy is more recent by arrival but older
// by version — reads must keep serving the SSTable's cell.
func TestLWWAcrossFlushBoundary(t *testing.T) {
	e := openTest(t, Options{Shards: 1})
	if err := e.PutBatch([]row.Entry{{PK: "p", CK: ck(1), Value: []byte("new"), Ver: row.Version{Seq: 50, Node: 3}}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.PutBatch([]row.Entry{{PK: "p", CK: ck(1), Value: []byte("stale"), Ver: row.Version{Seq: 9, Node: 1}}}); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := e.Get("p", ck(1)); !ok || string(v) != "new" {
		t.Fatalf("stale memtable copy shadowed a newer SSTable cell: %q,%v", v, ok)
	}
	cells, err := e.ScanPartition("p", nil, nil)
	if err != nil || len(cells) != 1 || string(cells[0].Value) != "new" {
		t.Fatalf("scan = %v, %v", cells, err)
	}
}

// --- Tombstone GC ------------------------------------------------------------

// TestTombstoneGCOnCompaction: once every memtable is drained, a full
// compaction collects tombstones (and the partitions they emptied); an
// older shadowed copy arriving before the compaction keeps the
// tombstone alive via the GC watermark.
func TestTombstoneGCOnCompaction(t *testing.T) {
	e := openTest(t, Options{Shards: 1})
	if err := e.Put("gone", ck(1), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := e.Put("kept", ck(1), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil { // table 1: both cells live
		t.Fatal(err)
	}
	if err := e.Delete("gone", ck(1)); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil { // table 2: the tombstone
		t.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if e.Metrics.TombstonesGCed.Load() == 0 {
		t.Fatal("compaction kept a collectable tombstone")
	}
	// The tombstone-only partition is gone entirely.
	for _, pk := range e.Partitions() {
		if pk == "gone" {
			t.Fatal("tombstone-only partition survived compaction")
		}
	}
	if _, ok, _ := e.Get("kept", ck(1)); !ok {
		t.Fatal("live cell lost in compaction")
	}
}

// TestTombstoneKeptWhileOlderCopyUnflushed: a stale pre-versioned copy
// sits in the active memtable below the tombstone's version. The GC
// watermark must keep the tombstone through compaction, or the stale
// copy would resurrect when it flushes.
func TestTombstoneKeptWhileOlderCopyUnflushed(t *testing.T) {
	e := openTest(t, Options{Shards: 1})
	if err := e.Put("p", ck(1), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete("p", ck(1)); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil { // tombstone now in an SSTable
		t.Fatal(err)
	}
	// A late stream page delivers an older copy into the memtable.
	if err := e.PutBatch([]row.Entry{{PK: "p", CK: ck(1), Value: []byte("stale"), Ver: row.Version{Seq: 1, Node: 9}}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := e.Get("p", ck(1)); ok {
		t.Fatal("compaction dropped a tombstone still masking an unflushed stale copy")
	}
	// After the stale copy flushes, the retained tombstone still masks it.
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := e.Get("p", ck(1)); ok {
		t.Fatalf("stale copy resurrected after flush+compact: %q", v)
	}
}

// --- v1 back-compat ----------------------------------------------------------

// writeLegacyDir builds a data directory exactly as the pre-versioning
// engine would have left it: a count-only SHARDS manifest and v1-format
// SSTables.
func writeLegacyDir(t *testing.T, parts map[string][]row.Cell) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "SHARDS"), []byte("1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := sstable.NewWriter(filepath.Join(dir, "sst-s00-000000.db"), sstable.WriterOptions{FormatVersion: 1})
	if err != nil {
		t.Fatal(err)
	}
	pks := make([]string, 0, len(parts))
	for pk := range parts {
		pks = append(pks, pk)
	}
	// Writer needs ascending order.
	for i := 0; i < len(pks); i++ {
		for j := i + 1; j < len(pks); j++ {
			if pks[j] < pks[i] {
				pks[i], pks[j] = pks[j], pks[i]
			}
		}
	}
	for _, pk := range pks {
		if err := w.AddPartition(pk, parts[pk]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestV1TablesReadableAndUpgradable: a directory written before this
// format change still opens and serves every cell; new writes win over
// the unversioned cells, deletes mask them, and a compaction folds the
// v1 table into a v2 one without losing anything.
func TestV1TablesReadableAndUpgradable(t *testing.T) {
	dir := writeLegacyDir(t, map[string][]row.Cell{
		"alpha": {{CK: ck(1), Value: []byte("a1")}, {CK: ck(2), Value: []byte("a2")}},
		"beta":  {{CK: ck(1), Value: []byte("b1")}},
	})
	e, err := Open(Options{Dir: dir, Shards: 8}) // manifest's 1 must win
	if err != nil {
		t.Fatal(err)
	}

	if v, ok, _ := e.Get("alpha", ck(1)); !ok || string(v) != "a1" {
		t.Fatalf("v1 cell unreadable: %q,%v", v, ok)
	}
	// New writes (versioned) must shadow the zero-versioned v1 cells.
	if err := e.Put("alpha", ck(1), []byte("a1-new")); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := e.Get("alpha", ck(1)); string(v) != "a1-new" {
		t.Fatalf("v1 cell shadowed wrongly: %q", v)
	}
	if err := e.Delete("beta", ck(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := e.Get("beta", ck(1)); ok {
		t.Fatal("delete did not mask a v1 cell")
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(); err != nil { // folds v1 + v2 tables together
		t.Fatal(err)
	}
	if v, _, _ := e.Get("alpha", ck(1)); string(v) != "a1-new" {
		t.Fatalf("compaction of mixed formats lost the overwrite: %q", v)
	}
	if v, ok, _ := e.Get("alpha", ck(2)); !ok || string(v) != "a2" {
		t.Fatalf("compaction of mixed formats lost a v1 cell: %q,%v", v, ok)
	}
	if _, ok, _ := e.Get("beta", ck(1)); ok {
		t.Fatal("delete of a v1 cell undone by compaction")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// The manifest was upgraded in place and the directory reopens.
	b, err := os.ReadFile(filepath.Join(dir, "SHARDS"))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "1 v3\n" {
		t.Fatalf("manifest not upgraded: %q", b)
	}
	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if v, ok, _ := e2.Get("alpha", ck(2)); !ok || string(v) != "a2" {
		t.Fatalf("reopen after upgrade lost data: %q,%v", v, ok)
	}
}

// TestUnknownManifestFormatRejected: a directory stamped by a future
// format must fail loudly, not present garbage.
func TestUnknownManifestFormatRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "SHARDS"), []byte("4 v9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("opened a directory with an unknown format stamp")
	}
}

// --- ScanRange index ---------------------------------------------------------

// TestScanRangePagedIndexComplete: paging a range with a tiny page size
// must enumerate exactly the same cells as one unbounded page — the
// cached per-scan partition index and its binary-search resume must not
// skip or duplicate partitions.
func TestScanRangePagedIndexComplete(t *testing.T) {
	e := openTest(t, Options{Shards: 4})
	const parts = 40
	want := map[string]bool{}
	for p := 0; p < parts; p++ {
		pk := fmt.Sprintf("part-%03d", p)
		want[pk] = true
		for i := 0; i < 5; i++ {
			if err := e.Put(pk, ck(i), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
	}
	lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
	got := map[string]int{}
	afterTok, afterPK := int64(math.MinInt64), ""
	pages := 0
	for {
		page, err := e.ScanRange(lo, hi, afterTok, afterPK, 7)
		if err != nil {
			t.Fatal(err)
		}
		pages++
		for _, ent := range page.Entries {
			got[ent.PK]++
		}
		if !page.More {
			break
		}
		afterTok, afterPK = page.NextToken, page.NextPK
	}
	if pages < 2 {
		t.Fatalf("page size 7 over %d cells produced %d pages", parts*5, pages)
	}
	if len(got) != parts {
		t.Fatalf("paged scan saw %d partitions want %d", len(got), parts)
	}
	for pk, n := range got {
		if !want[pk] || n != 5 {
			t.Fatalf("partition %s: %d cells", pk, n)
		}
	}

	// A new scan session (first page) must observe partitions created
	// after the previous session's index was built.
	if err := e.Put("part-zzz", ck(0), []byte("v")); err != nil {
		t.Fatal(err)
	}
	page, err := e.ScanRange(lo, hi, math.MinInt64, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := false
	for _, ent := range page.Entries {
		if ent.PK == "part-zzz" {
			seen = true
		}
	}
	if !seen {
		t.Fatal("fresh scan session served a stale partition index")
	}
}

// TestScanRangeStreamsTombstones: the streamer's view must include
// tombstones so deletes propagate to a range's new owner.
func TestScanRangeStreamsTombstones(t *testing.T) {
	e := openTest(t, Options{Shards: 1})
	if err := e.Put("p", ck(1), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := e.Put("p", ck(2), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete("p", ck(1)); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil { // tombstone must survive into tables
		t.Fatal(err)
	}
	page, err := e.ScanRange(math.MinInt64, math.MaxInt64, math.MinInt64, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	var tombs, live int
	for _, ent := range page.Entries {
		if ent.Tombstone {
			tombs++
			if ent.Ver.IsZero() {
				t.Fatal("streamed tombstone lost its version")
			}
		} else {
			live++
		}
	}
	if tombs != 1 || live != 1 {
		t.Fatalf("stream page: %d tombstones, %d live; want 1, 1", tombs, live)
	}
}
