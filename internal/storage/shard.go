package storage

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"scalekv/internal/memtable"
	"scalekv/internal/row"
	"scalekv/internal/sstable"
)

// frozenMem is an immutable memtable queued for flush, together with
// the WAL segments that made it durable. The worker deletes the
// segments only after the SSTable is live, so a crash at any point
// between freeze and flush replays them on the next Open.
type frozenMem struct {
	mem      *memtable.Memtable
	walPaths []string
}

// tableHandle reference-counts an SSTable reader so the compactor can
// retire inputs while reads are in flight. The shard's table list owns
// one reference; every snapshot pins one more. The last release closes
// the file, deleting it too when the table was superseded. (The old
// single-lock engine closed tables under the exclusive lock and merely
// never tripped over in-flight readers; with background compaction the
// lifetime must be explicit.)
type tableHandle struct {
	*sstable.Reader
	refs atomic.Int64
	drop atomic.Bool // superseded by compaction: unlink on last release
}

func newTableHandle(r *sstable.Reader) *tableHandle {
	h := &tableHandle{Reader: r}
	h.refs.Store(1) // list ownership
	return h
}

func (h *tableHandle) acquire() { h.refs.Add(1) }

func (h *tableHandle) release() error {
	if h.refs.Add(-1) > 0 {
		return nil
	}
	path := h.Path()
	err := h.Close()
	if h.drop.Load() {
		os.Remove(path)
	}
	return err
}

// shardView is a consistent read snapshot of one shard: the active
// memtable, the frozen queue and the pinned table list. Views are
// immutable and atomically published (see publishLocked); readers
// acquire one with snapshot() and must close it when done so superseded
// tables can be retired. refs counts the publisher's reference (the
// view is current) plus one per in-flight reader; the last close
// releases the pinned tables.
type shardView struct {
	mem    *memtable.Memtable
	frozen []*frozenMem
	tables []*tableHandle
	refs   atomic.Int64
}

func (v *shardView) close() {
	if v.refs.Add(-1) > 0 {
		return
	}
	for _, t := range v.tables {
		t.release()
	}
}

// shard is one lock stripe of the engine: a full miniature LSM tree
// with its own write path, WAL segments, SSTable list and background
// worker. Writes and freezes hold mu exclusively but never wait on
// SSTable I/O; the worker holds mu only to take work and to swap
// results in. Reads never touch mu at all: every mutation that changes
// the read sources (memtable swap, flush accept, compaction or purge
// table swap) republishes an immutable shardView through the atomic
// view pointer, and readers pin it with one CAS.
type shard struct {
	id  int
	eng *Engine

	mu   sync.RWMutex
	cond *sync.Cond // paired with &mu; broadcast on every state change

	// view is the current read snapshot; see publishLocked/snapshot.
	view atomic.Pointer[shardView]
	// partGen counts mutations to this shard's partition set: a write
	// creating a new (pk, ck) address, a purge removing partitions, a
	// compaction collapsing tombstone-only ones. The engine's merged
	// partition index records the generations it was built from and is
	// rebuilt when any shard's moved — write invalidation for free.
	partGen atomic.Uint64

	mem    *memtable.Memtable
	frozen []*frozenMem // oldest first
	tables []*tableHandle
	wal    *wal  // active segment, opened lazily on first write
	walSeq int   // next WAL segment number
	sstSeq int   // next SSTable sequence number
	memGen int64 // memtable generation, seeds the skip list

	compactReq bool
	purges     []*purgeRange // pending DeleteRange purges, oldest first
	busy       bool          // worker is writing a table outside the lock
	flushErr   error         // last background failure; cleared on success/retry
	closing    bool
	abandoned  bool // simulated crash (tests): worker must not touch disk
}

func (s *shard) sstPath(seq int) string {
	return filepath.Join(s.eng.opts.Dir, fmt.Sprintf("sst-s%02d-%06d.db", s.id, seq))
}

func (s *shard) walPath(seq int) string {
	return filepath.Join(s.eng.opts.Dir, fmt.Sprintf("wal-s%02d-%06d.log", s.id, seq))
}

// openShard loads one shard's SSTables and replays its WAL segments,
// oldest first, each into its own frozen memtable queued for background
// flush. The engine's version counter is pulled forward past every
// version seen (table footers record their max sequence; v2 WAL records
// carry theirs), so post-recovery writes always order after pre-crash
// ones. Legacy (pre-versioning) records carry no version and are
// stamped in replay order, which preserves the original within-segment
// ordering — including a delete covering an earlier put, which now
// replays as a tombstone. Replayed segments stay on disk until their
// data reaches an SSTable.
func (e *Engine) openShard(id int) (*shard, error) {
	s := &shard{id: id, eng: e, mem: memtable.New(shardSeed(e.opts.Seed, id, 0))}
	s.cond = sync.NewCond(&s.mu)

	names, err := filepath.Glob(filepath.Join(e.opts.Dir, fmt.Sprintf("sst-s%02d-*.db", id)))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	for _, name := range names {
		r, err := sstable.Open(name)
		if err != nil {
			for _, t := range s.tables {
				t.release()
			}
			return nil, fmt.Errorf("storage: reopen %s: %w", name, err)
		}
		e.advanceSeq(r.MaxSeq())
		s.tables = append(s.tables, newTableHandle(r))
		var n int
		fmt.Sscanf(filepath.Base(name), fmt.Sprintf("sst-s%02d-%%06d.db", id), &n)
		if n >= s.sstSeq {
			s.sstSeq = n + 1
		}
	}

	if !e.opts.DisableWAL {
		segs, err := filepath.Glob(filepath.Join(e.opts.Dir, fmt.Sprintf("wal-s%02d-*.log", id)))
		if err != nil {
			return nil, err
		}
		sort.Strings(segs)
		for _, seg := range segs {
			s.memGen++
			rec := memtable.New(shardSeed(e.opts.Seed, id, s.memGen))
			if err := replayWAL(seg, func(r walRec) {
				switch r.op {
				case walPutV2:
					e.advanceSeq(r.ver.Seq)
					rec.Put(r.pk, r.ck, r.value, r.ver, r.tombstone)
				case walPut:
					rec.Put(r.pk, r.ck, r.value, e.stamp(), false)
				case walDelete:
					// Legacy delete, replayed as a tombstone: it masks the
					// puts it covered (and, unlike the pre-versioning
					// engine, stays effective past flush).
					rec.Put(r.pk, r.ck, nil, e.stamp(), true)
				}
			}); err != nil {
				for _, t := range s.tables {
					t.release()
				}
				return nil, err
			}
			var n int
			fmt.Sscanf(filepath.Base(seg), fmt.Sprintf("wal-s%02d-%%06d.log", id), &n)
			if n >= s.walSeq {
				s.walSeq = n + 1
			}
			if rec.Len() == 0 {
				// The segment held no intact records at all. Retire it now:
				// nothing else ever would, and it would be re-replayed on
				// every reopen.
				os.Remove(seg)
				continue
			}
			rec.Freeze()
			s.frozen = append(s.frozen, &frozenMem{mem: rec, walPaths: []string{seg}})
		}
		s.memGen++
		s.mem = memtable.New(shardSeed(e.opts.Seed, id, s.memGen))
	}
	// No concurrency yet — the worker starts after Open returns — but the
	// view must exist before the first read.
	s.publishLocked()
	return s, nil
}

// shardSeed derives a distinct deterministic skip-list seed per shard
// and memtable generation.
func shardSeed(base int64, id int, gen int64) int64 {
	return base + int64(id)*1_000_003 + gen
}

// publishLocked installs a fresh immutable view of the shard's read
// sources and retires the previous one. Called under mu at every point
// the sources change: memtable freeze, flush accept, compaction swap,
// purge swap, open and close. The frozen and tables slices are never
// mutated in place after publication, so readers traverse them without
// any synchronization beyond the pointer load.
func (s *shard) publishLocked() {
	nv := &shardView{mem: s.mem, frozen: s.frozen, tables: s.tables}
	nv.refs.Store(1) // the publisher's reference: the view is current
	for _, t := range nv.tables {
		t.acquire()
	}
	if old := s.view.Swap(nv); old != nil {
		old.close()
	}
}

// snapshot pins the shard's current read view: one atomic load and one
// CAS, no locks, no allocation. The CAS increments refs only when the
// observed count is positive — a view at zero is being retired by a
// concurrent publish, and bumping it back would resurrect tables whose
// release already began; retry on the freshly published pointer
// instead. The publisher's own reference makes the first attempt
// succeed in all but the publication instant.
func (s *shard) snapshot() *shardView {
	for {
		v := s.view.Load()
		if r := v.refs.Load(); r > 0 && v.refs.CompareAndSwap(r, r+1) {
			return v
		}
	}
}

// ensureWALLocked opens the active WAL segment on first use. Lazy
// creation keeps idle shards from littering the directory. Caller holds
// mu.
func (s *shard) ensureWALLocked() error {
	if s.eng.opts.DisableWAL || s.wal != nil {
		return nil
	}
	w, err := openWAL(s.walPath(s.walSeq))
	if err != nil {
		return err
	}
	s.wal = w
	s.walSeq++
	return nil
}

// putBatch is the per-shard half of Engine.PutBatch: one lock
// acquisition and one WAL write for the whole slice. Entries arrive
// already stamped with their versions.
func (s *shard) putBatch(entries []row.Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return errClosed
	}
	if err := s.checkBacklogLocked(); err != nil {
		return err
	}
	if err := s.ensureWALLocked(); err != nil {
		return err
	}
	if s.wal != nil {
		if err := s.wal.appendBatch(entries); err != nil {
			return err
		}
		if s.eng.opts.Sync == SyncAlways {
			if err := s.wal.sync(); err != nil {
				return err
			}
		}
	}
	inserted := false
	for _, ent := range entries {
		if s.mem.Put(ent.PK, ent.CK, ent.Value, ent.Ver, ent.Tombstone) {
			inserted = true
		}
	}
	if inserted {
		s.partGen.Add(1)
	}
	if s.mem.Bytes() >= s.eng.opts.FlushThreshold {
		s.freezeLocked()
	}
	return nil
}

// freezeLocked seals the active memtable and WAL segment and queues
// them for the background worker, installing a fresh memtable. It
// cannot fail: the commit point is a pointer swap, and the next WAL
// segment is opened lazily by the next write. A no-op on an empty
// memtable. Caller holds mu.
func (s *shard) freezeLocked() {
	if s.mem.Len() == 0 {
		return
	}
	fm := &frozenMem{mem: s.mem}
	if s.wal != nil {
		// SyncOnSeal's durability point: the segment is complete, flush
		// it to stable storage before handing the memtable off. A sync
		// failure cannot fail the freeze (the pointer swap must happen);
		// it surfaces through the background-error channel instead — the
		// SSTable the worker writes supersedes the segment anyway.
		if s.eng.opts.Sync != SyncNever {
			if err := s.wal.sync(); err != nil && s.flushErr == nil {
				s.flushErr = err
			}
		}
		// The sealed segment's records are already written; closing the
		// descriptor cannot unwrite them, so a close error is not a
		// freeze failure.
		_ = s.wal.close()
		fm.walPaths = []string{s.wal.path}
		s.wal = nil
	}
	s.mem.Freeze()
	s.memGen++
	s.mem = memtable.New(shardSeed(s.eng.opts.Seed, s.id, s.memGen))
	s.frozen = append(s.frozen, fm)
	s.publishLocked()
	s.cond.Broadcast()
}

// purgeRange is one pending DeleteRange: the worker rewrites the
// shard's tables without the partitions whose token falls in [lo, hi]
// and reports how many cells that dropped.
type purgeRange struct {
	lo, hi  int64
	removed int64
}

// waitDrainedLocked blocks until the shard has no queued or running
// background work, returning early with any background error. Caller
// holds mu.
func (s *shard) waitDrainedLocked() error {
	for len(s.frozen) > 0 || s.busy || s.compactReq || len(s.purges) > 0 {
		if s.flushErr != nil {
			return s.flushErr
		}
		if s.closing {
			return errClosed
		}
		s.cond.Wait()
	}
	return s.flushErr
}

// worker is the shard's background goroutine: it turns frozen memtables
// into SSTables, retires their WAL segments, and compacts the table
// list — all without blocking the write path. On failure the frozen
// memtable and its WAL segments stay intact (readers keep merging them,
// recovery can replay them) and the worker waits for the next signal to
// retry, surfacing the error through Flush/Close.
func (s *shard) worker() {
	defer s.eng.wg.Done()
	s.mu.Lock()
	for {
		for !s.closing && !s.abandoned && len(s.frozen) == 0 && !s.compactReq && len(s.purges) == 0 {
			s.cond.Wait()
		}
		if s.abandoned {
			s.mu.Unlock()
			return
		}
		switch {
		case len(s.frozen) > 0:
			fm := s.frozen[0]
			seq := s.sstSeq
			s.busy = true
			s.mu.Unlock()
			r, err := s.writeTable(fm.mem, seq)
			s.mu.Lock()
			s.busy = false
			if s.abandoned {
				if err == nil {
					r.Close()
					os.Remove(r.Path())
				}
				s.cond.Broadcast()
				s.mu.Unlock()
				return
			}
			if err != nil {
				s.flushErr = err
				s.cond.Broadcast()
				if s.closing {
					s.mu.Unlock()
					return
				}
				s.cond.Wait() // retry on the next signal, not in a hot loop
				continue
			}
			s.tables = append(s.tables, newTableHandle(r))
			s.sstSeq = seq + 1
			s.frozen = s.frozen[1:]
			s.publishLocked()
			s.flushErr = nil
			s.eng.Metrics.Flushes.Add(1)
			s.eng.Metrics.FlushedBytes.Add(fm.mem.Bytes())
			if len(s.tables) > s.eng.opts.CompactAfter {
				s.compactReq = true
			}
			// Stay busy through the WAL cleanup so Flush callers observe
			// a fully settled shard; readers already see the new table.
			s.busy = true
			s.cond.Broadcast()
			s.mu.Unlock()
			// The cells are live in the SSTable; their WAL segments are
			// done.
			for _, p := range fm.walPaths {
				os.Remove(p)
			}
			s.mu.Lock()
			s.busy = false
			s.cond.Broadcast()

		case len(s.purges) > 0:
			// Only the worker pops the queue, so the head it processes
			// outside the lock is still the head when it returns —
			// concurrent DeleteRanges append behind it and are served on
			// later loop turns, never dropped.
			req := s.purges[0]
			if len(s.tables) == 0 {
				s.purges = s.purges[1:]
				s.cond.Broadcast()
				continue
			}
			inputs := append([]*tableHandle(nil), s.tables...)
			seq := s.sstSeq
			gcBelow := s.gcWatermarkLocked()
			fences, fenceGen := s.eng.fenceSnapshot()
			s.busy = true
			s.mu.Unlock()
			drop := func(pk string) bool {
				tok := PartitionToken(pk)
				return req.lo <= tok && tok <= req.hi
			}
			r, dropped, gced, err := s.compactTables(inputs, seq, drop, gcBelow, fencedFn(fences))
			s.mu.Lock()
			s.busy = false
			if s.abandoned {
				if err == nil && r != nil {
					r.Close()
					os.Remove(r.Path())
				}
				s.cond.Broadcast()
				s.mu.Unlock()
				return
			}
			if err == nil && s.eng.fenceGen.Load() != fenceGen {
				// A migration fence opened while this merge ran: it may
				// have collected tombstones the fence now protects.
				// Discard the result and redo with the fresh fence set
				// (the purge request is still at the head of the queue).
				if r != nil {
					r.Close()
					os.Remove(r.Path())
				}
				continue
			}
			if err != nil {
				s.flushErr = err // purge request stays pending for the retry
				s.cond.Broadcast()
				if s.closing {
					s.mu.Unlock()
					return
				}
				s.cond.Wait()
				continue
			}
			// Swap the inputs for the filtered merge; a nil reader means
			// every surviving partition was in range, so the shard keeps
			// only tables appended after the snapshot (none today).
			tail := s.tables[len(inputs):]
			if r != nil {
				s.tables = append([]*tableHandle{newTableHandle(r)}, tail...)
				s.sstSeq = seq + 1
			} else {
				s.tables = append([]*tableHandle(nil), tail...)
			}
			s.publishLocked()
			// The purge removed partitions: invalidate the engine's merged
			// partition index. Bumped after the swap is published so an
			// index builder that loaded the old generation can never
			// enumerate the new view under it unnoticed.
			s.partGen.Add(1)
			req.removed = dropped
			s.purges = s.purges[1:]
			s.flushErr = nil
			s.eng.Metrics.RangePurges.Add(1)
			s.eng.Metrics.TombstonesGCed.Add(gced)
			s.busy = true
			s.cond.Broadcast()
			s.mu.Unlock()
			for _, t := range inputs {
				t.drop.Store(true)
				t.release()
			}
			s.mu.Lock()
			s.busy = false
			s.cond.Broadcast()

		case s.compactReq:
			s.compactReq = false
			if len(s.tables) <= 1 {
				s.cond.Broadcast()
				continue
			}
			inputs := append([]*tableHandle(nil), s.tables...)
			seq := s.sstSeq
			gcBelow := s.gcWatermarkLocked()
			fences, fenceGen := s.eng.fenceSnapshot()
			s.busy = true
			s.mu.Unlock()
			r, _, gced, err := s.compactTables(inputs, seq, nil, gcBelow, fencedFn(fences))
			s.mu.Lock()
			s.busy = false
			if s.abandoned {
				if err == nil {
					r.Close()
					os.Remove(r.Path())
				}
				s.cond.Broadcast()
				s.mu.Unlock()
				return
			}
			if err == nil && gced > 0 && s.eng.fenceGen.Load() != fenceGen {
				// Same fence re-check as the purge path, but only when the
				// merge actually collected tombstones: a merge with zero
				// collections is byte-equivalent to a fence-honoring one,
				// so installing it is safe and the (whole-shard) redo is
				// saved. (The purge path stays unconditional — tombstones
				// inside dropped partitions are not counted in gced.)
				r.Close()
				os.Remove(r.Path())
				s.compactReq = true
				continue
			}
			if err != nil {
				s.flushErr = err
				s.compactReq = true // keep the request for the retry
				s.cond.Broadcast()
				if s.closing {
					s.mu.Unlock()
					return
				}
				s.cond.Wait()
				continue
			}
			// Swap exactly the inputs for the merged table; anything a
			// concurrent flush appended after the snapshot stays. (The
			// worker is today the only appender, so the tail is empty,
			// but the swap doesn't rely on that.)
			s.tables = append([]*tableHandle{newTableHandle(r)}, s.tables[len(inputs):]...)
			s.sstSeq = seq + 1
			s.publishLocked()
			// A compaction can collapse tombstone-only partitions out of
			// existence, shrinking the partition set.
			s.partGen.Add(1)
			s.eng.Metrics.Compactions.Add(1)
			s.eng.Metrics.TombstonesGCed.Add(gced)
			// Stay busy while the superseded tables are retired so
			// Compact callers observe the final on-disk state (barring
			// in-flight readers, which unlink the files as they finish).
			s.busy = true
			s.cond.Broadcast()
			s.mu.Unlock()
			for _, t := range inputs {
				t.drop.Store(true)
				t.release()
			}
			s.mu.Lock()
			s.busy = false
			s.cond.Broadcast()

		case s.closing:
			s.mu.Unlock()
			return
		}
	}
}

// writeTable streams a frozen memtable into sst-sNN-<seq>.db. The file
// is built under a .tmp name and renamed into place only when complete,
// so a crash or error never leaves a half-written table where Open
// would load it. Called without the lock.
func (s *shard) writeTable(mem *memtable.Memtable, seq int) (*sstable.Reader, error) {
	if gate := s.eng.testFlushGate; gate != nil {
		<-gate
	}
	if hook := s.eng.testFlushErr; hook != nil {
		if err := hook(s.id); err != nil {
			return nil, err
		}
	}
	if s.isAbandoned() {
		return nil, errClosed
	}
	path := s.sstPath(seq)
	tmp := path + ".tmp"
	w, err := sstable.NewWriter(tmp, sstable.WriterOptions{
		ColumnIndexSize:    s.eng.opts.ColumnIndexSize,
		ExpectedPartitions: len(mem.Partitions()),
	})
	if err != nil {
		return nil, err
	}
	// Stream the memtable in order, grouping cells per partition.
	var curPK string
	var cur []row.Cell
	first := true
	flushPart := func() error {
		if first {
			return nil
		}
		return w.AddPartition(curPK, cur)
	}
	err = mem.Each(func(ent memtable.Entry) error {
		if first || ent.PK != curPK {
			if err := flushPart(); err != nil {
				return err
			}
			curPK, cur, first = ent.PK, nil, false
		}
		// Tombstones flush like any cell: they must keep masking older
		// copies in other tables until compaction collects them.
		cur = append(cur, row.Cell{CK: ent.CK, Value: ent.Value, Ver: ent.Ver, Tombstone: ent.Tombstone})
		return nil
	})
	if err == nil {
		err = flushPart()
	}
	if err != nil {
		w.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	r, err := sstable.Open(path)
	if err != nil {
		// Leave no half-live state: without the reader the table must
		// not exist, so the WAL segments keep covering the data.
		os.Remove(path)
		return nil, err
	}
	return r, nil
}

// gcWatermarkLocked returns the version sequence below which this
// shard's tombstones may be garbage-collected by a compaction over all
// of its tables: the lowest version any unflushed memtable (active or
// frozen) might still hold. A tombstone older than that bound cannot be
// masking anything outside the compaction inputs — the inputs cover
// every table, and every memtable cell is provably newer — so dropping
// it (and everything it shadowed, which the merge already did) is safe.
// A tombstone at or above the bound is kept: an older shadowed copy may
// sit in a memtable (a rebalance stream page, a read-repair) and will
// only be masked if the tombstone is still there when it flushes.
// Caller holds mu.
func (s *shard) gcWatermarkLocked() uint64 {
	wm := uint64(math.MaxUint64)
	if v, ok := s.mem.MinVersion(); ok && v.Seq < wm {
		wm = v.Seq
	}
	for _, fm := range s.frozen {
		if v, ok := fm.mem.MinVersion(); ok && v.Seq < wm {
			wm = v.Seq
		}
	}
	return wm
}

// compactTables merges the input tables into one, dropping shadowed
// cell versions, collecting tombstones whose version sequence is below
// gcBelow (the shard's GC watermark) — except in partitions the fenced
// predicate covers, whose tombstones are kept because a migration or
// repair may still stream older copies in behind them — and, when drop
// is non-nil, whole partitions (the DeleteRange purge), returning how
// many live cells that removed and how many tombstones were collected.
// When every partition is dropped no table is written and the reader is
// nil. Same .tmp-then-rename discipline as writeTable. Called without
// the lock; the inputs stay readable throughout (sstable readers are
// concurrency-safe, and the worker's list reference keeps them open).
func (s *shard) compactTables(inputs []*tableHandle, seq int, drop func(pk string) bool, gcBelow uint64, fenced func(pk string) bool) (*sstable.Reader, int64, int64, error) {
	seen := map[string]bool{}
	for _, t := range inputs {
		for _, pk := range t.Partitions() {
			seen[pk] = true
		}
	}
	var dropped int64
	pks := make([]string, 0, len(seen))
	dropPKs := make([]string, 0)
	for pk := range seen {
		if drop != nil && drop(pk) {
			dropPKs = append(dropPKs, pk)
			continue
		}
		pks = append(pks, pk)
	}
	sort.Strings(pks)

	// Count the live (post-merge) cells the purge removes, so handoff
	// accounting matches what a reader would have seen.
	readMerged := func(pk string) ([]row.Cell, error) {
		sources := make([][]row.Cell, 0, len(inputs))
		for _, t := range inputs {
			cells, err := t.ReadSlice(pk, nil, nil)
			if err == sstable.ErrNotFound {
				continue
			}
			if err != nil {
				return nil, err
			}
			sources = append(sources, cells)
		}
		return row.Merge(sources...), nil
	}
	for _, pk := range dropPKs {
		cells, err := readMerged(pk)
		if err != nil {
			return nil, 0, 0, err
		}
		dropped += int64(len(row.DropTombstones(cells)))
	}
	if len(pks) == 0 && drop != nil {
		// Nothing survives: the caller drops every input table and keeps
		// no replacement.
		return nil, dropped, 0, nil
	}

	path := s.sstPath(seq)
	tmp := path + ".tmp"
	w, err := sstable.NewWriter(tmp, sstable.WriterOptions{
		ColumnIndexSize:    s.eng.opts.ColumnIndexSize,
		ExpectedPartitions: len(pks),
	})
	if err != nil {
		return nil, 0, 0, err
	}
	var tombstonesGCed int64
	for _, pk := range pks {
		cells, err := readMerged(pk)
		if err != nil {
			w.Close()
			os.Remove(tmp)
			return nil, 0, 0, err
		}
		// Collect tombstones under the GC watermark: the merge already
		// dropped everything they shadowed within the inputs, and the
		// watermark guarantees nothing older is still waiting to flush
		// locally. A partition under a migration fence keeps them all —
		// an in-flight stream may still deliver a sub-watermark copy
		// from another node that only the tombstone can mask.
		if gcBelow > 0 && (fenced == nil || !fenced(pk)) {
			kept := cells[:0]
			for _, c := range cells {
				if c.Tombstone && c.Ver.Seq < gcBelow {
					tombstonesGCed++
					continue
				}
				kept = append(kept, c)
			}
			cells = kept
		}
		if len(cells) == 0 {
			continue // the partition was only tombstones; it is gone
		}
		if err := w.AddPartition(pk, cells); err != nil {
			w.Close()
			os.Remove(tmp)
			return nil, 0, 0, err
		}
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return nil, 0, 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, 0, 0, err
	}
	r, err := sstable.Open(path)
	if err != nil {
		os.Remove(path)
		return nil, 0, 0, err
	}
	return r, dropped, tombstonesGCed, nil
}

func (s *shard) isAbandoned() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.abandoned
}
