package storage

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"scalekv/internal/memtable"
	"scalekv/internal/row"
	"scalekv/internal/sstable"
)

// frozenMem is an immutable memtable queued for flush, together with
// the WAL segments that made it durable. The worker deletes the
// segments only after the SSTable is live, so a crash at any point
// between freeze and flush replays them on the next Open.
type frozenMem struct {
	mem      *memtable.Memtable
	walPaths []string
}

// tableHandle reference-counts an SSTable reader so the compactor can
// retire inputs while reads are in flight. The shard's level lists own
// one reference; every snapshot pins one more. The last release closes
// the file, deleting it too when the table was superseded. The handle
// also carries the table's partition-key bounds and file size — the
// level machinery's working data — so picking a compaction never
// touches the tables themselves.
type tableHandle struct {
	*sstable.Reader
	first string // smallest partition key in the table
	last  string // largest partition key in the table
	size  int64  // file size in bytes
	refs  atomic.Int64
	drop  atomic.Bool // superseded by compaction: unlink on last release
}

// newTableHandle wraps a freshly opened reader, reading its bounds once
// (manifest-loaded tables take the recorded bounds instead and skip
// this).
func newTableHandle(r *sstable.Reader) (*tableHandle, error) {
	first, last, err := r.Bounds()
	if err != nil {
		return nil, err
	}
	h := &tableHandle{Reader: r, first: first, last: last, size: r.Size()}
	h.refs.Store(1) // list ownership
	return h, nil
}

func (h *tableHandle) acquire() { h.refs.Add(1) }

func (h *tableHandle) release() error {
	if h.refs.Add(-1) > 0 {
		return nil
	}
	path := h.Path()
	err := h.Close()
	if h.drop.Load() {
		os.Remove(path)
	}
	return err
}

// overlaps reports whether the table's key range intersects [lo, hi].
func (h *tableHandle) overlaps(lo, hi string) bool {
	return h.first <= hi && lo <= h.last
}

// shardView is a consistent read snapshot of one shard: the active
// memtable, the frozen queue and the pinned table list — the levels
// flattened oldest-first (deepest level first, L0 last in flush order),
// so merge tie-breaks preserve the newest-source-wins order for
// unversioned legacy cells. Views are immutable and atomically
// published (see publishLocked); readers acquire one with snapshot()
// and must close it when done so superseded tables can be retired.
type shardView struct {
	mem    *memtable.Memtable
	frozen []*frozenMem
	tables []*tableHandle // oldest → newest
	refs   atomic.Int64
}

func (v *shardView) close() {
	if v.refs.Add(-1) > 0 {
		return
	}
	for _, t := range v.tables {
		t.release()
	}
}

// shard is one lock stripe of the engine: a full miniature LSM tree
// with its own write path, WAL segments, leveled SSTable tree and
// background worker. Writes and freezes hold mu exclusively but never
// wait on SSTable I/O; the worker holds mu only to take work and to
// swap results in. Reads never touch mu at all: every mutation that
// changes the read sources (memtable swap, flush accept, compaction or
// purge table swap) republishes an immutable shardView through the
// atomic view pointer, and readers pin it with one CAS.
//
// levels[0] is the flush landing zone: tables in arrival order, ranges
// freely overlapping. levels[n] for n >= 1 hold tables with pairwise
// disjoint partition-key ranges, sorted by first key, each level
// budgeted at LevelBaseBytes * 10^(n-1) bytes. The worker promotes
// overflow downward (see pickJobLocked), merging only the overlapping
// slice of the next level — the leveled policy that bounds both write
// amplification and table count, replacing the old whole-shard
// full-merge whose rewrite cost grew quadratically with data size.
type shard struct {
	id  int
	eng *Engine

	mu   sync.RWMutex
	cond *sync.Cond // paired with &mu; broadcast on every state change

	// view is the current read snapshot; see publishLocked/snapshot.
	view atomic.Pointer[shardView]
	// partGen counts mutations to this shard's partition set: a write
	// creating a new (pk, ck) address, a purge removing partitions, a
	// compaction collapsing tombstone-only ones. The engine's merged
	// partition index records the generations it was built from and is
	// rebuilt when any shard's moved — write invalidation for free.
	partGen atomic.Uint64

	mem        *memtable.Memtable
	frozen     []*frozenMem     // oldest first
	levels     [][]*tableHandle // levels[0] = L0; deeper levels range-partitioned
	compactCur []int            // per-level round-robin pick cursor
	wal        *wal             // active segment, opened lazily on first write
	walSeq     int              // next WAL segment number
	sstSeq     int              // next SSTable sequence number
	memGen     int64            // memtable generation, seeds the skip list

	compactReq bool          // leveled maintenance wanted (see pickJobLocked)
	majorReq   bool          // Engine.Compact: merge everything into one run
	purges     []*purgeRange // pending DeleteRange purges, oldest first
	busy       bool          // worker is writing tables outside the lock
	flushErr   error         // last background failure; cleared on success/retry
	closing    bool
	abandoned  bool // simulated crash (tests): worker must not touch disk
}

// maxLevels bounds the level tree. The deepest level has no size
// budget — it is the bottom of the tree; its size is the dataset's.
const maxLevels = 7

func (s *shard) sstPath(seq int) string {
	return filepath.Join(s.eng.opts.Dir, fmt.Sprintf("sst-s%02d-%06d.db", s.id, seq))
}

func (s *shard) walPath(seq int) string {
	return filepath.Join(s.eng.opts.Dir, fmt.Sprintf("wal-s%02d-%06d.log", s.id, seq))
}

// noteSSTName pulls sstSeq past the sequence number embedded in an
// on-disk table name so new tables never collide with existing files.
func (s *shard) noteSSTName(base string) {
	var n int
	fmt.Sscanf(base, fmt.Sprintf("sst-s%02d-%%06d.db", s.id), &n)
	if n >= s.sstSeq {
		s.sstSeq = n + 1
	}
}

// allTablesLocked flattens the level tree oldest-first: deepest level
// first, then upward, L0 last in arrival order — the merge order every
// reader and compaction uses. Caller holds mu.
func (s *shard) allTablesLocked() []*tableHandle {
	var out []*tableHandle
	for n := len(s.levels) - 1; n >= 0; n-- {
		out = append(out, s.levels[n]...)
	}
	return out
}

func (s *shard) totalTablesLocked() int {
	n := 0
	for _, lvl := range s.levels {
		n += len(lvl)
	}
	return n
}

// openShard loads one shard's level manifest and SSTables and replays
// its WAL segments, oldest first, each into its own frozen memtable
// queued for background flush. The engine's version counter is pulled
// forward past every version seen (table footers record their max
// sequence; v2 WAL records carry theirs), so post-recovery writes
// always order after pre-crash ones. A directory without a manifest
// predates leveled compaction: its tables all load into L0 in filename
// order — the order the flat engine merged them in. On-disk tables the
// manifest does not list are crash leftovers (renamed but never
// committed); they are swept, their data still covered by WAL segments
// or by the compaction inputs that survived.
func (e *Engine) openShard(id int) (*shard, error) {
	s := &shard{id: id, eng: e, mem: memtable.New(shardSeed(e.opts.Seed, id, 0))}
	s.cond = sync.NewCond(&s.mu)

	releaseAll := func() {
		for _, t := range s.allTablesLocked() {
			t.release()
		}
	}

	entries, hasManifest, err := readShardManifest(s.manifestPath())
	if err != nil {
		return nil, err
	}
	known := map[string]bool{}
	if hasManifest {
		for _, ent := range entries {
			if ent.level >= maxLevels {
				return nil, fmt.Errorf("storage: manifest-s%02d places %s at level %d (max %d)", id, ent.name, ent.level, maxLevels-1)
			}
			r, err := e.openTable(filepath.Join(e.opts.Dir, ent.name))
			if err != nil {
				releaseAll()
				return nil, fmt.Errorf("storage: reopen manifest-listed %s: %w", ent.name, err)
			}
			e.advanceSeq(r.MaxSeq())
			h := &tableHandle{Reader: r, first: ent.first, last: ent.last, size: r.Size()}
			h.refs.Store(1)
			for len(s.levels) <= ent.level {
				s.levels = append(s.levels, nil)
			}
			s.levels[ent.level] = append(s.levels[ent.level], h)
			known[ent.name] = true
			s.noteSSTName(ent.name)
		}
		for n := 1; n < len(s.levels); n++ {
			lvl := s.levels[n]
			sort.Slice(lvl, func(a, b int) bool { return lvl[a].first < lvl[b].first })
		}
	}

	names, err := filepath.Glob(filepath.Join(e.opts.Dir, fmt.Sprintf("sst-s%02d-*.db", id)))
	if err != nil {
		releaseAll()
		return nil, err
	}
	sort.Strings(names)
	for _, name := range names {
		base := filepath.Base(name)
		if known[base] {
			continue
		}
		s.noteSSTName(base)
		if hasManifest {
			// Orphan: renamed into place but never committed to the
			// manifest. Its cells live on in the WAL (un-flushed) or in
			// the compaction inputs the manifest still lists.
			os.Remove(name)
			continue
		}
		// Pre-leveling directory: every table joins L0 in age order.
		r, err := e.openTable(name)
		if err != nil {
			releaseAll()
			return nil, fmt.Errorf("storage: reopen %s: %w", name, err)
		}
		e.advanceSeq(r.MaxSeq())
		h, err := newTableHandle(r)
		if err != nil {
			r.Close()
			releaseAll()
			return nil, fmt.Errorf("storage: reopen %s: %w", name, err)
		}
		if len(s.levels) == 0 {
			s.levels = append(s.levels, nil)
		}
		s.levels[0] = append(s.levels[0], h)
	}
	if !hasManifest && s.totalTablesLocked() > 0 {
		// Upgrade in place so the next open takes the manifest path.
		if err := s.writeManifestLocked(); err != nil {
			releaseAll()
			return nil, err
		}
	}

	if !e.opts.DisableWAL {
		segs, err := filepath.Glob(filepath.Join(e.opts.Dir, fmt.Sprintf("wal-s%02d-*.log", id)))
		if err != nil {
			releaseAll()
			return nil, err
		}
		sort.Strings(segs)
		for _, seg := range segs {
			s.memGen++
			rec := memtable.New(shardSeed(e.opts.Seed, id, s.memGen))
			if err := replayWAL(seg, func(r walRec) {
				switch r.op {
				case walPutV2:
					e.advanceSeq(r.ver.Seq)
					rec.Put(r.pk, r.ck, r.value, r.ver, r.tombstone)
				case walPut:
					rec.Put(r.pk, r.ck, r.value, e.stamp(), false)
				case walDelete:
					// Legacy delete, replayed as a tombstone: it masks the
					// puts it covered (and, unlike the pre-versioning
					// engine, stays effective past flush).
					rec.Put(r.pk, r.ck, nil, e.stamp(), true)
				}
			}); err != nil {
				releaseAll()
				return nil, err
			}
			var n int
			fmt.Sscanf(filepath.Base(seg), fmt.Sprintf("wal-s%02d-%%06d.log", id), &n)
			if n >= s.walSeq {
				s.walSeq = n + 1
			}
			if rec.Len() == 0 {
				// The segment held no intact records at all. Retire it now:
				// nothing else ever would, and it would be re-replayed on
				// every reopen.
				os.Remove(seg)
				continue
			}
			rec.Freeze()
			s.frozen = append(s.frozen, &frozenMem{mem: rec, walPaths: []string{seg}})
		}
		s.memGen++
		s.mem = memtable.New(shardSeed(e.opts.Seed, id, s.memGen))
	}
	// No concurrency yet — the worker starts after Open returns — but the
	// view must exist before the first read.
	s.publishLocked()
	return s, nil
}

// shardSeed derives a distinct deterministic skip-list seed per shard
// and memtable generation.
func shardSeed(base int64, id int, gen int64) int64 {
	return base + int64(id)*1_000_003 + gen
}

// publishLocked installs a fresh immutable view of the shard's read
// sources and retires the previous one. Called under mu at every point
// the sources change: memtable freeze, flush accept, compaction swap,
// purge swap, open and close. The frozen and flattened table slices are
// never mutated in place after publication, so readers traverse them
// without any synchronization beyond the pointer load.
func (s *shard) publishLocked() {
	nv := &shardView{mem: s.mem, frozen: s.frozen, tables: s.allTablesLocked()}
	nv.refs.Store(1) // the publisher's reference: the view is current
	for _, t := range nv.tables {
		t.acquire()
	}
	if old := s.view.Swap(nv); old != nil {
		old.close()
	}
}

// snapshot pins the shard's current read view: one atomic load and one
// CAS, no locks, no allocation. The CAS increments refs only when the
// observed count is positive — a view at zero is being retired by a
// concurrent publish, and bumping it back would resurrect tables whose
// release already began; retry on the freshly published pointer
// instead. The publisher's own reference makes the first attempt
// succeed in all but the publication instant.
func (s *shard) snapshot() *shardView {
	for {
		v := s.view.Load()
		if r := v.refs.Load(); r > 0 && v.refs.CompareAndSwap(r, r+1) {
			return v
		}
	}
}

// ensureWALLocked opens the active WAL segment on first use. Lazy
// creation keeps idle shards from littering the directory. Caller holds
// mu.
func (s *shard) ensureWALLocked() error {
	if s.eng.opts.DisableWAL || s.wal != nil {
		return nil
	}
	w, err := openWAL(s.walPath(s.walSeq))
	if err != nil {
		return err
	}
	s.wal = w
	s.walSeq++
	return nil
}

// putBatch is the per-shard half of Engine.PutBatch: one lock
// acquisition and one WAL write for the whole slice. Entries arrive
// already stamped with their versions.
func (s *shard) putBatch(entries []row.Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return errClosed
	}
	if err := s.checkBacklogLocked(); err != nil {
		return err
	}
	if err := s.ensureWALLocked(); err != nil {
		return err
	}
	if s.wal != nil {
		if err := s.wal.appendBatch(entries); err != nil {
			return err
		}
		if s.eng.opts.Sync == SyncAlways {
			if err := s.wal.sync(); err != nil {
				return err
			}
		}
	}
	inserted := false
	for _, ent := range entries {
		if s.mem.Put(ent.PK, ent.CK, ent.Value, ent.Ver, ent.Tombstone) {
			inserted = true
		}
	}
	if inserted {
		s.partGen.Add(1)
	}
	if s.mem.Bytes() >= s.eng.opts.FlushThreshold {
		s.freezeLocked()
	}
	return nil
}

// freezeLocked seals the active memtable and WAL segment and queues
// them for the background worker, installing a fresh memtable. It
// cannot fail: the commit point is a pointer swap, and the next WAL
// segment is opened lazily by the next write. A no-op on an empty
// memtable. Caller holds mu.
func (s *shard) freezeLocked() {
	if s.mem.Len() == 0 {
		return
	}
	fm := &frozenMem{mem: s.mem}
	if s.wal != nil {
		// SyncOnSeal's durability point: the segment is complete, flush
		// it to stable storage before handing the memtable off. A sync
		// failure cannot fail the freeze (the pointer swap must happen);
		// it surfaces through the background-error channel instead — the
		// SSTable the worker writes supersedes the segment anyway.
		if s.eng.opts.Sync != SyncNever {
			if err := s.wal.sync(); err != nil && s.flushErr == nil {
				s.flushErr = err
			}
		}
		// The sealed segment's records are already written; closing the
		// descriptor cannot unwrite them, so a close error is not a
		// freeze failure.
		_ = s.wal.close()
		fm.walPaths = []string{s.wal.path}
		s.wal = nil
	}
	s.mem.Freeze()
	s.memGen++
	s.mem = memtable.New(shardSeed(s.eng.opts.Seed, s.id, s.memGen))
	s.frozen = append(s.frozen, fm)
	s.publishLocked()
	s.cond.Broadcast()
}

// purgeRange is one pending DeleteRange: the worker rewrites the
// shard's tables without the partitions whose token falls in [lo, hi]
// and reports how many cells that dropped.
type purgeRange struct {
	lo, hi  int64
	removed int64
}

// waitDrainedLocked blocks until the shard has no queued or running
// background work, returning early with any background error. Caller
// holds mu.
func (s *shard) waitDrainedLocked() error {
	for len(s.frozen) > 0 || s.busy || s.compactReq || s.majorReq || len(s.purges) > 0 {
		if s.flushErr != nil {
			return s.flushErr
		}
		if s.closing {
			return errClosed
		}
		s.cond.Wait()
	}
	return s.flushErr
}

// --- compaction picking ------------------------------------------------------

// mergeJob is one unit of background table maintenance the worker
// executes outside the lock.
type mergeJob struct {
	inputs   []*tableHandle // merge sources, oldest first
	srcLevel int
	dst      int          // level the outputs land in
	gcOK     bool         // inputs cover every table overlapping their range
	move     *tableHandle // non-nil: reassign this table to dst without I/O
}

// levelBudget is the byte budget of level n (n >= 1):
// LevelBaseBytes * 10^(n-1). The deepest allowed level is unbudgeted.
func (s *shard) levelBudget(n int) int64 {
	b := s.eng.opts.LevelBaseBytes
	for i := 1; i < n; i++ {
		if b > math.MaxInt64/10 {
			return math.MaxInt64
		}
		b *= 10
	}
	return b
}

func levelBytes(tables []*tableHandle) int64 {
	var n int64
	for _, t := range tables {
		n += t.size
	}
	return n
}

func combinedRange(tables []*tableHandle) (lo, hi string) {
	lo, hi = tables[0].first, tables[0].last
	for _, t := range tables[1:] {
		if t.first < lo {
			lo = t.first
		}
		if t.last > hi {
			hi = t.last
		}
	}
	return lo, hi
}

// overlappingRun returns the tables of a sorted, disjoint level whose
// ranges intersect [lo, hi] — always a contiguous run.
func overlappingRun(level []*tableHandle, lo, hi string) []*tableHandle {
	i := sort.Search(len(level), func(k int) bool { return level[k].last >= lo })
	j := i
	for j < len(level) && level[j].first <= hi {
		j++
	}
	return level[i:j]
}

// gcSafeLocked reports whether the inputs cover every table that could
// hold cells in [lo, hi]: only then may the merge collect tombstones,
// because a tombstone dropped while an older copy of its key survives
// in a table outside the job would resurrect that copy. Caller holds
// mu.
func (s *shard) gcSafeLocked(inputs []*tableHandle, lo, hi string) bool {
	in := map[*tableHandle]bool{}
	for _, t := range inputs {
		in[t] = true
	}
	for _, lvl := range s.levels {
		for _, t := range lvl {
			if !in[t] && t.overlaps(lo, hi) {
				return false
			}
		}
	}
	return true
}

// needsCompactionLocked is the cheap trigger check behind compactReq:
// L0 over its table-count threshold, or any budgeted level over its
// byte budget. Caller holds mu.
func (s *shard) needsCompactionLocked() bool {
	if len(s.levels) == 0 {
		return false
	}
	if len(s.levels[0]) > s.eng.opts.CompactAfter {
		return true
	}
	for n := 1; n < len(s.levels) && n < maxLevels-1; n++ {
		if levelBytes(s.levels[n]) > s.levelBudget(n) {
			return true
		}
	}
	return false
}

// pickJobLocked chooses the next leveled-maintenance job, or nil when
// the tree is within budget. Priority order:
//
//  1. L0 overflow: merge all of L0 with the overlapping run of L1.
//     L0 tables interleave arbitrarily, so they always merge together.
//  2. Budget overflow at level n: push one table (round-robin cursor,
//     so successive picks rotate through the key space) down into the
//     overlapping run of level n+1. With no overlap the job degrades
//     to a free relink — the table changes level without being
//     rewritten, sidestepping the write amplification entirely.
//
// Caller holds mu.
func (s *shard) pickJobLocked() *mergeJob {
	if len(s.levels) == 0 {
		return nil
	}
	if l0 := s.levels[0]; len(l0) > s.eng.opts.CompactAfter {
		lo, hi := combinedRange(l0)
		var older []*tableHandle
		if len(s.levels) > 1 {
			older = overlappingRun(s.levels[1], lo, hi)
		}
		inputs := append(append([]*tableHandle(nil), older...), l0...)
		jlo, jhi := combinedRange(inputs)
		return &mergeJob{
			inputs: inputs, srcLevel: 0, dst: 1,
			gcOK: s.gcSafeLocked(inputs, jlo, jhi),
		}
	}
	for n := 1; n < len(s.levels) && n < maxLevels-1; n++ {
		if levelBytes(s.levels[n]) <= s.levelBudget(n) {
			continue
		}
		for len(s.compactCur) <= n {
			s.compactCur = append(s.compactCur, 0)
		}
		src := s.levels[n][s.compactCur[n]%len(s.levels[n])]
		s.compactCur[n]++
		var older []*tableHandle
		if n+1 < len(s.levels) {
			older = overlappingRun(s.levels[n+1], src.first, src.last)
		}
		if len(older) == 0 {
			return &mergeJob{move: src, srcLevel: n, dst: n + 1}
		}
		inputs := append(append([]*tableHandle(nil), older...), src)
		lo, hi := combinedRange(inputs)
		return &mergeJob{
			inputs: inputs, srcLevel: n, dst: n + 1,
			gcOK: s.gcSafeLocked(inputs, lo, hi),
		}
	}
	return nil
}

// installLocked swaps a merge's inputs for its outputs at level dst and
// commits the new layout to the manifest. On manifest failure the
// in-memory layout is rolled back and the error returned; the caller
// disposes of the outputs and retries. Level slices are rebuilt fresh —
// published views hold their own flattened copy, never these slices.
// Caller holds mu.
func (s *shard) installLocked(inputs []*tableHandle, outs []*tableHandle, dst int) error {
	in := map[*tableHandle]bool{}
	for _, t := range inputs {
		in[t] = true
	}
	old := s.levels
	levels := make([][]*tableHandle, len(s.levels))
	for n, lvl := range s.levels {
		kept := make([]*tableHandle, 0, len(lvl))
		for _, t := range lvl {
			if !in[t] {
				kept = append(kept, t)
			}
		}
		levels[n] = kept
	}
	for len(levels) <= dst {
		levels = append(levels, nil)
	}
	merged := append(append([]*tableHandle(nil), levels[dst]...), outs...)
	if dst >= 1 {
		sort.Slice(merged, func(a, b int) bool { return merged[a].first < merged[b].first })
	}
	levels[dst] = merged
	for len(levels) > 1 && len(levels[len(levels)-1]) == 0 {
		levels = levels[:len(levels)-1]
	}
	s.levels = levels
	if err := s.writeManifestLocked(); err != nil {
		s.levels = old
		return err
	}
	return nil
}

// --- worker ------------------------------------------------------------------

// mergeStatus is the outcome of executeMergeLocked, steering the worker
// loop.
type mergeStatus int

const (
	mergeInstalled mergeStatus = iota // outputs live, inputs retired
	mergeRedo                         // fence moved: result discarded, redo the job
	mergeFailed                       // flushErr set; caller parks for a retry
	mergeExit                         // shard abandoned or closing: worker returns
)

// worker is the shard's background goroutine: it turns frozen memtables
// into SSTables, retires their WAL segments, and maintains the level
// tree — all without blocking the write path. On failure the frozen
// memtable and its WAL segments stay intact (readers keep merging them,
// recovery can replay them) and the worker waits for the next signal to
// retry, surfacing the error through Flush/Close.
func (s *shard) worker() {
	defer s.eng.wg.Done()
	s.mu.Lock()
	for {
		for !s.closing && !s.abandoned && len(s.frozen) == 0 && !s.compactReq && !s.majorReq && len(s.purges) == 0 {
			s.cond.Wait()
		}
		if s.abandoned {
			s.mu.Unlock()
			return
		}
		switch {
		case len(s.frozen) > 0:
			if !s.flushHead() {
				return
			}

		case len(s.purges) > 0:
			// Only the worker pops the queue, so the head it processes
			// outside the lock is still the head when it returns —
			// concurrent DeleteRanges append behind it and are served on
			// later loop turns, never dropped.
			req := s.purges[0]
			if s.totalTablesLocked() == 0 {
				s.purges = s.purges[1:]
				s.cond.Broadcast()
				continue
			}
			drop := func(pk string) bool {
				tok := PartitionToken(pk)
				return req.lo <= tok && tok <= req.hi
			}
			inputs := s.allTablesLocked()
			job := &mergeJob{inputs: inputs, dst: s.deepestDstLocked(), gcOK: true}
			var dropped int64
			switch s.executeMergeLocked(job, drop, true, &dropped, nil) {
			case mergeExit:
				return
			case mergeRedo, mergeFailed:
				continue
			}
			// The purge removed partitions: invalidate the engine's merged
			// partition index. Bumped after the swap is published so an
			// index builder that loaded the old generation can never
			// enumerate the new view under it unnoticed.
			s.partGen.Add(1)
			req.removed = dropped
			s.purges = s.purges[1:]
			s.eng.Metrics.RangePurges.Add(1)
			s.cond.Broadcast()

		case s.majorReq:
			s.majorReq = false
			inputs := s.allTablesLocked()
			needsRewrite := false
			for _, t := range inputs {
				if t.Format() != 3 {
					needsRewrite = true
				}
			}
			if len(inputs) == 0 || (len(inputs) == 1 && !needsRewrite) {
				s.cond.Broadcast()
				continue
			}
			job := &mergeJob{inputs: inputs, dst: s.deepestDstLocked(), gcOK: true}
			var gced int64
			switch s.executeMergeLocked(job, nil, false, nil, &gced) {
			case mergeExit:
				return
			case mergeRedo:
				s.majorReq = true
				continue
			case mergeFailed:
				s.majorReq = true
				continue
			}
			// A compaction can collapse tombstone-only partitions out of
			// existence, shrinking the partition set.
			s.partGen.Add(1)
			s.eng.Metrics.Compactions.Add(1)
			s.eng.Metrics.TombstonesGCed.Add(gced)
			s.cond.Broadcast()

		case s.compactReq:
			s.compactReq = false
			job := s.pickJobLocked()
			if job == nil {
				s.cond.Broadcast()
				continue
			}
			if job.move != nil {
				// Free relink: the table overlaps nothing below it, so it
				// changes level without being rewritten.
				if err := s.installLocked([]*tableHandle{job.move}, []*tableHandle{job.move}, job.dst); err != nil {
					s.flushErr = err
					s.compactReq = true
					s.cond.Broadcast()
					if s.closing {
						s.mu.Unlock()
						return
					}
					s.cond.Wait()
					continue
				}
				s.publishLocked()
				if s.needsCompactionLocked() {
					s.compactReq = true
				}
				s.cond.Broadcast()
				continue
			}
			var gced int64
			switch s.executeMergeLocked(job, nil, false, nil, &gced) {
			case mergeExit:
				return
			case mergeRedo, mergeFailed:
				s.compactReq = true
				continue
			}
			s.partGen.Add(1)
			s.eng.Metrics.Compactions.Add(1)
			s.eng.Metrics.TombstonesGCed.Add(gced)
			if s.needsCompactionLocked() {
				s.compactReq = true
			}
			s.cond.Broadcast()

		case s.closing:
			s.mu.Unlock()
			return
		}
	}
}

// deepestDstLocked is the landing level for whole-shard merges (major
// compaction, purge): the deepest level currently holding data, but at
// least 1 so L0 stays the exclusive flush zone.
func (s *shard) deepestDstLocked() int {
	dst := len(s.levels) - 1
	if dst < 1 {
		dst = 1
	}
	if dst >= maxLevels {
		dst = maxLevels - 1
	}
	return dst
}

// flushHead writes the head of the frozen queue to an L0 table. Returns
// false when the worker must exit. Called (and returns) holding mu.
func (s *shard) flushHead() bool {
	fm := s.frozen[0]
	seq := s.sstSeq
	s.busy = true
	s.mu.Unlock()
	r, err := s.writeTable(fm.mem, seq)
	s.mu.Lock()
	s.busy = false
	if s.abandoned {
		if err == nil {
			r.Close()
			os.Remove(r.Path())
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		return false
	}
	var h *tableHandle
	if err == nil {
		h, err = newTableHandle(r)
		if err != nil {
			r.Close()
			os.Remove(r.Path())
		}
	}
	if err == nil {
		if len(s.levels) == 0 {
			s.levels = append(s.levels, nil)
		}
		old := s.levels[0]
		s.levels[0] = append(append([]*tableHandle(nil), old...), h)
		if merr := s.writeManifestLocked(); merr != nil {
			s.levels[0] = old
			h.drop.Store(true)
			h.release()
			err = merr
		}
	}
	if err != nil {
		s.flushErr = err
		s.cond.Broadcast()
		if s.closing {
			s.mu.Unlock()
			return false
		}
		s.cond.Wait() // retry on the next signal, not in a hot loop
		return true
	}
	s.sstSeq = seq + 1
	s.frozen = s.frozen[1:]
	s.publishLocked()
	s.flushErr = nil
	s.eng.Metrics.Flushes.Add(1)
	s.eng.Metrics.FlushedBytes.Add(fm.mem.Bytes())
	if s.needsCompactionLocked() {
		s.compactReq = true
	}
	// Stay busy through the WAL cleanup so Flush callers observe a fully
	// settled shard; readers already see the new table.
	s.busy = true
	s.cond.Broadcast()
	s.mu.Unlock()
	// The cells are live in the SSTable; their WAL segments are done.
	for _, p := range fm.walPaths {
		os.Remove(p)
	}
	s.mu.Lock()
	s.busy = false
	s.cond.Broadcast()
	return true
}

// executeMergeLocked runs one merge job outside the lock and installs
// the result: merge the inputs (dropping shadowed versions, optionally
// dropping whole partitions and collecting tombstones), swap the level
// layout, commit the manifest, and unlink the inputs. fenceAlways
// forces the migration-fence recheck even when no tombstone was
// collected (the purge path: tombstones inside dropped partitions are
// not counted in gced). Called and returns holding mu.
func (s *shard) executeMergeLocked(job *mergeJob, drop func(pk string) bool, fenceAlways bool, droppedOut, gcedOut *int64) mergeStatus {
	seq := s.sstSeq
	gcBelow := uint64(0)
	if job.gcOK {
		gcBelow = s.gcWatermarkLocked()
	}
	fences, fenceGen := s.eng.fenceSnapshot()
	s.busy = true
	s.mu.Unlock()

	outs, dropped, gced, bytesOut, err := s.mergeTables(job.inputs, seq, drop, gcBelow, fencedFn(fences))
	discardOuts := func() {
		for _, r := range outs {
			r.Close()
			os.Remove(r.Path())
		}
	}

	s.mu.Lock()
	s.busy = false
	if s.abandoned {
		if err == nil {
			discardOuts()
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		return mergeExit
	}
	if err == nil && (fenceAlways || gced > 0) && s.eng.fenceGen.Load() != fenceGen {
		// A migration fence opened while this merge ran: it may have
		// collected tombstones the fence now protects. Discard the result
		// and redo with the fresh fence set. A merge with zero collections
		// is byte-equivalent to a fence-honoring one, so outside the purge
		// path it installs and the (whole-job) redo is saved.
		discardOuts()
		return mergeRedo
	}
	var handles []*tableHandle
	if err == nil {
		for _, r := range outs {
			h, herr := newTableHandle(r)
			if herr != nil {
				err = herr
				break
			}
			handles = append(handles, h)
		}
	}
	if err == nil {
		err = s.installLocked(job.inputs, handles, job.dst)
	}
	if err != nil {
		discardOuts()
		s.flushErr = err
		s.cond.Broadcast()
		if s.closing {
			s.mu.Unlock()
			return mergeExit
		}
		s.cond.Wait()
		return mergeFailed
	}
	s.sstSeq = seq + len(outs)
	s.publishLocked()
	s.flushErr = nil
	var bytesIn int64
	for _, t := range job.inputs {
		bytesIn += t.size
	}
	s.eng.Metrics.CompactionBytesIn.Add(bytesIn)
	s.eng.Metrics.CompactionBytesOut.Add(bytesOut)
	if droppedOut != nil {
		*droppedOut = dropped
	}
	if gcedOut != nil {
		*gcedOut = gced
	}
	// Stay busy while the superseded tables are retired so Compact
	// callers observe the final on-disk state (barring in-flight readers,
	// which unlink the files as they finish).
	s.busy = true
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, t := range job.inputs {
		t.drop.Store(true)
		t.release()
	}
	s.mu.Lock()
	s.busy = false
	s.cond.Broadcast()
	return mergeInstalled
}

// writeTable streams a frozen memtable into sst-sNN-<seq>.db. The file
// is built under a .tmp name and renamed into place only when complete,
// so a crash or error never leaves a half-written table where Open
// would load it. Called without the lock.
func (s *shard) writeTable(mem *memtable.Memtable, seq int) (*sstable.Reader, error) {
	if gate := s.eng.testFlushGate; gate != nil {
		<-gate
	}
	if hook := s.eng.testFlushErr; hook != nil {
		if err := hook(s.id); err != nil {
			return nil, err
		}
	}
	if s.isAbandoned() {
		return nil, errClosed
	}
	path := s.sstPath(seq)
	tmp := path + ".tmp"
	w, err := sstable.NewWriter(tmp, sstable.WriterOptions{
		ColumnIndexSize:    s.eng.opts.ColumnIndexSize,
		ExpectedPartitions: len(mem.Partitions()),
		Compression:        s.eng.opts.Compression,
	})
	if err != nil {
		return nil, err
	}
	// Stream the memtable in order, grouping cells per partition.
	var curPK string
	var cur []row.Cell
	first := true
	flushPart := func() error {
		if first {
			return nil
		}
		return w.AddPartition(curPK, cur)
	}
	err = mem.Each(func(ent memtable.Entry) error {
		if first || ent.PK != curPK {
			if err := flushPart(); err != nil {
				return err
			}
			curPK, cur, first = ent.PK, nil, false
		}
		// Tombstones flush like any cell: they must keep masking older
		// copies in other tables until compaction collects them.
		cur = append(cur, row.Cell{CK: ent.CK, Value: ent.Value, Ver: ent.Ver, Tombstone: ent.Tombstone})
		return nil
	})
	if err == nil {
		err = flushPart()
	}
	if err != nil {
		w.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	logical, stored := w.BlockBytes()
	s.eng.Metrics.BlockBytesLogical.Add(logical)
	s.eng.Metrics.BlockBytesStored.Add(stored)
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	r, err := s.eng.openTable(path)
	if err != nil {
		// Leave no half-live state: without the reader the table must
		// not exist, so the WAL segments keep covering the data.
		os.Remove(path)
		return nil, err
	}
	return r, nil
}

// gcWatermarkLocked returns the version sequence below which this
// shard's tombstones may be garbage-collected by a compaction over all
// tables holding their keys: the lowest version any unflushed memtable
// (active or frozen) might still hold. A tombstone older than that
// bound cannot be masking anything outside the compaction inputs — the
// inputs cover every overlapping table (gcSafeLocked), and every
// memtable cell is provably newer — so dropping it (and everything it
// shadowed, which the merge already did) is safe. A tombstone at or
// above the bound is kept: an older shadowed copy may sit in a memtable
// (a rebalance stream page, a read-repair) and will only be masked if
// the tombstone is still there when it flushes. Caller holds mu.
func (s *shard) gcWatermarkLocked() uint64 {
	wm := uint64(math.MaxUint64)
	if v, ok := s.mem.MinVersion(); ok && v.Seq < wm {
		wm = v.Seq
	}
	for _, fm := range s.frozen {
		if v, ok := fm.mem.MinVersion(); ok && v.Seq < wm {
			wm = v.Seq
		}
	}
	return wm
}

// mergeSource is one input table's cursor through mergeTables.
type mergeSource struct {
	it    *sstable.PartitionIter
	pk    string
	cells []row.Cell
	done  bool
}

func (m *mergeSource) advance() error {
	pk, cells, ok := m.it.Next()
	if !ok {
		m.done = true
		return m.it.Err()
	}
	m.pk, m.cells = pk, cells
	return nil
}

// mergeTables streams the input tables (oldest first) through a k-way
// partition merge into one or more output tables, dropping shadowed
// cell versions, collecting tombstones whose version sequence is below
// gcBelow — except in partitions the fenced predicate covers, whose
// tombstones are kept because a migration or repair may still stream
// older copies in behind them — and, when drop is non-nil, whole
// partitions (the DeleteRange purge), reporting how many live cells
// that removed. Outputs rotate at TargetTableBytes on partition
// boundaries so deep levels stay range-partitioned into bounded-size
// tables. Unlike the flat engine's per-partition ReadSlice loop, each
// input is read exactly once, sequentially, through its partition
// iterator. Same .tmp-then-rename discipline as writeTable. Called
// without the lock; the inputs stay readable throughout.
func (s *shard) mergeTables(inputs []*tableHandle, startSeq int, drop func(pk string) bool, gcBelow uint64, fenced func(pk string) bool) (outs []*sstable.Reader, dropped, gced, bytesOut int64, err error) {
	fail := func(e error) ([]*sstable.Reader, int64, int64, int64, error) {
		for _, r := range outs {
			r.Close()
			os.Remove(r.Path())
		}
		return nil, 0, 0, 0, e
	}

	srcs := make([]*mergeSource, len(inputs))
	expectParts := 0
	for i, t := range inputs {
		srcs[i] = &mergeSource{it: t.Iter()}
		if err := srcs[i].advance(); err != nil {
			return fail(err)
		}
		expectParts += t.NumPartitions()
	}

	var w *sstable.Writer
	var wTmp string
	var wBytes int64
	finishOut := func() error {
		if w == nil {
			return nil
		}
		path := s.sstPath(startSeq + len(outs))
		if err := w.Close(); err != nil {
			os.Remove(wTmp)
			return err
		}
		logical, stored := w.BlockBytes()
		s.eng.Metrics.BlockBytesLogical.Add(logical)
		s.eng.Metrics.BlockBytesStored.Add(stored)
		if err := os.Rename(wTmp, path); err != nil {
			os.Remove(wTmp)
			return err
		}
		r, err := s.eng.openTable(path)
		if err != nil {
			os.Remove(path)
			return err
		}
		bytesOut += r.Size()
		outs = append(outs, r)
		w, wBytes = nil, 0
		return nil
	}

	for {
		// Next partition: the smallest pk across the unfinished sources.
		minPK, any := "", false
		for _, m := range srcs {
			if !m.done && (!any || m.pk < minPK) {
				minPK, any = m.pk, true
			}
		}
		if !any {
			break
		}
		// Merge every source holding it, oldest source first so exact
		// version ties resolve to the newer source, as reads do.
		var sources [][]row.Cell
		for _, m := range srcs {
			if !m.done && m.pk == minPK {
				sources = append(sources, m.cells)
			}
		}
		cells := row.Merge(sources...)
		for _, m := range srcs {
			if !m.done && m.pk == minPK {
				if err := m.advance(); err != nil {
					return fail(err)
				}
			}
		}
		if drop != nil && drop(minPK) {
			// Count the live (post-merge) cells the purge removes, so
			// handoff accounting matches what a reader would have seen.
			dropped += int64(len(row.DropTombstones(cells)))
			continue
		}
		// Collect tombstones under the GC watermark: the merge already
		// dropped everything they shadowed within the inputs, and the
		// watermark guarantees nothing older is still waiting to flush
		// locally. A partition under a migration fence keeps them all —
		// an in-flight stream may still deliver a sub-watermark copy
		// from another node that only the tombstone can mask.
		if gcBelow > 0 && (fenced == nil || !fenced(minPK)) {
			kept := cells[:0]
			for _, c := range cells {
				if c.Tombstone && c.Ver.Seq < gcBelow {
					gced++
					continue
				}
				kept = append(kept, c)
			}
			cells = kept
		}
		if len(cells) == 0 {
			continue // the partition was only tombstones; it is gone
		}
		if w == nil {
			wTmp = s.sstPath(startSeq+len(outs)) + ".tmp"
			w, err = sstable.NewWriter(wTmp, sstable.WriterOptions{
				ColumnIndexSize:    s.eng.opts.ColumnIndexSize,
				ExpectedPartitions: expectParts,
				Compression:        s.eng.opts.Compression,
			})
			if err != nil {
				return fail(err)
			}
		}
		if err := w.AddPartition(minPK, cells); err != nil {
			w.Close()
			os.Remove(wTmp)
			return fail(err)
		}
		for _, c := range cells {
			wBytes += int64(len(c.CK) + len(c.Value) + 16)
		}
		if wBytes >= s.eng.opts.TargetTableBytes {
			if err := finishOut(); err != nil {
				return fail(err)
			}
		}
	}
	if err := finishOut(); err != nil {
		return fail(err)
	}
	return outs, dropped, gced, bytesOut, nil
}

func (s *shard) isAbandoned() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.abandoned
}
