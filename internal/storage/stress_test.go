package storage

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestReadersRaceStructuralChurn is the race-detector stress for the
// lock-free read path: point reads, partition scans and range
// digests run against every structural mutation the shards can
// undergo — memtable freeze/flush, compaction table-list swaps, and
// DeleteRange purges — all at once. It exists to be run under -race:
// any snapshot-protocol mistake (a view resurrected after its tables
// were released, an index read racing its rebuild) surfaces here as a
// race report or a crash rather than as a once-a-week production
// corruption.
func TestReadersRaceStructuralChurn(t *testing.T) {
	e := openTest(t, Options{
		Shards:         4,
		DisableWAL:     true,
		FlushThreshold: 8 << 10, // freeze constantly
		CompactAfter:   2,       // compact constantly
	})

	const pks = 64
	pk := func(i int) string { return fmt.Sprintf("stress%03d", i%pks) }
	for i := 0; i < pks; i++ {
		if err := e.Put(pk(i), ck(0), []byte("seed")); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	fail := make(chan string, 8)
	run := func(f func(n int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; !stop.Load(); n++ {
				f(n)
			}
		}()
	}

	// Writers: puts and deletes churning cell versions and creating
	// new partitions (new cells bump the partition index generation).
	run(func(n int) {
		if err := e.Put(pk(n), ck(n%8), []byte("value")); err != nil {
			fail <- fmt.Sprintf("put: %v", err)
			stop.Store(true)
		}
	})
	run(func(n int) {
		if err := e.Delete(pk(n+3), ck(n%8)); err != nil {
			fail <- fmt.Sprintf("delete: %v", err)
			stop.Store(true)
		}
	})
	// Point readers and partition scanners on the snapshot path.
	for r := 0; r < 2; r++ {
		run(func(n int) {
			if _, _, err := e.Get(pk(n), ck(n%8)); err != nil {
				fail <- fmt.Sprintf("get: %v", err)
				stop.Store(true)
			}
		})
	}
	run(func(n int) {
		if _, err := e.ScanPartition(pk(n), nil, nil); err != nil {
			fail <- fmt.Sprintf("scan: %v", err)
			stop.Store(true)
		}
	})
	// Range readers exercising the cached partition index while writers
	// invalidate it.
	run(func(n int) {
		if _, err := e.CountRange(math.MinInt64, math.MaxInt64); err != nil {
			fail <- fmt.Sprintf("count: %v", err)
			stop.Store(true)
		}
	})
	run(func(n int) {
		if _, err := e.RangeDigest(math.MinInt64, math.MaxInt64, 4); err != nil {
			fail <- fmt.Sprintf("digest: %v", err)
			stop.Store(true)
		}
	})
	// Structural churn: explicit flushes and compactions swapping the
	// frozen queue and table lists under the readers.
	run(func(n int) {
		if err := e.Flush(); err != nil {
			fail <- fmt.Sprintf("flush: %v", err)
			stop.Store(true)
		}
		if err := e.Compact(); err != nil {
			fail <- fmt.Sprintf("compact: %v", err)
			stop.Store(true)
		}
	})
	// DeleteRange on a victim partition nobody else writes: after the
	// purge returns, a read through any snapshot taken afterwards must
	// miss — the purgeGen fence has to hold without the old read lock.
	victim := "purge-victim"
	vtok := PartitionToken(victim)
	run(func(n int) {
		if err := e.Put(victim, ck(n%4), []byte("doomed")); err != nil {
			fail <- fmt.Sprintf("victim put: %v", err)
			stop.Store(true)
			return
		}
		if _, err := e.DeleteRange(vtok, vtok); err != nil {
			fail <- fmt.Sprintf("delete range: %v", err)
			stop.Store(true)
			return
		}
		if _, ok, err := e.Get(victim, ck(n%4)); ok || err != nil {
			fail <- fmt.Sprintf("stale read of purged partition (ok=%v err=%v)", ok, err)
			stop.Store(true)
		}
	})

	timeout := time.After(800 * time.Millisecond)
	select {
	case msg := <-fail:
		stop.Store(true)
		wg.Wait()
		t.Fatal(msg)
	case <-timeout:
		stop.Store(true)
	}
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
}

// TestBlockCacheStressTinyCache runs the read paths against a block
// cache far too small for the working set, so every operation races
// insert-vs-evict and hit-vs-orphaned-table: point reads and scans
// fill it, compaction retires the tables behind its entries, and
// DeleteRange purges whole partitions out from under cached blocks.
// Run under -race; correctness is checked by verifying stable keys
// keep their exact values throughout the churn.
func TestBlockCacheStressTinyCache(t *testing.T) {
	e := openTest(t, Options{
		Shards:          4,
		DisableWAL:      true,
		FlushThreshold:  8 << 10,  // freeze constantly
		CompactAfter:    2,        // compact constantly
		BlockCacheBytes: 32 << 10, // a handful of blocks: evict constantly
	})

	// Stable keys nobody mutates: their values must survive every cache
	// eviction, table swap and purge of other partitions.
	const stable = 32
	spk := func(i int) string { return fmt.Sprintf("stable%03d", i%stable) }
	sval := func(i int) []byte { return []byte(fmt.Sprintf("stable-value-%06d", i%stable)) }
	for i := 0; i < stable; i++ {
		if err := e.Put(spk(i), ck(0), sval(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	fail := make(chan string, 8)
	run := func(f func(n int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; !stop.Load(); n++ {
				f(n)
			}
		}()
	}

	// Churn writers: enough volume to keep flush and compaction busy.
	cpk := func(i int) string { return fmt.Sprintf("churn%03d", i%64) }
	run(func(n int) {
		if err := e.Put(cpk(n), ck(n%16), bytes.Repeat([]byte("v"), 128)); err != nil {
			fail <- fmt.Sprintf("put: %v", err)
			stop.Store(true)
		}
	})
	// Point readers verifying stable values byte-for-byte.
	for r := 0; r < 2; r++ {
		run(func(n int) {
			v, ok, err := e.Get(spk(n), ck(0))
			if err != nil || !ok || !bytes.Equal(v, sval(n)) {
				fail <- fmt.Sprintf("stable get %d: ok=%v err=%v v=%q", n%stable, ok, err, v)
				stop.Store(true)
			}
		})
	}
	// Scanners pulling whole partitions through the cache fill path.
	run(func(n int) {
		if _, err := e.ScanPartition(cpk(n), nil, nil); err != nil {
			fail <- fmt.Sprintf("scan: %v", err)
			stop.Store(true)
		}
	})
	// Compactions retiring the tables behind cached blocks.
	run(func(n int) {
		if err := e.Compact(); err != nil {
			fail <- fmt.Sprintf("compact: %v", err)
			stop.Store(true)
		}
	})
	// DeleteRange purging churn partitions out from under the cache.
	run(func(n int) {
		tok := PartitionToken(cpk(n))
		if _, err := e.DeleteRange(tok, tok); err != nil {
			fail <- fmt.Sprintf("delete range: %v", err)
			stop.Store(true)
		}
	})

	timeout := time.After(800 * time.Millisecond)
	select {
	case msg := <-fail:
		stop.Store(true)
		wg.Wait()
		t.Fatal(msg)
	case <-timeout:
		stop.Store(true)
	}
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	st := e.BlockCacheStats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("cache never exercised: %+v", st)
	}
	if st.Bytes > 32<<10 {
		t.Fatalf("cache holds %d bytes, budget 32KB", st.Bytes)
	}
}

// TestGetZeroAllocFastPath pins the point-read fast path at zero heap
// allocations: when the newest version of a cell is in the active
// memtable, Get must finish without locking or allocating — the
// snapshot is a pointer load + refcount, the memtable search compares
// against the encoded key in place, and the returned value is the
// stored slice. A new allocation here is a hot-path regression even if
// every benchmark still passes on a quiet machine.
func TestGetZeroAllocFastPath(t *testing.T) {
	e := openTest(t, Options{Shards: 4, DisableWAL: true})
	if err := e.Put("alloc-pk", ck(1), []byte("v")); err != nil {
		t.Fatal(err)
	}
	ckey := ck(1)
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok, err := e.Get("alloc-pk", ckey); !ok || err != nil {
			t.Fatalf("get failed: %v %v", ok, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Get fast path allocates %.1f times per op, want 0", allocs)
	}
}
