package storage

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkEngineHotspotGet measures concurrent point reads under a
// Zipfian key distribution (s=1.07 over 4096 partitions, the hotspot
// mix's shape): the workload where the read path's per-op constant —
// lock acquisitions, allocations, key-encoding — dominates, because
// the hot partitions stay memtable-resident and cache-warm. This is
// the engine-level view of the kvload hotspot mix, without the
// cluster's transport and scheduling costs on top.
func BenchmarkEngineHotspotGet(b *testing.B) {
	const parts = 4096
	pks := make([]string, parts)
	for p := range pks {
		pks[p] = fmt.Sprintf("hot-%05d", p)
	}
	cks := make([][]byte, 4)
	for i := range cks {
		cks[i] = []byte(fmt.Sprintf("f%02d", i))
	}
	val := make([]byte, 128)

	e, err := Open(Options{
		Dir:        b.TempDir(),
		DisableWAL: true,
		Shards:     8,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	for _, pk := range pks {
		for _, ck := range cks {
			if err := e.Put(pk, ck, val); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		src := rand.New(rand.NewSource(rand.Int63()))
		zipf := rand.NewZipf(src, 1.07, 1, parts-1)
		for pb.Next() {
			pk := pks[zipf.Uint64()]
			ck := cks[src.Intn(len(cks))]
			if _, _, err := e.Get(pk, ck); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
}
