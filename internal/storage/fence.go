package storage

// This file is the migration fence: a guard that keeps compaction from
// garbage-collecting tombstones in a token range while copies of that
// range are still in flight toward this engine.
//
// The GC watermark (see shard.gcWatermarkLocked) proves that nothing
// OLDER than a tombstone is still waiting to flush locally — but an
// in-flight range migration or anti-entropy repair can deliver a
// sub-watermark stale copy from another node AFTER the tombstone was
// collected, resurrecting the deleted cell (the Cassandra gc_grace
// hazard). A fence closes that window: while any fence covers a
// partition's token, its tombstones are kept regardless of the
// watermark. The cluster layer opens a fence on every migration target
// for the ranges it is receiving (Node.BeginMigration) and on every
// repair participant for the pass's duration, and releases it when the
// transfer is done.

// fenceRange is one active fence over an inclusive token range.
type fenceRange struct{ lo, hi int64 }

// FenceRange registers an anti-GC fence over the inclusive token range
// [lo, hi] and returns its release function (idempotent). While the
// fence is active, no compaction or range purge collects tombstones of
// partitions whose token falls in the range — stale copies streamed in
// behind the fence still find the tombstone masking them. A compaction
// already running when the fence opens is discarded and redone (see the
// generation re-check in shard.worker), so the guarantee holds from the
// moment FenceRange returns.
func (e *Engine) FenceRange(lo, hi int64) (release func()) {
	e.fenceMu.Lock()
	if e.fences == nil {
		e.fences = make(map[uint64]fenceRange)
	}
	e.fenceSeq++
	id := e.fenceSeq
	e.fences[id] = fenceRange{lo: lo, hi: hi}
	// Bumped under the same lock that publishes the fence: a worker
	// snapshot observing the old generation provably ran before this
	// fence existed, and its result will be discarded at swap-in.
	e.fenceGen.Add(1)
	e.fenceMu.Unlock()
	released := false
	return func() {
		e.fenceMu.Lock()
		if !released {
			released = true
			delete(e.fences, id)
		}
		e.fenceMu.Unlock()
	}
}

// fenceSnapshot returns the active fences and the fence generation the
// snapshot was taken at. Workers take it before a merge and re-check
// the generation before installing the result: a generation moved by a
// new fence means tombstones the fence now protects may have been
// collected, so the merge is discarded and redone with the fresh set.
// (Releases do not bump the generation — a merge that honoured a since-
// released fence is merely conservative.)
func (e *Engine) fenceSnapshot() ([]fenceRange, uint64) {
	e.fenceMu.Lock()
	defer e.fenceMu.Unlock()
	if len(e.fences) == 0 {
		return nil, e.fenceGen.Load()
	}
	out := make([]fenceRange, 0, len(e.fences))
	for _, f := range e.fences {
		out = append(out, f)
	}
	return out, e.fenceGen.Load()
}

// fencedFn turns a fence snapshot into the per-partition predicate the
// compactor consults; nil when no fence is active (the common case pays
// nothing).
func fencedFn(fences []fenceRange) func(pk string) bool {
	if len(fences) == 0 {
		return nil
	}
	return func(pk string) bool {
		tok := PartitionToken(pk)
		for _, f := range fences {
			if f.lo <= tok && tok <= f.hi {
				return true
			}
		}
		return false
	}
}
