package storage

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"scalekv/internal/row"
)

// TestDigestRangesGeometry: the leaf buckets of any (lo, hi, depth)
// partition the range exactly — contiguous, in order, first at lo, last
// at hi — and every token's bucket index (the one RangeDigest uses)
// points at the bucket whose range holds it.
func TestDigestRangesGeometry(t *testing.T) {
	cases := []struct {
		lo, hi int64
		depth  int
	}{
		{math.MinInt64, math.MaxInt64, 4},
		{math.MinInt64, math.MaxInt64, 0},
		{math.MinInt64, math.MaxInt64, MaxDigestDepth},
		{-1000, 1000, 4},
		{-5, 3, 4},  // span 8: rounding covers in 3 buckets, not 16
		{0, 0, 4},   // single token
		{7, 10, 10}, // far fewer tokens than 2^depth
		{math.MaxInt64 - 3, math.MaxInt64, 3},
	}
	for _, tc := range cases {
		ranges := DigestRanges(tc.lo, tc.hi, tc.depth)
		if len(ranges) == 0 {
			t.Fatalf("(%d,%d,%d): no buckets", tc.lo, tc.hi, tc.depth)
		}
		if ranges[0][0] != tc.lo || ranges[len(ranges)-1][1] != tc.hi {
			t.Fatalf("(%d,%d,%d): buckets span [%d,%d]", tc.lo, tc.hi, tc.depth, ranges[0][0], ranges[len(ranges)-1][1])
		}
		if d := tc.depth; d >= 0 && d <= MaxDigestDepth && len(ranges) > 1<<uint(d) {
			t.Fatalf("(%d,%d,%d): %d buckets exceeds 2^depth", tc.lo, tc.hi, tc.depth, len(ranges))
		}
		for i := 1; i < len(ranges); i++ {
			if uint64(ranges[i][0]) != uint64(ranges[i-1][1])+1 {
				t.Fatalf("(%d,%d,%d): gap between bucket %d and %d", tc.lo, tc.hi, tc.depth, i-1, i)
			}
		}
		size, count := digestGeom(tc.lo, tc.hi, tc.depth)
		if count != uint64(len(ranges)) {
			t.Fatalf("(%d,%d,%d): geom count %d, %d ranges", tc.lo, tc.hi, tc.depth, count, len(ranges))
		}
		// Probe bucket indexing at every boundary token.
		for i, r := range ranges {
			for _, tok := range []int64{r[0], r[1]} {
				if got := digestBucket(tc.lo, size, count, tok); got != uint64(i) {
					t.Fatalf("(%d,%d,%d): token %d indexes bucket %d, lies in %d", tc.lo, tc.hi, tc.depth, tok, got, i)
				}
			}
		}
	}
}

// seedEntries builds a deterministic pre-stamped workload: values,
// overwrites and tombstones across many partitions.
func seedEntries(n int) []row.Entry {
	out := make([]row.Entry, 0, n)
	for i := 0; i < n; i++ {
		e := row.Entry{
			PK:    fmt.Sprintf("part-%04d", i%97),
			CK:    []byte(fmt.Sprintf("ck-%03d", i%13)),
			Value: []byte(fmt.Sprintf("v-%d", i)),
			Ver:   row.Version{Seq: uint64(i + 1), Node: uint16(i % 3)},
		}
		if i%11 == 0 {
			e.Tombstone, e.Value = true, nil
		}
		out = append(out, e)
	}
	return out
}

// TestRangeDigestContentAddressed: two engines holding the same logical
// cells digest identically even when everything physical differs —
// shard count, insertion order, flush/compaction state — and any
// logical difference (a version, a tombstone, a missing cell) flips a
// leaf.
func TestRangeDigestContentAddressed(t *testing.T) {
	entries := seedEntries(500)

	a, err := Open(Options{Dir: t.TempDir(), Shards: 8, DisableWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(Options{Dir: t.TempDir(), Shards: 2, DisableWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.PutBatch(append([]row.Entry(nil), entries...)); err != nil {
		t.Fatal(err)
	}
	shuffled := append([]row.Entry(nil), entries...)
	rand.New(rand.NewSource(42)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	if err := b.PutBatch(shuffled); err != nil {
		t.Fatal(err)
	}
	// One engine flushed and compacted, the other all in memtables.
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := a.Compact(); err != nil {
		t.Fatal(err)
	}

	digestsEqual := func(stage string, want bool) {
		t.Helper()
		da, err := a.RangeDigest(math.MinInt64, math.MaxInt64, 4)
		if err != nil {
			t.Fatal(err)
		}
		db, err := b.RangeDigest(math.MinInt64, math.MaxInt64, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(da) != len(db) {
			t.Fatalf("%s: leaf counts %d vs %d", stage, len(da), len(db))
		}
		equal := true
		var cellsA, cellsB uint64
		for i := range da {
			if da[i] != db[i] {
				equal = false
			}
			cellsA += da[i].Cells
			cellsB += db[i].Cells
		}
		if equal != want {
			t.Fatalf("%s: digests equal=%v want %v (cells %d vs %d)", stage, equal, want, cellsA, cellsB)
		}
		if want && cellsA == 0 {
			t.Fatalf("%s: digest saw no cells", stage)
		}
	}
	digestsEqual("same content", true)

	// A single overwritten version flips the digest...
	if err := b.PutBatch([]row.Entry{{
		PK: entries[0].PK, CK: entries[0].CK, Value: []byte("newer"),
		Ver: row.Version{Seq: 1 << 30, Node: 9},
	}}); err != nil {
		t.Fatal(err)
	}
	digestsEqual("after divergent overwrite", false)

	// ...and shipping the same write to the other engine re-converges.
	if err := a.PutBatch([]row.Entry{{
		PK: entries[0].PK, CK: entries[0].CK, Value: []byte("newer"),
		Ver: row.Version{Seq: 1 << 30, Node: 9},
	}}); err != nil {
		t.Fatal(err)
	}
	digestsEqual("after convergence", true)

	// A tombstone is digest-visible: deleting on one side diverges even
	// though reads would just report not-found.
	if err := a.PutBatch([]row.Entry{{
		PK: entries[1].PK, CK: entries[1].CK, Tombstone: true,
		Ver: row.Version{Seq: 1 << 31, Node: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	digestsEqual("after one-sided delete", false)
}

// TestRangeDigestSubranges: the digest of a sub-range matches between
// engines exactly when the sub-range content matches, independent of
// differences elsewhere — the property the repair descent depends on.
func TestRangeDigestSubranges(t *testing.T) {
	entries := seedEntries(300)
	a, err := Open(Options{Dir: t.TempDir(), DisableWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(Options{Dir: t.TempDir(), DisableWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.PutBatch(append([]row.Entry(nil), entries...)); err != nil {
		t.Fatal(err)
	}
	if err := b.PutBatch(append([]row.Entry(nil), entries...)); err != nil {
		t.Fatal(err)
	}

	// Diverge exactly one partition; only leaves covering its token may
	// differ, at every digest granularity.
	divergent := entries[7]
	tok := PartitionToken(divergent.PK)
	if err := b.PutBatch([]row.Entry{{
		PK: divergent.PK, CK: []byte("extra"), Value: []byte("x"),
		Ver: row.Version{Seq: 1 << 40, Node: 5},
	}}); err != nil {
		t.Fatal(err)
	}
	for _, depth := range []int{0, 1, 4, 8} {
		ranges := DigestRanges(math.MinInt64, math.MaxInt64, depth)
		da, err := a.RangeDigest(math.MinInt64, math.MaxInt64, depth)
		if err != nil {
			t.Fatal(err)
		}
		db, err := b.RangeDigest(math.MinInt64, math.MaxInt64, depth)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range ranges {
			holds := r[0] <= tok && tok <= r[1]
			if mismatch := da[i] != db[i]; mismatch != holds {
				t.Fatalf("depth %d leaf %d [%d,%d]: mismatch=%v, divergent token inside=%v",
					depth, i, r[0], r[1], mismatch, holds)
			}
		}
	}
}
