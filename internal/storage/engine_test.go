package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"scalekv/internal/row"
)

func ck(i int) []byte { return []byte(fmt.Sprintf("ck%06d", i)) }

func openTest(t *testing.T, opts Options) *Engine {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	e, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestPutGet(t *testing.T) {
	e := openTest(t, Options{})
	if err := e.Put("p1", ck(1), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := e.Get("p1", ck(1))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("got %q,%v,%v", v, ok, err)
	}
	if _, ok, _ := e.Get("p1", ck(2)); ok {
		t.Fatal("found absent cell")
	}
	if _, ok, _ := e.Get("p9", ck(1)); ok {
		t.Fatal("found absent partition")
	}
}

func TestGetAcrossFlush(t *testing.T) {
	e := openTest(t, Options{})
	e.Put("p", ck(1), []byte("before-flush"))
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if e.NumSSTables() != 1 {
		t.Fatalf("sstables %d want 1", e.NumSSTables())
	}
	v, ok, err := e.Get("p", ck(1))
	if err != nil || !ok || string(v) != "before-flush" {
		t.Fatalf("got %q,%v,%v after flush", v, ok, err)
	}
}

func TestNewestVersionWinsAcrossTables(t *testing.T) {
	e := openTest(t, Options{})
	e.Put("p", ck(1), []byte("v1"))
	e.Flush()
	e.Put("p", ck(1), []byte("v2"))
	e.Flush()
	e.Put("p", ck(1), []byte("v3")) // still in memtable

	v, ok, _ := e.Get("p", ck(1))
	if !ok || string(v) != "v3" {
		t.Fatalf("got %q want v3 (memtable newest)", v)
	}
	cells, err := e.ScanPartition("p", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || string(cells[0].Value) != "v3" {
		t.Fatalf("scan returned %d cells, first %q", len(cells), cells[0].Value)
	}
}

func TestScanMergesMemtableAndSSTables(t *testing.T) {
	e := openTest(t, Options{})
	for i := 0; i < 50; i++ {
		e.Put("p", ck(i), []byte("old"))
	}
	e.Flush()
	for i := 50; i < 100; i++ {
		e.Put("p", ck(i), []byte("new"))
	}
	cells, err := e.ScanPartition("p", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 100 {
		t.Fatalf("scan returned %d cells want 100", len(cells))
	}
	for i, c := range cells {
		if !bytes.Equal(c.CK, ck(i)) {
			t.Fatalf("cell %d has ck %q", i, c.CK)
		}
	}
}

func TestScanRange(t *testing.T) {
	e := openTest(t, Options{})
	for i := 0; i < 100; i++ {
		e.Put("p", ck(i), []byte{byte(i)})
	}
	e.Flush()
	cells, err := e.ScanPartition("p", ck(10), ck(20))
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 10 {
		t.Fatalf("range scan returned %d want 10", len(cells))
	}
}

func TestPutBatchMatchesSinglePuts(t *testing.T) {
	// N single Puts and one PutBatch must leave identical engine state.
	single := openTest(t, Options{})
	batch := openTest(t, Options{})
	var entries []row.Entry
	for p := 0; p < 5; p++ {
		pk := fmt.Sprintf("part-%d", p)
		for i := 0; i < 40; i++ {
			e := row.Entry{PK: pk, CK: ck(i), Value: []byte(fmt.Sprintf("v%d-%d", p, i))}
			entries = append(entries, e)
			if err := single.Put(e.PK, e.CK, e.Value); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := batch.PutBatch(entries); err != nil {
		t.Fatal(err)
	}
	if got, want := batch.Metrics.Puts.Load(), single.Metrics.Puts.Load(); got != want {
		t.Fatalf("batch counted %d puts want %d", got, want)
	}
	for _, e := range []*Engine{single, batch} {
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if !samePartitions(t, single, batch) {
		t.Fatal("batch and single-put engines diverged")
	}
}

func samePartitions(t *testing.T, a, b *Engine) bool {
	t.Helper()
	apks, bpks := a.Partitions(), b.Partitions()
	if len(apks) != len(bpks) {
		t.Logf("partition counts differ: %d vs %d", len(apks), len(bpks))
		return false
	}
	for i, pk := range apks {
		if bpks[i] != pk {
			return false
		}
		ac, err := a.ScanPartition(pk, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := b.ScanPartition(pk, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(ac) != len(bc) {
			t.Logf("%s: %d vs %d cells", pk, len(ac), len(bc))
			return false
		}
		for j := range ac {
			if !bytes.Equal(ac[j].CK, bc[j].CK) || !bytes.Equal(ac[j].Value, bc[j].Value) {
				return false
			}
		}
	}
	return true
}

func TestPutBatchWALRecovery(t *testing.T) {
	// A group-committed batch must replay exactly like per-put records.
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var entries []row.Entry
	for i := 0; i < 64; i++ {
		entries = append(entries, row.Entry{
			PK: fmt.Sprintf("part-%d", i%4), CK: ck(i), Value: []byte(fmt.Sprintf("v%d", i)),
		})
	}
	if err := e.PutBatch(entries); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: close the WAL files only, no flush.
	crashForTest(e)

	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	for _, ent := range entries {
		v, ok, _ := e2.Get(ent.PK, ent.CK)
		if !ok || !bytes.Equal(v, ent.Value) {
			t.Fatalf("lost entry %s/%s after recovery: %q,%v", ent.PK, ent.CK, v, ok)
		}
	}
}

func TestPutBatchTriggersFlush(t *testing.T) {
	e := openTest(t, Options{FlushThreshold: 1 << 10, DisableWAL: true})
	var entries []row.Entry
	for i := 0; i < 64; i++ {
		entries = append(entries, row.Entry{PK: "big", CK: ck(i), Value: make([]byte, 64)})
	}
	if err := e.PutBatch(entries); err != nil {
		t.Fatal(err)
	}
	if err := e.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	if e.NumSSTables() == 0 {
		t.Fatal("batch crossing the flush threshold did not flush")
	}
}

func TestPutBatchEmptyAndClosed(t *testing.T) {
	e := openTest(t, Options{DisableWAL: true})
	if err := e.PutBatch(nil); err != nil {
		t.Fatal(err)
	}
	e.Close()
	if err := e.PutBatch([]row.Entry{{PK: "p", CK: ck(0), Value: []byte("v")}}); err == nil {
		t.Fatal("closed engine accepted a batch")
	}
}

func TestPutBatchInvalidatesRowCache(t *testing.T) {
	e := openTest(t, Options{DisableWAL: true, RowCachePartitions: 4})
	e.Put("hot", ck(0), []byte("old"))
	if _, err := e.ScanPartition("hot", nil, nil); err != nil {
		t.Fatal(err) // populate the cache
	}
	if err := e.PutBatch([]row.Entry{{PK: "hot", CK: ck(0), Value: []byte("new")}}); err != nil {
		t.Fatal(err)
	}
	cells, err := e.ScanPartition("hot", nil, nil)
	if err != nil || len(cells) != 1 || string(cells[0].Value) != "new" {
		t.Fatalf("stale read after batch: %v %v", cells, err)
	}
}

func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		e.Put("recover", ck(i), []byte(fmt.Sprintf("v%d", i)))
	}
	// Simulate a crash: close the WAL files only, no flush.
	crashForTest(e)

	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	// Recovered data is readable immediately (from the frozen replay
	// memtable) and the background flusher turns it into an SSTable.
	for i := 0; i < 100; i++ {
		v, ok, _ := e2.Get("recover", ck(i))
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("lost cell %d after recovery: %q,%v", i, v, ok)
		}
	}
	if err := e2.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	if e2.NumSSTables() == 0 {
		t.Fatal("recovered memtable never reached an SSTable")
	}
	if segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log")); len(segs) != 0 {
		t.Fatalf("replayed segments not retired after flush: %v", segs)
	}
}

func TestWALTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	e, _ := Open(Options{Dir: dir})
	e.Put("p", ck(1), []byte("good"))
	crashForTest(e)

	// Append garbage to the shard's WAL segment: a torn record.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-s*.log"))
	if len(segs) != 1 {
		t.Fatalf("want exactly 1 WAL segment, got %v", segs)
	}
	f, _ := os.OpenFile(segs[0], os.O_APPEND|os.O_WRONLY, 0o644)
	f.Write([]byte{9, 9, 9})
	f.Close()

	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	v, ok, _ := e2.Get("p", ck(1))
	if !ok || string(v) != "good" {
		t.Fatal("intact record lost")
	}
}

func TestReopenLoadsSSTables(t *testing.T) {
	dir := t.TempDir()
	e, _ := Open(Options{Dir: dir})
	for i := 0; i < 10; i++ {
		e.Put("persist", ck(i), []byte("v"))
	}
	if err := e.Close(); err != nil { // Close flushes
		t.Fatal(err)
	}
	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.NumSSTables() != 1 {
		t.Fatalf("sstables %d want 1 after reopen", e2.NumSSTables())
	}
	n, err := e2.CountPartition("persist")
	if err != nil || n != 10 {
		t.Fatalf("count %d,%v want 10", n, err)
	}
}

func TestAutoFlushOnThreshold(t *testing.T) {
	e := openTest(t, Options{FlushThreshold: 1024})
	for i := 0; i < 100; i++ {
		e.Put("p", ck(i), make([]byte, 64))
	}
	// Flushing is asynchronous: settle the background workers without
	// forcing a flush, then check that the threshold alone produced one.
	if err := e.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	if e.NumSSTables() == 0 {
		t.Fatal("no automatic flush despite crossing threshold")
	}
	n, _ := e.CountPartition("p")
	if n != 100 {
		t.Fatalf("count %d want 100", n)
	}
}

func TestCompaction(t *testing.T) {
	e := openTest(t, Options{})
	for gen := 0; gen < 5; gen++ {
		for i := 0; i < 20; i++ {
			e.Put("p", ck(i), []byte(fmt.Sprintf("gen%d", gen)))
		}
		e.Flush()
	}
	if e.NumSSTables() != 5 {
		t.Fatalf("sstables %d want 5", e.NumSSTables())
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if e.NumSSTables() != 1 {
		t.Fatalf("sstables %d want 1 after compact", e.NumSSTables())
	}
	cells, _ := e.ScanPartition("p", nil, nil)
	if len(cells) != 20 {
		t.Fatalf("cells %d want 20", len(cells))
	}
	for _, c := range cells {
		if string(c.Value) != "gen4" {
			t.Fatalf("stale version survived compaction: %q", c.Value)
		}
	}
	// Old files must be gone from disk.
	names, _ := filepath.Glob(filepath.Join(e.opts.Dir, "sst-*.db"))
	if len(names) != 1 {
		t.Fatalf("%d sstable files on disk want 1", len(names))
	}
}

func TestAutoCompaction(t *testing.T) {
	e := openTest(t, Options{CompactAfter: 3})
	for gen := 0; gen < 6; gen++ {
		e.Put("p", ck(gen), []byte("v"))
		e.Flush()
	}
	if got := e.NumSSTables(); got > 3 {
		t.Fatalf("sstables %d, auto-compaction did not run", got)
	}
	if e.Metrics.Compactions.Load() == 0 {
		t.Fatal("compaction metric not incremented")
	}
}

func TestDeleteBeforeFlush(t *testing.T) {
	e := openTest(t, Options{})
	e.Put("p", ck(1), []byte("v"))
	e.Delete("p", ck(1))
	if _, ok, _ := e.Get("p", ck(1)); ok {
		t.Fatal("deleted cell still visible")
	}
	e.Flush()
	if _, ok, _ := e.Get("p", ck(1)); ok {
		t.Fatal("deleted cell resurrected by flush")
	}
}

func TestAggregateCountByType(t *testing.T) {
	e := openTest(t, Options{})
	for i := 0; i < 90; i++ {
		e.Put("cube", ck(i), []byte{byte(i % 3)}) // type in first byte
	}
	e.Flush()
	counts := map[byte]int{}
	err := e.AggregatePartition("cube", func(_, value []byte) {
		counts[value[0]]++
	})
	if err != nil {
		t.Fatal(err)
	}
	for ty := byte(0); ty < 3; ty++ {
		if counts[ty] != 30 {
			t.Fatalf("type %d count %d want 30", ty, counts[ty])
		}
	}
}

func TestPartitionsUnion(t *testing.T) {
	e := openTest(t, Options{})
	e.Put("flushed", ck(1), nil)
	e.Flush()
	e.Put("memonly", ck(1), nil)
	got := e.Partitions()
	if len(got) != 2 || got[0] != "flushed" || got[1] != "memonly" {
		t.Fatalf("partitions %v", got)
	}
}

func TestRowCache(t *testing.T) {
	e := openTest(t, Options{RowCachePartitions: 4})
	for i := 0; i < 10; i++ {
		e.Put("hot", ck(i), []byte("v"))
	}
	e.Flush()
	if _, err := e.ScanPartition("hot", nil, nil); err != nil {
		t.Fatal(err)
	}
	touchedBefore := e.Metrics.SSTablesTouched.Load()
	if _, err := e.ScanPartition("hot", nil, nil); err != nil {
		t.Fatal(err)
	}
	if e.Metrics.SSTablesTouched.Load() != touchedBefore {
		t.Fatal("second scan hit the sstable despite row cache")
	}
	if e.Metrics.CacheHits.Load() == 0 {
		t.Fatal("cache hit not recorded")
	}
	// A write to the partition must invalidate it.
	e.Put("hot", ck(99), []byte("new"))
	cells, _ := e.ScanPartition("hot", nil, nil)
	if len(cells) != 11 {
		t.Fatalf("stale cache served: %d cells want 11", len(cells))
	}
}

func TestBloomSkipsAbsentPartitions(t *testing.T) {
	// One shard so every partition's table lands in the same stripe and
	// a scan must consult (and bloom-skip) the others' tables.
	e := openTest(t, Options{Shards: 1})
	for i := 0; i < 5; i++ {
		e.Put(fmt.Sprintf("part%d", i), ck(0), []byte("v"))
		e.Flush()
	}
	e.ScanPartition("part0", nil, nil)
	if e.Metrics.BloomSkips.Load() == 0 {
		t.Fatal("bloom filter never skipped a table")
	}
}

func TestDisableWAL(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, DisableWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	e.Put("p", ck(1), []byte("v"))
	if segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log")); len(segs) != 0 {
		t.Fatalf("wal segments %v exist despite DisableWAL", segs)
	}
	e.Close()
}

func TestOpenRejectsLegacyLayout(t *testing.T) {
	// A directory written by the pre-sharding engine (wal.log or
	// sst-NNNNNN.db) must fail loudly instead of presenting an empty
	// store.
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "wal.log"), nil, 0o644)
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("legacy wal.log accepted")
	}
	dir = t.TempDir()
	os.WriteFile(filepath.Join(dir, "sst-000000.db"), nil, 0o644)
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("legacy sstable accepted")
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("want error for missing Dir")
	}
}

func TestClosedEngineRejectsWrites(t *testing.T) {
	e, _ := Open(Options{Dir: t.TempDir()})
	e.Close()
	if err := e.Put("p", ck(1), nil); err == nil {
		t.Fatal("put on closed engine succeeded")
	}
	if err := e.Close(); err != nil {
		t.Fatal("double close must be a no-op")
	}
}

func TestConcurrentReadersAndWriter(t *testing.T) {
	e := openTest(t, Options{FlushThreshold: 32 << 10})
	for i := 0; i < 500; i++ {
		e.Put("warm", ck(i), make([]byte, 32))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if _, err := e.ScanPartition("warm", nil, nil); err != nil {
						errs <- err
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 3000; i++ {
		if err := e.Put("stream", ck(i), make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	n, _ := e.CountPartition("stream")
	if n != 3000 {
		t.Fatalf("count %d want 3000", n)
	}
}

func BenchmarkPutNoWAL(b *testing.B) {
	e, _ := Open(Options{Dir: b.TempDir(), DisableWAL: true, FlushThreshold: 1 << 30})
	defer e.Close()
	val := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Put("bench", ck(i), val)
	}
}

func BenchmarkScanPartition(b *testing.B) {
	e, _ := Open(Options{Dir: b.TempDir(), DisableWAL: true})
	for i := 0; i < 1000; i++ {
		e.Put("bench", ck(i), make([]byte, 64))
	}
	e.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ScanPartition("bench", nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}
