package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"scalekv/internal/row"
)

// TestFlushFailureKeepsStateConsistent is the regression test for the
// old flushLocked hazard: an SSTable failure mid-flush must not let the
// memtable, WAL and table list diverge. In the shard design the frozen
// memtable and its WAL segments stay exactly as they were until the
// SSTable is durable, so a failure loses nothing and a retry succeeds.
func TestFlushFailureKeepsStateConsistent(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.testFlushErr = func(int) error { return fmt.Errorf("injected: disk full") }

	for i := 0; i < 50; i++ {
		if err := e.Put("p", ck(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err == nil {
		t.Fatal("flush with failing SSTable write reported success")
	}

	// Nothing may have been lost or half-swapped: the data still reads
	// back, no table was installed, and the WAL segment survives.
	if e.NumSSTables() != 0 {
		t.Fatalf("failed flush installed %d tables", e.NumSSTables())
	}
	for i := 0; i < 50; i++ {
		v, ok, err := e.Get("p", ck(i))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("cell %d unreadable after failed flush: %q,%v,%v", i, v, ok, err)
		}
	}
	if segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log")); len(segs) == 0 {
		t.Fatal("failed flush deleted the WAL segment")
	}
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 0 {
		t.Fatalf("failed flush left temp files: %v", tmps)
	}

	// Clearing the fault and retrying must drain cleanly.
	e.testFlushErr = nil
	if err := e.Flush(); err != nil {
		t.Fatalf("retry after clearing fault: %v", err)
	}
	if e.NumSSTables() != 1 {
		t.Fatalf("tables %d want 1 after retry", e.NumSSTables())
	}
	for i := 0; i < 50; i++ {
		v, ok, _ := e.Get("p", ck(i))
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("cell %d lost across failed-then-retried flush", i)
		}
	}
}

// TestFailingFlusherPushesBackOnWriters: with the flusher persistently
// failing, the frozen queue must not grow without bound — past the
// backlog cap, writes report the background error instead of eating
// memory until OOM (with DisableWAL there is no other signal at all).
func TestFailingFlusherPushesBackOnWriters(t *testing.T) {
	e := openTest(t, Options{
		Dir: t.TempDir(), Shards: 1, DisableWAL: true, FlushThreshold: 1 << 10,
	})
	e.testFlushErr = func(int) error { return fmt.Errorf("injected: disk full") }
	var firstErr error
	for i := 0; i < 20000 && firstErr == nil; i++ {
		firstErr = e.Put("p", ck(i), make([]byte, 64))
		runtime.Gosched() // let the worker observe the fault between puts
	}
	if firstErr == nil {
		t.Fatalf("no backpressure after %d frozen memtables piled up", frozenCount(e))
	}
	// Once the error is surfaced the queue must stop growing: rejected
	// writes never freeze anything.
	atErr := frozenCount(e)
	for i := 0; i < 200; i++ {
		if err := e.Put("p", ck(30000+i), make([]byte, 64)); err == nil {
			t.Fatal("write accepted while the flusher is failing and the queue is full")
		}
	}
	if got := frozenCount(e); got > atErr {
		t.Fatalf("frozen queue kept growing under backpressure: %d -> %d", atErr, got)
	}
	// Recovery: clear the fault, and writes resume once the queue drains.
	e.testFlushErr = nil
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Put("p", ck(9999), []byte("v")); err != nil {
		t.Fatalf("write still failing after flusher recovered: %v", err)
	}
}

// TestCloseSurfacesFlushFailure: a background failure that nobody
// observed through Flush must still be reported by Close.
func TestCloseSurfacesFlushFailure(t *testing.T) {
	e, err := Open(Options{Dir: t.TempDir(), Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.testFlushErr = func(int) error { return fmt.Errorf("injected: device gone") }
	e.Put("p", ck(0), []byte("v"))
	if err := e.Close(); err == nil {
		t.Fatal("Close swallowed the background flush failure")
	}
}

// TestPutDoesNotWaitForFlush pins the headline property of the shard
// design: a Put issued while an SSTable write is in progress completes
// without waiting for the disk. The flusher is parked on a gate, so if
// the write path ever waited on it the test would time out.
func TestPutDoesNotWaitForFlush(t *testing.T) {
	gate := make(chan struct{})
	released := false
	release := func() {
		if !released {
			released = true
			close(gate)
		}
	}
	defer release()
	e, err := Open(Options{Dir: t.TempDir(), Shards: 1, FlushThreshold: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.testFlushGate = gate

	// Cross the threshold: the memtable freezes and the flusher blocks
	// on the gate before touching disk.
	for i := 0; i < 32; i++ {
		if err := e.Put("p", ck(i), make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if frozenCount(e) == 0 {
		t.Fatal("threshold crossing did not freeze the memtable")
	}
	if e.NumSSTables() != 0 {
		t.Fatal("gated flusher wrote a table")
	}

	done := make(chan error, 1)
	go func() { done <- e.Put("p", []byte("during-flush"), []byte("landed")) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Put blocked on the in-progress SSTable write")
	}

	// Reads merge active + frozen while the flush is still in flight.
	v, ok, err := e.Get("p", []byte("during-flush"))
	if err != nil || !ok || string(v) != "landed" {
		t.Fatalf("new cell unreadable during flush: %q,%v,%v", v, ok, err)
	}
	if v, ok, _ := e.Get("p", ck(3)); !ok || len(v) != 64 {
		t.Fatal("frozen cell unreadable during flush")
	}

	// Release the gate; everything must land in SSTables.
	release()
	if err := e.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	if e.NumSSTables() == 0 {
		t.Fatal("flush never completed after gate release")
	}
}

// TestCrashMidFlushRecoversPerShardWAL kills the engine after the
// memtables were handed to the flushers but before any SSTable became
// durable. Reopening must replay every shard's WAL segments with zero
// lost cells — both the frozen generation and the writes that landed
// after the freeze.
func TestCrashMidFlushRecoversPerShardWAL(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate) // lets the abandoned workers exit
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, Shards: 4, FlushThreshold: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	e.testFlushGate = gate

	type kv struct {
		pk string
		ck []byte
		v  []byte
	}
	var want []kv
	put := func(pk string, i int, tag string) {
		c := ck(i)
		v := append(bytes.Repeat([]byte{'x'}, 60), []byte(tag)...)
		if err := e.Put(pk, c, v); err != nil {
			t.Fatal(err)
		}
		want = append(want, kv{pk, c, v})
	}
	// Enough volume per partition that every involved shard freezes.
	for p := 0; p < 8; p++ {
		for i := 0; i < 32; i++ {
			put(fmt.Sprintf("part-%d", p), i, "pre")
		}
	}
	if frozenCount(e) == 0 {
		t.Fatal("no shard froze; the crash window never opened")
	}
	// Writes after the handoff go to fresh memtables + fresh segments.
	for p := 0; p < 8; p++ {
		put(fmt.Sprintf("part-%d", p), 1000+p, "post")
	}
	if e.NumSSTables() != 0 {
		t.Fatal("gated flusher wrote a table before the crash")
	}

	crashForTest(e)

	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	for _, w := range want {
		v, ok, err := e2.Get(w.pk, w.ck)
		if err != nil || !ok || !bytes.Equal(v, w.v) {
			t.Fatalf("lost %s/%s after mid-flush crash: %q,%v,%v", w.pk, w.ck, v, ok, err)
		}
	}
}

// TestDeleteMasksFrozenCellAndSurvivesCrash: a Delete aimed at a cell
// that is already frozen writes a tombstone that masks it — live, and
// again after crash recovery replays the WAL (the tombstone's version
// orders after the frozen cell's, so the merge picks it regardless of
// which generation each record replays into).
func TestDeleteMasksFrozenCellAndSurvivesCrash(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, Shards: 1, FlushThreshold: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	e.testFlushGate = gate

	for i := 0; i < 32; i++ {
		if err := e.Put("p", ck(i), make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if frozenCount(e) == 0 {
		t.Fatal("threshold crossing did not freeze the memtable")
	}
	// The cell is frozen; the tombstone lands in the fresh active
	// memtable and must mask it anyway.
	if err := e.Delete("p", ck(3)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := e.Get("p", ck(3)); ok {
		t.Fatal("delete did not mask a frozen cell")
	}
	if _, ok, _ := e.Get("p", ck(4)); !ok {
		t.Fatal("neighbouring cell went missing")
	}

	crashForTest(e)
	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if _, ok, _ := e2.Get("p", ck(3)); ok {
		t.Fatal("recovery resurrected a deleted cell")
	}
	if _, ok, _ := e2.Get("p", ck(4)); !ok {
		t.Fatal("recovery lost an undeleted cell")
	}
}

// TestDeleteMasksAllOlderVersionsAcrossCrash: v1 of a cell is frozen,
// v2 is put and then deleted in the active memtable. The tombstone
// masks both versions — deleted means deleted, not "the previous
// version resurfaces" — and recovery reproduces that, because versions
// replay with the records and the merge is order-independent.
func TestDeleteMasksAllOlderVersionsAcrossCrash(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, Shards: 1, FlushThreshold: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	e.testFlushGate = gate

	if err := e.Put("p", []byte("cell"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	for i := 0; frozenCount(e) == 0 && i < 64; i++ { // fill until the freeze
		if err := e.Put("p", ck(i), make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if frozenCount(e) == 0 {
		t.Fatal("never froze")
	}
	e.Put("p", []byte("cell"), []byte("v2"))
	if err := e.Delete("p", []byte("cell")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := e.Get("p", []byte("cell")); ok {
		t.Fatalf("live engine resurrected %q after delete", v)
	}

	crashForTest(e)
	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if v, ok, _ := e2.Get("p", []byte("cell")); ok {
		t.Fatalf("recovery resurrected %q after delete", v)
	}
}

// TestDeadWALSegmentsRetiredOnReopen: segments whose replay nets to
// nothing (puts cancelled by deletes) must be removed at Open — an
// idle shard never freezes, so nothing else would ever retire them.
func TestDeadWALSegmentsRetiredOnReopen(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Put("p", ck(1), []byte("v"))
	e.Delete("p", ck(1))
	crashForTest(e)

	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	if segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log")); len(segs) != 0 {
		t.Fatalf("dead segments survived reopen: %v", segs)
	}
}

// TestConcurrentStressWithBackgroundMaintenance hammers one engine with
// concurrent Put/PutBatch/Get/Scan/Delete while tiny thresholds keep
// flushes and compactions firing, then verifies no written cell was
// lost. Run under -race this is the engine's data-race certificate.
func TestConcurrentStressWithBackgroundMaintenance(t *testing.T) {
	e := openTest(t, Options{
		Dir:            t.TempDir(),
		FlushThreshold: 4 << 10,
		CompactAfter:   2,
	})

	const (
		writers       = 4
		putsPerWriter = 1200
	)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	report := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	// Writers: single puts, each writer owning a partition.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pk := fmt.Sprintf("writer-%d", w)
			for i := 0; i < putsPerWriter; i++ {
				if err := e.Put(pk, ck(i), []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					report(err)
					return
				}
			}
		}(w)
	}
	// One batch writer spraying group commits across partitions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < 60; b++ {
			entries := makeBatch(b)
			if err := e.PutBatch(entries); err != nil {
				report(err)
				return
			}
		}
	}()
	// A deleter churning its own scratch partition.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 800; i++ {
			if err := e.Put("scratch", ck(i), []byte("tmp")); err != nil {
				report(err)
				return
			}
			if err := e.Delete("scratch", ck(i)); err != nil {
				report(err)
				return
			}
		}
	}()
	// Readers and scanners racing the writers and the maintenance.
	stop := make(chan struct{})
	var readWG sync.WaitGroup
	for r := 0; r < 2; r++ {
		readWG.Add(1)
		go func(r int) {
			defer readWG.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				pk := fmt.Sprintf("writer-%d", rng.Intn(writers))
				if _, _, err := e.Get(pk, ck(rng.Intn(putsPerWriter))); err != nil {
					report(err)
					return
				}
				if _, err := e.ScanPartition(pk, nil, nil); err != nil {
					report(err)
					return
				}
			}
		}(r)
	}

	// Wait for the mutators, then release the readers.
	mutatorsDone := make(chan struct{})
	go func() { wg.Wait(); close(mutatorsDone) }()
	select {
	case <-mutatorsDone:
	case err := <-errs:
		t.Fatal(err)
	case <-time.After(120 * time.Second):
		t.Fatal("stress test wedged")
	}
	close(stop)
	readWG.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		pk := fmt.Sprintf("writer-%d", w)
		n, err := e.CountPartition(pk)
		if err != nil {
			t.Fatal(err)
		}
		if n != putsPerWriter {
			t.Fatalf("%s holds %d cells want %d", pk, n, putsPerWriter)
		}
	}
	for b := 0; b < 60; b++ {
		for _, ent := range makeBatch(b) {
			v, ok, err := e.Get(ent.PK, ent.CK)
			if err != nil || !ok || !bytes.Equal(v, ent.Value) {
				t.Fatalf("batch cell %s/%s lost: %q,%v,%v", ent.PK, ent.CK, v, ok, err)
			}
		}
	}
	if e.Metrics.Flushes.Load() == 0 {
		t.Fatal("stress ran without a single background flush")
	}
	if e.Metrics.Compactions.Load() == 0 {
		t.Fatal("stress ran without a single background compaction")
	}
}

// TestConcurrentStressRaces is the mutator-vs-mutator slice of the
// stress: every operation type against the same hot partition, so shard
// freezes interleave with batch commits and deletes on one stripe.
func TestConcurrentStressRaces(t *testing.T) {
	e := openTest(t, Options{
		Dir:            t.TempDir(),
		DisableWAL:     true,
		FlushThreshold: 2 << 10,
		CompactAfter:   2,
		Shards:         2,
	})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				var err error
				switch g % 3 {
				case 0:
					err = e.Put("hot", ck(g*1000+i), make([]byte, 48))
				case 1:
					err = e.PutBatch(makeBatch(g*1000 + i))
				case 2:
					_, _, err = e.Get("hot", ck(i))
					if err == nil {
						_, err = e.ScanPartition("hot", ck(0), ck(100))
					}
				}
				if err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// makeBatch derives a deterministic group-commit batch from its index,
// so stress tests can re-derive what they wrote and verify nothing was
// lost.
func makeBatch(b int) []row.Entry {
	entries := make([]row.Entry, 0, 24)
	for i := 0; i < 24; i++ {
		entries = append(entries, row.Entry{
			PK:    fmt.Sprintf("batch-%d", (b*7+i)%5),
			CK:    []byte(fmt.Sprintf("b%04d-%02d", b, i)),
			Value: []byte(fmt.Sprintf("bv%d-%d", b, i)),
		})
	}
	return entries
}
