package storage

import (
	"fmt"
	"testing"
)

// BenchmarkDeleteChurn hammers a fixed key population with
// update/delete churn and periodic flushes, the workload that made the
// old full-merge compactor rewrite the whole store per cycle. It
// reports the two numbers the leveled policy exists to bound:
//
//	write-amp       CompactionBytesOut / FlushedBytes — how many times
//	                compaction re-copies each flushed byte
//	max-tables      peak SSTable count observed — read-amp ceiling
func BenchmarkDeleteChurn(b *testing.B) {
	const (
		partitions = 64
		cksPerPart = 32
		valSize    = 256
	)
	dir := b.TempDir()
	e, err := Open(Options{Dir: dir, Shards: 1, CompactAfter: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()

	val := make([]byte, valSize)
	for i := range val {
		val[i] = byte(i)
	}
	key := func(i int) (string, []byte) {
		return fmt.Sprintf("p%03d", i%partitions), ck(i / partitions % cksPerPart)
	}

	maxTables := 0
	b.SetBytes(valSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pk, c := key(i)
		if i%5 == 4 { // 20% deletes, 80% overwrites
			if err := e.Delete(pk, c); err != nil {
				b.Fatal(err)
			}
		} else if err := e.Put(pk, c, val); err != nil {
			b.Fatal(err)
		}
		if i%4096 == 4095 {
			if err := e.Flush(); err != nil {
				b.Fatal(err)
			}
			if n := e.NumSSTables(); n > maxTables {
				maxTables = n
			}
		}
	}
	if err := e.WaitIdle(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if n := e.NumSSTables(); n > maxTables {
		maxTables = n
	}
	if flushed := e.Metrics.FlushedBytes.Load(); flushed > 0 {
		amp := float64(e.Metrics.CompactionBytesOut.Load()) / float64(flushed)
		b.ReportMetric(amp, "write-amp")
	}
	b.ReportMetric(float64(maxTables), "max-tables")
}
