package storage

import (
	"container/list"
	"sync"

	"scalekv/internal/row"
)

// rowCache is an LRU cache of fully-materialized partitions, playing the
// role of Cassandra's row cache: it makes repeated reads of a hot
// partition cheap, which is exactly the cache-affinity effect the paper
// discusses when arguing against spreading reads across replicas.
type rowCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List
	items    map[string]*list.Element

	hits, misses int64
}

type cacheEntry struct {
	pk    string
	cells []row.Cell
}

func newRowCache(capacity int) *rowCache {
	return &rowCache{capacity: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *rowCache) get(pk string) ([]row.Cell, bool) {
	if c == nil || c.capacity <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[pk]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).cells, true
}

func (c *rowCache) put(pk string, cells []row.Cell) {
	if c == nil || c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[pk]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).cells = cells
		return
	}
	el := c.ll.PushFront(&cacheEntry{pk: pk, cells: cells})
	c.items[pk] = el
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).pk)
	}
}

// invalidate drops a partition after a write to it.
func (c *rowCache) invalidate(pk string) {
	if c == nil || c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[pk]; ok {
		c.ll.Remove(el)
		delete(c.items, pk)
	}
}

// invalidateTokenRange drops every cached partition whose token falls
// in the inclusive [lo, hi] — DeleteRange's cache coherence.
func (c *rowCache) invalidateTokenRange(lo, hi int64) {
	if c == nil || c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for pk, el := range c.items {
		if tok := PartitionToken(pk); lo <= tok && tok <= hi {
			c.ll.Remove(el)
			delete(c.items, pk)
		}
	}
}

func (c *rowCache) stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
