package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// refStore is the specification the engine is checked against: a plain
// nested map with last-write-wins semantics.
type refStore map[string]map[string][]byte

func (r refStore) put(pk string, ck, v []byte) {
	if r[pk] == nil {
		r[pk] = map[string][]byte{}
	}
	r[pk][string(ck)] = append([]byte(nil), v...)
}

func (r refStore) delete(pk string, ck []byte) {
	delete(r[pk], string(ck))
}

func (r refStore) scan(pk string) [][2][]byte {
	var cks []string
	for ck := range r[pk] {
		cks = append(cks, ck)
	}
	sort.Strings(cks)
	out := make([][2][]byte, 0, len(cks))
	for _, ck := range cks {
		out = append(out, [2][]byte{[]byte(ck), r[pk][ck]})
	}
	return out
}

// TestEngineAgainstModel drives the engine with a random operation
// sequence — puts, deletes (pre-flush), gets, scans, flushes,
// compactions, even a close/reopen — and checks every read against the
// reference model.
func TestEngineAgainstModel(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, FlushThreshold: 8 << 10, CompactAfter: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { e.Close() }()

	ref := refStore{}
	rng := rand.New(rand.NewSource(2024))
	pk := func() string { return fmt.Sprintf("p%02d", rng.Intn(8)) }
	ck := func() []byte { return []byte(fmt.Sprintf("c%03d", rng.Intn(50))) }

	// Deletes are first-class tombstone writes: they mask the cell
	// wherever its older versions live (active, frozen, SSTable), so
	// the model applies them unconditionally.
	const ops = 6000
	for i := 0; i < ops; i++ {
		switch op := rng.Intn(100); {
		case op < 45: // put
			p, c, v := pk(), ck(), []byte(fmt.Sprintf("v%d", i))
			if err := e.Put(p, c, v); err != nil {
				t.Fatalf("op %d: put: %v", i, err)
			}
			ref.put(p, c, v)
		case op < 50: // delete
			p, c := pk(), ck()
			if err := e.Delete(p, c); err != nil {
				t.Fatalf("op %d: delete: %v", i, err)
			}
			ref.delete(p, c)
		case op < 75: // get
			p, c := pk(), ck()
			got, found, err := e.Get(p, c)
			if err != nil {
				t.Fatalf("op %d: get: %v", i, err)
			}
			want, wantFound := ref[p][string(c)]
			if found != wantFound {
				t.Fatalf("op %d: get(%s,%s) found=%v want %v", i, p, c, found, wantFound)
			}
			if found && !bytes.Equal(got, want) {
				t.Fatalf("op %d: get(%s,%s) = %q want %q", i, p, c, got, want)
			}
		case op < 95: // scan
			p := pk()
			got, err := e.ScanPartition(p, nil, nil)
			if err != nil {
				t.Fatalf("op %d: scan: %v", i, err)
			}
			want := ref.scan(p)
			if len(got) != len(want) {
				t.Fatalf("op %d: scan(%s) %d cells want %d", i, p, len(got), len(want))
			}
			for j := range want {
				if !bytes.Equal(got[j].CK, want[j][0]) || !bytes.Equal(got[j].Value, want[j][1]) {
					t.Fatalf("op %d: scan(%s) cell %d mismatch", i, p, j)
				}
			}
		case op < 97: // flush
			if err := e.Flush(); err != nil {
				t.Fatalf("op %d: flush: %v", i, err)
			}
		case op < 99: // compact
			if err := e.Compact(); err != nil {
				t.Fatalf("op %d: compact: %v", i, err)
			}
		default: // close and reopen (durability)
			if err := e.Close(); err != nil {
				t.Fatalf("op %d: close: %v", i, err)
			}
			if e, err = Open(Options{Dir: dir, FlushThreshold: 8 << 10, CompactAfter: 4, Seed: 1}); err != nil {
				t.Fatalf("op %d: reopen: %v", i, err)
			}
		}
	}

	// Final full comparison.
	for p := range ref {
		want := ref.scan(p)
		got, err := e.ScanPartition(p, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("final scan(%s): %d cells want %d", p, len(got), len(want))
		}
	}
}

// TestEngineRandomRangeScans cross-checks bounded scans against the
// reference on a fixed dataset spanning memtable and SSTables.
func TestEngineRandomRangeScans(t *testing.T) {
	e, err := Open(Options{Dir: t.TempDir(), DisableWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ref := refStore{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		p := fmt.Sprintf("p%d", i%3)
		c := []byte(fmt.Sprintf("c%04d", rng.Intn(1000)))
		v := []byte{byte(i)}
		e.Put(p, c, v)
		ref.put(p, c, v)
		if i == 250 {
			e.Flush()
		}
	}
	for trial := 0; trial < 300; trial++ {
		p := fmt.Sprintf("p%d", rng.Intn(3))
		a := []byte(fmt.Sprintf("c%04d", rng.Intn(1000)))
		b := []byte(fmt.Sprintf("c%04d", rng.Intn(1000)))
		if bytes.Compare(a, b) > 0 {
			a, b = b, a
		}
		got, err := e.ScanPartition(p, a, b)
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		for _, cell := range ref.scan(p) {
			if bytes.Compare(cell[0], a) >= 0 && bytes.Compare(cell[0], b) < 0 {
				if !bytes.Equal(got[count].CK, cell[0]) {
					t.Fatalf("trial %d: cell %d is %q want %q", trial, count, got[count].CK, cell[0])
				}
				count++
			}
		}
		if count != len(got) {
			t.Fatalf("trial %d: scan returned %d cells want %d", trial, len(got), count)
		}
	}
}
