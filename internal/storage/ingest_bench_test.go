package storage

import (
	"fmt"
	"testing"
)

// BenchmarkGrowingIngest writes unique keys with periodic flushes — the
// growing-store workload where full-merge compaction is quadratic.
func BenchmarkGrowingIngest(b *testing.B) {
	dir := b.TempDir()
	e, err := Open(Options{Dir: dir, Shards: 1, CompactAfter: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	val := make([]byte, 256)
	b.SetBytes(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pk := fmt.Sprintf("p%05d", i/64)
		if err := e.Put(pk, ck(i%64), val); err != nil {
			b.Fatal(err)
		}
		if i%8192 == 8191 {
			if err := e.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := e.WaitIdle(); err != nil {
		b.Fatal(err)
	}
}
