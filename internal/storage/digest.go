package storage

// This file is the engine half of the anti-entropy subsystem: a
// Merkle-style digest over a token range. Two replicas that hold the
// same logical cells — same (pk, ck, version, flags) tuples, wherever
// they physically sit (active memtable, frozen queue or any SSTable
// layout) — produce identical digests, so a repair pass can find the
// exact buckets where replicas diverge without shipping any data, and
// descend bucket by bucket until the difference is small enough to
// stream.
//
// The digest deliberately hashes versions, not values: a version names
// exactly one write, so two replicas agreeing on every version agree on
// every value, and hashing stays cheap on large cells. Tombstones are
// included — a replica that still holds a delete and one that never saw
// it MUST digest differently, or anti-entropy could never propagate the
// delete.

// DigestLeaf is one bucket of a range digest: an FNV-1a hash over the
// (pk, ck, version, flags) tuples of every partition whose token falls
// in the bucket, tombstones included, plus the tuple count. Partitions
// are folded in (token, pk) order and cells in clustering order, so the
// hash is deterministic for a given logical content.
type DigestLeaf struct {
	Hash  uint64
	Cells uint64
}

// MaxDigestDepth caps the per-request leaf fan-out at 2^10 buckets; a
// repair descends into mismatched buckets with follow-up requests
// instead of asking for one huge tree.
const MaxDigestDepth = 10

// digestGeom computes the bucket layout of a digest over [lo, hi] at
// the given depth: the bucket width and the bucket count. All token
// arithmetic is uint64 (two's complement offsets from lo), so the full
// int64 range — span 2^64-1 — needs no special casing. The count can be
// below 2^depth when rounding lets fewer buckets cover the span (or the
// span has fewer tokens than buckets); both sides of a digest exchange
// compute the same layout from (lo, hi, depth) alone.
func digestGeom(lo, hi int64, depth int) (size, count uint64) {
	if depth < 0 {
		depth = 0
	}
	if depth > MaxDigestDepth {
		depth = MaxDigestDepth
	}
	span := uint64(hi) - uint64(lo) // token count minus one
	nb := uint64(1) << uint(depth)
	if span < nb-1 {
		nb = span + 1 // more buckets than tokens: one token each
	}
	if nb == 1 {
		// Single bucket; the width span+1 would overflow uint64 on the
		// full token range, so it is pinned and indexing clamps instead.
		return ^uint64(0), 1
	}
	size = span/nb + 1
	return size, span/size + 1
}

// digestBucket maps a token of [lo, ...] onto its bucket index for the
// (size, count) layout of digestGeom.
func digestBucket(lo int64, size, count uint64, tok int64) uint64 {
	b := (uint64(tok) - uint64(lo)) / size
	if b >= count {
		b = count - 1
	}
	return b
}

// DigestRanges returns the inclusive token sub-ranges of the digest
// buckets over [lo, hi] at the given depth — DigestRanges(...)[i] is
// the range leaf i of Engine.RangeDigest(lo, hi, depth) covers. The
// repair pass uses it to turn a mismatched leaf index back into the
// range to descend into or stream.
func DigestRanges(lo, hi int64, depth int) [][2]int64 {
	size, count := digestGeom(lo, hi, depth)
	out := make([][2]int64, count)
	for b := uint64(0); b < count; b++ {
		blo := int64(uint64(lo) + b*size)
		bhi := hi
		if b < count-1 {
			bhi = int64(uint64(lo) + (b+1)*size - 1)
		}
		out[b] = [2]int64{blo, bhi}
	}
	return out
}

// FNV-1a 64-bit, folded incrementally so the digest never materializes
// a byte stream.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

func fnvUvarint(h, v uint64) uint64 {
	for v >= 0x80 {
		h = fnvByte(h, byte(v)|0x80)
		v >>= 7
	}
	return fnvByte(h, byte(v))
}

// fnvBytes folds a length-prefixed byte field, so adjacent fields can
// never alias each other's bytes.
func fnvBytes(h uint64, b []byte) uint64 {
	h = fnvUvarint(h, uint64(len(b)))
	for _, c := range b {
		h = fnvByte(h, c)
	}
	return h
}

// RangeDigest computes the digest leaves of the inclusive token range
// [lo, hi] at the given depth (clamped to MaxDigestDepth): leaf i
// covers DigestRanges(lo, hi, depth)[i] and hashes the merged cells —
// tombstones included, exactly what a range stream would ship — of
// every partition bucketed there. Replicas holding the same logical
// content produce identical leaves regardless of shard count, flush
// state or SSTable layout; any differing cell version flips its leaf.
func (e *Engine) RangeDigest(lo, hi int64, depth int) ([]DigestLeaf, error) {
	size, count := digestGeom(lo, hi, depth)
	leaves := make([]DigestLeaf, count)
	for i := range leaves {
		leaves[i].Hash = fnvOffset64
	}
	for _, p := range e.partitionsInRange(lo, hi) {
		cells, err := e.scanPartitionRaw(p.pk, nil, nil)
		if err != nil {
			return nil, err
		}
		if len(cells) == 0 {
			continue
		}
		leaf := &leaves[digestBucket(lo, size, count, p.token)]
		h := fnvBytes(leaf.Hash, []byte(p.pk))
		for _, c := range cells {
			h = fnvBytes(h, c.CK)
			h = fnvUvarint(h, c.Ver.Seq)
			h = fnvUvarint(h, uint64(c.Ver.Node))
			flags := byte(0)
			if c.Tombstone {
				flags = 1
			}
			h = fnvByte(h, flags)
		}
		leaf.Hash = h
		leaf.Cells += uint64(len(cells))
	}
	return leaves, nil
}
