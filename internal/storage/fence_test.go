package storage

import (
	"testing"

	"scalekv/internal/row"
)

// openFenceEngine opens a small engine for the fence tests.
func openFenceEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := Open(Options{Dir: t.TempDir(), Shards: 1, DisableWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// TestTombstoneGCResurrectionWithoutFence demonstrates the gc_grace
// hazard the migration fence exists for: once every memtable is flushed
// the GC watermark no longer protects a tombstone, compaction collects
// it, and a sub-watermark stale copy arriving afterwards (a late
// migration stream page) resurrects the deleted cell.
func TestTombstoneGCResurrectionWithoutFence(t *testing.T) {
	e := openFenceEngine(t)
	if err := e.Put("k", []byte("ck"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Flush between the put and the delete so the delete lands in a
	// second table and Compact has a real merge to run.
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete("k", []byte("ck")); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if n := e.Metrics.TombstonesGCed.Load(); n == 0 {
		t.Fatal("compaction kept the tombstone; the hazard precondition is gone")
	}
	// The late stale copy: pre-stamped below the collected tombstone's
	// version, exactly what ScanRange would have paged out of a source
	// snapshot taken before the delete.
	if err := e.PutBatch([]row.Entry{{
		PK: "k", CK: []byte("ck"), Value: []byte("v1"), Ver: row.Version{Seq: 1, Node: 0},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := e.Get("k", []byte("ck")); !found {
		t.Fatal("stale copy did not resurrect — the regression below is not testing anything")
	}
}

// TestMigrationFenceKeepsDeleteEffective is the regression for the
// ROADMAP stale-copy-resurrection window: with a fence over the range
// (as BeginMigration installs on a migration target), compaction keeps
// the tombstone even though the watermark would allow collecting it, so
// a stale streamed copy delivered afterwards stays masked — the delete
// sticks.
func TestMigrationFenceKeepsDeleteEffective(t *testing.T) {
	e := openFenceEngine(t)
	release := e.FenceRange(PartitionToken("k"), PartitionToken("k"))

	if err := e.Put("k", []byte("ck"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Flush between the put and the delete so the delete lands in a
	// second table and Compact has a real merge to run.
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete("k", []byte("ck")); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if n := e.Metrics.TombstonesGCed.Load(); n != 0 {
		t.Fatalf("compaction collected %d tombstones through the fence", n)
	}

	// The stale streamed copy arrives after the compaction that would
	// have collected the tombstone.
	if err := e.PutBatch([]row.Entry{{
		PK: "k", CK: []byte("ck"), Value: []byte("v1"), Ver: row.Version{Seq: 1, Node: 0},
	}}); err != nil {
		t.Fatal(err)
	}
	if v, found, _ := e.Get("k", []byte("ck")); found {
		t.Fatalf("delete did not stick: stale copy %q resurrected behind the fence", v)
	}

	// Migration over: the fence lifts. The stale copy now sits in the
	// active memtable BELOW the tombstone's version, so the watermark
	// itself keeps the tombstone until the copy flushes and merges away;
	// a full settle then collects everything with the delete intact.
	release()
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := e.Get("k", []byte("ck")); found {
		t.Fatal("delete lost after fence release and settle")
	}
	if n := e.Metrics.TombstonesGCed.Load(); n == 0 {
		t.Fatal("post-release compaction never reclaimed the tombstone")
	}
}

// TestFenceOnlyCoversItsRange: tombstones outside every fenced range
// are still collected — the fence must not globally disable GC.
func TestFenceOnlyCoversItsRange(t *testing.T) {
	e := openFenceEngine(t)
	tok := PartitionToken("k")
	// Fence some other, disjoint single-token range.
	other := tok + 1
	if tok == int64(^uint64(0)>>1) { // MaxInt64: step down instead
		other = tok - 1
	}
	release := e.FenceRange(other, other)
	defer release()

	if err := e.Put("k", []byte("ck"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Flush between the put and the delete so the delete lands in a
	// second table and Compact has a real merge to run.
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete("k", []byte("ck")); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if n := e.Metrics.TombstonesGCed.Load(); n == 0 {
		t.Fatal("an unrelated fence blocked tombstone GC")
	}
}

// TestFenceReleaseIdempotent: releasing twice (EndMigration racing a
// replacement BeginMigration) must not drop someone else's fence.
func TestFenceReleaseIdempotent(t *testing.T) {
	e := openFenceEngine(t)
	tok := PartitionToken("k")
	r1 := e.FenceRange(tok, tok)
	r1()
	r2 := e.FenceRange(tok, tok)
	r1() // double release of the first fence: must not touch the second
	fences, _ := e.fenceSnapshot()
	if len(fences) != 1 {
		t.Fatalf("%d fences active, want the second one", len(fences))
	}
	r2()
	fences, _ = e.fenceSnapshot()
	if len(fences) != 0 {
		t.Fatalf("%d fences active after full release", len(fences))
	}
}
