// Package storage assembles the local database node the paper's slaves
// run: a log-structured wide-column engine with a write-ahead log,
// skip-list memtables, bloom-filtered block-based SSTables (v3 format,
// see internal/sstable), size-triggered flushes, leveled compaction and
// an optional row cache.
//
// The engine is lock-striped into shards keyed by partition-key hash.
// Each shard owns its own active memtable, frozen-memtable queue, WAL
// segments, leveled SSTable tree and one background worker goroutine. A
// write appends to the shard's WAL segment and active memtable under
// the shard lock only; when the active memtable crosses the flush
// threshold it is atomically swapped for a fresh one and the frozen
// memtable — together with its sealed WAL segments — is handed to the
// worker, which writes the SSTable into level 0 and retires the
// segments off the write path. Compaction runs on the same worker:
// when L0 grows past its table-count threshold or a deeper level past
// its byte budget, the worker merges the overflow into the overlapping
// slice of the next level — tables there are range-partitioned and
// bounded by TargetTableBytes — holding the shard lock only for the
// level-layout swap. A per-shard manifest records the layout across
// restarts.
//
// Reads never take a lock. Every mutation of a shard's read sources —
// memtable swap, flush accept, compaction or purge table swap —
// publishes a fresh immutable snapshot (active memtable + frozen queue
// + refcounted SSTable list) through an atomic pointer; a point read
// pins it with a single compare-and-swap, merges active + frozen
// memtables + SSTables, and releases it. The memtables themselves are
// single-writer lock-free skip lists, so the common case — the newest
// version of a hot key sits in the active memtable — costs zero lock
// acquisitions and zero heap allocations. Token-range operations
// (ScanRange, RangeDigest, CountRange, DeleteRange) share one cached
// token-sorted partition index, invalidated by per-shard generation
// counters instead of rebuilt per request.
//
// The engine is the "in-cassandra" stage of the paper's four-phase
// decomposition: the Figure 6/7 harness measures it directly to fit the
// database model (Formulas 6-8).
package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"scalekv/internal/memtable"
	"scalekv/internal/murmur"
	"scalekv/internal/row"
	"scalekv/internal/sstable"
)

// DefaultShards is the lock-stripe count used when Options.Shards is
// zero.
const DefaultShards = 8

// SyncMode selects when WAL segments are fsynced — the durability
// window a crash (as opposed to a process kill) can lose.
type SyncMode int

const (
	// SyncNever leaves fsync to segment close — the historical behaviour
	// and the default; benches are unaffected. An OS crash can lose the
	// unsynced tail of the active segment.
	SyncNever SyncMode = iota
	// SyncOnSeal fsyncs a segment when the memtable it covers freezes,
	// bounding machine-crash loss to the active memtable.
	SyncOnSeal
	// SyncAlways fsyncs after every WAL append (Put and PutBatch alike):
	// an acknowledged write survives a machine crash, at ~one disk flush
	// per write call. Batching amortizes it — one sync covers the batch.
	SyncAlways
)

// Options configures an Engine.
type Options struct {
	// Dir is the data directory; it is created if missing.
	Dir string
	// NodeID is the engine's identity inside cell versions: every write
	// this engine stamps carries it as the version tie-breaker. Cluster
	// nodes set it to their ring ID so replicas stamping concurrently
	// never produce equal versions for different writes; a standalone
	// engine can leave it 0.
	NodeID uint16
	// Sync selects the WAL fsync policy. Zero value is SyncNever.
	Sync SyncMode
	// Shards is the lock-stripe count: each shard has its own memtable,
	// WAL segments, SSTables and background flusher. 0 means
	// DefaultShards; negative means 1 (the pre-sharding single-lock
	// layout). The count is fixed at first open and persisted in a
	// SHARDS manifest — on reopen the on-disk value wins, because the
	// existing files were partitioned with it.
	Shards int
	// FlushThreshold is the memtable payload size, in bytes, that
	// triggers a background flush to SSTable. 0 means 4MB.
	FlushThreshold int64
	// ColumnIndexSize forwards to the SSTable writer: chunk granularity
	// of the column index. 0 means the Cassandra-like 64KB; negative
	// disables column indexes (ablation knob).
	ColumnIndexSize int
	// RowCachePartitions enables an LRU row cache holding that many
	// partitions. 0 disables it.
	RowCachePartitions int
	// BlockCacheBytes bounds the engine-wide cache of decompressed
	// SSTable blocks and lazily-loaded table metadata, shared across
	// every shard's tables. 0 means 64MB; negative disables the cache
	// (every block read then hits the OS page cache and decompresses).
	BlockCacheBytes int64
	// Compression selects the SSTable block codec for tables written by
	// flush and compaction. The zero value compresses (LZ with a
	// per-block compressibility probe); sstable.NoCompression is the
	// escape hatch for incompressible values.
	Compression sstable.Compression
	// DisableWAL turns off the commit log; used by bulk loads and
	// benchmarks where durability is irrelevant.
	DisableWAL bool
	// CompactAfter triggers a leveled compaction of a shard once more
	// than this many SSTables sit in its L0 (flush landing zone). 0
	// means 8.
	CompactAfter int
	// TargetTableBytes is the size at which compaction output tables
	// rotate (split at a partition boundary), keeping deep levels
	// range-partitioned into bounded-size tables. 0 means 2MB.
	TargetTableBytes int64
	// LevelBaseBytes is the byte budget of level 1; each deeper level
	// gets 10x the previous. A level over budget promotes tables into
	// the next one. 0 means 8MB.
	LevelBaseBytes int64
	// Seed drives the memtable skip lists for reproducibility.
	Seed int64
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Shards == 0 {
		out.Shards = DefaultShards
	}
	if out.Shards < 1 {
		out.Shards = 1
	}
	if out.FlushThreshold == 0 {
		out.FlushThreshold = 4 << 20
	}
	if out.CompactAfter == 0 {
		out.CompactAfter = 8
	}
	if out.TargetTableBytes == 0 {
		out.TargetTableBytes = 2 << 20
	}
	if out.LevelBaseBytes == 0 {
		out.LevelBaseBytes = 8 << 20
	}
	if out.BlockCacheBytes == 0 {
		out.BlockCacheBytes = 64 << 20
	}
	return out
}

// Metrics counts the engine's physical work. All fields are cumulative.
type Metrics struct {
	Puts         atomic.Int64
	Gets         atomic.Int64
	Scans        atomic.Int64
	Deletes      atomic.Int64
	Flushes      atomic.Int64
	FlushedBytes atomic.Int64
	Compactions  atomic.Int64
	// CompactionBytesIn/Out measure write amplification: bytes of table
	// input consumed and table output produced by merges (leveled, major
	// and purge alike). Out/FlushedBytes approximates the write-amp
	// factor the leveled policy is bounding.
	CompactionBytesIn  atomic.Int64
	CompactionBytesOut atomic.Int64
	RangePurges        atomic.Int64
	TombstonesGCed     atomic.Int64
	BloomSkips         atomic.Int64
	SSTablesTouched    atomic.Int64
	CacheHits          atomic.Int64
	CacheMisses        atomic.Int64
	// BlockBytesLogical/Stored accumulate the uncompressed payload vs
	// on-disk size of every data block written by flush and compaction —
	// Stored/Logical is the engine's cumulative compression ratio.
	BlockBytesLogical atomic.Int64
	BlockBytesStored  atomic.Int64
}

var errClosed = errors.New("storage: engine closed")

// Engine is a single-node wide-column store, striped into shards.
type Engine struct {
	opts   Options
	shards []*shard
	rcache *rowCache           // nil when disabled
	bcache *sstable.BlockCache // nil when disabled
	wg     sync.WaitGroup
	closed atomic.Bool

	Metrics Metrics

	// seq is the version counter: every accepted write stamps
	// (seq+1, NodeID), and any incoming pre-versioned write (a forwarded
	// or streamed copy, a read-repair) pulls it forward to at least that
	// sequence, hybrid-logical-clock style — so a local write accepted
	// after a remote copy arrives always orders after it. Restored on
	// open from the WAL and SSTable max sequences.
	seq atomic.Uint64

	// purgeGen counts DeleteRange purges; reads snapshot it before
	// merging a partition and skip the row-cache fill when it moved, so
	// an in-flight read cannot re-cache a partition a concurrent purge
	// just removed.
	purgeGen atomic.Int64

	// idxMu/partIdx are the engine-wide cached partition index shared by
	// every token-range operation; per-shard partGen counters invalidate
	// it (see partitionIndex in range.go).
	idxMu   sync.Mutex
	partIdx atomic.Pointer[partIndex]

	// fences are the active anti-GC migration fences (see fence.go):
	// token ranges whose tombstones compaction must keep because stale
	// copies may still stream in behind them. fenceGen counts fence
	// openings so an in-flight merge that predates a fence is detected
	// and redone.
	fenceMu  sync.Mutex
	fences   map[uint64]fenceRange
	fenceSeq uint64
	fenceGen atomic.Uint64

	// Test hooks, nil in production. Set them before any engine
	// activity: the first mutex handoff to the workers publishes them.
	testFlushGate chan struct{}           // flusher blocks here before touching disk
	testFlushErr  func(shardID int) error // injected SSTable-write failure
}

// Open creates or reopens an engine in opts.Dir, replaying any per-shard
// WAL segments left by a previous process.
func Open(opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, errors.New("storage: Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	if err := rejectLegacyLayout(opts.Dir); err != nil {
		return nil, err
	}
	// A crash between SSTable write and rename leaves an orphaned .tmp
	// that nothing would ever load or reuse; sweep them here (one engine
	// process per dir is already assumed everywhere).
	tmps, _ := filepath.Glob(filepath.Join(opts.Dir, "sst-*.db.tmp"))
	for _, tmp := range tmps {
		os.Remove(tmp)
	}
	nshards, err := loadOrInitShardCount(opts.Dir, opts.Shards)
	if err != nil {
		return nil, err
	}
	opts.Shards = nshards

	e := &Engine{opts: opts}
	if opts.RowCachePartitions > 0 {
		e.rcache = newRowCache(opts.RowCachePartitions)
	}
	if opts.BlockCacheBytes > 0 {
		e.bcache = sstable.NewBlockCache(opts.BlockCacheBytes)
	}
	for i := 0; i < nshards; i++ {
		s, err := e.openShard(i)
		if err != nil {
			e.abortOpen()
			return nil, err
		}
		e.shards = append(e.shards, s)
	}
	for _, s := range e.shards {
		// Recovered memtables sit frozen in the queue; the worker starts
		// flushing them immediately, off the Open path.
		e.wg.Add(1)
		go s.worker()
	}
	return e, nil
}

// abortOpen releases the shards opened so far when Open fails midway.
func (e *Engine) abortOpen() {
	for _, s := range e.shards {
		if v := s.view.Load(); v != nil {
			v.close() // drop the publisher's reference and its table pins
		}
		for _, t := range s.allTablesLocked() {
			t.release()
		}
	}
}

// rejectLegacyLayout fails loudly on a data directory written by the
// pre-sharding engine (sst-NNNNNN.db / wal.log). Those files mix
// partitions of every shard, so silently ignoring them would present
// an empty store; opening them correctly needs a re-ingest.
func rejectLegacyLayout(dir string) error {
	if _, err := os.Stat(filepath.Join(dir, "wal.log")); err == nil {
		return fmt.Errorf("storage: %s holds a pre-sharding wal.log; re-ingest the data with this version", dir)
	}
	names, _ := filepath.Glob(filepath.Join(dir, "sst-*.db"))
	for _, name := range names {
		if !strings.HasPrefix(filepath.Base(name), "sst-s") {
			return fmt.Errorf("storage: %s holds pre-sharding table %s; re-ingest the data with this version", dir, filepath.Base(name))
		}
	}
	return nil
}

// manifestFormat is the on-disk format generation recorded in the
// SHARDS manifest: "v3" marks a directory with per-shard level
// manifests and block-based v3 tables. A "v2" manifest (versioned
// cells, flat table lists) or a format-less one (pre-versioning) is
// upgraded in place: their v1/v2 tables and legacy WAL segments stay
// readable, every table written from here on is v3, and openShard
// writes the level manifests on first contact.
const manifestFormat = "v3"

// loadOrInitShardCount reads the SHARDS manifest — "<count> <format>" —
// writing it with want on first open. The persisted count wins on
// reopen: partition keys were hashed to files with it. An unknown
// format field fails loudly: the directory was written by a newer
// engine whose files this one would misread.
func loadOrInitShardCount(dir string, want int) (int, error) {
	path := filepath.Join(dir, "SHARDS")
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		if err := os.WriteFile(path, []byte(fmt.Sprintf("%d %s\n", want, manifestFormat)), 0o644); err != nil {
			return 0, err
		}
		return want, nil
	}
	if err != nil {
		return 0, err
	}
	fields := strings.Fields(string(b))
	if len(fields) == 0 {
		return 0, fmt.Errorf("storage: corrupt shard manifest %s: %q", path, b)
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil || n < 1 {
		return 0, fmt.Errorf("storage: corrupt shard manifest %s: %q", path, b)
	}
	switch {
	case len(fields) == 1 || fields[1] == "v2":
		// Earlier-generation manifest: upgrade, the data files stay
		// readable.
		if err := os.WriteFile(path, []byte(fmt.Sprintf("%d %s\n", n, manifestFormat)), 0o644); err != nil {
			return 0, err
		}
	case fields[1] == manifestFormat:
	default:
		return 0, fmt.Errorf("storage: %s was written with format %q; this engine supports %q", path, fields[1], manifestFormat)
	}
	return n, nil
}

// shardFor routes a partition key to its stripe.
func (e *Engine) shardFor(pk string) *shard {
	return e.shards[e.shardIndex(pk)]
}

func (e *Engine) shardIndex(pk string) int {
	if len(e.shards) == 1 {
		return 0
	}
	return int(murmur.StringSum64(pk) % uint64(len(e.shards)))
}

// cache returns the row cache, which is nil when disabled; every
// rowCache method tolerates a nil receiver.
func (e *Engine) cache() *rowCache { return e.rcache }

// BlockCacheStats snapshots the shared block cache's counters; all-zero
// when the cache is disabled.
func (e *Engine) BlockCacheStats() sstable.CacheStats {
	if e.bcache == nil {
		return sstable.CacheStats{}
	}
	return e.bcache.Stats()
}

// openTable opens an SSTable reader attached to the engine's shared
// block cache — the one open path every shard uses, so no table escapes
// the cache budget.
func (e *Engine) openTable(path string) (*sstable.Reader, error) {
	r, err := sstable.Open(path)
	if err != nil {
		return nil, err
	}
	r.AttachCache(e.bcache)
	return r, nil
}

// stamp assigns the next local version — the engine is the "accepting
// node" of the write.
func (e *Engine) stamp() row.Version {
	return row.Version{Seq: e.seq.Add(1), Node: e.opts.NodeID}
}

// advanceSeq pulls the version counter forward to at least seq, so a
// local write accepted after an incoming pre-versioned copy (forwarded,
// streamed, repaired) always stamps a higher sequence.
func (e *Engine) advanceSeq(seq uint64) {
	for {
		cur := e.seq.Load()
		if cur >= seq || e.seq.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// Put stores value under (pk, ck), stamped with a fresh local version.
// It returns once the write is in the shard's WAL segment and active
// memtable; flushing to SSTable happens in the background and is never
// waited on.
func (e *Engine) Put(pk string, ck, value []byte) error {
	e.Metrics.Puts.Add(1)
	return e.write(pk, ck, value, e.stamp(), false)
}

// Delete removes (pk, ck) by writing a tombstone: a versioned cell that
// masks every older copy of the address — in the active memtable, in
// frozen memtables awaiting flush, and in SSTables — until compaction
// collects it under the shard's GC watermark. A delete is a first-class
// durable write: it is WAL-logged, survives flush, compaction and
// reopen, and replicates like a put.
func (e *Engine) Delete(pk string, ck []byte) error {
	e.Metrics.Deletes.Add(1)
	return e.write(pk, ck, nil, e.stamp(), true)
}

// write is the shared single-cell write path behind Put and Delete.
func (e *Engine) write(pk string, ck, value []byte, ver row.Version, tombstone bool) error {
	s := e.shardFor(pk)
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return errClosed
	}
	if err := s.checkBacklogLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	if err := s.ensureWALLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	if s.wal != nil {
		if err := s.wal.append(pk, ck, value, ver, tombstone); err != nil {
			s.mu.Unlock()
			return err
		}
		if e.opts.Sync == SyncAlways {
			if err := s.wal.sync(); err != nil {
				s.mu.Unlock()
				return err
			}
		}
	}
	if s.mem.Put(pk, ck, value, ver, tombstone) {
		s.partGen.Add(1) // new cell address: the partition set may have grown
	}
	if s.mem.Bytes() >= e.opts.FlushThreshold {
		s.freezeLocked()
	}
	s.mu.Unlock()
	e.cache().invalidate(pk)
	return nil
}

// maxFrozenBacklog bounds the frozen-memtable queue when the flusher is
// failing: past this depth writes start reporting the background error
// instead of growing memory without bound. A healthy flusher is never
// this far behind; a failing one (disk full, permissions) must push
// back on writers — with DisableWAL there is no other signal at all.
const maxFrozenBacklog = 8

// checkBacklogLocked applies that backpressure. Caller holds mu.
func (s *shard) checkBacklogLocked() error {
	if s.flushErr != nil && len(s.frozen) >= maxFrozenBacklog {
		s.cond.Broadcast() // nudge the parked worker into another retry
		return fmt.Errorf("storage: %d memtables queued behind failing flush: %w", len(s.frozen), s.flushErr)
	}
	return nil
}

// PutBatch stores every entry with one lock acquisition and one WAL
// write per involved shard — the group commit behind the cluster's
// batched bulk-write path. Amortizing the per-operation lock and
// commit-log costs over the batch is what lets ingest throughput track
// the hardware instead of the per-call overhead. On error the batch
// stops at the failing entry of the failing shard; entries already
// appended stay applied (same semantics as a partially completed
// sequence of Puts).
//
// Versioning: entries with a zero Ver are fresh writes and are stamped
// in place with this engine's next versions (callers — the cluster's
// write handlers — read the stamps back to forward them); entries that
// already carry a version (forwarded, streamed or repaired copies) keep
// it, and the engine's counter is pulled forward past it so later local
// writes still win last-write-wins. Tombstone entries are applied like
// puts.
func (e *Engine) PutBatch(entries []row.Entry) error {
	if len(entries) == 0 {
		return nil
	}
	e.Metrics.Puts.Add(int64(len(entries)))
	var maxIncoming uint64
	for i := range entries {
		if entries[i].Ver.IsZero() {
			entries[i].Ver = e.stamp()
		} else if entries[i].Ver.Seq > maxIncoming {
			maxIncoming = entries[i].Ver.Seq
		}
	}
	if maxIncoming > 0 {
		e.advanceSeq(maxIncoming)
	}
	// Single-entry batches are the wire put path (the node applies
	// through PutBatch to read the stamp back for forwarding); skip the
	// bucketing machinery for them.
	if len(entries) == 1 {
		err := e.shardFor(entries[0].PK).putBatch(entries)
		e.cache().invalidate(entries[0].PK)
		return err
	}
	var err error
	if len(e.shards) == 1 {
		err = e.shards[0].putBatch(entries)
	} else {
		buckets := make([][]row.Entry, len(e.shards))
		for _, ent := range entries {
			i := e.shardIndex(ent.PK)
			buckets[i] = append(buckets[i], ent)
		}
		for i, b := range buckets {
			if len(b) == 0 {
				continue
			}
			if err = e.shards[i].putBatch(b); err != nil {
				break
			}
		}
	}
	// Invalidate each distinct partition once; batches arrive grouped, so
	// skipping consecutive repeats covers the common case cheaply.
	lastPK := ""
	for i, ent := range entries {
		if i == 0 || ent.PK != lastPK {
			e.cache().invalidate(ent.PK)
			lastPK = ent.PK
		}
	}
	return err
}

// Get returns the live value for (pk, ck): the highest-versioned cell
// across the active memtable, frozen memtables and SSTables, masked by
// tombstones. Sources whose maximum version cannot beat the best cell
// found so far are skipped, so the common case — the newest copy is in
// the active memtable — touches nothing else.
func (e *Engine) Get(pk string, ck []byte) ([]byte, bool, error) {
	cell, found, err := e.GetVersioned(pk, ck)
	if err != nil || !found || cell.Tombstone {
		return nil, false, err
	}
	return cell.Value, true, nil
}

// GetVersioned returns the winning cell for (pk, ck) with its version
// and tombstone flag — found=true with Tombstone set means the address
// is deleted (Get reports it as absent). The cluster's read path uses
// the version for read-repair.
func (e *Engine) GetVersioned(pk string, ck []byte) (row.Cell, bool, error) {
	e.Metrics.Gets.Add(1)
	view := e.shardFor(pk).snapshot()
	defer view.close()

	var best row.Cell
	found := false
	// Newest sources first; a later (older) source only replaces the
	// best cell on a strictly higher version, so exact ties keep the
	// newer source's copy — the same tie-break as row.Merge.
	if v, ver, tomb, ok := view.mem.Get(pk, ck); ok {
		best = row.Cell{CK: ck, Value: v, Ver: ver, Tombstone: tomb}
		found = true
	}
	for i := len(view.frozen) - 1; i >= 0; i-- {
		fm := view.frozen[i].mem
		if found && !best.Ver.Less(fm.MaxVersion()) {
			continue // nothing in this memtable can beat the best cell
		}
		if v, ver, tomb, ok := fm.Get(pk, ck); ok && (!found || best.Ver.Less(ver)) {
			best = row.Cell{CK: ck, Value: v, Ver: ver, Tombstone: tomb}
			found = true
		}
	}
	for i := len(view.tables) - 1; i >= 0; i-- {
		t := view.tables[i]
		if found && t.MaxSeq() < best.Ver.Seq {
			continue // every cell in this table loses to the best cell
		}
		if !t.MayContain(pk) {
			e.Metrics.BloomSkips.Add(1)
			continue
		}
		e.Metrics.SSTablesTouched.Add(1)
		cells, err := t.ReadSlice(pk, ck, nextKey(ck))
		if err == sstable.ErrNotFound {
			continue
		}
		if err != nil {
			return row.Cell{}, false, err
		}
		if len(cells) > 0 && bytes.Equal(cells[0].CK, ck) && (!found || best.Ver.Less(cells[0].Ver)) {
			best = cells[0]
			found = true
		}
	}
	return best, found, nil
}

// nextKey returns the immediate successor of ck in byte order.
func nextKey(ck []byte) []byte {
	out := make([]byte, len(ck)+1)
	copy(out, ck)
	return out
}

// ScanPartition returns the live merged cells of a partition with
// from <= CK < to, the highest version winning and tombstones masking
// what they shadow. Nil bounds mean unbounded.
func (e *Engine) ScanPartition(pk string, from, to []byte) ([]row.Cell, error) {
	e.Metrics.Scans.Add(1)
	if from == nil && to == nil {
		if cells, ok := e.cache().get(pk); ok {
			e.Metrics.CacheHits.Add(1)
			return cells, nil
		}
		e.Metrics.CacheMisses.Add(1)
	}

	purgeGen := e.purgeGen.Load()
	merged, err := e.scanPartitionRaw(pk, from, to)
	if err != nil {
		return nil, err
	}
	live := row.DropTombstones(merged)
	// Cache only if no DeleteRange ran while this read was merging: the
	// purge invalidates the cache when it finishes, and a stale fill
	// after that would serve deleted data indefinitely.
	if from == nil && to == nil && e.purgeGen.Load() == purgeGen {
		e.cache().put(pk, live)
	}
	return live, nil
}

// scanPartitionRaw merges a partition across every source by version,
// keeping tombstones in the output — the range streamer reads through
// it so deletes propagate to new owners during a rebalance.
func (e *Engine) scanPartitionRaw(pk string, from, to []byte) ([]row.Cell, error) {
	view := e.shardFor(pk).snapshot()
	defer view.close()

	// Sources oldest to newest so row.Merge's tie-break (equal versions:
	// later source wins) preserves the historical newest-table-wins
	// order for pre-versioning cells: SSTables, then frozen memtables,
	// then the active memtable.
	sources := make([][]row.Cell, 0, len(view.tables)+len(view.frozen)+1)
	for _, t := range view.tables {
		if !t.MayContain(pk) {
			e.Metrics.BloomSkips.Add(1)
			continue
		}
		e.Metrics.SSTablesTouched.Add(1)
		cells, err := t.ReadSlice(pk, from, to)
		if err == sstable.ErrNotFound {
			continue
		}
		if err != nil {
			return nil, err
		}
		sources = append(sources, cells)
	}
	for _, fm := range view.frozen {
		sources = append(sources, fm.mem.ScanPartition(pk, from, to))
	}
	sources = append(sources, view.mem.ScanPartition(pk, from, to))
	return row.Merge(sources...), nil
}

// CountPartition returns the number of live cells in a partition.
func (e *Engine) CountPartition(pk string) (int, error) {
	cells, err := e.ScanPartition(pk, nil, nil)
	if err != nil {
		return 0, err
	}
	return len(cells), nil
}

// AggregatePartition streams every cell of a partition through fn — the
// "count by type" aggregation of the paper's prototype is built on this.
func (e *Engine) AggregatePartition(pk string, fn func(ck, value []byte)) error {
	cells, err := e.ScanPartition(pk, nil, nil)
	if err != nil {
		return err
	}
	for _, c := range cells {
		fn(c.CK, c.Value)
	}
	return nil
}

// Partitions returns the distinct partition keys across every shard's
// memtables and SSTables, sorted ascending.
func (e *Engine) Partitions() []string {
	seen := map[string]bool{}
	for _, s := range e.shards {
		view := s.snapshot()
		for _, pk := range view.mem.Partitions() {
			seen[pk] = true
		}
		for _, fm := range view.frozen {
			for _, pk := range fm.mem.Partitions() {
				seen[pk] = true
			}
		}
		for _, t := range view.tables {
			for _, pk := range t.Partitions() {
				seen[pk] = true
			}
		}
		view.close()
	}
	out := make([]string, 0, len(seen))
	for pk := range seen {
		out = append(out, pk)
	}
	sort.Strings(out)
	return out
}

// Flush freezes every shard's active memtable and blocks until the
// background workers have written the resulting SSTables (and any
// triggered compaction has finished). Freezing all shards up front
// lets their workers write in parallel; the waits then overlap instead
// of serializing N SSTable writes. A no-op for empty memtables.
func (e *Engine) Flush() error {
	for _, s := range e.shards {
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			return errClosed
		}
		s.freezeLocked()
		// Give the worker a fresh chance after an earlier background
		// failure; the retry's outcome is what this caller reports.
		s.flushErr = nil
		s.cond.Broadcast()
		s.mu.Unlock()
	}
	for _, s := range e.shards {
		s.mu.Lock()
		err := s.waitDrainedLocked()
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Compact asks every shard's worker to merge its whole level tree into
// a single sorted run (one table, or several range-partitioned ones
// past TargetTableBytes) at the deepest level, dropping shadowed cell
// versions and collectable tombstones, and waits for completion. It
// also rewrites any remaining v1/v2 table to the v3 format.
func (e *Engine) Compact() error {
	for _, s := range e.shards {
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			return errClosed
		}
		s.majorReq = true
		s.flushErr = nil
		s.cond.Broadcast()
		err := s.waitDrainedLocked()
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// WaitIdle blocks until no background flush or compaction is pending or
// running. Unlike Flush it freezes nothing, so it observes the engine's
// autonomous behaviour — tests and measurements use it to settle the
// engine. It returns the first pending background error, if any.
func (e *Engine) WaitIdle() error {
	for _, s := range e.shards {
		s.mu.Lock()
		err := s.waitDrainedLocked()
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// NumSSTables returns the current count of sorted runs across shards.
func (e *Engine) NumSSTables() int {
	n := 0
	for _, s := range e.shards {
		s.mu.RLock()
		n += s.totalTablesLocked()
		s.mu.RUnlock()
	}
	return n
}

// MemtableBytes returns the unflushed payload size: active memtables
// plus frozen memtables still queued for flush.
func (e *Engine) MemtableBytes() int64 {
	var n int64
	for _, s := range e.shards {
		s.mu.RLock()
		n += s.mem.Bytes()
		for _, fm := range s.frozen {
			n += fm.mem.Bytes()
		}
		s.mu.RUnlock()
	}
	return n
}

// Close drains every shard's flusher and releases every resource. The
// engine is unusable afterwards; a second Close is a no-op.
func (e *Engine) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	for _, s := range e.shards {
		s.mu.Lock()
		s.freezeLocked()
		s.closing = true
		s.cond.Broadcast()
		s.mu.Unlock()
	}
	e.wg.Wait()
	var firstErr error
	for _, s := range e.shards {
		s.mu.Lock()
		if s.flushErr != nil && firstErr == nil {
			firstErr = s.flushErr
		}
		// Publish an empty view first so late readers pin nothing: a read
		// racing Close sees a clean miss instead of a released table.
		s.mem = memtable.New(shardSeed(e.opts.Seed, s.id, s.memGen+1))
		s.frozen = nil
		saved := s.allTablesLocked()
		s.levels = nil
		s.publishLocked()
		for _, t := range saved {
			if err := t.release(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if s.wal != nil {
			if err := s.wal.sync(); err != nil && firstErr == nil {
				firstErr = err
			}
			if err := s.wal.close(); err != nil && firstErr == nil {
				firstErr = err
			}
			s.wal = nil
		}
		s.mu.Unlock()
	}
	return firstErr
}
