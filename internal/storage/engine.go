// Package storage assembles the local database node the paper's slaves
// run: a log-structured wide-column engine with a write-ahead log, a
// skip-list memtable, bloom-filtered SSTables with Cassandra-style column
// indexes, size-triggered flushes, full compaction and an optional row
// cache.
//
// The engine is the "in-cassandra" stage of the paper's four-phase
// decomposition: the Figure 6/7 harness measures it directly to fit the
// database model (Formulas 6-8).
package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"scalekv/internal/memtable"
	"scalekv/internal/row"
	"scalekv/internal/sstable"
)

// Options configures an Engine.
type Options struct {
	// Dir is the data directory; it is created if missing.
	Dir string
	// FlushThreshold is the memtable payload size, in bytes, that
	// triggers a flush to SSTable. 0 means 4MB.
	FlushThreshold int64
	// ColumnIndexSize forwards to the SSTable writer: chunk granularity
	// of the column index. 0 means the Cassandra-like 64KB; negative
	// disables column indexes (ablation knob).
	ColumnIndexSize int
	// RowCachePartitions enables an LRU row cache holding that many
	// partitions. 0 disables it.
	RowCachePartitions int
	// DisableWAL turns off the commit log; used by bulk loads and
	// benchmarks where durability is irrelevant.
	DisableWAL bool
	// CompactAfter triggers a full compaction once more than this many
	// SSTables exist. 0 means 8.
	CompactAfter int
	// Seed drives the memtable skip list for reproducibility.
	Seed int64
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.FlushThreshold == 0 {
		out.FlushThreshold = 4 << 20
	}
	if out.CompactAfter == 0 {
		out.CompactAfter = 8
	}
	return out
}

// Metrics counts the engine's physical work. All fields are cumulative.
type Metrics struct {
	Puts            atomic.Int64
	Gets            atomic.Int64
	Scans           atomic.Int64
	Flushes         atomic.Int64
	Compactions     atomic.Int64
	BloomSkips      atomic.Int64
	SSTablesTouched atomic.Int64
	CacheHits       atomic.Int64
	CacheMisses     atomic.Int64
}

// Engine is a single-node wide-column store.
type Engine struct {
	opts Options

	mu     sync.RWMutex
	mem    *memtable.Memtable
	tables []*sstable.Reader // oldest first
	seq    int               // next sstable sequence number
	wal    *wal
	rcache *rowCache // nil when disabled
	closed bool

	Metrics Metrics
}

// Open creates or reopens an engine in opts.Dir, replaying any WAL left
// by a previous process.
func Open(opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, errors.New("storage: Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	e := &Engine{opts: opts, mem: memtable.New(opts.Seed)}
	if opts.RowCachePartitions > 0 {
		e.rcache = newRowCache(opts.RowCachePartitions)
	}

	// Load existing SSTables in sequence order.
	names, err := filepath.Glob(filepath.Join(opts.Dir, "sst-*.db"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	for _, name := range names {
		r, err := sstable.Open(name)
		if err != nil {
			return nil, fmt.Errorf("storage: reopen %s: %w", name, err)
		}
		e.tables = append(e.tables, r)
		var n int
		fmt.Sscanf(filepath.Base(name), "sst-%06d.db", &n)
		if n >= e.seq {
			e.seq = n + 1
		}
	}

	walPath := filepath.Join(opts.Dir, "wal.log")
	if !opts.DisableWAL {
		if err := replayWAL(walPath, func(op byte, pk string, ck, value []byte) {
			switch op {
			case walPut:
				e.mem.Put(pk, ck, value)
			case walDelete:
				e.mem.Delete(pk, ck)
			}
		}); err != nil {
			return nil, err
		}
		if e.wal, err = openWAL(walPath); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// cache returns the row cache, which is nil when disabled; every
// rowCache method tolerates a nil receiver.
func (e *Engine) cache() *rowCache { return e.rcache }

// Put stores value under (pk, ck).
func (e *Engine) Put(pk string, ck, value []byte) error {
	e.Metrics.Puts.Add(1)
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return errors.New("storage: engine closed")
	}
	if e.wal != nil {
		if err := e.wal.append(walPut, pk, ck, value); err != nil {
			e.mu.Unlock()
			return err
		}
	}
	e.mem.Put(pk, ck, value)
	needFlush := e.mem.Bytes() >= e.opts.FlushThreshold
	e.mu.Unlock()
	e.cache().invalidate(pk)
	if needFlush {
		return e.Flush()
	}
	return nil
}

// PutBatch stores every entry under one lock acquisition and one WAL
// write — the group commit behind the cluster's batched bulk-write path.
// Amortizing the per-operation lock and commit-log costs over the batch
// is what lets ingest throughput track the hardware instead of the
// per-call overhead. On error the batch stops at the failing entry;
// entries already appended stay applied (same semantics as a partially
// completed sequence of Puts).
func (e *Engine) PutBatch(entries []row.Entry) error {
	if len(entries) == 0 {
		return nil
	}
	e.Metrics.Puts.Add(int64(len(entries)))
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return errors.New("storage: engine closed")
	}
	if e.wal != nil {
		if err := e.wal.appendBatch(entries); err != nil {
			e.mu.Unlock()
			return err
		}
	}
	for _, ent := range entries {
		e.mem.Put(ent.PK, ent.CK, ent.Value)
	}
	needFlush := e.mem.Bytes() >= e.opts.FlushThreshold
	e.mu.Unlock()
	// Invalidate each distinct partition once; batches arrive grouped, so
	// skipping consecutive repeats covers the common case cheaply.
	lastPK := ""
	for i, ent := range entries {
		if i == 0 || ent.PK != lastPK {
			e.cache().invalidate(ent.PK)
			lastPK = ent.PK
		}
	}
	if needFlush {
		return e.Flush()
	}
	return nil
}

// Delete removes (pk, ck) from the memtable. Cross-SSTable tombstones
// are not implemented: the paper's workloads are append-then-read-only,
// so deletes only need to cover not-yet-flushed data.
func (e *Engine) Delete(pk string, ck []byte) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return errors.New("storage: engine closed")
	}
	if e.wal != nil {
		if err := e.wal.append(walDelete, pk, ck, nil); err != nil {
			e.mu.Unlock()
			return err
		}
	}
	e.mem.Delete(pk, ck)
	e.mu.Unlock()
	e.cache().invalidate(pk)
	return nil
}

// Get returns the newest value for (pk, ck).
func (e *Engine) Get(pk string, ck []byte) ([]byte, bool, error) {
	e.Metrics.Gets.Add(1)
	e.mu.RLock()
	mem := e.mem
	tables := e.tables
	e.mu.RUnlock()

	if v, ok := mem.Get(pk, ck); ok {
		return v, true, nil
	}
	// Newest SSTable wins: scan from the end.
	for i := len(tables) - 1; i >= 0; i-- {
		t := tables[i]
		if !t.MayContain(pk) {
			e.Metrics.BloomSkips.Add(1)
			continue
		}
		e.Metrics.SSTablesTouched.Add(1)
		cells, err := t.ReadSlice(pk, ck, nextKey(ck))
		if err == sstable.ErrNotFound {
			continue
		}
		if err != nil {
			return nil, false, err
		}
		if len(cells) > 0 && bytes.Equal(cells[0].CK, ck) {
			return cells[0].Value, true, nil
		}
	}
	return nil, false, nil
}

// nextKey returns the immediate successor of ck in byte order.
func nextKey(ck []byte) []byte {
	out := make([]byte, len(ck)+1)
	copy(out, ck)
	return out
}

// ScanPartition returns the merged cells of a partition with
// from <= CK < to, newest version winning. Nil bounds mean unbounded.
func (e *Engine) ScanPartition(pk string, from, to []byte) ([]row.Cell, error) {
	e.Metrics.Scans.Add(1)
	if from == nil && to == nil {
		if cells, ok := e.cache().get(pk); ok {
			e.Metrics.CacheHits.Add(1)
			return cells, nil
		}
		e.Metrics.CacheMisses.Add(1)
	}

	e.mu.RLock()
	mem := e.mem
	tables := e.tables
	e.mu.RUnlock()

	// Sources oldest to newest so row.Merge lets the newest win.
	sources := make([][]row.Cell, 0, len(tables)+1)
	for _, t := range tables {
		if !t.MayContain(pk) {
			e.Metrics.BloomSkips.Add(1)
			continue
		}
		e.Metrics.SSTablesTouched.Add(1)
		cells, err := t.ReadSlice(pk, from, to)
		if err == sstable.ErrNotFound {
			continue
		}
		if err != nil {
			return nil, err
		}
		sources = append(sources, cells)
	}
	sources = append(sources, mem.ScanPartition(pk, from, to))
	merged := row.Merge(sources...)
	if from == nil && to == nil {
		e.cache().put(pk, merged)
	}
	return merged, nil
}

// CountPartition returns the number of live cells in a partition.
func (e *Engine) CountPartition(pk string) (int, error) {
	cells, err := e.ScanPartition(pk, nil, nil)
	if err != nil {
		return 0, err
	}
	return len(cells), nil
}

// AggregatePartition streams every cell of a partition through fn — the
// "count by type" aggregation of the paper's prototype is built on this.
func (e *Engine) AggregatePartition(pk string, fn func(ck, value []byte)) error {
	cells, err := e.ScanPartition(pk, nil, nil)
	if err != nil {
		return err
	}
	for _, c := range cells {
		fn(c.CK, c.Value)
	}
	return nil
}

// Partitions returns the distinct partition keys across the memtable and
// all SSTables, sorted ascending.
func (e *Engine) Partitions() []string {
	e.mu.RLock()
	mem := e.mem
	tables := e.tables
	e.mu.RUnlock()

	seen := map[string]bool{}
	for _, pk := range mem.Partitions() {
		seen[pk] = true
	}
	for _, t := range tables {
		for _, pk := range t.Partitions() {
			seen[pk] = true
		}
	}
	out := make([]string, 0, len(seen))
	for pk := range seen {
		out = append(out, pk)
	}
	sort.Strings(out)
	return out
}

// Flush writes the current memtable to a new SSTable and truncates the
// WAL. A no-op when the memtable is empty.
func (e *Engine) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.flushLocked()
}

func (e *Engine) flushLocked() error {
	if e.closed {
		return errors.New("storage: engine closed")
	}
	if e.mem.Len() == 0 {
		return nil
	}
	path := filepath.Join(e.opts.Dir, fmt.Sprintf("sst-%06d.db", e.seq))
	nParts := len(e.mem.Partitions())
	w, err := sstable.NewWriter(path, sstable.WriterOptions{
		ColumnIndexSize:    e.opts.ColumnIndexSize,
		ExpectedPartitions: nParts,
	})
	if err != nil {
		return err
	}
	// Stream the memtable in order, grouping cells per partition.
	var curPK string
	var cur []row.Cell
	first := true
	flushPart := func() error {
		if first {
			return nil
		}
		return w.AddPartition(curPK, cur)
	}
	err = e.mem.Each(func(ent memtable.Entry) error {
		if first || ent.PK != curPK {
			if err := flushPart(); err != nil {
				return err
			}
			curPK, cur, first = ent.PK, nil, false
		}
		cur = append(cur, row.Cell{CK: ent.CK, Value: ent.Value})
		return nil
	})
	if err == nil {
		err = flushPart()
	}
	if err != nil {
		w.Close()
		os.Remove(path)
		return err
	}
	if err := w.Close(); err != nil {
		os.Remove(path)
		return err
	}
	r, err := sstable.Open(path)
	if err != nil {
		return err
	}
	e.tables = append(e.tables, r)
	e.seq++
	e.mem = memtable.New(e.opts.Seed + int64(e.seq))
	e.Metrics.Flushes.Add(1)
	if e.wal != nil {
		if err := e.wal.reset(); err != nil {
			return err
		}
	}
	if len(e.tables) > e.opts.CompactAfter {
		return e.compactLocked()
	}
	return nil
}

// Compact merges every SSTable into one, dropping shadowed cell
// versions.
func (e *Engine) Compact() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.compactLocked()
}

func (e *Engine) compactLocked() error {
	if len(e.tables) <= 1 {
		return nil
	}
	// Union of partition keys across tables.
	seen := map[string]bool{}
	for _, t := range e.tables {
		for _, pk := range t.Partitions() {
			seen[pk] = true
		}
	}
	pks := make([]string, 0, len(seen))
	for pk := range seen {
		pks = append(pks, pk)
	}
	sort.Strings(pks)

	path := filepath.Join(e.opts.Dir, fmt.Sprintf("sst-%06d.db", e.seq))
	w, err := sstable.NewWriter(path, sstable.WriterOptions{
		ColumnIndexSize:    e.opts.ColumnIndexSize,
		ExpectedPartitions: len(pks),
	})
	if err != nil {
		return err
	}
	for _, pk := range pks {
		sources := make([][]row.Cell, 0, len(e.tables))
		for _, t := range e.tables {
			cells, err := t.ReadSlice(pk, nil, nil)
			if err == sstable.ErrNotFound {
				continue
			}
			if err != nil {
				w.Close()
				os.Remove(path)
				return err
			}
			sources = append(sources, cells)
		}
		if err := w.AddPartition(pk, row.Merge(sources...)); err != nil {
			w.Close()
			os.Remove(path)
			return err
		}
	}
	if err := w.Close(); err != nil {
		os.Remove(path)
		return err
	}
	r, err := sstable.Open(path)
	if err != nil {
		return err
	}
	old := e.tables
	e.tables = []*sstable.Reader{r}
	e.seq++
	e.Metrics.Compactions.Add(1)
	for _, t := range old {
		t.Close()
	}
	// Remove superseded files.
	names, _ := filepath.Glob(filepath.Join(e.opts.Dir, "sst-*.db"))
	for _, name := range names {
		if name != path {
			os.Remove(name)
		}
	}
	return nil
}

// NumSSTables returns the current count of sorted runs.
func (e *Engine) NumSSTables() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.tables)
}

// MemtableBytes returns the live memtable payload size.
func (e *Engine) MemtableBytes() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.mem.Bytes()
}

// Close flushes and releases every resource. The engine is unusable
// afterwards.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	if err := e.flushLocked(); err != nil {
		return err
	}
	e.closed = true
	var firstErr error
	for _, t := range e.tables {
		if err := t.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if e.wal != nil {
		if err := e.wal.sync(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := e.wal.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
