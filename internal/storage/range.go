package storage

import (
	"math"
	"sort"

	"scalekv/internal/murmur"
	"scalekv/internal/row"
)

// This file is the engine's token-range surface: the primitives the
// cluster's elastic rebalancing is built on. ScanRange pages a node's
// share of a token range out for streaming to a new owner; DeleteRange
// retires the data once the handoff is complete; Stats exposes the
// per-shard backlog the coordinator uses to pick streaming sources.

// PartitionToken returns the ring token of a partition key — the same
// murmur token the hashring places the key by, so engine range scans
// and ring ownership diffs agree exactly.
func PartitionToken(pk string) int64 {
	return murmur.Token([]byte(pk))
}

// RangePage is one page of a token-range scan. Entries are grouped by
// partition and ordered by (token, partition key); pages always hold
// whole partitions.
type RangePage struct {
	Entries []row.Entry
	// NextToken/NextPK form the cursor for the next page when More is
	// set: pass them as ScanRange's afterToken/afterPK.
	NextToken int64
	NextPK    string
	More      bool
}

// DefaultRangePageCells bounds a ScanRange page when the caller passes
// maxCells <= 0.
const DefaultRangePageCells = 4096

// rangePK is one partition selected for a range operation.
type rangePK struct {
	token int64
	pk    string
}

// partIndex is the engine's cached token-sorted partition index: every
// partition across every shard, ordered by (token, pk), tagged with the
// per-shard partition generations it was built from. It is immutable
// once published; gens is the invalidation check — if any shard's
// partGen has moved (a write created a new cell address, a purge or
// compaction removed partitions), the index is rebuilt on next use.
// ScanRange, RangeDigest, CountRange and DeleteRange all share it, so
// a repair pass digesting many sub-ranges pays one enumeration total
// instead of one per request.
type partIndex struct {
	gens  []uint64 // shard partGen values loaded before enumeration
	parts []rangePK
}

// fresh reports whether no shard's partition set has changed since the
// index was built.
func (idx *partIndex) fresh(shards []*shard) bool {
	for i, s := range shards {
		if s.partGen.Load() != idx.gens[i] {
			return false
		}
	}
	return true
}

// partitionIndex returns the current partition index, rebuilding it if
// any shard invalidated it. Rebuilds are serialized by idxMu; readers
// that lose the freshness race at worst rebuild once more. The
// generations are loaded BEFORE the shards are enumerated and writers
// bump theirs AFTER publishing the change, so a partition that slips in
// mid-build is either included or flips a generation the stored tags
// no longer match — a stale index never survives its next use.
func (e *Engine) partitionIndex() *partIndex {
	if idx := e.partIdx.Load(); idx != nil && idx.fresh(e.shards) {
		return idx
	}
	e.idxMu.Lock()
	defer e.idxMu.Unlock()
	if idx := e.partIdx.Load(); idx != nil && idx.fresh(e.shards) {
		return idx
	}
	gens := make([]uint64, len(e.shards))
	for i, s := range e.shards {
		gens[i] = s.partGen.Load()
	}
	seen := map[string]bool{}
	for _, s := range e.shards {
		view := s.snapshot()
		for _, pk := range view.mem.Partitions() {
			seen[pk] = true
		}
		for _, fm := range view.frozen {
			for _, pk := range fm.mem.Partitions() {
				seen[pk] = true
			}
		}
		for _, t := range view.tables {
			for _, pk := range t.Partitions() {
				seen[pk] = true
			}
		}
		view.close()
	}
	parts := make([]rangePK, 0, len(seen))
	for pk := range seen {
		parts = append(parts, rangePK{token: PartitionToken(pk), pk: pk})
	}
	sort.Slice(parts, func(a, b int) bool {
		if parts[a].token != parts[b].token {
			return parts[a].token < parts[b].token
		}
		return parts[a].pk < parts[b].pk
	})
	idx := &partIndex{gens: gens, parts: parts}
	e.partIdx.Store(idx)
	return idx
}

// partitionsInRange returns the partitions whose token falls in the
// inclusive [lo, hi], ordered by (token, pk) — a binary-searched
// subslice of the cached index; callers must not mutate it. Wrap-around
// ranges are the caller's concern: ownership diffs split them at the
// int64 boundary, so lo <= hi always holds here.
func (e *Engine) partitionsInRange(lo, hi int64) []rangePK {
	parts := e.partitionIndex().parts
	i := sort.Search(len(parts), func(k int) bool { return parts[k].token >= lo })
	j := sort.Search(len(parts), func(k int) bool { return parts[k].token > hi })
	return parts[i:j]
}

// scanPartitions returns the partitions of [lo, hi] strictly after the
// (afterToken, afterPK) cursor, resuming by binary search in the cached
// index. Unlike the per-scan index this replaced, the shared index may
// refresh between pages, so a partition created mid-scan is picked up
// by a later page — harmless for the rebalance streamer (the only paged
// caller): those are exactly the writes the dual-write window already
// forwards, and LWW makes shipping a copy twice idempotent.
func (e *Engine) scanPartitions(lo, hi, afterToken int64, afterPK string) []rangePK {
	parts := e.partitionsInRange(lo, hi)
	if afterToken == math.MinInt64 && afterPK == "" {
		return parts
	}
	at := sort.Search(len(parts), func(i int) bool {
		p := parts[i]
		return p.token > afterToken || (p.token == afterToken && p.pk > afterPK)
	})
	return parts[at:]
}

// ScanRange returns one page of the cells whose partition token falls
// in the inclusive token range [lo, hi], in (token, partition key)
// order — the streaming source of a range handoff. The page holds whole
// partitions and at least one partition regardless of maxCells; when
// More is set, resume with the returned cursor. Pass (math.MinInt64, "")
// to start. The scan merges memtables and SSTables exactly like a
// partition read — tombstones included, so a delete propagates to the
// range's new owner and keeps masking older copies there. Pages resume
// by binary search in the engine's cached partition index (see
// scanPartitions); writes landing mid-scan are the dual-write window's
// concern, not the streamer's.
func (e *Engine) ScanRange(lo, hi, afterToken int64, afterPK string, maxCells int) (*RangePage, error) {
	if maxCells <= 0 {
		maxCells = DefaultRangePageCells
	}
	page := &RangePage{}
	selected := e.scanPartitions(lo, hi, afterToken, afterPK)
	for i, p := range selected {
		cells, err := e.scanPartitionRaw(p.pk, nil, nil)
		if err != nil {
			return nil, err
		}
		for _, c := range cells {
			page.Entries = append(page.Entries, row.Entry{
				PK: p.pk, CK: c.CK, Value: c.Value, Ver: c.Ver, Tombstone: c.Tombstone,
			})
		}
		page.NextToken, page.NextPK = p.token, p.pk
		if len(page.Entries) >= maxCells && i < len(selected)-1 {
			page.More = true
			break
		}
	}
	return page, nil
}

// CountRange returns the number of live cells whose partition token
// falls in [lo, hi] — the verification half of a handoff (source and
// target counts must line up before the source range is retired).
func (e *Engine) CountRange(lo, hi int64) (int64, error) {
	var n int64
	for _, p := range e.partitionsInRange(lo, hi) {
		c, err := e.CountPartition(p.pk)
		if err != nil {
			return 0, err
		}
		n += int64(c)
	}
	return n, nil
}

// DeleteRange removes every partition whose token falls in the
// inclusive [lo, hi] from the engine and returns the number of cells
// dropped. It is the retirement half of a range handoff: each shard's
// active memtable is frozen, the background worker drains the frozen
// queue into SSTables, and a purge compaction then rewrites the shard's
// tables without the in-range partitions. Blocking (it waits for the
// purge) but off the write path — concurrent writes to out-of-range
// partitions proceed; in-range writes racing a purge land in the fresh
// active memtable and survive, so callers must fence writers first
// (the coordinator flips the topology epoch before retiring).
func (e *Engine) DeleteRange(lo, hi int64) (int64, error) {
	// Advancing the generation first fences concurrent reads out of the
	// row cache: a read that started before the purge skips its cache
	// fill when it sees the generation moved.
	e.purgeGen.Add(1)
	var removed int64
	for _, s := range e.shards {
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			return removed, errClosed
		}
		s.freezeLocked()
		req := &purgeRange{lo: lo, hi: hi}
		s.purges = append(s.purges, req)
		// Give the worker a fresh chance after an earlier background
		// failure; this wait reports the retry's own outcome.
		s.flushErr = nil
		s.cond.Broadcast()
		err := s.waitDrainedLocked()
		s.mu.Unlock()
		if err != nil {
			return removed, err
		}
		removed += req.removed
	}
	// Advance the generation again now that the purge is complete: a
	// read that loaded the generation mid-purge (and may have merged
	// the doomed tables) must also fail its cache-fill check, or it
	// would resurrect the partition right after the invalidation below.
	e.purgeGen.Add(1)
	e.cache().invalidateTokenRange(lo, hi)
	return removed, nil
}

// LevelStats is one compaction level's footprint within a shard or
// across the engine.
type LevelStats struct {
	Tables int
	Bytes  int64
}

// ShardStats is one shard's load snapshot.
type ShardStats struct {
	Shard           int
	MemtableBytes   int64
	FrozenMemtables int
	FrozenBytes     int64
	SSTables        int
	SSTableBytes    int64
	Levels          []LevelStats // index = level; L0 is the flush zone
}

// EngineStats aggregates the engine's physical state: per-shard write
// backlog plus cumulative background work. The cluster coordinator
// reads it to pick streaming sources; tests read it to verify
// retirement. Levels and the CompactionBytes counters are the
// write-amplification observability surface: Levels shows where the
// compaction debt sits, CompactionBytesOut/FlushedBytes approximates
// the amplification factor.
type EngineStats struct {
	Shards             []ShardStats
	MemtableBytes      int64 // active + frozen payload across shards
	FrozenMemtables    int
	SSTables           int
	SSTableBytes       int64
	Levels             []LevelStats // aggregated across shards, index = level
	FlushedBytes       int64
	Flushes            int64
	Compactions        int64
	CompactionBytesIn  int64
	CompactionBytesOut int64
	RangePurges        int64

	// Read-path memory hierarchy: the shared block cache's counters and
	// the cumulative compressed-vs-logical bytes of every data block
	// flush and compaction wrote. BlockBytesStored/BlockBytesLogical is
	// the on-disk compression ratio.
	BlockCacheHits      int64
	BlockCacheMisses    int64
	BlockCacheEvictions int64
	BlockCacheBytes     int64
	BlockBytesLogical   int64
	BlockBytesStored    int64
}

// Stats snapshots the engine's per-shard state and cumulative counters.
func (e *Engine) Stats() EngineStats {
	st := EngineStats{
		FlushedBytes:       e.Metrics.FlushedBytes.Load(),
		Flushes:            e.Metrics.Flushes.Load(),
		Compactions:        e.Metrics.Compactions.Load(),
		CompactionBytesIn:  e.Metrics.CompactionBytesIn.Load(),
		CompactionBytesOut: e.Metrics.CompactionBytesOut.Load(),
		RangePurges:        e.Metrics.RangePurges.Load(),
		BlockBytesLogical:  e.Metrics.BlockBytesLogical.Load(),
		BlockBytesStored:   e.Metrics.BlockBytesStored.Load(),
	}
	cs := e.BlockCacheStats()
	st.BlockCacheHits = cs.Hits
	st.BlockCacheMisses = cs.Misses
	st.BlockCacheEvictions = cs.Evictions
	st.BlockCacheBytes = cs.Bytes
	for _, s := range e.shards {
		s.mu.RLock()
		sh := ShardStats{
			Shard:           s.id,
			MemtableBytes:   s.mem.Bytes(),
			FrozenMemtables: len(s.frozen),
		}
		for _, fm := range s.frozen {
			sh.FrozenBytes += fm.mem.Bytes()
		}
		for _, tables := range s.levels {
			ls := LevelStats{Tables: len(tables), Bytes: levelBytes(tables)}
			sh.Levels = append(sh.Levels, ls)
			sh.SSTables += ls.Tables
			sh.SSTableBytes += ls.Bytes
		}
		s.mu.RUnlock()
		st.Shards = append(st.Shards, sh)
		st.MemtableBytes += sh.MemtableBytes + sh.FrozenBytes
		st.FrozenMemtables += sh.FrozenMemtables
		st.SSTables += sh.SSTables
		st.SSTableBytes += sh.SSTableBytes
		for level, ls := range sh.Levels {
			for len(st.Levels) <= level {
				st.Levels = append(st.Levels, LevelStats{})
			}
			st.Levels[level].Tables += ls.Tables
			st.Levels[level].Bytes += ls.Bytes
		}
	}
	return st
}
