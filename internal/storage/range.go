package storage

import (
	"math"
	"sort"

	"scalekv/internal/murmur"
	"scalekv/internal/row"
)

// This file is the engine's token-range surface: the primitives the
// cluster's elastic rebalancing is built on. ScanRange pages a node's
// share of a token range out for streaming to a new owner; DeleteRange
// retires the data once the handoff is complete; Stats exposes the
// per-shard backlog the coordinator uses to pick streaming sources.

// PartitionToken returns the ring token of a partition key — the same
// murmur token the hashring places the key by, so engine range scans
// and ring ownership diffs agree exactly.
func PartitionToken(pk string) int64 {
	return murmur.Token([]byte(pk))
}

// RangePage is one page of a token-range scan. Entries are grouped by
// partition and ordered by (token, partition key); pages always hold
// whole partitions.
type RangePage struct {
	Entries []row.Entry
	// NextToken/NextPK form the cursor for the next page when More is
	// set: pass them as ScanRange's afterToken/afterPK.
	NextToken int64
	NextPK    string
	More      bool
}

// DefaultRangePageCells bounds a ScanRange page when the caller passes
// maxCells <= 0.
const DefaultRangePageCells = 4096

// rangePK is one partition selected for a range operation.
type rangePK struct {
	token int64
	pk    string
}

// partitionsInRange collects the engine's partitions whose token falls
// in the inclusive [lo, hi], ordered by (token, pk). Wrap-around ranges
// are the caller's concern: ownership diffs split them at the int64
// boundary, so lo <= hi always holds here.
func (e *Engine) partitionsInRange(lo, hi int64) []rangePK {
	var out []rangePK
	for _, pk := range e.Partitions() {
		tok := PartitionToken(pk)
		if tok < lo || tok > hi {
			continue
		}
		out = append(out, rangePK{token: tok, pk: pk})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].token != out[b].token {
			return out[a].token < out[b].token
		}
		return out[a].pk < out[b].pk
	})
	return out
}

// scanKey identifies one in-progress range scan in the index cache.
type scanKey struct{ lo, hi int64 }

// scanIndex is the token-sorted partition list of one range scan,
// built on the scan's first page and reused — resumed by binary search
// — by every following page. gen pins the purge generation the index
// was built under: a DeleteRange invalidates it.
type scanIndex struct {
	gen   int64
	parts []rangePK
}

// maxScanIndexes bounds the cache; scans drop their entry when the last
// page is served, so the bound only matters for abandoned scans.
const maxScanIndexes = 4

// scanPartitions returns the partitions of [lo, hi] strictly after the
// (afterToken, afterPK) cursor. The first page of a scan enumerates and
// token-sorts the engine's partitions once and caches the index; later
// pages binary-search the cursor in the cached index instead of paying
// the full enumeration per page. Partitions created after the index was
// built are not picked up mid-scan — for the rebalance streamer (the
// only paged caller) those are exactly the writes the dual-write window
// already forwards.
func (e *Engine) scanPartitions(lo, hi, afterToken int64, afterPK string) []rangePK {
	key := scanKey{lo: lo, hi: hi}
	first := afterToken == math.MinInt64 && afterPK == ""
	gen := e.purgeGen.Load()

	e.scanMu.Lock()
	idx := e.scanIdx[key]
	e.scanMu.Unlock()
	if first || idx == nil || idx.gen != gen {
		idx = &scanIndex{gen: gen, parts: e.partitionsInRange(lo, hi)}
		e.scanMu.Lock()
		if e.scanIdx == nil {
			e.scanIdx = make(map[scanKey]*scanIndex)
		}
		for k := range e.scanIdx {
			if len(e.scanIdx) < maxScanIndexes {
				break
			}
			delete(e.scanIdx, k)
		}
		e.scanIdx[key] = idx
		e.scanMu.Unlock()
	}
	if first {
		return idx.parts
	}
	// Resume strictly after the cursor.
	at := sort.Search(len(idx.parts), func(i int) bool {
		p := idx.parts[i]
		return p.token > afterToken || (p.token == afterToken && p.pk > afterPK)
	})
	return idx.parts[at:]
}

// dropScanIndex retires a finished scan's cached partition index.
func (e *Engine) dropScanIndex(lo, hi int64) {
	e.scanMu.Lock()
	delete(e.scanIdx, scanKey{lo: lo, hi: hi})
	e.scanMu.Unlock()
}

// ScanRange returns one page of the cells whose partition token falls
// in the inclusive token range [lo, hi], in (token, partition key)
// order — the streaming source of a range handoff. The page holds whole
// partitions and at least one partition regardless of maxCells; when
// More is set, resume with the returned cursor. Pass (math.MinInt64, "")
// to start. The scan merges memtables and SSTables exactly like a
// partition read — tombstones included, so a delete propagates to the
// range's new owner and keeps masking older copies there. The partition
// set is indexed once on the first page (see scanPartitions); writes
// landing mid-scan are the dual-write window's concern, not the
// streamer's.
func (e *Engine) ScanRange(lo, hi, afterToken int64, afterPK string, maxCells int) (*RangePage, error) {
	if maxCells <= 0 {
		maxCells = DefaultRangePageCells
	}
	page := &RangePage{}
	selected := e.scanPartitions(lo, hi, afterToken, afterPK)
	for i, p := range selected {
		cells, err := e.scanPartitionRaw(p.pk, nil, nil)
		if err != nil {
			return nil, err
		}
		for _, c := range cells {
			page.Entries = append(page.Entries, row.Entry{
				PK: p.pk, CK: c.CK, Value: c.Value, Ver: c.Ver, Tombstone: c.Tombstone,
			})
		}
		page.NextToken, page.NextPK = p.token, p.pk
		if len(page.Entries) >= maxCells && i < len(selected)-1 {
			page.More = true
			break
		}
	}
	if !page.More {
		e.dropScanIndex(lo, hi)
	}
	return page, nil
}

// CountRange returns the number of live cells whose partition token
// falls in [lo, hi] — the verification half of a handoff (source and
// target counts must line up before the source range is retired).
func (e *Engine) CountRange(lo, hi int64) (int64, error) {
	var n int64
	for _, pk := range e.Partitions() {
		tok := PartitionToken(pk)
		if tok < lo || tok > hi {
			continue
		}
		c, err := e.CountPartition(pk)
		if err != nil {
			return 0, err
		}
		n += int64(c)
	}
	return n, nil
}

// DeleteRange removes every partition whose token falls in the
// inclusive [lo, hi] from the engine and returns the number of cells
// dropped. It is the retirement half of a range handoff: each shard's
// active memtable is frozen, the background worker drains the frozen
// queue into SSTables, and a purge compaction then rewrites the shard's
// tables without the in-range partitions. Blocking (it waits for the
// purge) but off the write path — concurrent writes to out-of-range
// partitions proceed; in-range writes racing a purge land in the fresh
// active memtable and survive, so callers must fence writers first
// (the coordinator flips the topology epoch before retiring).
func (e *Engine) DeleteRange(lo, hi int64) (int64, error) {
	// Advancing the generation first fences concurrent reads out of the
	// row cache: a read that started before the purge skips its cache
	// fill when it sees the generation moved.
	e.purgeGen.Add(1)
	var removed int64
	for _, s := range e.shards {
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			return removed, errClosed
		}
		s.freezeLocked()
		req := &purgeRange{lo: lo, hi: hi}
		s.purges = append(s.purges, req)
		// Give the worker a fresh chance after an earlier background
		// failure; this wait reports the retry's own outcome.
		s.flushErr = nil
		s.cond.Broadcast()
		err := s.waitDrainedLocked()
		s.mu.Unlock()
		if err != nil {
			return removed, err
		}
		removed += req.removed
	}
	// Advance the generation again now that the purge is complete: a
	// read that loaded the generation mid-purge (and may have merged
	// the doomed tables) must also fail its cache-fill check, or it
	// would resurrect the partition right after the invalidation below.
	e.purgeGen.Add(1)
	e.cache().invalidateTokenRange(lo, hi)
	return removed, nil
}

// ShardStats is one shard's load snapshot.
type ShardStats struct {
	Shard           int
	MemtableBytes   int64
	FrozenMemtables int
	FrozenBytes     int64
	SSTables        int
}

// EngineStats aggregates the engine's physical state: per-shard write
// backlog plus cumulative background work. The cluster coordinator
// reads it to pick streaming sources; tests read it to verify
// retirement.
type EngineStats struct {
	Shards          []ShardStats
	MemtableBytes   int64 // active + frozen payload across shards
	FrozenMemtables int
	SSTables        int
	FlushedBytes    int64
	Flushes         int64
	Compactions     int64
	RangePurges     int64
}

// Stats snapshots the engine's per-shard state and cumulative counters.
func (e *Engine) Stats() EngineStats {
	st := EngineStats{
		FlushedBytes: e.Metrics.FlushedBytes.Load(),
		Flushes:      e.Metrics.Flushes.Load(),
		Compactions:  e.Metrics.Compactions.Load(),
		RangePurges:  e.Metrics.RangePurges.Load(),
	}
	for _, s := range e.shards {
		s.mu.RLock()
		sh := ShardStats{
			Shard:           s.id,
			MemtableBytes:   s.mem.Bytes(),
			FrozenMemtables: len(s.frozen),
			SSTables:        len(s.tables),
		}
		for _, fm := range s.frozen {
			sh.FrozenBytes += fm.mem.Bytes()
		}
		s.mu.RUnlock()
		st.Shards = append(st.Shards, sh)
		st.MemtableBytes += sh.MemtableBytes + sh.FrozenBytes
		st.FrozenMemtables += sh.FrozenMemtables
		st.SSTables += sh.SSTables
	}
	return st
}
