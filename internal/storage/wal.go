package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"scalekv/internal/enc"
	"scalekv/internal/row"
)

// walRecord ops. walPut and walDelete are the legacy (pre-versioning)
// revision: no version, and walDelete meant "remove from the active
// memtable". walPutV2 is the current revision: every record carries the
// cell version and a flags byte (tombstones are just flagged puts). The
// engine only writes v2 records; replay still accepts both revisions so
// segments written before the format change stay recoverable.
const (
	walPut    = byte(1)
	walDelete = byte(2)
	walPutV2  = byte(3)
)

const walFlagTombstone = byte(1)

// walRec is one replayed record, already normalized across revisions.
type walRec struct {
	op        byte
	pk        string
	ck, value []byte
	ver       row.Version
	tombstone bool
}

// wal is one write-ahead-log segment: length-prefixed, CRC-protected
// records. Each shard appends to an active segment; freezing the
// memtable seals the segment, and the background flusher deletes it
// once the SSTable is durable. On open every surviving segment is
// replayed, oldest first. A torn tail (partial last record after a
// crash) is tolerated and discarded, matching commit-log semantics.
type wal struct {
	f    *os.File
	path string
	buf  []byte
}

func openWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	return &wal{f: f, path: path}, nil
}

func (w *wal) append(pk string, ck, value []byte, ver row.Version, tombstone bool) error {
	w.buf = w.buf[:0]
	w.buf = appendRecordV2(w.buf, pk, ck, value, ver, tombstone)
	_, err := w.f.Write(w.buf)
	return err
}

// appendBatch writes one record per entry through a single buffered
// write — the group-commit half of Engine.PutBatch. Each record keeps
// its own header and CRC, so replay needs no batch framing and a torn
// tail still truncates at a record boundary. Entries must already be
// stamped with their versions.
func (w *wal) appendBatch(entries []row.Entry) error {
	w.buf = w.buf[:0]
	for _, e := range entries {
		w.buf = appendRecordV2(w.buf, e.PK, e.CK, e.Value, e.Ver, e.Tombstone)
	}
	_, err := w.f.Write(w.buf)
	return err
}

// appendRecordV2 encodes one framed record: length | crc | payload,
// where the payload is op | pk | ck | value | seq | node | flags.
func appendRecordV2(out []byte, pk string, ck, value []byte, ver row.Version, tombstone bool) []byte {
	start := len(out)
	out = append(out, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	out = append(out, walPutV2)
	out = enc.AppendBytes(out, []byte(pk))
	out = enc.AppendBytes(out, ck)
	out = enc.AppendBytes(out, value)
	out = enc.AppendUvarint(out, ver.Seq)
	out = enc.AppendUvarint(out, uint64(ver.Node))
	flags := byte(0)
	if tombstone {
		flags = walFlagTombstone
	}
	out = append(out, flags)
	payload := out[start+8:]
	binary.LittleEndian.PutUint32(out[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[start+4:], crc32.ChecksumIEEE(payload))
	return out
}

func (w *wal) sync() error  { return w.f.Sync() }
func (w *wal) close() error { return w.f.Close() }

// replayWAL streams every intact record to fn, stopping silently at a
// torn tail. Legacy records come through with op walPut/walDelete and a
// zero version; the caller assigns replay versions (openShard stamps
// them in record order, which preserves the original within-segment
// ordering including delete-covers-put).
func replayWAL(path string, fn func(rec walRec)) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return nil // clean EOF or torn header: done
		}
		ln := binary.LittleEndian.Uint32(hdr[0:])
		want := binary.LittleEndian.Uint32(hdr[4:])
		if ln > 1<<30 {
			return nil // implausible length: torn tail
		}
		payload := make([]byte, ln)
		if _, err := io.ReadFull(f, payload); err != nil {
			return nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != want {
			return nil // corrupt tail record
		}
		rec := walRec{op: payload[0]}
		p := payload[1:]
		pkb, u := enc.Bytes(p)
		if u == 0 {
			return nil
		}
		p = p[u:]
		ck, u2 := enc.Bytes(p)
		if u2 == 0 {
			return nil
		}
		p = p[u2:]
		val, u3 := enc.Bytes(p)
		if u3 == 0 {
			return nil
		}
		p = p[u3:]
		rec.pk, rec.ck, rec.value = string(pkb), ck, val
		if rec.op == walPutV2 {
			seq, n1 := enc.Uvarint(p)
			if n1 <= 0 {
				return nil
			}
			p = p[n1:]
			node, n2 := enc.Uvarint(p)
			if n2 <= 0 {
				return nil
			}
			p = p[n2:]
			if len(p) == 0 {
				return nil
			}
			rec.ver = row.Version{Seq: seq, Node: uint16(node)}
			rec.tombstone = p[0]&walFlagTombstone != 0
		}
		fn(rec)
	}
}
