package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"scalekv/internal/enc"
	"scalekv/internal/row"
)

// walRecord ops.
const (
	walPut    = byte(1)
	walDelete = byte(2)
)

// wal is one write-ahead-log segment: length-prefixed, CRC-protected
// records. Each shard appends to an active segment; freezing the
// memtable seals the segment, and the background flusher deletes it
// once the SSTable is durable. On open every surviving segment is
// replayed, oldest first. A torn tail (partial last record after a
// crash) is tolerated and discarded, matching commit-log semantics.
type wal struct {
	f    *os.File
	path string
	buf  []byte
}

func openWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	return &wal{f: f, path: path}, nil
}

func (w *wal) append(op byte, pk string, ck, value []byte) error {
	w.buf = w.buf[:0]
	w.buf = appendRecord(w.buf, op, pk, ck, value)
	_, err := w.f.Write(w.buf)
	return err
}

// appendBatch writes one record per entry through a single buffered
// write — the group-commit half of Engine.PutBatch. Each record keeps
// its own header and CRC, so replay needs no batch framing and a torn
// tail still truncates at a record boundary.
func (w *wal) appendBatch(entries []row.Entry) error {
	w.buf = w.buf[:0]
	for _, e := range entries {
		w.buf = appendRecord(w.buf, walPut, e.PK, e.CK, e.Value)
	}
	_, err := w.f.Write(w.buf)
	return err
}

// appendRecord encodes one framed record: length | crc | payload.
func appendRecord(out []byte, op byte, pk string, ck, value []byte) []byte {
	start := len(out)
	out = append(out, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	out = append(out, op)
	out = enc.AppendBytes(out, []byte(pk))
	out = enc.AppendBytes(out, ck)
	out = enc.AppendBytes(out, value)
	payload := out[start+8:]
	binary.LittleEndian.PutUint32(out[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[start+4:], crc32.ChecksumIEEE(payload))
	return out
}

func (w *wal) sync() error  { return w.f.Sync() }
func (w *wal) close() error { return w.f.Close() }

// replayWAL streams every intact record to fn, stopping silently at a
// torn tail.
func replayWAL(path string, fn func(op byte, pk string, ck, value []byte)) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return nil // clean EOF or torn header: done
		}
		ln := binary.LittleEndian.Uint32(hdr[0:])
		want := binary.LittleEndian.Uint32(hdr[4:])
		if ln > 1<<30 {
			return nil // implausible length: torn tail
		}
		payload := make([]byte, ln)
		if _, err := io.ReadFull(f, payload); err != nil {
			return nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != want {
			return nil // corrupt tail record
		}
		op := payload[0]
		p := payload[1:]
		pkb, u := enc.Bytes(p)
		if u == 0 {
			return nil
		}
		p = p[u:]
		ck, u2 := enc.Bytes(p)
		if u2 == 0 {
			return nil
		}
		p = p[u2:]
		val, u3 := enc.Bytes(p)
		if u3 == 0 {
			return nil
		}
		fn(op, string(pkb), ck, val)
	}
}
