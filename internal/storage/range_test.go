package storage

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"

	"scalekv/internal/row"
)

// rangeTestLoad ingests nParts partitions of cellsPer cells each and
// returns the partition keys sorted by (token, pk) — the order ScanRange
// must produce.
func rangeTestLoad(t *testing.T, e *Engine, nParts, cellsPer int) []string {
	t.Helper()
	pks := make([]string, nParts)
	for p := 0; p < nParts; p++ {
		pk := fmt.Sprintf("part-%04d", p)
		pks[p] = pk
		for c := 0; c < cellsPer; c++ {
			if err := e.Put(pk, ck(c), []byte(fmt.Sprintf("%s/%d", pk, c))); err != nil {
				t.Fatal(err)
			}
		}
	}
	sort.Slice(pks, func(a, b int) bool {
		ta, tb := PartitionToken(pks[a]), PartitionToken(pks[b])
		if ta != tb {
			return ta < tb
		}
		return pks[a] < pks[b]
	})
	return pks
}

func TestScanRangeFullSpaceTokenOrdered(t *testing.T) {
	e := openTest(t, Options{})
	pks := rangeTestLoad(t, e, 40, 5)
	page, err := e.ScanRange(math.MinInt64, math.MaxInt64, math.MinInt64, "", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if page.More {
		t.Fatal("single huge page reported More")
	}
	if len(page.Entries) != 40*5 {
		t.Fatalf("scanned %d cells want %d", len(page.Entries), 200)
	}
	// Partitions must appear in (token, pk) order, contiguously.
	var seen []string
	for _, ent := range page.Entries {
		if len(seen) == 0 || seen[len(seen)-1] != ent.PK {
			seen = append(seen, ent.PK)
		}
	}
	if len(seen) != len(pks) {
		t.Fatalf("saw %d partitions want %d", len(seen), len(pks))
	}
	for i := range pks {
		if seen[i] != pks[i] {
			t.Fatalf("position %d: %s want %s (token order violated)", i, seen[i], pks[i])
		}
	}
}

func TestScanRangePagination(t *testing.T) {
	e := openTest(t, Options{})
	rangeTestLoad(t, e, 30, 7)
	// Flush half so pages merge memtable + SSTable sources.
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	rangeTestLoad(t, e, 30, 7) // overwrite same cells; dedup must hold

	var got []string
	afterTok, afterPK := int64(math.MinInt64), ""
	pages := 0
	for {
		page, err := e.ScanRange(math.MinInt64, math.MaxInt64, afterTok, afterPK, 20)
		if err != nil {
			t.Fatal(err)
		}
		pages++
		for _, ent := range page.Entries {
			got = append(got, ent.PK+"/"+string(ent.CK))
		}
		if !page.More {
			break
		}
		afterTok, afterPK = page.NextToken, page.NextPK
		if pages > 100 {
			t.Fatal("pagination did not terminate")
		}
	}
	if pages < 2 {
		t.Fatalf("expected multiple pages, got %d", pages)
	}
	if len(got) != 30*7 {
		t.Fatalf("paged scan yielded %d cells want %d (duplicates or losses)", len(got), 210)
	}
	dedup := map[string]bool{}
	for _, k := range got {
		if dedup[k] {
			t.Fatalf("cell %s appeared twice across pages", k)
		}
		dedup[k] = true
	}
}

func TestScanRangeRespectsBounds(t *testing.T) {
	e := openTest(t, Options{})
	pks := rangeTestLoad(t, e, 32, 3)
	// Use the median partition token as a split point.
	mid := PartitionToken(pks[len(pks)/2])
	low, err := e.ScanRange(math.MinInt64, mid, math.MinInt64, "", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	high, err := e.ScanRange(mid+1, math.MaxInt64, math.MinInt64, "", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(low.Entries)+len(high.Entries) != 32*3 {
		t.Fatalf("split scan covers %d+%d cells want %d", len(low.Entries), len(high.Entries), 96)
	}
	for _, ent := range low.Entries {
		if PartitionToken(ent.PK) > mid {
			t.Fatalf("low scan leaked token above mid: %s", ent.PK)
		}
	}
	for _, ent := range high.Entries {
		if PartitionToken(ent.PK) <= mid {
			t.Fatalf("high scan leaked token at/below mid: %s", ent.PK)
		}
	}
}

func TestDeleteRangeRetiresPartitions(t *testing.T) {
	e := openTest(t, Options{})
	pks := rangeTestLoad(t, e, 24, 4)
	mid := PartitionToken(pks[len(pks)/2])

	inRange := func(pk string) bool { return PartitionToken(pk) <= mid }
	var wantRemoved int64
	for _, pk := range pks {
		if inRange(pk) {
			wantRemoved += 4
		}
	}

	removed, err := e.DeleteRange(math.MinInt64, mid)
	if err != nil {
		t.Fatal(err)
	}
	if removed != wantRemoved {
		t.Fatalf("DeleteRange removed %d cells want %d", removed, wantRemoved)
	}
	// Retired partitions are gone through every read path.
	for _, pk := range pks {
		cells, err := e.ScanPartition(pk, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if inRange(pk) && len(cells) != 0 {
			t.Fatalf("retired partition %s still readable (%d cells)", pk, len(cells))
		}
		if !inRange(pk) && len(cells) != 4 {
			t.Fatalf("surviving partition %s lost cells: %d", pk, len(cells))
		}
	}
	page, err := e.ScanRange(math.MinInt64, mid, math.MinInt64, "", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Entries) != 0 {
		t.Fatalf("ScanRange still sees %d cells in the retired range", len(page.Entries))
	}
	if e.Stats().RangePurges == 0 {
		t.Fatal("no purge recorded in stats")
	}
	// Second delete of the same range is a no-op.
	removed, err = e.DeleteRange(math.MinInt64, mid)
	if err != nil || removed != 0 {
		t.Fatalf("re-delete removed %d, err %v", removed, err)
	}
}

func TestDeleteRangeEverythingLeavesEmptyShards(t *testing.T) {
	e := openTest(t, Options{})
	rangeTestLoad(t, e, 16, 2)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	removed, err := e.DeleteRange(math.MinInt64, math.MaxInt64)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 32 {
		t.Fatalf("removed %d want 32", removed)
	}
	if got := e.Partitions(); len(got) != 0 {
		t.Fatalf("%d partitions survive a full-space delete", len(got))
	}
	if n := e.Stats().SSTables; n != 0 {
		t.Fatalf("%d sstables survive a full-space delete", n)
	}
	// The engine stays writable afterwards.
	if err := e.Put("fresh", ck(0), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := e.Get("fresh", ck(0)); !ok {
		t.Fatal("write after full purge lost")
	}
}

func TestConcurrentDeleteRangesBothApply(t *testing.T) {
	// Two DeleteRanges racing on the same shards: neither request may be
	// dropped (the worker must not clear a purge request it does not
	// own), and both report their own removed counts.
	e := openTest(t, Options{Shards: 2})
	pks := rangeTestLoad(t, e, 40, 3)
	mid := PartitionToken(pks[len(pks)/2])

	var wg sync.WaitGroup
	removed := make([]int64, 2)
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); removed[0], errs[0] = e.DeleteRange(math.MinInt64, mid) }()
	go func() { defer wg.Done(); removed[1], errs[1] = e.DeleteRange(mid+1, math.MaxInt64) }()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	if total := removed[0] + removed[1]; total != int64(40*3) {
		t.Fatalf("concurrent deletes removed %d cells want %d (%v)", total, 120, removed)
	}
	if got := e.Partitions(); len(got) != 0 {
		t.Fatalf("%d partitions survived two covering deletes", len(got))
	}
}

func TestCountRange(t *testing.T) {
	e := openTest(t, Options{})
	pks := rangeTestLoad(t, e, 10, 6)
	mid := PartitionToken(pks[4])
	var want int64
	for _, pk := range pks {
		if PartitionToken(pk) <= mid {
			want += 6
		}
	}
	got, err := e.CountRange(math.MinInt64, mid)
	if err != nil || got != want {
		t.Fatalf("CountRange = %d, %v want %d", got, err, want)
	}
}

func TestStatsTracksShardsAndFlushes(t *testing.T) {
	e := openTest(t, Options{Shards: 4})
	rangeTestLoad(t, e, 20, 10)
	st := e.Stats()
	if len(st.Shards) != 4 {
		t.Fatalf("stats over %d shards want 4", len(st.Shards))
	}
	if st.MemtableBytes == 0 {
		t.Fatal("ingested data but MemtableBytes is zero")
	}
	if st.MemtableBytes != e.MemtableBytes() {
		t.Fatalf("stats memtable bytes %d != engine %d", st.MemtableBytes, e.MemtableBytes())
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.Flushes == 0 || st.FlushedBytes == 0 {
		t.Fatalf("flush not reflected: flushes=%d bytes=%d", st.Flushes, st.FlushedBytes)
	}
	if st.SSTables != e.NumSSTables() {
		t.Fatalf("stats sstables %d != engine %d", st.SSTables, e.NumSSTables())
	}
	if st.MemtableBytes != 0 {
		t.Fatalf("flushed engine still reports %d memtable bytes", st.MemtableBytes)
	}
}

func TestSyncModesDurable(t *testing.T) {
	for _, mode := range []SyncMode{SyncNever, SyncOnSeal, SyncAlways} {
		t.Run(fmt.Sprintf("mode=%d", mode), func(t *testing.T) {
			dir := t.TempDir()
			e, err := Open(Options{Dir: dir, Sync: mode})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 50; i++ {
				if err := e.Put(fmt.Sprintf("p%d", i%5), ck(i), []byte{byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
			var entries []row.Entry
			for p := 0; p < 3; p++ {
				for c := 0; c < 10; c++ {
					entries = append(entries, row.Entry{
						PK: fmt.Sprintf("batch-%d", p), CK: ck(c), Value: []byte{byte(p), byte(c)},
					})
				}
			}
			if err := e.PutBatch(entries); err != nil {
				t.Fatal(err)
			}
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			// Reopen: all data must replay, whatever the sync policy.
			re, err := Open(Options{Dir: dir, Sync: mode})
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			for i := 0; i < 50; i++ {
				v, ok, err := re.Get(fmt.Sprintf("p%d", i%5), ck(i))
				if err != nil || !ok || v[0] != byte(i) {
					t.Fatalf("cell %d lost after reopen: %v %v %v", i, v, ok, err)
				}
			}
			for _, ent := range entries {
				if _, ok, _ := re.Get(ent.PK, ent.CK); !ok {
					t.Fatalf("batch cell %s/%s lost after reopen", ent.PK, ent.CK)
				}
			}
		})
	}
}
