package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"scalekv/internal/row"
	"scalekv/internal/sstable"
)

// writeTableFile drops a raw SSTable of the given format into dir under
// name, bypassing the engine — simulating tables left by earlier
// engine generations.
func writeTableFile(t *testing.T, dir, name string, format int, parts map[string][]row.Cell) {
	t.Helper()
	w, err := sstable.NewWriter(filepath.Join(dir, name), sstable.WriterOptions{FormatVersion: format})
	if err != nil {
		t.Fatal(err)
	}
	pks := make([]string, 0, len(parts))
	for pk := range parts {
		pks = append(pks, pk)
	}
	for i := 0; i < len(pks); i++ {
		for j := i + 1; j < len(pks); j++ {
			if pks[j] < pks[i] {
				pks[i], pks[j] = pks[j], pks[i]
			}
		}
	}
	for _, pk := range pks {
		if err := w.AddPartition(pk, parts[pk]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCompatMatrixV1V2V3 opens a shard holding a v1, a v2 and (after a
// flush) a v3 table side by side: reads must merge all three by
// version, the reopened counter must run past the v2 table's max-seq,
// and a compaction must rewrite every surviving table to v3.
func TestCompatMatrixV1V2V3(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "SHARDS"), []byte("1 v2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// v1: unversioned cells, the oldest generation.
	writeTableFile(t, dir, "sst-s00-000000.db", 1, map[string][]row.Cell{
		"alpha": {{CK: ck(1), Value: []byte("v1-a1")}, {CK: ck(2), Value: []byte("v1-a2")}},
		"gamma": {{CK: ck(1), Value: []byte("v1-g1")}},
	})
	// v2: versioned cells; ck(1) of alpha overwritten, beta introduced,
	// and a tombstone masking gamma's v1 cell.
	writeTableFile(t, dir, "sst-s00-000001.db", 2, map[string][]row.Cell{
		"alpha": {{CK: ck(1), Value: []byte("v2-a1"), Ver: row.Version{Seq: 40, Node: 1}}},
		"beta":  {{CK: ck(1), Value: []byte("v2-b1"), Ver: row.Version{Seq: 41, Node: 1}}},
		"gamma": {{CK: ck(1), Ver: row.Version{Seq: 42, Node: 1}, Tombstone: true}},
	})

	e, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// Counter restored from the v2 table's max-seq: this put must stamp
	// above 42 and win over everything.
	if err := e.Put("alpha", ck(2), []byte("v3-a2")); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil { // the v3 table joins the shard
		t.Fatal(err)
	}

	check := func(stage string) {
		t.Helper()
		for _, tc := range []struct {
			pk   string
			ck   int
			want string
			ok   bool
		}{
			{"alpha", 1, "v2-a1", true}, // v2 beats v1
			{"alpha", 2, "v3-a2", true}, // v3 beats v1
			{"beta", 1, "v2-b1", true},  // v2-only survives
			{"gamma", 1, "", false},     // v2 tombstone masks v1
		} {
			v, ok, err := e.Get(tc.pk, ck(tc.ck))
			if err != nil {
				t.Fatalf("%s: get %s/%d: %v", stage, tc.pk, tc.ck, err)
			}
			if ok != tc.ok || (ok && string(v) != tc.want) {
				t.Fatalf("%s: %s/%d = %q,%v want %q,%v", stage, tc.pk, tc.ck, v, ok, tc.want, tc.ok)
			}
		}
	}
	check("mixed formats")

	formats := func() map[int]int {
		names, _ := filepath.Glob(filepath.Join(dir, "sst-*.db"))
		got := map[int]int{}
		for _, name := range names {
			r, err := sstable.Open(name)
			if err != nil {
				t.Fatalf("open %s: %v", name, err)
			}
			got[r.Format()]++
			r.Close()
		}
		return got
	}
	before := formats()
	if before[1] != 1 || before[2] != 1 || before[3] != 1 {
		t.Fatalf("format census before compact: %v, want one of each", before)
	}

	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	check("after compact")
	after := formats()
	if after[1] != 0 || after[2] != 0 || after[3] == 0 {
		t.Fatalf("compaction left non-v3 tables: %v", after)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	e = e2
	check("after reopen")
	e2.Close()
}

// TestCompactRewritesSingleLegacyTable: Engine.Compact must rewrite a
// lone v1 table to v3 even though there is nothing to merge it with.
func TestCompactRewritesSingleLegacyTable(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "SHARDS"), []byte("1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	writeTableFile(t, dir, "sst-s00-000000.db", 1, map[string][]row.Cell{
		"p": {{CK: ck(1), Value: []byte("v")}},
	})
	e, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	names, _ := filepath.Glob(filepath.Join(dir, "sst-*.db"))
	if len(names) != 1 {
		t.Fatalf("%d tables after compact, want 1", len(names))
	}
	r, err := sstable.Open(names[0])
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Format() != 3 {
		t.Fatalf("compact left a v%d table", r.Format())
	}
	if v, ok, _ := e.Get("p", ck(1)); !ok || string(v) != "v" {
		t.Fatalf("cell lost in rewrite: %q,%v", v, ok)
	}
}

// TestLeveledCompactionPromotes: sustained flushes under a small L0
// threshold must push data into L1+ and keep L0 at or under the
// threshold once idle, with the write-amp counters moving.
func TestLeveledCompactionPromotes(t *testing.T) {
	e := openTest(t, Options{Shards: 1, CompactAfter: 2})
	for gen := 0; gen < 10; gen++ {
		for i := 0; i < 50; i++ {
			if err := e.Put(fmt.Sprintf("p%03d", i), ck(gen), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if len(st.Levels) < 2 || st.Levels[1].Tables == 0 {
		t.Fatalf("no data promoted to L1: levels %+v", st.Levels)
	}
	if st.Levels[0].Tables > 2 {
		t.Fatalf("idle L0 holds %d tables, threshold 2", st.Levels[0].Tables)
	}
	if st.CompactionBytesIn == 0 || st.CompactionBytesOut == 0 {
		t.Fatalf("compaction byte counters flat: in=%d out=%d", st.CompactionBytesIn, st.CompactionBytesOut)
	}
	// Every cell survives the promotions.
	for i := 0; i < 50; i++ {
		cells, err := e.ScanPartition(fmt.Sprintf("p%03d", i), nil, nil)
		if err != nil || len(cells) != 10 {
			t.Fatalf("p%03d: %d cells, err %v; want 10", i, len(cells), err)
		}
	}
}

// TestManifestOrphanSweep: a table renamed into place whose manifest
// commit never happened (crash window) must be swept on reopen, not
// loaded — its data is still covered by the compaction inputs the
// manifest lists.
func TestManifestOrphanSweep(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Put("p", ck(1), []byte("real")); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Forge an orphan: a valid table no manifest lists, with a doomed
	// cell that must never become visible.
	orphan := filepath.Join(dir, "sst-s00-009999.db")
	w, err := sstable.NewWriter(orphan, sstable.WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddPartition("p", []row.Cell{{CK: ck(2), Value: []byte("ghost"), Ver: row.Version{Seq: 999}}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphan table survived reopen")
	}
	if _, ok, _ := e2.Get("p", ck(2)); ok {
		t.Fatal("orphan table's cell became visible")
	}
	if v, ok, _ := e2.Get("p", ck(1)); !ok || string(v) != "real" {
		t.Fatalf("manifest-listed data lost: %q,%v", v, ok)
	}
}

// TestManifestMissingTableFailsLoudly: a manifest listing a table the
// directory lacks is unrecoverable loss; Open must fail, not present a
// silently incomplete store.
func TestManifestMissingTableFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Put("p", ck(1), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := filepath.Glob(filepath.Join(dir, "sst-*.db"))
	if len(names) != 1 {
		t.Fatalf("%d tables, want 1", len(names))
	}
	os.Remove(names[0])
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("opened a store whose manifest lists a missing table")
	}
}

// TestLevelLayoutSurvivesReopen: the manifest must restore tables to
// the levels compaction assigned them, not dump everything back to L0.
func TestLevelLayoutSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, Shards: 1, CompactAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	for gen := 0; gen < 5; gen++ {
		if err := e.Put("p", ck(gen), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	want := e.Stats().Levels
	if len(want) < 2 {
		t.Fatalf("no promotion happened: %+v", want)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	got := e2.Stats().Levels
	if len(got) != len(want) {
		t.Fatalf("level count changed across reopen: %+v vs %+v", got, want)
	}
	for i := range want {
		if got[i].Tables != want[i].Tables {
			t.Fatalf("level %d: %d tables after reopen, was %d", i, got[i].Tables, want[i].Tables)
		}
	}
	cells, err := e2.ScanPartition("p", nil, nil)
	if err != nil || len(cells) != 5 {
		t.Fatalf("reopen lost cells: %d, %v", len(cells), err)
	}
}
