package storage

import "scalekv/internal/sstable"

// crashForTest simulates a kill -9: background workers are abandoned
// before they can touch disk again, WAL files are closed without a
// flush, and the engine is left unusable. The data directory afterwards
// is exactly what a crashed process leaves behind, so reopening it
// exercises per-shard WAL replay.
func crashForTest(e *Engine) {
	e.closed.Store(true)
	for _, s := range e.shards {
		s.mu.Lock()
		s.closing = true
		s.abandoned = true
		if s.wal != nil {
			s.wal.sync()
			s.wal.close()
			s.wal = nil
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// cellOnlyInActiveMem reports whether (pk, ck) lives in the shard's
// active memtable and nowhere else — the precondition under which
// Delete fully hides the cell (the engine has no tombstones; frozen
// memtables and SSTables are not masked).
func cellOnlyInActiveMem(e *Engine, pk string, ck []byte) bool {
	view := e.shardFor(pk).snapshot()
	defer view.close()
	if _, ok := view.mem.Get(pk, ck); !ok {
		return false
	}
	for _, fm := range view.frozen {
		if _, ok := fm.mem.Get(pk, ck); ok {
			return false
		}
	}
	for _, t := range view.tables {
		if !t.MayContain(pk) {
			continue
		}
		cells, err := t.ReadSlice(pk, ck, nextKey(ck))
		if err == sstable.ErrNotFound {
			continue
		}
		if err != nil || len(cells) > 0 {
			return false
		}
	}
	return true
}

// frozenCount returns how many memtables are queued for flush across
// all shards.
func frozenCount(e *Engine) int {
	n := 0
	for _, s := range e.shards {
		s.mu.RLock()
		n += len(s.frozen)
		s.mu.RUnlock()
	}
	return n
}
