package storage

// crashForTest simulates a kill -9: background workers are abandoned
// before they can touch disk again, WAL files are closed without a
// flush, and the engine is left unusable. The data directory afterwards
// is exactly what a crashed process leaves behind, so reopening it
// exercises per-shard WAL replay.
func crashForTest(e *Engine) {
	e.closed.Store(true)
	for _, s := range e.shards {
		s.mu.Lock()
		s.closing = true
		s.abandoned = true
		if s.wal != nil {
			s.wal.sync()
			s.wal.close()
			s.wal = nil
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// frozenCount returns how many memtables are queued for flush across
// all shards.
func frozenCount(e *Engine) int {
	n := 0
	for _, s := range e.shards {
		s.mu.RLock()
		n += len(s.frozen)
		s.mu.RUnlock()
	}
	return n
}
