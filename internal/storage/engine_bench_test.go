package storage

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// BenchmarkEngineMixedParallel measures concurrent Get+Put throughput
// (3 reads per write) on one engine — the lock-contention profile the
// sharded design exists for. shards=1 reproduces the old single-lock
// engine's locking discipline; the spread between the sub-benchmarks is
// the striping win and it grows with GOMAXPROCS (on one core the two
// mostly tie: a single CPU does the same total work either way). Keys
// are precomputed and reads stay memtable-resident so the lock, not
// fmt or the SSTable decoder, dominates the measurement; the flush
// threshold still lets background flushes fire under write pressure.
func BenchmarkEngineMixedParallel(b *testing.B) {
	const parts = 64
	pks := make([]string, parts)
	for p := range pks {
		pks[p] = fmt.Sprintf("part-%02d", p)
	}
	cks := make([][]byte, 4096)
	for i := range cks {
		cks[i] = []byte(fmt.Sprintf("ck%06d", i))
	}
	val := make([]byte, 128)

	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			e, err := Open(Options{
				Dir:            b.TempDir(),
				DisableWAL:     true,
				Shards:         shards,
				FlushThreshold: 8 << 20,
				CompactAfter:   64, // keep compaction out of the measurement
			})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			for _, pk := range pks {
				for i := 0; i < 512; i++ {
					if err := e.Put(pk, cks[i], val); err != nil {
						b.Fatal(err)
					}
				}
			}
			var goroutine atomic.Int64
			var benchErr atomic.Pointer[error] // Fatal must not run on a RunParallel worker
			b.SetParallelism(4)                // ≥4 concurrent clients even on small GOMAXPROCS
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Distinct per-goroutine offsets keep writers from
				// colliding on one partition while every partition stays
				// shared with the readers.
				i := int(goroutine.Add(1)) * 7919
				for pb.Next() {
					pk := pks[i%parts]
					var err error
					if i%4 == 0 {
						err = e.Put(pk, cks[i%len(cks)], val)
					} else {
						_, _, err = e.Get(pk, cks[i%512])
					}
					if err != nil {
						benchErr.CompareAndSwap(nil, &err)
						return
					}
					i++
				}
			})
			b.StopTimer()
			if errp := benchErr.Load(); errp != nil {
				b.Fatal(*errp)
			}
			if err := e.WaitIdle(); err != nil {
				b.Fatal(err)
			}
			opsPerSec := float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(opsPerSec, "ops/sec")
		})
	}
}

// BenchmarkEngineMixedDelete adds deletes to the mix — 2 Get : 1 Put :
// 1 Delete — measuring the tombstone write path and the versioned merge
// under read/write/delete interleaving (`make bench-delete`). Deletes
// hit recently written clustering keys, so tombstones actually mask
// live cells instead of landing on empty addresses.
func BenchmarkEngineMixedDelete(b *testing.B) {
	const parts = 64
	pks := make([]string, parts)
	for p := range pks {
		pks[p] = fmt.Sprintf("part-%02d", p)
	}
	cks := make([][]byte, 4096)
	for i := range cks {
		cks[i] = []byte(fmt.Sprintf("ck%06d", i))
	}
	val := make([]byte, 128)

	e, err := Open(Options{
		Dir:            b.TempDir(),
		DisableWAL:     true,
		FlushThreshold: 8 << 20,
		CompactAfter:   64,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	for _, pk := range pks {
		for i := 0; i < 512; i++ {
			if err := e.Put(pk, cks[i], val); err != nil {
				b.Fatal(err)
			}
		}
	}
	var goroutine atomic.Int64
	var benchErr atomic.Pointer[error]
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(goroutine.Add(1)) * 7919
		for pb.Next() {
			pk := pks[i%parts]
			var err error
			switch i % 4 {
			case 0:
				err = e.Put(pk, cks[i%len(cks)], val)
			case 1:
				err = e.Delete(pk, cks[i%len(cks)])
			default:
				_, _, err = e.Get(pk, cks[i%512])
			}
			if err != nil {
				benchErr.CompareAndSwap(nil, &err)
				return
			}
			i++
		}
	})
	b.StopTimer()
	if errp := benchErr.Load(); errp != nil {
		b.Fatal(*errp)
	}
	if err := e.WaitIdle(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
}
