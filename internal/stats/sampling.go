package stats

import "math/rand"

// Stratum describes one stratum of a stratified sampling plan: the
// half-open value range [Lo, Hi) and how many samples to draw from it.
type Stratum struct {
	Lo, Hi int
	Want   int
}

// StratifiedPlan builds n equal-width strata covering [lo, hi) with `want`
// samples requested from each, mirroring the paper's Figure 6/7 sampling
// ("the same number of random samples for each range of row size").
func StratifiedPlan(lo, hi, n, want int) []Stratum {
	if n < 1 {
		n = 1
	}
	if hi <= lo {
		hi = lo + n
	}
	strata := make([]Stratum, n)
	width := (hi - lo) / n
	if width < 1 {
		width = 1
	}
	for i := range strata {
		sLo := lo + i*width
		sHi := sLo + width
		if i == n-1 {
			sHi = hi
		}
		strata[i] = Stratum{Lo: sLo, Hi: sHi, Want: want}
	}
	return strata
}

// StratifiedSample partitions items by the value function into the given
// strata and picks up to Want random representatives from each, using rng
// for reproducibility. Items outside every stratum are ignored.
func StratifiedSample[T any](items []T, value func(T) int, strata []Stratum, rng *rand.Rand) [][]T {
	byStratum := make([][]T, len(strata))
	for _, it := range items {
		v := value(it)
		for si, s := range strata {
			if v >= s.Lo && v < s.Hi {
				byStratum[si] = append(byStratum[si], it)
				break
			}
		}
	}
	out := make([][]T, len(strata))
	for si, pool := range byStratum {
		want := strata[si].Want
		if want >= len(pool) {
			out[si] = pool
			continue
		}
		// Partial Fisher-Yates: draw `want` distinct items.
		picked := append([]T(nil), pool...)
		for i := 0; i < want; i++ {
			j := i + rng.Intn(len(picked)-i)
			picked[i], picked[j] = picked[j], picked[i]
		}
		out[si] = picked[:want]
	}
	return out
}

// Shuffle permutes items in place using rng.
func Shuffle[T any](items []T, rng *rand.Rand) {
	rng.Shuffle(len(items), func(i, j int) {
		items[i], items[j] = items[j], items[i]
	})
}
