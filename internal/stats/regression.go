// Package stats provides the small statistical toolbox the paper's
// methodology needs: ordinary-least-squares fits (linear and logarithmic),
// piecewise-linear fits with automatic breakpoint search (Formula 6),
// quantiles, histograms and stratified sampling.
//
// Everything is implemented from scratch on the standard library so the
// module stays dependency-free and usable offline.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// Linear is a fitted line y = Intercept + Slope*x together with the
// goodness of fit over the data it was derived from.
type Linear struct {
	Intercept float64
	Slope     float64
	R2        float64
	N         int
}

// Eval returns the fitted value at x.
func (l Linear) Eval(x float64) float64 { return l.Intercept + l.Slope*x }

func (l Linear) String() string {
	return fmt.Sprintf("y = %.4g + %.4g*x (R²=%.3f, n=%d)", l.Intercept, l.Slope, l.R2, l.N)
}

// ErrInsufficientData is returned when a fit is requested over fewer
// points than the model has parameters.
var ErrInsufficientData = errors.New("stats: insufficient data for fit")

// FitLinear computes the ordinary-least-squares line through (xs, ys).
func FitLinear(xs, ys []float64) (Linear, error) {
	if len(xs) != len(ys) {
		return Linear{}, fmt.Errorf("stats: mismatched lengths %d vs %d", len(xs), len(ys))
	}
	n := len(xs)
	if n < 2 {
		return Linear{}, ErrInsufficientData
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Linear{}, errors.New("stats: degenerate fit, all x equal")
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	r2 := 1.0
	if syy > 0 {
		var ssRes float64
		for i := 0; i < n; i++ {
			r := ys[i] - (intercept + slope*xs[i])
			ssRes += r * r
		}
		r2 = 1 - ssRes/syy
	}
	return Linear{Intercept: intercept, Slope: slope, R2: r2, N: n}, nil
}

// LogFit is a fitted curve y = Intercept + Slope*ln(x), the shape of the
// paper's parallelism model (Formula 7).
type LogFit struct {
	Intercept float64
	Slope     float64
	R2        float64
	N         int
}

// Eval returns the fitted value at x; x must be positive.
func (l LogFit) Eval(x float64) float64 { return l.Intercept + l.Slope*math.Log(x) }

func (l LogFit) String() string {
	return fmt.Sprintf("y = %.4g + %.4g*ln(x) (R²=%.3f, n=%d)", l.Intercept, l.Slope, l.R2, l.N)
}

// FitLog computes the least-squares fit of y against ln(x). Points with
// non-positive x are rejected.
func FitLog(xs, ys []float64) (LogFit, error) {
	lx := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return LogFit{}, fmt.Errorf("stats: non-positive x=%g in log fit", x)
		}
		lx[i] = math.Log(x)
	}
	lin, err := FitLinear(lx, ys)
	if err != nil {
		return LogFit{}, err
	}
	return LogFit{Intercept: lin.Intercept, Slope: lin.Slope, R2: lin.R2, N: lin.N}, nil
}

// Piecewise is two lines joined at Break: the left line applies for
// x <= Break, the right line for x > Break. This is the form of the
// paper's database latency model (Formula 6), where the break is the row
// size at which Cassandra's column index starts to exist.
type Piecewise struct {
	Break float64
	Left  Linear
	Right Linear
	// SSE is the total sum of squared residuals at the chosen break.
	SSE float64
}

// Eval returns the fitted value at x.
func (p Piecewise) Eval(x float64) float64 {
	if x > p.Break {
		return p.Right.Eval(x)
	}
	return p.Left.Eval(x)
}

func (p Piecewise) String() string {
	return fmt.Sprintf("x<=%.0f: %s | x>%.0f: %s", p.Break, p.Left, p.Break, p.Right)
}

// FitPiecewise searches candidate breakpoints (each distinct x value,
// excluding the extremes so both sides keep at least minSide points) and
// returns the two-segment fit with the smallest total squared error.
func FitPiecewise(xs, ys []float64, minSide int) (Piecewise, error) {
	if len(xs) != len(ys) {
		return Piecewise{}, fmt.Errorf("stats: mismatched lengths %d vs %d", len(xs), len(ys))
	}
	if minSide < 2 {
		minSide = 2
	}
	if len(xs) < 2*minSide {
		return Piecewise{}, ErrInsufficientData
	}
	// Sort by x without mutating the caller's slices.
	idx := sortedIndex(xs)
	sx := make([]float64, len(xs))
	sy := make([]float64, len(ys))
	for i, j := range idx {
		sx[i] = xs[j]
		sy[i] = ys[j]
	}

	best := Piecewise{SSE: math.Inf(1)}
	found := false
	for cut := minSide; cut <= len(sx)-minSide; cut++ {
		if cut < len(sx) && sx[cut] == sx[cut-1] {
			continue // break must separate distinct x values
		}
		left, errL := FitLinear(sx[:cut], sy[:cut])
		right, errR := FitLinear(sx[cut:], sy[cut:])
		if errL != nil || errR != nil {
			continue
		}
		sse := sumSquaredResiduals(sx[:cut], sy[:cut], left) +
			sumSquaredResiduals(sx[cut:], sy[cut:], right)
		if sse < best.SSE {
			best = Piecewise{Break: sx[cut-1], Left: left, Right: right, SSE: sse}
			found = true
		}
	}
	if !found {
		return Piecewise{}, errors.New("stats: no valid breakpoint")
	}
	return best, nil
}

func sumSquaredResiduals(xs, ys []float64, l Linear) float64 {
	var s float64
	for i := range xs {
		r := ys[i] - l.Eval(xs[i])
		s += r * r
	}
	return s
}

// sortedIndex returns the permutation that sorts xs ascending.
func sortedIndex(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort is fine: fits are over hundreds of points at most.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && xs[idx[j]] < xs[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}
