package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 + 2*x
	}
	l, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(l.Intercept, 3, 1e-9) || !almostEqual(l.Slope, 2, 1e-9) {
		t.Fatalf("got %v want y=3+2x", l)
	}
	if !almostEqual(l.R2, 1, 1e-9) {
		t.Fatalf("R2 = %v want 1", l.R2)
	}
}

func TestFitLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var xs, ys []float64
	for i := 0; i < 500; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 10+0.5*x+rng.NormFloat64())
	}
	l, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(l.Slope, 0.5, 0.01) {
		t.Fatalf("slope %v want ~0.5", l.Slope)
	}
	if !almostEqual(l.Intercept, 10, 0.5) {
		t.Fatalf("intercept %v want ~10", l.Intercept)
	}
	if l.R2 < 0.99 {
		t.Fatalf("R2 %v too low", l.R2)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("want error for single point")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("want error for mismatched lengths")
	}
	if _, err := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("want error for constant x")
	}
}

func TestFitLogRecoversPaperFormula7(t *testing.T) {
	// Generate points from the paper's parallelism model and refit.
	var xs, ys []float64
	for s := 100.0; s <= 10000; s += 250 {
		xs = append(xs, s)
		ys = append(ys, 12.562-1.084*math.Log(s))
	}
	f, err := FitLog(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f.Intercept, 12.562, 1e-6) || !almostEqual(f.Slope, -1.084, 1e-6) {
		t.Fatalf("got %v want paper constants", f)
	}
}

func TestFitLogRejectsNonPositive(t *testing.T) {
	if _, err := FitLog([]float64{0, 1}, []float64{1, 2}); err == nil {
		t.Error("want error for x=0")
	}
}

func TestFitPiecewiseFindsBreak(t *testing.T) {
	// Two segments mimicking Formula 6 with a break at 1425.
	var xs, ys []float64
	for x := 50.0; x <= 10000; x += 50 {
		xs = append(xs, x)
		if x > 1425 {
			ys = append(ys, 0.773+0.0439*x)
		} else {
			ys = append(ys, 1.163+0.0387*x)
		}
	}
	p, err := FitPiecewise(xs, ys, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Break < 1200 || p.Break > 1600 {
		t.Fatalf("break %v, want near 1425", p.Break)
	}
	if !almostEqual(p.Left.Slope, 0.0387, 1e-4) || !almostEqual(p.Right.Slope, 0.0439, 1e-4) {
		t.Fatalf("slopes %v / %v want 0.0387 / 0.0439", p.Left.Slope, p.Right.Slope)
	}
	// Eval must dispatch on the break.
	if !almostEqual(p.Eval(100), 1.163+0.0387*100, 1e-6) {
		t.Errorf("Eval left wrong: %v", p.Eval(100))
	}
	if !almostEqual(p.Eval(5000), 0.773+0.0439*5000, 1e-3) {
		t.Errorf("Eval right wrong: %v", p.Eval(5000))
	}
}

func TestFitPiecewiseUnsortedInput(t *testing.T) {
	xs := []float64{10, 1, 7, 3, 9, 2, 8, 4, 6, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		if x > 5 {
			ys[i] = 100 + x
		} else {
			ys[i] = 2 * x
		}
	}
	p, err := FitPiecewise(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Break < 4 || p.Break > 6 {
		t.Fatalf("break %v want ~5", p.Break)
	}
}

func TestFitPiecewiseInsufficient(t *testing.T) {
	if _, err := FitPiecewise([]float64{1, 2, 3}, []float64{1, 2, 3}, 2); err == nil {
		t.Error("want error for too few points")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if s.N != 10 || !almostEqual(s.Mean, 5.5, 1e-9) {
		t.Fatalf("bad mean summary %+v", s)
	}
	if s.Min != 1 || s.Max != 10 {
		t.Fatalf("bad min/max %+v", s)
	}
	if !almostEqual(s.P50, 5.5, 1e-9) {
		t.Fatalf("P50 = %v want 5.5", s.P50)
	}
	if s.StdDev <= 0 {
		t.Fatal("stddev must be positive")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary should be zero, got %+v", s)
	}
}

func TestQuantileProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		// Quantiles are bounded by min/max and monotone.
		return s.P50 >= s.Min-1e-9 && s.P99 <= s.Max+1e-9 && s.P50 <= s.P95+1e-9 && s.P95 <= s.P99+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i%10) + 0.5)
	}
	for i, c := range h.Buckets {
		if c != 10 {
			t.Fatalf("bucket %d = %d want 10", i, c)
		}
	}
	h.Add(-1)
	h.Add(11)
	if h.Under != 1 || h.Over != 1 {
		t.Fatalf("outliers not tracked: %+v", h)
	}
	if h.Total() != 102 {
		t.Fatalf("total %d want 102", h.Total())
	}
	if d := h.Density(0); !almostEqual(d, 0.1, 1e-9) {
		t.Fatalf("density %v want 0.1", d)
	}
}

func TestHistogramMode(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 50; i++ {
		h.Add(42)
	}
	h.Add(7)
	if m := h.Mode(); m < 40 || m > 50 {
		t.Fatalf("mode %v want in [40,50)", m)
	}
}

func TestStratifiedPlanCoversRange(t *testing.T) {
	strata := StratifiedPlan(0, 10000, 20, 30)
	if len(strata) != 20 {
		t.Fatalf("got %d strata", len(strata))
	}
	if strata[0].Lo != 0 || strata[len(strata)-1].Hi != 10000 {
		t.Fatalf("range not covered: %+v", strata)
	}
	for i := 1; i < len(strata); i++ {
		if strata[i].Lo != strata[i-1].Hi {
			t.Fatalf("gap between strata %d and %d", i-1, i)
		}
	}
}

func TestStratifiedSample(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	items := make([]int, 1000)
	for i := range items {
		items[i] = i
	}
	strata := StratifiedPlan(0, 1000, 10, 5)
	got := StratifiedSample(items, func(v int) int { return v }, strata, rng)
	if len(got) != 10 {
		t.Fatalf("got %d strata", len(got))
	}
	for si, sample := range got {
		if len(sample) != 5 {
			t.Fatalf("stratum %d: %d samples want 5", si, len(sample))
		}
		seen := map[int]bool{}
		for _, v := range sample {
			if v < strata[si].Lo || v >= strata[si].Hi {
				t.Fatalf("stratum %d: sample %d out of range", si, v)
			}
			if seen[v] {
				t.Fatalf("stratum %d: duplicate sample %d", si, v)
			}
			seen[v] = true
		}
	}
}

func TestStratifiedSampleSmallPool(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	items := []int{1, 2}
	strata := []Stratum{{Lo: 0, Hi: 10, Want: 5}}
	got := StratifiedSample(items, func(v int) int { return v }, strata, rng)
	if len(got[0]) != 2 {
		t.Fatalf("want whole pool when pool < want, got %v", got[0])
	}
}

func TestMeanMax(t *testing.T) {
	if Mean(nil) != 0 || MaxFloat(nil) != 0 {
		t.Error("empty-sample helpers must return 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Error("mean wrong")
	}
	if MaxFloat([]float64{2, 9, 4}) != 9 {
		t.Error("max wrong")
	}
}
