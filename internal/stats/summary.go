package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the descriptive statistics of a sample.
type Summary struct {
	N              int
	Mean           float64
	Min, Max       float64
	StdDev         float64
	P50, P95, P99  float64
	Sum            float64
	CoeffVariation float64
}

// Summarize computes descriptive statistics over xs. An empty sample
// yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	if s.Mean != 0 {
		s.CoeffVariation = s.StdDev / s.Mean
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = Quantile(sorted, 0.50)
	s.P95 = Quantile(sorted, 0.95)
	s.P99 = Quantile(sorted, 0.99)
	return s
}

// Quantile returns the q-quantile (0<=q<=1) of an ascending-sorted sample
// using linear interpolation between closest ranks.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := lo + 1
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MaxFloat returns the maximum of xs (and 0 for an empty sample).
func MaxFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Histogram is a fixed-width-bucket frequency count over a closed range.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	// Under and Over count samples outside [Lo, Hi).
	Under, Over int
	total       int
}

// NewHistogram creates a histogram of n equal-width buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 {
		n = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	if x < h.Lo {
		h.Under++
		return
	}
	if x >= h.Hi {
		h.Over++
		return
	}
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
	if i == len(h.Buckets) { // x == Hi-epsilon rounding
		i--
	}
	h.Buckets[i]++
}

// Total returns the number of observations recorded, including outliers.
func (h *Histogram) Total() int { return h.total }

// BucketMid returns the midpoint value of bucket i.
func (h *Histogram) BucketMid(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Buckets))
	return h.Lo + w*(float64(i)+0.5)
}

// Density returns bucket i's share of all in-range observations.
func (h *Histogram) Density(i int) float64 {
	in := h.total - h.Under - h.Over
	if in == 0 {
		return 0
	}
	return float64(h.Buckets[i]) / float64(in)
}

// Mode returns the midpoint of the most populated bucket.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Buckets {
		if c > h.Buckets[best] {
			best = i
		}
	}
	return h.BucketMid(best)
}

func (h *Histogram) String() string {
	return fmt.Sprintf("hist[%g,%g) n=%d buckets=%d under=%d over=%d",
		h.Lo, h.Hi, h.total, len(h.Buckets), h.Under, h.Over)
}
