package sstable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"

	"scalekv/internal/bloom"
	"scalekv/internal/enc"
	"scalekv/internal/row"
)

// This file is the v3 side of the Writer and Reader: block-based data
// with a lazily-loaded block index and partition directory. See the
// package comment for the layout and block.go for the block codec.

// addPartitionV3 streams one partition's cells into the open data
// block, cutting blocks at the target size. A partition that would
// straddle the current block's budget starts a fresh block instead, so
// small partitions stay whole inside one block (and report no
// intra-partition index, matching the v1/v2 column-index threshold
// semantics); large ones span several blocks and can be sliced from the
// middle.
func (w *Writer) addPartitionV3(pk string, cells []row.Cell) error {
	est := 0
	for i := range cells {
		est += len(cells[i].CK) + len(cells[i].Value) + 16
	}
	if !w.block.empty() && w.block.size()+est > w.blockSize {
		if err := w.cutBlock(); err != nil {
			return err
		}
	}
	for i := range cells {
		c := &cells[i]
		w.keyBuf = enc.AppendInternalKey(w.keyBuf[:0], pk, c.CK)
		if w.block.empty() {
			w.blockFirst = append(w.blockFirst[:0], w.keyBuf...)
		}
		w.block.add(w.keyBuf, c.Value, c.Ver, c.Tombstone)
		if c.Ver.Seq > w.maxSeq {
			w.maxSeq = c.Ver.Seq
		}
		if !w.noSplit && w.block.size() >= w.blockSize {
			if err := w.cutBlock(); err != nil {
				return err
			}
		}
	}
	w.entryCount += uint64(len(cells))
	w.parts = append(w.parts, partDirEntry{pk: pk, cells: uint64(len(cells))})
	w.filter.AddString(pk)
	return nil
}

// cutBlock finishes the open block, seals it into its stored form
// (compressing unless the probe says not to), writes it and records its
// index entry.
func (w *Writer) cutBlock() error {
	if w.block.empty() {
		return nil
	}
	payload := w.block.finishEntries()
	stored, _ := sealBlock(payload, w.compression, w.lzTable)
	offset := w.w.count
	if _, err := w.w.Write(stored); err != nil {
		w.err = err
		return err
	}
	w.logicalBytes += int64(len(payload))
	w.storedBytes += int64(len(stored))
	w.blocks = append(w.blocks, blockIndexEntry{
		firstKey: append([]byte(nil), w.blockFirst...),
		offset:   offset,
		length:   uint64(len(stored)),
	})
	w.block.reset()
	return nil
}

// closeV3 writes the block index, partition directory, bloom filter and
// footer.
func (w *Writer) closeV3() error {
	if err := w.cutBlock(); err != nil {
		w.f.Close()
		return err
	}
	blockIdxOff := w.w.count
	var idx []byte
	idx = enc.AppendUvarint(idx, uint64(len(w.blocks)))
	for _, b := range w.blocks {
		idx = enc.AppendBytes(idx, b.firstKey)
		idx = enc.AppendUvarint(idx, b.offset)
		idx = enc.AppendUvarint(idx, b.length)
	}
	var dir []byte
	dir = enc.AppendUvarint(dir, uint64(len(w.parts)))
	for _, p := range w.parts {
		dir = enc.AppendBytes(dir, []byte(p.pk))
		dir = enc.AppendUvarint(dir, p.cells)
	}
	if _, err := w.w.Write(idx); err != nil {
		w.f.Close()
		return err
	}
	partDirOff := w.w.count
	if _, err := w.w.Write(dir); err != nil {
		w.f.Close()
		return err
	}
	bloomOff := w.w.count
	bf := w.filter.Marshal()
	if _, err := w.w.Write(bf); err != nil {
		w.f.Close()
		return err
	}
	metaCRC := crc32.ChecksumIEEE(idx)
	metaCRC = crc32.Update(metaCRC, crc32.IEEETable, dir)

	footer := make([]byte, footerSizeV3)
	binary.LittleEndian.PutUint64(footer[0:], blockIdxOff)
	binary.LittleEndian.PutUint64(footer[8:], partDirOff)
	binary.LittleEndian.PutUint64(footer[16:], bloomOff)
	binary.LittleEndian.PutUint64(footer[24:], w.entryCount)
	binary.LittleEndian.PutUint64(footer[32:], uint64(len(w.parts)))
	binary.LittleEndian.PutUint64(footer[40:], w.maxSeq)
	binary.LittleEndian.PutUint32(footer[48:], metaCRC)
	binary.LittleEndian.PutUint32(footer[52:], crc32.ChecksumIEEE(bf))
	binary.LittleEndian.PutUint32(footer[56:], crc32.ChecksumIEEE(footer[:56]))
	copy(footer[60:], magicV3)
	if _, err := w.w.Write(footer); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// openV3 validates a v3 footer and bloom filter; the block index and
// partition directory stay on disk until loadMeta.
func openV3(f *os.File, size int64) (*Reader, error) {
	footer := make([]byte, footerSizeV3)
	if _, err := f.ReadAt(footer, size-footerSizeV3); err != nil {
		f.Close()
		return nil, err
	}
	if crc32.ChecksumIEEE(footer[:56]) != binary.LittleEndian.Uint32(footer[56:]) {
		f.Close()
		return nil, fmt.Errorf("%w: footer crc mismatch", ErrCorrupt)
	}
	r := &Reader{
		f:           f,
		format:      3,
		size:        size,
		blockIdxOff: binary.LittleEndian.Uint64(footer[0:]),
		partDirOff:  binary.LittleEndian.Uint64(footer[8:]),
		bloomOff:    binary.LittleEndian.Uint64(footer[16:]),
		entryCount:  binary.LittleEndian.Uint64(footer[24:]),
		partCount:   binary.LittleEndian.Uint64(footer[32:]),
		maxSeq:      binary.LittleEndian.Uint64(footer[40:]),
		metaCRC:     binary.LittleEndian.Uint32(footer[48:]),
	}
	dataStart := uint64(len(magic))
	if r.blockIdxOff < dataStart || r.blockIdxOff > r.partDirOff ||
		r.partDirOff > r.bloomOff || r.bloomOff > uint64(size)-footerSizeV3 {
		f.Close()
		return nil, ErrCorrupt
	}
	bloomBuf := make([]byte, uint64(size)-footerSizeV3-r.bloomOff)
	if _, err := f.ReadAt(bloomBuf, int64(r.bloomOff)); err != nil {
		f.Close()
		return nil, err
	}
	if crc32.ChecksumIEEE(bloomBuf) != binary.LittleEndian.Uint32(footer[52:]) {
		f.Close()
		return nil, fmt.Errorf("%w: bloom crc mismatch", ErrCorrupt)
	}
	var err error
	if r.filter, err = bloom.Unmarshal(bloomBuf); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

// loadMeta reads and caches the block index and partition directory —
// one combined ReadAt covering both sections, so the first read of a
// cold table costs exactly one extra I/O. With a block cache attached
// the decoded meta lives under the cache's budget (keyed by table
// identity at a sentinel offset) instead of pinned per-reader memory,
// so open-table index overhead competes with data blocks for RAM and
// can be evicted; without one it is pinned in r.meta as before.
func (r *Reader) loadMeta() (*tableMeta, error) {
	if r.cache != nil {
		if m, ok := r.cache.getMeta(r.cacheID); ok {
			return m, nil
		}
	} else if m := r.meta.Load(); m != nil {
		return m, nil
	}
	r.metaMu.Lock()
	defer r.metaMu.Unlock()
	if r.cache != nil {
		if m, ok := r.cache.getMeta(r.cacheID); ok {
			return m, nil
		}
	} else if m := r.meta.Load(); m != nil {
		return m, nil
	}
	buf := make([]byte, r.bloomOff-r.blockIdxOff)
	if err := r.readAt(buf, int64(r.blockIdxOff)); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(buf) != r.metaCRC {
		return nil, fmt.Errorf("%w: meta crc mismatch", ErrCorrupt)
	}
	m := &tableMeta{}
	p := buf
	nBlocks, u := enc.Uvarint(p)
	if u <= 0 {
		return nil, ErrCorrupt
	}
	p = p[u:]
	m.blocks = make([]blockIndexEntry, 0, nBlocks)
	prevEnd := uint64(len(magic))
	for i := uint64(0); i < nBlocks; i++ {
		fk, u1 := enc.Bytes(p)
		if u1 == 0 {
			return nil, ErrCorrupt
		}
		p = p[u1:]
		off, u2 := enc.Uvarint(p)
		if u2 <= 0 {
			return nil, ErrCorrupt
		}
		p = p[u2:]
		ln, u3 := enc.Uvarint(p)
		if u3 <= 0 {
			return nil, ErrCorrupt
		}
		p = p[u3:]
		// Blocks are contiguous and ascending; anything else is damage.
		if off != prevEnd || ln == 0 || off+ln > r.blockIdxOff {
			return nil, ErrCorrupt
		}
		prevEnd = off + ln
		m.blocks = append(m.blocks, blockIndexEntry{firstKey: fk, offset: off, length: ln})
	}
	nParts, u := enc.Uvarint(p)
	if u <= 0 || nParts != r.partCount {
		return nil, ErrCorrupt
	}
	p = p[u:]
	m.parts = make([]partDirEntry, 0, nParts)
	m.byPK = make(map[string]int, nParts)
	for i := uint64(0); i < nParts; i++ {
		pkb, u1 := enc.Bytes(p)
		if u1 == 0 {
			return nil, ErrCorrupt
		}
		p = p[u1:]
		cells, u2 := enc.Uvarint(p)
		if u2 <= 0 {
			return nil, ErrCorrupt
		}
		p = p[u2:]
		pk := string(pkb)
		if i > 0 && pk <= m.parts[i-1].pk {
			return nil, ErrCorrupt
		}
		m.byPK[pk] = int(i)
		m.parts = append(m.parts, partDirEntry{pk: pk, cells: cells})
	}
	if r.cache != nil {
		r.cache.putMeta(r.cacheID, m)
	} else {
		r.meta.Store(m)
	}
	return m, nil
}

// blockFor returns the index of the last block whose first key is <=
// key (the only block that can contain key), clamped to 0.
func blockFor(blocks []blockIndexEntry, key []byte) int {
	i := sort.Search(len(blocks), func(k int) bool {
		return bytes.Compare(blocks[k].firstKey, key) > 0
	})
	if i > 0 {
		i--
	}
	return i
}

// readBlock fetches one stored data block; decodeStoredBlock verifies
// its CRC.
func (r *Reader) readBlock(b blockIndexEntry) ([]byte, error) {
	buf := make([]byte, b.length)
	if err := r.readAt(buf, int64(b.offset)); err != nil {
		return nil, err
	}
	return buf, nil
}

// blockPayload returns one block's decoded entry payload, serving it
// from the shared cache when possible. A miss reads and decodes the
// stored block; fill says whether the result is then cached — point and
// slice reads fill, the compactor's scan-once iterator only probes, so
// a compaction pass cannot flush the working set out of the cache. The
// returned payload is shared and read-only.
func (r *Reader) blockPayload(b blockIndexEntry, fill bool) ([]byte, error) {
	if r.cache != nil {
		if p, ok := r.cache.getBlock(r.cacheID, b.offset); ok {
			return p, nil
		}
	}
	stored, err := r.readBlock(b)
	if err != nil {
		return nil, err
	}
	payload, err := decodeStoredBlock(stored)
	if err != nil {
		return nil, err
	}
	if r.cache != nil && fill {
		r.cache.putBlock(r.cacheID, b.offset, payload)
	}
	return payload, nil
}

// readSliceV3 is the v3 ReadSlice/ReadPartition: binary-search the
// block index to the first block that can hold the slice start, then
// decode blocks forward until the end bound. A point read therefore
// performs one block ReadAt (plus the one-time lazy meta load).
func (r *Reader) readSliceV3(pk string, from, to []byte) ([]row.Cell, error) {
	m, err := r.loadMeta()
	if err != nil {
		return nil, err
	}
	pi, ok := m.byPK[pk]
	if !ok {
		return nil, ErrNotFound
	}
	r.Stats.PartitionsRead.Add(1)
	want := m.parts[pi].cells
	if want == 0 {
		return nil, nil
	}
	prefix := enc.PartitionPrefix(pk)
	startKey := prefix
	if from != nil {
		startKey = enc.EncodeInternalKey(pk, from)
	}
	endKey := enc.PartitionEnd(pk)
	if to != nil {
		endKey = enc.EncodeInternalKey(pk, to)
	}
	sbi := blockFor(m.blocks, startKey)
	if pbi := blockFor(m.blocks, prefix); sbi > pbi {
		// The block index let the slice skip the partition's leading
		// blocks entirely — the v3 form of the column-index seek. Only
		// blocks that certainly hold this partition's cells (their first
		// key carries its prefix) count as savings: a partition starting
		// exactly at a block boundary must not claim its predecessor's
		// block.
		var skipped int64
		for i := pbi; i < sbi; i++ {
			if bytes.HasPrefix(m.blocks[i].firstKey, prefix) {
				skipped += int64(m.blocks[i].length)
			}
		}
		if skipped > 0 {
			r.Stats.SeeksSaved.Add(skipped)
			r.Stats.IndexedReads.Add(1)
		}
	}
	var cells []row.Cell
	corrupt := false
	for bi := sbi; bi < len(m.blocks); bi++ {
		if bytes.Compare(m.blocks[bi].firstKey, endKey) >= 0 {
			break
		}
		payload, err := r.blockPayload(m.blocks[bi], true)
		if err != nil {
			return nil, err
		}
		done := false
		err = decodeEntries(payload, func(ik, value []byte, ver row.Version, tomb bool) bool {
			if bytes.Compare(ik, startKey) < 0 {
				return true
			}
			if bytes.Compare(ik, endKey) >= 0 {
				done = true
				return false
			}
			// Every key in [prefix, partition end) starts with the
			// partition prefix by construction; a violation means the
			// block's contents disagree with the block index.
			if !bytes.HasPrefix(ik, prefix) {
				corrupt, done = true, true
				return false
			}
			cells = append(cells, row.Cell{
				CK:        append([]byte(nil), ik[len(prefix):]...),
				Value:     append([]byte(nil), value...),
				Ver:       ver,
				Tombstone: tomb,
			})
			return true
		})
		if err != nil {
			return nil, err
		}
		if corrupt {
			return nil, ErrCorrupt
		}
		if done {
			break
		}
	}
	return cells, nil
}

// hasBlockIndexV3 reports whether the partition spans at least two data
// blocks — i.e. a slice can seek past its start via the block index.
// Measured as the number of blocks whose first key carries the
// partition's prefix, so a small partition occupying exactly one block
// (boundary-aligned or not) reports false.
func (r *Reader) hasBlockIndexV3(pk string) (bool, error) {
	m, err := r.loadMeta()
	if err != nil {
		return false, err
	}
	if _, ok := m.byPK[pk]; !ok {
		return false, ErrNotFound
	}
	prefix := enc.PartitionPrefix(pk)
	end := enc.PartitionEnd(pk)
	j0 := sort.Search(len(m.blocks), func(k int) bool {
		return bytes.Compare(m.blocks[k].firstKey, prefix) >= 0
	})
	j1 := sort.Search(len(m.blocks), func(k int) bool {
		return bytes.Compare(m.blocks[k].firstKey, end) >= 0
	})
	return j1-j0 >= 2, nil
}

// PartitionIter streams a table's partitions in ascending key order —
// the compactor's merge source. For v3 tables it decodes each data
// block exactly once, sequentially; for v1/v2 it walks the partition
// index. Not safe for concurrent use.
type PartitionIter struct {
	r   *Reader
	err error
	idx int // next partition

	// v3 streaming state: cells decoded ahead of the cursor.
	meta  *tableMeta
	bi    int // next block to decode
	queue []queuedCell
	qpos  int
}

type queuedCell struct {
	ik   []byte
	cell row.Cell // CK left nil until the partition prefix is stripped
}

// Iter returns a sequential partition iterator over the whole table.
func (r *Reader) Iter() *PartitionIter {
	return &PartitionIter{r: r}
}

// Err returns the first error the iterator hit; Next returns false on
// error, so check Err after the loop.
func (it *PartitionIter) Err() error { return it.err }

// Next yields the next partition and its cells. It returns ok=false at
// the end of the table or on error (see Err).
func (it *PartitionIter) Next() (string, []row.Cell, bool) {
	if it.err != nil {
		return "", nil, false
	}
	if it.r.format != 3 {
		if it.idx >= len(it.r.index) {
			return "", nil, false
		}
		e := it.r.index[it.idx]
		it.idx++
		cells, err := it.r.ReadPartition(e.pk)
		if err != nil {
			it.err = err
			return "", nil, false
		}
		return e.pk, cells, true
	}
	if it.meta == nil {
		m, err := it.r.loadMeta()
		if err != nil {
			it.err = err
			return "", nil, false
		}
		it.meta = m
	}
	if it.idx >= len(it.meta.parts) {
		return "", nil, false
	}
	p := it.meta.parts[it.idx]
	it.idx++
	prefix := enc.PartitionPrefix(p.pk)
	cells := make([]row.Cell, 0, p.cells)
	for uint64(len(cells)) < p.cells {
		if it.qpos >= len(it.queue) {
			if !it.fillQueue() {
				if it.err == nil {
					it.err = ErrCorrupt // directory promised more cells than the blocks hold
				}
				return "", nil, false
			}
		}
		qc := &it.queue[it.qpos]
		if !bytes.HasPrefix(qc.ik, prefix) {
			it.err = ErrCorrupt
			return "", nil, false
		}
		qc.cell.CK = qc.ik[len(prefix):]
		cells = append(cells, qc.cell)
		it.qpos++
	}
	return p.pk, cells, true
}

// fillQueue decodes the next data block into the cell queue.
func (it *PartitionIter) fillQueue() bool {
	if it.bi >= len(it.meta.blocks) {
		return false
	}
	payload, err := it.r.blockPayload(it.meta.blocks[it.bi], false)
	if err != nil {
		it.err = err
		return false
	}
	it.bi++
	it.queue = it.queue[:0]
	it.qpos = 0
	err = decodeEntries(payload, func(ik, value []byte, ver row.Version, tomb bool) bool {
		it.queue = append(it.queue, queuedCell{
			ik: append([]byte(nil), ik...),
			cell: row.Cell{
				Value:     append([]byte(nil), value...),
				Ver:       ver,
				Tombstone: tomb,
			},
		})
		return true
	})
	if err != nil {
		it.err = err
		return false
	}
	return len(it.queue) > 0
}
