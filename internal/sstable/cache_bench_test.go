package sstable

import (
	"fmt"
	"testing"
)

// The working-set benchmarks measure the read-path memory hierarchy
// end to end: a multi-megabyte compressed table read through a block
// cache that either covers the working set (hit path: RAM-speed,
// no I/O, no decompression) or is far smaller than it (miss path:
// every read pays one ReadAt plus an LZ decode). The scan benchmark
// streams the whole compressed table through the partition iterator.

const (
	benchCells   = 40000 // ~10MB logical at 256B values
	benchValSize = 256
)

func buildCacheBenchTable(b *testing.B) string {
	b.Helper()
	path := b.TempDir() + "/cache-bench.sst"
	w, err := NewWriter(path, WriterOptions{})
	if err != nil {
		b.Fatal(err)
	}
	// Several partitions so scans exercise the directory too.
	per := benchCells / 8
	for p := 0; p < 8; p++ {
		cells := repetitiveCells(per, benchValSize)
		if err := w.AddPartition(fmt.Sprintf("part%02d", p), cells); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	return path
}

func benchPointReads(b *testing.B, cacheBytes int64) {
	path := buildCacheBenchTable(b)
	r, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	c := NewBlockCache(cacheBytes)
	r.AttachCache(c)
	per := benchCells / 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A stride coprime with the key count sweeps the whole working
		// set instead of camping on one block.
		k := (i * 7919) % per
		pk := fmt.Sprintf("part%02d", (i*31)%8)
		cells, err := r.ReadSlice(pk, ck(k), ck(k+1))
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != 1 {
			b.Fatalf("read %d cells", len(cells))
		}
	}
	b.StopTimer()
	st := c.Stats()
	b.ReportMetric(float64(st.Hits)/float64(st.Hits+st.Misses)*100, "hit%")
}

// BenchmarkCacheHitPointRead: the cache covers the working set, so
// after the first sweep every point read is a shard-mutex map probe —
// no ReadAt, no CRC, no decompression.
func BenchmarkCacheHitPointRead(b *testing.B) {
	benchPointReads(b, 64<<20)
}

// BenchmarkCacheMissPointRead: the cache holds a few dozen blocks of a
// multi-thousand-block working set, so nearly every read takes the full
// miss path — ReadAt, CRC, LZ decode, insert-with-eviction.
func BenchmarkCacheMissPointRead(b *testing.B) {
	benchPointReads(b, 256<<10)
}

// BenchmarkScanThroughCompressed streams the whole compressed table
// through the partition iterator — the compaction and range-scan shape.
func BenchmarkScanThroughCompressed(b *testing.B) {
	path := buildCacheBenchTable(b)
	r, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	var logical int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := r.Iter()
		for {
			_, cells, ok := it.Next()
			if !ok {
				break
			}
			for j := range cells {
				logical += int64(len(cells[j].Value))
			}
		}
		if err := it.Err(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(logical / int64(b.N))
}
