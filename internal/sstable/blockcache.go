package sstable

import (
	"sync"
	"sync/atomic"
)

// BlockCache is a process-wide, capacity-bounded cache of *decompressed*
// block payloads and lazily-loaded table metadata (block index +
// partition directory), shared by every Reader the storage engine opens.
// It is the RAM tier of the read-path memory hierarchy: compressed
// blocks on flash behind decompressed blocks in memory, the FlashMap
// arrangement.
//
// Entries are keyed by (table ID, block offset). Table IDs are unique
// per Reader attachment — never reused, even for a reopened file — so
// invalidation is by table identity: when compaction retires a table,
// its entries simply stop being requested and age out through normal
// eviction. No epoch bookkeeping, no explicit purge.
//
// The cache is sharded by key hash so a Get is one shard mutex, one map
// probe and zero allocations — cheap enough to sit on the read path
// without becoming the contention point "When More Cores Hurts" warns
// about. Eviction is CLOCK (second chance): each shard sweeps a hand
// over its entry ring, clearing reference bits until it finds a cold
// entry, approximating LRU without any per-hit list manipulation.
type BlockCache struct {
	shards   [cacheShardCount]blockCacheShard
	perShard int64
	ids      atomic.Uint64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	bytes     atomic.Int64
}

// cacheShardCount spreads lock traffic; a power of two so the hash mix
// below distributes keys with a shift-xor and a mask.
const cacheShardCount = 32

// metaOffset is the sentinel block offset under which a table's decoded
// metadata is cached; real blocks can never sit at the file's last byte.
const metaOffset = ^uint64(0)

// cacheEntryOverhead approximates the bookkeeping bytes an entry costs
// beyond its payload (map bucket, ring slot, entry struct), so tiny
// blocks cannot blow the budget through sheer count.
const cacheEntryOverhead = 96

type blockCacheKey struct {
	table  uint64
	offset uint64
}

type blockCacheEntry struct {
	key  blockCacheKey
	data []byte     // decompressed block payload, nil for meta entries
	meta *tableMeta // decoded table meta, nil for block entries
	size int64      // charged bytes, overhead included
	ref  bool       // CLOCK reference bit, touched under the shard mutex
}

type blockCacheShard struct {
	mu    sync.Mutex
	items map[blockCacheKey]*blockCacheEntry
	ring  []*blockCacheEntry // CLOCK ring, order irrelevant
	hand  int
	bytes int64
}

// CacheStats is a point-in-time snapshot of a BlockCache's counters.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Bytes     int64 // currently cached payload + overhead bytes
}

// NewBlockCache builds a cache bounded at roughly capacity bytes
// (payloads plus per-entry overhead). A capacity too small to hold one
// block still works: entries churn through constantly, which is exactly
// what the eviction-stress tests want.
func NewBlockCache(capacity int64) *BlockCache {
	c := &BlockCache{perShard: capacity / cacheShardCount}
	if c.perShard < 1 {
		c.perShard = 1
	}
	for i := range c.shards {
		c.shards[i].items = make(map[blockCacheKey]*blockCacheEntry)
	}
	return c
}

// NewTableID issues a fresh, never-reused table identity. Readers take
// one when a cache is attached; uniqueness is what makes retired tables'
// entries unreachable garbage instead of aliasing hazards.
func (c *BlockCache) NewTableID() uint64 { return c.ids.Add(1) }

// Stats snapshots the cache counters.
func (c *BlockCache) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Bytes:     c.bytes.Load(),
	}
}

func (c *BlockCache) shard(k blockCacheKey) *blockCacheShard {
	// Mix table and offset so consecutive blocks of one table spread
	// across shards (fibonacci hashing on the xor).
	h := (k.table ^ k.offset*0x9E3779B97F4A7C15) * 0x9E3779B97F4A7C15
	return &c.shards[h>>58&(cacheShardCount-1)]
}

// getBlock returns a cached decompressed block payload.
func (c *BlockCache) getBlock(table, offset uint64) ([]byte, bool) {
	e, ok := c.get(blockCacheKey{table: table, offset: offset})
	if !ok {
		return nil, false
	}
	return e.data, true
}

// getMeta returns a cached table meta.
func (c *BlockCache) getMeta(table uint64) (*tableMeta, bool) {
	e, ok := c.get(blockCacheKey{table: table, offset: metaOffset})
	if !ok {
		return nil, false
	}
	return e.meta, true
}

func (c *BlockCache) get(k blockCacheKey) (*blockCacheEntry, bool) {
	s := c.shard(k)
	s.mu.Lock()
	e, ok := s.items[k]
	if ok {
		e.ref = true
	}
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
		return e, true
	}
	c.misses.Add(1)
	return nil, false
}

// putBlock caches a decompressed block payload.
func (c *BlockCache) putBlock(table, offset uint64, payload []byte) {
	c.put(&blockCacheEntry{
		key:  blockCacheKey{table: table, offset: offset},
		data: payload,
		size: int64(len(payload)) + cacheEntryOverhead,
	})
}

// putMeta caches a table's decoded metadata under its charged size, so
// open-table index memory lives inside the same budget as data blocks.
func (c *BlockCache) putMeta(table uint64, m *tableMeta) {
	c.put(&blockCacheEntry{
		key:  blockCacheKey{table: table, offset: metaOffset},
		meta: m,
		size: m.memSize() + cacheEntryOverhead,
	})
}

func (c *BlockCache) put(e *blockCacheEntry) {
	if e.size > c.perShard {
		// Larger than a whole shard's budget: caching it would evict
		// everything for one entry's benefit. Serve it uncached.
		return
	}
	s := c.shard(e.key)
	s.mu.Lock()
	if _, exists := s.items[e.key]; exists {
		// A concurrent miss on the same block raced us here; keep the
		// incumbent, the payloads are identical.
		s.mu.Unlock()
		return
	}
	evicted, freed := 0, int64(0)
	for s.bytes+e.size > c.perShard && len(s.ring) > 0 {
		evicted++
		freed += s.evictOneLocked()
	}
	s.items[e.key] = e
	s.ring = append(s.ring, e)
	s.bytes += e.size
	s.mu.Unlock()
	c.bytes.Add(e.size - freed)
	if evicted > 0 {
		c.evictions.Add(int64(evicted))
	}
}

// evictOneLocked advances the CLOCK hand until it claims one entry,
// clearing reference bits as it passes warm ones, and returns the freed
// bytes. Caller holds the shard mutex and reconciles c.bytes.
func (s *blockCacheShard) evictOneLocked() int64 {
	for {
		if s.hand >= len(s.ring) {
			s.hand = 0
		}
		e := s.ring[s.hand]
		if e.ref {
			e.ref = false
			s.hand++
			continue
		}
		// Swap-remove keeps the ring compact; CLOCK order is approximate
		// anyway.
		last := len(s.ring) - 1
		s.ring[s.hand] = s.ring[last]
		s.ring[last] = nil
		s.ring = s.ring[:last]
		delete(s.items, e.key)
		s.bytes -= e.size
		return e.size
	}
}

// memSize approximates the resident bytes of a decoded table meta: block
// index keys and entries, partition directory strings and the by-key
// map.
func (m *tableMeta) memSize() int64 {
	var n int64
	for i := range m.blocks {
		n += int64(len(m.blocks[i].firstKey)) + 24
	}
	for i := range m.parts {
		// Directory entry plus its map slot.
		n += 2*int64(len(m.parts[i].pk)) + 48
	}
	return n
}
