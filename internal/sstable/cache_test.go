package sstable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"testing"

	"scalekv/internal/row"
)

// repetitiveCells builds cells whose values compress well — the 256B
// ingest shape of the acceptance criteria.
func repetitiveCells(n, valSize int) []row.Cell {
	cells := make([]row.Cell, n)
	for i := range cells {
		v := bytes.Repeat([]byte(fmt.Sprintf("value-%04d|", i%7)), valSize/11+1)[:valSize]
		cells[i] = row.Cell{CK: ck(i), Value: v}
	}
	return cells
}

func TestWarmPointReadIsZeroReadAt(t *testing.T) {
	// The cold-read sibling (TestV3ColdPointReadIsIndexPlusOneBlock)
	// pins 2 ReadAts for a cold point read; with the block cache
	// attached, a repeated point read must hit RAM only — zero ReadAts,
	// block and meta both served from the cache.
	parts := map[string][]row.Cell{"big": makeCells(20000, 64)}
	r, err := Open(writeTable(t, WriterOptions{}, parts))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	c := NewBlockCache(64 << 20)
	r.AttachCache(c)

	if _, err := r.ReadSlice("big", ck(15000), ck(15001)); err != nil {
		t.Fatal(err)
	}
	if calls := r.Stats.ReadAtCalls.Load(); calls != 2 {
		t.Fatalf("cold point read cost %d ReadAts, want 2 (meta + one block)", calls)
	}
	for i := 0; i < 5; i++ {
		before := r.Stats.ReadAtCalls.Load()
		got, err := r.ReadSlice("big", ck(15000), ck(15001))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || !bytes.Equal(got[0].CK, ck(15000)) {
			t.Fatalf("warm read returned %d cells", len(got))
		}
		if d := r.Stats.ReadAtCalls.Load() - before; d != 0 {
			t.Fatalf("warm point read cost %d ReadAts, want 0", d)
		}
	}
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 || st.Bytes == 0 {
		t.Fatalf("cache stats not plumbed: %+v", st)
	}
}

func TestBlockCacheBoundsBytesAndEvicts(t *testing.T) {
	c := NewBlockCache(64 << 10)
	payload := bytes.Repeat([]byte("x"), 1024)
	for i := uint64(0); i < 1000; i++ {
		c.putBlock(1, i*4096, payload)
	}
	st := c.Stats()
	if st.Bytes > 64<<10 {
		t.Fatalf("cache holds %d bytes, budget 64KB", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Fatal("1000 inserts into a 64KB cache evicted nothing")
	}
	// A value bigger than a whole shard's budget must be refused, not
	// evict everything.
	before := c.Stats().Bytes
	c.putBlock(2, 0, bytes.Repeat([]byte("y"), 1<<20))
	if _, ok := c.getBlock(2, 0); ok {
		t.Fatal("oversized entry was cached")
	}
	if c.Stats().Bytes > before {
		t.Fatal("oversized insert grew the cache")
	}
}

func TestCompressionShrinksTableAndRoundTrips(t *testing.T) {
	// 256B compressible values: the stored table must shrink under the
	// default codec and read back identically.
	parts := map[string][]row.Cell{"p": repetitiveCells(4000, 256)}
	plain := writeTable(t, WriterOptions{Compression: NoCompression}, parts)
	packed := writeTable(t, WriterOptions{}, parts)
	sp, _ := os.Stat(plain)
	sc, _ := os.Stat(packed)
	if sc.Size() >= sp.Size() {
		t.Fatalf("compressed table %d bytes, uncompressed %d", sc.Size(), sp.Size())
	}
	r, err := Open(packed)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.ReadPartition("p")
	if err != nil {
		t.Fatal(err)
	}
	want := parts["p"]
	if len(got) != len(want) {
		t.Fatalf("%d cells back, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i].CK, want[i].CK) || !bytes.Equal(got[i].Value, want[i].Value) {
			t.Fatalf("cell %d mismatch", i)
		}
	}
}

func TestWriterReportsCompressionRatio(t *testing.T) {
	path := tempPath(t)
	w, err := NewWriter(path, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddPartition("p", repetitiveCells(4000, 256)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	logical, stored := w.BlockBytes()
	if logical == 0 || stored == 0 || stored >= logical {
		t.Fatalf("BlockBytes logical=%d stored=%d; want 0 < stored < logical", logical, stored)
	}
}

func tempPath(t *testing.T) string {
	t.Helper()
	return t.TempDir() + "/t.sst"
}

func TestCompressedBlockCorruptionYieldsErrCorrupt(t *testing.T) {
	// Flip a byte inside the first (compressed) data block: the
	// per-block CRC covers the stored bytes, so damage is caught before
	// decompression is even attempted.
	parts := map[string][]row.Cell{"p": repetitiveCells(2000, 256)}
	good := writeTable(t, WriterOptions{Compression: LZCompression}, parts)
	// Verify the table actually holds a compressed block (the probe
	// could in principle store raw; these values compress 2x+).
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if data[len(magic)] != blockFlagLZ {
		t.Fatalf("first block flag %#x, want LZ (%#x)", data[len(magic)], blockFlagLZ)
	}
	for _, off := range []int64{
		int64(len(magic)),     // the flag byte itself
		int64(len(magic)) + 1, // first byte of the compressed stream
		int64(len(magic)) + 40,
	} {
		r, err := Open(corruptCopy(t, good, off))
		if err != nil {
			t.Fatalf("open must succeed (damage is in a data block): %v", err)
		}
		if _, err := r.ReadPartition("p"); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: read returned %v, want ErrCorrupt", off, err)
		}
		r.Close()
	}
}

// fixCRC recomputes a stored block's trailing CRC so corruption tests
// can exercise the paths behind the checksum.
func fixCRC(stored []byte) []byte {
	crcOff := len(stored) - 4
	binary.LittleEndian.PutUint32(stored[crcOff:], crc32.ChecksumIEEE(stored[:crcOff]))
	return stored
}

func TestStoredBlockStructuralCorruption(t *testing.T) {
	var b blockBuilder
	for i := 0; i < 64; i++ {
		b.add(ck(i), bytes.Repeat([]byte("ab"), 32), row.Version{Seq: uint64(i)}, false)
	}
	payload := append([]byte(nil), b.finishEntries()...)
	stored, compressed := sealBlock(payload, LZCompression, new([1 << lzTableBits]int32))
	if !compressed {
		t.Fatal("repetitive block did not compress")
	}

	// Unknown flag byte with a valid CRC: the dispatch must reject it.
	badFlag := fixCRC(append([]byte{0x7F}, stored[1:]...))
	if _, err := decodeStoredBlock(badFlag); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown flag: %v, want ErrCorrupt", err)
	}

	// Truncation mid-block without CRC repair: caught by the checksum.
	if _, err := decodeStoredBlock(stored[:len(stored)/2]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated block: %v, want ErrCorrupt", err)
	}

	// Truncation of the compressed stream with the CRC recomputed: the
	// LZ decoder must report corruption, never panic or return short.
	chopped := append([]byte(nil), stored[:len(stored)-8]...)
	if _, err := decodeStoredBlock(fixCRC(append(chopped, 0, 0, 0, 0))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("chopped LZ stream: %v, want ErrCorrupt", err)
	}

	// A legacy (pre-compression) block — payload + CRC, no flag — must
	// pass through unchanged: its first byte is always 0x00.
	legacy := append([]byte(nil), payload...)
	legacy = binary.LittleEndian.AppendUint32(legacy, crc32.ChecksumIEEE(payload))
	if legacy[0] != 0x00 {
		t.Fatalf("legacy block first byte %#x, want 0x00", legacy[0])
	}
	got, err := decodeStoredBlock(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("legacy block payload mangled")
	}
}
