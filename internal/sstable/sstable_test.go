package sstable

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"scalekv/internal/row"
)

func ck(i int) []byte { return []byte(fmt.Sprintf("ck%06d", i)) }

func makeCells(n, valSize int) []row.Cell {
	cells := make([]row.Cell, n)
	for i := range cells {
		v := make([]byte, valSize)
		for j := range v {
			v[j] = byte(i + j)
		}
		cells[i] = row.Cell{CK: ck(i), Value: v}
	}
	return cells
}

func writeTable(t *testing.T, opts WriterOptions, parts map[string][]row.Cell) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.sst")
	w, err := NewWriter(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	var pks []string
	for pk := range parts {
		pks = append(pks, pk)
	}
	// Writer requires ascending pk order.
	for i := 0; i < len(pks); i++ {
		for j := i + 1; j < len(pks); j++ {
			if pks[j] < pks[i] {
				pks[i], pks[j] = pks[j], pks[i]
			}
		}
	}
	for _, pk := range pks {
		if err := w.AddPartition(pk, parts[pk]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestWriteReadRoundTrip(t *testing.T) {
	parts := map[string][]row.Cell{
		"alpha": makeCells(10, 16),
		"beta":  makeCells(100, 32),
		"gamma": makeCells(1, 8),
	}
	r, err := Open(writeTable(t, WriterOptions{}, parts))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if r.NumPartitions() != 3 {
		t.Fatalf("partitions %d want 3", r.NumPartitions())
	}
	for pk, want := range parts {
		got, err := r.ReadPartition(pk)
		if err != nil {
			t.Fatalf("read %q: %v", pk, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%q: %d cells want %d", pk, len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(got[i].CK, want[i].CK) || !bytes.Equal(got[i].Value, want[i].Value) {
				t.Fatalf("%q cell %d mismatch", pk, i)
			}
		}
	}
}

func TestReadAbsentPartition(t *testing.T) {
	r, err := Open(writeTable(t, WriterOptions{}, map[string][]row.Cell{"a": makeCells(5, 8)}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.ReadPartition("zz"); err != ErrNotFound {
		t.Fatalf("err = %v want ErrNotFound", err)
	}
	if _, err := r.ReadSlice("zz", nil, nil); err != ErrNotFound {
		t.Fatalf("slice err = %v want ErrNotFound", err)
	}
}

func TestBloomFilter(t *testing.T) {
	parts := map[string][]row.Cell{}
	for i := 0; i < 200; i++ {
		parts[fmt.Sprintf("pk%04d", i)] = makeCells(3, 8)
	}
	r, err := Open(writeTable(t, WriterOptions{ExpectedPartitions: 200}, parts))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for pk := range parts {
		if !r.MayContain(pk) {
			t.Fatalf("bloom false negative for %q", pk)
		}
	}
	fp := 0
	for i := 0; i < 1000; i++ {
		if r.MayContain(fmt.Sprintf("absent%06d", i)) {
			fp++
		}
	}
	if fp > 50 {
		t.Fatalf("bloom false positives %d/1000, too many", fp)
	}
}

func TestColumnIndexPresenceByThreshold(t *testing.T) {
	// With a 4KB column index, a partition of 100 cells x 16B (~2KB)
	// stays unindexed while 1000 cells x 16B (~20KB) gets indexed —
	// the Cassandra behaviour behind the paper's 1425-item break.
	parts := map[string][]row.Cell{
		"small": makeCells(100, 16),
		"large": makeCells(1000, 16),
	}
	r, err := Open(writeTable(t, WriterOptions{ColumnIndexSize: 4 << 10}, parts))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if has, _ := r.HasColumnIndex("small"); has {
		t.Fatal("small partition unexpectedly indexed")
	}
	if has, _ := r.HasColumnIndex("large"); !has {
		t.Fatal("large partition missing column index")
	}
	if n, ok := r.CellCount("large"); !ok || n != 1000 {
		t.Fatalf("cell count %d,%v want 1000", n, ok)
	}
}

func TestSliceWithColumnIndexSeeks(t *testing.T) {
	const n = 5000
	parts := map[string][]row.Cell{"big": makeCells(n, 64)}
	r, err := Open(writeTable(t, WriterOptions{ColumnIndexSize: 8 << 10}, parts))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	got, err := r.ReadSlice("big", ck(4000), ck(4100))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("slice returned %d cells want 100", len(got))
	}
	for i, c := range got {
		if !bytes.Equal(c.CK, ck(4000+i)) {
			t.Fatalf("cell %d is %q", i, c.CK)
		}
	}
	if r.Stats.SeeksSaved.Load() == 0 {
		t.Fatal("column index did not skip any bytes for a deep slice")
	}
	// A slice near the end must read far less than the whole partition.
	read := r.Stats.BytesRead.Load()
	full := int64(n * (64 + 8 + 4))
	if read > full/2 {
		t.Fatalf("slice read %d bytes, more than half the partition (%d)", read, full)
	}
}

func TestSliceWithoutIndexScansFromStart(t *testing.T) {
	parts := map[string][]row.Cell{"small": makeCells(100, 16)}
	r, err := Open(writeTable(t, WriterOptions{}, parts))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.ReadSlice("small", ck(50), ck(60))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d cells want 10", len(got))
	}
	if r.Stats.SeeksSaved.Load() != 0 {
		t.Fatal("unindexed partition cannot save seeks")
	}
}

func TestSliceUnboundedEqualsFullRead(t *testing.T) {
	parts := map[string][]row.Cell{"p": makeCells(2000, 32)}
	r, err := Open(writeTable(t, WriterOptions{ColumnIndexSize: 4 << 10}, parts))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	full, err := r.ReadPartition("p")
	if err != nil {
		t.Fatal(err)
	}
	sl, err := r.ReadSlice("p", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(sl) {
		t.Fatalf("full %d vs slice %d", len(full), len(sl))
	}
	for i := range full {
		if !bytes.Equal(full[i].CK, sl[i].CK) {
			t.Fatalf("cell %d mismatch", i)
		}
	}
}

func TestDisabledColumnIndex(t *testing.T) {
	parts := map[string][]row.Cell{"big": makeCells(3000, 64)}
	r, err := Open(writeTable(t, WriterOptions{ColumnIndexSize: -1}, parts))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if has, _ := r.HasColumnIndex("big"); has {
		t.Fatal("column index present despite being disabled")
	}
	got, err := r.ReadSlice("big", ck(2900), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("got %d cells want 100", len(got))
	}
}

func TestWriterRejectsOutOfOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.sst")
	w, err := NewWriter(path, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddPartition("m", makeCells(1, 8)); err != nil {
		t.Fatal(err)
	}
	if err := w.AddPartition("a", makeCells(1, 8)); err == nil {
		t.Fatal("out-of-order partition accepted")
	}
	w.Close()
}

func TestWriterRejectsUnsortedCells(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad2.sst")
	w, err := NewWriter(path, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cells := []row.Cell{{CK: ck(5)}, {CK: ck(1)}}
	if err := w.AddPartition("p", cells); err == nil {
		t.Fatal("unsorted cells accepted")
	}
	w.Close()
}

func TestOpenRejectsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	// Too short.
	short := filepath.Join(dir, "short.sst")
	os.WriteFile(short, []byte("tiny"), 0o644)
	if _, err := Open(short); err == nil {
		t.Fatal("opened a too-short file")
	}
	// Valid file with a flipped index byte must fail the CRC.
	good := writeTable(t, WriterOptions{}, map[string][]row.Cell{"a": makeCells(10, 8)})
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-footerSizeV2-2] ^= 0xFF
	bad := filepath.Join(dir, "bad.sst")
	os.WriteFile(bad, data, 0o644)
	if _, err := Open(bad); err == nil {
		t.Fatal("opened a corrupt file")
	}
	// Bad magic.
	data2, _ := os.ReadFile(good)
	copy(data2[len(data2)-4:], "XXXX")
	bad2 := filepath.Join(dir, "bad2.sst")
	os.WriteFile(bad2, data2, 0o644)
	if _, err := Open(bad2); err == nil {
		t.Fatal("opened file with bad magic")
	}
}

func TestEmptyTable(t *testing.T) {
	r, err := Open(writeTable(t, WriterOptions{}, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumPartitions() != 0 {
		t.Fatal("empty table has partitions")
	}
}

func TestEmptyPartition(t *testing.T) {
	r, err := Open(writeTable(t, WriterOptions{}, map[string][]row.Cell{"empty": nil}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	cells, err := r.ReadPartition("empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 0 {
		t.Fatalf("empty partition returned %d cells", len(cells))
	}
}

func TestLargeColumnIndexHeaderRefetch(t *testing.T) {
	// Enough chunks that the column index overflows the 4KB header read
	// and the >64-entries refetch path triggers.
	const n = 60000
	parts := map[string][]row.Cell{"huge": makeCells(n, 64)}
	r, err := Open(writeTable(t, WriterOptions{ColumnIndexSize: 16 << 10}, parts))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.ReadSlice("huge", ck(59990), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d cells want 10", len(got))
	}
}

func TestPartitionsListing(t *testing.T) {
	parts := map[string][]row.Cell{"c": nil, "a": nil, "b": nil}
	r, err := Open(writeTable(t, WriterOptions{}, parts))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := r.Partitions()
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func BenchmarkReadPartition1000Cells(b *testing.B) {
	dir := b.TempDir()
	path := filepath.Join(dir, "bench.sst")
	w, _ := NewWriter(path, WriterOptions{})
	w.AddPartition("p", makeCells(1000, 64))
	w.Close()
	r, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.ReadPartition("p"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSliceIndexed(b *testing.B) {
	dir := b.TempDir()
	path := filepath.Join(dir, "bench.sst")
	w, _ := NewWriter(path, WriterOptions{ColumnIndexSize: 16 << 10})
	w.AddPartition("p", makeCells(20000, 64))
	w.Close()
	r, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.ReadSlice("p", ck(19000), ck(19100)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSliceUnindexed(b *testing.B) {
	dir := b.TempDir()
	path := filepath.Join(dir, "bench.sst")
	w, _ := NewWriter(path, WriterOptions{ColumnIndexSize: -1})
	w.AddPartition("p", makeCells(20000, 64))
	w.Close()
	r, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.ReadSlice("p", ck(19000), ck(19100)); err != nil {
			b.Fatal(err)
		}
	}
}
