package sstable

import "scalekv/internal/enc"

// This file is the v3 block compression codec: a snappy-style
// byte-oriented LZ with greedy hash matching — pure Go, no cgo, no
// dependencies. It trades ratio for speed the same way Snappy/LZ4 do:
// literal runs and back-references only, varint lengths, no entropy
// stage, so decompression is a straight byte copy loop and compression
// is one pass over the input with a small position table.
//
// Stream layout:
//
//	decodedLen uvarint | op*
//
// Each op starts with a tag byte t:
//
//	t&1 == 0: literal run of (t>>1)+1 bytes (1..128) follows verbatim.
//	t&1 == 1: copy of (t>>1)+minMatch bytes (4..131) from `distance`
//	          bytes back in the output, distance as a uvarint > 0.
//	          Distances may be shorter than the length (overlapping
//	          copy, the classic RLE trick), so decoding copies bytewise.
//
// Longer literals and matches simply emit several ops. The format is
// self-terminating: decoding stops exactly at decodedLen, and any
// structural violation — truncated op, zero or too-large distance, more
// output than promised — is ErrCorrupt, never a panic or overrun. Worst
// case (incompressible input) expansion is 1 byte per 128, which the
// writer's compressibility probe turns into a raw-stored block anyway.

const (
	// lzMinMatch is the shortest back-reference worth an op: a copy tag
	// plus a 1-2 byte distance must beat the literal bytes it replaces.
	lzMinMatch = 4
	// lzMaxLiteral / lzMaxCopy are the per-op length caps of the tag byte.
	lzMaxLiteral = 128
	lzMaxCopy    = (0xFF >> 1) + lzMinMatch
	// lzTableBits sizes the encoder's position table: 4096 entries covers
	// a multiple of the 4KB default block with few collisions and stays
	// resident in L1.
	lzTableBits = 12
	// lzMinInput skips compression for blocks too small to win: the
	// varint header and probe overhead exceed any plausible saving.
	lzMinInput = 64
)

// lzHash maps 4 bytes to a position-table slot (Knuth multiplicative).
func lzHash(v uint32) uint32 {
	return (v * 2654435761) >> (32 - lzTableBits)
}

func lzLoad32(b []byte, i int) uint32 {
	return uint32(b[i]) | uint32(b[i+1])<<8 | uint32(b[i+2])<<16 | uint32(b[i+3])<<24
}

// lzCompress appends the compressed form of src to dst and returns it.
// The table parameter is the caller's scratch position table, reset
// here, so a Writer compressing many blocks allocates it once.
func lzCompress(dst, src []byte, table *[1 << lzTableBits]int32) []byte {
	dst = enc.AppendUvarint(dst, uint64(len(src)))
	for i := range table {
		table[i] = -1
	}
	emitLiterals := func(lit []byte) {
		for len(lit) > 0 {
			n := len(lit)
			if n > lzMaxLiteral {
				n = lzMaxLiteral
			}
			dst = append(dst, byte(n-1)<<1)
			dst = append(dst, lit[:n]...)
			lit = lit[n:]
		}
	}
	litStart := 0
	pos := 0
	for pos+lzMinMatch <= len(src) {
		h := lzHash(lzLoad32(src, pos))
		cand := table[h]
		table[h] = int32(pos)
		if cand < 0 || lzLoad32(src, int(cand)) != lzLoad32(src, pos) {
			pos++
			continue
		}
		// Extend the match forward.
		mlen := lzMinMatch
		for pos+mlen < len(src) && src[int(cand)+mlen] == src[pos+mlen] {
			mlen++
		}
		emitLiterals(src[litStart:pos])
		dist := uint64(pos - int(cand))
		for mlen >= lzMinMatch {
			n := mlen
			if n > lzMaxCopy {
				n = lzMaxCopy
			}
			if mlen-n != 0 && mlen-n < lzMinMatch {
				// Don't leave a sub-minMatch tail that no copy op can
				// express; shorten this op so the remainder fits one more.
				n = mlen - lzMinMatch
			}
			dst = append(dst, byte(n-lzMinMatch)<<1|1)
			dst = enc.AppendUvarint(dst, dist)
			pos += n
			mlen -= n
		}
		// Any sub-minMatch tail stays unconsumed: the scan resumes at pos
		// and the tail lands in the next literal run.
		litStart = pos
	}
	emitLiterals(src[litStart:])
	return dst
}

// lzDecodedLen returns the decoded length a compressed stream promises,
// without decoding it.
func lzDecodedLen(src []byte) (int, error) {
	n, u := enc.Uvarint(src)
	if u <= 0 || n > maxDecodedBlock {
		return 0, ErrCorrupt
	}
	return int(n), nil
}

// maxDecodedBlock caps the decoded size a block may claim, so a corrupt
// header cannot demand an absurd allocation. Blocks target ~4KB; a 64MB
// bound leaves orders of magnitude of headroom for any configured
// BlockSize while keeping a hostile header harmless.
const maxDecodedBlock = 64 << 20

// lzDecompress decodes a compressed stream produced by lzCompress into
// dst (which must be exactly the promised decoded length) and returns
// an error if the stream is structurally invalid. It never panics and
// never writes outside dst.
func lzDecompress(dst, src []byte) error {
	n, u := enc.Uvarint(src)
	if u <= 0 || int(n) != len(dst) {
		return ErrCorrupt
	}
	src = src[u:]
	out := 0
	for len(src) > 0 {
		t := src[0]
		src = src[1:]
		if t&1 == 0 {
			n := int(t>>1) + 1
			if n > len(src) || out+n > len(dst) {
				return ErrCorrupt
			}
			copy(dst[out:], src[:n])
			src = src[n:]
			out += n
			continue
		}
		n := int(t>>1) + lzMinMatch
		dist, u := enc.Uvarint(src)
		if u <= 0 || dist == 0 || dist > uint64(out) || out+n > len(dst) {
			return ErrCorrupt
		}
		src = src[u:]
		// Bytewise: distances shorter than the length overlap on purpose.
		from := out - int(dist)
		for i := 0; i < n; i++ {
			dst[out+i] = dst[from+i]
		}
		out += n
	}
	if out != len(dst) {
		return ErrCorrupt
	}
	return nil
}
