package sstable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"scalekv/internal/row"
)

func TestV3ColdPointReadIsIndexPlusOneBlock(t *testing.T) {
	// A large multi-block partition: the whole point of v3 is that a
	// cold point read costs one lazy meta load plus ONE data block, not
	// a whole-partition transfer.
	const n = 20000
	parts := map[string][]row.Cell{"big": makeCells(n, 64)}
	r, err := Open(writeTable(t, WriterOptions{}, parts))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Format() != 3 {
		t.Fatalf("default writer produced format %d, want 3", r.Format())
	}
	if got := r.Stats.ReadAtCalls.Load(); got != 0 {
		t.Fatalf("open issued %d post-open ReadAts, want 0 (lazy index)", got)
	}
	got, err := r.ReadSlice("big", ck(15000), ck(15001))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !bytes.Equal(got[0].CK, ck(15000)) {
		t.Fatalf("slice returned %d cells", len(got))
	}
	if calls := r.Stats.ReadAtCalls.Load(); calls != 2 {
		t.Fatalf("cold point read cost %d ReadAts, want 2 (meta + one block)", calls)
	}
	// Warm meta: every further point read is exactly one block fetch.
	for i := 0; i < 5; i++ {
		before := r.Stats.ReadAtCalls.Load()
		if _, err := r.ReadSlice("big", ck(3000*i), ck(3000*i+1)); err != nil {
			t.Fatal(err)
		}
		if d := r.Stats.ReadAtCalls.Load() - before; d != 1 {
			t.Fatalf("warm point read cost %d ReadAts, want 1", d)
		}
	}
	// And it never paid for the whole partition.
	full := int64(n * (64 + 8))
	if read := r.Stats.BytesRead.Load(); read > full/10 {
		t.Fatalf("point reads transferred %d bytes, more than 1/10 of the partition (%d)", read, full)
	}
}

func TestV3VersionsAndTombstonesRoundTrip(t *testing.T) {
	cells := []row.Cell{
		{CK: []byte("a"), Value: []byte("v1"), Ver: row.Version{Seq: 7, Node: 3}},
		{CK: []byte("b"), Ver: row.Version{Seq: 9, Node: 1}, Tombstone: true},
		{CK: []byte("c"), Value: []byte(""), Ver: row.Version{Seq: 12, Node: 65535}},
	}
	r, err := Open(writeTable(t, WriterOptions{}, map[string][]row.Cell{"p": cells}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.MaxSeq() != 12 {
		t.Fatalf("maxSeq %d want 12", r.MaxSeq())
	}
	got, err := r.ReadPartition("p")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d cells", len(got))
	}
	for i := range cells {
		if got[i].Ver != cells[i].Ver || got[i].Tombstone != cells[i].Tombstone {
			t.Fatalf("cell %d meta mismatch: %+v vs %+v", i, got[i], cells[i])
		}
	}
}

func TestV3EmptyClusteringKey(t *testing.T) {
	// The empty clustering key encodes as exactly the partition prefix;
	// it must round-trip and sort before every other cell.
	cells := []row.Cell{
		{CK: []byte{}, Value: []byte("root")},
		{CK: []byte("x"), Value: []byte("leaf")},
	}
	r, err := Open(writeTable(t, WriterOptions{}, map[string][]row.Cell{"p": cells}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.ReadPartition("p")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || len(got[0].CK) != 0 || !bytes.Equal(got[0].Value, []byte("root")) {
		t.Fatalf("unexpected cells %+v", got)
	}
}

func TestV3PartitionKeyWithZeroBytes(t *testing.T) {
	// Partition keys containing 0x00 exercise the enc escaping inside
	// internal keys; they must not collide or interleave.
	parts := map[string][]row.Cell{
		"a\x00b": makeCells(3, 8),
		"a\x01b": makeCells(4, 8),
	}
	r, err := Open(writeTable(t, WriterOptions{}, parts))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for pk, want := range parts {
		got, err := r.ReadPartition(pk)
		if err != nil {
			t.Fatalf("read %q: %v", pk, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%q: %d cells want %d", pk, len(got), len(want))
		}
	}
}

func TestV3IterMatchesReadPartition(t *testing.T) {
	parts := map[string][]row.Cell{
		"a":     makeCells(2000, 32), // spans several blocks
		"b":     nil,                 // empty partition
		"c":     makeCells(1, 8),
		"after": makeCells(100, 16),
	}
	for _, format := range []int{1, 2, 3} {
		r, err := Open(writeTable(t, WriterOptions{FormatVersion: format}, parts))
		if err != nil {
			t.Fatal(err)
		}
		it := r.Iter()
		var seen []string
		for {
			pk, cells, ok := it.Next()
			if !ok {
				break
			}
			seen = append(seen, pk)
			want, err := r.ReadPartition(pk)
			if err != nil {
				t.Fatalf("v%d read %q: %v", format, pk, err)
			}
			if len(cells) != len(want) {
				t.Fatalf("v%d %q: iter %d cells, read %d", format, pk, len(cells), len(want))
			}
			for i := range want {
				if !bytes.Equal(cells[i].CK, want[i].CK) || !bytes.Equal(cells[i].Value, want[i].Value) ||
					cells[i].Ver != want[i].Ver || cells[i].Tombstone != want[i].Tombstone {
					t.Fatalf("v%d %q cell %d mismatch", format, pk, i)
				}
			}
		}
		if err := it.Err(); err != nil {
			t.Fatalf("v%d iter: %v", format, err)
		}
		want := []string{"a", "after", "b", "c"}
		if len(seen) != len(want) {
			t.Fatalf("v%d iter saw %v", format, seen)
		}
		for i := range want {
			if seen[i] != want[i] {
				t.Fatalf("v%d iter order %v, want %v", format, seen, want)
			}
		}
		r.Close()
	}
}

func TestV3PrefixCompressionShrinksTable(t *testing.T) {
	// Clustering keys share long prefixes ("ck000001"...), so the v3
	// restart-point compression must beat the flat v2 encoding.
	parts := map[string][]row.Cell{"p": makeCells(5000, 8)}
	v2 := writeTable(t, WriterOptions{FormatVersion: 2}, parts)
	v3 := writeTable(t, WriterOptions{FormatVersion: 3}, parts)
	s2, _ := os.Stat(v2)
	s3, _ := os.Stat(v3)
	if s3.Size() >= s2.Size() {
		t.Fatalf("v3 table (%d bytes) not smaller than v2 (%d bytes)", s3.Size(), s2.Size())
	}
}

// corruptCopy writes a copy of path with the byte at off XOR-flipped.
func corruptCopy(t *testing.T, path string, off int64) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off < 0 {
		off += int64(len(data))
	}
	data[off] ^= 0xFF
	out := filepath.Join(t.TempDir(), "corrupt.sst")
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestV3CorruptDataBlockYieldsErrCorrupt(t *testing.T) {
	good := writeTable(t, WriterOptions{}, map[string][]row.Cell{"p": makeCells(1000, 32)})
	// Offset 10 is inside the first data block (the file header is 4
	// bytes); the per-block CRC must catch the flip at read time.
	bad := corruptCopy(t, good, 10)
	r, err := Open(bad)
	if err != nil {
		t.Fatalf("open must succeed (damage is in a data block): %v", err)
	}
	defer r.Close()
	if _, err := r.ReadPartition("p"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("read of corrupt block returned %v, want ErrCorrupt", err)
	}
}

func TestV3CorruptBlockIndexYieldsErrCorrupt(t *testing.T) {
	good := writeTable(t, WriterOptions{}, map[string][]row.Cell{"p": makeCells(1000, 32)})
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	blockIdxOff := int64(binary.LittleEndian.Uint64(data[len(data)-footerSizeV3:]))
	bad := corruptCopy(t, good, blockIdxOff+1)
	r, err := Open(bad)
	if err != nil {
		t.Fatalf("open must succeed (index loads lazily): %v", err)
	}
	defer r.Close()
	if _, err := r.ReadPartition("p"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("read through corrupt block index returned %v, want ErrCorrupt", err)
	}
}

func TestV3CorruptFooterYieldsErrCorrupt(t *testing.T) {
	good := writeTable(t, WriterOptions{}, map[string][]row.Cell{"p": makeCells(100, 16)})
	for _, off := range []int64{-int64(footerSizeV3), -30, -3} {
		if _, err := Open(corruptCopy(t, good, off)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("open with footer byte %d flipped returned %v, want ErrCorrupt", off, err)
		}
	}
}

func TestV3CorruptBloomYieldsErrCorrupt(t *testing.T) {
	good := writeTable(t, WriterOptions{}, map[string][]row.Cell{"p": makeCells(100, 16)})
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	bloomOff := int64(binary.LittleEndian.Uint64(data[len(data)-footerSizeV3+16:]))
	if _, err := Open(corruptCopy(t, good, bloomOff+1)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with corrupt bloom returned %v, want ErrCorrupt", err)
	}
}

func TestV3TruncatedMidFileYieldsError(t *testing.T) {
	good := writeTable(t, WriterOptions{}, map[string][]row.Cell{"p": makeCells(1000, 32)})
	data, _ := os.ReadFile(good)
	trunc := filepath.Join(t.TempDir(), "trunc.sst")
	os.WriteFile(trunc, data[:len(data)/2], 0o644)
	if _, err := Open(trunc); err == nil {
		t.Fatal("opened a truncated v3 file")
	}
}

func TestWriterRejectsUnknownFormat(t *testing.T) {
	if _, err := NewWriter(filepath.Join(t.TempDir(), "x.sst"), WriterOptions{FormatVersion: 4}); err == nil {
		t.Fatal("format 4 accepted")
	}
}

func BenchmarkV3ColdPointRead(b *testing.B) {
	// Cold-cache point read: fresh Reader per iteration, so every read
	// pays the lazy meta load + one block. The flat-format analogue read
	// the whole partition record.
	path := filepath.Join(b.TempDir(), "bench.sst")
	w, _ := NewWriter(path, WriterOptions{})
	w.AddPartition("p", makeCells(20000, 64))
	w.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := Open(path)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.ReadSlice("p", ck(i%20000), ck(i%20000+1)); err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
}

func BenchmarkV3FullScan(b *testing.B) {
	// Full-table sequential scan through the partition iterator.
	path := filepath.Join(b.TempDir(), "bench.sst")
	w, _ := NewWriter(path, WriterOptions{})
	for i := 0; i < 64; i++ {
		w.AddPartition(fmt.Sprintf("pk%04d", i), makeCells(500, 64))
	}
	w.Close()
	r, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	var bytesScanned int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := r.Iter()
		n := 0
		for {
			_, cells, ok := it.Next()
			if !ok {
				break
			}
			n += len(cells)
			for j := range cells {
				bytesScanned += int64(len(cells[j].Value))
			}
		}
		if err := it.Err(); err != nil {
			b.Fatal(err)
		}
		if n != 64*500 {
			b.Fatalf("scanned %d cells", n)
		}
	}
	b.SetBytes(bytesScanned / int64(b.N))
}
