// Package sstable implements the immutable on-disk sorted runs of the
// storage engine, modelled on Cassandra's SSTable as the paper depends on
// it.
//
// Three format revisions coexist; the reader serves all of them, the
// writer defaults to the newest.
//
// v3 (current) is block-based:
//
//	"SKVT" | data blocks | block index | partition directory | bloom | footer
//
// Data blocks hold restart-point prefix-compressed cells keyed by the
// enc internal key (see block.go), each with its own CRC. The block
// index records every block's first key, offset and length; the
// partition directory records every partition key and its cell count.
// Both are covered by a meta CRC and loaded lazily on first use — Open
// reads only the footer and the bloom filter, and a cold point read
// costs one meta ReadAt plus one data-block ReadAt instead of a
// whole-partition transfer. The footer carries the section offsets, the
// entry and partition counts, and the table's maximum version sequence.
//
// v1/v2 are the older flat layouts ("SKVT" | partition records |
// partition index | bloom | footer): the whole partition index loads at
// Open, and a point read fetches the partition record. v1 cells carry no
// versions; v2 appends each cell's (seq, node) version and a flags byte
// and records max-seq in its footer. The footer terminator tells the
// revisions apart: "SKVT" (v1), "SKV2", "SKV3".
//
// The detail that matters for the paper's Formula 6 is the sparse
// intra-partition index — Cassandra's column_index_size_in_kb. In v1/v2
// a partition larger than ColumnIndexSize carries a per-chunk column
// index; in v3 the block index plays that role (a partition spanning
// several blocks can be sliced from the middle without scanning from its
// start). That asymmetry is exactly the discontinuity at ~1425
// rows/64KB the paper measured in Figure 6 and folded into its
// piecewise database model. A negative ColumnIndexSize disables
// intra-partition seeking in every revision (the ablation knob): v3 then
// never splits a partition across blocks.
package sstable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"scalekv/internal/bloom"
	"scalekv/internal/enc"
	"scalekv/internal/row"
)

// DefaultColumnIndexSize matches Cassandra's column_index_size_in_kb
// default of 64KB.
const DefaultColumnIndexSize = 64 << 10

var (
	magic   = []byte("SKVT") // header, and v1 footer terminator
	magicV2 = []byte("SKV2") // v2 footer terminator
	magicV3 = []byte("SKV3") // v3 footer terminator
)

const (
	footerSizeV1 = 8 + 8 + 8 + 4 + 4     // indexOff, bloomOff, count, crc, magic
	footerSizeV2 = 8 + 8 + 8 + 8 + 4 + 4 // + maxSeq before the crc
	// v3: blockIdxOff, partDirOff, bloomOff, entryCount, partCount,
	// maxSeq, metaCRC, bloomCRC, footerCRC, magic.
	footerSizeV3 = 6*8 + 3*4 + 4
)

const flagTombstone = byte(1)

// ErrCorrupt reports a structurally invalid SSTable file.
var ErrCorrupt = errors.New("sstable: corrupt file")

// ErrNotFound reports a partition absent from the table.
var ErrNotFound = errors.New("sstable: partition not found")

// indexEntry locates one partition inside a v1/v2 data section.
type indexEntry struct {
	pk     string
	offset uint64
	size   uint64 // total bytes of the partition record
	cells  uint64
}

// blockIndexEntry locates one v3 data block.
type blockIndexEntry struct {
	firstKey []byte // internal key of the block's first cell
	offset   uint64
	length   uint64
}

// partDirEntry is one v3 partition-directory record.
type partDirEntry struct {
	pk    string
	cells uint64
}

// Writer builds an SSTable. Partitions must be added in ascending
// partition-key byte order with cells sorted by clustering key; the
// memtable flush path provides exactly that.
type Writer struct {
	f               *os.File
	w               *countingWriter
	format          int
	filter          *bloom.Filter
	columnIndexSize int
	lastPK          string
	started         bool
	maxSeq          uint64
	err             error

	// v1/v2 flat layout.
	index []indexEntry

	// v3 block layout.
	blockSize   int
	noSplit     bool // negative ColumnIndexSize: never split a partition across blocks
	compression Compression
	lzTable     *[1 << lzTableBits]int32 // encoder scratch, shared across blocks
	block       blockBuilder
	blockFirst  []byte // internal key of the open block's first cell
	blocks      []blockIndexEntry
	parts       []partDirEntry
	entryCount  uint64
	keyBuf      []byte

	// logicalBytes/storedBytes accumulate every data block's uncompressed
	// payload size vs its on-disk size — the compression-ratio
	// observability the engine aggregates. Readable after Close.
	logicalBytes int64
	storedBytes  int64
}

// WriterOptions configures SSTable construction.
type WriterOptions struct {
	// ColumnIndexSize is the chunk granularity of the v1/v2 column
	// index; 0 means DefaultColumnIndexSize. Negative disables
	// intra-partition indexes entirely (an ablation knob for the
	// Figure 6 experiment) — in v3 that means a partition is never
	// split across blocks, so slices always scan from its start.
	ColumnIndexSize int
	// ExpectedPartitions sizes the bloom filter; 0 means 1024.
	ExpectedPartitions int
	// BloomFPRate is the target false positive rate; 0 means 1%.
	BloomFPRate float64
	// FormatVersion selects the table revision: 0 or 3 writes the
	// current block-based v3; 1 and 2 write the older flat formats so
	// compatibility tests can lay down exactly the tables earlier
	// engines left on disk. v1 predates versioning, so AddPartition
	// rejects tombstone cells under it.
	FormatVersion int
	// BlockSize is the v3 data-block target size in bytes; 0 means
	// DefaultBlockSize. Ignored by v1/v2.
	BlockSize int
	// Compression selects the v3 block codec. The zero value compresses
	// (DefaultCompression = LZ, with a per-block compressibility probe
	// that stores incompressible blocks raw); NoCompression is the
	// escape hatch. Ignored by v1/v2.
	Compression Compression
}

// NewWriter creates an SSTable file at path, truncating any existing one.
func NewWriter(path string, opts WriterOptions) (*Writer, error) {
	if opts.ColumnIndexSize == 0 {
		opts.ColumnIndexSize = DefaultColumnIndexSize
	}
	if opts.ExpectedPartitions <= 0 {
		opts.ExpectedPartitions = 1024
	}
	if opts.BloomFPRate <= 0 {
		opts.BloomFPRate = 0.01
	}
	if opts.BlockSize <= 0 {
		opts.BlockSize = DefaultBlockSize
	}
	format := opts.FormatVersion
	switch format {
	case 0:
		format = 3
	case 1, 2, 3:
	default:
		return nil, fmt.Errorf("sstable: unknown format version %d", opts.FormatVersion)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("sstable: create: %w", err)
	}
	w := &Writer{
		f:               f,
		w:               &countingWriter{w: f},
		format:          format,
		filter:          bloom.NewWithRate(opts.ExpectedPartitions, opts.BloomFPRate),
		columnIndexSize: opts.ColumnIndexSize,
		blockSize:       opts.BlockSize,
		noSplit:         opts.ColumnIndexSize < 0,
		compression:     opts.Compression,
	}
	if format == 3 && w.compression != NoCompression {
		w.lzTable = new([1 << lzTableBits]int32)
	}
	if _, err := w.w.Write(magic); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// AddPartition appends one partition. Cells must be sorted by clustering
// key and the partition key must be greater than any previously added.
func (w *Writer) AddPartition(pk string, cells []row.Cell) error {
	if w.err != nil {
		return w.err
	}
	if w.started && pk <= w.lastPK {
		return fmt.Errorf("sstable: partition %q out of order (last %q)", pk, w.lastPK)
	}
	w.started, w.lastPK = true, pk
	for i := range cells {
		if i > 0 && bytes.Compare(cells[i-1].CK, cells[i].CK) >= 0 {
			w.err = fmt.Errorf("sstable: cells out of order in partition %q", pk)
			return w.err
		}
	}
	if w.format == 3 {
		return w.addPartitionV3(pk, cells)
	}
	return w.addPartitionV12(pk, cells)
}

// addPartitionV12 writes one flat v1/v2 partition record.
func (w *Writer) addPartitionV12(pk string, cells []row.Cell) error {
	// Serialize cells, recording a column-index entry at each chunk
	// boundary when the partition is large enough to deserve one.
	var data []byte
	type colEntry struct {
		ck     []byte
		offset uint64
	}
	var colIndex []colEntry
	chunkStart := 0
	for _, c := range cells {
		if len(data)-chunkStart >= w.columnIndexSize && w.columnIndexSize > 0 {
			chunkStart = len(data)
			colIndex = append(colIndex, colEntry{ck: c.CK, offset: uint64(len(data))})
		}
		data = enc.AppendBytes(data, c.CK)
		data = enc.AppendBytes(data, c.Value)
		if w.format == 1 {
			if c.Tombstone {
				w.err = fmt.Errorf("sstable: tombstone cell in legacy v1 table (partition %q)", pk)
				return w.err
			}
			continue
		}
		data = enc.AppendUvarint(data, c.Ver.Seq)
		data = enc.AppendUvarint(data, uint64(c.Ver.Node))
		flags := byte(0)
		if c.Tombstone {
			flags = flagTombstone
		}
		data = append(data, flags)
		if c.Ver.Seq > w.maxSeq {
			w.maxSeq = c.Ver.Seq
		}
	}
	// Cassandra semantics: partitions smaller than one chunk carry no
	// column index at all.
	hasIndex := len(colIndex) > 0

	var rec []byte
	rec = enc.AppendBytes(rec, []byte(pk))
	rec = enc.AppendUvarint(rec, uint64(len(cells)))
	if hasIndex {
		rec = append(rec, 1)
		rec = enc.AppendUvarint(rec, uint64(len(colIndex)))
		for _, e := range colIndex {
			rec = enc.AppendBytes(rec, e.ck)
			rec = enc.AppendUvarint(rec, e.offset)
		}
	} else {
		rec = append(rec, 0)
	}
	rec = enc.AppendUvarint(rec, uint64(len(data)))
	rec = append(rec, data...)

	offset := w.w.count
	if _, err := w.w.Write(rec); err != nil {
		w.err = err
		return err
	}
	w.index = append(w.index, indexEntry{
		pk: pk, offset: offset, size: uint64(len(rec)), cells: uint64(len(cells)),
	})
	w.filter.AddString(pk)
	return nil
}

// Close writes the index sections, bloom filter and footer, then syncs
// and closes the file. The Writer is unusable afterwards.
func (w *Writer) Close() error {
	if w.err != nil {
		w.f.Close()
		return w.err
	}
	if w.format == 3 {
		return w.closeV3()
	}
	indexOff := w.w.count
	var idx []byte
	idx = enc.AppendUvarint(idx, uint64(len(w.index)))
	for _, e := range w.index {
		idx = enc.AppendBytes(idx, []byte(e.pk))
		idx = enc.AppendUvarint(idx, e.offset)
		idx = enc.AppendUvarint(idx, e.size)
		idx = enc.AppendUvarint(idx, e.cells)
	}
	if _, err := w.w.Write(idx); err != nil {
		w.f.Close()
		return err
	}
	bloomOff := w.w.count
	bf := w.filter.Marshal()
	if _, err := w.w.Write(bf); err != nil {
		w.f.Close()
		return err
	}
	crc := crc32.ChecksumIEEE(idx)
	crc = crc32.Update(crc, crc32.IEEETable, bf)

	var footer []byte
	if w.format == 1 {
		footer = make([]byte, footerSizeV1)
		binary.LittleEndian.PutUint64(footer[0:], indexOff)
		binary.LittleEndian.PutUint64(footer[8:], bloomOff)
		binary.LittleEndian.PutUint64(footer[16:], uint64(len(w.index)))
		binary.LittleEndian.PutUint32(footer[24:], crc)
		copy(footer[28:], magic)
	} else {
		footer = make([]byte, footerSizeV2)
		binary.LittleEndian.PutUint64(footer[0:], indexOff)
		binary.LittleEndian.PutUint64(footer[8:], bloomOff)
		binary.LittleEndian.PutUint64(footer[16:], uint64(len(w.index)))
		binary.LittleEndian.PutUint64(footer[24:], w.maxSeq)
		binary.LittleEndian.PutUint32(footer[32:], crc)
		copy(footer[36:], magicV2)
	}
	if _, err := w.w.Write(footer); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// BlockBytes reports the cumulative uncompressed payload size and
// on-disk stored size of every data block written — the per-table
// compression ratio. Meaningful for v3 writers, after Close; the engine
// aggregates it into its compression metrics.
func (w *Writer) BlockBytes() (logical, stored int64) {
	return w.logicalBytes, w.storedBytes
}

type countingWriter struct {
	w     io.Writer
	count uint64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.count += uint64(n)
	return n, err
}

// ReadStats counts the physical work a Reader has done; the Figure 6
// harness, the column-index tests and the O(1)-point-read pin use it to
// verify that reads really touch only what they must.
type ReadStats struct {
	PartitionsRead atomic.Int64
	BytesRead      atomic.Int64
	ReadAtCalls    atomic.Int64 // physical ReadAt issues since Open
	IndexedReads   atomic.Int64 // reads that seeked via a column/block index
	SeeksSaved     atomic.Int64 // bytes skipped thanks to that index
}

// Reader serves point and range reads from one SSTable file. It is safe
// for concurrent use: all reads go through ReadAt.
type Reader struct {
	f      *os.File
	format int
	size   int64
	filter *bloom.Filter
	maxSeq uint64
	Stats  ReadStats

	// cache, when attached, serves decompressed blocks and table meta
	// under the engine-wide budget; cacheID is this table's identity in
	// it.
	cache   *BlockCache
	cacheID uint64

	// v1/v2: the whole partition index, loaded eagerly at Open.
	index []indexEntry
	byPK  map[string]int

	// v3: footer fields; the block index and partition directory load
	// lazily on first use (loadMeta), as one combined ReadAt.
	blockIdxOff uint64
	partDirOff  uint64
	bloomOff    uint64
	entryCount  uint64
	partCount   uint64
	metaCRC     uint32
	metaMu      sync.Mutex
	meta        atomic.Pointer[tableMeta]
}

// tableMeta is a v3 table's lazily-loaded index state.
type tableMeta struct {
	blocks []blockIndexEntry
	parts  []partDirEntry
	byPK   map[string]int
}

// Open prepares a reader for an SSTable file. The format revision is
// detected from the footer terminator: "SKVT" (v1), "SKV2" or "SKV3".
// For v1/v2 the whole partition index and bloom filter load here; for
// v3 only the footer and bloom filter do — the block index and
// partition directory load lazily on the first read that needs them.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sstable: open: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < int64(len(magic)+footerSizeV1) {
		f.Close()
		return nil, ErrCorrupt
	}
	var term [4]byte
	if _, err := f.ReadAt(term[:], st.Size()-4); err != nil {
		f.Close()
		return nil, err
	}
	format := 0
	footerSize := 0
	switch {
	case bytes.Equal(term[:], magicV3):
		format, footerSize = 3, footerSizeV3
	case bytes.Equal(term[:], magicV2):
		format, footerSize = 2, footerSizeV2
	case bytes.Equal(term[:], magic):
		format, footerSize = 1, footerSizeV1
	default:
		f.Close()
		return nil, ErrCorrupt
	}
	if st.Size() < int64(len(magic)+footerSize) {
		f.Close()
		return nil, ErrCorrupt
	}
	if format == 3 {
		return openV3(f, st.Size())
	}
	footer := make([]byte, footerSize)
	if _, err := f.ReadAt(footer, st.Size()-int64(footerSize)); err != nil {
		f.Close()
		return nil, err
	}
	indexOff := binary.LittleEndian.Uint64(footer[0:])
	bloomOff := binary.LittleEndian.Uint64(footer[8:])
	count := binary.LittleEndian.Uint64(footer[16:])
	var maxSeq uint64
	var wantCRC uint32
	if format == 1 {
		wantCRC = binary.LittleEndian.Uint32(footer[24:])
	} else {
		maxSeq = binary.LittleEndian.Uint64(footer[24:])
		wantCRC = binary.LittleEndian.Uint32(footer[32:])
	}
	if indexOff > bloomOff || bloomOff > uint64(st.Size())-uint64(footerSize) {
		f.Close()
		return nil, ErrCorrupt
	}

	idxBuf := make([]byte, bloomOff-indexOff)
	if _, err := f.ReadAt(idxBuf, int64(indexOff)); err != nil {
		f.Close()
		return nil, err
	}
	bloomBuf := make([]byte, uint64(st.Size())-uint64(footerSize)-bloomOff)
	if _, err := f.ReadAt(bloomBuf, int64(bloomOff)); err != nil {
		f.Close()
		return nil, err
	}
	crc := crc32.ChecksumIEEE(idxBuf)
	crc = crc32.Update(crc, crc32.IEEETable, bloomBuf)
	if crc != wantCRC {
		f.Close()
		return nil, fmt.Errorf("%w: index crc mismatch", ErrCorrupt)
	}

	r := &Reader{f: f, format: format, size: st.Size(), byPK: make(map[string]int, count), maxSeq: maxSeq}
	p := idxBuf
	n, used := enc.Uvarint(p)
	if used <= 0 || n != count {
		f.Close()
		return nil, ErrCorrupt
	}
	p = p[used:]
	for i := uint64(0); i < count; i++ {
		pkb, u := enc.Bytes(p)
		if u == 0 {
			f.Close()
			return nil, ErrCorrupt
		}
		p = p[u:]
		off, u1 := enc.Uvarint(p)
		p = p[u1:]
		size, u2 := enc.Uvarint(p)
		p = p[u2:]
		cells, u3 := enc.Uvarint(p)
		p = p[u3:]
		if u1 <= 0 || u2 <= 0 || u3 <= 0 {
			f.Close()
			return nil, ErrCorrupt
		}
		r.index = append(r.index, indexEntry{pk: string(pkb), offset: off, size: size, cells: cells})
		r.byPK[string(pkb)] = int(i)
	}
	if r.filter, err = bloom.Unmarshal(bloomBuf); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

// readAt is the single physical-read funnel: every post-Open disk
// access goes through it so ReadStats counts I/O operations and bytes
// exactly.
func (r *Reader) readAt(p []byte, off int64) error {
	r.Stats.ReadAtCalls.Add(1)
	r.Stats.BytesRead.Add(int64(len(p)))
	_, err := r.f.ReadAt(p, off)
	return err
}

// AttachCache points the reader at a shared block cache, issuing it a
// fresh table identity. Call once, right after Open, before any reads;
// v3 data blocks and the lazily-loaded meta then live in (and are
// bounded by) the cache instead of per-reader memory. The identity is
// never reused, so a retired table's entries become unreachable and age
// out — invalidation by identity, no purge call.
func (r *Reader) AttachCache(c *BlockCache) {
	if c == nil || r.format != 3 {
		return
	}
	r.cache = c
	r.cacheID = c.NewTableID()
}

// Close releases the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// MaxSeq returns the highest cell version sequence stored in the table;
// 0 for legacy v1 tables (whose cells all carry the zero version). The
// engine restores its write counter from it and uses it to skip tables
// that cannot beat an already-found version.
func (r *Reader) MaxSeq() uint64 { return r.maxSeq }

// Legacy reports whether the table uses the pre-versioning v1 format.
func (r *Reader) Legacy() bool { return r.format == 1 }

// Format returns the table's format revision: 1, 2 or 3.
func (r *Reader) Format() int { return r.format }

// Path returns the file backing this table; the storage engine's
// compactor uses it to retire exactly the inputs it merged.
func (r *Reader) Path() string { return r.f.Name() }

// Size returns the table's file size in bytes; the leveled compactor
// uses it to budget levels and split outputs.
func (r *Reader) Size() int64 { return r.size }

// NumPartitions returns how many partitions the table holds.
func (r *Reader) NumPartitions() int {
	if r.format == 3 {
		return int(r.partCount)
	}
	return len(r.index)
}

// Partitions returns all partition keys in ascending order. For v3
// tables it forces the lazy index load; an I/O failure there returns
// nil (the same failure then surfaces, with its error, on any read).
func (r *Reader) Partitions() []string {
	if r.format == 3 {
		m, err := r.loadMeta()
		if err != nil {
			return nil
		}
		out := make([]string, len(m.parts))
		for i, e := range m.parts {
			out[i] = e.pk
		}
		return out
	}
	out := make([]string, len(r.index))
	for i, e := range r.index {
		out[i] = e.pk
	}
	return out
}

// Bounds returns the table's first and last partition keys, forcing the
// lazy index load on v3. An empty table returns ("", "").
func (r *Reader) Bounds() (first, last string, err error) {
	if r.format == 3 {
		m, err := r.loadMeta()
		if err != nil {
			return "", "", err
		}
		if len(m.parts) == 0 {
			return "", "", nil
		}
		return m.parts[0].pk, m.parts[len(m.parts)-1].pk, nil
	}
	if len(r.index) == 0 {
		return "", "", nil
	}
	return r.index[0].pk, r.index[len(r.index)-1].pk, nil
}

// MayContain consults the bloom filter; false means the partition is
// definitely absent and the read path can skip this table.
func (r *Reader) MayContain(pk string) bool { return r.filter.MayContainString(pk) }

// CellCount returns the number of cells in a partition without reading
// its data.
func (r *Reader) CellCount(pk string) (int, bool) {
	if r.format == 3 {
		m, err := r.loadMeta()
		if err != nil {
			return 0, false
		}
		i, ok := m.byPK[pk]
		if !ok {
			return 0, false
		}
		return int(m.parts[i].cells), true
	}
	i, ok := r.byPK[pk]
	if !ok {
		return 0, false
	}
	return int(r.index[i].cells), true
}

// parsedPartition is a v1/v2 partition record decoded from disk.
type parsedPartition struct {
	colCKs     [][]byte
	colOffsets []uint64
	data       []byte
	cellCount  uint64
	// dataFileOff is the file offset where `data` begins, for chunked
	// slice reads.
	dataFileOff int64
}

// loadHeader reads and parses a v1/v2 partition record. When wholeData
// is false only the header and column index are read; data is fetched
// later chunk by chunk.
func (r *Reader) loadHeader(e indexEntry, wholeData bool) (*parsedPartition, error) {
	// Header is small; read generously but never past the record.
	headLen := e.size
	if !wholeData && headLen > 4096 {
		headLen = 4096
	}
	buf := make([]byte, headLen)
	if err := r.readAt(buf, int64(e.offset)); err != nil {
		return nil, err
	}
	p := buf
	pkb, u := enc.Bytes(p)
	if u == 0 {
		return nil, ErrCorrupt
	}
	_ = pkb
	p = p[u:]
	cellCount, u := enc.Uvarint(p)
	if u <= 0 {
		return nil, ErrCorrupt
	}
	p = p[u:]
	if len(p) == 0 {
		return nil, ErrCorrupt
	}
	hasIndex := p[0] == 1
	p = p[1:]
	pp := &parsedPartition{cellCount: cellCount}
	if hasIndex {
		nEntries, u := enc.Uvarint(p)
		if u <= 0 {
			return nil, ErrCorrupt
		}
		p = p[u:]
		// A column index larger than our header read: re-read the whole
		// record. Simpler than chasing exact sizes and rare in practice.
		if !wholeData && nEntries > 64 {
			return r.loadHeader(e, true)
		}
		pp.colCKs = make([][]byte, 0, nEntries)
		pp.colOffsets = make([]uint64, 0, nEntries)
		for i := uint64(0); i < nEntries; i++ {
			ck, u1 := enc.Bytes(p)
			if u1 == 0 {
				if !wholeData {
					return r.loadHeader(e, true) // truncated by header cap
				}
				return nil, ErrCorrupt
			}
			p = p[u1:]
			off, u2 := enc.Uvarint(p)
			if u2 <= 0 {
				if !wholeData {
					return r.loadHeader(e, true)
				}
				return nil, ErrCorrupt
			}
			p = p[u2:]
			pp.colCKs = append(pp.colCKs, append([]byte(nil), ck...))
			pp.colOffsets = append(pp.colOffsets, off)
		}
		r.Stats.IndexedReads.Add(1)
	}
	dataLen, u := enc.Uvarint(p)
	if u <= 0 {
		if !wholeData {
			return r.loadHeader(e, true)
		}
		return nil, ErrCorrupt
	}
	p = p[u:]
	consumed := int64(len(buf) - len(p))
	pp.dataFileOff = int64(e.offset) + consumed
	if wholeData {
		if uint64(len(p)) < dataLen {
			return nil, ErrCorrupt
		}
		pp.data = p[:dataLen]
	} else if uint64(len(p)) >= dataLen {
		pp.data = p[:dataLen] // small partition fit in the header read
	}
	return pp, nil
}

// ReadPartition returns every cell of a partition.
func (r *Reader) ReadPartition(pk string) ([]row.Cell, error) {
	if r.format == 3 {
		return r.readSliceV3(pk, nil, nil)
	}
	i, ok := r.byPK[pk]
	if !ok {
		return nil, ErrNotFound
	}
	e := r.index[i]
	pp, err := r.loadHeader(e, true)
	if err != nil {
		return nil, err
	}
	r.Stats.PartitionsRead.Add(1)
	return decodeCells(pp.data, int(pp.cellCount), r.format == 1)
}

// ReadSlice returns the cells of a partition with from <= CK < to. For
// partitions the format can seek into — a v1/v2 column index, or a v3
// partition spanning several blocks — it starts at the first relevant
// chunk or block instead of scanning from the partition start: the
// read-path advantage whose cost asymmetry Formula 6 models. Nil bounds
// mean unbounded.
func (r *Reader) ReadSlice(pk string, from, to []byte) ([]row.Cell, error) {
	if r.format == 3 {
		return r.readSliceV3(pk, from, to)
	}
	i, ok := r.byPK[pk]
	if !ok {
		return nil, ErrNotFound
	}
	e := r.index[i]
	pp, err := r.loadHeader(e, false)
	if err != nil {
		return nil, err
	}
	r.Stats.PartitionsRead.Add(1)

	start := uint64(0)
	if from != nil && len(pp.colCKs) > 0 {
		// Find the last chunk whose first key is <= from; chunk 0 is the
		// implicit start of data.
		j := sort.Search(len(pp.colCKs), func(k int) bool {
			return bytes.Compare(pp.colCKs[k], from) > 0
		})
		if j > 0 {
			start = pp.colOffsets[j-1]
			r.Stats.SeeksSaved.Add(int64(start))
		}
	}

	var data []byte
	if pp.data != nil {
		data = pp.data[start:]
	} else {
		// Data was not resident from the header read: fetch from the
		// chunk start to the end of the record.
		length := int64(e.offset) + int64(e.size) - (pp.dataFileOff + int64(start))
		data = make([]byte, length)
		if err := r.readAt(data, pp.dataFileOff+int64(start)); err != nil {
			return nil, err
		}
	}

	var cells []row.Cell
	for len(data) > 0 {
		ck, u := enc.Bytes(data)
		if u == 0 {
			break
		}
		data = data[u:]
		val, u2 := enc.Bytes(data)
		if u2 == 0 {
			return nil, ErrCorrupt
		}
		data = data[u2:]
		var ver row.Version
		var tomb bool
		if r.format != 1 {
			var ok bool
			if ver, tomb, data, ok = decodeCellMeta(data); !ok {
				return nil, ErrCorrupt
			}
		}
		if to != nil && bytes.Compare(ck, to) >= 0 {
			break
		}
		if from != nil && bytes.Compare(ck, from) < 0 {
			continue
		}
		cells = append(cells, row.Cell{
			CK:        append([]byte(nil), ck...),
			Value:     append([]byte(nil), val...),
			Ver:       ver,
			Tombstone: tomb,
		})
	}
	return cells, nil
}

// decodeCellMeta parses the v2 per-cell trailer: seq, node, flags.
func decodeCellMeta(data []byte) (ver row.Version, tomb bool, rest []byte, ok bool) {
	seq, n1 := enc.Uvarint(data)
	if n1 <= 0 {
		return ver, false, nil, false
	}
	data = data[n1:]
	node, n2 := enc.Uvarint(data)
	if n2 <= 0 || len(data) < n2+1 {
		return ver, false, nil, false
	}
	data = data[n2:]
	ver = row.Version{Seq: seq, Node: uint16(node)}
	return ver, data[0]&flagTombstone != 0, data[1:], true
}

// HasColumnIndex reports whether a slice of the partition can seek past
// its start: a v1/v2 column index, or (v3) at least one block boundary
// strictly inside the partition's key range.
func (r *Reader) HasColumnIndex(pk string) (bool, error) {
	if r.format == 3 {
		return r.hasBlockIndexV3(pk)
	}
	i, ok := r.byPK[pk]
	if !ok {
		return false, ErrNotFound
	}
	pp, err := r.loadHeader(r.index[i], false)
	if err != nil {
		return false, err
	}
	return len(pp.colCKs) > 0, nil
}

func decodeCells(data []byte, hint int, legacy bool) ([]row.Cell, error) {
	cells := make([]row.Cell, 0, hint)
	for len(data) > 0 {
		ck, u := enc.Bytes(data)
		if u == 0 {
			return nil, ErrCorrupt
		}
		data = data[u:]
		val, u2 := enc.Bytes(data)
		if u2 == 0 {
			return nil, ErrCorrupt
		}
		data = data[u2:]
		var ver row.Version
		var tomb bool
		if !legacy {
			var ok bool
			if ver, tomb, data, ok = decodeCellMeta(data); !ok {
				return nil, ErrCorrupt
			}
		}
		cells = append(cells, row.Cell{
			CK:        append([]byte(nil), ck...),
			Value:     append([]byte(nil), val...),
			Ver:       ver,
			Tombstone: tomb,
		})
	}
	return cells, nil
}
