// Package sstable implements the immutable on-disk sorted runs of the
// storage engine, modelled on Cassandra's SSTable as the paper depends on
// it.
//
// The detail that matters for the paper's Formula 6 is the **column
// index**: like Cassandra's column_index_size_in_kb (default 64KB), a
// partition whose serialized cells exceed ColumnIndexSize gets a sparse
// per-chunk index (first clustering key + offset every ColumnIndexSize
// bytes), while smaller partitions get none. Reading an indexed partition
// pays the extra index parse; reading a slice of one can seek instead of
// scanning. That asymmetry is exactly the discontinuity at ~1425
// rows/64KB that the paper measured in Figure 6 and folded into its
// piecewise database model.
//
// File layout:
//
//	"SKVT" | data section | partition index | bloom filter | footer
//
// where the footer stores section offsets, the entry count and a CRC of
// the two index sections.
//
// Two format revisions coexist. The v1 cell encoding is (ck, value) and
// its footer ends in "SKVT"; cells read back with the zero version. The
// v2 encoding appends each cell's version and a flags byte (tombstones
// survive flush and mask older copies until compaction collects them),
// and its footer ends in "SKV2" and additionally records the maximum
// version sequence in the table — the engine restores its write counter
// from it on reopen, and skips tables that cannot beat an already-found
// version on point reads. The writer always produces v2 (except under
// WriterOptions.LegacyV1, kept for compatibility tests); the reader
// serves both.
package sstable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync/atomic"

	"scalekv/internal/bloom"
	"scalekv/internal/enc"
	"scalekv/internal/row"
)

// DefaultColumnIndexSize matches Cassandra's column_index_size_in_kb
// default of 64KB.
const DefaultColumnIndexSize = 64 << 10

var (
	magic   = []byte("SKVT") // header, and v1 footer terminator
	magicV2 = []byte("SKV2") // v2 footer terminator
)

const (
	footerSizeV1 = 8 + 8 + 8 + 4 + 4     // indexOff, bloomOff, count, crc, magic
	footerSizeV2 = 8 + 8 + 8 + 8 + 4 + 4 // + maxSeq before the crc
)

const flagTombstone = byte(1)

// ErrCorrupt reports a structurally invalid SSTable file.
var ErrCorrupt = errors.New("sstable: corrupt file")

// ErrNotFound reports a partition absent from the table.
var ErrNotFound = errors.New("sstable: partition not found")

// indexEntry locates one partition inside the data section.
type indexEntry struct {
	pk     string
	offset uint64
	size   uint64 // total bytes of the partition record
	cells  uint64
}

// Writer builds an SSTable. Partitions must be added in ascending
// partition-key byte order with cells sorted by clustering key; the
// memtable flush path provides exactly that.
type Writer struct {
	f               *os.File
	w               *countingWriter
	index           []indexEntry
	filter          *bloom.Filter
	columnIndexSize int
	lastPK          string
	started         bool
	legacy          bool
	maxSeq          uint64
	err             error
}

// WriterOptions configures SSTable construction.
type WriterOptions struct {
	// ColumnIndexSize is the chunk granularity of the column index;
	// 0 means DefaultColumnIndexSize. Negative disables column indexes
	// entirely (an ablation knob for the Figure 6 experiment).
	ColumnIndexSize int
	// ExpectedPartitions sizes the bloom filter; 0 means 1024.
	ExpectedPartitions int
	// BloomFPRate is the target false positive rate; 0 means 1%.
	BloomFPRate float64
	// LegacyV1 writes the pre-versioning cell format (no versions, no
	// tombstones — AddPartition rejects tombstone cells). It exists so
	// compatibility tests can produce the tables an older engine would
	// have left on disk; production flushes always write v2.
	LegacyV1 bool
}

// NewWriter creates an SSTable file at path, truncating any existing one.
func NewWriter(path string, opts WriterOptions) (*Writer, error) {
	if opts.ColumnIndexSize == 0 {
		opts.ColumnIndexSize = DefaultColumnIndexSize
	}
	if opts.ExpectedPartitions <= 0 {
		opts.ExpectedPartitions = 1024
	}
	if opts.BloomFPRate <= 0 {
		opts.BloomFPRate = 0.01
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("sstable: create: %w", err)
	}
	w := &Writer{
		f:               f,
		w:               &countingWriter{w: f},
		filter:          bloom.NewWithRate(opts.ExpectedPartitions, opts.BloomFPRate),
		columnIndexSize: opts.ColumnIndexSize,
		legacy:          opts.LegacyV1,
	}
	if _, err := w.w.Write(magic); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// AddPartition appends one partition. Cells must be sorted by clustering
// key and the partition key must be greater than any previously added.
func (w *Writer) AddPartition(pk string, cells []row.Cell) error {
	if w.err != nil {
		return w.err
	}
	if w.started && pk <= w.lastPK {
		return fmt.Errorf("sstable: partition %q out of order (last %q)", pk, w.lastPK)
	}
	w.started, w.lastPK = true, pk

	// Serialize cells, recording a column-index entry at each chunk
	// boundary when the partition is large enough to deserve one.
	var data []byte
	type colEntry struct {
		ck     []byte
		offset uint64
	}
	var colIndex []colEntry
	chunkStart := 0
	for i, c := range cells {
		if i > 0 && bytes.Compare(cells[i-1].CK, c.CK) >= 0 {
			w.err = fmt.Errorf("sstable: cells out of order in partition %q", pk)
			return w.err
		}
		if len(data)-chunkStart >= w.columnIndexSize && w.columnIndexSize > 0 {
			chunkStart = len(data)
			colIndex = append(colIndex, colEntry{ck: c.CK, offset: uint64(len(data))})
		}
		data = enc.AppendBytes(data, c.CK)
		data = enc.AppendBytes(data, c.Value)
		if w.legacy {
			if c.Tombstone {
				w.err = fmt.Errorf("sstable: tombstone cell in legacy v1 table (partition %q)", pk)
				return w.err
			}
			continue
		}
		data = enc.AppendUvarint(data, c.Ver.Seq)
		data = enc.AppendUvarint(data, uint64(c.Ver.Node))
		flags := byte(0)
		if c.Tombstone {
			flags = flagTombstone
		}
		data = append(data, flags)
		if c.Ver.Seq > w.maxSeq {
			w.maxSeq = c.Ver.Seq
		}
	}
	// Cassandra semantics: partitions smaller than one chunk carry no
	// column index at all.
	hasIndex := len(colIndex) > 0

	var rec []byte
	rec = enc.AppendBytes(rec, []byte(pk))
	rec = enc.AppendUvarint(rec, uint64(len(cells)))
	if hasIndex {
		rec = append(rec, 1)
		rec = enc.AppendUvarint(rec, uint64(len(colIndex)))
		for _, e := range colIndex {
			rec = enc.AppendBytes(rec, e.ck)
			rec = enc.AppendUvarint(rec, e.offset)
		}
	} else {
		rec = append(rec, 0)
	}
	rec = enc.AppendUvarint(rec, uint64(len(data)))
	rec = append(rec, data...)

	offset := w.w.count
	if _, err := w.w.Write(rec); err != nil {
		w.err = err
		return err
	}
	w.index = append(w.index, indexEntry{
		pk: pk, offset: offset, size: uint64(len(rec)), cells: uint64(len(cells)),
	})
	w.filter.AddString(pk)
	return nil
}

// Close writes the index, bloom filter and footer, then syncs and closes
// the file. The Writer is unusable afterwards.
func (w *Writer) Close() error {
	if w.err != nil {
		w.f.Close()
		return w.err
	}
	indexOff := w.w.count
	var idx []byte
	idx = enc.AppendUvarint(idx, uint64(len(w.index)))
	for _, e := range w.index {
		idx = enc.AppendBytes(idx, []byte(e.pk))
		idx = enc.AppendUvarint(idx, e.offset)
		idx = enc.AppendUvarint(idx, e.size)
		idx = enc.AppendUvarint(idx, e.cells)
	}
	if _, err := w.w.Write(idx); err != nil {
		w.f.Close()
		return err
	}
	bloomOff := w.w.count
	bf := w.filter.Marshal()
	if _, err := w.w.Write(bf); err != nil {
		w.f.Close()
		return err
	}
	crc := crc32.ChecksumIEEE(idx)
	crc = crc32.Update(crc, crc32.IEEETable, bf)

	var footer []byte
	if w.legacy {
		footer = make([]byte, footerSizeV1)
		binary.LittleEndian.PutUint64(footer[0:], indexOff)
		binary.LittleEndian.PutUint64(footer[8:], bloomOff)
		binary.LittleEndian.PutUint64(footer[16:], uint64(len(w.index)))
		binary.LittleEndian.PutUint32(footer[24:], crc)
		copy(footer[28:], magic)
	} else {
		footer = make([]byte, footerSizeV2)
		binary.LittleEndian.PutUint64(footer[0:], indexOff)
		binary.LittleEndian.PutUint64(footer[8:], bloomOff)
		binary.LittleEndian.PutUint64(footer[16:], uint64(len(w.index)))
		binary.LittleEndian.PutUint64(footer[24:], w.maxSeq)
		binary.LittleEndian.PutUint32(footer[32:], crc)
		copy(footer[36:], magicV2)
	}
	if _, err := w.w.Write(footer); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

type countingWriter struct {
	w     io.Writer
	count uint64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.count += uint64(n)
	return n, err
}

// ReadStats counts the physical work a Reader has done; the Figure 6
// harness and the column-index tests use it to verify that slices of
// indexed partitions really touch fewer bytes.
type ReadStats struct {
	PartitionsRead atomic.Int64
	BytesRead      atomic.Int64
	IndexedReads   atomic.Int64 // reads that parsed a column index
	SeeksSaved     atomic.Int64 // bytes skipped thanks to the column index
}

// Reader serves point and range reads from one SSTable file. It is safe
// for concurrent use: all reads go through ReadAt.
type Reader struct {
	f      *os.File
	index  []indexEntry
	byPK   map[string]int
	filter *bloom.Filter
	legacy bool   // v1 cell encoding: no versions, no tombstones
	maxSeq uint64 // highest version sequence in the table (0 for v1)
	Stats  ReadStats
}

// Open loads an SSTable's index and bloom filter into memory and returns
// a reader for it. The format revision is detected from the footer
// terminator: "SKVT" (v1) or "SKV2".
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sstable: open: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < int64(len(magic)+footerSizeV1) {
		f.Close()
		return nil, ErrCorrupt
	}
	var term [4]byte
	if _, err := f.ReadAt(term[:], st.Size()-4); err != nil {
		f.Close()
		return nil, err
	}
	legacy := false
	footerSize := footerSizeV2
	switch {
	case bytes.Equal(term[:], magicV2):
	case bytes.Equal(term[:], magic):
		legacy, footerSize = true, footerSizeV1
	default:
		f.Close()
		return nil, ErrCorrupt
	}
	if st.Size() < int64(len(magic)+footerSize) {
		f.Close()
		return nil, ErrCorrupt
	}
	footer := make([]byte, footerSize)
	if _, err := f.ReadAt(footer, st.Size()-int64(footerSize)); err != nil {
		f.Close()
		return nil, err
	}
	indexOff := binary.LittleEndian.Uint64(footer[0:])
	bloomOff := binary.LittleEndian.Uint64(footer[8:])
	count := binary.LittleEndian.Uint64(footer[16:])
	var maxSeq uint64
	var wantCRC uint32
	if legacy {
		wantCRC = binary.LittleEndian.Uint32(footer[24:])
	} else {
		maxSeq = binary.LittleEndian.Uint64(footer[24:])
		wantCRC = binary.LittleEndian.Uint32(footer[32:])
	}
	if indexOff > bloomOff || bloomOff > uint64(st.Size())-uint64(footerSize) {
		f.Close()
		return nil, ErrCorrupt
	}

	idxBuf := make([]byte, bloomOff-indexOff)
	if _, err := f.ReadAt(idxBuf, int64(indexOff)); err != nil {
		f.Close()
		return nil, err
	}
	bloomBuf := make([]byte, uint64(st.Size())-uint64(footerSize)-bloomOff)
	if _, err := f.ReadAt(bloomBuf, int64(bloomOff)); err != nil {
		f.Close()
		return nil, err
	}
	crc := crc32.ChecksumIEEE(idxBuf)
	crc = crc32.Update(crc, crc32.IEEETable, bloomBuf)
	if crc != wantCRC {
		f.Close()
		return nil, fmt.Errorf("%w: index crc mismatch", ErrCorrupt)
	}

	r := &Reader{f: f, byPK: make(map[string]int, count), legacy: legacy, maxSeq: maxSeq}
	p := idxBuf
	n, used := enc.Uvarint(p)
	if used <= 0 || n != count {
		f.Close()
		return nil, ErrCorrupt
	}
	p = p[used:]
	for i := uint64(0); i < count; i++ {
		pkb, u := enc.Bytes(p)
		if u == 0 {
			f.Close()
			return nil, ErrCorrupt
		}
		p = p[u:]
		off, u1 := enc.Uvarint(p)
		p = p[u1:]
		size, u2 := enc.Uvarint(p)
		p = p[u2:]
		cells, u3 := enc.Uvarint(p)
		p = p[u3:]
		if u1 <= 0 || u2 <= 0 || u3 <= 0 {
			f.Close()
			return nil, ErrCorrupt
		}
		r.index = append(r.index, indexEntry{pk: string(pkb), offset: off, size: size, cells: cells})
		r.byPK[string(pkb)] = int(i)
	}
	if r.filter, err = bloom.Unmarshal(bloomBuf); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

// Close releases the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// MaxSeq returns the highest cell version sequence stored in the table;
// 0 for legacy v1 tables (whose cells all carry the zero version). The
// engine restores its write counter from it and uses it to skip tables
// that cannot beat an already-found version.
func (r *Reader) MaxSeq() uint64 { return r.maxSeq }

// Legacy reports whether the table uses the pre-versioning v1 format.
func (r *Reader) Legacy() bool { return r.legacy }

// Path returns the file backing this table; the storage engine's
// compactor uses it to retire exactly the inputs it merged.
func (r *Reader) Path() string { return r.f.Name() }

// NumPartitions returns how many partitions the table holds.
func (r *Reader) NumPartitions() int { return len(r.index) }

// Partitions returns all partition keys in ascending order.
func (r *Reader) Partitions() []string {
	out := make([]string, len(r.index))
	for i, e := range r.index {
		out[i] = e.pk
	}
	return out
}

// MayContain consults the bloom filter; false means the partition is
// definitely absent and the read path can skip this table.
func (r *Reader) MayContain(pk string) bool { return r.filter.MayContainString(pk) }

// CellCount returns the number of cells in a partition without reading
// its data.
func (r *Reader) CellCount(pk string) (int, bool) {
	i, ok := r.byPK[pk]
	if !ok {
		return 0, false
	}
	return int(r.index[i].cells), true
}

// parsedPartition is a partition record decoded from disk.
type parsedPartition struct {
	colCKs     [][]byte
	colOffsets []uint64
	data       []byte
	cellCount  uint64
	// dataFileOff is the file offset where `data` begins, for chunked
	// slice reads.
	dataFileOff int64
}

// loadHeader reads and parses a partition record. When wholeData is
// false only the header and column index are read; data is fetched later
// chunk by chunk.
func (r *Reader) loadHeader(e indexEntry, wholeData bool) (*parsedPartition, error) {
	// Header is small; read generously but never past the record.
	headLen := e.size
	if !wholeData && headLen > 4096 {
		headLen = 4096
	}
	buf := make([]byte, headLen)
	if _, err := r.f.ReadAt(buf, int64(e.offset)); err != nil {
		return nil, err
	}
	r.Stats.BytesRead.Add(int64(headLen))
	p := buf
	pkb, u := enc.Bytes(p)
	if u == 0 {
		return nil, ErrCorrupt
	}
	_ = pkb
	p = p[u:]
	cellCount, u := enc.Uvarint(p)
	if u <= 0 {
		return nil, ErrCorrupt
	}
	p = p[u:]
	if len(p) == 0 {
		return nil, ErrCorrupt
	}
	hasIndex := p[0] == 1
	p = p[1:]
	pp := &parsedPartition{cellCount: cellCount}
	if hasIndex {
		nEntries, u := enc.Uvarint(p)
		if u <= 0 {
			return nil, ErrCorrupt
		}
		p = p[u:]
		// A column index larger than our header read: re-read the whole
		// record. Simpler than chasing exact sizes and rare in practice.
		if !wholeData && nEntries > 64 {
			return r.loadHeader(e, true)
		}
		pp.colCKs = make([][]byte, 0, nEntries)
		pp.colOffsets = make([]uint64, 0, nEntries)
		for i := uint64(0); i < nEntries; i++ {
			ck, u1 := enc.Bytes(p)
			if u1 == 0 {
				if !wholeData {
					return r.loadHeader(e, true) // truncated by header cap
				}
				return nil, ErrCorrupt
			}
			p = p[u1:]
			off, u2 := enc.Uvarint(p)
			if u2 <= 0 {
				if !wholeData {
					return r.loadHeader(e, true)
				}
				return nil, ErrCorrupt
			}
			p = p[u2:]
			pp.colCKs = append(pp.colCKs, append([]byte(nil), ck...))
			pp.colOffsets = append(pp.colOffsets, off)
		}
		r.Stats.IndexedReads.Add(1)
	}
	dataLen, u := enc.Uvarint(p)
	if u <= 0 {
		if !wholeData {
			return r.loadHeader(e, true)
		}
		return nil, ErrCorrupt
	}
	p = p[u:]
	consumed := int64(len(buf) - len(p))
	pp.dataFileOff = int64(e.offset) + consumed
	if wholeData {
		if uint64(len(p)) < dataLen {
			return nil, ErrCorrupt
		}
		pp.data = p[:dataLen]
	} else if uint64(len(p)) >= dataLen {
		pp.data = p[:dataLen] // small partition fit in the header read
	}
	return pp, nil
}

// ReadPartition returns every cell of a partition.
func (r *Reader) ReadPartition(pk string) ([]row.Cell, error) {
	i, ok := r.byPK[pk]
	if !ok {
		return nil, ErrNotFound
	}
	e := r.index[i]
	pp, err := r.loadHeader(e, true)
	if err != nil {
		return nil, err
	}
	r.Stats.PartitionsRead.Add(1)
	return decodeCells(pp.data, int(pp.cellCount), r.legacy)
}

// ReadSlice returns the cells of a partition with from <= CK < to. For
// partitions with a column index it seeks to the first relevant chunk
// instead of scanning from the start — the read-path advantage whose cost
// asymmetry Formula 6 models. Nil bounds mean unbounded.
func (r *Reader) ReadSlice(pk string, from, to []byte) ([]row.Cell, error) {
	i, ok := r.byPK[pk]
	if !ok {
		return nil, ErrNotFound
	}
	e := r.index[i]
	pp, err := r.loadHeader(e, false)
	if err != nil {
		return nil, err
	}
	r.Stats.PartitionsRead.Add(1)

	start := uint64(0)
	if from != nil && len(pp.colCKs) > 0 {
		// Find the last chunk whose first key is <= from; chunk 0 is the
		// implicit start of data.
		j := sort.Search(len(pp.colCKs), func(k int) bool {
			return bytes.Compare(pp.colCKs[k], from) > 0
		})
		if j > 0 {
			start = pp.colOffsets[j-1]
			r.Stats.SeeksSaved.Add(int64(start))
		}
	}

	var data []byte
	if pp.data != nil {
		data = pp.data[start:]
	} else {
		// Data was not resident from the header read: fetch from the
		// chunk start to the end of the record.
		length := int64(e.offset) + int64(e.size) - (pp.dataFileOff + int64(start))
		data = make([]byte, length)
		if _, err := r.f.ReadAt(data, pp.dataFileOff+int64(start)); err != nil {
			return nil, err
		}
		r.Stats.BytesRead.Add(length)
	}

	var cells []row.Cell
	for len(data) > 0 {
		ck, u := enc.Bytes(data)
		if u == 0 {
			break
		}
		data = data[u:]
		val, u2 := enc.Bytes(data)
		if u2 == 0 {
			return nil, ErrCorrupt
		}
		data = data[u2:]
		var ver row.Version
		var tomb bool
		if !r.legacy {
			var ok bool
			if ver, tomb, data, ok = decodeCellMeta(data); !ok {
				return nil, ErrCorrupt
			}
		}
		if to != nil && bytes.Compare(ck, to) >= 0 {
			break
		}
		if from != nil && bytes.Compare(ck, from) < 0 {
			continue
		}
		cells = append(cells, row.Cell{
			CK:        append([]byte(nil), ck...),
			Value:     append([]byte(nil), val...),
			Ver:       ver,
			Tombstone: tomb,
		})
	}
	return cells, nil
}

// decodeCellMeta parses the v2 per-cell trailer: seq, node, flags.
func decodeCellMeta(data []byte) (ver row.Version, tomb bool, rest []byte, ok bool) {
	seq, n1 := enc.Uvarint(data)
	if n1 <= 0 {
		return ver, false, nil, false
	}
	data = data[n1:]
	node, n2 := enc.Uvarint(data)
	if n2 <= 0 || len(data) < n2+1 {
		return ver, false, nil, false
	}
	data = data[n2:]
	ver = row.Version{Seq: seq, Node: uint16(node)}
	return ver, data[0]&flagTombstone != 0, data[1:], true
}

// HasColumnIndex reports whether the partition carries a column index
// (i.e. its serialized size crossed the writer's ColumnIndexSize).
func (r *Reader) HasColumnIndex(pk string) (bool, error) {
	i, ok := r.byPK[pk]
	if !ok {
		return false, ErrNotFound
	}
	pp, err := r.loadHeader(r.index[i], false)
	if err != nil {
		return false, err
	}
	return len(pp.colCKs) > 0, nil
}

func decodeCells(data []byte, hint int, legacy bool) ([]row.Cell, error) {
	cells := make([]row.Cell, 0, hint)
	for len(data) > 0 {
		ck, u := enc.Bytes(data)
		if u == 0 {
			return nil, ErrCorrupt
		}
		data = data[u:]
		val, u2 := enc.Bytes(data)
		if u2 == 0 {
			return nil, ErrCorrupt
		}
		data = data[u2:]
		var ver row.Version
		var tomb bool
		if !legacy {
			var ok bool
			if ver, tomb, data, ok = decodeCellMeta(data); !ok {
				return nil, ErrCorrupt
			}
		}
		cells = append(cells, row.Cell{
			CK:        append([]byte(nil), ck...),
			Value:     append([]byte(nil), val...),
			Ver:       ver,
			Tombstone: tomb,
		})
	}
	return cells, nil
}
