package sstable

import (
	"bytes"
	"fmt"
	"testing"

	"scalekv/internal/enc"
	"scalekv/internal/row"
)

// FuzzBlockCodec pins two properties of the v3 block codec:
//
//  1. decodeBlock never panics on arbitrary input bytes — every
//     structural violation yields ErrCorrupt (or a clean stop).
//  2. A block built from entries derived from the fuzz input decodes
//     back to exactly those entries.
func FuzzBlockCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	// A small valid block as a seed so coverage reaches the happy path.
	var seed blockBuilder
	seed.add(enc.EncodeInternalKey("p", []byte("a")), []byte("v"), row.Version{Seq: 1, Node: 2}, false)
	seed.add(enc.EncodeInternalKey("p", []byte("b")), nil, row.Version{Seq: 3, Node: 4}, true)
	f.Add(append([]byte(nil), seed.finish()...))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Property 1: arbitrary bytes must not panic.
		_ = decodeBlock(data, func(ik, value []byte, ver row.Version, tomb bool) bool {
			return true
		})

		// Property 2: round-trip entries derived from the input.
		type entry struct {
			ik, value []byte
			ver       row.Version
			tomb      bool
		}
		byteAt := func(i int) byte {
			if len(data) == 0 {
				return 0
			}
			return data[i%len(data)]
		}
		n := int(byteAt(0))%40 + 1
		var b blockBuilder
		var want []entry
		for i := 0; i < n; i++ {
			// Ascending keys: the index prefix guarantees order, the
			// data-derived suffix varies shared-prefix lengths.
			sufLen := int(byteAt(i+1)) % 8
			suf := make([]byte, sufLen)
			for j := range suf {
				suf[j] = byteAt(i + j + 2)
			}
			ik := enc.EncodeInternalKey("part", []byte(fmt.Sprintf("k%04d-%x", i, suf)))
			vLen := int(byteAt(i+3)) % 16
			value := make([]byte, vLen)
			for j := range value {
				value[j] = byteAt(i*7 + j)
			}
			ver := row.Version{
				Seq:  uint64(byteAt(i+4))<<8 | uint64(byteAt(i+5)),
				Node: uint16(byteAt(i + 6)),
			}
			tomb := byteAt(i+7)%2 == 1
			b.add(ik, value, ver, tomb)
			want = append(want, entry{ik, value, ver, tomb})
		}
		block := b.finish()
		var got []entry
		err := decodeBlock(block, func(ik, value []byte, ver row.Version, tomb bool) bool {
			got = append(got, entry{
				ik:    append([]byte(nil), ik...),
				value: append([]byte(nil), value...),
				ver:   ver,
				tomb:  tomb,
			})
			return true
		})
		if err != nil {
			t.Fatalf("decode of freshly built block: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("round trip: %d entries in, %d out", len(want), len(got))
		}
		for i := range want {
			if !bytes.Equal(got[i].ik, want[i].ik) || !bytes.Equal(got[i].value, want[i].value) ||
				got[i].ver != want[i].ver || got[i].tomb != want[i].tomb {
				t.Fatalf("round trip: entry %d mismatch: %+v vs %+v", i, got[i], want[i])
			}
		}
	})
}
