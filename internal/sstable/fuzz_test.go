package sstable

import (
	"bytes"
	"fmt"
	"testing"

	"scalekv/internal/enc"
	"scalekv/internal/row"
)

// FuzzBlockCodec pins three properties of the v3 block codec,
// compression included:
//
//  1. decodeBlock never panics on arbitrary input bytes — every
//     structural violation yields ErrCorrupt (or a clean stop). The
//     input exercises the whole stored-block surface: CRC check, flag
//     dispatch, LZ decompression, entry walk.
//  2. lzDecompress never panics or overruns on arbitrary compressed
//     bytes.
//  3. A block built from entries derived from the fuzz input round-trips
//     exactly, through both the compressed and the raw stored form.
func FuzzBlockCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	// Small valid stored blocks as seeds so coverage reaches the happy
	// paths: one raw, one LZ-compressed (repetitive values compress).
	var seed blockBuilder
	seed.add(enc.EncodeInternalKey("p", []byte("a")), []byte("v"), row.Version{Seq: 1, Node: 2}, false)
	seed.add(enc.EncodeInternalKey("p", []byte("b")), nil, row.Version{Seq: 3, Node: 4}, true)
	rawSeed, _ := sealBlock(seed.finishEntries(), NoCompression, nil)
	f.Add(append([]byte(nil), rawSeed...))
	var zseed blockBuilder
	for i := 0; i < 32; i++ {
		zseed.add(enc.EncodeInternalKey("p", []byte(fmt.Sprintf("k%04d", i))),
			bytes.Repeat([]byte("abcd"), 16), row.Version{Seq: uint64(i)}, false)
	}
	lzSeed, compressed := sealBlock(zseed.finishEntries(), DefaultCompression, new([1 << lzTableBits]int32))
	if !compressed {
		f.Fatal("repetitive seed block did not compress")
	}
	f.Add(append([]byte(nil), lzSeed...))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Property 1: arbitrary bytes must not panic.
		_ = decodeBlock(data, func(ik, value []byte, ver row.Version, tomb bool) bool {
			return true
		})

		// Property 2: the LZ decoder alone must not panic or overrun on
		// arbitrary input, whatever length the header claims.
		if n, err := lzDecodedLen(data); err == nil && n <= 1<<16 {
			_ = lzDecompress(make([]byte, n), data)
		}

		// Property 3: round-trip entries derived from the input.
		type entry struct {
			ik, value []byte
			ver       row.Version
			tomb      bool
		}
		byteAt := func(i int) byte {
			if len(data) == 0 {
				return 0
			}
			return data[i%len(data)]
		}
		n := int(byteAt(0))%40 + 1
		var b blockBuilder
		var want []entry
		for i := 0; i < n; i++ {
			// Ascending keys: the index prefix guarantees order, the
			// data-derived suffix varies shared-prefix lengths.
			sufLen := int(byteAt(i+1)) % 8
			suf := make([]byte, sufLen)
			for j := range suf {
				suf[j] = byteAt(i + j + 2)
			}
			ik := enc.EncodeInternalKey("part", []byte(fmt.Sprintf("k%04d-%x", i, suf)))
			vLen := int(byteAt(i+3)) % 16
			value := make([]byte, vLen)
			for j := range value {
				value[j] = byteAt(i*7 + j)
			}
			ver := row.Version{
				Seq:  uint64(byteAt(i+4))<<8 | uint64(byteAt(i+5)),
				Node: uint16(byteAt(i + 6)),
			}
			tomb := byteAt(i+7)%2 == 1
			b.add(ik, value, ver, tomb)
			want = append(want, entry{ik, value, ver, tomb})
		}
		payload := b.finishEntries()
		lzTable := new([1 << lzTableBits]int32)
		for _, mode := range []Compression{DefaultCompression, NoCompression} {
			stored, _ := sealBlock(payload, mode, lzTable)
			var got []entry
			err := decodeBlock(stored, func(ik, value []byte, ver row.Version, tomb bool) bool {
				got = append(got, entry{
					ik:    append([]byte(nil), ik...),
					value: append([]byte(nil), value...),
					ver:   ver,
					tomb:  tomb,
				})
				return true
			})
			if err != nil {
				t.Fatalf("decode of freshly built block (mode %d): %v", mode, err)
			}
			if len(got) != len(want) {
				t.Fatalf("round trip (mode %d): %d entries in, %d out", mode, len(want), len(got))
			}
			for i := range want {
				if !bytes.Equal(got[i].ik, want[i].ik) || !bytes.Equal(got[i].value, want[i].value) ||
					got[i].ver != want[i].ver || got[i].tomb != want[i].tomb {
					t.Fatalf("round trip (mode %d): entry %d mismatch: %+v vs %+v", mode, i, got[i], want[i])
				}
			}
		}
	})
}
