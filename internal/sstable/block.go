package sstable

import (
	"encoding/binary"
	"hash/crc32"
	"math"

	"scalekv/internal/enc"
	"scalekv/internal/row"
)

// This file is the v3 data-block codec: restart-point prefix-compressed
// cell entries with a per-block CRC, in the LevelDB/KevoDB tradition,
// optionally LZ-compressed on disk (see compress.go).
//
// Entries are keyed by the enc internal key (escaped partition key,
// separator, clustering key), so byte order within and across blocks is
// (pk, ck) order. Each entry stores only the suffix of its key that
// differs from the previous entry's; every restartInterval-th entry is a
// restart point carrying its full key, so decoding can always begin at
// the block start without external state.
//
// The entry payload is:
//
//	entry*  restart-offset[u32 LE]*  numRestarts[u32 LE]
//
// and its stored (on-disk) form is:
//
//	flag byte | payload-or-compressed-payload | crc32[u32 LE]
//
// where flag 0x01 means the payload is stored raw and 0x02 means it is
// LZ-compressed. The CRC covers everything before it — the flag and the
// stored (possibly compressed) bytes — so a damaged block is caught
// before any decompression is attempted. Blocks written before the
// compression revision have no flag byte; their first byte is always
// 0x00 (the first entry is a restart point, so its shared-length uvarint
// is zero), which no flagged block can start with, making the two
// layouts self-distinguishing with no table-level marker.
//
// Entry layout:
//
//	shared uvarint | unshared uvarint | valueLen uvarint |
//	key suffix | value | seq uvarint | node uvarint | flags byte

const (
	// DefaultBlockSize is the target size of a v3 data block: small
	// enough that a cold point read transfers little more than it needs,
	// large enough to amortize the per-block CRC and index entry.
	DefaultBlockSize = 4 << 10

	blockRestartInterval = 16

	// Stored-block flag byte values. 0x00 is reserved: it identifies a
	// pre-compression block (see the layout comment above).
	blockFlagRaw = byte(0x01)
	blockFlagLZ  = byte(0x02)
)

// Compression selects the on-disk block codec of a v3 table.
type Compression int

const (
	// DefaultCompression is LZ: blocks are compressed unless the
	// compressibility probe finds the saving too small to bother.
	DefaultCompression Compression = iota
	// NoCompression stores every block raw — the escape hatch for
	// workloads of incompressible values where the probe's work is pure
	// overhead.
	NoCompression
	// LZCompression names the default explicitly.
	LZCompression
)

// blockBuilder accumulates prefix-compressed entries for one data block.
type blockBuilder struct {
	buf      []byte
	restarts []uint32
	count    int
	prevKey  []byte
}

func (b *blockBuilder) empty() bool { return b.count == 0 }
func (b *blockBuilder) size() int   { return len(b.buf) }

func (b *blockBuilder) reset() {
	b.buf = b.buf[:0]
	b.restarts = b.restarts[:0]
	b.count = 0
	b.prevKey = b.prevKey[:0]
}

// add appends one cell. Keys must arrive in ascending byte order; the
// writer's partition/cell ordering checks guarantee it.
func (b *blockBuilder) add(ik, value []byte, ver row.Version, tomb bool) {
	shared := 0
	if b.count%blockRestartInterval == 0 {
		b.restarts = append(b.restarts, uint32(len(b.buf)))
	} else {
		max := len(b.prevKey)
		if len(ik) < max {
			max = len(ik)
		}
		for shared < max && b.prevKey[shared] == ik[shared] {
			shared++
		}
	}
	b.buf = enc.AppendUvarint(b.buf, uint64(shared))
	b.buf = enc.AppendUvarint(b.buf, uint64(len(ik)-shared))
	b.buf = enc.AppendUvarint(b.buf, uint64(len(value)))
	b.buf = append(b.buf, ik[shared:]...)
	b.buf = append(b.buf, value...)
	b.buf = enc.AppendUvarint(b.buf, ver.Seq)
	b.buf = enc.AppendUvarint(b.buf, uint64(ver.Node))
	flags := byte(0)
	if tomb {
		flags = flagTombstone
	}
	b.buf = append(b.buf, flags)
	b.prevKey = append(b.prevKey[:0], ik...)
	b.count++
}

// finishEntries appends the restart array and count, returning the
// uncompressed entry payload (no flag, no CRC — sealBlock adds the
// stored framing). The builder must be reset before reuse.
func (b *blockBuilder) finishEntries() []byte {
	for _, r := range b.restarts {
		b.buf = binary.LittleEndian.AppendUint32(b.buf, r)
	}
	b.buf = binary.LittleEndian.AppendUint32(b.buf, uint32(len(b.restarts)))
	return b.buf
}

// sealBlock wraps an entry payload into its stored on-disk form: flag
// byte, raw or compressed payload, trailing CRC over both. Under
// (Default|LZ)Compression the payload is probed for compressibility —
// blocks too small to win, or whose compressed form saves less than
// 1/8th, are stored raw, so incompressible values cost one cheap
// compression pass and nothing on the read side. The table parameter is
// the encoder's reusable scratch. The returned slice is freshly
// allocated; compressed reports which flag was chosen.
func sealBlock(payload []byte, compression Compression, table *[1 << lzTableBits]int32) (stored []byte, compressed bool) {
	if compression != NoCompression && len(payload) >= lzMinInput {
		buf := make([]byte, 0, len(payload)+8)
		buf = append(buf, blockFlagLZ)
		buf = lzCompress(buf, payload, table)
		if len(buf)-1 < len(payload)-len(payload)/8 {
			buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
			return buf, true
		}
	}
	buf := make([]byte, 0, len(payload)+5)
	buf = append(buf, blockFlagRaw)
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, false
}

// decodeStoredBlock verifies a stored block's CRC and returns its entry
// payload, decompressing when the flag byte says to. The CRC covers the
// stored bytes — flag included — so corruption is caught before any
// decode is attempted. Blocks from the pre-compression revision (first
// byte 0x00, CRC over the same extent) pass through unchanged. The
// returned payload aliases block for raw and legacy layouts and is
// freshly allocated for compressed ones.
func decodeStoredBlock(block []byte) ([]byte, error) {
	if len(block) < 5 {
		return nil, ErrCorrupt
	}
	crcOff := len(block) - 4
	if crc32.ChecksumIEEE(block[:crcOff]) != binary.LittleEndian.Uint32(block[crcOff:]) {
		return nil, ErrCorrupt
	}
	switch block[0] {
	case 0x00:
		// Pre-compression block: no flag byte, the whole pre-CRC extent
		// is the payload.
		return block[:crcOff], nil
	case blockFlagRaw:
		return block[1:crcOff], nil
	case blockFlagLZ:
		n, err := lzDecodedLen(block[1:crcOff])
		if err != nil {
			return nil, err
		}
		payload := make([]byte, n)
		if err := lzDecompress(payload, block[1:crcOff]); err != nil {
			return nil, err
		}
		return payload, nil
	default:
		return nil, ErrCorrupt
	}
}

// decodeBlock decodes a stored block end to end: CRC check, optional
// decompression, then the entry walk. See decodeStoredBlock and
// decodeEntries.
func decodeBlock(block []byte, fn func(ik, value []byte, ver row.Version, tomb bool) bool) error {
	payload, err := decodeStoredBlock(block)
	if err != nil {
		return err
	}
	return decodeEntries(payload, fn)
}

// decodeEntries streams an entry payload's cells through fn in order.
// The ik and value slices are only valid during the call (ik is a
// reused buffer, value aliases the payload); fn copies what it keeps.
// Returning false from fn stops the walk without error. Any structural
// violation — truncated varint, impossible lengths — yields ErrCorrupt;
// arbitrary input bytes never panic (the fuzz target pins this).
func decodeEntries(payload []byte, fn func(ik, value []byte, ver row.Version, tomb bool) bool) error {
	if len(payload) < 4 {
		return ErrCorrupt
	}
	restartsOff := len(payload) - 4
	numRestarts := binary.LittleEndian.Uint32(payload[restartsOff:])
	if uint64(numRestarts)*4 > uint64(restartsOff) {
		return ErrCorrupt
	}
	data := payload[:restartsOff-int(numRestarts)*4]
	var key []byte
	pos := 0
	for pos < len(data) {
		shared, n1 := binary.Uvarint(data[pos:])
		if n1 <= 0 {
			return ErrCorrupt
		}
		pos += n1
		unshared, n2 := binary.Uvarint(data[pos:])
		if n2 <= 0 {
			return ErrCorrupt
		}
		pos += n2
		vlen, n3 := binary.Uvarint(data[pos:])
		if n3 <= 0 {
			return ErrCorrupt
		}
		pos += n3
		if shared > uint64(len(key)) ||
			unshared > uint64(len(data)-pos) ||
			vlen > uint64(len(data)-pos)-unshared {
			return ErrCorrupt
		}
		key = append(key[:shared], data[pos:pos+int(unshared)]...)
		pos += int(unshared)
		value := data[pos : pos+int(vlen)]
		pos += int(vlen)
		seq, n4 := binary.Uvarint(data[pos:])
		if n4 <= 0 {
			return ErrCorrupt
		}
		pos += n4
		node, n5 := binary.Uvarint(data[pos:])
		if n5 <= 0 || node > math.MaxUint16 {
			return ErrCorrupt
		}
		pos += n5
		if pos >= len(data) {
			return ErrCorrupt
		}
		flags := data[pos]
		pos++
		ver := row.Version{Seq: seq, Node: uint16(node)}
		if !fn(key, value, ver, flags&flagTombstone != 0) {
			return nil
		}
	}
	return nil
}
