package sstable

import (
	"encoding/binary"
	"hash/crc32"
	"math"

	"scalekv/internal/enc"
	"scalekv/internal/row"
)

// This file is the v3 data-block codec: restart-point prefix-compressed
// cell entries with a per-block CRC, in the LevelDB/KevoDB tradition.
//
// Entries are keyed by the enc internal key (escaped partition key,
// separator, clustering key), so byte order within and across blocks is
// (pk, ck) order. Each entry stores only the suffix of its key that
// differs from the previous entry's; every restartInterval-th entry is a
// restart point carrying its full key, so decoding can always begin at
// the block start without external state.
//
// Block layout:
//
//	entry*  restart-offset[u32 LE]*  numRestarts[u32 LE]  crc32[u32 LE]
//
// Entry layout:
//
//	shared uvarint | unshared uvarint | valueLen uvarint |
//	key suffix | value | seq uvarint | node uvarint | flags byte

const (
	// DefaultBlockSize is the target size of a v3 data block: small
	// enough that a cold point read transfers little more than it needs,
	// large enough to amortize the per-block CRC and index entry.
	DefaultBlockSize = 4 << 10

	blockRestartInterval = 16
	blockTrailerMin      = 4 + 4 // numRestarts + crc
)

// blockBuilder accumulates prefix-compressed entries for one data block.
type blockBuilder struct {
	buf      []byte
	restarts []uint32
	count    int
	prevKey  []byte
}

func (b *blockBuilder) empty() bool { return b.count == 0 }
func (b *blockBuilder) size() int   { return len(b.buf) }

func (b *blockBuilder) reset() {
	b.buf = b.buf[:0]
	b.restarts = b.restarts[:0]
	b.count = 0
	b.prevKey = b.prevKey[:0]
}

// add appends one cell. Keys must arrive in ascending byte order; the
// writer's partition/cell ordering checks guarantee it.
func (b *blockBuilder) add(ik, value []byte, ver row.Version, tomb bool) {
	shared := 0
	if b.count%blockRestartInterval == 0 {
		b.restarts = append(b.restarts, uint32(len(b.buf)))
	} else {
		max := len(b.prevKey)
		if len(ik) < max {
			max = len(ik)
		}
		for shared < max && b.prevKey[shared] == ik[shared] {
			shared++
		}
	}
	b.buf = enc.AppendUvarint(b.buf, uint64(shared))
	b.buf = enc.AppendUvarint(b.buf, uint64(len(ik)-shared))
	b.buf = enc.AppendUvarint(b.buf, uint64(len(value)))
	b.buf = append(b.buf, ik[shared:]...)
	b.buf = append(b.buf, value...)
	b.buf = enc.AppendUvarint(b.buf, ver.Seq)
	b.buf = enc.AppendUvarint(b.buf, uint64(ver.Node))
	flags := byte(0)
	if tomb {
		flags = flagTombstone
	}
	b.buf = append(b.buf, flags)
	b.prevKey = append(b.prevKey[:0], ik...)
	b.count++
}

// finish appends the restart array, count and CRC, returning the
// completed block. The builder must be reset before reuse.
func (b *blockBuilder) finish() []byte {
	for _, r := range b.restarts {
		b.buf = binary.LittleEndian.AppendUint32(b.buf, r)
	}
	b.buf = binary.LittleEndian.AppendUint32(b.buf, uint32(len(b.restarts)))
	b.buf = binary.LittleEndian.AppendUint32(b.buf, crc32.ChecksumIEEE(b.buf))
	return b.buf
}

// decodeBlock verifies a block's CRC and streams its entries through fn
// in order. The ik and value slices are only valid during the call (ik
// is a reused buffer, value aliases the block); fn copies what it keeps.
// Returning false from fn stops the walk without error. Any structural
// violation — bad CRC, truncated varint, impossible lengths — yields
// ErrCorrupt; arbitrary input bytes never panic (the fuzz target pins
// this).
func decodeBlock(block []byte, fn func(ik, value []byte, ver row.Version, tomb bool) bool) error {
	if len(block) < blockTrailerMin {
		return ErrCorrupt
	}
	crcOff := len(block) - 4
	if crc32.ChecksumIEEE(block[:crcOff]) != binary.LittleEndian.Uint32(block[crcOff:]) {
		return ErrCorrupt
	}
	numRestarts := binary.LittleEndian.Uint32(block[crcOff-4 : crcOff])
	if uint64(numRestarts)*4 > uint64(crcOff-4) {
		return ErrCorrupt
	}
	data := block[:crcOff-4-int(numRestarts)*4]
	var key []byte
	pos := 0
	for pos < len(data) {
		shared, n1 := binary.Uvarint(data[pos:])
		if n1 <= 0 {
			return ErrCorrupt
		}
		pos += n1
		unshared, n2 := binary.Uvarint(data[pos:])
		if n2 <= 0 {
			return ErrCorrupt
		}
		pos += n2
		vlen, n3 := binary.Uvarint(data[pos:])
		if n3 <= 0 {
			return ErrCorrupt
		}
		pos += n3
		if shared > uint64(len(key)) ||
			unshared > uint64(len(data)-pos) ||
			vlen > uint64(len(data)-pos)-unshared {
			return ErrCorrupt
		}
		key = append(key[:shared], data[pos:pos+int(unshared)]...)
		pos += int(unshared)
		value := data[pos : pos+int(vlen)]
		pos += int(vlen)
		seq, n4 := binary.Uvarint(data[pos:])
		if n4 <= 0 {
			return ErrCorrupt
		}
		pos += n4
		node, n5 := binary.Uvarint(data[pos:])
		if n5 <= 0 || node > math.MaxUint16 {
			return ErrCorrupt
		}
		pos += n5
		if pos >= len(data) {
			return ErrCorrupt
		}
		flags := data[pos]
		pos++
		ver := row.Version{Seq: seq, Node: uint16(node)}
		if !fn(key, value, ver, flags&flagTombstone != 0) {
			return nil
		}
	}
	return nil
}
