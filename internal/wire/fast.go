package wire

import (
	"errors"
	"fmt"

	"scalekv/internal/enc"
	"scalekv/internal/row"
)

// FastCodec is the Kryo analogue: registered numeric type IDs and
// hand-written binary encodings. Frame layout: uvarint typeID, then the
// type's compact field encoding in declaration order, no names, no tags.
type FastCodec struct{}

// Name implements Codec.
func (FastCodec) Name() string { return "fast" }

// ErrTruncated reports a frame shorter than its encoding requires.
var ErrTruncated = errors.New("wire: truncated frame")

// Marshal implements Codec.
func (FastCodec) Marshal(m Message) ([]byte, error) {
	out := enc.AppendUvarint(nil, uint64(m.TypeID()))
	switch v := m.(type) {
	case *CountRequest:
		out = enc.AppendUvarint(out, v.QueryID)
		out = enc.AppendUvarint(out, uint64(v.Seq))
		out = enc.AppendBytes(out, []byte(v.PK))
		out = enc.AppendUvarint(out, uint64(v.TraceSendNanos))
		out = enc.AppendUvarint(out, v.Epoch)
	case *CountResponse:
		out = enc.AppendUvarint(out, v.QueryID)
		out = enc.AppendUvarint(out, uint64(v.Seq))
		out = enc.AppendUvarint(out, uint64(v.NodeID))
		out = enc.AppendUvarint(out, v.Elements)
		out = enc.AppendUvarint(out, uint64(len(v.Counts)))
		for ty, n := range v.Counts {
			out = append(out, ty)
			out = enc.AppendUvarint(out, n)
		}
		out = enc.AppendBytes(out, []byte(v.ErrMsg))
		out = enc.AppendUvarint(out, uint64(v.RecvNanos))
		out = enc.AppendUvarint(out, uint64(v.QueueNanos))
		out = enc.AppendUvarint(out, uint64(v.DBNanos))
	case *PutRequest:
		out = enc.AppendBytes(out, []byte(v.PK))
		out = enc.AppendBytes(out, v.CK)
		out = enc.AppendBytes(out, v.Value)
		out = enc.AppendUvarint(out, v.Epoch)
	case *PutResponse:
		out = enc.AppendBytes(out, []byte(v.ErrMsg))
	case *GetRequest:
		out = enc.AppendBytes(out, []byte(v.PK))
		out = enc.AppendBytes(out, v.CK)
		out = enc.AppendUvarint(out, v.Epoch)
	case *GetResponse:
		out = enc.AppendBytes(out, v.Value)
		if v.Found {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
		out = enc.AppendBytes(out, []byte(v.ErrMsg))
		out = enc.AppendUvarint(out, v.VerSeq)
		out = enc.AppendUvarint(out, uint64(v.VerNode))
		out = appendBool(out, v.Tombstone)
	case *DeleteRequest:
		out = enc.AppendBytes(out, []byte(v.PK))
		out = enc.AppendBytes(out, v.CK)
		out = enc.AppendUvarint(out, v.Epoch)
	case *DeleteResponse:
		out = enc.AppendBytes(out, []byte(v.ErrMsg))
	case *ScanRequest:
		out = enc.AppendBytes(out, []byte(v.PK))
		out = appendOptBytes(out, v.From)
		out = appendOptBytes(out, v.To)
		out = enc.AppendUvarint(out, v.Epoch)
	case *ScanResponse:
		out = enc.AppendUvarint(out, uint64(len(v.Cells)))
		for _, c := range v.Cells {
			out = enc.AppendBytes(out, c.CK)
			out = enc.AppendBytes(out, c.Value)
			out = appendVersion(out, c.Ver, c.Tombstone)
		}
		out = enc.AppendBytes(out, []byte(v.ErrMsg))
	case *BatchPutRequest:
		out = enc.AppendUvarint(out, uint64(len(v.Entries)))
		for _, e := range v.Entries {
			out = appendEntry(out, e)
		}
		out = enc.AppendUvarint(out, v.Epoch)
	case *BatchPutResponse:
		out = enc.AppendUvarint(out, v.Applied)
		out = enc.AppendBytes(out, []byte(v.ErrMsg))
	case *MultiGetRequest:
		out = enc.AppendUvarint(out, uint64(len(v.Keys)))
		for _, k := range v.Keys {
			out = enc.AppendBytes(out, []byte(k.PK))
			out = enc.AppendBytes(out, k.CK)
		}
		out = enc.AppendUvarint(out, v.Epoch)
	case *MultiGetResponse:
		out = enc.AppendUvarint(out, uint64(len(v.Values)))
		for _, val := range v.Values {
			out = enc.AppendBytes(out, val.Value)
			if val.Found {
				out = append(out, 1)
			} else {
				out = append(out, 0)
			}
		}
		out = enc.AppendBytes(out, []byte(v.ErrMsg))
	case *RingStateRequest:
		// No fields.
	case *RingStateResponse:
		out = enc.AppendUvarint(out, v.Epoch)
		out = enc.AppendUvarint(out, uint64(v.Vnodes))
		out = enc.AppendUvarint(out, uint64(v.RF))
		out = appendNodeAddrs(out, v.Nodes)
		out = enc.AppendBytes(out, []byte(v.ErrMsg))
	case *StreamRangeRequest:
		out = enc.AppendUvarint(out, uint64(v.Lo))
		out = enc.AppendUvarint(out, uint64(v.Hi))
		out = enc.AppendUvarint(out, uint64(v.AfterToken))
		out = enc.AppendBytes(out, []byte(v.AfterPK))
		out = enc.AppendUvarint(out, uint64(v.MaxCells))
	case *StreamRangeResponse:
		out = enc.AppendUvarint(out, uint64(len(v.Entries)))
		for _, e := range v.Entries {
			out = appendEntry(out, e)
		}
		out = enc.AppendUvarint(out, uint64(v.NextToken))
		out = enc.AppendBytes(out, []byte(v.NextPK))
		out = appendBool(out, v.More)
		out = enc.AppendBytes(out, []byte(v.ErrMsg))
	case *DeleteRangeRequest:
		out = enc.AppendUvarint(out, uint64(v.Lo))
		out = enc.AppendUvarint(out, uint64(v.Hi))
	case *DeleteRangeResponse:
		out = enc.AppendUvarint(out, v.Removed)
		out = enc.AppendBytes(out, []byte(v.ErrMsg))
	case *DigestRequest:
		out = enc.AppendUvarint(out, uint64(v.Lo))
		out = enc.AppendUvarint(out, uint64(v.Hi))
		out = enc.AppendUvarint(out, uint64(v.Depth))
	case *DigestResponse:
		out = enc.AppendUvarint(out, uint64(len(v.Leaves)))
		for _, l := range v.Leaves {
			out = enc.AppendUvarint(out, l.Hash)
			out = enc.AppendUvarint(out, l.Cells)
		}
		out = enc.AppendBytes(out, []byte(v.ErrMsg))
	case *NodeStatsRequest:
		// No fields.
	case *NodeStatsResponse:
		out = enc.AppendUvarint(out, v.Epoch)
		out = enc.AppendUvarint(out, uint64(len(v.Shards)))
		for _, sh := range v.Shards {
			out = enc.AppendUvarint(out, sh.MemtableBytes)
			out = enc.AppendUvarint(out, uint64(sh.FrozenMemtables))
			out = enc.AppendUvarint(out, uint64(sh.SSTables))
		}
		out = enc.AppendUvarint(out, v.FlushedBytes)
		out = enc.AppendUvarint(out, v.FlushCount)
		out = enc.AppendUvarint(out, v.CompactionCount)
		out = enc.AppendUvarint(out, v.CompactionBytesIn)
		out = enc.AppendUvarint(out, v.CompactionBytesOut)
		out = enc.AppendUvarint(out, uint64(len(v.LevelTables)))
		for _, n := range v.LevelTables {
			out = enc.AppendUvarint(out, uint64(n))
		}
		out = enc.AppendUvarint(out, uint64(len(v.LevelBytes)))
		for _, n := range v.LevelBytes {
			out = enc.AppendUvarint(out, n)
		}
		out = enc.AppendUvarint(out, v.CacheHits)
		out = enc.AppendUvarint(out, v.CacheMisses)
		out = enc.AppendUvarint(out, v.CacheEvictions)
		out = enc.AppendUvarint(out, v.CacheBytes)
		out = enc.AppendUvarint(out, v.BlockBytesLogical)
		out = enc.AppendUvarint(out, v.BlockBytesStored)
		out = enc.AppendUvarint(out, uint64(len(v.Peers)))
		for _, p := range v.Peers {
			out = enc.AppendUvarint(out, uint64(p.ID))
			out = appendBool(out, p.Up)
			out = enc.AppendUvarint(out, uint64(p.Suspicion))
			out = enc.AppendUvarint(out, p.SinceMillis)
		}
		out = enc.AppendUvarint(out, v.DialCount)
		out = enc.AppendUvarint(out, v.RedialCount)
		out = enc.AppendBytes(out, []byte(v.ErrMsg))
	case *JoinRequest:
		out = enc.AppendUvarint(out, uint64(v.ID))
		out = enc.AppendBytes(out, []byte(v.Addr))
	case *JoinResponse:
		out = enc.AppendUvarint(out, v.Epoch)
		out = enc.AppendUvarint(out, uint64(v.Moves))
		out = enc.AppendUvarint(out, v.CellsStreamed)
		out = enc.AppendUvarint(out, v.CellsRetired)
		out = enc.AppendUvarint(out, uint64(v.Pages))
		out = enc.AppendUvarint(out, v.StreamNanos)
		out = enc.AppendUvarint(out, v.FlipNanos)
		out = enc.AppendBytes(out, []byte(v.RetireErr))
		out = enc.AppendBytes(out, []byte(v.ErrMsg))
	case *BeginMigrationRequest:
		out = enc.AppendUvarint(out, uint64(len(v.Moves)))
		for _, mv := range v.Moves {
			out = enc.AppendUvarint(out, uint64(mv.Lo))
			out = enc.AppendUvarint(out, uint64(mv.Hi))
			out = enc.AppendUvarint(out, uint64(mv.From))
			out = enc.AppendUvarint(out, uint64(mv.To))
		}
		out = appendNodeAddrs(out, v.Nodes)
	case *BeginMigrationResponse:
		out = enc.AppendBytes(out, []byte(v.ErrMsg))
	case *EndMigrationRequest:
		// No fields.
	case *EndMigrationResponse:
		out = enc.AppendBytes(out, []byte(v.ErrMsg))
	case *SetRingStateRequest:
		out = enc.AppendUvarint(out, v.Epoch)
		out = enc.AppendUvarint(out, uint64(v.Vnodes))
		out = enc.AppendUvarint(out, uint64(v.RF))
		out = appendNodeAddrs(out, v.Nodes)
	case *SetRingStateResponse:
		out = enc.AppendBytes(out, []byte(v.ErrMsg))
	case *PingRequest:
		out = enc.AppendUvarint(out, uint64(v.FromID))
		out = enc.AppendUvarint(out, v.Epoch)
	case *PingResponse:
		out = enc.AppendUvarint(out, uint64(v.ID))
		out = enc.AppendUvarint(out, v.Epoch)
		out = enc.AppendBytes(out, []byte(v.ErrMsg))
	case *LeaveRequest:
		out = enc.AppendUvarint(out, uint64(v.ID))
	case *LeaveResponse:
		out = enc.AppendBytes(out, []byte(v.ErrMsg))
	default:
		return nil, fmt.Errorf("wire: fast codec cannot marshal %T", m)
	}
	return out, nil
}

// appendBool encodes a bool as one byte.
func appendBool(out []byte, b bool) []byte {
	if b {
		return append(out, 1)
	}
	return append(out, 0)
}

// entryFlagTombstone marks a deleted entry/cell on the wire.
const entryFlagTombstone = byte(1)

// appendVersion encodes a cell version plus flags: seq, node, flags.
func appendVersion(out []byte, ver row.Version, tombstone bool) []byte {
	out = enc.AppendUvarint(out, ver.Seq)
	out = enc.AppendUvarint(out, uint64(ver.Node))
	flags := byte(0)
	if tombstone {
		flags = entryFlagTombstone
	}
	return append(out, flags)
}

// appendEntry encodes one row.Entry: pk, ck, value, version, flags.
func appendEntry(out []byte, e row.Entry) []byte {
	out = enc.AppendBytes(out, []byte(e.PK))
	out = enc.AppendBytes(out, e.CK)
	out = enc.AppendBytes(out, e.Value)
	return appendVersion(out, e.Ver, e.Tombstone)
}

// appendNodeAddrs encodes an address book: count, then (id, addr) pairs.
func appendNodeAddrs(out []byte, nodes []NodeAddr) []byte {
	out = enc.AppendUvarint(out, uint64(len(nodes)))
	for _, n := range nodes {
		out = enc.AppendUvarint(out, uint64(n.ID))
		out = enc.AppendBytes(out, []byte(n.Addr))
	}
	return out
}

// Unmarshal implements Codec.
func (FastCodec) Unmarshal(data []byte) (Message, error) {
	id, n := enc.Uvarint(data)
	if n <= 0 {
		return nil, ErrTruncated
	}
	m, err := newMessage(uint16(id))
	if err != nil {
		return nil, err
	}
	d := &decoder{buf: data[n:]}
	switch v := m.(type) {
	case *CountRequest:
		v.QueryID = d.uvarint()
		v.Seq = uint32(d.uvarint())
		v.PK = string(d.bytes())
		v.TraceSendNanos = int64(d.uvarint())
		v.Epoch = d.uvarint()
	case *CountResponse:
		v.QueryID = d.uvarint()
		v.Seq = uint32(d.uvarint())
		v.NodeID = uint32(d.uvarint())
		v.Elements = d.uvarint()
		cnt := d.uvarint()
		if cnt > 0 {
			v.Counts = make(map[uint8]uint64, cnt)
			for i := uint64(0); i < cnt && d.err == nil; i++ {
				ty := d.byte()
				v.Counts[ty] = d.uvarint()
			}
		}
		v.ErrMsg = string(d.bytes())
		v.RecvNanos = int64(d.uvarint())
		v.QueueNanos = int64(d.uvarint())
		v.DBNanos = int64(d.uvarint())
	case *PutRequest:
		v.PK = string(d.bytes())
		v.CK = d.copyBytes()
		v.Value = d.copyBytes()
		v.Epoch = d.uvarint()
	case *PutResponse:
		v.ErrMsg = string(d.bytes())
	case *GetRequest:
		v.PK = string(d.bytes())
		v.CK = d.copyBytes()
		v.Epoch = d.uvarint()
	case *GetResponse:
		v.Value = d.copyBytes()
		v.Found = d.byte() == 1
		v.ErrMsg = string(d.bytes())
		v.VerSeq = d.uvarint()
		v.VerNode = uint16(d.uvarint())
		v.Tombstone = d.byte() == 1
	case *DeleteRequest:
		v.PK = string(d.bytes())
		v.CK = d.copyBytes()
		v.Epoch = d.uvarint()
	case *DeleteResponse:
		v.ErrMsg = string(d.bytes())
	case *ScanRequest:
		v.PK = string(d.bytes())
		v.From = d.optBytes()
		v.To = d.optBytes()
		v.Epoch = d.uvarint()
	case *ScanResponse:
		cnt := d.uvarint()
		if cnt > 0 {
			v.Cells = make([]row.Cell, 0, cnt)
			for i := uint64(0); i < cnt && d.err == nil; i++ {
				c := row.Cell{CK: d.copyBytes(), Value: d.copyBytes()}
				c.Ver, c.Tombstone = d.version()
				v.Cells = append(v.Cells, c)
			}
		}
		v.ErrMsg = string(d.bytes())
	case *BatchPutRequest:
		cnt := d.uvarint()
		if cnt > 0 {
			v.Entries = make([]row.Entry, 0, cnt)
			for i := uint64(0); i < cnt && d.err == nil; i++ {
				v.Entries = append(v.Entries, d.entry())
			}
		}
		v.Epoch = d.uvarint()
	case *BatchPutResponse:
		v.Applied = d.uvarint()
		v.ErrMsg = string(d.bytes())
	case *MultiGetRequest:
		cnt := d.uvarint()
		if cnt > 0 {
			v.Keys = make([]GetKey, 0, cnt)
			for i := uint64(0); i < cnt && d.err == nil; i++ {
				v.Keys = append(v.Keys, GetKey{PK: string(d.bytes()), CK: d.copyBytes()})
			}
		}
		v.Epoch = d.uvarint()
	case *MultiGetResponse:
		cnt := d.uvarint()
		if cnt > 0 {
			v.Values = make([]MultiGetValue, 0, cnt)
			for i := uint64(0); i < cnt && d.err == nil; i++ {
				v.Values = append(v.Values, MultiGetValue{Value: d.copyBytes(), Found: d.byte() == 1})
			}
		}
		v.ErrMsg = string(d.bytes())
	case *RingStateRequest:
		// No fields.
	case *RingStateResponse:
		v.Epoch = d.uvarint()
		v.Vnodes = uint32(d.uvarint())
		v.RF = uint32(d.uvarint())
		v.Nodes = d.nodeAddrs()
		v.ErrMsg = string(d.bytes())
	case *StreamRangeRequest:
		v.Lo = int64(d.uvarint())
		v.Hi = int64(d.uvarint())
		v.AfterToken = int64(d.uvarint())
		v.AfterPK = string(d.bytes())
		v.MaxCells = uint32(d.uvarint())
	case *StreamRangeResponse:
		cnt := d.uvarint()
		if cnt > 0 {
			v.Entries = make([]row.Entry, 0, cnt)
			for i := uint64(0); i < cnt && d.err == nil; i++ {
				v.Entries = append(v.Entries, d.entry())
			}
		}
		v.NextToken = int64(d.uvarint())
		v.NextPK = string(d.bytes())
		v.More = d.byte() == 1
		v.ErrMsg = string(d.bytes())
	case *DeleteRangeRequest:
		v.Lo = int64(d.uvarint())
		v.Hi = int64(d.uvarint())
	case *DeleteRangeResponse:
		v.Removed = d.uvarint()
		v.ErrMsg = string(d.bytes())
	case *DigestRequest:
		v.Lo = int64(d.uvarint())
		v.Hi = int64(d.uvarint())
		v.Depth = uint32(d.uvarint())
	case *DigestResponse:
		cnt := d.uvarint()
		if cnt > 0 {
			v.Leaves = make([]DigestLeaf, 0, cnt)
			for i := uint64(0); i < cnt && d.err == nil; i++ {
				v.Leaves = append(v.Leaves, DigestLeaf{Hash: d.uvarint(), Cells: d.uvarint()})
			}
		}
		v.ErrMsg = string(d.bytes())
	case *NodeStatsRequest:
		// No fields.
	case *NodeStatsResponse:
		v.Epoch = d.uvarint()
		cnt := d.uvarint()
		if cnt > 0 {
			v.Shards = make([]ShardStat, 0, cnt)
			for i := uint64(0); i < cnt && d.err == nil; i++ {
				v.Shards = append(v.Shards, ShardStat{
					MemtableBytes:   d.uvarint(),
					FrozenMemtables: uint32(d.uvarint()),
					SSTables:        uint32(d.uvarint()),
				})
			}
		}
		v.FlushedBytes = d.uvarint()
		v.FlushCount = d.uvarint()
		v.CompactionCount = d.uvarint()
		v.CompactionBytesIn = d.uvarint()
		v.CompactionBytesOut = d.uvarint()
		if cnt := d.uvarint(); cnt > 0 {
			v.LevelTables = make([]uint32, 0, cnt)
			for i := uint64(0); i < cnt && d.err == nil; i++ {
				v.LevelTables = append(v.LevelTables, uint32(d.uvarint()))
			}
		}
		if cnt := d.uvarint(); cnt > 0 {
			v.LevelBytes = make([]uint64, 0, cnt)
			for i := uint64(0); i < cnt && d.err == nil; i++ {
				v.LevelBytes = append(v.LevelBytes, d.uvarint())
			}
		}
		v.CacheHits = d.uvarint()
		v.CacheMisses = d.uvarint()
		v.CacheEvictions = d.uvarint()
		v.CacheBytes = d.uvarint()
		v.BlockBytesLogical = d.uvarint()
		v.BlockBytesStored = d.uvarint()
		if cnt := d.uvarint(); cnt > 0 {
			v.Peers = make([]PeerStat, 0, cnt)
			for i := uint64(0); i < cnt && d.err == nil; i++ {
				v.Peers = append(v.Peers, PeerStat{
					ID:          uint32(d.uvarint()),
					Up:          d.byte() == 1,
					Suspicion:   uint32(d.uvarint()),
					SinceMillis: d.uvarint(),
				})
			}
		}
		v.DialCount = d.uvarint()
		v.RedialCount = d.uvarint()
		v.ErrMsg = string(d.bytes())
	case *JoinRequest:
		v.ID = uint32(d.uvarint())
		v.Addr = string(d.bytes())
	case *JoinResponse:
		v.Epoch = d.uvarint()
		v.Moves = uint32(d.uvarint())
		v.CellsStreamed = d.uvarint()
		v.CellsRetired = d.uvarint()
		v.Pages = uint32(d.uvarint())
		v.StreamNanos = d.uvarint()
		v.FlipNanos = d.uvarint()
		v.RetireErr = string(d.bytes())
		v.ErrMsg = string(d.bytes())
	case *BeginMigrationRequest:
		if cnt := d.uvarint(); cnt > 0 {
			v.Moves = make([]Move, 0, cnt)
			for i := uint64(0); i < cnt && d.err == nil; i++ {
				v.Moves = append(v.Moves, Move{
					Lo:   int64(d.uvarint()),
					Hi:   int64(d.uvarint()),
					From: uint32(d.uvarint()),
					To:   uint32(d.uvarint()),
				})
			}
		}
		v.Nodes = d.nodeAddrs()
	case *BeginMigrationResponse:
		v.ErrMsg = string(d.bytes())
	case *EndMigrationRequest:
		// No fields.
	case *EndMigrationResponse:
		v.ErrMsg = string(d.bytes())
	case *SetRingStateRequest:
		v.Epoch = d.uvarint()
		v.Vnodes = uint32(d.uvarint())
		v.RF = uint32(d.uvarint())
		v.Nodes = d.nodeAddrs()
	case *SetRingStateResponse:
		v.ErrMsg = string(d.bytes())
	case *PingRequest:
		v.FromID = uint32(d.uvarint())
		v.Epoch = d.uvarint()
	case *PingResponse:
		v.ID = uint32(d.uvarint())
		v.Epoch = d.uvarint()
		v.ErrMsg = string(d.bytes())
	case *LeaveRequest:
		v.ID = uint32(d.uvarint())
	case *LeaveResponse:
		v.ErrMsg = string(d.bytes())
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		// A well-formed fast frame is consumed exactly; leftovers mean a
		// foreign format whose length prefix happened to parse as a type
		// ID (e.g. a slow-codec frame).
		return nil, fmt.Errorf("wire: %d trailing bytes in fast frame", len(d.buf))
	}
	return m, nil
}

// appendOptBytes encodes a possibly-nil byte slice: 0 = nil, 1 = present.
func appendOptBytes(out, b []byte) []byte {
	if b == nil {
		return append(out, 0)
	}
	out = append(out, 1)
	return enc.AppendBytes(out, b)
}

// decoder is a cursor over a frame with sticky error handling.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := enc.Uvarint(d.buf)
	if n <= 0 {
		d.err = ErrTruncated
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) byte() uint8 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) == 0 {
		d.err = ErrTruncated
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

// bytes returns a view into the frame; valid until the frame is reused.
func (d *decoder) bytes() []byte {
	if d.err != nil {
		return nil
	}
	b, n := enc.Bytes(d.buf)
	if n == 0 {
		d.err = ErrTruncated
		return nil
	}
	d.buf = d.buf[n:]
	return b
}

// copyBytes returns an owned copy, for fields that outlive the frame.
func (d *decoder) copyBytes() []byte {
	b := d.bytes()
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

func (d *decoder) optBytes() []byte {
	if d.byte() == 0 {
		return nil
	}
	return d.copyBytes()
}

// version decodes a cell version plus flags written by appendVersion.
func (d *decoder) version() (row.Version, bool) {
	seq := d.uvarint()
	node := uint16(d.uvarint())
	return row.Version{Seq: seq, Node: node}, d.byte()&entryFlagTombstone != 0
}

// entry decodes one row.Entry written by appendEntry.
func (d *decoder) entry() row.Entry {
	e := row.Entry{PK: string(d.bytes()), CK: d.copyBytes(), Value: d.copyBytes()}
	e.Ver, e.Tombstone = d.version()
	return e
}

// nodeAddrs decodes an address book written by appendNodeAddrs.
func (d *decoder) nodeAddrs() []NodeAddr {
	cnt := d.uvarint()
	if cnt == 0 {
		return nil
	}
	nodes := make([]NodeAddr, 0, cnt)
	for i := uint64(0); i < cnt && d.err == nil; i++ {
		nodes = append(nodes, NodeAddr{ID: uint32(d.uvarint()), Addr: string(d.bytes())})
	}
	return nodes
}
