package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"

	"scalekv/internal/enc"
)

// SlowCodec is the analogue of Java's default serialization that the
// paper's prototype started with. The stream is self-describing: it
// carries the full type name, then for every field its name, its type
// string and a fixed-width value; nested structs, slices and maps recurse
// with their own descriptors. Encoding and decoding walk the message
// through the reflect package, including a by-name field lookup on every
// field — the same flexibility-over-performance trade the paper measured
// at 150 µs/message before switching to registered-class serialization.
type SlowCodec struct{}

// Name implements Codec.
func (SlowCodec) Name() string { return "slow" }

// slowRegistry maps type names back to concrete types, playing the role
// of the JVM classpath during deserialization.
var slowRegistry = map[string]reflect.Type{}

func init() {
	for _, m := range []Message{
		&CountRequest{}, &CountResponse{},
		&PutRequest{}, &PutResponse{},
		&GetRequest{}, &GetResponse{},
		&ScanRequest{}, &ScanResponse{},
		&BatchPutRequest{}, &BatchPutResponse{},
		&MultiGetRequest{}, &MultiGetResponse{},
		&RingStateRequest{}, &RingStateResponse{},
		&StreamRangeRequest{}, &StreamRangeResponse{},
		&DeleteRangeRequest{}, &DeleteRangeResponse{},
		&NodeStatsRequest{}, &NodeStatsResponse{},
		&DeleteRequest{}, &DeleteResponse{},
		&DigestRequest{}, &DigestResponse{},
		&JoinRequest{}, &JoinResponse{},
		&BeginMigrationRequest{}, &BeginMigrationResponse{},
		&EndMigrationRequest{}, &EndMigrationResponse{},
		&SetRingStateRequest{}, &SetRingStateResponse{},
		&PingRequest{}, &PingResponse{},
		&LeaveRequest{}, &LeaveResponse{},
	} {
		t := reflect.TypeOf(m).Elem()
		slowRegistry[t.String()] = t
	}
}

// Kind tags in the stream.
const (
	tagBool   = byte(1)
	tagInt    = byte(2)
	tagUint   = byte(3)
	tagFloat  = byte(4)
	tagString = byte(5)
	tagBytes  = byte(6)
	tagSlice  = byte(7)
	tagMap    = byte(8)
	tagStruct = byte(9)
)

// Marshal implements Codec.
func (SlowCodec) Marshal(m Message) ([]byte, error) {
	v := reflect.ValueOf(m)
	if v.Kind() != reflect.Ptr || v.Elem().Kind() != reflect.Struct {
		return nil, fmt.Errorf("wire: slow codec needs a struct pointer, got %T", m)
	}
	sv := v.Elem()
	out := enc.AppendBytes(nil, []byte(sv.Type().String()))
	return appendValue(out, sv)
}

func appendValue(out []byte, v reflect.Value) ([]byte, error) {
	switch v.Kind() {
	case reflect.Bool:
		out = append(out, tagBool)
		if v.Bool() {
			return append(out, 1), nil
		}
		return append(out, 0), nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		out = append(out, tagInt)
		return binary.BigEndian.AppendUint64(out, uint64(v.Int())), nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		out = append(out, tagUint)
		return binary.BigEndian.AppendUint64(out, v.Uint()), nil
	case reflect.Float32, reflect.Float64:
		out = append(out, tagFloat)
		return binary.BigEndian.AppendUint64(out, math.Float64bits(v.Float())), nil
	case reflect.String:
		out = append(out, tagString)
		return enc.AppendBytes(out, []byte(v.String())), nil
	case reflect.Slice:
		if v.Type().Elem().Kind() == reflect.Uint8 {
			out = append(out, tagBytes)
			return enc.AppendBytes(out, v.Bytes()), nil
		}
		out = append(out, tagSlice)
		out = enc.AppendBytes(out, []byte(v.Type().Elem().String()))
		out = enc.AppendUvarint(out, uint64(v.Len()))
		var err error
		for i := 0; i < v.Len(); i++ {
			if out, err = appendValue(out, v.Index(i)); err != nil {
				return nil, err
			}
		}
		return out, nil
	case reflect.Map:
		out = append(out, tagMap)
		out = enc.AppendBytes(out, []byte(v.Type().Key().String()))
		out = enc.AppendBytes(out, []byte(v.Type().Elem().String()))
		out = enc.AppendUvarint(out, uint64(v.Len()))
		var err error
		iter := v.MapRange()
		for iter.Next() {
			if out, err = appendValue(out, iter.Key()); err != nil {
				return nil, err
			}
			if out, err = appendValue(out, iter.Value()); err != nil {
				return nil, err
			}
		}
		return out, nil
	case reflect.Struct:
		out = append(out, tagStruct)
		t := v.Type()
		out = enc.AppendUvarint(out, uint64(t.NumField()))
		var err error
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			out = enc.AppendBytes(out, []byte(f.Name))
			out = enc.AppendBytes(out, []byte(f.Type.String()))
			if out, err = appendValue(out, v.Field(i)); err != nil {
				return nil, err
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("wire: slow codec cannot encode kind %v", v.Kind())
	}
}

// Unmarshal implements Codec.
func (SlowCodec) Unmarshal(data []byte) (Message, error) {
	name, n := enc.Bytes(data)
	if n == 0 {
		return nil, ErrTruncated
	}
	t, ok := slowRegistry[string(name)]
	if !ok {
		return nil, fmt.Errorf("wire: unknown type %q in slow stream", name)
	}
	pv := reflect.New(t)
	rest, err := decodeValue(data[n:], pv.Elem())
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes in slow stream", len(rest))
	}
	m, ok := pv.Interface().(Message)
	if !ok {
		return nil, fmt.Errorf("wire: type %q is not a Message", name)
	}
	return m, nil
}

func decodeValue(data []byte, v reflect.Value) ([]byte, error) {
	if len(data) == 0 {
		return nil, ErrTruncated
	}
	tag := data[0]
	data = data[1:]
	switch tag {
	case tagBool:
		if len(data) < 1 {
			return nil, ErrTruncated
		}
		if v.Kind() != reflect.Bool {
			return nil, fmt.Errorf("wire: bool into %v", v.Kind())
		}
		v.SetBool(data[0] == 1)
		return data[1:], nil
	case tagInt:
		if len(data) < 8 {
			return nil, ErrTruncated
		}
		v.SetInt(int64(binary.BigEndian.Uint64(data)))
		return data[8:], nil
	case tagUint:
		if len(data) < 8 {
			return nil, ErrTruncated
		}
		v.SetUint(binary.BigEndian.Uint64(data))
		return data[8:], nil
	case tagFloat:
		if len(data) < 8 {
			return nil, ErrTruncated
		}
		v.SetFloat(math.Float64frombits(binary.BigEndian.Uint64(data)))
		return data[8:], nil
	case tagString:
		b, n := enc.Bytes(data)
		if n == 0 {
			return nil, ErrTruncated
		}
		v.SetString(string(b))
		return data[n:], nil
	case tagBytes:
		b, n := enc.Bytes(data)
		if n == 0 {
			return nil, ErrTruncated
		}
		v.SetBytes(append([]byte(nil), b...))
		return data[n:], nil
	case tagSlice:
		if _, n := enc.Bytes(data); n == 0 {
			return nil, ErrTruncated
		} else {
			data = data[n:] // element type string, informational
		}
		ln, n := enc.Uvarint(data)
		if n <= 0 {
			return nil, ErrTruncated
		}
		data = data[n:]
		sl := reflect.MakeSlice(v.Type(), int(ln), int(ln))
		var err error
		for i := 0; i < int(ln); i++ {
			if data, err = decodeValue(data, sl.Index(i)); err != nil {
				return nil, err
			}
		}
		v.Set(sl)
		return data, nil
	case tagMap:
		for i := 0; i < 2; i++ { // key and value type strings
			_, n := enc.Bytes(data)
			if n == 0 {
				return nil, ErrTruncated
			}
			data = data[n:]
		}
		ln, n := enc.Uvarint(data)
		if n <= 0 {
			return nil, ErrTruncated
		}
		data = data[n:]
		mp := reflect.MakeMapWithSize(v.Type(), int(ln))
		var err error
		for i := 0; i < int(ln); i++ {
			k := reflect.New(v.Type().Key()).Elem()
			if data, err = decodeValue(data, k); err != nil {
				return nil, err
			}
			val := reflect.New(v.Type().Elem()).Elem()
			if data, err = decodeValue(data, val); err != nil {
				return nil, err
			}
			mp.SetMapIndex(k, val)
		}
		v.Set(mp)
		return data, nil
	case tagStruct:
		nf, n := enc.Uvarint(data)
		if n <= 0 {
			return nil, ErrTruncated
		}
		data = data[n:]
		var err error
		for i := 0; i < int(nf); i++ {
			nameB, n1 := enc.Bytes(data)
			if n1 == 0 {
				return nil, ErrTruncated
			}
			data = data[n1:]
			_, n2 := enc.Bytes(data) // field type string, informational
			if n2 == 0 {
				return nil, ErrTruncated
			}
			data = data[n2:]
			// The deliberate Java-like cost: by-name lookup per field.
			f := v.FieldByName(string(nameB))
			if !f.IsValid() {
				return nil, fmt.Errorf("wire: unknown field %q in slow stream", nameB)
			}
			if data, err = decodeValue(data, f); err != nil {
				return nil, err
			}
		}
		return data, nil
	default:
		return nil, fmt.Errorf("wire: bad tag %d in slow stream", tag)
	}
}
