// Package wire defines the messages exchanged between the master and the
// slaves, and two interchangeable codecs that reproduce the paper's
// Section V-B serialization experiment:
//
//   - SlowCodec is the analogue of Java's default serialization: a
//     self-describing format that embeds the type name, every field name
//     and a per-field type tag, and that is encoded and decoded through
//     reflection. Flexible, and expensive in both CPU and bytes.
//   - FastCodec is the analogue of Kryo with registered classes: each
//     message type is pre-registered under a numeric ID and encodes
//     through hand-written, allocation-light binary routines.
//
// The paper measured 150 µs/message with the default serializer and
// 19 µs after switching — almost an order of magnitude — and a payload
// drop from 7.5 MB to 900 KB for ten thousand messages. The codec
// benchmarks in this package reproduce the ratio on the Go stack.
package wire

import (
	"fmt"

	"scalekv/internal/row"
)

// Message is implemented by every wire message.
type Message interface {
	// TypeID identifies the concrete message type in FastCodec frames.
	TypeID() uint16
}

// Message type IDs. Stable on the wire; never reorder.
const (
	TypeCountRequest uint16 = iota + 1
	TypeCountResponse
	TypePutRequest
	TypePutResponse
	TypeGetRequest
	TypeGetResponse
	TypeScanRequest
	TypeScanResponse
	TypeBatchPutRequest
	TypeBatchPutResponse
	TypeMultiGetRequest
	TypeMultiGetResponse
	TypeRingStateRequest
	TypeRingStateResponse
	TypeStreamRangeRequest
	TypeStreamRangeResponse
	TypeDeleteRangeRequest
	TypeDeleteRangeResponse
	TypeNodeStatsRequest
	TypeNodeStatsResponse
	TypeDeleteRequest
	TypeDeleteResponse
	TypeDigestRequest
	TypeDigestResponse
	TypeJoinRequest
	TypeJoinResponse
	TypeBeginMigrationRequest
	TypeBeginMigrationResponse
	TypeEndMigrationRequest
	TypeEndMigrationResponse
	TypeSetRingStateRequest
	TypeSetRingStateResponse
	TypePingRequest
	TypePingResponse
	TypeLeaveRequest
	TypeLeaveResponse
)

// --- Topology epochs --------------------------------------------------------
//
// Routed data-path requests carry the topology epoch the client routed
// by. A node whose topology is at a different epoch answers with a
// wrong-epoch error instead of serving the request, forcing the client
// to refresh its ring and re-route — the mechanism that keeps reads and
// writes correct while nodes join and leave. Epoch 0 is the wildcard:
// unversioned traffic (admin tooling, rebalance streaming, tests built
// on raw wire messages) bypasses the check.

// wrongEpochPrefix tags wrong-epoch rejections inside ErrMsg fields, so
// no response message needs a new field to carry the condition.
const wrongEpochPrefix = "wrong epoch: node at "

// WrongEpochMsg formats a node's rejection of a request routed with a
// stale (or future) topology epoch.
func WrongEpochMsg(nodeEpoch, reqEpoch uint64) string {
	return fmt.Sprintf("%s%d, request at %d", wrongEpochPrefix, nodeEpoch, reqEpoch)
}

// IsWrongEpoch reports whether an ErrMsg is a wrong-epoch rejection.
func IsWrongEpoch(msg string) bool {
	return len(msg) >= len(wrongEpochPrefix) && msg[:len(wrongEpochPrefix)] == wrongEpochPrefix
}

// CountRequest asks a slave to aggregate — count by type — one partition
// stored locally. This is the paper's prototype query unit: the master
// issues one CountRequest per key.
type CountRequest struct {
	QueryID uint64
	Seq     uint32
	PK      string
	// TraceSendNanos carries the master's send timestamp so the slave
	// can attribute the master-to-slave stage (Aeneas-style tracing).
	TraceSendNanos int64
	// Epoch is the routing topology version. Client.Count sets it so a
	// stale client cannot silently count a partition at a node that
	// retired it; CountAll's fan-out leaves it 0 (unversioned) and
	// accounts failures per request instead.
	Epoch uint64
}

// TypeID implements Message.
func (*CountRequest) TypeID() uint16 { return TypeCountRequest }

// CountResponse returns the per-type counts of one partition.
type CountResponse struct {
	QueryID  uint64
	Seq      uint32
	NodeID   uint32
	Elements uint64
	Counts   map[uint8]uint64
	ErrMsg   string
	// Stage timings reported back for the profile harness (Figure 4):
	// RecvNanos is the slave's absolute receive timestamp (same-host
	// clock domain), QueueNanos the time spent waiting for a database
	// slot and DBNanos the in-database service time.
	RecvNanos  int64
	QueueNanos int64
	DBNanos    int64
}

// TypeID implements Message.
func (*CountResponse) TypeID() uint16 { return TypeCountResponse }

// PutRequest writes one cell. Epoch is the topology version the client
// routed by (0 = unversioned, accepted at any epoch).
type PutRequest struct {
	PK    string
	CK    []byte
	Value []byte
	Epoch uint64
}

// TypeID implements Message.
func (*PutRequest) TypeID() uint16 { return TypePutRequest }

// PutResponse acknowledges a write.
type PutResponse struct {
	ErrMsg string
}

// TypeID implements Message.
func (*PutResponse) TypeID() uint16 { return TypePutResponse }

// DeleteRequest deletes one cell — a first-class distributed write that
// lands as a versioned tombstone, so the delete survives flushes,
// compactions and rebalances on every replica. Epoch semantics match
// PutRequest.
type DeleteRequest struct {
	PK    string
	CK    []byte
	Epoch uint64
}

// TypeID implements Message.
func (*DeleteRequest) TypeID() uint16 { return TypeDeleteRequest }

// DeleteResponse acknowledges a delete.
type DeleteResponse struct {
	ErrMsg string
}

// TypeID implements Message.
func (*DeleteResponse) TypeID() uint16 { return TypeDeleteResponse }

// GetRequest reads one cell. Epoch 0 bypasses the topology check.
type GetRequest struct {
	PK    string
	CK    []byte
	Epoch uint64
}

// TypeID implements Message.
func (*GetRequest) TypeID() uint16 { return TypeGetRequest }

// GetResponse returns one cell value, together with the version of the
// write that produced it — the client's read-repair compares and
// re-propagates by it.
type GetResponse struct {
	Value  []byte
	Found  bool
	ErrMsg string
	// VerSeq/VerNode are the winning cell's version (zero when the cell
	// was written before versioning, or when the address holds nothing
	// at all).
	VerSeq  uint64
	VerNode uint16
	// Tombstone reports that the address is deleted: the winning cell is
	// a versioned tombstone (Found stays false — the value is gone). The
	// client's read-repair forwards the tombstone to lagging replicas so
	// a failover read of a deleted cell heals the divergence instead of
	// leaving the old value live elsewhere.
	Tombstone bool
}

// TypeID implements Message.
func (*GetResponse) TypeID() uint16 { return TypeGetResponse }

// ScanRequest reads a clustering range of a partition. Nil bounds mean
// unbounded.
type ScanRequest struct {
	PK    string
	From  []byte
	To    []byte
	Epoch uint64
}

// TypeID implements Message.
func (*ScanRequest) TypeID() uint16 { return TypeScanRequest }

// ScanResponse returns the cells of a range read.
type ScanResponse struct {
	Cells  []row.Cell
	ErrMsg string
}

// TypeID implements Message.
func (*ScanResponse) TypeID() uint16 { return TypeScanResponse }

// BatchPutRequest writes many cells in one frame — the aggregated-put
// unit of the bulk-write pipeline. Entries may span partitions; the
// receiving node group-commits them in one engine call. Entries carry
// their version and tombstone flag on the wire: client-originated
// writes send the zero version (the accepting node stamps them), while
// rebalance streaming, dual-write forwarding and read-repair send the
// original stamps so every replica's last-write-wins merge picks the
// same winner.
type BatchPutRequest struct {
	Entries []row.Entry
	// Epoch is the routing topology version (0 = unversioned — the
	// rebalance streamer writes moved ranges with 0 so a mid-migration
	// target accepts them regardless of its current epoch).
	Epoch uint64
}

// TypeID implements Message.
func (*BatchPutRequest) TypeID() uint16 { return TypeBatchPutRequest }

// BatchPutResponse acknowledges a batch write.
type BatchPutResponse struct {
	// Applied is how many entries were committed: len(Entries) on
	// success, 0 on error. A zero does NOT mean nothing was applied —
	// the engine keeps any prefix that committed before the failure
	// (same semantics as a partially completed sequence of Puts) — so
	// Applied cannot be used to resume a failed load; re-send the whole
	// batch (puts are idempotent, last write wins).
	Applied uint64
	ErrMsg  string
}

// TypeID implements Message.
func (*BatchPutResponse) TypeID() uint16 { return TypeBatchPutResponse }

// GetKey addresses one cell for a multi-get.
type GetKey struct {
	PK string
	CK []byte
}

// MultiGetRequest reads many cells in one frame.
type MultiGetRequest struct {
	Keys  []GetKey
	Epoch uint64
}

// TypeID implements Message.
func (*MultiGetRequest) TypeID() uint16 { return TypeMultiGetRequest }

// MultiGetValue is one multi-get result; Values[i] answers Keys[i].
type MultiGetValue struct {
	Value []byte
	Found bool
}

// MultiGetResponse returns the values of a multi-get, positionally
// matching the request keys.
type MultiGetResponse struct {
	Values []MultiGetValue
	ErrMsg string
}

// TypeID implements Message.
func (*MultiGetResponse) TypeID() uint16 { return TypeMultiGetResponse }

// RingStateRequest asks a node for its current topology. Any node can
// answer; clients use it to bootstrap and to recover from wrong-epoch
// rejections.
type RingStateRequest struct{}

// TypeID implements Message.
func (*RingStateRequest) TypeID() uint16 { return TypeRingStateRequest }

// NodeAddr pairs a ring member with its dialable transport address.
type NodeAddr struct {
	ID   uint32
	Addr string
}

// RingStateResponse carries a topology: epoch, members, the vnode
// count and the replication factor the ring runs at. Token positions
// are derived deterministically from (member ID, vnode index), so the
// membership list IS the token list in compressed form —
// hashring.FromNodes reconstructs placement exactly. RF lets a
// bootstrapping client or joiner adopt the ring's replication factor
// instead of guessing (0 = unknown, pre-membership nodes).
type RingStateResponse struct {
	Epoch  uint64
	Vnodes uint32
	RF     uint32
	Nodes  []NodeAddr
	ErrMsg string
}

// TypeID implements Message.
func (*RingStateResponse) TypeID() uint16 { return TypeRingStateResponse }

// StreamRangeRequest asks a node for one page of the cells whose
// partition token falls in the inclusive range [Lo, Hi]. Pages walk the
// range in (token, partition key) order; the cursor (AfterToken,
// AfterPK) resumes strictly after the named partition — pass
// (math.MinInt64, "") for the first page. MaxCells bounds the page
// size (whole partitions only; 0 means the server default).
type StreamRangeRequest struct {
	Lo, Hi     int64
	AfterToken int64
	AfterPK    string
	MaxCells   uint32
}

// TypeID implements Message.
func (*StreamRangeRequest) TypeID() uint16 { return TypeStreamRangeRequest }

// StreamRangeResponse is one page of a range stream. When More is set
// the client passes (NextToken, NextPK) as the next request's cursor.
type StreamRangeResponse struct {
	Entries   []row.Entry
	NextToken int64
	NextPK    string
	More      bool
	ErrMsg    string
}

// TypeID implements Message.
func (*StreamRangeResponse) TypeID() uint16 { return TypeStreamRangeResponse }

// DeleteRangeRequest retires every partition whose token falls in the
// inclusive range [Lo, Hi] from the receiving node — the final step of
// a range handoff, issued only after the new owner serves the range.
type DeleteRangeRequest struct {
	Lo, Hi int64
}

// TypeID implements Message.
func (*DeleteRangeRequest) TypeID() uint16 { return TypeDeleteRangeRequest }

// DeleteRangeResponse reports how many cells the purge removed.
type DeleteRangeResponse struct {
	Removed uint64
	ErrMsg  string
}

// TypeID implements Message.
func (*DeleteRangeResponse) TypeID() uint16 { return TypeDeleteRangeResponse }

// DigestRequest asks a node for the Merkle-style digest of the
// inclusive token range [Lo, Hi] at the given tree depth — the probe of
// the anti-entropy repair pass. Digests are admin-class traffic like
// range streaming: no epoch field, valid at any topology. Both sides
// derive the leaf bucket boundaries deterministically from (Lo, Hi,
// Depth), so only hashes travel; a repair descends into a mismatched
// leaf by issuing another DigestRequest over that leaf's sub-range.
type DigestRequest struct {
	Lo, Hi int64
	Depth  uint32
}

// TypeID implements Message.
func (*DigestRequest) TypeID() uint16 { return TypeDigestRequest }

// DigestLeaf is one digest bucket on the wire: the hash of the bucket's
// (pk, ck, version, flags) tuples — tombstones included — and the tuple
// count (the repair pass's descend-or-stream signal).
type DigestLeaf struct {
	Hash  uint64
	Cells uint64
}

// DigestResponse returns the digest leaves of the requested range, leaf
// i covering the i-th bucket of the (Lo, Hi, Depth) layout.
type DigestResponse struct {
	Leaves []DigestLeaf
	ErrMsg string
}

// TypeID implements Message.
func (*DigestResponse) TypeID() uint16 { return TypeDigestResponse }

// --- Membership protocol ----------------------------------------------------
//
// These messages lift the join/leave state machine onto the wire so
// real processes form and heal a ring without an in-process
// coordinator. A fresh node dials a seed, learns the current topology
// (RingStateRequest), boots at that epoch, then sends one JoinRequest;
// the seed drives the whole state machine — ownership diff, dual-write
// window (BeginMigration), paged range streaming, epoch flip
// (SetRingState), retirement (EndMigration + DeleteRange) — over these
// messages and answers with the final epoch. Migration-control traffic
// is admin-class like range streaming: no epoch fields, valid at any
// topology, serialized by the coordinating node.

// Move is one range handoff on the wire: the inclusive token range
// [Lo, Hi] moves from replica From to replica To at the epoch flip.
type Move struct {
	Lo, Hi   int64
	From, To uint32
}

// JoinRequest asks the receiving member to bring the sender into the
// ring. ID is the joiner's chosen node ID (it must already serve at
// Addr, booted at the seed's current topology, so dual-write forwards
// and streamed pages land somewhere). The seed serializes joins: a
// second JoinRequest arriving mid-migration is rejected and retried.
type JoinRequest struct {
	ID   uint32
	Addr string
}

// TypeID implements Message.
func (*JoinRequest) TypeID() uint16 { return TypeJoinRequest }

// JoinResponse reports the outcome of a join: the epoch the ring
// flipped to and the rebalance summary (mirroring RebalanceReport).
// RetireErr is non-fatal — the join succeeded but some source-side
// range purges failed and will be reclaimed by a later repair/purge.
type JoinResponse struct {
	Epoch         uint64
	Moves         uint32
	CellsStreamed uint64
	CellsRetired  uint64
	Pages         uint32
	StreamNanos   uint64
	FlipNanos     uint64
	RetireErr     string
	ErrMsg        string
}

// TypeID implements Message.
func (*JoinResponse) TypeID() uint16 { return TypeJoinResponse }

// BeginMigrationRequest opens the dual-write window on the receiving
// node. The node filters Moves for relevance itself: ranges it is the
// source of get forwarded-to targets (dialed from the Nodes book),
// ranges it is the target of get tombstone-GC fences. Nodes is the
// address book of the NEXT epoch, so forward targets that are not yet
// members are dialable.
type BeginMigrationRequest struct {
	Moves []Move
	Nodes []NodeAddr
}

// TypeID implements Message.
func (*BeginMigrationRequest) TypeID() uint16 { return TypeBeginMigrationRequest }

// BeginMigrationResponse acknowledges the dual-write window.
type BeginMigrationResponse struct {
	ErrMsg string
}

// TypeID implements Message.
func (*BeginMigrationResponse) TypeID() uint16 { return TypeBeginMigrationResponse }

// EndMigrationRequest closes the receiving node's migration window:
// dual-write forwarding stops and the target-side GC fences lift.
// Issued only after every node serves the new epoch.
type EndMigrationRequest struct{}

// TypeID implements Message.
func (*EndMigrationRequest) TypeID() uint16 { return TypeEndMigrationRequest }

// EndMigrationResponse acknowledges the window close.
type EndMigrationResponse struct {
	ErrMsg string
}

// TypeID implements Message.
func (*EndMigrationResponse) TypeID() uint16 { return TypeEndMigrationResponse }

// SetRingStateRequest installs a topology on the receiving node — the
// epoch flip. The node adopts it only if Epoch is newer than its
// current ring, persists it crash-atomically to its topology file, and
// from then on rejects data-path requests routed at other epochs.
type SetRingStateRequest struct {
	Epoch  uint64
	Vnodes uint32
	RF     uint32
	Nodes  []NodeAddr
}

// TypeID implements Message.
func (*SetRingStateRequest) TypeID() uint16 { return TypeSetRingStateRequest }

// SetRingStateResponse acknowledges a topology install.
type SetRingStateResponse struct {
	ErrMsg string
}

// TypeID implements Message.
func (*SetRingStateResponse) TypeID() uint16 { return TypeSetRingStateResponse }

// PingRequest is a liveness probe between peers. FromID/Epoch identify
// the prober and its ring view; the reply carries the receiver's, so a
// probe doubles as a cheap epoch-skew detector.
type PingRequest struct {
	FromID uint32
	Epoch  uint64
}

// TypeID implements Message.
func (*PingRequest) TypeID() uint16 { return TypePingRequest }

// PingResponse answers a probe with the receiver's identity and epoch.
type PingResponse struct {
	ID     uint32
	Epoch  uint64
	ErrMsg string
}

// TypeID implements Message.
func (*PingResponse) TypeID() uint16 { return TypePingResponse }

// LeaveRequest announces a graceful departure: the sender is shutting
// down NOW. Receivers mark the peer down immediately instead of
// waiting for probe timeouts. It does NOT change membership — the
// departed node still owns its ranges (and rejoins on restart); a
// permanent removal goes through the remove state machine.
type LeaveRequest struct {
	ID uint32
}

// TypeID implements Message.
func (*LeaveRequest) TypeID() uint16 { return TypeLeaveRequest }

// LeaveResponse acknowledges a departure announcement.
type LeaveResponse struct {
	ErrMsg string
}

// TypeID implements Message.
func (*LeaveResponse) TypeID() uint16 { return TypeLeaveResponse }

// NodeStatsRequest asks a node for its storage-engine load summary.
type NodeStatsRequest struct{}

// TypeID implements Message.
func (*NodeStatsRequest) TypeID() uint16 { return TypeNodeStatsRequest }

// ShardStat is one engine shard's load snapshot.
type ShardStat struct {
	MemtableBytes   uint64
	FrozenMemtables uint32
	SSTables        uint32
}

// NodeStatsResponse summarizes a node's engine: per-shard backlog plus
// cumulative flush/compaction work. The coordinator uses it to pick the
// least-loaded streaming source among a range's replicas; deployments
// read the level layout and compaction byte counters to watch
// compaction debt and write amplification.
type NodeStatsResponse struct {
	Epoch           uint64
	Shards          []ShardStat
	FlushedBytes    uint64
	FlushCount      uint64
	CompactionCount uint64
	// CompactionBytesIn/Out are cumulative merge input/output volume —
	// Out over FlushedBytes approximates the node's write-amplification
	// factor.
	CompactionBytesIn  uint64
	CompactionBytesOut uint64
	// LevelTables/LevelBytes describe the engine's level tree aggregated
	// across shards; index = level, level 0 is the flush landing zone.
	LevelTables []uint32
	LevelBytes  []uint64
	// Block-cache and compression observability: the shared block
	// cache's cumulative counters and current resident bytes, plus the
	// logical-vs-stored volume of every data block the engine wrote
	// (Stored over Logical is the on-disk compression ratio).
	CacheHits         uint64
	CacheMisses       uint64
	CacheEvictions    uint64
	CacheBytes        uint64
	BlockBytesLogical uint64
	BlockBytesStored  uint64
	// Peers is the node's liveness view of the other ring members (empty
	// when probing is disabled). DialCount/RedialCount are cumulative
	// outbound peer connections: first dials plus re-dials after a broken
	// connection — a rising redial count is the bounced-peer signal.
	Peers       []PeerStat
	DialCount   uint64
	RedialCount uint64
	ErrMsg      string
}

// PeerStat is one peer's health as seen by the reporting node: up or
// down, the current consecutive-failure count (suspicion), and how long
// the peer has been in this state.
type PeerStat struct {
	ID          uint32
	Up          bool
	Suspicion   uint32
	SinceMillis uint64
}

// TypeID implements Message.
func (*NodeStatsResponse) TypeID() uint16 { return TypeNodeStatsResponse }

// Codec turns messages into bytes and back. Implementations must be safe
// for concurrent use.
type Codec interface {
	Name() string
	Marshal(Message) ([]byte, error)
	Unmarshal([]byte) (Message, error)
}

// newMessage instantiates the registered concrete type for a type ID.
func newMessage(id uint16) (Message, error) {
	switch id {
	case TypeCountRequest:
		return &CountRequest{}, nil
	case TypeCountResponse:
		return &CountResponse{}, nil
	case TypePutRequest:
		return &PutRequest{}, nil
	case TypePutResponse:
		return &PutResponse{}, nil
	case TypeGetRequest:
		return &GetRequest{}, nil
	case TypeGetResponse:
		return &GetResponse{}, nil
	case TypeScanRequest:
		return &ScanRequest{}, nil
	case TypeScanResponse:
		return &ScanResponse{}, nil
	case TypeBatchPutRequest:
		return &BatchPutRequest{}, nil
	case TypeBatchPutResponse:
		return &BatchPutResponse{}, nil
	case TypeMultiGetRequest:
		return &MultiGetRequest{}, nil
	case TypeMultiGetResponse:
		return &MultiGetResponse{}, nil
	case TypeRingStateRequest:
		return &RingStateRequest{}, nil
	case TypeRingStateResponse:
		return &RingStateResponse{}, nil
	case TypeStreamRangeRequest:
		return &StreamRangeRequest{}, nil
	case TypeStreamRangeResponse:
		return &StreamRangeResponse{}, nil
	case TypeDeleteRangeRequest:
		return &DeleteRangeRequest{}, nil
	case TypeDeleteRangeResponse:
		return &DeleteRangeResponse{}, nil
	case TypeNodeStatsRequest:
		return &NodeStatsRequest{}, nil
	case TypeNodeStatsResponse:
		return &NodeStatsResponse{}, nil
	case TypeDeleteRequest:
		return &DeleteRequest{}, nil
	case TypeDeleteResponse:
		return &DeleteResponse{}, nil
	case TypeDigestRequest:
		return &DigestRequest{}, nil
	case TypeDigestResponse:
		return &DigestResponse{}, nil
	case TypeJoinRequest:
		return &JoinRequest{}, nil
	case TypeJoinResponse:
		return &JoinResponse{}, nil
	case TypeBeginMigrationRequest:
		return &BeginMigrationRequest{}, nil
	case TypeBeginMigrationResponse:
		return &BeginMigrationResponse{}, nil
	case TypeEndMigrationRequest:
		return &EndMigrationRequest{}, nil
	case TypeEndMigrationResponse:
		return &EndMigrationResponse{}, nil
	case TypeSetRingStateRequest:
		return &SetRingStateRequest{}, nil
	case TypeSetRingStateResponse:
		return &SetRingStateResponse{}, nil
	case TypePingRequest:
		return &PingRequest{}, nil
	case TypePingResponse:
		return &PingResponse{}, nil
	case TypeLeaveRequest:
		return &LeaveRequest{}, nil
	case TypeLeaveResponse:
		return &LeaveResponse{}, nil
	default:
		return nil, fmt.Errorf("wire: unknown message type %d", id)
	}
}
