// Package wire defines the messages exchanged between the master and the
// slaves, and two interchangeable codecs that reproduce the paper's
// Section V-B serialization experiment:
//
//   - SlowCodec is the analogue of Java's default serialization: a
//     self-describing format that embeds the type name, every field name
//     and a per-field type tag, and that is encoded and decoded through
//     reflection. Flexible, and expensive in both CPU and bytes.
//   - FastCodec is the analogue of Kryo with registered classes: each
//     message type is pre-registered under a numeric ID and encodes
//     through hand-written, allocation-light binary routines.
//
// The paper measured 150 µs/message with the default serializer and
// 19 µs after switching — almost an order of magnitude — and a payload
// drop from 7.5 MB to 900 KB for ten thousand messages. The codec
// benchmarks in this package reproduce the ratio on the Go stack.
package wire

import (
	"fmt"

	"scalekv/internal/row"
)

// Message is implemented by every wire message.
type Message interface {
	// TypeID identifies the concrete message type in FastCodec frames.
	TypeID() uint16
}

// Message type IDs. Stable on the wire; never reorder.
const (
	TypeCountRequest uint16 = iota + 1
	TypeCountResponse
	TypePutRequest
	TypePutResponse
	TypeGetRequest
	TypeGetResponse
	TypeScanRequest
	TypeScanResponse
	TypeBatchPutRequest
	TypeBatchPutResponse
	TypeMultiGetRequest
	TypeMultiGetResponse
)

// CountRequest asks a slave to aggregate — count by type — one partition
// stored locally. This is the paper's prototype query unit: the master
// issues one CountRequest per key.
type CountRequest struct {
	QueryID uint64
	Seq     uint32
	PK      string
	// TraceSendNanos carries the master's send timestamp so the slave
	// can attribute the master-to-slave stage (Aeneas-style tracing).
	TraceSendNanos int64
}

// TypeID implements Message.
func (*CountRequest) TypeID() uint16 { return TypeCountRequest }

// CountResponse returns the per-type counts of one partition.
type CountResponse struct {
	QueryID  uint64
	Seq      uint32
	NodeID   uint32
	Elements uint64
	Counts   map[uint8]uint64
	ErrMsg   string
	// Stage timings reported back for the profile harness (Figure 4):
	// RecvNanos is the slave's absolute receive timestamp (same-host
	// clock domain), QueueNanos the time spent waiting for a database
	// slot and DBNanos the in-database service time.
	RecvNanos  int64
	QueueNanos int64
	DBNanos    int64
}

// TypeID implements Message.
func (*CountResponse) TypeID() uint16 { return TypeCountResponse }

// PutRequest writes one cell.
type PutRequest struct {
	PK    string
	CK    []byte
	Value []byte
}

// TypeID implements Message.
func (*PutRequest) TypeID() uint16 { return TypePutRequest }

// PutResponse acknowledges a write.
type PutResponse struct {
	ErrMsg string
}

// TypeID implements Message.
func (*PutResponse) TypeID() uint16 { return TypePutResponse }

// GetRequest reads one cell.
type GetRequest struct {
	PK string
	CK []byte
}

// TypeID implements Message.
func (*GetRequest) TypeID() uint16 { return TypeGetRequest }

// GetResponse returns one cell value.
type GetResponse struct {
	Value  []byte
	Found  bool
	ErrMsg string
}

// TypeID implements Message.
func (*GetResponse) TypeID() uint16 { return TypeGetResponse }

// ScanRequest reads a clustering range of a partition. Nil bounds mean
// unbounded.
type ScanRequest struct {
	PK   string
	From []byte
	To   []byte
}

// TypeID implements Message.
func (*ScanRequest) TypeID() uint16 { return TypeScanRequest }

// ScanResponse returns the cells of a range read.
type ScanResponse struct {
	Cells  []row.Cell
	ErrMsg string
}

// TypeID implements Message.
func (*ScanResponse) TypeID() uint16 { return TypeScanResponse }

// BatchPutRequest writes many cells in one frame — the aggregated-put
// unit of the bulk-write pipeline. Entries may span partitions; the
// receiving node group-commits them in one engine call.
type BatchPutRequest struct {
	Entries []row.Entry
}

// TypeID implements Message.
func (*BatchPutRequest) TypeID() uint16 { return TypeBatchPutRequest }

// BatchPutResponse acknowledges a batch write.
type BatchPutResponse struct {
	// Applied is how many entries were committed: len(Entries) on
	// success, 0 on error. A zero does NOT mean nothing was applied —
	// the engine keeps any prefix that committed before the failure
	// (same semantics as a partially completed sequence of Puts) — so
	// Applied cannot be used to resume a failed load; re-send the whole
	// batch (puts are idempotent, last write wins).
	Applied uint64
	ErrMsg  string
}

// TypeID implements Message.
func (*BatchPutResponse) TypeID() uint16 { return TypeBatchPutResponse }

// GetKey addresses one cell for a multi-get.
type GetKey struct {
	PK string
	CK []byte
}

// MultiGetRequest reads many cells in one frame.
type MultiGetRequest struct {
	Keys []GetKey
}

// TypeID implements Message.
func (*MultiGetRequest) TypeID() uint16 { return TypeMultiGetRequest }

// MultiGetValue is one multi-get result; Values[i] answers Keys[i].
type MultiGetValue struct {
	Value []byte
	Found bool
}

// MultiGetResponse returns the values of a multi-get, positionally
// matching the request keys.
type MultiGetResponse struct {
	Values []MultiGetValue
	ErrMsg string
}

// TypeID implements Message.
func (*MultiGetResponse) TypeID() uint16 { return TypeMultiGetResponse }

// Codec turns messages into bytes and back. Implementations must be safe
// for concurrent use.
type Codec interface {
	Name() string
	Marshal(Message) ([]byte, error)
	Unmarshal([]byte) (Message, error)
}

// newMessage instantiates the registered concrete type for a type ID.
func newMessage(id uint16) (Message, error) {
	switch id {
	case TypeCountRequest:
		return &CountRequest{}, nil
	case TypeCountResponse:
		return &CountResponse{}, nil
	case TypePutRequest:
		return &PutRequest{}, nil
	case TypePutResponse:
		return &PutResponse{}, nil
	case TypeGetRequest:
		return &GetRequest{}, nil
	case TypeGetResponse:
		return &GetResponse{}, nil
	case TypeScanRequest:
		return &ScanRequest{}, nil
	case TypeScanResponse:
		return &ScanResponse{}, nil
	case TypeBatchPutRequest:
		return &BatchPutRequest{}, nil
	case TypeBatchPutResponse:
		return &BatchPutResponse{}, nil
	case TypeMultiGetRequest:
		return &MultiGetRequest{}, nil
	case TypeMultiGetResponse:
		return &MultiGetResponse{}, nil
	default:
		return nil, fmt.Errorf("wire: unknown message type %d", id)
	}
}
