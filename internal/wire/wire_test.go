package wire

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"scalekv/internal/row"
)

var codecs = []Codec{FastCodec{}, SlowCodec{}}

func sampleMessages() []Message {
	return []Message{
		&CountRequest{QueryID: 42, Seq: 7, PK: "cube-0113", TraceSendNanos: 123456789},
		&CountResponse{
			QueryID: 42, Seq: 7, NodeID: 3, Elements: 10000,
			Counts:     map[uint8]uint64{0: 5000, 1: 3000, 2: 2000},
			QueueNanos: 1500, DBNanos: 820000,
		},
		&CountResponse{QueryID: 1, ErrMsg: "partition not found"},
		&PutRequest{PK: "p", CK: []byte{1, 2}, Value: []byte("hello")},
		&PutResponse{},
		&PutResponse{ErrMsg: "disk full"},
		&GetRequest{PK: "p", CK: []byte{9}},
		&GetResponse{Value: []byte("v"), Found: true},
		&GetResponse{Found: false},
		&ScanRequest{PK: "p", From: []byte{0}, To: []byte{200}},
		&ScanRequest{PK: "p"}, // nil bounds
		&ScanResponse{Cells: []row.Cell{
			{CK: []byte{1}, Value: []byte("a")},
			{CK: []byte{2}, Value: []byte("bb")},
		}},
		&ScanResponse{ErrMsg: "boom"},
		&BatchPutRequest{Entries: []row.Entry{
			{PK: "cube-L2-0-1-3", CK: []byte{0, 0, 1}, Value: []byte("alpha")},
			{PK: "cube-L2-7-7-7", CK: []byte{0, 0, 2}, Value: []byte("bravo")},
			{PK: "cube-L2-0-1-3", CK: []byte{0, 0, 3}, Value: []byte{}},
		}},
		&BatchPutRequest{}, // empty batch
		&BatchPutResponse{Applied: 3},
		&BatchPutResponse{ErrMsg: "disk full"},
		&MultiGetRequest{Keys: []GetKey{
			{PK: "p1", CK: []byte{1}},
			{PK: "p2", CK: []byte{2, 3}},
		}},
		&MultiGetResponse{Values: []MultiGetValue{
			{Value: []byte("v1"), Found: true},
			{Found: false},
		}},
		&MultiGetResponse{ErrMsg: "partition not found"},
		&PutRequest{PK: "p", CK: []byte{1}, Value: []byte("v"), Epoch: 7},
		&GetRequest{PK: "p", CK: []byte{9}, Epoch: 3},
		&ScanRequest{PK: "p", Epoch: 12},
		&BatchPutRequest{Entries: []row.Entry{{PK: "x", CK: []byte{1}, Value: []byte("y")}}, Epoch: 5},
		&MultiGetRequest{Keys: []GetKey{{PK: "p1", CK: []byte{1}}}, Epoch: 9},
		&RingStateRequest{},
		&RingStateResponse{Epoch: 4, Vnodes: 64, Nodes: []NodeAddr{
			{ID: 0, Addr: "node-0"}, {ID: 3, Addr: "127.0.0.1:7171"},
		}},
		&RingStateResponse{ErrMsg: "no topology"},
		&StreamRangeRequest{Lo: -1 << 62, Hi: 1<<62 - 1, AfterToken: -9000, AfterPK: "cube-0007", MaxCells: 4096},
		&StreamRangeResponse{Entries: []row.Entry{
			{PK: "cube-0008", CK: []byte{1}, Value: []byte("a")},
		}, NextToken: -42, NextPK: "cube-0008", More: true},
		&StreamRangeResponse{ErrMsg: "engine closed"},
		&DeleteRangeRequest{Lo: -100, Hi: 100},
		&DeleteRangeResponse{Removed: 1234},
		&DeleteRangeResponse{ErrMsg: "boom"},
		&NodeStatsRequest{},
		&NodeStatsResponse{Epoch: 2, Shards: []ShardStat{
			{MemtableBytes: 1 << 20, FrozenMemtables: 2, SSTables: 5},
			{MemtableBytes: 0, FrozenMemtables: 0, SSTables: 1},
		}, FlushedBytes: 9 << 20, FlushCount: 7, CompactionCount: 1,
			CompactionBytesIn: 3 << 20, CompactionBytesOut: 2 << 20,
			LevelTables: []uint32{4, 2, 1}, LevelBytes: []uint64{1 << 20, 9 << 20, 80 << 20},
			CacheHits: 12345, CacheMisses: 678, CacheEvictions: 90, CacheBytes: 48 << 20,
			BlockBytesLogical: 10 << 20, BlockBytesStored: 6 << 20},
		// Versioned cells and tombstones: the fields every replica's
		// last-write-wins merge depends on must survive both codecs.
		&DeleteRequest{PK: "p", CK: []byte{1, 2, 3}, Epoch: 11},
		&DeleteRequest{PK: "p", CK: []byte{9}},
		&DeleteResponse{},
		&DeleteResponse{ErrMsg: "boom"},
		&GetResponse{Value: []byte("v"), Found: true, VerSeq: 99, VerNode: 7},
		&ScanResponse{Cells: []row.Cell{
			{CK: []byte{1}, Value: []byte("a"), Ver: row.Version{Seq: 5, Node: 2}},
			{CK: []byte{2}, Ver: row.Version{Seq: 6, Node: 1}, Tombstone: true},
		}},
		&BatchPutRequest{Entries: []row.Entry{
			{PK: "p", CK: []byte{1}, Value: []byte("fwd"), Ver: row.Version{Seq: 1 << 40, Node: 65535}},
			{PK: "p", CK: []byte{2}, Ver: row.Version{Seq: 12, Node: 3}, Tombstone: true},
		}, Epoch: 4},
		&StreamRangeResponse{Entries: []row.Entry{
			{PK: "cube-0008", CK: []byte{1}, Value: []byte("a"), Ver: row.Version{Seq: 77, Node: 2}},
			{PK: "cube-0008", CK: []byte{2}, Ver: row.Version{Seq: 78, Node: 2}, Tombstone: true},
		}, NextToken: -42, NextPK: "cube-0008", More: true},
		// Anti-entropy: digest probes and the tombstone-bearing get
		// response the read-repair of deletes rides on.
		&DigestRequest{Lo: -1 << 63, Hi: 1<<63 - 1, Depth: 4},
		&DigestRequest{Lo: -9000, Hi: 42, Depth: 10},
		&DigestResponse{Leaves: []DigestLeaf{
			{Hash: 14695981039346656037, Cells: 0},
			{Hash: 1, Cells: 1 << 40},
		}},
		&DigestResponse{ErrMsg: "engine closed"},
		&GetResponse{Tombstone: true, VerSeq: 1 << 50, VerNode: 65535},
		// Membership protocol: join, migration control, epoch flip,
		// liveness probes and departure announcements.
		&JoinRequest{ID: 3, Addr: "127.0.0.1:7073"},
		&JoinResponse{Epoch: 5, Moves: 12, CellsStreamed: 40000, CellsRetired: 39000,
			Pages: 10, StreamNanos: 1 << 30, FlipNanos: 1 << 20, RetireErr: "node 1: timeout"},
		&JoinResponse{ErrMsg: "join of node 3 already in flight"},
		&BeginMigrationRequest{Moves: []Move{
			{Lo: -1 << 62, Hi: 1<<62 - 1, From: 0, To: 3},
			{Lo: 42, Hi: 4242, From: 2, To: 3},
		}, Nodes: []NodeAddr{{ID: 0, Addr: "node-0"}, {ID: 3, Addr: "127.0.0.1:7073"}}},
		&BeginMigrationRequest{},
		&BeginMigrationResponse{},
		&BeginMigrationResponse{ErrMsg: "busy"},
		&EndMigrationRequest{},
		&EndMigrationResponse{ErrMsg: "boom"},
		&SetRingStateRequest{Epoch: 6, Vnodes: 64, RF: 2, Nodes: []NodeAddr{
			{ID: 0, Addr: "node-0"}, {ID: 1, Addr: "node-1"},
		}},
		&SetRingStateResponse{},
		&SetRingStateResponse{ErrMsg: "stale epoch"},
		&PingRequest{FromID: 1, Epoch: 4},
		&PingResponse{ID: 2, Epoch: 4},
		&PingResponse{ErrMsg: "shutting down"},
		&LeaveRequest{ID: 2},
		&LeaveResponse{},
		&RingStateResponse{Epoch: 9, Vnodes: 32, RF: 3, Nodes: []NodeAddr{{ID: 7, Addr: "x:1"}}},
		&NodeStatsResponse{Epoch: 3, Peers: []PeerStat{
			{ID: 1, Up: true, SinceMillis: 120000},
			{ID: 2, Up: false, Suspicion: 5, SinceMillis: 900},
		}, DialCount: 12, RedialCount: 3},
	}
}

func TestRoundTripAllMessagesAllCodecs(t *testing.T) {
	for _, c := range codecs {
		for i, m := range sampleMessages() {
			data, err := c.Marshal(m)
			if err != nil {
				t.Fatalf("%s: marshal msg %d: %v", c.Name(), i, err)
			}
			got, err := c.Unmarshal(data)
			if err != nil {
				t.Fatalf("%s: unmarshal msg %d: %v", c.Name(), i, err)
			}
			if !reflect.DeepEqual(normalize(m), normalize(got)) {
				t.Fatalf("%s: msg %d round trip\n in: %#v\nout: %#v", c.Name(), i, m, got)
			}
		}
	}
}

// normalize maps empty-but-non-nil containers to nil so DeepEqual
// compares semantic content. Fast and slow codecs may differ in whether
// they materialize empty slices.
func normalize(m Message) Message {
	switch v := m.(type) {
	case *CountResponse:
		out := *v
		if len(out.Counts) == 0 {
			out.Counts = nil
		}
		return &out
	case *ScanResponse:
		out := *v
		if len(out.Cells) == 0 {
			out.Cells = nil
		}
		for i := range out.Cells {
			if len(out.Cells[i].CK) == 0 {
				out.Cells[i].CK = nil
			}
			if len(out.Cells[i].Value) == 0 {
				out.Cells[i].Value = nil
			}
		}
		return &out
	case *PutRequest:
		out := *v
		if len(out.CK) == 0 {
			out.CK = nil
		}
		if len(out.Value) == 0 {
			out.Value = nil
		}
		return &out
	case *GetRequest:
		out := *v
		if len(out.CK) == 0 {
			out.CK = nil
		}
		return &out
	case *GetResponse:
		out := *v
		if len(out.Value) == 0 {
			out.Value = nil
		}
		return &out
	case *DigestResponse:
		out := *v
		if len(out.Leaves) == 0 {
			out.Leaves = nil
		}
		return &out
	case *ScanRequest:
		out := *v
		if len(out.From) == 0 {
			out.From = nil
		}
		if len(out.To) == 0 {
			out.To = nil
		}
		return &out
	case *BatchPutRequest:
		out := *v
		if len(out.Entries) == 0 {
			out.Entries = nil
		} else {
			out.Entries = append([]row.Entry(nil), out.Entries...)
		}
		for i := range out.Entries {
			if len(out.Entries[i].CK) == 0 {
				out.Entries[i].CK = nil
			}
			if len(out.Entries[i].Value) == 0 {
				out.Entries[i].Value = nil
			}
		}
		return &out
	case *MultiGetRequest:
		out := *v
		if len(out.Keys) == 0 {
			out.Keys = nil
		} else {
			out.Keys = append([]GetKey(nil), out.Keys...)
		}
		for i := range out.Keys {
			if len(out.Keys[i].CK) == 0 {
				out.Keys[i].CK = nil
			}
		}
		return &out
	case *MultiGetResponse:
		out := *v
		if len(out.Values) == 0 {
			out.Values = nil
		} else {
			out.Values = append([]MultiGetValue(nil), out.Values...)
		}
		for i := range out.Values {
			if len(out.Values[i].Value) == 0 {
				out.Values[i].Value = nil
			}
		}
		return &out
	case *RingStateResponse:
		out := *v
		if len(out.Nodes) == 0 {
			out.Nodes = nil
		}
		return &out
	case *StreamRangeResponse:
		out := *v
		if len(out.Entries) == 0 {
			out.Entries = nil
		} else {
			out.Entries = append([]row.Entry(nil), out.Entries...)
		}
		for i := range out.Entries {
			if len(out.Entries[i].CK) == 0 {
				out.Entries[i].CK = nil
			}
			if len(out.Entries[i].Value) == 0 {
				out.Entries[i].Value = nil
			}
		}
		return &out
	case *NodeStatsResponse:
		out := *v
		if len(out.Shards) == 0 {
			out.Shards = nil
		}
		if len(out.Peers) == 0 {
			out.Peers = nil
		}
		if len(out.LevelTables) == 0 {
			out.LevelTables = nil
		}
		if len(out.LevelBytes) == 0 {
			out.LevelBytes = nil
		}
		return &out
	case *BeginMigrationRequest:
		out := *v
		if len(out.Moves) == 0 {
			out.Moves = nil
		}
		if len(out.Nodes) == 0 {
			out.Nodes = nil
		}
		return &out
	case *SetRingStateRequest:
		out := *v
		if len(out.Nodes) == 0 {
			out.Nodes = nil
		}
		return &out
	}
	return m
}

func TestCrossCodecIncompatibilityDetected(t *testing.T) {
	// A fast frame fed to the slow codec (and vice versa) must error,
	// not silently mis-decode.
	m := &CountRequest{QueryID: 1, PK: "x"}
	fast, _ := FastCodec{}.Marshal(m)
	if _, err := (SlowCodec{}).Unmarshal(fast); err == nil {
		t.Error("slow codec decoded a fast frame")
	}
	slow, _ := SlowCodec{}.Marshal(m)
	if _, err := (FastCodec{}).Unmarshal(slow); err == nil {
		t.Error("fast codec decoded a slow frame")
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	for _, c := range codecs {
		for _, data := range [][]byte{nil, {0xFF}, {1, 2, 3}, make([]byte, 64)} {
			if _, err := c.Unmarshal(data); err == nil {
				t.Errorf("%s: decoded garbage %v", c.Name(), data)
			}
		}
	}
}

func TestTruncatedFrames(t *testing.T) {
	for _, c := range codecs {
		m := &CountResponse{
			QueryID: 9, Counts: map[uint8]uint64{1: 2, 3: 4}, ErrMsg: "x",
		}
		full, err := c.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 1; cut < len(full); cut++ {
			if _, err := c.Unmarshal(full[:cut]); err == nil {
				// Some prefixes can be valid encodings of a shorter
				// message only if trailing bytes are checked; fast codec
				// tolerates them by design, slow codec rejects them.
				if c.Name() == "slow" {
					t.Errorf("slow codec accepted truncation at %d", cut)
				}
			}
		}
	}
}

func TestSlowStreamIsSelfDescribing(t *testing.T) {
	m := &CountRequest{QueryID: 5, PK: "partition-abc"}
	data, err := SlowCodec{}.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	// The stream must contain the type name and field names — that
	// metadata is exactly the Java-serialization overhead the paper
	// measured.
	for _, needle := range []string{"wire.CountRequest", "QueryID", "PK", "TraceSendNanos"} {
		if !contains(data, needle) {
			t.Errorf("slow stream missing descriptor %q", needle)
		}
	}
}

func contains(haystack []byte, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if string(haystack[i:i+len(needle)]) == needle {
			return true
		}
	}
	return false
}

func TestSlowFramesAreLarger(t *testing.T) {
	// The paper: 7.5 MB slow vs 900 KB fast for 10k messages (~8x).
	// Require at least 3x on every sample message.
	for _, m := range sampleMessages() {
		slow, err := SlowCodec{}.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := FastCodec{}.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(slow) < 3*len(fast) {
			t.Errorf("%T: slow=%dB fast=%dB, ratio %.1fx < 3x",
				m, len(slow), len(fast), float64(len(slow))/float64(len(fast)))
		}
	}
}

func TestBatchMessageTypeIDsAreStable(t *testing.T) {
	// Wire compatibility: these values are on the wire between versions;
	// a renumbering is a protocol break and must fail loudly here.
	want := map[uint16]Message{
		9:  &BatchPutRequest{},
		10: &BatchPutResponse{},
		11: &MultiGetRequest{},
		12: &MultiGetResponse{},
		13: &RingStateRequest{},
		14: &RingStateResponse{},
		15: &StreamRangeRequest{},
		16: &StreamRangeResponse{},
		17: &DeleteRangeRequest{},
		18: &DeleteRangeResponse{},
		19: &NodeStatsRequest{},
		20: &NodeStatsResponse{},
		21: &DeleteRequest{},
		22: &DeleteResponse{},
		23: &DigestRequest{},
		24: &DigestResponse{},
		25: &JoinRequest{},
		26: &JoinResponse{},
		27: &BeginMigrationRequest{},
		28: &BeginMigrationResponse{},
		29: &EndMigrationRequest{},
		30: &EndMigrationResponse{},
		31: &SetRingStateRequest{},
		32: &SetRingStateResponse{},
		33: &PingRequest{},
		34: &PingResponse{},
		35: &LeaveRequest{},
		36: &LeaveResponse{},
	}
	for id, m := range want {
		if got := m.TypeID(); got != id {
			t.Errorf("%T: TypeID %d want %d", m, got, id)
		}
	}
}

func TestQuickBatchPutRoundTrip(t *testing.T) {
	for _, c := range codecs {
		c := c
		f := func(pks []string, payload [][]byte) bool {
			in := &BatchPutRequest{}
			for i, pk := range pks {
				var val []byte
				if i < len(payload) {
					val = payload[i]
				}
				in.Entries = append(in.Entries, row.Entry{
					PK: pk, CK: []byte{byte(i)}, Value: val,
					Ver:       row.Version{Seq: uint64(i)*7 + 1, Node: uint16(i * 13)},
					Tombstone: i%3 == 0,
				})
			}
			data, err := c.Marshal(in)
			if err != nil {
				return false
			}
			out, err := c.Unmarshal(data)
			if err != nil {
				return false
			}
			got, ok := out.(*BatchPutRequest)
			if !ok || len(got.Entries) != len(in.Entries) {
				return false
			}
			for i, e := range in.Entries {
				g := got.Entries[i]
				if g.PK != e.PK || !bytes.Equal(g.CK, e.CK) || !bytes.Equal(g.Value, e.Value) {
					return false
				}
				if g.Ver != e.Ver || g.Tombstone != e.Tombstone {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestQuickCountRequestRoundTrip(t *testing.T) {
	for _, c := range codecs {
		c := c
		f := func(id uint64, seq uint32, pk string) bool {
			in := &CountRequest{QueryID: id, Seq: seq, PK: pk}
			data, err := c.Marshal(in)
			if err != nil {
				return false
			}
			out, err := c.Unmarshal(data)
			if err != nil {
				return false
			}
			got, ok := out.(*CountRequest)
			return ok && got.QueryID == id && got.Seq == seq && got.PK == pk
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestQuickCountResponseCounts(t *testing.T) {
	for _, c := range codecs {
		c := c
		f := func(raw map[uint8]uint64) bool {
			in := &CountResponse{QueryID: 1, Counts: raw}
			data, err := c.Marshal(in)
			if err != nil {
				return false
			}
			out, err := c.Unmarshal(data)
			if err != nil {
				return false
			}
			got := out.(*CountResponse)
			if len(got.Counts) != len(raw) {
				return false
			}
			for k, v := range raw {
				if got.Counts[k] != v {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

// The headline Section V-B numbers: marshal+unmarshal cost per message
// for each codec. EXPERIMENTS.md quotes these against the paper's
// 150 µs -> 19 µs.
func BenchmarkSlowCodec(b *testing.B) { benchCodec(b, SlowCodec{}) }
func BenchmarkFastCodec(b *testing.B) { benchCodec(b, FastCodec{}) }

func benchCodec(b *testing.B, c Codec) {
	m := &CountRequest{QueryID: 42, Seq: 1001, PK: "cube-level4-0113", TraceSendNanos: 1 << 40}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := c.Marshal(m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSlowCodecResponse(b *testing.B) {
	benchCodecResponse(b, SlowCodec{})
}

func BenchmarkFastCodecResponse(b *testing.B) {
	benchCodecResponse(b, FastCodec{})
}

func benchCodecResponse(b *testing.B, c Codec) {
	m := &CountResponse{
		QueryID: 42, Seq: 1001, NodeID: 5, Elements: 100,
		Counts: map[uint8]uint64{0: 10, 1: 20, 2: 30, 3: 40},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := c.Marshal(m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleFastCodec() {
	c := FastCodec{}
	data, _ := c.Marshal(&CountRequest{QueryID: 7, PK: "cube-42"})
	m, _ := c.Unmarshal(data)
	fmt.Println(m.(*CountRequest).PK)
	// Output: cube-42
}
