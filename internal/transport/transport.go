// Package transport provides the message-passing substrate of the real
// (non-simulated) cluster: framed, correlation-tagged request/response
// connections over TCP or over in-process pipes, with optional injected
// latency for experiments.
//
// Frame layout: uint32 length | uint64 correlation id | payload. The
// correlation id lets a client pipeline thousands of requests on one
// connection — the behaviour the paper's master depends on — and match
// responses arriving out of order.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Frame is one tagged message.
type Frame struct {
	Corr    uint64
	Payload []byte
}

// Conn is a bidirectional frame stream. Send and Recv are individually
// safe for one concurrent caller each (one writer, one reader).
type Conn interface {
	Send(Frame) error
	Recv() (Frame, error)
	Close() error
}

// Listener accepts inbound connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	Addr() string
}

// ErrClosed is returned by operations on closed connections.
var ErrClosed = errors.New("transport: closed")

// --- TCP ------------------------------------------------------------------

type tcpConn struct {
	c       net.Conn
	readMu  sync.Mutex
	writeMu sync.Mutex
	latency time.Duration
}

// DialTCP connects to a TCP endpoint. A non-zero latency is added to
// every Send, emulating a slower network for experiments.
func DialTCP(addr string, latency time.Duration) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return &tcpConn{c: c, latency: latency}, nil
}

func (t *tcpConn) Send(f Frame) error {
	if t.latency > 0 {
		time.Sleep(t.latency)
	}
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(f.Payload)))
	binary.BigEndian.PutUint64(hdr[4:], f.Corr)
	if _, err := t.c.Write(hdr[:]); err != nil {
		return err
	}
	_, err := t.c.Write(f.Payload)
	return err
}

func (t *tcpConn) Recv() (Frame, error) {
	t.readMu.Lock()
	defer t.readMu.Unlock()
	var hdr [12]byte
	if _, err := io.ReadFull(t.c, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[0:])
	if n > 64<<20 {
		return Frame{}, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(t.c, payload); err != nil {
		return Frame{}, err
	}
	return Frame{Corr: binary.BigEndian.Uint64(hdr[4:]), Payload: payload}, nil
}

func (t *tcpConn) Close() error { return t.c.Close() }

type tcpListener struct {
	l       net.Listener
	latency time.Duration
}

// ListenTCP starts a TCP listener; addr ":0" picks a free port.
func ListenTCP(addr string, latency time.Duration) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &tcpListener{l: l, latency: latency}, nil
}

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return &tcpConn{c: c, latency: t.latency}, nil
}

func (t *tcpListener) Close() error { return t.l.Close() }
func (t *tcpListener) Addr() string { return t.l.Addr().String() }

// --- In-process -------------------------------------------------------------

// Network is an in-process fabric: named endpoints connected by buffered
// channels, with optional per-frame latency. It lets a whole cluster run
// in one process for tests and small wall-clock experiments.
type Network struct {
	mu        sync.Mutex
	listeners map[string]*pipeListener
	// Latency is applied to every frame crossing the fabric.
	Latency time.Duration
}

// NewNetwork creates an empty fabric.
func NewNetwork() *Network {
	return &Network{listeners: make(map[string]*pipeListener)}
}

// Listen registers a named endpoint.
func (n *Network) Listen(addr string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.listeners[addr]; exists {
		return nil, fmt.Errorf("transport: address %q in use", addr)
	}
	l := &pipeListener{
		addr:    addr,
		accept:  make(chan Conn, 16),
		done:    make(chan struct{}),
		network: n,
	}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects to a named endpoint. When the listener's accept backlog
// is full — routine under heavy in-process fan-out — Dial blocks until
// the listener drains it, failing only if the listener closes in the
// meantime. A full backlog is backpressure, not an error.
func (n *Network) Dial(addr string) (Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no listener at %q", addr)
	}
	client, server := pipePair(n)
	select {
	case l.accept <- server:
		return client, nil
	case <-l.done:
		return nil, fmt.Errorf("transport: dial %q: %w", addr, ErrClosed)
	}
}

func (n *Network) remove(addr string) {
	n.mu.Lock()
	delete(n.listeners, addr)
	n.mu.Unlock()
}

type pipeListener struct {
	addr    string
	accept  chan Conn
	done    chan struct{} // closed by Close; releases blocked Dials and Accepts
	network *Network
	once    sync.Once
}

func (l *pipeListener) Accept() (Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		// Drain connections that were queued before the close; their
		// dialers already hold the other end.
		select {
		case c := <-l.accept:
			return c, nil
		default:
			return nil, ErrClosed
		}
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() {
		l.network.remove(l.addr)
		close(l.done)
	})
	return nil
}

func (l *pipeListener) Addr() string { return l.addr }

type pipeState struct {
	closed chan struct{}
	once   sync.Once
}

type pipeConn struct {
	in      chan Frame
	out     chan Frame
	network *Network
	state   *pipeState // shared by both ends: closing either closes the pipe
}

func pipePair(n *Network) (Conn, Conn) {
	a2b := make(chan Frame, 1024)
	b2a := make(chan Frame, 1024)
	st := &pipeState{closed: make(chan struct{})}
	a := &pipeConn{in: b2a, out: a2b, network: n, state: st}
	b := &pipeConn{in: a2b, out: b2a, network: n, state: st}
	return a, b
}

func (p *pipeConn) Send(f Frame) error {
	if p.network.Latency > 0 {
		time.Sleep(p.network.Latency)
	}
	select {
	case <-p.state.closed:
		return ErrClosed
	default:
	}
	// Fast path: a buffered send compiles to a plain channel op; the
	// two-way select below costs several times more (selectgo), and
	// under load the buffer almost always has room.
	select {
	case p.out <- f:
		return nil
	default:
	}
	select {
	case p.out <- f:
		return nil
	case <-p.state.closed:
		return ErrClosed
	}
}

func (p *pipeConn) Recv() (Frame, error) {
	// Fast path: under load a frame is already queued, and the plain
	// non-blocking receive skips selectgo entirely.
	select {
	case f := <-p.in:
		return f, nil
	default:
	}
	select {
	case f := <-p.in:
		return f, nil
	case <-p.state.closed:
		// Drain anything already delivered before reporting closure.
		select {
		case f := <-p.in:
			return f, nil
		default:
			return Frame{}, ErrClosed
		}
	}
}

func (p *pipeConn) Close() error {
	p.state.once.Do(func() { close(p.state.closed) })
	return nil
}
