package transport

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func echoHandler(p []byte) []byte { return append([]byte("echo:"), p...) }

func TestInProcessRoundTrip(t *testing.T) {
	n := NewNetwork()
	l, err := n.Listen("node0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(l, echoHandler)
	defer srv.Close()

	conn, err := n.Dial("node0")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(conn)
	defer cli.Close()

	resp, err := cli.Call([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "echo:hello" {
		t.Fatalf("resp %q", resp)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(l, echoHandler)
	defer srv.Close()

	conn, err := DialTCP(l.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(conn)
	defer cli.Close()

	resp, err := cli.Call([]byte("over-tcp"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "echo:over-tcp" {
		t.Fatalf("resp %q", resp)
	}
}

func TestPipelinedCallsMatchCorrelation(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("srv")
	// Handler sleeps inversely to payload so responses come back out of
	// order; correlation matching must still pair them correctly.
	srv := Serve(l, func(p []byte) []byte {
		if len(p) > 0 && p[0] == 'a' {
			time.Sleep(20 * time.Millisecond)
		}
		return p
	})
	defer srv.Close()

	conn, _ := n.Dial("srv")
	cli := NewClient(conn)
	defer cli.Close()

	chA, err := cli.Go([]byte("a-slow"))
	if err != nil {
		t.Fatal(err)
	}
	chB, err := cli.Go([]byte("b-fast"))
	if err != nil {
		t.Fatal(err)
	}
	if got := <-chB; string(got) != "b-fast" {
		t.Fatalf("B got %q", got)
	}
	if got := <-chA; string(got) != "a-slow" {
		t.Fatalf("A got %q", got)
	}
}

func TestManyConcurrentCalls(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("srv")
	srv := Serve(l, echoHandler)
	defer srv.Close()
	conn, _ := n.Dial("srv")
	cli := NewClient(conn)
	defer cli.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				msg := []byte(fmt.Sprintf("g%d-i%d", g, i))
				resp, err := cli.Call(msg)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(resp, append([]byte("echo:"), msg...)) {
					errs <- fmt.Errorf("mismatched response %q for %q", resp, msg)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

func TestMultipleClientsOneServer(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("srv")
	srv := Serve(l, echoHandler)
	defer srv.Close()

	for i := 0; i < 5; i++ {
		conn, err := n.Dial("srv")
		if err != nil {
			t.Fatal(err)
		}
		cli := NewClient(conn)
		if _, err := cli.Call([]byte("x")); err != nil {
			t.Fatal(err)
		}
		cli.Close()
	}
}

func TestDialBlocksOnFullBacklogUntilAccept(t *testing.T) {
	// Fill the accept backlog without serving it, then issue one more
	// Dial: it must block (not fail) until Accept drains a slot.
	n := NewNetwork()
	l, err := n.Listen("busy")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 16; i++ { // backlog capacity
		if _, err := n.Dial("busy"); err != nil {
			t.Fatalf("dial %d within backlog failed: %v", i, err)
		}
	}
	dialed := make(chan error, 1)
	go func() {
		_, err := n.Dial("busy")
		dialed <- err
	}()
	select {
	case err := <-dialed:
		t.Fatalf("dial over full backlog returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
		// Still blocked: the old code would have failed immediately with
		// "accept backlog full".
	}
	if _, err := l.Accept(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-dialed:
		if err != nil {
			t.Fatalf("dial after drain failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("dial still blocked after Accept freed a slot")
	}
}

func TestDialBlockedOnBacklogReleasedByClose(t *testing.T) {
	n := NewNetwork()
	l, err := n.Listen("stuck")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if _, err := n.Dial("stuck"); err != nil {
			t.Fatal(err)
		}
	}
	dialed := make(chan error, 1)
	go func() {
		_, err := n.Dial("stuck")
		dialed <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the dial park on the backlog
	l.Close()
	select {
	case err := <-dialed:
		if err == nil {
			t.Fatal("dial against a closed listener succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked dial not released by listener close")
	}
}

func TestDialUnknownAddress(t *testing.T) {
	n := NewNetwork()
	if _, err := n.Dial("ghost"); err == nil {
		t.Fatal("dial to unregistered address succeeded")
	}
}

func TestListenTwiceFails(t *testing.T) {
	n := NewNetwork()
	if _, err := n.Listen("dup"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("dup"); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
}

func TestListenerCloseUnregisters(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("temp")
	l.Close()
	if _, err := n.Dial("temp"); err == nil {
		t.Fatal("dial to closed listener succeeded")
	}
	// Address is reusable after close.
	if _, err := n.Listen("temp"); err != nil {
		t.Fatal(err)
	}
}

func TestServerCloseRightAfterDialDoesNotHang(t *testing.T) {
	// Regression: a connection still queued in the listener's accept
	// backlog at Close time used to be accepted after Close swept
	// s.conns, leaving an unclosed serveConn that deadlocked Close.
	for i := 0; i < 50; i++ {
		n := NewNetwork()
		l, err := n.Listen("node0")
		if err != nil {
			t.Fatal(err)
		}
		srv := Serve(l, echoHandler)
		conn, err := n.Dial("node0")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			srv.Close()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("server Close hung")
		}
		conn.Close()
	}
}

func TestCallAfterServerClose(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("srv")
	srv := Serve(l, echoHandler)
	conn, _ := n.Dial("srv")
	cli := NewClient(conn)
	defer cli.Close()
	if _, err := cli.Call([]byte("warm")); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := cli.Call([]byte("after-close")); err == nil {
		t.Fatal("call succeeded after server close")
	}
}

func TestClientCloseFailsPending(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("srv")
	srv := Serve(l, func(p []byte) []byte {
		time.Sleep(200 * time.Millisecond)
		return p
	})
	defer srv.Close()
	conn, _ := n.Dial("srv")
	cli := NewClient(conn)
	ch, err := cli.Go([]byte("pending"))
	if err != nil {
		t.Fatal(err)
	}
	go cli.Close()
	select {
	case _, ok := <-ch:
		if ok {
			// The response may have raced the close; both outcomes are
			// acceptable, but a closed channel must not hang.
			return
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending call hung after close")
	}
}

func TestNetworkLatencyApplied(t *testing.T) {
	n := NewNetwork()
	n.Latency = 30 * time.Millisecond
	l, _ := n.Listen("srv")
	srv := Serve(l, echoHandler)
	defer srv.Close()
	conn, _ := n.Dial("srv")
	cli := NewClient(conn)
	defer cli.Close()

	start := time.Now()
	if _, err := cli.Call([]byte("x")); err != nil {
		t.Fatal(err)
	}
	// Request and response each cross the fabric once.
	if took := time.Since(start); took < 55*time.Millisecond {
		t.Fatalf("call took %v, latency not applied", took)
	}
}

func TestTCPFrameSizeLimit(t *testing.T) {
	l, _ := ListenTCP("127.0.0.1:0", 0)
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		// Handcraft an oversized frame header.
		raw := conn.(*tcpConn).c
		hdr := make([]byte, 12)
		hdr[0] = 0xFF
		hdr[1] = 0xFF
		hdr[2] = 0xFF
		hdr[3] = 0xFF
		raw.Write(hdr)
	}()
	conn, err := DialTCP(l.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Recv(); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func BenchmarkInProcessCall(b *testing.B) {
	n := NewNetwork()
	l, _ := n.Listen("srv")
	srv := Serve(l, func(p []byte) []byte { return p })
	defer srv.Close()
	conn, _ := n.Dial("srv")
	cli := NewClient(conn)
	defer cli.Close()
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Call(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCPCall(b *testing.B) {
	l, _ := ListenTCP("127.0.0.1:0", 0)
	srv := Serve(l, func(p []byte) []byte { return p })
	defer srv.Close()
	conn, err := DialTCP(l.Addr(), 0)
	if err != nil {
		b.Fatal(err)
	}
	cli := NewClient(conn)
	defer cli.Close()
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Call(payload); err != nil {
			b.Fatal(err)
		}
	}
}
