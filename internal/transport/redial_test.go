package transport

import (
	"errors"
	"testing"
	"time"
)

// echoServe starts an echo server at addr on the fabric.
func echoServe(t *testing.T, net *Network, addr string) *Server {
	t.Helper()
	l, err := net.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	return Serve(l, func(p []byte) []byte { return append([]byte("ok:"), p...) })
}

func TestRedialerReconnectsAfterPeerBounce(t *testing.T) {
	fabric := NewNetwork()
	srv := echoServe(t, fabric, "peer")
	r := NewRedialer(func() (*Client, error) {
		c, err := fabric.Dial("peer")
		if err != nil {
			return nil, err
		}
		return NewClient(c), nil
	})
	defer r.Close()

	if resp, err := r.Call([]byte("a")); err != nil || string(resp) != "ok:a" {
		t.Fatalf("first call: %q, %v", resp, err)
	}

	// Bounce the peer: the in-flight connection breaks, the next call
	// fails, and subsequent calls inside the backoff window fail fast.
	srv.Close()
	if _, err := r.Call([]byte("b")); err == nil {
		t.Fatal("call to downed peer succeeded")
	}
	if _, err := r.Call([]byte("c")); !errors.Is(err, ErrBackoff) {
		t.Fatalf("call inside backoff window: %v, want ErrBackoff", err)
	}

	srv = echoServe(t, fabric, "peer")
	defer srv.Close()

	// After the backoff window elapses the redialer reconnects.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := r.Call([]byte("d"))
		if err == nil {
			if string(resp) != "ok:d" {
				t.Fatalf("post-bounce call: %q", resp)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("redial never succeeded: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	dials, redials := r.Stats()
	if dials != 2 || redials != 1 {
		t.Fatalf("stats: dials=%d redials=%d, want 2/1", dials, redials)
	}
}

func TestRedialerBackoffGrowsAndCaps(t *testing.T) {
	r := NewRedialer(nil)
	r.fails = 1
	if got := r.backoff(); got != redialBase {
		t.Fatalf("backoff after 1 failure: %v, want %v", got, redialBase)
	}
	r.fails = 3
	if got := r.backoff(); got != 4*redialBase {
		t.Fatalf("backoff after 3 failures: %v, want %v", got, 4*redialBase)
	}
	r.fails = 100
	if got := r.backoff(); got != redialMax {
		t.Fatalf("backoff after 100 failures: %v, want cap %v", got, redialMax)
	}
}

func TestRedialerCallTimeoutDropsHungPeer(t *testing.T) {
	fabric := NewNetwork()
	l, err := fabric.Listen("hung")
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	srv := Serve(l, func(p []byte) []byte { <-block; return p })
	// LIFO: unblock the handler before Server.Close waits for it.
	defer srv.Close()
	defer close(block)

	r := NewRedialer(func() (*Client, error) {
		c, err := fabric.Dial("hung")
		if err != nil {
			return nil, err
		}
		return NewClient(c), nil
	})
	defer r.Close()

	start := time.Now()
	if _, err := r.CallTimeout([]byte("x"), 50*time.Millisecond); err == nil {
		t.Fatal("call to hung peer returned")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
	// The hung connection was discarded: the redialer is in backoff.
	if _, err := r.Call([]byte("y")); !errors.Is(err, ErrBackoff) {
		t.Fatalf("after timeout: %v, want ErrBackoff", err)
	}
}

func TestRedialerFailFastWhileDialFails(t *testing.T) {
	fabric := NewNetwork() // no listener at all
	r := NewRedialer(func() (*Client, error) {
		c, err := fabric.Dial("nobody")
		if err != nil {
			return nil, err
		}
		return NewClient(c), nil
	})
	defer r.Close()

	if _, err := r.Call(nil); err == nil {
		t.Fatal("dial to missing peer succeeded")
	}
	// Immediately after a failed dial the window is open: fail fast.
	if _, err := r.Call(nil); !errors.Is(err, ErrBackoff) {
		t.Fatalf("second call: %v, want ErrBackoff", err)
	}
	if dials, _ := r.Stats(); dials != 0 {
		t.Fatalf("dials=%d after failures, want 0", dials)
	}
}
