package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Handler processes one request payload and returns the response
// payload. Handlers run concurrently.
type Handler func(payload []byte) []byte

// Server accepts connections from a Listener and dispatches every
// inbound frame to the handler, writing the response back under the same
// correlation id.
type Server struct {
	l       Listener
	handler Handler
	wg      sync.WaitGroup
	mu      sync.Mutex
	conns   []Conn
	closed  atomic.Bool
}

// Serve starts accepting in the background and returns immediately.
func Serve(l Listener, handler Handler) *Server {
	s := &Server{l: l, handler: handler}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed.Load() {
				// Close already swept s.conns; a connection that was
				// queued in the listener's backlog would otherwise leak
				// an unclosed serveConn and deadlock Close's Wait.
				s.mu.Unlock()
				conn.Close()
				continue
			}
			s.conns = append(s.conns, conn)
			s.mu.Unlock()
			s.wg.Add(1)
			go s.serveConn(conn)
		}
	}()
	return s
}

// serveWorkers bounds the persistent per-connection handler pool;
// serveQueue is its inbound frame buffer. Requests beyond both spill
// to one-shot goroutines, so no pattern of blocking handlers can
// deadlock a connection — the pool is a fast path, never a limit.
const (
	serveWorkers = 32
	serveQueue   = 128
)

func (s *Server) serveConn(conn Conn) {
	defer s.wg.Done()
	var writeMu sync.Mutex
	var inflight sync.WaitGroup
	handle := func(f Frame) {
		resp := s.handler(f.Payload)
		writeMu.Lock()
		defer writeMu.Unlock()
		// Send error only matters for liveness; the reader loop
		// will observe the broken connection.
		_ = conn.Send(Frame{Corr: f.Corr, Payload: resp})
	}
	// Handlers run on a pool of persistent workers grown one at a time
	// as concurrency demands: a goroutine per request pays goroutine
	// start + cold-stack growth on every RPC (measured ~25% of a
	// saturated in-process cluster's CPU in the runtime's stack and
	// scheduling machinery); a warm worker pays neither. Sequential
	// traffic stays on one worker; pipelined bursts grow the pool up
	// to serveWorkers.
	frames := make(chan Frame, serveQueue)
	workers := 0
	for {
		f, err := conn.Recv()
		if err != nil {
			break
		}
		if workers > 0 {
			select {
			case frames <- f:
				continue
			default: // every worker busy and the queue is full
			}
		}
		if workers < serveWorkers {
			workers++
			inflight.Add(1)
			go func() {
				defer inflight.Done()
				for f := range frames {
					handle(f)
				}
			}()
			frames <- f
			continue
		}
		// Saturated pool: fall back to the one-goroutine-per-request
		// model for the overflow so a handler that blocks on another
		// in-flight request can never wedge the connection.
		inflight.Add(1)
		go func(f Frame) {
			defer inflight.Done()
			handle(f)
		}(f)
	}
	close(frames)
	inflight.Wait()
}

// Close stops accepting and closes every open connection.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.l.Close()
	s.mu.Lock()
	for _, c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Client pipelines requests over one connection, matching responses by
// correlation id. Safe for concurrent use.
type Client struct {
	conn     Conn
	mu       sync.Mutex
	pending  map[uint64]chan []byte
	nextCorr uint64
	closed   bool
	readErr  error
	done     chan struct{}
}

// NewClient wraps a connection and starts its response dispatcher.
func NewClient(conn Conn) *Client {
	c := &Client{conn: conn, pending: make(map[uint64]chan []byte), done: make(chan struct{})}
	go c.readLoop()
	return c
}

func (c *Client) readLoop() {
	for {
		f, err := c.conn.Recv()
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for corr, ch := range c.pending {
				close(ch)
				delete(c.pending, corr)
			}
			c.mu.Unlock()
			close(c.done)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[f.Corr]
		if ok {
			delete(c.pending, f.Corr)
		}
		c.mu.Unlock()
		if ok {
			ch <- f.Payload
		}
	}
}

// Go issues a request asynchronously; the returned channel yields the
// response payload, or is closed on connection failure.
func (c *Client) Go(payload []byte) (<-chan []byte, error) {
	ch := make(chan []byte, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, err
	}
	c.nextCorr++
	corr := c.nextCorr
	c.pending[corr] = ch
	c.mu.Unlock()

	if err := c.conn.Send(Frame{Corr: corr, Payload: payload}); err != nil {
		c.mu.Lock()
		delete(c.pending, corr)
		c.mu.Unlock()
		return nil, err
	}
	return ch, nil
}

// Call issues a request and blocks for its response.
func (c *Client) Call(payload []byte) ([]byte, error) {
	ch, err := c.Go(payload)
	if err != nil {
		return nil, err
	}
	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, fmt.Errorf("transport: call failed: %w", err)
	}
	return resp, nil
}

// Close tears the connection down; in-flight calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done
	return err
}
