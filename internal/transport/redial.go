package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Caller issues one request and blocks for its response. Both Client
// and Redialer implement it, so code that forwards or probes can hold
// either a raw pipelined connection or a self-healing one.
type Caller interface {
	Call(payload []byte) ([]byte, error)
}

// Redialer backoff bounds: the first redial after a broken connection
// waits redialBase; each consecutive failure doubles the wait up to
// redialMax. Calls arriving inside the wait window fail fast with
// ErrBackoff instead of hammering a dead peer.
const (
	redialBase = 50 * time.Millisecond
	redialMax  = 2 * time.Second
)

// ErrBackoff reports a call rejected because the peer's connection is
// broken and the capped-exponential redial window has not elapsed yet.
var ErrBackoff = fmt.Errorf("transport: peer in redial backoff")

// Redialer wraps a dial function into a self-healing Caller: the first
// Call dials lazily, a broken connection is closed and re-dialed on the
// next Call after a capped exponential backoff, and consecutive dial
// failures stretch the window. A bounced peer process is therefore
// redialed instead of permanently failed over. Safe for concurrent use;
// calls in flight on a connection that breaks fail and do not retry —
// retry policy belongs to the caller (the cluster client's failover
// loop, the prober's next tick).
type Redialer struct {
	dial func() (*Client, error)

	mu    sync.Mutex
	cur   *Client
	fails int       // consecutive dial-or-call failures since last success
	next  time.Time // earliest moment the next dial may run

	dials   atomic.Uint64
	redials atomic.Uint64
	closed  bool
}

// NewRedialer wraps dial. Nothing is dialed until the first Call.
func NewRedialer(dial func() (*Client, error)) *Redialer {
	return &Redialer{dial: dial}
}

// conn returns the live connection, dialing if needed.
func (r *Redialer) conn() (*Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	if r.cur != nil {
		return r.cur, nil
	}
	if !r.next.IsZero() && time.Now().Before(r.next) {
		return nil, ErrBackoff
	}
	c, err := r.dial()
	if err != nil {
		r.fails++
		r.next = time.Now().Add(r.backoff())
		return nil, err
	}
	if r.dials.Add(1) > 1 {
		r.redials.Add(1)
	}
	r.cur = c
	return c, nil
}

// backoff computes the wait for the current consecutive-failure count.
// Called with r.mu held.
func (r *Redialer) backoff() time.Duration {
	d := redialBase
	for i := 1; i < r.fails && d < redialMax; i++ {
		d *= 2
	}
	if d > redialMax {
		d = redialMax
	}
	return d
}

// dropBroken discards a connection that failed, starting the backoff
// clock. The identity check keeps a concurrent call that failed on the
// same connection from double-counting, and a call that failed on an
// already-replaced connection from discarding the healthy replacement.
func (r *Redialer) dropBroken(c *Client) {
	r.mu.Lock()
	if r.cur == c {
		r.cur = nil
		r.fails++
		r.next = time.Now().Add(r.backoff())
	}
	r.mu.Unlock()
	c.Close()
}

// noteSuccess resets the failure streak after a completed call.
func (r *Redialer) noteSuccess(c *Client) {
	r.mu.Lock()
	if r.cur == c {
		r.fails = 0
		r.next = time.Time{}
	}
	r.mu.Unlock()
}

// Call implements Caller: dial if needed, issue, and on failure mark
// the connection broken so the next call re-dials after backoff.
func (r *Redialer) Call(payload []byte) ([]byte, error) {
	c, err := r.conn()
	if err != nil {
		return nil, err
	}
	resp, err := c.Call(payload)
	if err != nil {
		r.dropBroken(c)
		return nil, err
	}
	r.noteSuccess(c)
	return resp, nil
}

// CallTimeout is Call with a response deadline. On timeout the
// connection is discarded — a frame may still be in flight on it, and
// reusing the stream would mis-correlate nothing (correlation ids are
// per-connection) but would leak the pending slot — so the peer is
// treated exactly like a broken connection. Probers use this so a hung
// peer cannot wedge the probe loop.
func (r *Redialer) CallTimeout(payload []byte, d time.Duration) ([]byte, error) {
	c, err := r.conn()
	if err != nil {
		return nil, err
	}
	ch, err := c.Go(payload)
	if err != nil {
		r.dropBroken(c)
		return nil, err
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case resp, ok := <-ch:
		if !ok {
			r.dropBroken(c)
			return nil, fmt.Errorf("transport: call failed: connection broken")
		}
		r.noteSuccess(c)
		return resp, nil
	case <-t.C:
		r.dropBroken(c)
		return nil, fmt.Errorf("transport: call timed out after %v", d)
	}
}

// Stats returns the cumulative dial and redial counts. Dials counts
// every successful connection establishment; redials is the subset
// that replaced a broken one (dials - 1 once connected, monotone).
func (r *Redialer) Stats() (dials, redials uint64) {
	return r.dials.Load(), r.redials.Load()
}

// Close discards the current connection and rejects future calls.
func (r *Redialer) Close() error {
	r.mu.Lock()
	c := r.cur
	r.cur = nil
	r.closed = true
	r.mu.Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}
