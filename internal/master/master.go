// Package master reproduces the paper's Section V prototype on the
// discrete-event simulator: a master that knows every key up front
// issues one aggregation request per key to the key's node; each node
// serves requests from a FIFO queue through a bounded-parallelism
// database whose service times come from the calibrated model
// (Formulas 6-7); responses flow back to the single-threaded master.
//
// Because time is virtual, a 16-node (or 128-node) scaling sweep runs in
// milliseconds on any machine while preserving exactly the phenomena the
// paper measures: workload imbalance across nodes, queueing at the
// database, the master's serialization cost, and the idle "white spots"
// when the master cannot feed the cluster fast enough.
package master

import (
	"math"
	"math/rand"
	"time"

	"scalekv/internal/core"
	"scalekv/internal/sim"
	"scalekv/internal/stages"
)

// Calibration holds the per-component service times the simulation runs
// on. The defaults mirror the paper's measured stack.
type Calibration struct {
	// DB is the database latency/parallelism model (Formulas 6-7).
	DB core.DBModel
	// MsgSendMs is the master's CPU cost to serialize and send one
	// request (the paper: 0.150 slow, 0.019 optimized).
	MsgSendMs float64
	// MsgRecvMs is the master's CPU cost to process one response.
	MsgRecvMs float64
	// NetOneWayMs is the one-way network latency per message.
	NetOneWayMs float64
	// NoiseSigma is the lognormal service-time noise the paper observed
	// ("considerable variance in all our tests"); 0 disables noise.
	NoiseSigma float64
}

// PaperCalibration returns the paper's measured constants; fastMaster
// selects the optimized (Kryo) master versus the original one.
func PaperCalibration(fastMaster bool) Calibration {
	c := Calibration{
		DB:          core.PaperDBModel(),
		NetOneWayMs: 0.05, // intra-cluster GbE hop
		NoiseSigma:  0.15,
	}
	if fastMaster {
		c.MsgSendMs = core.PaperFastMsgMs
	} else {
		c.MsgSendMs = core.PaperSlowMsgMs
	}
	// Response deserialization ran on the driver's IO threads in the
	// paper's Akka stack; the master actor only pays a small aggregation
	// step per response, so the send cost dominates (Figure 4's fine
	// profile: total ≈ send phase).
	c.MsgRecvMs = c.MsgSendMs / 10
	return c
}

// Config describes one simulated query execution.
type Config struct {
	// Nodes is the cluster size.
	Nodes int
	// Keys is the number of partitions the query touches.
	Keys int
	// RowSize is the number of elements per partition.
	RowSize int
	// DBParallelism is each node's concurrent-request limit (the
	// paper's driver used up to 32); 0 means 16.
	DBParallelism int
	// Calib supplies component costs; the zero value is replaced by
	// PaperCalibration(true).
	Calib Calibration
	// Seed drives key placement and service noise.
	Seed int64
	// Assignment optionally overrides placement: Assignment[i] is the
	// node of key i. Nil means uniform random placement (the paper's
	// DHT model).
	Assignment []int
	// Placement selects the allocation policy when Assignment is nil.
	Placement Placement
}

// Placement is the key-to-node allocation policy — the Section VIII
// design axis.
type Placement int

// Placement policies.
const (
	// PlacementSingleChoice is plain DHT hashing: one uniform random
	// node per key (Formula 1 imbalance).
	PlacementSingleChoice Placement = iota
	// PlacementTwoChoice is Mitzenmacher's power of two choices: the
	// less-loaded of two random nodes, reducing the overload to
	// O(log log n). It requires the placer to know per-node load.
	PlacementTwoChoice
)

// Result collects everything the figures read off one run.
type Result struct {
	// Total is the virtual time until the master processed the last
	// response.
	Total time.Duration
	// SendComplete is when the master finished issuing requests —
	// Figure 4's master-to-slaves horizon.
	SendComplete time.Duration
	// OpsPerNode counts requests per node (Figure 2 top chart).
	OpsPerNode map[int]int
	// NodeFinish is each node's last database completion (Figure 2:
	// "the slowest node dictates the overall time").
	NodeFinish map[int]time.Duration
	// Trace holds per-request stage spans (Figures 2 and 4).
	Trace *stages.Trace
	// MaxQueueDepth is the deepest any node's request queue got.
	MaxQueueDepth int
	// DBIdle is per-node idle time in the database stage over the
	// query's duration — the "white spots" of Figure 4.
	DBIdle map[int]time.Duration
}

// Imbalance returns (maxOps - meanOps) / meanOps, the measured
// counterpart of Formula 1.
func (r *Result) Imbalance() float64 {
	if len(r.OpsPerNode) == 0 {
		return 0
	}
	total, max := 0, 0
	for _, n := range r.OpsPerNode {
		total += n
		if n > max {
			max = n
		}
	}
	mean := float64(total) / float64(len(r.OpsPerNode))
	if mean == 0 {
		return 0
	}
	return (float64(max) - mean) / mean
}

// BalancedEstimate applies the paper's Figure 1 method: the time the
// query would have taken had the observed load been spread uniformly,
// obtained by deflating the observed time by the measured imbalance.
func (r *Result) BalancedEstimate() time.Duration {
	imb := r.Imbalance()
	return time.Duration(float64(r.Total) / (1 + imb))
}

type request struct {
	id        uint64
	node      int
	rowSize   int
	sentAt    time.Duration // master began serializing
	enqueued  time.Duration // arrived in the node queue
	dbStart   time.Duration
	dbEnd     time.Duration
	completed time.Duration
}

func msDur(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}

// Run executes one simulated query and returns its measurements.
func Run(cfg Config) *Result {
	if cfg.Nodes < 1 {
		cfg.Nodes = 1
	}
	if cfg.Keys < 1 {
		cfg.Keys = 1
	}
	if cfg.DBParallelism <= 0 {
		cfg.DBParallelism = 16
	}
	if cfg.Calib.DB.Break == 0 && cfg.Calib.MsgSendMs == 0 {
		cfg.Calib = PaperCalibration(true)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	assign := cfg.Assignment
	if assign == nil {
		assign = make([]int, cfg.Keys)
		switch cfg.Placement {
		case PlacementTwoChoice:
			load := make([]int, cfg.Nodes)
			for i := range assign {
				a, b := rng.Intn(cfg.Nodes), rng.Intn(cfg.Nodes)
				if load[b] < load[a] {
					a = b
				}
				assign[i] = a
				load[a]++
			}
		default: // single choice
			for i := range assign {
				assign[i] = rng.Intn(cfg.Nodes)
			}
		}
	}

	s := sim.New()
	trace := stages.NewTrace()
	res := &Result{
		OpsPerNode: make(map[int]int),
		NodeFinish: make(map[int]time.Duration),
		Trace:      trace,
		DBIdle:     make(map[int]time.Duration),
	}

	nodeQueues := make([]*sim.Queue, cfg.Nodes)
	for i := range nodeQueues {
		nodeQueues[i] = s.NewQueue("node")
	}
	respQueue := s.NewQueue("responses")

	// Per-node busy-worker counters drive the concurrency-dependent
	// interference factor.
	active := make([]int, cfg.Nodes)

	// Pre-draw service noise so placement and noise are independent of
	// scheduling order (determinism across runs is by construction; this
	// keeps it stable under refactors too).
	noise := make([]float64, cfg.Keys)
	for i := range noise {
		if cfg.Calib.NoiseSigma > 0 {
			sigma := cfg.Calib.NoiseSigma
			noise[i] = math.Exp(sigma*rng.NormFloat64() - sigma*sigma/2)
		} else {
			noise[i] = 1
		}
	}

	// Slave workers: DBParallelism per node.
	for n := 0; n < cfg.Nodes; n++ {
		n := n
		for w := 0; w < cfg.DBParallelism; w++ {
			s.Spawn("worker", func(p *sim.Proc) {
				for {
					req := p.Get(nodeQueues[n]).(*request)
					req.dbStart = p.Now()
					trace.Record(req.id, n, stages.InQueue, req.enqueued, req.dbStart)

					// Interference: with c busy workers the node's
					// aggregate speed-up is capped by Formula 7, so each
					// request stretches by c/min(speedup, c).
					active[n]++
					c := float64(active[n])
					base := cfg.Calib.DB.QueryTimeMs(float64(req.rowSize))
					gain := math.Min(cfg.Calib.DB.Speedup(float64(req.rowSize)), c)
					service := base * c / gain * noise[req.id]
					p.Sleep(msDur(service))
					active[n]--

					req.dbEnd = p.Now()
					trace.Record(req.id, n, stages.InDB, req.dbStart, req.dbEnd)
					if req.dbEnd > res.NodeFinish[n] {
						res.NodeFinish[n] = req.dbEnd
					}
					res.OpsPerNode[n]++
					// Response travels back over the network.
					r := req
					s.At(msDur(cfg.Calib.NetOneWayMs), func() { respQueue.Put(r) })
				}
			})
		}
	}

	// The master: sequential send loop, then sequential collect loop —
	// the single-threaded actor of the paper's prototype.
	s.Spawn("master", func(p *sim.Proc) {
		for i := 0; i < cfg.Keys; i++ {
			req := &request{id: uint64(i), node: assign[i], rowSize: cfg.RowSize, sentAt: p.Now()}
			p.Sleep(msDur(cfg.Calib.MsgSendMs)) // serialize + send CPU
			r := req
			s.At(msDur(cfg.Calib.NetOneWayMs), func() {
				r.enqueued = s.Now()
				trace.Record(r.id, r.node, stages.MasterToSlave, r.sentAt, r.enqueued)
				nodeQueues[r.node].Put(r)
			})
		}
		res.SendComplete = p.Now()
		for i := 0; i < cfg.Keys; i++ {
			req := p.Get(respQueue).(*request)
			p.Sleep(msDur(cfg.Calib.MsgRecvMs))
			req.completed = p.Now()
			trace.Record(req.id, req.node, stages.SlaveToMaster, req.dbEnd, req.completed)
		}
		res.Total = p.Now()
	})

	s.Run()

	for _, q := range nodeQueues {
		if q.MaxDepth > res.MaxQueueDepth {
			res.MaxQueueDepth = q.MaxDepth
		}
	}
	for n := 0; n < cfg.Nodes; n++ {
		res.DBIdle[n] = trace.IdleTime(n, stages.InDB, res.Total)
	}
	return res
}

// RunScaling executes the same workload on each cluster size and
// returns the results in order — the sweep behind Figures 1 and 5.
func RunScaling(nodes []int, keys, rowSize int, calib Calibration, seed int64) []*Result {
	out := make([]*Result, len(nodes))
	for i, n := range nodes {
		out[i] = Run(Config{
			Nodes:   n,
			Keys:    keys,
			RowSize: rowSize,
			Calib:   calib,
			Seed:    seed + int64(i)*7919,
		})
	}
	return out
}
