package master

import (
	"testing"
	"time"

	"scalekv/internal/stages"
)

// The paper's three data models over one million elements.
const (
	coarseKeys, coarseRow = 100, 10000
	mediumKeys, mediumRow = 1000, 1000
	fineKeys, fineRow     = 10000, 100
)

func TestDeterminism(t *testing.T) {
	cfg := Config{Nodes: 8, Keys: 500, RowSize: 200, Seed: 42}
	a := Run(cfg)
	b := Run(cfg)
	if a.Total != b.Total || a.SendComplete != b.SendComplete {
		t.Fatalf("nondeterministic: %v/%v vs %v/%v", a.Total, a.SendComplete, b.Total, b.SendComplete)
	}
	if a.Imbalance() != b.Imbalance() {
		t.Fatal("nondeterministic imbalance")
	}
}

func TestAllRequestsServed(t *testing.T) {
	res := Run(Config{Nodes: 4, Keys: 200, RowSize: 100, Seed: 1})
	total := 0
	for _, n := range res.OpsPerNode {
		total += n
	}
	if total != 200 {
		t.Fatalf("served %d want 200", total)
	}
	// Four stage spans per request.
	if res.Trace.Len() != 4*200 {
		t.Fatalf("trace %d spans want %d", res.Trace.Len(), 800)
	}
}

func TestExplicitAssignmentRespected(t *testing.T) {
	assign := make([]int, 30)
	for i := range assign {
		assign[i] = i % 3
	}
	res := Run(Config{Nodes: 3, Keys: 30, RowSize: 10, Assignment: assign, Seed: 5})
	for n := 0; n < 3; n++ {
		if res.OpsPerNode[n] != 10 {
			t.Fatalf("node %d served %d want 10", n, res.OpsPerNode[n])
		}
	}
	if res.Imbalance() != 0 {
		t.Fatalf("uniform assignment has imbalance %.3f", res.Imbalance())
	}
}

func TestSlowestNodeDictatesTotal(t *testing.T) {
	// Figure 2's reading: the node with the most requests finishes last
	// and dictates the query time.
	res := Run(Config{Nodes: 16, Keys: 100, RowSize: coarseRow, Seed: 7,
		Calib: PaperCalibration(true)})
	maxOpsNode, maxOps := -1, -1
	for n, ops := range res.OpsPerNode {
		if ops > maxOps {
			maxOps, maxOpsNode = ops, n
		}
	}
	var lastFinish time.Duration
	lastNode := -1
	for n, f := range res.NodeFinish {
		if f > lastFinish {
			lastFinish, lastNode = f, n
		}
	}
	// The two usually coincide; with service noise they can differ by
	// one, so accept the last node being within one op of the max.
	if res.OpsPerNode[lastNode] < maxOps-1 {
		t.Fatalf("last node %d served %d, max-ops node %d served %d — no correlation",
			lastNode, res.OpsPerNode[lastNode], maxOpsNode, maxOps)
	}
	// Total must be at least the last node's finish.
	if res.Total < lastFinish {
		t.Fatalf("total %v before last DB finish %v", res.Total, lastFinish)
	}
}

func TestCoarseImbalanceNearFormula(t *testing.T) {
	// 100 keys on 16 nodes: Formula 5 predicts ~10.4 on the most loaded
	// node, i.e. imbalance ~66%. Individual seeds vary widely (that is
	// Figure 3's point), so average over seeds.
	var sum float64
	const trials = 30
	for seed := int64(0); seed < trials; seed++ {
		res := Run(Config{Nodes: 16, Keys: 100, RowSize: 10, Seed: seed})
		sum += res.Imbalance()
	}
	mean := sum / trials
	if mean < 0.30 || mean > 1.0 {
		t.Fatalf("mean imbalance %.2f, Formula 1 predicts ~0.66", mean)
	}
}

// Figure 1: with the slow master, fine-grained stops scaling (the
// master cannot feed 16 nodes), while coarse suffers imbalance.
func TestFigure1ShapeSlowMaster(t *testing.T) {
	calib := PaperCalibration(false)
	overhead := func(keys, rowSize int) float64 {
		one := Run(Config{Nodes: 1, Keys: keys, RowSize: rowSize, Calib: calib, Seed: 3})
		sixteen := Run(Config{Nodes: 16, Keys: keys, RowSize: rowSize, Calib: calib, Seed: 3})
		ideal := one.Total / 16
		return float64(sixteen.Total-ideal) / float64(ideal)
	}
	coarse := overhead(coarseKeys, coarseRow)
	medium := overhead(mediumKeys, mediumRow)
	fine := overhead(fineKeys, fineRow)
	// Paper's ordering at 16 nodes: medium (62%) < coarse (108%) <
	// fine (180%).
	if !(medium < coarse && coarse < fine) {
		t.Fatalf("overhead ordering wrong: medium=%.0f%% coarse=%.0f%% fine=%.0f%%",
			medium*100, coarse*100, fine*100)
	}
	if fine < 1.0 {
		t.Fatalf("fine-grained overhead %.0f%% too small — master bottleneck missing", fine*100)
	}
}

// Figure 5: the optimized master restores fine-grained scalability and
// makes it the fastest model on 4+ nodes.
func TestFigure5ShapeFastMaster(t *testing.T) {
	calib := PaperCalibration(true)
	run := func(keys, rowSize, nodes int) time.Duration {
		return Run(Config{Nodes: nodes, Keys: keys, RowSize: rowSize, Calib: calib, Seed: 3}).Total
	}
	for _, nodes := range []int{4, 8, 16} {
		fine := run(fineKeys, fineRow, nodes)
		medium := run(mediumKeys, mediumRow, nodes)
		coarse := run(coarseKeys, coarseRow, nodes)
		if !(fine < medium && fine < coarse) {
			t.Fatalf("at %d nodes fine (%v) must beat medium (%v) and coarse (%v)",
				nodes, fine, medium, coarse)
		}
	}
	// Near-linear scaling for fine-grained with the fast master.
	one := run(fineKeys, fineRow, 1)
	sixteen := run(fineKeys, fineRow, 16)
	overhead := float64(sixteen-one/16) / float64(one/16)
	if overhead > 0.8 {
		t.Fatalf("fine-grained overhead %.0f%% with fast master, want near-linear", overhead*100)
	}
}

// Figure 4, upper pattern: fine-grained with the slow master leaves the
// database starved — requests spend no time in queue and the master's
// send phase spans almost the whole query.
func TestFigure4FineGrainedMasterBound(t *testing.T) {
	res := Run(Config{Nodes: 16, Keys: fineKeys, RowSize: fineRow,
		Calib: PaperCalibration(false), Seed: 11})
	if float64(res.SendComplete) < 0.8*float64(res.Total) {
		t.Fatalf("send phase %v vs total %v — master not the bottleneck", res.SendComplete, res.Total)
	}
	// Queues stay shallow: the DB outruns the master.
	if res.MaxQueueDepth > fineKeys/10 {
		t.Fatalf("queue depth %d too deep for a starved database", res.MaxQueueDepth)
	}
	// In-queue time is negligible next to in-DB time.
	inQueue := res.Trace.StageTotal(stages.InQueue)
	inDB := res.Trace.StageTotal(stages.InDB)
	if inQueue > inDB/4 {
		t.Fatalf("in-queue %v vs in-db %v — expected an empty queue stage", inQueue, inDB)
	}
}

// Figure 4, lower pattern: medium-grained with the slow master congests
// the database — requests wait in queue.
func TestFigure4MediumGrainedDBBound(t *testing.T) {
	res := Run(Config{Nodes: 16, Keys: mediumKeys, RowSize: mediumRow,
		Calib: PaperCalibration(false), Seed: 11})
	// The master finishes sending well before the query completes.
	if float64(res.SendComplete) > 0.6*float64(res.Total) {
		t.Fatalf("send phase %v vs total %v — master unexpectedly slow", res.SendComplete, res.Total)
	}
	// Significant queueing: Cassandra is "not fast enough to satisfy
	// all of the requests as quickly as they arrive".
	inQueue := res.Trace.StageTotal(stages.InQueue)
	if inQueue == 0 {
		t.Fatal("no in-queue time despite a congested database")
	}
	if res.MaxQueueDepth < 5 {
		t.Fatalf("queue depth %d, expected congestion", res.MaxQueueDepth)
	}
}

// Master optimization effect (Section V-B): the send phase shrinks by
// almost an order of magnitude.
func TestSerializationOptimizationEffect(t *testing.T) {
	slow := Run(Config{Nodes: 16, Keys: fineKeys, RowSize: fineRow,
		Calib: PaperCalibration(false), Seed: 2})
	fast := Run(Config{Nodes: 16, Keys: fineKeys, RowSize: fineRow,
		Calib: PaperCalibration(true), Seed: 2})
	ratio := float64(slow.SendComplete) / float64(fast.SendComplete)
	if ratio < 5 || ratio > 12 {
		t.Fatalf("send-phase ratio %.1fx, paper measured ~7.8x (1.5s -> 192ms)", ratio)
	}
	// Absolute paper numbers: ~1.5s and ~192ms for 10k messages.
	if slow.SendComplete < 1200*time.Millisecond || slow.SendComplete > 1800*time.Millisecond {
		t.Fatalf("slow send %v want ~1.5s", slow.SendComplete)
	}
	if fast.SendComplete < 150*time.Millisecond || fast.SendComplete > 250*time.Millisecond {
		t.Fatalf("fast send %v want ~192ms", fast.SendComplete)
	}
	if fast.Total >= slow.Total {
		t.Fatal("optimization did not improve total time")
	}
}

// Two-choice placement must cut the imbalance well below single-choice
// (Mitzenmacher; the paper's Section VIII alternative).
func TestTwoChoicePlacementBalances(t *testing.T) {
	var single, double float64
	const trials = 20
	for seed := int64(0); seed < trials; seed++ {
		s := Run(Config{Nodes: 16, Keys: 100, RowSize: 10, Seed: seed})
		d := Run(Config{Nodes: 16, Keys: 100, RowSize: 10, Seed: seed,
			Placement: PlacementTwoChoice})
		single += s.Imbalance()
		double += d.Imbalance()
	}
	if double >= single/2 {
		t.Fatalf("two-choice mean imbalance %.2f not well below single-choice %.2f",
			double/trials, single/trials)
	}
}

func TestBalancedEstimate(t *testing.T) {
	res := Run(Config{Nodes: 16, Keys: 100, RowSize: coarseRow, Seed: 9})
	if res.BalancedEstimate() > res.Total {
		t.Fatal("balanced estimate above observed total")
	}
	if res.Imbalance() < 0 {
		t.Fatal("negative imbalance")
	}
}

func TestRunScaling(t *testing.T) {
	results := RunScaling([]int{1, 2, 4}, 400, 100, PaperCalibration(true), 1)
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	if results[2].Total >= results[0].Total {
		t.Fatalf("no scaling: 1 node %v vs 4 nodes %v", results[0].Total, results[2].Total)
	}
}

func TestDegenerateConfig(t *testing.T) {
	res := Run(Config{}) // everything clamps to minimum
	if res.Total <= 0 {
		t.Fatal("empty config must still run one key on one node")
	}
}

func TestDBIdleTracked(t *testing.T) {
	res := Run(Config{Nodes: 4, Keys: 2000, RowSize: 50,
		Calib: PaperCalibration(false), Seed: 13})
	// A master-bound run must show database idle gaps.
	idle := time.Duration(0)
	for _, d := range res.DBIdle {
		idle += d
	}
	if idle == 0 {
		t.Fatal("no DB idle time recorded in a master-bound run")
	}
}

func BenchmarkSimFine16Nodes(b *testing.B) {
	cfg := Config{Nodes: 16, Keys: fineKeys, RowSize: fineRow, Calib: PaperCalibration(true)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		Run(cfg)
	}
}
