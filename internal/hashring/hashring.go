// Package hashring implements the DHT placement layer: a Cassandra-style
// token ring over murmur tokens with virtual nodes and replication. This
// is the "pseudo-random hash function to place an object in one node"
// whose balls-into-bins imbalance (Formula 1) the paper studies.
package hashring

import (
	"fmt"
	"sort"

	"scalekv/internal/murmur"
)

// NodeID identifies a cluster node.
type NodeID int

// Ring maps partition keys to nodes via token ownership: a key belongs
// to the first vnode token clockwise from the key's token.
type Ring struct {
	tokens []tokenEntry // sorted by token
	nodes  []NodeID
	vnodes int
}

type tokenEntry struct {
	token int64
	node  NodeID
}

// New builds a ring of n nodes with the given number of virtual nodes
// each. Tokens are derived deterministically from (node, vnode) so every
// process sharing the topology agrees on placement. vnodes < 1 is
// clamped to 1.
func New(n, vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = 1
	}
	r := &Ring{vnodes: vnodes}
	for i := 0; i < n; i++ {
		r.nodes = append(r.nodes, NodeID(i))
		for v := 0; v < vnodes; v++ {
			tok := murmur.Token([]byte(fmt.Sprintf("node-%d-vnode-%d", i, v)))
			r.tokens = append(r.tokens, tokenEntry{token: tok, node: NodeID(i)})
		}
	}
	sort.Slice(r.tokens, func(a, b int) bool { return r.tokens[a].token < r.tokens[b].token })
	return r
}

// Nodes returns the ring's node IDs.
func (r *Ring) Nodes() []NodeID { return append([]NodeID(nil), r.nodes...) }

// Size returns the number of nodes.
func (r *Ring) Size() int { return len(r.nodes) }

// owner returns the index into tokens owning the given token.
func (r *Ring) owner(tok int64) int {
	i := sort.Search(len(r.tokens), func(i int) bool { return r.tokens[i].token >= tok })
	if i == len(r.tokens) {
		i = 0 // wrap around
	}
	return i
}

// Primary returns the node owning pk.
func (r *Ring) Primary(pk string) NodeID {
	if len(r.tokens) == 0 {
		return -1
	}
	return r.tokens[r.owner(murmur.Token([]byte(pk)))].node
}

// Replicas returns rf distinct nodes for pk: the owner plus the next
// distinct nodes walking the ring clockwise, Cassandra's SimpleStrategy.
func (r *Ring) Replicas(pk string, rf int) []NodeID {
	if len(r.tokens) == 0 || rf < 1 {
		return nil
	}
	if rf > len(r.nodes) {
		rf = len(r.nodes)
	}
	out := make([]NodeID, 0, rf)
	seen := make(map[NodeID]bool, rf)
	i := r.owner(murmur.Token([]byte(pk)))
	for len(out) < rf {
		e := r.tokens[i%len(r.tokens)]
		if !seen[e.node] {
			seen[e.node] = true
			out = append(out, e.node)
		}
		i++
	}
	return out
}

// Distribution counts how many of the given keys land on each node —
// the input to every imbalance measurement in the paper.
func (r *Ring) Distribution(keys []string) map[NodeID]int {
	out := make(map[NodeID]int, len(r.nodes))
	for _, n := range r.nodes {
		out[n] = 0
	}
	for _, k := range keys {
		out[r.Primary(k)]++
	}
	return out
}

// MaxLoad returns the highest key count over nodes for the given keys,
// and the node holding it.
func (r *Ring) MaxLoad(keys []string) (NodeID, int) {
	dist := r.Distribution(keys)
	var bestNode NodeID = -1
	best := -1
	for _, n := range r.nodes { // deterministic order
		if dist[n] > best {
			best, bestNode = dist[n], n
		}
	}
	return bestNode, best
}

// Imbalance returns the relative overload of the most loaded node:
// (max - mean) / mean, the paper's p. Zero when there are no keys.
func (r *Ring) Imbalance(keys []string) float64 {
	if len(keys) == 0 || len(r.nodes) == 0 {
		return 0
	}
	_, max := r.MaxLoad(keys)
	mean := float64(len(keys)) / float64(len(r.nodes))
	return (float64(max) - mean) / mean
}
