// Package hashring implements the DHT placement layer: a Cassandra-style
// token ring over murmur tokens with virtual nodes and replication. This
// is the "pseudo-random hash function to place an object in one node"
// whose balls-into-bins imbalance (Formula 1) the paper studies.
//
// The ring is modelled as an immutable, epoch-stamped Topology. Every
// membership change (AddNode, RemoveNode) produces a NEW topology with
// the epoch incremented plus an ownership diff — the exact token ranges
// whose owner changed, as []RangeMove — so the cluster layer can stream
// data between nodes and clients can detect that their routing table is
// stale (a node answering with a higher epoch means "refresh your ring").
// Immutability is what makes the diff well-defined: the coordinator
// snapshots (old, new, moves) atomically and drives the join/leave state
// machine against that snapshot while readers keep using the old epoch.
//
// Tokens are derived deterministically from (node, vnode), so a topology
// is fully described by (epoch, member IDs, vnodes): every process that
// agrees on those three agrees on placement. That is what lets ring
// state travel the wire as a compact membership list instead of a full
// token dump.
package hashring

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"scalekv/internal/murmur"
)

// NodeID identifies a cluster node.
type NodeID int

// Topology is an immutable epoch-stamped token ring: a key belongs to
// the first vnode token clockwise from the key's token. Mutating
// operations return a new Topology; all methods are safe for concurrent
// use on a shared instance.
type Topology struct {
	epoch  uint64
	tokens []tokenEntry // sorted by token
	nodes  []NodeID     // sorted ascending
	vnodes int
}

// Ring is the historical name of Topology, kept as an alias so existing
// call sites (and the paper-model helpers) keep compiling.
type Ring = Topology

type tokenEntry struct {
	token int64
	node  NodeID
}

// Token maps a partition key to its position on the ring — the same
// murmur token the storage engine orders ScanRange by.
func Token(pk string) int64 {
	return murmur.Token([]byte(pk))
}

// New builds a ring of n nodes (IDs 0..n-1) with the given number of
// virtual nodes each, at epoch 1. Tokens are derived deterministically
// from (node, vnode) so every process sharing the topology agrees on
// placement. vnodes < 1 is clamped to 1.
func New(n, vnodes int) *Topology {
	if vnodes < 1 {
		vnodes = 1
	}
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeID(i)
	}
	return FromNodes(1, ids, vnodes)
}

// FromNodes reconstructs a topology from its wire representation: the
// epoch, the member IDs and the vnode count. Token derivation is
// deterministic, so this yields placement identical to the topology the
// members were originally added to.
func FromNodes(epoch uint64, ids []NodeID, vnodes int) *Topology {
	if vnodes < 1 {
		vnodes = 1
	}
	t := &Topology{epoch: epoch, vnodes: vnodes}
	t.nodes = append(t.nodes, ids...)
	sort.Slice(t.nodes, func(a, b int) bool { return t.nodes[a] < t.nodes[b] })
	for _, id := range t.nodes {
		t.tokens = append(t.tokens, nodeTokens(id, vnodes)...)
	}
	sort.Slice(t.tokens, func(a, b int) bool { return t.tokens[a].token < t.tokens[b].token })
	return t
}

// nodeTokens derives one node's vnode tokens.
func nodeTokens(id NodeID, vnodes int) []tokenEntry {
	out := make([]tokenEntry, vnodes)
	for v := 0; v < vnodes; v++ {
		tok := murmur.Token([]byte(fmt.Sprintf("node-%d-vnode-%d", id, v)))
		out[v] = tokenEntry{token: tok, node: id}
	}
	return out
}

// Epoch returns the topology's version. Epochs start at 1 and every
// AddNode/RemoveNode increments; 0 is reserved on the wire for
// "unversioned" (admin/streaming) traffic that bypasses epoch checks.
func (t *Topology) Epoch() uint64 { return t.epoch }

// Vnodes returns the per-node virtual node count.
func (t *Topology) Vnodes() int { return t.vnodes }

// Nodes returns the ring's node IDs, sorted ascending.
func (t *Topology) Nodes() []NodeID { return append([]NodeID(nil), t.nodes...) }

// Size returns the number of nodes.
func (t *Topology) Size() int { return len(t.nodes) }

// Contains reports whether id is a member.
func (t *Topology) Contains(id NodeID) bool {
	i := sort.Search(len(t.nodes), func(i int) bool { return t.nodes[i] >= id })
	return i < len(t.nodes) && t.nodes[i] == id
}

// owner returns the index into tokens owning the given token.
func (t *Topology) owner(tok int64) int {
	i := sort.Search(len(t.tokens), func(i int) bool { return t.tokens[i].token >= tok })
	if i == len(t.tokens) {
		i = 0 // wrap around
	}
	return i
}

// Primary returns the node owning pk.
func (t *Topology) Primary(pk string) NodeID {
	if len(t.tokens) == 0 {
		return -1
	}
	return t.tokens[t.owner(Token(pk))].node
}

// PrimaryForToken returns the node owning a raw token.
func (t *Topology) PrimaryForToken(tok int64) NodeID {
	if len(t.tokens) == 0 {
		return -1
	}
	return t.tokens[t.owner(tok)].node
}

// Replicas returns rf distinct nodes for pk: the owner plus the next
// distinct nodes walking the ring clockwise, Cassandra's SimpleStrategy.
func (t *Topology) Replicas(pk string, rf int) []NodeID {
	if len(t.tokens) == 0 || rf < 1 {
		return nil
	}
	return t.ownersFrom(t.owner(Token(pk)), rf)
}

// OwnersAt returns the rf distinct replica owners of a raw token — the
// replica set of every key hashing into the token's arc. The coordinator
// uses it to enumerate streaming-source candidates for a range.
func (t *Topology) OwnersAt(tok int64, rf int) []NodeID {
	if len(t.tokens) == 0 || rf < 1 {
		return nil
	}
	return t.ownersFrom(t.owner(tok), rf)
}

// ownersFrom walks the ring clockwise from a token index collecting rf
// distinct nodes.
func (t *Topology) ownersFrom(i, rf int) []NodeID {
	if rf > len(t.nodes) {
		rf = len(t.nodes)
	}
	out := make([]NodeID, 0, rf)
	seen := make(map[NodeID]bool, rf)
	for len(out) < rf {
		e := t.tokens[i%len(t.tokens)]
		if !seen[e.node] {
			seen[e.node] = true
			out = append(out, e.node)
		}
		i++
	}
	return out
}

// --- Membership changes ----------------------------------------------------

// RangeMove is one element of an ownership diff: the inclusive token
// range [Lo, Hi] must be copied from node From (an owner under the old
// topology, holding the data) to node To (an owner only under the new
// topology). Wrap-around arcs are split at the int64 boundary, so Lo <=
// Hi always holds and range predicates need no modular arithmetic.
type RangeMove struct {
	Lo, Hi int64
	From   NodeID
	To     NodeID
}

// Contains reports whether a token falls in the move's range.
func (m RangeMove) Contains(tok int64) bool { return m.Lo <= tok && tok <= m.Hi }

// NodeRange is a token range annotated with the node it concerns — the
// unit of post-move retirement (DeleteRange on the node that no longer
// owns the range).
type NodeRange struct {
	Node   NodeID
	Lo, Hi int64
}

// AddNode returns a new topology with id as a member — epoch
// incremented — plus the ownership diff at replication factor rf: every
// token range the new node must receive, with the old primary as the
// streaming source. With a healthy vnode count the moved share is ~1/N
// of the keyspace (bounded movement — only arcs adjacent to the new
// node's tokens change hands; nothing else reshuffles).
func (t *Topology) AddNode(id NodeID, rf int) (*Topology, []RangeMove, error) {
	if t.Contains(id) {
		return nil, nil, fmt.Errorf("hashring: node %d already in topology", id)
	}
	next := FromNodes(t.epoch+1, append(t.Nodes(), id), t.vnodes)
	return next, DiffOwnership(t, next, rf), nil
}

// RemoveNode returns a new topology without id — epoch incremented —
// plus the ownership diff at replication factor rf: every token range
// some surviving node gains, with an old owner (still holding the data,
// the leaving node included) as the streaming source.
func (t *Topology) RemoveNode(id NodeID, rf int) (*Topology, []RangeMove, error) {
	if !t.Contains(id) {
		return nil, nil, fmt.Errorf("hashring: node %d not in topology", id)
	}
	if len(t.nodes) == 1 {
		return nil, nil, fmt.Errorf("hashring: cannot remove the last node")
	}
	ids := make([]NodeID, 0, len(t.nodes)-1)
	for _, n := range t.nodes {
		if n != id {
			ids = append(ids, n)
		}
	}
	next := FromNodes(t.epoch+1, ids, t.vnodes)
	return next, DiffOwnership(t, next, rf), nil
}

// arc is one elementary interval of the merged boundary set: every token
// in [lo, hi] has the same owner set under both topologies.
type arc struct{ lo, hi int64 }

// elementaryArcs splits the token space at every boundary of either
// topology. The wrap-around arc is split at the int64 boundary.
func elementaryArcs(old, new *Topology) []arc {
	bset := make(map[int64]bool, len(old.tokens)+len(new.tokens))
	for _, e := range old.tokens {
		bset[e.token] = true
	}
	for _, e := range new.tokens {
		bset[e.token] = true
	}
	bounds := make([]int64, 0, len(bset))
	for b := range bset {
		bounds = append(bounds, b)
	}
	sort.Slice(bounds, func(a, b int) bool { return bounds[a] < bounds[b] })
	if len(bounds) == 0 {
		return nil
	}
	arcs := make([]arc, 0, len(bounds)+1)
	// Wrap arc (last boundary, first boundary], split into two halves.
	// Ownership of both halves is decided by the first boundary token.
	if bounds[len(bounds)-1] != math.MaxInt64 {
		arcs = append(arcs, arc{bounds[len(bounds)-1] + 1, math.MaxInt64})
	}
	arcs = append(arcs, arc{math.MinInt64, bounds[0]})
	for i := 1; i < len(bounds); i++ {
		arcs = append(arcs, arc{bounds[i-1] + 1, bounds[i]})
	}
	sort.Slice(arcs, func(a, b int) bool { return arcs[a].lo < arcs[b].lo })
	return arcs
}

// ownersOfArc returns a topology's replica set for an arc. Every token
// in an elementary arc resolves to the same owner walk, decided by the
// first ring token at or after the arc (wrapping past MaxInt64 to the
// ring's first token).
func ownersOfArc(t *Topology, a arc, rf int) []NodeID {
	if rf < 1 {
		rf = 1
	}
	return t.OwnersAt(a.hi, rf)
}

// DiffOwnership computes the data movement implied by a topology change
// at replication factor rf: for every elementary arc whose owner set
// gained a node, one RangeMove per gained owner, sourced from the arc's
// old primary (which holds the data). Adjacent arcs with identical
// (From, To) are merged, so the result is compact.
func DiffOwnership(old, new *Topology, rf int) []RangeMove {
	var moves []RangeMove
	for _, a := range elementaryArcs(old, new) {
		oldOwners := ownersOfArc(old, a, rf)
		newOwners := ownersOfArc(new, a, rf)
		if len(oldOwners) == 0 {
			continue
		}
		was := make(map[NodeID]bool, len(oldOwners))
		for _, n := range oldOwners {
			was[n] = true
		}
		for _, n := range newOwners {
			if !was[n] {
				moves = append(moves, RangeMove{Lo: a.lo, Hi: a.hi, From: oldOwners[0], To: n})
			}
		}
	}
	return mergeMoves(moves)
}

// Retirements computes the ranges each node stops owning under the new
// topology — the DeleteRange work left after a join's streaming is done.
func Retirements(old, new *Topology, rf int) []NodeRange {
	var out []NodeRange
	for _, a := range elementaryArcs(old, new) {
		newOwners := ownersOfArc(new, a, rf)
		now := make(map[NodeID]bool, len(newOwners))
		for _, n := range newOwners {
			now[n] = true
		}
		for _, n := range ownersOfArc(old, a, rf) {
			if !now[n] {
				out = append(out, NodeRange{Node: n, Lo: a.lo, Hi: a.hi})
			}
		}
	}
	// Merge adjacent ranges per node.
	sort.Slice(out, func(a, b int) bool {
		if out[a].Node != out[b].Node {
			return out[a].Node < out[b].Node
		}
		return out[a].Lo < out[b].Lo
	})
	merged := out[:0]
	for _, r := range out {
		if n := len(merged); n > 0 && merged[n-1].Node == r.Node && merged[n-1].Hi+1 == r.Lo {
			merged[n-1].Hi = r.Hi
			continue
		}
		merged = append(merged, r)
	}
	return merged
}

// mergeMoves coalesces adjacent moves with the same endpoints.
func mergeMoves(moves []RangeMove) []RangeMove {
	sort.Slice(moves, func(a, b int) bool {
		if moves[a].Lo != moves[b].Lo {
			return moves[a].Lo < moves[b].Lo
		}
		return moves[a].To < moves[b].To
	})
	merged := moves[:0]
	for _, m := range moves {
		if n := len(merged); n > 0 && merged[n-1].From == m.From && merged[n-1].To == m.To && merged[n-1].Hi+1 == m.Lo {
			merged[n-1].Hi = m.Hi
			continue
		}
		merged = append(merged, m)
	}
	return merged
}

// OwnedRange is one maximal token range whose replica set is constant:
// every key hashing into [Lo, Hi] lives on exactly Owners (primary
// first). The anti-entropy repair pass walks these ranges, comparing
// digests between the owners of each.
type OwnedRange struct {
	Lo, Hi int64
	Owners []NodeID
}

// OwnedRanges enumerates the whole token space as ranges with their
// rf-replica owner sets, in token order, adjacent ranges with identical
// owners merged. The ranges partition [MinInt64, MaxInt64] exactly —
// the wrap-around arc is split at the int64 boundary, like RangeMove.
func (t *Topology) OwnedRanges(rf int) []OwnedRange {
	if len(t.tokens) == 0 {
		return nil
	}
	var out []OwnedRange
	for _, a := range elementaryArcs(t, t) {
		owners := ownersOfArc(t, a, rf)
		if n := len(out); n > 0 && out[n-1].Hi+1 == a.lo && slices.Equal(out[n-1].Owners, owners) {
			out[n-1].Hi = a.hi
			continue
		}
		out = append(out, OwnedRange{Lo: a.lo, Hi: a.hi, Owners: owners})
	}
	return out
}

// --- Load measurement (the paper's imbalance study) ------------------------

// Distribution counts how many of the given keys land on each node —
// the input to every imbalance measurement in the paper.
func (t *Topology) Distribution(keys []string) map[NodeID]int {
	out := make(map[NodeID]int, len(t.nodes))
	for _, n := range t.nodes {
		out[n] = 0
	}
	for _, k := range keys {
		out[t.Primary(k)]++
	}
	return out
}

// MaxLoad returns the highest key count over nodes for the given keys,
// and the node holding it.
func (t *Topology) MaxLoad(keys []string) (NodeID, int) {
	dist := t.Distribution(keys)
	var bestNode NodeID = -1
	best := -1
	for _, n := range t.nodes { // deterministic order
		if dist[n] > best {
			best, bestNode = dist[n], n
		}
	}
	return bestNode, best
}

// Imbalance returns the relative overload of the most loaded node:
// (max - mean) / mean, the paper's p. Zero when there are no keys.
func (t *Topology) Imbalance(keys []string) float64 {
	if len(keys) == 0 || len(t.nodes) == 0 {
		return 0
	}
	_, max := t.MaxLoad(keys)
	mean := float64(len(keys)) / float64(len(t.nodes))
	return (float64(max) - mean) / mean
}
